#!/bin/sh
# CI driver. `./ci.sh` runs the full gate (same as `make ci`);
# `./ci.sh vet-examples` runs only the flexvet sweep over examples/;
# `./ci.sh fuzz-smoke` runs only the short fuzz pass.
set -eu

cd "$(dirname "$0")"

vet_examples() {
	# Every example IDL must lint clean, alone and combined with the
	# .pdl endpoint files that sit next to it: a client.pdl/server.pdl
	# pair is checked as the two endpoints of one connection, any
	# other .pdl as a single endpoint.
	find examples -name '*.idl' | sort | while read -r idl; do
		dir=$(dirname "$idl")
		echo "flexc vet $idl"
		go run ./cmd/flexc vet "$idl"
		if [ -f "$dir/client.pdl" ] && [ -f "$dir/server.pdl" ]; then
			echo "flexc vet -pdl $dir/client.pdl -peer-pdl $dir/server.pdl $idl"
			go run ./cmd/flexc vet -pdl "$dir/client.pdl" -peer-pdl "$dir/server.pdl" "$idl"
		fi
		for pdl in "$dir"/*.pdl; do
			[ -f "$pdl" ] || continue
			echo "flexc vet -pdl $pdl $idl"
			go run ./cmd/flexc vet -pdl "$pdl" "$idl"
		done
	done
}

fuzz_smoke() {
	# Short coverage-guided runs over the network-facing decoders and
	# the stats snapshot codecs. `go test -fuzz` takes one target per
	# invocation, so list them. FUZZTIME overrides the per-target
	# budget (e.g. FUZZTIME=2m ./ci.sh fuzz-smoke for a deeper pass).
	fuzztime="${FUZZTIME:-10s}"
	go test -run='^$' -fuzz=FuzzDecoder -fuzztime="$fuzztime" ./internal/xdr
	go test -run='^$' -fuzz=FuzzDecoder -fuzztime="$fuzztime" ./internal/cdr
	go test -run='^$' -fuzz=FuzzReadRecord -fuzztime="$fuzztime" ./internal/sunrpc
	go test -run='^$' -fuzz=FuzzDecodeMessage -fuzztime="$fuzztime" ./internal/runtime
	go test -run='^$' -fuzz=FuzzServeMessage -fuzztime="$fuzztime" ./internal/runtime
	go test -run='^$' -fuzz=FuzzBatchCodec -fuzztime="$fuzztime" ./internal/runtime
	go test -run='^$' -fuzz=FuzzHistogramCodec -fuzztime="$fuzztime" ./internal/stats
	go test -run='^$' -fuzz=FuzzTraceCodec -fuzztime="$fuzztime" ./internal/stats
}

if [ "${1:-}" = "vet-examples" ]; then
	vet_examples
	exit 0
fi

if [ "${1:-}" = "fuzz-smoke" ]; then
	fuzz_smoke
	exit 0
fi

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== bench smoke (compile + one iteration per benchmark)"
go test -run='^$' -bench=. -benchtime=1x ./...

echo "== fuzz smoke"
fuzz_smoke

echo "== flexc vet examples"
vet_examples

echo "CI green"
