#!/bin/sh
# CI driver. `./ci.sh` runs the full gate (same as `make ci`);
# `./ci.sh vet-examples` runs only the flexvet sweep over examples/;
# `./ci.sh vet-go` runs only the Go-source analyzer stage;
# `./ci.sh certify` runs only the plan-certificate diff;
# `./ci.sh fuzz-smoke` runs only the short fuzz pass;
# `./ci.sh flexload-smoke` runs only the load-generator smoke.
set -eu

cd "$(dirname "$0")"

vet_examples() {
	# Every example IDL must lint clean, alone and combined with the
	# .pdl endpoint files that sit next to it: a client.pdl/server.pdl
	# pair is checked as the two endpoints of one connection, any
	# other .pdl as a single endpoint.
	find examples -name '*.idl' | sort | while read -r idl; do
		dir=$(dirname "$idl")
		echo "flexc vet $idl"
		go run ./cmd/flexc vet "$idl"
		if [ -f "$dir/client.pdl" ] && [ -f "$dir/server.pdl" ]; then
			echo "flexc vet -pdl $dir/client.pdl -peer-pdl $dir/server.pdl $idl"
			go run ./cmd/flexc vet -pdl "$dir/client.pdl" -peer-pdl "$dir/server.pdl" "$idl"
		fi
		for pdl in "$dir"/*.pdl; do
			[ -f "$pdl" ] || continue
			echo "flexc vet -pdl $pdl $idl"
			go run ./cmd/flexc vet -pdl "$pdl" "$idl"
		done
	done
}

vet_go() {
	# The Go-source analyzers over the whole module, with the vetgo
	# contract bound so FV018 has [idempotent] ops to check. The
	# seeded violations in examples/vetgo must all fire; everything
	# else must be clean (zero false positives).
	out=$(mktemp)
	echo "flexc vet -go -json ./... (expect findings only in examples/vetgo)"
	if go run ./cmd/flexc vet -go -json \
		-idl examples/vetgo/vetgo.idl -pdl examples/vetgo/server.pdl \
		./... >"$out" 2>&1; then
		echo "vet -go reported nothing; the seeded violations in examples/vetgo must fire"
		rm -f "$out"
		exit 1
	elif [ $? -ge 2 ]; then
		echo "vet -go failed to run:"
		cat "$out"
		rm -f "$out"
		exit 1
	fi
	if grep '"file"' "$out" | grep -v '"file": *"examples/vetgo/' >/dev/null; then
		echo "vet -go false positive outside examples/vetgo:"
		grep '"file"' "$out" | grep -v '"file": *"examples/vetgo/'
		rm -f "$out"
		exit 1
	fi
	for id in FV017 FV018 FV019 FV020 FV023; do
		if ! grep -q "\"id\": *\"$id\"" "$out"; then
			echo "seeded violation $id in examples/vetgo not detected:"
			cat "$out"
			rm -f "$out"
			exit 1
		fi
	done
	rm -f "$out"
	echo "vet -go: all seeded violations fire, no false positives"
}

certify() {
	# Plan certificates must reproduce their checked-in goldens: the
	# 0-alloc / bounded-decode claims are part of the contract, and
	# any plan-compiler change that shifts them must be deliberate.
	# Regenerate with:  ./ci.sh certify -update
	for dir in examples/vetgo examples/pipes/fileio; do
		idl=$(ls "$dir"/*.idl)
		echo "flexc vet -certify -pdl $dir/server.pdl $idl"
		if [ "${1:-}" = "-update" ]; then
			go run ./cmd/flexc vet -certify -pdl "$dir/server.pdl" "$idl" >"$dir/certificate.json"
		else
			go run ./cmd/flexc vet -certify -pdl "$dir/server.pdl" "$idl" |
				diff -u "$dir/certificate.json" - ||
				{ echo "certificate drifted from $dir/certificate.json (regenerate with ./ci.sh certify -update)"; exit 1; }
		fi
	done
}

flexload_smoke() {
	# A 1-second flexload run: 256 connections against the in-process
	# shared-pool server. -check makes flexc itself assert non-zero
	# goodput and zero error-taxonomy violations, so a wedged pool,
	# leaked reader, or broken session layer fails CI here.
	idl=$(mktemp -t flexload_smoke_XXXXXX.idl)
	cat >"$idl" <<-'EOF'
		interface Smoke {
		    void nop();
		    long ping(in long x);
		};
	EOF
	echo "flexc load -conns 256 -measure 1s -check $idl"
	# Run under `if` so `set -e` cannot skip the temp-file cleanup
	# when the check fails.
	if ! go run ./cmd/flexc load -conns 256 -think 1ms -warmup 100ms -measure 1s -check "$idl"; then
		rm -f "$idl"
		exit 1
	fi
	rm -f "$idl"
}

netpoll_smoke() {
	# The portable fallback must keep building: darwin has no raw-epoll
	# poller, so netpoll_stub.go serves it and every conn falls back to
	# a goroutine reader with identical semantics.
	echo "GOOS=darwin go build ./... (netpoll portable fallback)"
	GOOS=darwin go build ./...

	# Idle-connection scale: raise RLIMIT_NOFILE as far as the host
	# allows, then size the smoke to the descriptor budget — 100k conns
	# want ~200k fds (two per in-process connection); capped hosts run
	# the largest count that fits instead of skipping.
	want="${NETPOLL_SMOKE_CONNS:-100000}"
	ulimit -n "$(ulimit -Hn)" 2>/dev/null || true
	limit=$(ulimit -n)
	conns=$want
	if [ "$limit" != "unlimited" ]; then
		budget=$(((limit - 768) / 2))
		if [ "$budget" -lt "$conns" ]; then
			echo "RLIMIT_NOFILE=$limit caps the netpoll smoke at $budget conns (wanted $want)"
			conns=$budget
		fi
	fi
	echo "NETPOLL_SMOKE_CONNS=$conns go test -run TestNetpollIdleConnScale ./internal/sunrpc"
	if ! NETPOLL_SMOKE_CONNS="$conns" go test -count=1 -v -run 'TestNetpollIdleConnScale$' ./internal/sunrpc; then
		exit 1
	fi

	# The CLI surfaces users drive: netpoll-mode and multi-process
	# flexload, both self-checked (-check fails on zero goodput or any
	# error-taxonomy violation).
	idl=$(mktemp -t netpoll_smoke_XXXXXX.idl)
	cat >"$idl" <<-'EOF'
		interface Np {
		    void nop();
		};
	EOF
	echo "flexc load -netpoll -conns 128 -measure 500ms -check $idl"
	if ! go run ./cmd/flexc load -netpoll -conns 128 -workers 4 -think 1ms -warmup 100ms -measure 500ms -check "$idl"; then
		rm -f "$idl"
		exit 1
	fi
	echo "flexc load -procs 2 -conns 64 -measure 500ms -check $idl"
	if ! go run ./cmd/flexc load -procs 2 -conns 64 -workers 4 -think 1ms -warmup 100ms -measure 500ms -check "$idl"; then
		rm -f "$idl"
		exit 1
	fi
	rm -f "$idl"
}

fuzz_smoke() {
	# Short coverage-guided runs over the network-facing decoders and
	# the stats snapshot codecs. `go test -fuzz` takes one target per
	# invocation, so list them. FUZZTIME overrides the per-target
	# budget (e.g. FUZZTIME=2m ./ci.sh fuzz-smoke for a deeper pass).
	fuzztime="${FUZZTIME:-10s}"
	go test -run='^$' -fuzz=FuzzDecoder -fuzztime="$fuzztime" ./internal/xdr
	go test -run='^$' -fuzz=FuzzDecoder -fuzztime="$fuzztime" ./internal/cdr
	go test -run='^$' -fuzz=FuzzReadRecord -fuzztime="$fuzztime" ./internal/sunrpc
	go test -run='^$' -fuzz=FuzzDecodeMessage -fuzztime="$fuzztime" ./internal/runtime
	go test -run='^$' -fuzz=FuzzServeMessage -fuzztime="$fuzztime" ./internal/runtime
	go test -run='^$' -fuzz=FuzzBatchCodec -fuzztime="$fuzztime" ./internal/runtime
	go test -run='^$' -fuzz=FuzzPushbackFrame -fuzztime="$fuzztime" ./internal/runtime
	go test -run='^$' -fuzz=FuzzSlotHeader -fuzztime="$fuzztime" ./internal/transport/shmring
	go test -run='^$' -fuzz=FuzzHistogramCodec -fuzztime="$fuzztime" ./internal/stats
	go test -run='^$' -fuzz=FuzzTraceCodec -fuzztime="$fuzztime" ./internal/stats
}

if [ "${1:-}" = "vet-examples" ]; then
	vet_examples
	exit 0
fi

if [ "${1:-}" = "vet-go" ]; then
	vet_go
	exit 0
fi

if [ "${1:-}" = "certify" ]; then
	certify "${2:-}"
	exit 0
fi

if [ "${1:-}" = "fuzz-smoke" ]; then
	fuzz_smoke
	exit 0
fi

if [ "${1:-}" = "flexload-smoke" ]; then
	flexload_smoke
	exit 0
fi

if [ "${1:-}" = "netpoll-smoke" ]; then
	netpoll_smoke
	exit 0
fi

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== bench smoke (compile + one iteration per benchmark)"
go test -run='^$' -bench=. -benchtime=1x ./...

echo "== flexload smoke"
flexload_smoke

echo "== netpoll smoke"
netpoll_smoke

echo "== fuzz smoke"
fuzz_smoke

echo "== flexc vet examples"
vet_examples

echo "== flexc vet -go"
vet_go

echo "== flexc vet -certify"
certify

echo "CI green"
