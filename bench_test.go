package flexrpc

// One benchmark per figure of the paper's evaluation (§4). These are
// per-operation testing.B benchmarks; the full figure workloads with
// paper-style output live in cmd/experiments (go run ./cmd/experiments).

import (
	"fmt"
	"io"
	"testing"

	"flexrpc/internal/experiments"
	"flexrpc/internal/kernbuf"
	"flexrpc/internal/mach"
	"flexrpc/internal/netsim"
	"flexrpc/internal/nfs"
	"flexrpc/internal/pipeserver"
	"flexrpc/internal/pres"
	"flexrpc/internal/runtime"
	"flexrpc/internal/transport/inproc"
	"flexrpc/internal/transport/shmring"
	"flexrpc/internal/transport/suntcp"
)

// BenchmarkFig2NFSRead measures one 8 KB NFS read through each of
// the four client stub variants of Figure 2 (unshaped link; the
// network-dominated version is in cmd/experiments).
func BenchmarkFig2NFSRead(b *testing.B) {
	variants := []struct {
		name    string
		special bool
		hand    bool
	}{
		{"conventional/hand", false, true},
		{"conventional/generated", false, false},
		{"userbuf/hand", true, true},
		{"userbuf/generated", true, false},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			srv := nfs.NewServer(64 << 10)
			cc, sc := netsim.BufferedPipe(netsim.LinkParams{}, 64)
			srv.Start(sc)
			defer cc.Close()
			var client nfs.ReadClient
			if v.hand {
				client = nfs.NewHandClient(cc, v.special)
			} else {
				gc, err := nfs.NewGenClient(cc, v.special)
				if err != nil {
					b.Fatal(err)
				}
				client = gc
			}
			ub := kernbuf.NewUserBuffer(nfs.MaxData)
			b.SetBytes(nfs.MaxData)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.ReadAt(ub, 0, 0, nfs.MaxData); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchMachPipe assembles a pipe server over the streamlined IPC
// transport and returns writer and reader clients.
func benchMachPipe(b *testing.B, pipeSize int, serverPDL string) (*pipeserver.Client, *pipeserver.Client) {
	b.Helper()
	compiled, err := pipeserver.Compile()
	if err != nil {
		b.Fatal(err)
	}
	serverPres := compiled.Pres
	if serverPDL != "" {
		sc, err := compiled.WithPDL("server.pdl", serverPDL)
		if err != nil {
			b.Fatal(err)
		}
		serverPres = sc.Pres
	}
	srv, err := pipeserver.NewServer(pipeSize, serverPres)
	if err != nil {
		b.Fatal(err)
	}
	k := mach.NewKernel()
	serverTask := k.NewTask("pipe-server")
	_, port := serverTask.AllocatePort()
	srv.ServeMach(serverTask, port, 2)
	b.Cleanup(port.Destroy)

	writerTask := k.NewTask("writer")
	readerTask := k.NewTask("reader")
	w, err := pipeserver.NewMachClient(writerTask, writerTask.InsertRight(port), compiled.DefaultPres(pres.StyleCORBA))
	if err != nil {
		b.Fatal(err)
	}
	r, err := pipeserver.NewMachClient(readerTask, readerTask.InsertRight(port), compiled.DefaultPres(pres.StyleCORBA))
	if err != nil {
		b.Fatal(err)
	}
	return w, r
}

// BenchmarkFig6Pipe measures one chunk through the pipe server for
// both presentations and both pipe sizes of Figure 6.
func BenchmarkFig6Pipe(b *testing.B) {
	const chunk = 2048
	for _, size := range []int{4096, 8192} {
		for _, mode := range []struct {
			name string
			pdl  string
		}{
			{"default", ""},
			{"deallocnever", pipeserver.Figure5PDL},
		} {
			b.Run(fmt.Sprintf("%dK/%s", size/1024, mode.name), func(b *testing.B) {
				w, r := benchMachPipe(b, size, mode.pdl)
				data := make([]byte, chunk)
				b.SetBytes(chunk)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := w.Write(data); err != nil {
						b.Fatal(err)
					}
					if _, err := r.Read(chunk); err != nil && err != io.EOF {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig7Fbuf measures one chunk through the fbuf pipe in its
// [special] presentation (Figure 7's optimized configuration); the
// standard-presentation baseline and BSD reference are in
// cmd/experiments.
func BenchmarkFig7Fbuf(b *testing.B) {
	const chunk = 2048
	fp, err := pipeserver.StartFbufPipe(pipeserver.FbufPipeConfig{
		Kernel:   mach.NewKernel(),
		PipeSize: 8192,
		BufSize:  chunk,
		PoolSize: 24,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { fp.Port.Destroy() })
	data := make([]byte, chunk)
	readBuf := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fp.Writer.Write(data); err != nil {
			b.Fatal(err)
		}
		if _, err := fp.Reader.Read(readBuf); err != nil && err != io.EOF {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Mutability measures a same-domain RPC with a 1 KB in
// parameter under the three systems of Figure 10, in the
// all-requirements-relaxed group (client trashable, server
// modifies) where flexible presentation wins outright.
func BenchmarkFig10Mutability(b *testing.B) {
	compiled, err := Compile(Options{
		Frontend: FrontendCORBA,
		Filename: "mut.idl",
		Source:   `interface Mut { void put(in sequence<octet> data); };`,
	})
	if err != nil {
		b.Fatal(err)
	}
	systems := []struct {
		name              string
		trashable, borrow bool
	}{
		{"fixedcopy", false, false},
		{"fixedborrow", false, true},
		{"flexible", true, false},
	}
	for _, sys := range systems {
		b.Run(sys.name, func(b *testing.B) {
			cp := compiled.DefaultPres(StyleCORBA)
			sp := compiled.DefaultPres(StyleCORBA)
			if sys.trashable {
				cp.Ops["put"].Param("data").Trashable = true
			}
			if sys.borrow {
				sp.Ops["put"].Param("data").Preserved = true
			}
			disp := NewDispatcher(sp)
			scratch := make([]byte, experiments.ParamSize)
			disp.Handle("put", func(c *Call) error {
				buf := c.ArgBytes(0)
				if !c.ArgPrivate(0) {
					copy(scratch, buf) // forced server-side glue copy
					buf = scratch
				}
				buf[0] ^= 0xFF
				return nil
			})
			conn, err := inproc.Connect(cp, disp)
			if err != nil {
				b.Fatal(err)
			}
			args := []Value{make([]byte, experiments.ParamSize)}
			b.SetBytes(experiments.ParamSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := conn.Invoke("put", args, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11Alloc measures a same-domain RPC with a 1 KB out
// parameter in Figure 11's "server provides the buffer" group,
// where flexible presentation passes the server's retained buffer by
// reference while both fixed systems copy.
func BenchmarkFig11Alloc(b *testing.B) {
	compiled, err := Compile(Options{
		Frontend: FrontendCORBA,
		Filename: "alloc.idl",
		Source:   `interface Alloc { sequence<octet> fetch(in unsigned long n); };`,
	})
	if err != nil {
		b.Fatal(err)
	}
	retained := make([]byte, experiments.ParamSize)
	for _, sys := range []string{"fixedcorba", "fixedmig", "flexible"} {
		b.Run(sys, func(b *testing.B) {
			var cp, sp *Presentation
			switch sys {
			case "fixedcorba":
				cp, sp = compiled.DefaultPres(StyleCORBA), compiled.DefaultPres(StyleCORBA)
			case "fixedmig":
				cp, sp = compiled.DefaultPres(StyleMIG), compiled.DefaultPres(StyleMIG)
			case "flexible":
				cp, sp = compiled.DefaultPres(StyleCORBA), compiled.DefaultPres(StyleCORBA)
				sa := sp.Ops["fetch"].Result()
				sa.Alloc = pres.AllocCallee
				sa.Dealloc = pres.DeallocNever
				cp.Ops["fetch"].Result().Alloc = pres.AllocAuto
			}
			disp := NewDispatcher(sp)
			disp.Handle("fetch", func(c *Call) error {
				n := int(c.Arg(0).(uint32))
				if buf := c.ResultBuffer(); buf != nil {
					copy(buf, retained[:n]) // MIG: copy into caller buffer
					c.SetResult(buf[:n])
					return nil
				}
				if c.ResultMoved() {
					out := make([]byte, n) // CORBA: donate a fresh copy
					copy(out, retained[:n])
					c.SetResult(out)
					return nil
				}
				c.SetResult(retained[:n]) // flexible: reference
				return nil
			})
			conn, err := inproc.Connect(cp, disp)
			if err != nil {
				b.Fatal(err)
			}
			clientBuf := make([]byte, experiments.ParamSize)
			args := []Value{uint32(experiments.ParamSize)}
			b.SetBytes(experiments.ParamSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var retBuf []byte
				if sys == "fixedmig" {
					retBuf = clientBuf
				}
				if _, _, err := conn.Invoke("fetch", args, nil, retBuf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// startNullServer runs a null-RPC mach server for the §4.5
// benchmarks.
func startNullServer(b *testing.B, serverSig mach.EndpointSig) (*mach.Kernel, *mach.Port, *mach.Task) {
	b.Helper()
	k := mach.NewKernel()
	srv := k.NewTask("server")
	_, port := srv.AllocatePort()
	port.RegisterServer(serverSig)
	go func() {
		for {
			in, err := srv.Receive(port, nil)
			if err != nil {
				return
			}
			for _, n := range in.PortNames {
				_ = srv.DeallocateRight(n)
			}
			in.Reply(&mach.Message{})
		}
	}()
	b.Cleanup(port.Destroy)
	return k, port, srv
}

// BenchmarkPortTransfer is the §4.5 unique-name experiment: one port
// right transferred per call (paper: 32.4us -> 24.7us, -24%).
func BenchmarkPortTransfer(b *testing.B) {
	for _, nonunique := range []bool{false, true} {
		name := "unique"
		if nonunique {
			name = "nonunique"
		}
		b.Run(name, func(b *testing.B) {
			k, port, _ := startNullServer(b, mach.EndpointSig{
				Contract: "xfer", Trust: mach.TrustFullLevel, NonUniquePorts: nonunique,
			})
			cli := k.NewTask("client")
			bind, err := mach.Bind(cli, cli.InsertRight(port),
				mach.EndpointSig{Contract: "xfer", Trust: mach.TrustFullLevel})
			if err != nil {
				b.Fatal(err)
			}
			_, carried := cli.AllocatePort()
			req := &mach.Message{Ports: []*mach.Port{carried}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bind.Call(req, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12Trust is the Figure 12 matrix: null RPC for every
// client-trust x server-trust combination over the bind-time
// specialized transport.
func BenchmarkFig12Trust(b *testing.B) {
	for _, ct := range experiments.TrustLevels {
		for _, st := range experiments.TrustLevels {
			b.Run(fmt.Sprintf("client=%v/server=%v", ct, st), func(b *testing.B) {
				k, port, _ := startNullServer(b, mach.EndpointSig{Contract: "null", Trust: st})
				cli := k.NewTask("client")
				bind, err := mach.Bind(cli, cli.InsertRight(port),
					mach.EndpointSig{Contract: "null", Trust: ct})
				if err != nil {
					b.Fatal(err)
				}
				req := &mach.Message{}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bind.Call(req, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigScale measures a pipelined null RPC through the full
// session stack for the three server modes of the scale figure:
// serial dispatch, the concurrent worker pool with a sharded reply
// cache and coalescing writer, and the same plus client-side
// [batchable] call merging. Eight client goroutines share one
// connection; the full figure grid (workloads × connection counts)
// is `go run ./cmd/experiments -fig scale`.
func BenchmarkFigScale(b *testing.B) {
	compiled, err := Compile(Options{
		Frontend: FrontendCORBA,
		Filename: "scale.idl",
		Source:   `interface Scale { void nop(); };`,
		// [batchable] but not [idempotent]: calls must traverse the
		// at-most-once reply cache the figure is exercising.
		PDL:         "interface Scale {\n    [batchable] nop();\n};\n",
		PDLFilename: "scale.pdl",
	})
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name            string
		workers, shards int
		batch           bool
	}{
		{"serial", 1, 1, false},
		{"concurrent8", 8, 8, false},
		{"concurrent8+batch", 8, 8, true},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			p := compiled.Pres
			disp := runtime.NewDispatcher(p)
			disp.Handle("nop", func(c *runtime.Call) error { return nil })
			plan, err := runtime.NewPlan(p, runtime.XDRCodec, nil)
			if err != nil {
				b.Fatal(err)
			}
			sess := runtime.NewSessionServer(disp, plan,
				runtime.NewReplyCacheSharded(runtime.DefaultReplyCacheSize, m.shards))
			srv := suntcp.NewSessionServer(sess, p.Interface)
			srv.SetConcurrency(m.workers)
			cc, sc := netsim.BufferedPipe(netsim.LinkParams{}, 256)
			go func() { _ = srv.ServeConn(sc) }()
			conn := runtime.NewRobustConn(suntcp.Dial(cc, p), p, runtime.RobustOptions{
				ClientID:   1,
				AtMostOnce: true,
			})
			if m.batch {
				// Match the driver count so steady-state batches flush
				// on size, not on the latency-bound timer.
				conn.EnableBatching(runtime.BatchOptions{MaxCalls: 8})
			}
			b.Cleanup(func() { conn.Close(); cc.Close(); sc.Close() })
			opIdx := plan.OpIndex("nop")
			enc := runtime.XDRCodec.NewEncoder()
			if err := plan.Ops[opIdx].EncodeRequest(enc, nil); err != nil {
				b.Fatal(err)
			}
			req := enc.Bytes()
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var replyBuf []byte
				for pb.Next() {
					reply, err := conn.Call(opIdx, req, replyBuf)
					if err != nil {
						b.Fatal(err)
					}
					replyBuf = reply[:0]
				}
			})
		})
	}
}

// BenchmarkShmRing measures the zero-copy shared-memory transport:
// a null RPC through the bind-time inline and doorbell paths, and a
// 1 KB [trusted] put whose payload is encoded directly into the
// leased ring slot and borrow-decoded in place. The full comparison
// against inproc (with copy meters) is `go run ./cmd/experiments -fig shm`.
func BenchmarkShmRing(b *testing.B) {
	compiled, err := Compile(Options{
		Frontend: FrontendCORBA,
		Filename: "shm.idl",
		Source:   `interface Shm { void nop(); void put(in sequence<octet> data); };`,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		force bool
		put   bool
	}{
		{"inline/null", false, false},
		{"doorbell/null", true, false},
		{"doorbell/put1k", true, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cp := compiled.DefaultPres(StyleCORBA)
			cp.Trust = pres.TrustFull
			sp := compiled.DefaultPres(StyleCORBA)
			sp.Trust = pres.TrustFull
			disp := NewDispatcher(sp)
			disp.Handle("nop", func(c *Call) error { return nil })
			var sink byte
			disp.Handle("put", func(c *Call) error {
				sink ^= c.ArgBytes(0)[0]
				return nil
			})
			_ = sink
			bound, err := shmring.Connect(cp, disp, XDRCodec, shmring.Options{ForceDoorbell: mode.force})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = bound.Close() })
			op, args := "nop", []Value(nil)
			if mode.put {
				op, args = "put", []Value{make([]byte, 1024)}
				b.SetBytes(1024)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := bound.Invoke(op, args, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompile measures the compiler front half itself: parse,
// default presentation, PDL application.
func BenchmarkCompile(b *testing.B) {
	src := pipeserver.IDL
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := Compile(Options{Frontend: FrontendCORBA, Filename: "fileio.idl", Source: src})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.WithPDL("f5.pdl", pipeserver.Figure5PDL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshal measures the interpreted marshal plans on a 1 KB
// buffer round trip for both codecs.
func BenchmarkMarshal(b *testing.B) {
	compiled, err := Compile(Options{
		Frontend: FrontendCORBA,
		Filename: "m.idl",
		Source:   `interface M { void put(in sequence<octet> data); };`,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, codec := range []Codec{XDRCodec, CDRCodec} {
		b.Run(codec.Name(), func(b *testing.B) {
			plan, err := runtime.NewPlan(compiled.Pres, codec, nil)
			if err != nil {
				b.Fatal(err)
			}
			op := plan.Ops[0]
			enc := codec.NewEncoder()
			args := []Value{make([]byte, 1024)}
			b.SetBytes(1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.Reset()
				if err := op.EncodeRequest(enc, args); err != nil {
					b.Fatal(err)
				}
				if _, err := op.DecodeRequest(codec.NewDecoder(enc.Bytes())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
