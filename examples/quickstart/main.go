// Quickstart: compile an interface, attach a server, call it — first
// in the same domain, then with each endpoint holding a different
// presentation of the same contract.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flexrpc"
)

const idl = `
interface KVStore {
    sequence<octet> get(in string key);
    void put(in string key, in sequence<octet> value);
};`

// The server's own PDL: its get result is served out of storage the
// server keeps, so the stub must not deallocate it.
const serverPDL = `
interface KVStore {
    get([dealloc(never)] return);
};`

func main() {
	// Stage 1+2: front-end and presentation. The interface is the
	// network contract; the presentation is private to an endpoint.
	compiled, err := flexrpc.Compile(flexrpc.Options{
		Frontend: flexrpc.FrontendCORBA,
		Filename: "kvstore.idl",
		Source:   idl,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network contract:", compiled.Iface.Signature())

	// The server derives its own presentation from the default.
	serverSide, err := compiled.WithPDL("server.pdl", serverPDL)
	if err != nil {
		log.Fatal(err)
	}

	// A server is a dispatcher plus work functions.
	store := map[string][]byte{}
	disp := flexrpc.NewDispatcher(serverSide.Pres)
	disp.Handle("put", func(c *flexrpc.Call) error {
		key := c.Arg(0).(string)
		// In parameters are valid for the call; retain via copy.
		store[key] = append([]byte(nil), c.ArgBytes(1)...)
		return nil
	})
	disp.Handle("get", func(c *flexrpc.Call) error {
		// Under [dealloc(never)] the server may return its own
		// storage by reference — no copy.
		if c.ResultMoved() {
			log.Fatal("presentation should have disabled move semantics")
		}
		c.SetResult(store[c.Arg(0).(string)])
		return nil
	})

	// The client keeps the plain default presentation; different
	// presentations of one contract always interoperate.
	conn, err := flexrpc.ConnectInProc(compiled.Pres, disp)
	if err != nil {
		log.Fatal(err)
	}

	if _, _, err := conn.Invoke("put",
		[]flexrpc.Value{"greeting", []byte("hello, flexible presentation")}, nil, nil); err != nil {
		log.Fatal(err)
	}
	_, ret, err := conn.Invoke("get", []flexrpc.Value{"greeting"}, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get(greeting) = %q\n", ret.([]byte))

	// A second client that knows the value size can ask the stub to
	// unmarshal straight into its own buffer ([alloc(caller)]).
	clientSide, err := compiled.WithPDL("client.pdl", `
		interface KVStore { get([alloc(caller)] return); };`)
	if err != nil {
		log.Fatal(err)
	}
	conn2, err := flexrpc.ConnectInProc(clientSide.Pres, disp)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 64)
	_, ret, err = conn2.Invoke("get", []flexrpc.Value{"greeting"}, nil, buf)
	if err != nil {
		log.Fatal(err)
	}
	got := ret.([]byte)
	fmt.Printf("get into caller buffer = %q (landed in caller storage: %v)\n",
		got, len(got) > 0 && &got[0] == &buf[0])
}
