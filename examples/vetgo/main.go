// The vetgo example is deliberately wrong. Every handler below
// compiles, runs, and passes a naive round-trip — and every one
// breaks the annotation contract it registered under, in a way that
// only corrupts later, under frame reuse, retransmission, or a
// deadline. This is flexvet's Go-side test range: the analyzer must
// flag each seeded violation with a position.
//
//	go run ./cmd/flexc vet -go \
//	    -idl examples/vetgo/vetgo.idl -pdl examples/vetgo/server.pdl \
//	    ./examples/vetgo
//
// expects findings FV017 (borrow escape), FV018 (impure [idempotent]
// handler), FV019 (pooled bind without StepHooks), FV020 (dropped
// context) and FV023 (netpoll-mode record borrow escape) — all in
// this file.
package main

import (
	"context"
	_ "embed"
	"fmt"
	"log"

	"flexrpc"
)

//go:embed vetgo.idl
var idl string

//go:embed server.pdl
var serverPDL string

// lastPut retains the most recent put payload. Keeping the []byte
// itself — not a copy — is the seeded FV017: it aliases the request
// frame, which the dispatcher recycles after the reply.
var lastPut []byte

// bumps is shared state mutated by the [idempotent] vg_bump handler —
// the seeded FV018: a retransmitted call double-counts.
var bumps int64

// A backend stands in for any context-aware downstream dependency.
type backend interface {
	Get(ctx context.Context, key string) ([]byte, error)
}

type mapBackend map[string][]byte

func (m mapBackend) Get(_ context.Context, key string) ([]byte, error) {
	return m[key], nil
}

func register(disp *flexrpc.Dispatcher, b backend) {
	disp.Handle("nop", func(c *flexrpc.Call) error { return nil })
	disp.Handle("put", func(c *flexrpc.Call) error {
		lastPut = c.ArgBytes(0) // FV017: borrowed frame bytes escape the call
		return nil
	})
	disp.Handle("vg_bump", func(c *flexrpc.Call) error {
		bumps++ // FV018: [idempotent] handler writes shared state
		c.SetResult(bumps)
		return nil
	})
	disp.Handle("vg_fetch", func(c *flexrpc.Call) error {
		// FV020: the client's deadline is in c.Context(), and this
		// drops it on the floor.
		data, err := b.Get(context.Background(), c.Arg(0).(string))
		if err != nil {
			return err
		}
		c.SetResult(data)
		return nil
	})
}

// plainHooks implements SpecialHooks but not the re-entrant StepHooks
// the pooled client requires.
type plainHooks struct{}

func (plainHooks) EncodeSpecial(op, param string, enc flexrpc.Encoder, v flexrpc.Value) error {
	return nil
}

func (plainHooks) DecodeSpecial(op, param string, dec flexrpc.Decoder) (flexrpc.Value, error) {
	return nil, nil
}

// bindPooled is the seeded FV019: the runtime rejects these hooks at
// bind time, but the analyzer flags the call site before anything
// runs.
func bindPooled(p *flexrpc.Presentation, conn flexrpc.Conn) (*flexrpc.Client, error) {
	return flexrpc.NewParallelClient(p, flexrpc.XDRCodec, conn, plainHooks{}) // FV019
}

// lastRecord retains decoder bytes from the raw Sun RPC handler below
// — the seeded FV023 retention target.
var lastRecord []byte

// rawServer is the seeded FV023: the handler would be safe on the
// serial path, where each connection's record buffer stays private
// until its next request, but SetNetpoll(true) routes every record
// through the shared worker pool, which recycles the buffer the
// moment the handler returns.
func rawServer() *flexrpc.SunServer {
	s := flexrpc.NewSunServer(0x20049630, 1)
	s.SetNetpoll(true)
	s.Register(1, func(d *flexrpc.SunDecoder, e *flexrpc.SunEncoder) error {
		payload, err := d.Opaque()
		if err != nil {
			return err
		}
		lastRecord = payload // FV023: pooled record bytes escape the handler
		e.PutUint32(uint32(len(payload)))
		return nil
	})
	return s
}

func main() {
	compiled, err := flexrpc.Compile(flexrpc.Options{
		Frontend: flexrpc.FrontendCORBA,
		Filename: "vetgo.idl",
		Source:   idl,
	})
	if err != nil {
		log.Fatal(err)
	}
	serverSide, err := compiled.WithPDL("server.pdl", serverPDL)
	if err != nil {
		log.Fatal(err)
	}

	disp := flexrpc.NewDispatcher(serverSide.Pres)
	register(disp, mapBackend{"k": []byte("v")})
	inv, err := flexrpc.ConnectInProc(compiled.Pres, disp)
	if err != nil {
		log.Fatal(err)
	}

	// The naive smoke test every one of these bugs survives.
	if _, _, err := inv.Invoke("put", []flexrpc.Value{[]byte("payload")}, nil, nil); err != nil {
		log.Fatal(err)
	}
	if _, ret, err := inv.Invoke("vg_bump", []flexrpc.Value{"k"}, nil, nil); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("vg_bump -> %v (looks fine; a retransmission would double-count)\n", ret)
	}
	if _, ret, err := inv.Invoke("vg_fetch", []flexrpc.Value{"k"}, nil, nil); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("vg_fetch -> %q (looks fine; ignores the caller's deadline)\n", ret)
	}

	// The pooled bind even succeeds here: the runtime only rejects
	// plain hooks once a [special] parameter needs them, so the
	// mistake waits for the contract to grow one. The analyzer flags
	// the call site today.
	if _, err := bindPooled(compiled.Pres, nil); err != nil {
		fmt.Println("pooled bind rejected at runtime:", err)
	} else {
		fmt.Println("pooled bind accepted (until a [special] parameter appears)")
	}
	// The raw Sun RPC server builds cleanly too: serial traffic would
	// never expose the retained record bytes — only netpoll-mode
	// concurrency does, which is exactly when no test is watching.
	_ = rawServer()
	fmt.Println("run flexc vet -go to see what the smoke test missed")
}
