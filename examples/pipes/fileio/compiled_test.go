package fileio

import (
	"bytes"
	"fmt"
	"testing"

	"flexrpc"
	"flexrpc/internal/mach"
	"flexrpc/internal/runtime"
	"flexrpc/internal/transport/machipc"
)

// startServer runs a FileIO implementation over machipc and returns
// a dialer for fresh client connections.
func startServer(t testing.TB, srv FileIOServer) func() *machipc.Conn {
	t.Helper()
	c := compileFixture(t)
	disp := flexrpc.NewDispatcher(c.Pres)
	RegisterFileIO(disp, srv)
	plan, err := runtime.NewPlan(c.Pres, runtime.XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := mach.NewKernel()
	srvTask := k.NewTask("server")
	_, port := srvTask.AllocatePort()
	machipc.Announce(port, c.Pres)
	go func() { _ = machipc.Serve(srvTask, port, disp, plan) }()
	t.Cleanup(port.Destroy)

	n := 0
	return func() *machipc.Conn {
		n++
		task := k.NewTask(fmt.Sprintf("client%d", n))
		conn, err := machipc.Dial(task, task.InsertRight(port), c.Pres)
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}
}

// compileFixture compiles the committed IDL (shared with fileio_test).
func compileFixture(t testing.TB) *flexrpc.Compiled {
	t.Helper()
	if tt, ok := t.(*testing.T); ok {
		return compileIDL(tt)
	}
	c, err := flexrpc.Compile(flexrpc.Options{
		Frontend: flexrpc.FrontendCORBA,
		Filename: "fileio.idl",
		Source: `interface FileIO {
			sequence<octet> read(in unsigned long count);
			void write(in sequence<octet> data);
			void close_write();
			void close_read();
		};`,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The compiled-stub client must interoperate with a server built
// from the interpreted stubs: same wire, different back-end.
func TestCompiledClientInteroperates(t *testing.T) {
	dial := startServer(t, &impl{})
	cc := NewFileIOCompiledClient(dial(), flexrpc.XDRCodec)

	payload := bytes.Repeat([]byte("compiled"), 32)
	if err := cc.Write(payload); err != nil {
		t.Fatal(err)
	}
	got, err := cc.Read(uint32(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read = %d bytes", len(got))
	}
	if err := cc.CloseWrite(); err != nil {
		t.Fatal(err)
	}
}

// Compiled and interpreted clients produce identical observable
// behavior against one server.
func TestCompiledMatchesInterpreted(t *testing.T) {
	dial := startServer(t, &impl{})
	c := compileFixture(t)
	rc, err := flexrpc.NewClient(c.Pres, flexrpc.XDRCodec, dial(), nil)
	if err != nil {
		t.Fatal(err)
	}
	interp := NewFileIOClient(rc)
	comp := NewFileIOCompiledClient(dial(), flexrpc.XDRCodec)

	if err := interp.Write([]byte("shared state")); err != nil {
		t.Fatal(err)
	}
	a, err := interp.Read(6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := comp.Read(6)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != "shared" || string(b) != " state" {
		t.Fatalf("reads = %q, %q", a, b)
	}
}

// discardImpl is the benchmark server: writes vanish, reads return a
// fixed buffer, so the server does constant work per call.
type discardImpl struct{}

var discardData = bytes.Repeat([]byte{0xA5}, 4096)

func (discardImpl) Read(call *flexrpc.Call, count uint32) ([]byte, error) {
	if int(count) > len(discardData) {
		count = uint32(len(discardData))
	}
	return discardData[:count], nil
}
func (discardImpl) Write(call *flexrpc.Call, data []byte) error { return nil }
func (discardImpl) CloseWrite(call *flexrpc.Call) error         { return nil }
func (discardImpl) CloseRead(call *flexrpc.Call) error          { return nil }

// BenchmarkMarshalModes compares the three stub back-ends the system
// offers for the same operation over the same transport: interpreted
// plans, compiled (generated) marshal code, and hand-written marshal
// code. The paper's claim — generated stubs match hand-coded ones —
// holds for the compiled back-end; interpretation pays a visible
// premium.
func BenchmarkMarshalModes(b *testing.B) {
	dial := startServer(b, discardImpl{})
	c := compileFixture(b)
	payload := make([]byte, 2048)

	b.Run("interpreted", func(b *testing.B) {
		rc, err := flexrpc.NewClient(c.Pres, flexrpc.XDRCodec, dial(), nil)
		if err != nil {
			b.Fatal(err)
		}
		client := NewFileIOClient(rc)
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if err := client.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		client := NewFileIOCompiledClient(dial(), flexrpc.XDRCodec)
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if err := client.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hand", func(b *testing.B) {
		conn := dial()
		enc := flexrpc.XDRCodec.NewEncoder()
		var replyBuf []byte
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			enc.Reset()
			enc.PutBytes(payload)
			_, reply, err := flexrpc.RawCall(conn, flexrpc.XDRCodec, 1, enc.Bytes(), replyBuf)
			if err != nil {
				b.Fatal(err)
			}
			if cap(reply) > cap(replyBuf) {
				replyBuf = reply[:cap(reply)]
			}
		}
	})
}
