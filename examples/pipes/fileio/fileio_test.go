package fileio

import (
	"bytes"
	"os"
	"testing"

	"flexrpc"
	"flexrpc/internal/codegen"
	"flexrpc/internal/core"
)

// impl is a trivial in-memory FileIO server used to exercise the
// generated stubs end to end.
type impl struct {
	buf bytes.Buffer
}

func (s *impl) Read(call *flexrpc.Call, count uint32) ([]byte, error) {
	out := make([]byte, count)
	n, _ := s.buf.Read(out)
	return out[:n], nil
}

func (s *impl) Write(call *flexrpc.Call, data []byte) error {
	s.buf.Write(data)
	return nil
}

func (s *impl) CloseWrite(call *flexrpc.Call) error { return nil }
func (s *impl) CloseRead(call *flexrpc.Call) error  { return nil }

func compileIDL(t *testing.T) *core.Compiled {
	t.Helper()
	src, err := os.ReadFile("fileio.idl")
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(core.Options{
		Frontend: core.FrontendCORBA,
		Filename: "fileio.idl",
		Source:   string(src),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeneratedStubsEndToEnd(t *testing.T) {
	c := compileIDL(t)
	disp := flexrpc.NewDispatcher(c.Pres)
	RegisterFileIO(disp, &impl{})
	conn, err := flexrpc.ConnectInProc(c.Pres, disp)
	if err != nil {
		t.Fatal(err)
	}
	client := NewFileIOClient(conn)

	if err := client.Write([]byte("through generated stubs")); err != nil {
		t.Fatal(err)
	}
	got, err := client.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "through" {
		t.Fatalf("read = %q", got)
	}
	if err := client.CloseWrite(); err != nil {
		t.Fatal(err)
	}
}

// The committed file must match what the generator produces from the
// committed IDL — the usual go:generate freshness check.
func TestGeneratedFileIsFresh(t *testing.T) {
	c := compileIDL(t)
	want, err := codegen.Generate(c, codegen.Options{Package: "fileio"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("fileio.go")
	if err != nil {
		t.Fatal(err)
	}
	// The committed header names the IDL path used at generation
	// time; normalize it before comparing.
	normalize := func(b []byte) []byte {
		lines := bytes.SplitN(b, []byte("\n"), 2)
		return lines[1]
	}
	if !bytes.Equal(normalize(got), normalize(want)) {
		t.Fatal("fileio.go is stale; regenerate with:\n  go run ./cmd/flexc -frontend corba -backend go -package fileio -o examples/pipes/fileio/fileio.go examples/pipes/fileio/fileio.idl")
	}
}
