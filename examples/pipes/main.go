// Pipes: the paper's §4.2 pipe server. A Unix-pipe service runs as
// its own (simulated) Mach task; writer and reader programs talk to
// it over the streamlined IPC transport through generated stubs.
// The run compares the default presentation against the Figure 5
// [dealloc(never)] presentation, which lets the server return slices
// of its circular buffer instead of copying.
//
//	go run ./examples/pipes
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"flexrpc/examples/pipes/fileio"
	"flexrpc/internal/mach"
	"flexrpc/internal/pipeserver"
	"flexrpc/internal/pres"
	"flexrpc/internal/runtime"
	"flexrpc/internal/transport/machipc"
)

const (
	pipeSize = 4096
	total    = 8 << 20
	chunk    = 2048
)

func main() {
	fmt.Printf("pushing %d MB through a %d-byte pipe server, %d-byte calls\n\n",
		total>>20, pipeSize, chunk)
	for _, mode := range []struct {
		name string
		pdl  string
	}{
		{"default presentation (server copies out of its circular buffer)", ""},
		{"[dealloc(never)] presentation (server returns buffer slices)", pipeserver.Figure5PDL},
	} {
		elapsed, err := run(mode.pdl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-66s %6.1f MB/s\n", mode.name, float64(total)/elapsed.Seconds()/1e6)
	}
}

func run(serverPDL string) (time.Duration, error) {
	compiled, err := pipeserver.Compile()
	if err != nil {
		return 0, err
	}
	serverPres := compiled.Pres
	if serverPDL != "" {
		sc, err := compiled.WithPDL("server.pdl", serverPDL)
		if err != nil {
			return 0, err
		}
		serverPres = sc.Pres
	}
	srv, err := pipeserver.NewServer(pipeSize, serverPres)
	if err != nil {
		return 0, err
	}

	// The pipe server is its own task; writer and reader are two
	// more, each binding to the server's port.
	k := mach.NewKernel()
	serverTask := k.NewTask("pipe-server")
	_, port := serverTask.AllocatePort()
	srv.ServeMach(serverTask, port, 2)
	defer port.Destroy()

	dial := func(name string) (*fileio.FileIOClient, error) {
		task := k.NewTask(name)
		conn, err := machipc.Dial(task, task.InsertRight(port), compiled.DefaultPres(pres.StyleCORBA))
		if err != nil {
			return nil, err
		}
		rc, err := runtime.NewClient(compiled.DefaultPres(pres.StyleCORBA), runtime.XDRCodec, conn, nil)
		if err != nil {
			return nil, err
		}
		// The generated typed stubs ride on any transport.
		return fileio.NewFileIOClient(rc), nil
	}
	writer, err := dial("writer")
	if err != nil {
		return 0, err
	}
	reader, err := dial("reader")
	if err != nil {
		return 0, err
	}

	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		data := make([]byte, chunk)
		for off := 0; off < total; off += chunk {
			if err := writer.Write(data); err != nil {
				errc <- err
				return
			}
		}
		errc <- writer.CloseWrite()
	}()
	got := 0
	for {
		data, err := reader.Read(chunk)
		if err != nil && err != io.EOF {
			return 0, err
		}
		if len(data) == 0 {
			break
		}
		got += len(data)
	}
	if err := <-errc; err != nil {
		return 0, err
	}
	if got != total {
		return 0, fmt.Errorf("reader got %d bytes, want %d", got, total)
	}
	return time.Since(start), nil
}
