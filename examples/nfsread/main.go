// NFSRead: the paper's §4.1 experiment as a runnable demo. An
// NFS-subset server exports an 8 MB file over Sun RPC/XDR across a
// simulated Ethernet; a monolithic-kernel NFS client reads it into a
// user-space buffer through four stub variants: {conventional,
// user-space buffer presentation} x {hand-coded, generated}.
//
// The conventional presentation unmarshals into an intermediate
// kernel buffer and then copies out to user space; the [special]
// presentation (the paper's Figure 1 PDL) unmarshals straight into
// the user buffer via the kernel's copy-out routine.
//
//	go run ./examples/nfsread
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"flexrpc/internal/kernbuf"
	"flexrpc/internal/netsim"
	"flexrpc/internal/nfs"
)

const fileSize = 8 << 20

func main() {
	fmt.Println("client PDL for the user-space buffer presentation (paper Figure 1):")
	fmt.Println(nfs.SpecialPDL)

	for _, v := range []struct {
		name    string
		special bool
		hand    bool
	}{
		{"conventional presentation, hand-coded stubs", false, true},
		{"conventional presentation, generated stubs", false, false},
		{"user-space buffer presentation, hand-coded stubs", true, true},
		{"user-space buffer presentation, generated stubs", true, false},
	} {
		if err := run(v.name, v.special, v.hand); err != nil {
			log.Fatal(err)
		}
	}
}

func run(name string, special, hand bool) error {
	server := nfs.NewServer(fileSize)
	clientConn, serverConn := netsim.BufferedPipe(netsim.Ethernet10, 64)
	defer clientConn.Close()
	server.Start(serverConn)

	var client nfs.ReadClient
	if hand {
		client = nfs.NewHandClient(clientConn, special)
	} else {
		gc, err := nfs.NewGenClient(clientConn, special)
		if err != nil {
			return err
		}
		client = gc
	}

	userBuf := kernbuf.NewUserBuffer(fileSize)
	start := time.Now()
	off := uint32(0)
	for int(off) < fileSize {
		n, err := client.ReadAt(userBuf, int(off), off, nfs.MaxData)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		off += uint32(n)
	}
	total := time.Since(start)

	if !bytes.Equal(userBuf.UserView(), server.FileData()) {
		return fmt.Errorf("%s: user buffer does not match the exported file", name)
	}
	s := client.Stats()
	fmt.Printf("%-50s total %6.0f ms   net+server %6.0f ms   client %5.1f ms   copies: %d user, %d kernel\n",
		name,
		total.Seconds()*1e3,
		float64(s.NetServerNanos)/1e6,
		float64(s.ClientNanos())/1e6,
		s.Meter.UserCopies, s.Meter.KernelCopies)
	return nil
}
