// Syslog: the paper's introductory example. One CORBA interface, two
// presentations of it: the standard CORBA mapping, and the alternate
// prototype taking an explicit length parameter via
// [length_is(length)] — the paper's very first illustration that the
// programmer's contract can vary while the network contract stays
// fixed. The example prints both generated Go prototypes, then calls
// the server through both presentations over one dispatcher.
//
//	go run ./examples/syslog
package main

import (
	"fmt"
	"log"
	"strings"

	"flexrpc"
	"flexrpc/internal/codegen"
	"flexrpc/internal/core"
)

// The paper's introduction, verbatim (plus the explicit length
// parameter the alternate presentation references).
const idl = `
interface SysLog {
    void write_msg(in string msg, in long length);
};`

const alternatePDL = `
interface SysLog {
    write_msg([length_is(length)] msg);
};`

func main() {
	compiled, err := flexrpc.Compile(flexrpc.Options{
		Frontend: flexrpc.FrontendCORBA,
		Filename: "syslog.idl",
		Source:   idl,
	})
	if err != nil {
		log.Fatal(err)
	}
	alternate, err := compiled.WithPDL("alternate.pdl", alternatePDL)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("network contract (identical for both endpoints):")
	fmt.Println(" ", compiled.Iface.Signature())
	fmt.Println()
	fmt.Println("standard presentation prototype:")
	fmt.Println(" ", prototype(compiled))
	fmt.Println("alternate presentation prototype (paper introduction):")
	fmt.Println(" ", prototype(toCore(alternate)))
	fmt.Println()

	// One server; clients of either presentation interoperate.
	disp := flexrpc.NewDispatcher(compiled.Pres)
	disp.Handle("write_msg", func(c *flexrpc.Call) error {
		fmt.Printf("  syslog: %q (declared length %d)\n", c.Arg(0).(string), c.Arg(1).(int32))
		return nil
	})
	for name, p := range map[string]*flexrpc.Presentation{
		"standard":  compiled.Pres,
		"alternate": alternate.Pres,
	} {
		conn, err := flexrpc.ConnectInProc(p, disp)
		if err != nil {
			log.Fatal(err)
		}
		msg := "hello from the " + name + " presentation"
		if _, _, err := conn.Invoke("write_msg",
			[]flexrpc.Value{msg, int32(len(msg))}, nil, nil); err != nil {
			log.Fatal(err)
		}
	}
}

// toCore converts the facade's Compiled (an alias) for codegen use.
func toCore(c *flexrpc.Compiled) *core.Compiled { return c }

// prototype extracts the generated client method signature plus any
// presentation-attribute documentation. In the paper's C mapping the
// two presentations produce different function prototypes (char* vs
// char* plus int); in Go a string already carries its length, so the
// [length_is] attribute surfaces as stub documentation while the
// signature stays idiomatic — presentation adapting to the *local
// language's* conventions, which is exactly its job.
func prototype(c *core.Compiled) string {
	src, err := codegen.Generate(c, codegen.Options{Package: "syslog"})
	if err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(string(src), "\n")
	for i, line := range lines {
		if strings.Contains(line, "func (c *SysLogClient) WriteMsg") {
			sig := strings.TrimSuffix(strings.TrimSpace(line), " {")
			if i > 0 && strings.Contains(lines[i-1], "presentation attributes") {
				return sig + "\n      " + strings.TrimSpace(lines[i-1])
			}
			return sig
		}
	}
	return "(not found)"
}
