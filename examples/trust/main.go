// Trust: the paper's §4.5 experiments. Endpoint presentations carry
// trust levels ([leaky], [leaky, unprotected]) and naming relaxation
// ([nonunique]); at bind time the simulated Mach kernel verifies the
// two endpoint signatures and threads together a call path doing
// exactly the register save/clear/restore and name-table work the
// declared trust requires — and no more.
//
//	go run ./examples/trust
package main

import (
	"fmt"
	"log"
	"time"

	"flexrpc/internal/mach"
)

const iters = 20000

func main() {
	fmt.Println("null RPC time by trust combination (paper Figure 12):")
	fmt.Printf("%-28s", "")
	levels := []mach.Trust{mach.TrustNoneLevel, mach.TrustLeakyLevel, mach.TrustFullLevel}
	for _, st := range levels {
		fmt.Printf("  server [%s]", st)
	}
	fmt.Println()
	for _, ct := range levels {
		fmt.Printf("client [%-17s]", ct.String())
		for _, st := range levels {
			ns, err := nullRPC(ct, st)
			if err != nil {
				log.Fatal(err)
			}
			w := len(fmt.Sprintf("  server [%s]", st))
			fmt.Printf("%*s", w, fmt.Sprintf("%d ns", ns))
		}
		fmt.Println()
	}

	fmt.Println("\nport right transfer (paper: 32.4us -> 24.7us, -24%):")
	for _, nonunique := range []bool{false, true} {
		ns, err := portTransfer(nonunique)
		if err != nil {
			log.Fatal(err)
		}
		name := "unique-name invariant"
		if nonunique {
			name = "[nonunique] presentation"
		}
		fmt.Printf("  %-26s %5d ns/transfer\n", name, ns)
	}
}

// nullRPC measures one trust combination.
func nullRPC(clientTrust, serverTrust mach.Trust) (int64, error) {
	k := mach.NewKernel()
	server := k.NewTask("server")
	client := k.NewTask("client")
	_, port := server.AllocatePort()
	defer port.Destroy()

	// Bind-time signature exchange: the kernel checks the contracts
	// match and specializes the call path for the declared trust.
	port.RegisterServer(mach.EndpointSig{Contract: "null-demo", Trust: serverTrust})
	bind, err := mach.Bind(client, client.InsertRight(port),
		mach.EndpointSig{Contract: "null-demo", Trust: clientTrust})
	if err != nil {
		return 0, err
	}
	go serveNull(server, port)

	req := &mach.Message{}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := bind.Call(req, nil); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / iters, nil
}

// portTransfer measures passing one port right per call.
func portTransfer(nonunique bool) (int64, error) {
	k := mach.NewKernel()
	server := k.NewTask("server")
	client := k.NewTask("client")
	_, port := server.AllocatePort()
	defer port.Destroy()

	port.RegisterServer(mach.EndpointSig{
		Contract:       "xfer-demo",
		Trust:          mach.TrustFullLevel,
		NonUniquePorts: nonunique,
	})
	bind, err := mach.Bind(client, client.InsertRight(port),
		mach.EndpointSig{Contract: "xfer-demo", Trust: mach.TrustFullLevel})
	if err != nil {
		return 0, err
	}
	go func() {
		for {
			in, err := server.Receive(port, nil)
			if err != nil {
				return
			}
			for _, n := range in.PortNames {
				_ = server.DeallocateRight(n)
			}
			in.Reply(&mach.Message{})
		}
	}()

	_, carried := client.AllocatePort()
	req := &mach.Message{Ports: []*mach.Port{carried}}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := bind.Call(req, nil); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / iters, nil
}

func serveNull(task *mach.Task, port *mach.Port) {
	for {
		in, err := task.Receive(port, nil)
		if err != nil {
			return
		}
		in.Reply(&mach.Message{})
	}
}
