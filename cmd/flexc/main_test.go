package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSigBackend(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { void op(in long x); };`)
	var out bytes.Buffer
	if err := run([]string{"-backend", "sig", idl}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "F{op(in:i32)->void}") {
		t.Fatalf("sig = %q", out.String())
	}
}

func TestPresBackendWithPDL(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { sequence<octet> get(in unsigned long n); };`)
	pdl := write(t, dir, "f.pdl", `[leaky] interface F { get([dealloc(never)] return); };`)
	var out bytes.Buffer
	if err := run([]string{"-backend", "pres", "-pdl", pdl, idl}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"trust leaky", "dealloc(never)"} {
		if !strings.Contains(s, want) {
			t.Errorf("pres output missing %q:\n%s", want, s)
		}
	}
}

func TestGoBackendToFile(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { long add(in long a, in long b); };`)
	outPath := filepath.Join(dir, "f.go")
	if err := run([]string{"-backend", "go", "-package", "f", "-o", outPath, idl}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "func (c *FClient) Add(a int32, b int32) (int32, error)") {
		t.Fatalf("generated:\n%s", src)
	}
}

func TestMIGFrontendFlag(t *testing.T) {
	dir := t.TempDir()
	defs := write(t, dir, "s.defs", `
		subsystem s 700;
		routine ping(server : mach_port_t; in x : int);`)
	var out bytes.Buffer
	if err := run([]string{"-frontend", "mig", "-backend", "sig", defs}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ping(in:i32)") {
		t.Fatalf("sig = %q", out.String())
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { void op(); };`)
	cases := [][]string{
		{idl, "extra"},                      // arg count
		{"-frontend", "cobol", idl},         // unknown frontend
		{"-style", "baroque", idl},          // unknown style
		{"-backend", "fortran", idl},        // unknown backend
		{filepath.Join(dir, "missing.idl")}, // unreadable input
		{"-pdl", filepath.Join(dir, "missing.pdl"), idl},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

// ---- flexc stats -----------------------------------------------------

func TestStatsTextDump(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `
		interface F {
			void nop();
			sequence<octet> echo(in sequence<octet> data);
		};`)
	var out bytes.Buffer
	if err := run([]string{"stats", "-calls", "25", "-payload", "128", "-trace", "8", idl}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"op.nop.calls 25",
		"op.echo.calls 25",
		"op.echo.bytes_out",
		"codec.encode.count 50",
		"trace.events ",
		"stage=send",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("stats dump missing %q:\n%s", want, s)
		}
	}
}

func TestStatsJSONDump(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { long add(in long a, in long b); };`)
	var out bytes.Buffer
	if err := run([]string{"stats", "-json", "-calls", "10", idl}, &out); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Ops []struct {
			Name  string `json:"name"`
			Calls uint64 `json:"calls"`
		} `json:"ops"`
	}
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(snap.Ops) != 1 || snap.Ops[0].Name != "add" || snap.Ops[0].Calls != 10 {
		t.Fatalf("json snapshot = %+v", snap)
	}
}

// ---- flexc vet -------------------------------------------------------

func TestVetCleanInterface(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { sequence<octet> get(in unsigned long n); };`)
	var out bytes.Buffer
	if err := run([]string{"vet", idl}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "" {
		t.Fatalf("clean interface produced output:\n%s", out.String())
	}
}

// The repo's own examples must stay lint-clean, alone and as a
// client/server pair.
func TestVetExamplesStayClean(t *testing.T) {
	idl := filepath.Join("..", "..", "examples", "pipes", "fileio", "fileio.idl")
	client := filepath.Join("..", "..", "examples", "pipes", "fileio", "client.pdl")
	server := filepath.Join("..", "..", "examples", "pipes", "fileio", "server.pdl")
	for _, args := range [][]string{
		{"vet", idl},
		{"vet", "-pdl", client, "-peer-pdl", server, idl},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Errorf("args %v: %v\n%s", args, err, out.String())
		}
		if out.String() != "" {
			t.Errorf("args %v: examples not lint-clean:\n%s", args, out.String())
		}
	}
}

func TestVetReportsAnnotationErrors(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { sequence<octet> get(in unsigned long n); };`)
	pdl := write(t, dir, "f.pdl", `interface F { get([nonunique] n); frob([special] x); };`)
	var out bytes.Buffer
	err := run([]string{"vet", "-pdl", pdl, idl}, &out)
	if err == nil {
		t.Fatal("vet with error-severity findings must exit non-zero")
	}
	s := out.String()
	for _, want := range []string{"f.pdl:1:", "[FV011]", "[FV007]", "F.get.n"} {
		if !strings.Contains(s, want) {
			t.Errorf("vet output missing %q:\n%s", want, s)
		}
	}
}

func TestVetWarningsDoNotFail(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { void put(in sequence<octet> data); };`)
	pdl := write(t, dir, "f.pdl", `interface F { put([trashable, special] data); };`)
	var out bytes.Buffer
	if err := run([]string{"vet", "-pdl", pdl, idl}, &out); err != nil {
		t.Fatalf("warning-only vet failed: %v", err)
	}
	if !strings.Contains(out.String(), "[FV004]") {
		t.Fatalf("expected FV004 warning:\n%s", out.String())
	}
}

func TestVetCrossEndpoint(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { void put(in sequence<octet> data); };`)
	cl := write(t, dir, "client.pdl", `interface F { put([dealloc(always)] data); };`)
	sv := write(t, dir, "server.pdl", `interface F { put([preserved] data); };`)
	var out bytes.Buffer
	err := run([]string{"vet", "-pdl", cl, "-peer-pdl", sv, idl}, &out)
	if err == nil || !strings.Contains(out.String(), "[FV002]") {
		t.Fatalf("use-after-transfer pair not detected (err=%v):\n%s", err, out.String())
	}
}

func TestVetContractDrift(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { void put(in sequence<octet> data); };`)
	peer := write(t, dir, "peer.idl", `interface F { void put(in sequence<octet> data, in unsigned long off); };`)
	var out bytes.Buffer
	err := run([]string{"vet", "-peer-idl", peer, idl}, &out)
	if err == nil || !strings.Contains(out.String(), "[FV001]") {
		t.Fatalf("contract drift not detected (err=%v):\n%s", err, out.String())
	}
}

func TestVetTrustOverNetwork(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { void ping(); };`)
	pdl := write(t, dir, "f.pdl", `[leaky, unprotected] interface F { };`)
	var out bytes.Buffer
	// Same-domain: clean.
	if err := run([]string{"vet", "-pdl", pdl, "-transport", "inproc", idl}, &out); err != nil || out.Len() != 0 {
		t.Fatalf("inproc trust flagged (err=%v):\n%s", err, out.String())
	}
	// Network transport: error.
	out.Reset()
	err := run([]string{"vet", "-pdl", pdl, "-transport", "suntcp", idl}, &out)
	if err == nil || !strings.Contains(out.String(), "[FV005]") {
		t.Fatalf("network trust not flagged (err=%v):\n%s", err, out.String())
	}
}

// -json emits NDJSON: one diagnostic object per line, so pipelines
// can stream-parse without buffering an array.
func TestVetJSONOutput(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { sequence<octet> get(in unsigned long n); };`)
	pdl := write(t, dir, "f.pdl", `interface F { get([nonunique] n); frob([special] x); };`)
	var out bytes.Buffer
	err := run([]string{"vet", "-json", "-pdl", pdl, idl}, &out)
	if err == nil {
		t.Fatal("expected non-zero exit")
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want one NDJSON line per diagnostic, got %d:\n%s", len(lines), out.String())
	}
	var diag map[string]any
	if jerr := json.Unmarshal([]byte(lines[0]), &diag); jerr != nil {
		t.Fatalf("line 0 is not JSON: %v\n%s", jerr, lines[0])
	}
	if diag["id"] != "FV011" || diag["severity"] != "error" {
		t.Fatalf("json = %v", diag)
	}
}

// The vet exit contract: clean 0, findings 1, analysis failures 2.
func TestVetExitCodes(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { sequence<octet> get(in unsigned long n); };`)
	pdl := write(t, dir, "f.pdl", `interface F { get([nonunique] n); };`)

	if err := run([]string{"vet", idl}, &bytes.Buffer{}); err != nil {
		t.Fatalf("clean vet: %v", err)
	}
	err := run([]string{"vet", "-pdl", pdl, idl}, &bytes.Buffer{})
	if err == nil || exitCode(err) != 1 {
		t.Fatalf("findings must exit 1, got %v (code %d)", err, exitCode(err))
	}
	err = run([]string{"vet", filepath.Join(dir, "missing.idl")}, &bytes.Buffer{})
	if err == nil || exitCode(err) != 2 {
		t.Fatalf("load failure must exit 2, got %v (code %d)", err, exitCode(err))
	}
	err = run([]string{"vet", "-go", "-dir", dir, "./..."}, &bytes.Buffer{})
	if err == nil || exitCode(err) != 2 {
		t.Fatalf("-go outside a module must exit 2, got %v (code %d)", err, exitCode(err))
	}
}

// -Werror promotes warning findings to a non-zero exit.
func TestVetWerror(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { void put(in sequence<octet> data); };`)
	pdl := write(t, dir, "f.pdl", `interface F { put([trashable, special] data); };`)
	if err := run([]string{"vet", "-pdl", pdl, idl}, &bytes.Buffer{}); err != nil {
		t.Fatalf("warnings without -Werror must exit 0: %v", err)
	}
	err := run([]string{"vet", "-Werror", "-pdl", pdl, idl}, &bytes.Buffer{})
	if err == nil || exitCode(err) != 1 {
		t.Fatalf("warnings with -Werror must exit 1, got %v (code %d)", err, exitCode(err))
	}
}

// The Go-side suite through the CLI: seeded violations in the
// analyzer's own fixture tree fire with positions; the repo's real
// packages stay clean.
func TestVetGoFixtures(t *testing.T) {
	root := filepath.Join("..", "..")
	var out bytes.Buffer
	err := run([]string{"vet", "-go", "-json", "-dir", root,
		"./internal/analyze/gocheck/testdata/src/fv017",
		"./internal/analyze/gocheck/testdata/src/clean"}, &out)
	if err == nil || exitCode(err) != 1 {
		t.Fatalf("seeded violations must exit 1, got %v", err)
	}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		var diag struct {
			ID   string `json:"id"`
			File string `json:"file"`
			Line int    `json:"line"`
		}
		if jerr := json.Unmarshal([]byte(line), &diag); jerr != nil {
			t.Fatalf("not NDJSON: %v\n%s", jerr, line)
		}
		if diag.ID != "FV017" || diag.Line == 0 {
			t.Fatalf("unexpected diagnostic %+v", diag)
		}
		if !strings.Contains(diag.File, "testdata/src/fv017") {
			t.Fatalf("finding outside the seeded package: %+v", diag)
		}
	}
}

// -certify emits the static plan certificate for an example contract:
// the null RPC certifies 0-alloc on both sides, the borrow-mode put
// certifies the single boxing allocation, and every variable-length
// decode step carries the plan's bound.
func TestVetCertify(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "hot.idl", `
		interface Hot {
			void nop();
			void put(in sequence<octet> data);
		};`)
	var out bytes.Buffer
	if err := run([]string{"vet", "-certify", idl}, &out); err != nil {
		t.Fatal(err)
	}
	var cert struct {
		Interface string `json:"interface"`
		Codec     string `json:"codec"`
		MaxDecode uint32 `json:"max_decode"`
		Ops       []struct {
			Op               string `json:"op"`
			ClientAllocBound int    `json:"client_alloc_bound"`
			ServerAllocBound int    `json:"server_alloc_bound"`
			ClientAllocFree  bool   `json:"client_alloc_free"`
			ServerAllocFree  bool   `json:"server_alloc_free"`
		} `json:"ops"`
	}
	if err := json.Unmarshal(out.Bytes(), &cert); err != nil {
		t.Fatalf("certificate is not JSON: %v\n%s", err, out.String())
	}
	if cert.Interface != "Hot" || cert.Codec != "xdr" || cert.MaxDecode == 0 {
		t.Fatalf("certificate header = %+v", cert)
	}
	byOp := map[string]int{}
	for i, oc := range cert.Ops {
		byOp[oc.Op] = i
	}
	nop := cert.Ops[byOp["nop"]]
	if !nop.ClientAllocFree || !nop.ServerAllocFree {
		t.Fatalf("null RPC not certified alloc-free: %+v", nop)
	}
	put := cert.Ops[byOp["put"]]
	if !put.ClientAllocFree || put.ServerAllocBound != 1 {
		t.Fatalf("borrow put certificate = %+v", put)
	}
}

func TestVetListRegistry(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"vet", "-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"FV001", "FV005", "FV012"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("registry listing missing %s", id)
		}
	}
}

// The analyzer is dialect-agnostic: the same checks fire no matter
// which front-end produced the contract.
func TestVetAcrossFrontends(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		frontend, file, src string
		op, bufParam        string
	}{
		{
			frontend: "corba",
			file:     "f.idl",
			src:      `interface F { void put(in sequence<octet> data); };`,
			op:       "put", bufParam: "data",
		},
		{
			frontend: "sun",
			file:     "f.x",
			src: `
				typedef opaque buf<8192>;
				program F { version V { void PUT(buf) = 1; } = 1; } = 300099;`,
			op: "PUT", bufParam: "arg1",
		},
		{
			frontend: "mig",
			file:     "f.defs",
			src: `
				subsystem f 900;
				type buf_t = array[*:8192] of char;
				routine put(server : mach_port_t; in data : buf_t);`,
			op: "put", bufParam: "data",
		},
	}
	for _, tc := range cases {
		t.Run(tc.frontend, func(t *testing.T) {
			idl := write(t, dir, tc.file, tc.src)
			// Clean: the default presentation lints clean in every dialect.
			var out bytes.Buffer
			if err := run([]string{"vet", "-frontend", tc.frontend, idl}, &out); err != nil || out.Len() != 0 {
				t.Fatalf("default presentation not clean (err=%v):\n%s", err, out.String())
			}
			// Dirty: the same annotation mistake draws the same check ID.
			pdl := write(t, dir, tc.frontend+".pdl",
				`interface `+ifaceNameFor(tc.frontend)+` { `+tc.op+`([nonunique] `+tc.bufParam+`); };`)
			out.Reset()
			err := run([]string{"vet", "-frontend", tc.frontend, "-pdl", pdl, idl}, &out)
			if err == nil || !strings.Contains(out.String(), "[FV011]") {
				t.Fatalf("FV011 not detected (err=%v):\n%s", err, out.String())
			}
		})
	}
}

// ifaceNameFor returns the interface name each front-end derives from
// the sources in TestVetAcrossFrontends.
func ifaceNameFor(frontend string) string {
	switch frontend {
	case "sun":
		return "F_V"
	case "mig":
		return "f"
	}
	return "F"
}

// ---- flexc load ------------------------------------------------------

// TestMain lets the test binary stand in for the flexc executable when
// `flexc load -procs N` re-executes itself as a load worker: the
// parent sets FLEXC_LOAD_WORKER on every child, and the dispatch here
// runs before the testing framework would choke on the worker's argv.
func TestMain(m *testing.M) {
	if os.Getenv(loadWorkerEnv) != "" {
		if err := run(os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "flexc:", err)
			os.Exit(exitCode(err))
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const loadIDL = `interface L { void nop(); long ping(in long x); };`

// TestLoadMultiProcess: -procs forks real worker processes that drive
// the parent's unix-socket server and stream WireReports back; the
// combined report must cover every connection from every worker, pass
// the -check gate, and carry percentiles recomputed from the merged
// histograms.
func TestLoadMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes")
	}
	dir := t.TempDir()
	idl := write(t, dir, "l.idl", loadIDL)
	var out bytes.Buffer
	err := run([]string{"load",
		"-procs", "2", "-conns", "9", "-workers", "4",
		"-think", "1ms", "-warmup", "30ms", "-measure", "150ms", "-cooldown", "20ms",
		"-json", "-check", idl}, &out)
	if err != nil {
		t.Fatalf("load -procs 2: %v\n%s", err, out.String())
	}
	var rep struct {
		Clients   int     `json:"clients"`
		Completed uint64  `json:"completed"`
		Errors    uint64  `json:"errors"`
		Goodput   float64 `json:"goodput_per_sec"`
		P50       int64   `json:"p50_ns"`
		P99       int64   `json:"p99_ns"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report: %v\n%s", err, out.String())
	}
	if rep.Clients != 9 {
		t.Fatalf("combined clients = %d, want 9 (worker shares lost)", rep.Clients)
	}
	if rep.Completed == 0 || rep.Goodput <= 0 {
		t.Fatalf("no traffic completed: %s", out.String())
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors across workers:\n%s", rep.Errors, out.String())
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("merged percentiles broken: p50=%d p99=%d", rep.P50, rep.P99)
	}
}

// TestLoadNetpoll: -netpoll serves the event-driven runtime over a
// real unix socket; the run must complete cleanly (on platforms
// without a poller this exercises the transparent fallback).
func TestLoadNetpoll(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "l.idl", loadIDL)
	var out bytes.Buffer
	err := run([]string{"load",
		"-netpoll", "-conns", "16", "-workers", "4",
		"-think", "1ms", "-warmup", "30ms", "-measure", "150ms", "-cooldown", "20ms",
		"-json", "-check", idl}, &out)
	if err != nil {
		t.Fatalf("load -netpoll: %v\n%s", err, out.String())
	}
}
