package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSigBackend(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { void op(in long x); };`)
	var out bytes.Buffer
	if err := run([]string{"-backend", "sig", idl}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "F{op(in:i32)->void}") {
		t.Fatalf("sig = %q", out.String())
	}
}

func TestPresBackendWithPDL(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { sequence<octet> get(in unsigned long n); };`)
	pdl := write(t, dir, "f.pdl", `[leaky] interface F { get([dealloc(never)] return); };`)
	var out bytes.Buffer
	if err := run([]string{"-backend", "pres", "-pdl", pdl, idl}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"trust leaky", "dealloc(never)"} {
		if !strings.Contains(s, want) {
			t.Errorf("pres output missing %q:\n%s", want, s)
		}
	}
}

func TestGoBackendToFile(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { long add(in long a, in long b); };`)
	outPath := filepath.Join(dir, "f.go")
	if err := run([]string{"-backend", "go", "-package", "f", "-o", outPath, idl}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "func (c *FClient) Add(a int32, b int32) (int32, error)") {
		t.Fatalf("generated:\n%s", src)
	}
}

func TestMIGFrontendFlag(t *testing.T) {
	dir := t.TempDir()
	defs := write(t, dir, "s.defs", `
		subsystem s 700;
		routine ping(server : mach_port_t; in x : int);`)
	var out bytes.Buffer
	if err := run([]string{"-frontend", "mig", "-backend", "sig", defs}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ping(in:i32)") {
		t.Fatalf("sig = %q", out.String())
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	idl := write(t, dir, "f.idl", `interface F { void op(); };`)
	cases := [][]string{
		{idl, "extra"},                      // arg count
		{"-frontend", "cobol", idl},         // unknown frontend
		{"-style", "baroque", idl},          // unknown style
		{"-backend", "fortran", idl},        // unknown backend
		{filepath.Join(dir, "missing.idl")}, // unreadable input
		{"-pdl", filepath.Join(dir, "missing.pdl"), idl},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
