// Command flexc is the flexrpc stub compiler: the three-stage
// pipeline of the paper's §3 behind a CLI.
//
//	flexc -frontend corba -backend go -package fileio -o fileio.go fileio.idl
//	flexc -frontend sun -pdl client.pdl -backend pres nfs.x
//	flexc -backend sig fileio.idl
//	flexc vet -pdl client.pdl -peer-pdl server.pdl fileio.idl
//
// Front-ends: corba (CORBA IDL), sun (Sun RPC .x files), mig (.defs).
// Back-ends:  go   — generate a typed Go client stub and server skeleton
//
//	pres — print the computed presentation (after any PDL)
//	sig  — print the canonical network contract
//
// The vet subcommand runs flexvet, the cross-endpoint presentation
// analyzer and annotation lint pass; see `flexc vet -list` for the
// check registry.
//
// The stats subcommand compiles an interface, drives N calls per
// operation through the marshal runtime against default handlers,
// and dumps the observability layer's expvar-style counters —
// per-op calls and latency, copy/alloc/wire meters, and (with
// -trace) the per-call trace ring:
//
//	flexc stats -calls 1000 -payload 1024 fileio.idl
//	flexc stats -pdl client.pdl -json fileio.idl
//
// The load subcommand drives a compiled interface with the flexload
// generator against an in-process shared-pool server — N connections,
// open- or closed-loop pacing, goodput and latency percentiles; with
// -check it exits non-zero unless goodput is positive and the run is
// error-free:
//
//	flexc load -conns 256 -measure 1s fileio.idl
//	flexc load -mode open -rate 5000 -json -check fileio.idl
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"flexrpc/internal/analyze"
	"flexrpc/internal/analyze/gocheck"
	"flexrpc/internal/codegen"
	"flexrpc/internal/core"
	"flexrpc/internal/ir"
	"flexrpc/internal/pdl"
	"flexrpc/internal/pres"
	frt "flexrpc/internal/runtime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flexc:", err)
		os.Exit(exitCode(err))
	}
}

// An exitErr pins the process exit status. The vet subcommand's
// contract is three-way: 0 clean, 1 findings, 2 when the analysis
// itself could not run (load failures, bad invocations, analyzer
// panics).
type exitErr struct {
	code int
	err  error
}

func (e *exitErr) Error() string { return e.err.Error() }
func (e *exitErr) Unwrap() error { return e.err }

// findings wraps "the checks ran and found problems" (exit 1).
func findings(err error) error { return &exitErr{code: 1, err: err} }

// failure wraps "the checks could not run" (exit 2).
func failure(err error) error { return &exitErr{code: 2, err: err} }

func exitCode(err error) int {
	var ee *exitErr
	if errors.As(err, &ee) {
		return ee.code
	}
	return 1
}

func run(args []string, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "vet" {
		return runVet(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "stats" {
		return runStats(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "load" {
		return runLoad(args[1:], stdout)
	}
	fs := flag.NewFlagSet("flexc", flag.ContinueOnError)
	var (
		frontend  = fs.String("frontend", "corba", "IDL front-end: corba, sun or mig")
		ifaceName = fs.String("interface", "", "interface to compile (required when the file has several)")
		pdlFile   = fs.String("pdl", "", "PDL file modifying the presentation")
		style     = fs.String("style", "", "default presentation style: corba, sun or mig")
		backend   = fs.String("backend", "go", "back-end: go, pres or sig")
		pkg       = fs.String("package", "", "package name for the go back-end")
		out       = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: flexc [flags] <idl-file>")
	}
	idlPath := fs.Arg(0)
	src, err := os.ReadFile(idlPath)
	if err != nil {
		return err
	}
	fe, err := core.FrontendByName(*frontend)
	if err != nil {
		return err
	}
	opts := core.Options{
		Frontend:  fe,
		Filename:  idlPath,
		Source:    string(src),
		Interface: *ifaceName,
	}
	if opts.Style, err = parseStyle(*style); err != nil {
		return err
	}
	if *pdlFile != "" {
		pdlSrc, err := os.ReadFile(*pdlFile)
		if err != nil {
			return err
		}
		opts.PDL = string(pdlSrc)
		opts.PDLFilename = *pdlFile
	}
	compiled, err := core.Compile(opts)
	if err != nil {
		return err
	}

	var output []byte
	switch *backend {
	case "go":
		output, err = codegen.Generate(compiled, codegen.Options{Package: *pkg})
		if err != nil {
			return err
		}
	case "sig":
		output = []byte(compiled.Iface.Signature() + "\n")
	case "pres":
		output = []byte(describePresentation(compiled.Pres))
	default:
		return fmt.Errorf("unknown back-end %q (want go, pres or sig)", *backend)
	}

	if *out == "" {
		_, err = stdout.Write(output)
		return err
	}
	return os.WriteFile(*out, output, 0o644)
}

// parseStyle maps a CLI style name to presentation rules; empty
// keeps the front-end's natural default.
func parseStyle(name string) (pres.Style, error) {
	switch name {
	case "", "corba":
		return pres.StyleCORBA, nil
	case "sun":
		return pres.StyleSun, nil
	case "mig":
		return pres.StyleMIG, nil
	}
	return 0, fmt.Errorf("unknown style %q", name)
}

// runVet is the `flexc vet` subcommand: flexvet over one or two
// endpoints of an interface, the Go code bound to it, or the
// compiled plan's static certificate.
//
//	flexc vet fileio.idl
//	flexc vet -pdl client.pdl -peer-pdl server.pdl -transport suntcp fileio.idl
//	flexc vet -peer-idl server_copy.idl fileio.idl        # contract drift
//	flexc vet -go ./...                                   # Go-side checks
//	flexc vet -go -idl f.idl -pdl server.pdl ./srv/...    # + contract binding
//	flexc vet -certify -pdl client.pdl fileio.idl         # plan certificate
//	flexc vet -list                                       # check registry
//
// The first endpoint (the "client") is the IDL file's default
// presentation with -pdl applied; the peer (the "server") exists when
// -peer-pdl or -peer-idl is given, built from -peer-idl (defaulting
// to the same IDL file) with -peer-pdl applied. PDL files are applied
// loosely: annotations naming unknown operations or parameters become
// positioned FV007 findings instead of hard errors, so one run
// reports every problem.
func runVet(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flexc vet", flag.ContinueOnError)
	var (
		frontend      = fs.String("frontend", "corba", "IDL front-end: corba, sun or mig")
		ifaceName     = fs.String("interface", "", "interface to analyze (required when the file has several)")
		style         = fs.String("style", "", "default presentation style: corba, sun or mig")
		pdlFile       = fs.String("pdl", "", "PDL file for this endpoint's presentation")
		transport     = fs.String("transport", "", "transport this endpoint binds to: inproc, machipc, fbufrpc or suntcp")
		peerPDL       = fs.String("peer-pdl", "", "PDL file for the peer endpoint (enables the cross-endpoint pass)")
		peerIDL       = fs.String("peer-idl", "", "the peer's copy of the contract (defaults to the same IDL file)")
		peerFrontend  = fs.String("peer-frontend", "", "front-end for -peer-idl (defaults to -frontend)")
		peerTransport = fs.String("peer-transport", "", "transport the peer binds to")
		goMode        = fs.Bool("go", false, "analyze Go packages (FV017-FV020); arguments are package patterns")
		goDir         = fs.String("dir", ".", "module root the -go package patterns resolve in")
		goIDL         = fs.String("idl", "", "contract IDL binding annotation-dependent -go checks (with -pdl)")
		certify       = fs.Bool("certify", false, "emit the compiled plan's static certificate instead of findings")
		codecName     = fs.String("codec", "xdr", "wire codec for -certify: xdr, cdr or cdr-le")
		jsonOut       = fs.Bool("json", false, "emit NDJSON diagnostics, one object per line")
		werror        = fs.Bool("Werror", false, "treat warning-severity findings as fatal")
		list          = fs.Bool("list", false, "print the check registry and exit")
	)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), `usage:
  flexc vet [flags] <idl-file>                presentation checks (FV001-FV016)
  flexc vet -go [flags] [package-pattern]...  Go contract checks (FV017-FV020)
  flexc vet -certify [flags] <idl-file>       static plan certificate (JSON)

exit status: 0 clean; 1 findings (error severity, or any finding with
-Werror) or a failed certificate invariant; 2 when the analysis could
not run (unreadable input, package load failure, analyzer panic).

flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return failure(err)
	}
	if *list {
		for _, ci := range analyze.Checks() {
			fmt.Fprintf(stdout, "%s %-28s %-8s %s\n", ci.ID, ci.Title, ci.Severity, ci.Doc)
		}
		return nil
	}
	sty, err := parseStyle(*style)
	if err != nil {
		return failure(err)
	}

	if *goMode {
		return runVetGo(fs.Args(), *goDir, *goIDL, *frontend, *ifaceName, sty, *pdlFile,
			stdout, *jsonOut, *werror)
	}
	if fs.NArg() != 1 {
		return failure(fmt.Errorf("usage: flexc vet [flags] <idl-file>"))
	}
	compiled, err := compileFor(fs.Arg(0), *frontend, *ifaceName, sty)
	if err != nil {
		return failure(err)
	}
	client, err := vetEndpoint(compiled.Pres, *pdlFile)
	if err != nil {
		return failure(err)
	}
	if *certify {
		return runVetCertify(client, *codecName, stdout)
	}
	eps := []analyze.Endpoint{{Pres: client, Transport: *transport, Label: "client"}}

	if *peerPDL != "" || *peerIDL != "" {
		peerCompiled := compiled
		if *peerIDL != "" {
			pf := *peerFrontend
			if pf == "" {
				pf = *frontend
			}
			if peerCompiled, err = compileFor(*peerIDL, pf, *ifaceName, sty); err != nil {
				return failure(err)
			}
		}
		server, err := vetEndpoint(peerCompiled.Pres, *peerPDL)
		if err != nil {
			return failure(err)
		}
		eps = append(eps, analyze.Endpoint{Pres: server, Transport: *peerTransport, Label: "server"})
	}

	return emitVet(stdout, analyze.CheckEndpoints(compiled.Iface, eps), *jsonOut, *werror)
}

// emitVet renders findings (vet style, or NDJSON with -json) and maps
// them to the exit contract: error severity always fails, warnings
// fail under -Werror.
func emitVet(stdout io.Writer, diags []analyze.Diagnostic, jsonOut, werror bool) error {
	if jsonOut {
		out, err := analyze.RenderLines(diags)
		if err != nil {
			return failure(err)
		}
		if _, err := stdout.Write(out); err != nil {
			return failure(err)
		}
	} else if len(diags) > 0 {
		fmt.Fprint(stdout, analyze.Render(diags))
	}
	fatal := 0
	for _, d := range diags {
		if d.Severity == analyze.SevError || (werror && d.Severity >= analyze.SevWarning) {
			fatal++
		}
	}
	if fatal == len(diags) && fatal > 0 {
		return findings(fmt.Errorf("vet: %d finding(s)", fatal))
	}
	if fatal > 0 {
		return findings(fmt.Errorf("vet: %d fatal finding(s) (%d total)", fatal, len(diags)))
	}
	return nil
}

// runVetGo loads Go packages and runs the gocheck analyzer suite
// (FV017-FV020) over them, optionally with a PDL contract bound.
func runVetGo(patterns []string, dir, idlFile, frontend, ifaceName string, sty pres.Style,
	pdlFile string, stdout io.Writer, jsonOut, werror bool) error {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var contract *pres.Presentation
	if idlFile != "" {
		compiled, err := compileFor(idlFile, frontend, ifaceName, sty)
		if err != nil {
			return failure(err)
		}
		if contract, err = vetEndpoint(compiled.Pres, pdlFile); err != nil {
			return failure(err)
		}
	}
	pkgs, err := gocheck.Load(dir, patterns...)
	if err != nil {
		return failure(err)
	}
	trim, err := filepath.Abs(dir)
	if err != nil {
		return failure(err)
	}
	checker := &gocheck.Checker{Contract: contract, TrimDir: trim}
	diags, err := checker.CheckPackages(pkgs)
	if err != nil {
		return failure(err)
	}
	return emitVet(stdout, diags, jsonOut, werror)
}

// runVetCertify compiles the presentation's marshal plan and emits
// its static certificate after proving the bounds invariant. Plans
// that fail to compile (e.g. [special] parameters, which need hook
// code) are load failures, not findings.
func runVetCertify(p *pres.Presentation, codecName string, stdout io.Writer) error {
	var codec frt.Codec
	switch codecName {
	case "xdr":
		codec = frt.XDRCodec
	case "cdr":
		codec = frt.CDRCodec
	case "cdr-le":
		codec = frt.CDRCodecLE
	default:
		return failure(fmt.Errorf("unknown codec %q (want xdr, cdr or cdr-le)", codecName))
	}
	plan, err := frt.NewPlan(p, codec, nil)
	if err != nil {
		return failure(err)
	}
	cert := plan.Certificate()
	if err := cert.VerifyBounds(); err != nil {
		return findings(err)
	}
	out, err := cert.Render()
	if err != nil {
		return failure(err)
	}
	_, err = stdout.Write(out)
	return err
}

// statsLoop is the stats subcommand's transport: a serial loopback
// that hands each marshaled request to the dispatcher and returns
// the marshaled reply, so the full encode/decode path — and with it
// every meter — runs in-process.
type statsLoop struct {
	disp *frt.Dispatcher
	plan *frt.Plan
	enc  frt.Encoder
}

func (l *statsLoop) Call(opIdx int, req, replyBuf []byte) ([]byte, error) {
	l.enc.Reset()
	l.disp.ServeMessage(l.plan, opIdx, req, l.enc)
	return append(replyBuf[:0], l.enc.Bytes()...), nil
}

func (l *statsLoop) Close() error { return nil }

// runStats is the `flexc stats` subcommand: compile the interface,
// install default handlers that answer every operation with zero
// values, drive -calls marshaled round trips per operation, and dump
// the client endpoint's counters.
func runStats(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flexc stats", flag.ContinueOnError)
	var (
		frontend  = fs.String("frontend", "corba", "IDL front-end: corba, sun or mig")
		ifaceName = fs.String("interface", "", "interface to drive (required when the file has several)")
		pdlFile   = fs.String("pdl", "", "PDL file modifying the presentation")
		style     = fs.String("style", "", "default presentation style: corba, sun or mig")
		calls     = fs.Int("calls", 100, "calls per operation")
		payload   = fs.Int("payload", 64, "bytes per sequence<octet> in-argument")
		traceCap  = fs.Int("trace", 0, "trace ring capacity (0 disables call tracing)")
		jsonOut   = fs.Bool("json", false, "emit the snapshot as JSON instead of expvar text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: flexc stats [flags] <idl-file>")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fe, err := core.FrontendByName(*frontend)
	if err != nil {
		return err
	}
	opts := core.Options{
		Frontend:  fe,
		Filename:  fs.Arg(0),
		Source:    string(src),
		Interface: *ifaceName,
	}
	if opts.Style, err = parseStyle(*style); err != nil {
		return err
	}
	if *pdlFile != "" {
		pdlSrc, err := os.ReadFile(*pdlFile)
		if err != nil {
			return err
		}
		opts.PDL = string(pdlSrc)
		opts.PDLFilename = *pdlFile
	}
	compiled, err := core.Compile(opts)
	if err != nil {
		return err
	}

	disp := frt.NewDispatcher(compiled.Pres)
	for i := range compiled.Iface.Ops {
		op := &compiled.Iface.Ops[i]
		disp.Handle(op.Name, func(c *frt.Call) error {
			for j := range op.Params {
				prm := &op.Params[j]
				if prm.Dir == ir.Out || prm.Dir == ir.InOut {
					c.SetOut(j, frt.ZeroValue(prm.Type))
				}
			}
			if op.HasResult() {
				c.SetResult(frt.ZeroValue(op.Result))
			}
			return nil
		})
	}
	plan, err := frt.NewPlan(compiled.Pres, frt.XDRCodec, nil)
	if err != nil {
		return err
	}
	client, err := frt.NewClient(compiled.Pres, frt.XDRCodec, &statsLoop{
		disp: disp, plan: plan, enc: frt.XDRCodec.NewEncoder(),
	}, nil)
	if err != nil {
		return err
	}
	e := client.EnableStats()
	if *traceCap > 0 {
		e.EnableTracing(*traceCap)
	}

	for i := range compiled.Iface.Ops {
		op := &compiled.Iface.Ops[i]
		var callArgs []frt.Value
		for j := range op.Params {
			prm := &op.Params[j]
			v := frt.ZeroValue(prm.Type)
			if prm.Type.Kind == ir.Bytes && *payload > 0 &&
				(prm.Dir == ir.In || prm.Dir == ir.InOut) {
				v = make([]byte, *payload)
			}
			callArgs = append(callArgs, v)
		}
		for n := 0; n < *calls; n++ {
			if _, _, err := client.Invoke(op.Name, callArgs, nil, nil); err != nil {
				return fmt.Errorf("stats: %s: %w", op.Name, err)
			}
		}
	}

	snap := client.Stats()
	if *jsonOut {
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", out)
		return nil
	}
	fmt.Fprint(stdout, snap.Text())
	return nil
}

// compileFor runs the front-end and default-presentation stages for
// one endpoint's copy of the contract.
func compileFor(path, frontend, iface string, style pres.Style) (*core.Compiled, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fe, err := core.FrontendByName(frontend)
	if err != nil {
		return nil, err
	}
	return core.Compile(core.Options{
		Frontend:  fe,
		Filename:  path,
		Source:    string(src),
		Interface: iface,
		Style:     style,
	})
}

// vetEndpoint applies an optional PDL file loosely, so annotation
// mistakes surface as analyzer findings rather than fatal errors.
func vetEndpoint(base *pres.Presentation, pdlPath string) (*pres.Presentation, error) {
	if pdlPath == "" {
		return base, nil
	}
	src, err := os.ReadFile(pdlPath)
	if err != nil {
		return nil, err
	}
	return pdl.ApplyLoose(base, pdlPath, string(src))
}

// describePresentation renders a presentation in PDL-like syntax.
func describePresentation(p *pres.Presentation) string {
	s := fmt.Sprintf("// presentation of %s (style %s, trust %s)\ninterface %s {\n",
		p.Interface.Name, p.Style, p.Trust, p.Interface.Name)
	names := make([]string, 0, len(p.Ops))
	for name := range p.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		op := p.Ops[name]
		s += "    "
		if op.CommStatus {
			s += "[comm_status] "
		}
		s += name + "("
		first := true
		pnames := make([]string, 0, len(op.Params))
		for pn := range op.Params {
			pnames = append(pnames, pn)
		}
		sort.Strings(pnames)
		for _, pn := range pnames {
			if !first {
				s += ", "
			}
			first = false
			a := op.Params[pn]
			attrs := attrList(a)
			if attrs != "" {
				s += attrs + " "
			}
			s += pn
		}
		s += ");\n"
	}
	return s + "};\n"
}

func attrList(a *pres.ParamAttrs) string {
	var parts []string
	if a.Special {
		parts = append(parts, "special")
	}
	if a.Trashable {
		parts = append(parts, "trashable")
	}
	if a.Preserved {
		parts = append(parts, "preserved")
	}
	if a.NonUnique {
		parts = append(parts, "nonunique")
	}
	if a.Traced {
		parts = append(parts, "traced")
	}
	if a.LengthIs != "" {
		parts = append(parts, "length_is("+a.LengthIs+")")
	}
	switch a.Alloc {
	case pres.AllocCaller:
		parts = append(parts, "alloc(caller)")
	case pres.AllocCallee:
		parts = append(parts, "alloc(callee)")
	}
	switch a.Dealloc {
	case pres.DeallocAlways:
		parts = append(parts, "dealloc(always)")
	case pres.DeallocNever:
		parts = append(parts, "dealloc(never)")
	}
	if len(parts) == 0 {
		return ""
	}
	out := "["
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out + "]"
}
