// Command flexc is the flexrpc stub compiler: the three-stage
// pipeline of the paper's §3 behind a CLI.
//
//	flexc -frontend corba -backend go -package fileio -o fileio.go fileio.idl
//	flexc -frontend sun -pdl client.pdl -backend pres nfs.x
//	flexc -backend sig fileio.idl
//
// Front-ends: corba (CORBA IDL), sun (Sun RPC .x files).
// Back-ends:  go   — generate a typed Go client stub and server skeleton
//
//	pres — print the computed presentation (after any PDL)
//	sig  — print the canonical network contract
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"flexrpc/internal/codegen"
	"flexrpc/internal/core"
	"flexrpc/internal/pres"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flexc:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flexc", flag.ContinueOnError)
	var (
		frontend  = fs.String("frontend", "corba", "IDL front-end: corba, sun or mig")
		ifaceName = fs.String("interface", "", "interface to compile (required when the file has several)")
		pdlFile   = fs.String("pdl", "", "PDL file modifying the presentation")
		style     = fs.String("style", "", "default presentation style: corba, sun or mig")
		backend   = fs.String("backend", "go", "back-end: go, pres or sig")
		pkg       = fs.String("package", "", "package name for the go back-end")
		out       = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: flexc [flags] <idl-file>")
	}
	idlPath := fs.Arg(0)
	src, err := os.ReadFile(idlPath)
	if err != nil {
		return err
	}
	fe, err := core.FrontendByName(*frontend)
	if err != nil {
		return err
	}
	opts := core.Options{
		Frontend:  fe,
		Filename:  idlPath,
		Source:    string(src),
		Interface: *ifaceName,
	}
	switch *style {
	case "":
	case "corba":
		opts.Style = pres.StyleCORBA
	case "sun":
		opts.Style = pres.StyleSun
	case "mig":
		opts.Style = pres.StyleMIG
	default:
		return fmt.Errorf("unknown style %q", *style)
	}
	if *pdlFile != "" {
		pdlSrc, err := os.ReadFile(*pdlFile)
		if err != nil {
			return err
		}
		opts.PDL = string(pdlSrc)
		opts.PDLFilename = *pdlFile
	}
	compiled, err := core.Compile(opts)
	if err != nil {
		return err
	}

	var output []byte
	switch *backend {
	case "go":
		output, err = codegen.Generate(compiled, codegen.Options{Package: *pkg})
		if err != nil {
			return err
		}
	case "sig":
		output = []byte(compiled.Iface.Signature() + "\n")
	case "pres":
		output = []byte(describePresentation(compiled.Pres))
	default:
		return fmt.Errorf("unknown back-end %q (want go, pres or sig)", *backend)
	}

	if *out == "" {
		_, err = stdout.Write(output)
		return err
	}
	return os.WriteFile(*out, output, 0o644)
}

// describePresentation renders a presentation in PDL-like syntax.
func describePresentation(p *pres.Presentation) string {
	s := fmt.Sprintf("// presentation of %s (style %s, trust %s)\ninterface %s {\n",
		p.Interface.Name, p.Style, p.Trust, p.Interface.Name)
	names := make([]string, 0, len(p.Ops))
	for name := range p.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		op := p.Ops[name]
		s += "    "
		if op.CommStatus {
			s += "[comm_status] "
		}
		s += name + "("
		first := true
		pnames := make([]string, 0, len(op.Params))
		for pn := range op.Params {
			pnames = append(pnames, pn)
		}
		sort.Strings(pnames)
		for _, pn := range pnames {
			if !first {
				s += ", "
			}
			first = false
			a := op.Params[pn]
			attrs := attrList(a)
			if attrs != "" {
				s += attrs + " "
			}
			s += pn
		}
		s += ");\n"
	}
	return s + "};\n"
}

func attrList(a *pres.ParamAttrs) string {
	var parts []string
	if a.Special {
		parts = append(parts, "special")
	}
	if a.Trashable {
		parts = append(parts, "trashable")
	}
	if a.Preserved {
		parts = append(parts, "preserved")
	}
	if a.NonUnique {
		parts = append(parts, "nonunique")
	}
	if a.LengthIs != "" {
		parts = append(parts, "length_is("+a.LengthIs+")")
	}
	switch a.Alloc {
	case pres.AllocCaller:
		parts = append(parts, "alloc(caller)")
	case pres.AllocCallee:
		parts = append(parts, "alloc(callee)")
	}
	switch a.Dealloc {
	case pres.DeallocAlways:
		parts = append(parts, "dealloc(always)")
	case pres.DeallocNever:
		parts = append(parts, "dealloc(never)")
	}
	if len(parts) == 0 {
		return ""
	}
	out := "["
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out + "]"
}
