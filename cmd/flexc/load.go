package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"flexrpc/internal/core"
	"flexrpc/internal/flexload"
	"flexrpc/internal/ir"
	"flexrpc/internal/netsim"
	frt "flexrpc/internal/runtime"
	"flexrpc/internal/stats"
	"flexrpc/internal/transport/suntcp"
)

// runLoad is the flexc load subcommand: compile an interface, bring up
// an in-process shared-pool Sun RPC server with default handlers, and
// drive it with the flexload generator — N connections, open- or
// closed-loop, reporting goodput, latency percentiles and the session
// layer's retry/shed counters. With -check the run doubles as a smoke
// gate: non-zero goodput and a clean error taxonomy or a non-zero
// exit.
func runLoad(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flexc load", flag.ContinueOnError)
	var (
		frontend  = fs.String("frontend", "corba", "IDL front-end: corba, sun or mig")
		ifaceName = fs.String("interface", "", "interface to drive (required when the file has several)")
		pdlFile   = fs.String("pdl", "", "PDL file modifying the presentation")
		style     = fs.String("style", "", "default presentation style: corba, sun or mig")
		opName    = fs.String("op", "", "operation to drive (default: the first)")
		conns     = fs.Int("conns", 256, "client connections")
		mode      = fs.String("mode", "closed", "pacing: closed (think time) or open (Poisson arrivals)")
		rate      = fs.Float64("rate", 1000, "open-loop aggregate arrival rate, calls/sec")
		think     = fs.Duration("think", time.Millisecond, "closed-loop think time between calls")
		warmup    = fs.Duration("warmup", 100*time.Millisecond, "warmup phase (unmeasured)")
		measure   = fs.Duration("measure", time.Second, "measure window")
		cooldown  = fs.Duration("cooldown", 50*time.Millisecond, "cooldown phase (unmeasured)")
		payload   = fs.Int("payload", 0, "bytes per sequence<octet> in-argument")
		workers   = fs.Int("workers", 8, "server shared worker-pool size")
		slo       = fs.Duration("slo", 50*time.Millisecond, "latency SLO bounding goodput (0: count all completions)")
		seed      = fs.Int64("seed", 1, "arrival/jitter seed")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON instead of text")
		check     = fs.Bool("check", false, "exit non-zero unless goodput > 0 and the run is error-free")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: flexc load [flags] <idl-file>")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fe, err := core.FrontendByName(*frontend)
	if err != nil {
		return err
	}
	opts := core.Options{
		Frontend:  fe,
		Filename:  fs.Arg(0),
		Source:    string(src),
		Interface: *ifaceName,
	}
	if opts.Style, err = parseStyle(*style); err != nil {
		return err
	}
	if *pdlFile != "" {
		pdlSrc, err := os.ReadFile(*pdlFile)
		if err != nil {
			return err
		}
		opts.PDL = string(pdlSrc)
		opts.PDLFilename = *pdlFile
	}
	compiled, err := core.Compile(opts)
	if err != nil {
		return err
	}

	var loadMode flexload.Mode
	switch *mode {
	case "closed":
		loadMode = flexload.Closed
	case "open":
		loadMode = flexload.Open
	default:
		return fmt.Errorf("load: unknown mode %q (want closed or open)", *mode)
	}

	// Default handlers: every out/inout/result gets its zero value, so
	// any compiled interface is drivable without user code.
	disp := frt.NewDispatcher(compiled.Pres)
	for i := range compiled.Iface.Ops {
		op := &compiled.Iface.Ops[i]
		disp.Handle(op.Name, func(c *frt.Call) error {
			for j := range op.Params {
				prm := &op.Params[j]
				if prm.Dir == ir.Out || prm.Dir == ir.InOut {
					c.SetOut(j, frt.ZeroValue(prm.Type))
				}
			}
			if op.HasResult() {
				c.SetResult(frt.ZeroValue(op.Result))
			}
			return nil
		})
	}
	plan, err := frt.NewPlan(compiled.Pres, frt.XDRCodec, nil)
	if err != nil {
		return err
	}
	op := &compiled.Iface.Ops[0]
	if *opName != "" {
		op = nil
		for i := range compiled.Iface.Ops {
			if compiled.Iface.Ops[i].Name == *opName {
				op = &compiled.Iface.Ops[i]
				break
			}
		}
		if op == nil {
			return fmt.Errorf("load: operation %q not in interface", *opName)
		}
	}
	var callArgs []frt.Value
	for j := range op.Params {
		prm := &op.Params[j]
		v := frt.ZeroValue(prm.Type)
		if prm.Type.Kind == ir.Bytes && *payload > 0 && (prm.Dir == ir.In || prm.Dir == ir.InOut) {
			v = make([]byte, *payload)
		}
		callArgs = append(callArgs, v)
	}
	opIdx := plan.OpIndex(op.Name)
	enc := frt.XDRCodec.NewEncoder()
	if err := plan.Ops[opIdx].EncodeRequest(enc, callArgs); err != nil {
		return err
	}
	req := enc.Bytes()

	serverStats := stats.New(nil)
	cacheCap := 2 * *conns
	if cacheCap < frt.DefaultReplyCacheSize {
		cacheCap = frt.DefaultReplyCacheSize
	}
	sess := frt.NewSessionServer(disp, plan, frt.NewReplyCacheSharded(cacheCap, 64))
	srv := suntcp.NewSessionServer(sess, compiled.Pres.Interface)
	srv.SetConcurrency(*workers)
	srv.SetStats(serverStats)

	rep, err := flexload.Run(flexload.Target{
		Dial: func(id int) (frt.Conn, error) {
			cc, sc := netsim.BufferedPipe(netsim.LinkParams{}, 64)
			go func() { _ = srv.ServeConn(sc) }()
			return suntcp.Dial(cc, compiled.Pres), nil
		},
		Pres:    compiled.Pres,
		Op:      op.Name,
		Request: req,
	}, flexload.Options{
		Clients:     *conns,
		Mode:        loadMode,
		Rate:        *rate,
		Think:       *think,
		Warmup:      *warmup,
		Measure:     *measure,
		Cooldown:    *cooldown,
		Seed:        *seed,
		Robust:      &frt.RobustOptions{AtMostOnce: true},
		ServerStats: serverStats,
		SLO:         *slo,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		if _, err := stdout.Write(rep.JSON()); err != nil {
			return err
		}
	} else {
		fmt.Fprint(stdout, rep.Text())
	}
	if *check {
		if rep.GoodputPerSec <= 0 {
			return findings(fmt.Errorf("load check: zero goodput (%d completed of %d issued)", rep.Completed, rep.Issued))
		}
		if rep.Errors != 0 {
			return findings(fmt.Errorf("load check: %d calls failed the error taxonomy (errors+timeouts) out of %d issued", rep.Errors, rep.Issued))
		}
	}
	return nil
}
