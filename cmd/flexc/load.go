package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"flexrpc/internal/core"
	"flexrpc/internal/flexload"
	"flexrpc/internal/ir"
	"flexrpc/internal/netsim"
	frt "flexrpc/internal/runtime"
	"flexrpc/internal/stats"
	"flexrpc/internal/sunrpc"
	"flexrpc/internal/transport/suntcp"
)

// loadWorkerEnv lets a test binary act as a flexc load worker: the
// parent sets it on every child it forks, and TestMain dispatches on
// it before the testing framework parses flags. The real flexc binary
// dispatches on argv alone and ignores the variable.
const loadWorkerEnv = "FLEXC_LOAD_WORKER"

// runLoad is the flexc load subcommand: compile an interface, bring up
// a Sun RPC server with default handlers, and drive it with the
// flexload generator — N connections, open- or closed-loop, reporting
// goodput, latency percentiles and the session layer's retry/shed
// counters. The server is in-process over in-memory pipes by default;
// -netpoll serves the event-driven runtime over a real unix socket,
// -addr drives an external server instead, and -procs N forks N
// worker processes (re-executing this binary) whose WireReports the
// parent merges via Snapshot.Merge. With -check the run doubles as a
// smoke gate: non-zero goodput and a clean error taxonomy or a
// non-zero exit.
func runLoad(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flexc load", flag.ContinueOnError)
	var (
		frontend   = fs.String("frontend", "corba", "IDL front-end: corba, sun or mig")
		ifaceName  = fs.String("interface", "", "interface to drive (required when the file has several)")
		pdlFile    = fs.String("pdl", "", "PDL file modifying the presentation")
		style      = fs.String("style", "", "default presentation style: corba, sun or mig")
		opName     = fs.String("op", "", "operation to drive (default: the first)")
		conns      = fs.Int("conns", 256, "client connections (split across -procs workers)")
		mode       = fs.String("mode", "closed", "pacing: closed (think time) or open (Poisson arrivals)")
		rate       = fs.Float64("rate", 1000, "open-loop aggregate arrival rate, calls/sec")
		think      = fs.Duration("think", time.Millisecond, "closed-loop think time between calls")
		warmup     = fs.Duration("warmup", 100*time.Millisecond, "warmup phase (unmeasured)")
		measure    = fs.Duration("measure", time.Second, "measure window")
		cooldown   = fs.Duration("cooldown", 50*time.Millisecond, "cooldown phase (unmeasured)")
		payload    = fs.Int("payload", 0, "bytes per sequence<octet> in-argument")
		workers    = fs.Int("workers", 8, "server shared worker-pool size")
		slo        = fs.Duration("slo", 50*time.Millisecond, "latency SLO bounding goodput (0: count all completions)")
		seed       = fs.Int64("seed", 1, "arrival/jitter seed")
		procs      = fs.Int("procs", 1, "load-generating worker processes (1: generate in this process)")
		netpollOn  = fs.Bool("netpoll", false, "serve with the event-driven netpoll runtime over a real unix socket")
		addr       = fs.String("addr", "", "drive an external server at network:address (e.g. unix:/tmp/s.sock) instead of an in-process one")
		clientBase = fs.Int("client-base", 0, "global client-id offset for this process's clients (multi-process runs)")
		wire       = fs.Bool("wire", false, "emit a WireReport (report + raw histograms) as JSON, for a merging parent")
		jsonOut    = fs.Bool("json", false, "emit the report as JSON instead of text")
		check      = fs.Bool("check", false, "exit non-zero unless goodput > 0 and the run is error-free")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: flexc load [flags] <idl-file>")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fe, err := core.FrontendByName(*frontend)
	if err != nil {
		return err
	}
	opts := core.Options{
		Frontend:  fe,
		Filename:  fs.Arg(0),
		Source:    string(src),
		Interface: *ifaceName,
	}
	if opts.Style, err = parseStyle(*style); err != nil {
		return err
	}
	if *pdlFile != "" {
		pdlSrc, err := os.ReadFile(*pdlFile)
		if err != nil {
			return err
		}
		opts.PDL = string(pdlSrc)
		opts.PDLFilename = *pdlFile
	}
	compiled, err := core.Compile(opts)
	if err != nil {
		return err
	}

	var loadMode flexload.Mode
	switch *mode {
	case "closed":
		loadMode = flexload.Closed
	case "open":
		loadMode = flexload.Open
	default:
		return fmt.Errorf("load: unknown mode %q (want closed or open)", *mode)
	}

	op := &compiled.Iface.Ops[0]
	if *opName != "" {
		op = nil
		for i := range compiled.Iface.Ops {
			if compiled.Iface.Ops[i].Name == *opName {
				op = &compiled.Iface.Ops[i]
				break
			}
		}
		if op == nil {
			return fmt.Errorf("load: operation %q not in interface", *opName)
		}
	}

	// Multi-process: this process only runs the server; re-exec'd
	// workers generate the load and stream WireReports back.
	if *procs > 1 {
		if *addr != "" {
			return fmt.Errorf("load: -procs and -addr are mutually exclusive (workers dial the parent's server)")
		}
		srv, serverStats, err := buildLoadServer(compiled, *workers, *conns)
		if err != nil {
			return err
		}
		if *netpollOn {
			srv.SetNetpoll(true)
		}
		dir, err := os.MkdirTemp("", "flexload")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		sock := filepath.Join(dir, "s.sock")
		ln, err := net.Listen("unix", sock)
		if err != nil {
			return err
		}
		go func() { _ = srv.Serve(ln) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Drain(ctx)
		}()

		passthrough := []string{
			"-frontend", *frontend,
			"-op", op.Name,
			"-mode", *mode,
			"-think", think.String(),
			"-warmup", warmup.String(),
			"-measure", measure.String(),
			"-cooldown", cooldown.String(),
			"-payload", strconv.Itoa(*payload),
			"-slo", slo.String(),
			"-seed", strconv.FormatInt(*seed, 10),
		}
		if *ifaceName != "" {
			passthrough = append(passthrough, "-interface", *ifaceName)
		}
		if *pdlFile != "" {
			passthrough = append(passthrough, "-pdl", *pdlFile)
		}
		if *style != "" {
			passthrough = append(passthrough, "-style", *style)
		}
		rep, err := runLoadWorkers(*procs, *conns, *rate, passthrough, sock, fs.Arg(0))
		if err != nil {
			return err
		}
		rep.Sheds = serverStats.Snapshot().Sheds
		return emitLoad(stdout, rep, *wire, *jsonOut, *check)
	}

	// Default handlers make any compiled interface drivable; the
	// request body is pre-marshaled once.
	plan, err := frt.NewPlan(compiled.Pres, frt.XDRCodec, nil)
	if err != nil {
		return err
	}
	var callArgs []frt.Value
	for j := range op.Params {
		prm := &op.Params[j]
		v := frt.ZeroValue(prm.Type)
		if prm.Type.Kind == ir.Bytes && *payload > 0 && (prm.Dir == ir.In || prm.Dir == ir.InOut) {
			v = make([]byte, *payload)
		}
		callArgs = append(callArgs, v)
	}
	opIdx := plan.OpIndex(op.Name)
	enc := frt.XDRCodec.NewEncoder()
	if err := plan.Ops[opIdx].EncodeRequest(enc, callArgs); err != nil {
		return err
	}
	req := enc.Bytes()

	var (
		dial        func(id int) (frt.Conn, error)
		serverStats *stats.Endpoint
	)
	switch {
	case *addr != "":
		// Worker mode (or any external server): every client dials the
		// given address; the server's shed counter is not visible here.
		network, address, ok := strings.Cut(*addr, ":")
		if !ok {
			return fmt.Errorf("load: -addr wants network:address, got %q", *addr)
		}
		dial = func(id int) (frt.Conn, error) {
			nc, err := net.Dial(network, address)
			if err != nil {
				return nil, err
			}
			return suntcp.Dial(nc, compiled.Pres), nil
		}
	case *netpollOn:
		// Event-driven server runtime needs real descriptors: serve on
		// a unix socket instead of in-memory pipes.
		srv, ss, err := buildLoadServer(compiled, *workers, *conns)
		if err != nil {
			return err
		}
		serverStats = ss
		srv.SetNetpoll(true)
		dir, err := os.MkdirTemp("", "flexload")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		sock := filepath.Join(dir, "s.sock")
		ln, err := net.Listen("unix", sock)
		if err != nil {
			return err
		}
		go func() { _ = srv.Serve(ln) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Drain(ctx)
		}()
		dial = func(id int) (frt.Conn, error) {
			nc, err := net.Dial("unix", sock)
			if err != nil {
				return nil, err
			}
			return suntcp.Dial(nc, compiled.Pres), nil
		}
	default:
		srv, ss, err := buildLoadServer(compiled, *workers, *conns)
		if err != nil {
			return err
		}
		serverStats = ss
		dial = func(id int) (frt.Conn, error) {
			cc, sc := netsim.BufferedPipe(netsim.LinkParams{}, 64)
			go func() { _ = srv.ServeConn(sc) }()
			return suntcp.Dial(cc, compiled.Pres), nil
		}
	}

	rep, err := flexload.Run(flexload.Target{
		Dial:    dial,
		Pres:    compiled.Pres,
		Op:      op.Name,
		Request: req,
	}, flexload.Options{
		Clients:      *conns,
		Mode:         loadMode,
		Rate:         *rate,
		Think:        *think,
		Warmup:       *warmup,
		Measure:      *measure,
		Cooldown:     *cooldown,
		Seed:         *seed,
		ClientIDBase: *clientBase,
		Robust:       &frt.RobustOptions{AtMostOnce: true},
		ServerStats:  serverStats,
		SLO:          *slo,
	})
	if err != nil {
		return err
	}
	return emitLoad(stdout, rep, *wire, *jsonOut, *check)
}

// buildLoadServer compiles the default-handler dispatcher into a
// shared-pool Sun RPC server sized for conns clients.
func buildLoadServer(compiled *core.Compiled, workers, conns int) (*sunrpc.Server, *stats.Endpoint, error) {
	disp := frt.NewDispatcher(compiled.Pres)
	for i := range compiled.Iface.Ops {
		op := &compiled.Iface.Ops[i]
		disp.Handle(op.Name, func(c *frt.Call) error {
			for j := range op.Params {
				prm := &op.Params[j]
				if prm.Dir == ir.Out || prm.Dir == ir.InOut {
					c.SetOut(j, frt.ZeroValue(prm.Type))
				}
			}
			if op.HasResult() {
				c.SetResult(frt.ZeroValue(op.Result))
			}
			return nil
		})
	}
	plan, err := frt.NewPlan(compiled.Pres, frt.XDRCodec, nil)
	if err != nil {
		return nil, nil, err
	}
	serverStats := stats.New(nil)
	cacheCap := 2 * conns
	if cacheCap < frt.DefaultReplyCacheSize {
		cacheCap = frt.DefaultReplyCacheSize
	}
	sess := frt.NewSessionServer(disp, plan, frt.NewReplyCacheSharded(cacheCap, 64))
	srv := suntcp.NewSessionServer(sess, compiled.Pres.Interface)
	srv.SetConcurrency(workers)
	srv.SetStats(serverStats)
	return srv, serverStats, nil
}

// runLoadWorkers forks procs copies of this binary in load-worker
// mode, each driving its share of the connections against the unix
// socket, and merges the WireReports they emit on their stdout pipes.
func runLoadWorkers(procs, conns int, rate float64, passthrough []string, sock, idlPath string) (*flexload.Report, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	type result struct {
		out []byte
		err error
	}
	results := make([]result, procs)
	var wg sync.WaitGroup
	base := 0
	for i := 0; i < procs; i++ {
		share := conns / procs
		if i < conns%procs {
			share++
		}
		if share == 0 {
			continue
		}
		args := append([]string{"load"}, passthrough...)
		args = append(args,
			"-conns", strconv.Itoa(share),
			"-rate", strconv.FormatFloat(rate/float64(procs), 'g', -1, 64),
			"-client-base", strconv.Itoa(base),
			"-addr", "unix:"+sock,
			"-wire",
			idlPath)
		base += share
		cmd := exec.Command(exe, args...)
		cmd.Env = append(os.Environ(), loadWorkerEnv+"=1")
		cmd.Stderr = os.Stderr
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := cmd.Output()
			results[i] = result{out, err}
		}(i)
	}
	wg.Wait()

	var ws []*flexload.WireReport
	for i, r := range results {
		if r.out == nil && r.err == nil {
			continue // zero-share slot
		}
		if r.err != nil {
			return nil, fmt.Errorf("load: worker %d: %w", i, r.err)
		}
		var w flexload.WireReport
		if err := json.Unmarshal(r.out, &w); err != nil {
			return nil, fmt.Errorf("load: worker %d report: %w", i, err)
		}
		ws = append(ws, &w)
	}
	return flexload.CombineWire(ws)
}

// emitLoad renders the report and applies the -check gate.
func emitLoad(stdout io.Writer, rep *flexload.Report, wire, jsonOut, check bool) error {
	switch {
	case wire:
		b, err := json.Marshal(rep.Wire())
		if err != nil {
			return err
		}
		if _, err := stdout.Write(append(b, '\n')); err != nil {
			return err
		}
	case jsonOut:
		if _, err := stdout.Write(rep.JSON()); err != nil {
			return err
		}
	default:
		fmt.Fprint(stdout, rep.Text())
	}
	if check {
		if rep.GoodputPerSec <= 0 {
			return findings(fmt.Errorf("load check: zero goodput (%d completed of %d issued)", rep.Completed, rep.Issued))
		}
		if rep.Errors != 0 {
			return findings(fmt.Errorf("load check: %d calls failed the error taxonomy (errors+timeouts) out of %d issued", rep.Errors, rep.Issued))
		}
	}
	return nil
}
