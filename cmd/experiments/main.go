// Command experiments regenerates every figure of the paper's
// evaluation (§4) and prints rows shaped like the original, with the
// paper's reported numbers quoted for comparison.
//
//	go run ./cmd/experiments            # all figures
//	go run ./cmd/experiments -fig 6     # one figure (2, 6, 7, 10, 11, 12, ports, marshal, faults, scale, shm, overload, c10k)
//	go run ./cmd/experiments -quick     # smaller workloads, noisier
//	go run ./cmd/experiments -csv       # machine-readable rows
//	go run ./cmd/experiments -json      # also write BENCH_<fig>.json per figure
//
// Absolute numbers are modern-Go numbers; the reproduction target is
// the shape of each comparison — which presentation wins and by
// roughly what factor. See EXPERIMENTS.md for recorded results and
// the paper-vs-measured discussion.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flexrpc/internal/experiments"
	"flexrpc/internal/netsim"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to run: 2, 6, 7, 10, 11, 12, ports, marshal, faults, scale, shm, overload, c10k or all")
		quick   = flag.Bool("quick", false, "smaller workloads (faster, noisier)")
		csv     = flag.Bool("csv", false, "emit comma-separated rows instead of aligned tables")
		jsonOut = flag.Bool("json", false, "also write BENCH_<fig>.json (ns/op, allocs/op, B/op) per figure")
	)
	flag.Parse()
	if err := run(*fig, *quick, *csv, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(fig string, quick, csv, jsonOut bool) error {
	emit := func(t *experiments.Table) {
		if csv {
			fmt.Print(t.CSV(), "\n")
		} else {
			fmt.Print(t.Format(), "\n")
		}
	}
	// emitJSON writes the figure's rows (and hot-path benchmark
	// metrics, when it has one) to BENCH_<name>.json.
	emitJSON := func(name string, t *experiments.Table, metrics []experiments.Metric) error {
		if !jsonOut {
			return nil
		}
		return experiments.WriteBenchJSON(name, t, metrics)
	}
	iters := 20000
	fileSize := 8 << 20
	pipeCfg := experiments.DefaultPipeConfig()
	if quick {
		iters = 3000
		fileSize = 1 << 20
		pipeCfg.Total = 512 << 10
	}

	want := func(name string) bool { return fig == "all" || fig == name }
	ran := false

	if want("2") {
		ran = true
		rows, err := experiments.Fig2(experiments.Fig2Config{
			FileSize: fileSize,
			Link:     netsim.Ethernet10,
		})
		if err != nil {
			return err
		}
		t := experiments.Fig2Table(rows)
		emit(t)
		if err := emitJSON("fig2", t, nil); err != nil {
			return err
		}
	}
	if want("6") {
		ran = true
		rows, err := experiments.Fig6(pipeCfg)
		if err != nil {
			return err
		}
		t := experiments.PipeTable(
			"Figure 6: basic pipe server over streamlined IPC (paper §4.2)",
			"paper: [dealloc(never)] improves total run time 21% (4K) and 24% (8K)",
			rows)
		emit(t)
		if err := emitJSON("fig6", t, nil); err != nil {
			return err
		}
	}
	if want("7") {
		ran = true
		rows, err := experiments.Fig7(pipeCfg)
		if err != nil {
			return err
		}
		t := experiments.PipeTable(
			"Figure 7: pipe server over fbufs (paper §4.3)",
			"paper: [special] improves throughput 92% (4K) and 160% (8K); BSD pipe shown for reference",
			rows)
		emit(t)
		if err := emitJSON("fig7", t, nil); err != nil {
			return err
		}
	}
	if want("10") {
		ran = true
		rows, err := experiments.Fig10(iters)
		if err != nil {
			return err
		}
		t := experiments.SemTable(
			"Figure 10: copy vs borrow semantics, same-domain 1KB in param (paper §4.4.1)",
			"paper: flexible matches the best fixed system in every group and needs no glue",
			rows)
		emit(t)
		if jsonOut {
			metrics, err := experiments.BenchFig10()
			if err != nil {
				return err
			}
			if err := emitJSON("fig10", t, metrics); err != nil {
				return err
			}
		}
	}
	if want("11") {
		ran = true
		rows, err := experiments.Fig11(iters)
		if err != nil {
			return err
		}
		t := experiments.SemTable(
			"Figure 11: allocation semantics, same-domain 1KB out param (paper §4.4.2)",
			"paper: flexible minimizes copying and eliminates glue; fixed systems are terrible when mismatched",
			rows)
		emit(t)
		if jsonOut {
			metrics, err := experiments.BenchFig11()
			if err != nil {
				return err
			}
			if err := emitJSON("fig11", t, metrics); err != nil {
				return err
			}
		}
	}
	if want("ports") {
		ran = true
		rows, err := experiments.PortTransfer(iters)
		if err != nil {
			return err
		}
		t := experiments.PortTable(rows)
		emit(t)
		if err := emitJSON("ports", t, nil); err != nil {
			return err
		}
	}
	if want("12") {
		ran = true
		m, err := experiments.Fig12(iters)
		if err != nil {
			return err
		}
		t := experiments.Fig12Table(m)
		emit(t)
		if err := emitJSON("fig12", t, nil); err != nil {
			return err
		}
	}
	if want("marshal") {
		ran = true
		metrics, err := experiments.BenchMarshal()
		if err != nil {
			return err
		}
		t := experiments.MetricTable(
			"Marshal: interpreted plan, 1KB echo round trip per codec", metrics)
		emit(t)
		if err := emitJSON("marshal", t, metrics); err != nil {
			return err
		}
	}
	if want("faults") {
		ran = true
		faultsCfg := experiments.DefaultFaultsConfig()
		if quick {
			faultsCfg.Calls = 1000
		}
		t, err := experiments.FigFaults(faultsCfg)
		if err != nil {
			return err
		}
		emit(t)
		if err := emitJSON("faults", t, nil); err != nil {
			return err
		}
	}
	if want("scale") {
		ran = true
		scaleCfg := experiments.DefaultScaleConfig()
		if quick {
			scaleCfg.Calls = 3000
		}
		t, err := experiments.FigScale(scaleCfg)
		if err != nil {
			return err
		}
		emit(t)
		if err := emitJSON("scale", t, nil); err != nil {
			return err
		}
	}
	if want("shm") {
		ran = true
		metrics, err := experiments.BenchShm()
		if err != nil {
			return err
		}
		t := experiments.MetricTable(
			"Shm: same-domain RPC over fbuf-backed ring slots with doorbell handoff", metrics)
		emit(t)
		if err := emitJSON("shm", t, metrics); err != nil {
			return err
		}
	}
	if want("overload") {
		ran = true
		overloadCfg := experiments.DefaultOverloadConfig()
		if quick {
			overloadCfg.Duration = 80 * time.Millisecond
		}
		t, err := experiments.FigOverload(overloadCfg)
		if err != nil {
			return err
		}
		emit(t)
		if err := emitJSON("overload", t, nil); err != nil {
			return err
		}
	}
	if want("c10k") {
		ran = true
		c10kCfg := experiments.DefaultC10KConfig()
		if quick {
			c10kCfg.Conns = []int{100, 1000}
			c10kCfg.Measure = 100 * time.Millisecond
			c10kCfg.NetpollConns = []int{1000}
			c10kCfg.NetpollActive = 128
		}
		t, err := experiments.FigC10K(c10kCfg)
		if err != nil {
			return err
		}
		emit(t)
		if err := emitJSON("c10k", t, nil); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure %q (want 2, 6, 7, 10, 11, 12, ports, marshal, faults, scale, shm, overload, c10k or all)", fig)
	}
	return nil
}
