// Command experiments regenerates every figure of the paper's
// evaluation (§4) and prints rows shaped like the original, with the
// paper's reported numbers quoted for comparison.
//
//	go run ./cmd/experiments            # all figures
//	go run ./cmd/experiments -fig 6     # one figure (2, 6, 7, 10, 11, 12, ports)
//	go run ./cmd/experiments -quick     # smaller workloads, noisier
//	go run ./cmd/experiments -csv       # machine-readable rows
//
// Absolute numbers are modern-Go numbers; the reproduction target is
// the shape of each comparison — which presentation wins and by
// roughly what factor. See EXPERIMENTS.md for recorded results and
// the paper-vs-measured discussion.
package main

import (
	"flag"
	"fmt"
	"os"

	"flexrpc/internal/experiments"
	"flexrpc/internal/netsim"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "figure to run: 2, 6, 7, 10, 11, 12, ports or all")
		quick = flag.Bool("quick", false, "smaller workloads (faster, noisier)")
		csv   = flag.Bool("csv", false, "emit comma-separated rows instead of aligned tables")
	)
	flag.Parse()
	if err := run(*fig, *quick, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(fig string, quick, csv bool) error {
	emit := func(t *experiments.Table) {
		if csv {
			fmt.Print(t.CSV(), "\n")
		} else {
			fmt.Print(t.Format(), "\n")
		}
	}
	iters := 20000
	fileSize := 8 << 20
	pipeCfg := experiments.DefaultPipeConfig()
	if quick {
		iters = 3000
		fileSize = 1 << 20
		pipeCfg.Total = 512 << 10
	}

	want := func(name string) bool { return fig == "all" || fig == name }
	ran := false

	if want("2") {
		ran = true
		rows, err := experiments.Fig2(experiments.Fig2Config{
			FileSize: fileSize,
			Link:     netsim.Ethernet10,
		})
		if err != nil {
			return err
		}
		emit(experiments.Fig2Table(rows))
	}
	if want("6") {
		ran = true
		rows, err := experiments.Fig6(pipeCfg)
		if err != nil {
			return err
		}
		emit(experiments.PipeTable(
			"Figure 6: basic pipe server over streamlined IPC (paper §4.2)",
			"paper: [dealloc(never)] improves total run time 21% (4K) and 24% (8K)",
			rows))
	}
	if want("7") {
		ran = true
		rows, err := experiments.Fig7(pipeCfg)
		if err != nil {
			return err
		}
		emit(experiments.PipeTable(
			"Figure 7: pipe server over fbufs (paper §4.3)",
			"paper: [special] improves throughput 92% (4K) and 160% (8K); BSD pipe shown for reference",
			rows))
	}
	if want("10") {
		ran = true
		rows, err := experiments.Fig10(iters)
		if err != nil {
			return err
		}
		emit(experiments.SemTable(
			"Figure 10: copy vs borrow semantics, same-domain 1KB in param (paper §4.4.1)",
			"paper: flexible matches the best fixed system in every group and needs no glue",
			rows))
	}
	if want("11") {
		ran = true
		rows, err := experiments.Fig11(iters)
		if err != nil {
			return err
		}
		emit(experiments.SemTable(
			"Figure 11: allocation semantics, same-domain 1KB out param (paper §4.4.2)",
			"paper: flexible minimizes copying and eliminates glue; fixed systems are terrible when mismatched",
			rows))
	}
	if want("ports") {
		ran = true
		rows, err := experiments.PortTransfer(iters)
		if err != nil {
			return err
		}
		emit(experiments.PortTable(rows))
	}
	if want("12") {
		ran = true
		m, err := experiments.Fig12(iters)
		if err != nil {
			return err
		}
		emit(experiments.Fig12Table(m))
	}
	if !ran {
		return fmt.Errorf("unknown figure %q (want 2, 6, 7, 10, 11, 12, ports or all)", fig)
	}
	return nil
}
