// Package flexrpc is an RPC stub compiler and runtime with flexible
// presentation support, a reproduction of Ford, Hibler and Lepreau,
// "Using Annotated Interface Definitions to Optimize RPC" (University
// of Utah, UUCS-95-014, 1995).
//
// The central idea: an RPC *interface* — the network contract between
// client and server — is distinct from its *presentation* — the
// programmer's contract between the stubs and local code. The
// compiler is split into three stages: an IDL front-end (CORBA
// IDL, Sun RPC .x, or MIG .defs) produces the neutral contract; the presentation
// stage computes a default presentation by fixed rules and applies an
// optional Presentation Definition Language (PDL) file; back-ends
// (the interpreted runtime stubs, or the Go source generator) consume
// the pair. Each endpoint of a connection may hold an arbitrarily
// different presentation of the same contract, and transports exploit
// the relaxed semantics presentations declare — buffer
// ownership ([dealloc], [alloc]), mutability ([trashable],
// [preserved]), custom marshal paths ([special]), naming
// ([nonunique]), and trust ([leaky], [unprotected]).
//
// Quick start:
//
//	c, err := flexrpc.Compile(flexrpc.Options{
//	    Frontend: flexrpc.FrontendCORBA,
//	    Filename: "fileio.idl",
//	    Source:   src,
//	})
//	disp := flexrpc.NewDispatcher(c.Pres)
//	disp.Handle("read", func(call *flexrpc.Call) error { ... })
//	conn, err := flexrpc.ConnectInProc(c.Pres, disp) // same-domain
//	outs, ret, err := conn.Invoke("read", []flexrpc.Value{uint32(64)}, nil, nil)
//
// See the examples directory for transport-crossing uses (simulated
// Mach IPC, fbufs, Sun RPC over TCP) and DESIGN.md for the map from
// the paper's experiments to this repository.
package flexrpc

import (
	"time"

	"flexrpc/internal/analyze"
	"flexrpc/internal/core"
	"flexrpc/internal/pres"
	"flexrpc/internal/runtime"
	"flexrpc/internal/stats"
	"flexrpc/internal/sunrpc"
	"flexrpc/internal/transport/inproc"
	"flexrpc/internal/xdr"
)

// Re-exported compiler types.
type (
	// Options configure one compilation; see Compile.
	Options = core.Options
	// Compiled is a parsed interface plus one endpoint's presentation.
	Compiled = core.Compiled
	// Frontend selects the IDL dialect.
	Frontend = core.Frontend
)

// Front-end selectors.
const (
	FrontendCORBA  = core.FrontendCORBA
	FrontendSunXDR = core.FrontendSunXDR
	FrontendMIG    = core.FrontendMIG
)

// Presentation styles (default-rule sets).
const (
	StyleCORBA = pres.StyleCORBA
	StyleSun   = pres.StyleSun
	StyleMIG   = pres.StyleMIG
)

// Re-exported presentation types.
type (
	// Presentation is one endpoint's programmer's contract.
	Presentation = pres.Presentation
	// ParamAttrs are the presentation attributes of one parameter.
	ParamAttrs = pres.ParamAttrs
	// Trust is an endpoint's trust in its peer.
	Trust = pres.Trust
)

// Trust levels.
const (
	TrustNone  = pres.TrustNone
	TrustLeaky = pres.TrustLeaky
	TrustFull  = pres.TrustFull
)

// Buffer allocation policies (presentation attributes).
const (
	AllocAuto   = pres.AllocAuto
	AllocCaller = pres.AllocCaller
	AllocCallee = pres.AllocCallee
)

// Buffer deallocation policies (presentation attributes).
const (
	DeallocDefault = pres.DeallocDefault
	DeallocAlways  = pres.DeallocAlways
	DeallocNever   = pres.DeallocNever
)

// Re-exported runtime types.
type (
	// Value is the runtime representation of one IR-typed value.
	Value = runtime.Value
	// PortName is a transferred capability reference.
	PortName = runtime.PortName
	// Invoker is anything operations can be called through.
	Invoker = runtime.Invoker
	// Call carries one invocation to a server work function.
	Call = runtime.Call
	// Handler is a server work function.
	Handler = runtime.Handler
	// Dispatcher is the server half of the stubs.
	Dispatcher = runtime.Dispatcher
	// Client executes calls by marshaling onto a transport.
	Client = runtime.Client
	// Codec is a wire encoding (XDR or CDR).
	Codec = runtime.Codec
	// SpecialHooks are programmer-supplied marshal routines for
	// [special] parameters.
	SpecialHooks = runtime.SpecialHooks
	// StepHooks are bind-time compiled (and re-entrant) [special]
	// marshal hooks, required by NewParallelClient.
	StepHooks = runtime.StepHooks
	// EncodeStepFn is one compiled marshal step.
	EncodeStepFn = runtime.EncodeStepFn
	// DecodeStepFn is one compiled unmarshal step.
	DecodeStepFn = runtime.DecodeStepFn
	// Conn is a client-side message transport connection.
	Conn = runtime.Conn
	// Encoder appends wire-format primitives (used by compiled stubs).
	Encoder = runtime.Encoder
	// Decoder reads wire-format primitives (used by compiled stubs).
	Decoder = runtime.Decoder
)

// Re-exported Sun RPC server-runtime types (the record-marked TCP
// transport; see DESIGN.md §8). The raw ProcHandler surface decodes
// straight out of the record buffer, so handlers obey the borrow
// contract flexvet's FV023 check enforces in netpoll mode.
type (
	// SunServer is the record-marked Sun RPC (RFC 5531) server.
	SunServer = sunrpc.Server
	// SunProcHandler is a raw per-procedure handler.
	SunProcHandler = sunrpc.ProcHandler
	// SunDecoder reads XDR primitives from a request record.
	SunDecoder = xdr.Decoder
	// SunEncoder appends XDR primitives to a reply record.
	SunEncoder = xdr.Encoder
)

// NewSunServer builds a Sun RPC server for one program/version.
func NewSunServer(prog, vers uint32) *SunServer { return sunrpc.NewServer(prog, vers) }

// Re-exported robustness-layer types (deadlines, retries,
// at-most-once execution; see DESIGN.md §6).
type (
	// ContextConn is a Conn honoring per-call deadlines natively.
	ContextConn = runtime.ContextConn
	// ContextInvoker is an Invoker with per-call deadlines.
	ContextInvoker = runtime.ContextInvoker
	// RetryPolicy bounds the retry loop (backoff, jitter, attempts).
	RetryPolicy = runtime.RetryPolicy
	// RobustOptions configure a RobustConn.
	RobustOptions = runtime.RobustOptions
	// RobustConn wraps a Conn with framing, CRCs, deadlines and
	// idempotency-aware retry; pair with a SessionServer.
	RobustConn = runtime.RobustConn
	// SessionServer is the server half of the session layer.
	SessionServer = runtime.SessionServer
	// ReplyCache memoizes replies for at-most-once execution.
	ReplyCache = runtime.ReplyCache
	// PanicError reports a recovered server work-function panic.
	PanicError = runtime.PanicError
	// BatchOptions size RobustConn.EnableBatching's small-call merger
	// for [batchable] operations.
	BatchOptions = runtime.BatchOptions
)

// Re-exported overload-resilience types (admission control with
// wire-visible pushback, stats-informed load shedding, retry budgets,
// circuit breaking, graceful drain; see DESIGN.md §6).
type (
	// Admission is a server-side admission controller; install with
	// SessionServer.SetAdmission. Decisions run before decode and
	// allocate nothing.
	Admission = runtime.Admission
	// AdmissionOptions configure an Admission controller: inflight
	// caps, per-client fairness, pushback advice, and the
	// stats-informed load shedder.
	AdmissionOptions = runtime.AdmissionOptions
	// RetryBudget is a client-side token bucket bounding retry
	// amplification under pushback; share one across the conns that
	// target one backend.
	RetryBudget = runtime.RetryBudget
	// Breaker is a client-side circuit breaker: consecutive failures
	// open it, a half-open probe closes it.
	Breaker = runtime.Breaker
	// ErrOverloaded is a server pushback surfaced to the caller, with
	// the server's advisory RetryAfter; errors.Is(err, ErrDraining)
	// discriminates a drain from momentary load.
	ErrOverloaded = runtime.ErrOverloaded
)

// Overload-taxonomy sentinels.
var (
	// ErrDraining matches pushback from a draining server.
	ErrDraining = runtime.ErrDraining
	// ErrCircuitOpen reports a call failed fast at an open Breaker
	// without touching the wire.
	ErrCircuitOpen = runtime.ErrCircuitOpen
)

// NewAdmission builds an admission controller from o.
func NewAdmission(o AdmissionOptions) *Admission { return runtime.NewAdmission(o) }

// NewRetryBudget returns a retry budget holding up to capacity
// retries, refilled at ratio tokens per attempt.
func NewRetryBudget(capacity, ratio float64) *RetryBudget {
	return runtime.NewRetryBudget(capacity, ratio)
}

// NewBreaker returns a circuit breaker opening after threshold
// consecutive failures for at least cooldown (or the server's
// RetryAfter advice, whichever is longer). A nil clock means
// WallClock.
func NewBreaker(threshold int, cooldown time.Duration, clock Clock) *Breaker {
	return runtime.NewBreaker(threshold, cooldown, clock)
}

// NewRobustConn wraps a transport connection with the client half of
// the session layer for presentation p.
func NewRobustConn(inner Conn, p *Presentation, opts RobustOptions) *RobustConn {
	return runtime.NewRobustConn(inner, p, opts)
}

// NewReplyCache returns an at-most-once reply cache retaining up to
// capacity completed replies.
func NewReplyCache(capacity int) *ReplyCache { return runtime.NewReplyCache(capacity) }

// NewReplyCacheSharded returns an at-most-once reply cache whose
// state is split across independently locked shards (rounded up to a
// power of two; shards <= 0 derives a count from GOMAXPROCS), so
// concurrent worker-pool dispatch doesn't serialize on one lock.
func NewReplyCacheSharded(capacity, shards int) *ReplyCache {
	return runtime.NewReplyCacheSharded(capacity, shards)
}

// NewSessionServer builds the server half of the session layer over
// disp, compiling disp's marshal plan for codec. cache may be nil,
// which disables duplicate suppression.
func NewSessionServer(disp *Dispatcher, codec Codec, hooks SpecialHooks, cache *ReplyCache) (*SessionServer, error) {
	plan, err := runtime.NewPlan(disp.Pres, codec, hooks)
	if err != nil {
		return nil, err
	}
	return runtime.NewSessionServer(disp, plan, cache), nil
}

// Retryable reports whether a failed call may safely be retried
// under the session layer.
func Retryable(err error) bool { return runtime.Retryable(err) }

// Re-exported observability types (per-op counters, latency
// histograms, copy/alloc meters, call tracing; see DESIGN.md §7).
// Client.EnableStats, Dispatcher.EnableStats and the inproc Conn's
// EnableStats attach an endpoint; with stats disabled every hot-path
// hook is one nil check and zero allocations.
type (
	// StatsEndpoint accumulates one side's counters and meters.
	StatsEndpoint = stats.Endpoint
	// StatsSnapshot is a point-in-time copy of an endpoint, with an
	// expvar-style Text rendering and a Merge for fan-in.
	StatsSnapshot = stats.Snapshot
	// TraceEvent is one recorded per-call trace stage.
	TraceEvent = stats.TraceEvent
	// Clock abstracts time for the session layer's backoff and
	// deadlines; WallClock is the default, FakeClock drives tests.
	Clock = runtime.Clock
	// FakeClock is a deterministic Clock for testing retry schedules.
	FakeClock = runtime.FakeClock
)

// WallClock is the real-time Clock the session layer uses by default.
var WallClock = runtime.WallClock

// NewFakeClock returns a deterministic Clock for tests.
func NewFakeClock() *FakeClock { return runtime.NewFakeClock() }

// NewStats builds a standalone stats endpoint over the given
// operation names, for callers wiring several components to one
// endpoint by hand.
func NewStats(names []string) *StatsEndpoint { return stats.New(names) }

// Wire codecs.
var (
	// XDRCodec marshals in Sun XDR.
	XDRCodec = runtime.XDRCodec
	// CDRCodec marshals in CORBA CDR (big-endian).
	CDRCodec = runtime.CDRCodec
	// CDRCodecLE marshals in CORBA CDR, little-endian.
	CDRCodecLE = runtime.CDRCodecLE
)

// Re-exported flexvet (static analyzer) types.
type (
	// Diagnostic is one flexvet finding: stable check ID, severity,
	// source position and a one-line fix suggestion.
	Diagnostic = analyze.Diagnostic
	// Severity grades a Diagnostic.
	Severity = analyze.Severity
	// Endpoint is one side of a connection as the analyzer sees it:
	// a presentation plus an optional transport binding and label.
	Endpoint = analyze.Endpoint
)

// Diagnostic severities.
const (
	SevInfo    = analyze.SevInfo
	SevWarning = analyze.SevWarning
	SevError   = analyze.SevError
)

// Re-exported plan-certification types (`flexc vet -certify`). A
// certificate is derived from the compiled marshal plan's actual
// step lists, so its landing modes and allocation bounds describe
// what the hot path will really do.
type (
	// PlanCert certifies one compiled plan: codec, interface
	// signature, and one OpCert per operation. VerifyBounds,
	// VerifyAllocFree and VerifyAllocBound prove the paper's
	// 0-alloc/bounded-decode invariants statically.
	PlanCert = runtime.PlanCert
	// OpCert certifies one operation's step lists and per-side
	// allocation bounds.
	OpCert = runtime.OpCert
	// StepCert certifies one marshal step: phase, landing mode,
	// whether it allocates, and its max-decode bound.
	StepCert = runtime.StepCert
)

// Certificate step phases and landing modes.
const (
	PhaseReqEncode = runtime.PhaseReqEncode
	PhaseReqDecode = runtime.PhaseReqDecode
	PhaseRepEncode = runtime.PhaseRepEncode
	PhaseRepDecode = runtime.PhaseRepDecode

	LandScalar  = runtime.LandScalar
	LandBorrow  = runtime.LandBorrow
	LandCaller  = runtime.LandCaller
	LandOwn     = runtime.LandOwn
	LandSpecial = runtime.LandSpecial
	LandNone    = runtime.LandNone
)

// Certify compiles the marshal plan for a presentation and returns
// its certificate.
func Certify(p *Presentation, codec Codec, hooks SpecialHooks) (*PlanCert, error) {
	plan, err := runtime.NewPlan(p, codec, hooks)
	if err != nil {
		return nil, err
	}
	return plan.Certificate(), nil
}

// Check runs flexvet over one or more presentations of a shared
// interface: annotation safety lints on each, cross-endpoint
// compatibility (contract identity, unsafe annotation pairs) on
// every pair. Diagnostics come back sorted by source position.
func Check(ps ...*Presentation) []Diagnostic { return analyze.Check(nil, ps...) }

// CheckEndpoints is Check with transport bindings and endpoint
// labels, enabling the transport-aware checks (FV005).
func CheckEndpoints(eps []Endpoint) []Diagnostic {
	if len(eps) == 0 {
		return nil
	}
	return analyze.CheckEndpoints(nil, eps)
}

// Compile runs the front-end and presentation stages.
func Compile(o Options) (*Compiled, error) { return core.Compile(o) }

// NewDispatcher creates a server dispatcher for the presentation.
func NewDispatcher(p *Presentation) *Dispatcher { return runtime.NewDispatcher(p) }

// NewClient builds a marshal-based client over a transport
// connection.
func NewClient(p *Presentation, codec Codec, conn runtime.Conn, hooks SpecialHooks) (*Client, error) {
	return runtime.NewClient(p, codec, conn, hooks)
}

// NewParallelClient builds a client whose Invoke is safe for
// concurrent use without a global mutex: per-call marshal state is
// pooled, and [special] hooks must implement StepHooks (re-entrant
// bind-time steps) — enforced at bind time.
func NewParallelClient(p *Presentation, codec Codec, conn runtime.Conn, hooks SpecialHooks) (*Client, error) {
	return runtime.NewParallelClient(p, codec, conn, hooks)
}

// ConnectInProc binds a client presentation to a dispatcher in the
// same protection domain; calls short-circuit to negotiated direct
// invocations (paper §4.4).
func ConnectInProc(clientPres *Presentation, disp *Dispatcher) (Invoker, error) {
	return inproc.Connect(clientPres, disp)
}

// RawCall round-trips a pre-marshaled request for compiled stubs,
// returning a decoder positioned at the reply body. Generated
// *CompiledClient types call this; application code normally uses
// Invoke or the typed stub methods instead.
func RawCall(conn Conn, codec Codec, opIdx int, req, replyBuf []byte) (Decoder, []byte, error) {
	return runtime.RawCall(conn, codec, opIdx, req, replyBuf)
}
