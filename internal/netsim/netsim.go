// Package netsim shapes in-memory network connections with latency
// and bandwidth limits, standing in for the "ordinary Ethernet"
// between the Linux NFS client and the BSD file server in the
// paper's §4.1 experiment. A shaped link delays each write by a
// fixed per-message latency plus a transmission time proportional to
// the payload, so the network-plus-server portion of the measured
// time is the same across presentations — exactly as in the paper's
// Figure 2, where only the client-processing segment varies.
package netsim

import (
	"net"
	"sync"
	"time"
)

// LinkParams describe one direction of a simulated link.
type LinkParams struct {
	// Latency is added once per Write.
	Latency time.Duration
	// Bandwidth in bytes per second; zero means unlimited.
	Bandwidth int64
}

// Ethernet10 approximates the paper's 10 Mbit/s Ethernet scaled to
// keep benchmark runtimes reasonable: the ratio of network time to
// client CPU time, not the absolute seconds, is what Figure 2
// exhibits.
var Ethernet10 = LinkParams{
	Latency:   50 * time.Microsecond,
	Bandwidth: 40 << 20, // 40 MB/s
}

// delayFor returns the transmission delay for n payload bytes.
func (p LinkParams) delayFor(n int) time.Duration {
	d := p.Latency
	if p.Bandwidth > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / p.Bandwidth)
	}
	return d
}

// shapedConn delays writes according to the link parameters.
type shapedConn struct {
	net.Conn
	params LinkParams
}

// Shape wraps c so every write pays the link's latency and
// transmission delay. Reads are unshaped: delaying the sender models
// a half-duplex link well enough for request/response traffic.
func Shape(c net.Conn, p LinkParams) net.Conn {
	if p.Latency == 0 && p.Bandwidth == 0 {
		return c
	}
	return &shapedConn{Conn: c, params: p}
}

func (s *shapedConn) Write(b []byte) (int, error) {
	preciseDelay(s.params.delayFor(len(b)))
	return s.Conn.Write(b)
}

// preciseDelay waits for d with microsecond precision: timer sleeps
// overshoot by tens of microseconds on a loaded host, which would
// drown the per-message latencies a link simulation is made of, so
// the final stretch is spun.
func preciseDelay(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	// Sleep through the coarse part, leaving the last stretch for
	// the spin loop.
	const spinWindow = 200 * time.Microsecond
	if d > spinWindow {
		time.Sleep(d - spinWindow)
	}
	for time.Now().Before(deadline) {
		// spin
	}
}

// Pipe returns the two ends of an in-memory duplex connection whose
// writes in both directions are shaped by p. With zero params it is
// a plain synchronous pipe.
func Pipe(p LinkParams) (client, server net.Conn) {
	c, s := net.Pipe()
	return Shape(c, p), Shape(s, p)
}

// bufferedPipe is a byte-stream pipe with an internal buffer so
// writers do not block waiting for the reader, closer to a kernel
// socket buffer than net.Pipe's synchronous rendezvous.
type bufferedPipe struct {
	ch        chan []byte
	rest      []byte
	closed    chan struct{}
	closeOnce sync.Once
}

func (bp *bufferedPipe) close() {
	bp.closeOnce.Do(func() { close(bp.closed) })
}

// BufferedPipe returns an in-memory duplex stream with depth
// messages of write buffering per direction, shaped by p. It is
// useful when client and server would otherwise deadlock on
// synchronous writes.
func BufferedPipe(p LinkParams, depth int) (client, server net.Conn) {
	ab := &bufferedPipe{ch: make(chan []byte, depth), closed: make(chan struct{})}
	ba := &bufferedPipe{ch: make(chan []byte, depth), closed: make(chan struct{})}
	c := &pipeEnd{r: ba, w: ab}
	s := &pipeEnd{r: ab, w: ba}
	return Shape(c, p), Shape(s, p)
}

type pipeEnd struct {
	r, w *bufferedPipe
}

func (e *pipeEnd) Read(b []byte) (int, error) {
	bp := e.r
	if len(bp.rest) == 0 {
		select {
		case data, ok := <-bp.ch:
			if !ok {
				return 0, net.ErrClosed
			}
			bp.rest = data
		case <-bp.closed:
			// Drain anything written before close.
			select {
			case data, ok := <-bp.ch:
				if !ok {
					return 0, net.ErrClosed
				}
				bp.rest = data
			default:
				return 0, net.ErrClosed
			}
		}
	}
	n := copy(b, bp.rest)
	bp.rest = bp.rest[n:]
	return n, nil
}

func (e *pipeEnd) Write(b []byte) (int, error) {
	select {
	case <-e.w.closed:
		return 0, net.ErrClosed
	default:
	}
	data := make([]byte, len(b))
	copy(data, b)
	select {
	case e.w.ch <- data:
		return len(b), nil
	case <-e.w.closed:
		return 0, net.ErrClosed
	}
}

func (e *pipeEnd) Close() error {
	e.w.close()
	e.r.close()
	return nil
}

func (e *pipeEnd) LocalAddr() net.Addr                { return pipeAddr{} }
func (e *pipeEnd) RemoteAddr() net.Addr               { return pipeAddr{} }
func (e *pipeEnd) SetDeadline(t time.Time) error      { return nil }
func (e *pipeEnd) SetReadDeadline(t time.Time) error  { return nil }
func (e *pipeEnd) SetWriteDeadline(t time.Time) error { return nil }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "netsim" }
func (pipeAddr) String() string  { return "netsim" }
