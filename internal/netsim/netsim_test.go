package netsim

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

func TestDelayFor(t *testing.T) {
	p := LinkParams{Latency: time.Millisecond, Bandwidth: 1 << 20}
	if d := p.delayFor(0); d != time.Millisecond {
		t.Fatalf("zero-byte delay = %v", d)
	}
	// 1 MiB at 1 MiB/s = 1s (+latency).
	if d := p.delayFor(1 << 20); d != time.Second+time.Millisecond {
		t.Fatalf("1MiB delay = %v", d)
	}
	if d := (LinkParams{}).delayFor(1 << 20); d != 0 {
		t.Fatalf("unshaped delay = %v", d)
	}
}

func TestShapeNoopForZeroParams(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	if Shape(c, LinkParams{}) != c {
		t.Fatal("zero params should return the conn unchanged")
	}
}

func TestPipeTransfersData(t *testing.T) {
	c, s := Pipe(LinkParams{})
	defer c.Close()
	defer s.Close()
	go func() {
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("got %q", buf)
	}
}

func TestShapedWriteIsDelayed(t *testing.T) {
	c, s := Pipe(LinkParams{Latency: 20 * time.Millisecond})
	defer c.Close()
	defer s.Close()
	start := time.Now()
	go func() {
		_, _ = c.Write([]byte("x"))
	}()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("elapsed = %v, want >= 20ms", elapsed)
	}
}

func TestBufferedPipeDoesNotBlockWriter(t *testing.T) {
	c, s := BufferedPipe(LinkParams{}, 8)
	defer c.Close()
	defer s.Close()
	// Several writes complete with no reader present.
	for i := 0; i < 4; i++ {
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0, 1, 2, 3}) {
		t.Fatalf("got %v", buf)
	}
}

func TestBufferedPipePartialReads(t *testing.T) {
	c, s := BufferedPipe(LinkParams{}, 2)
	defer c.Close()
	defer s.Close()
	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	b1 := make([]byte, 2)
	b2 := make([]byte, 4)
	if _, err := io.ReadFull(s, b1); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(s, b2); err != nil {
		t.Fatal(err)
	}
	if string(b1)+string(b2) != "abcdef" {
		t.Fatalf("got %q + %q", b1, b2)
	}
}

func TestBufferedPipeClose(t *testing.T) {
	c, s := BufferedPipe(LinkParams{}, 2)
	if _, err := c.Write([]byte("last")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("double close should be harmless")
	}
	// Data written before close is still readable.
	buf := make([]byte, 4)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "last" {
		t.Fatalf("got %q", buf)
	}
	// Then EOF-ish error.
	if _, err := s.Read(buf); err == nil {
		t.Fatal("read after close should fail")
	}
	// Writes to a closed pipe fail.
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("write after close should fail")
	}
}

func TestWriterDataIsSnapshotted(t *testing.T) {
	c, s := BufferedPipe(LinkParams{}, 2)
	defer c.Close()
	defer s.Close()
	data := []byte("orig")
	if _, err := c.Write(data); err != nil {
		t.Fatal(err)
	}
	copy(data, "MUT!") // mutate after write returns
	buf := make([]byte, 4)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "orig" {
		t.Fatalf("got %q, want snapshot", buf)
	}
}
