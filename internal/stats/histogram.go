package stats

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the fixed bucket count of the latency histogram.
// Bucket i counts durations whose nanosecond value has bit length i:
// bucket 0 is exactly 0ns, bucket i covers [2^(i-1), 2^i) ns, and the
// last bucket absorbs everything longer (2^46 ns ≈ 19.5 hours, far
// past any RPC deadline).
const HistBuckets = 48

// A Histogram is a lock-free power-of-two latency histogram. The
// zero value is an empty histogram; Record on a nil *Histogram is a
// no-op. Concurrent Record calls never block each other — every
// field is an independent atomic.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [HistBuckets]atomic.Uint64
}

// Record adds one duration observation.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	i := bits.Len64(ns)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Snapshot copies the histogram's current contents.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	// Buckets first, totals after: a racing Record can make the
	// totals run slightly ahead of the buckets but never behind,
	// which Quantile tolerates (it clamps at the last non-empty
	// bucket).
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	return s
}

// HistogramSnapshot is a plain-value copy of a Histogram; snapshots
// merge by addition, which is what makes per-shard histograms cheap
// to aggregate.
type HistogramSnapshot struct {
	Count   uint64              `json:"count"`
	SumNs   uint64              `json:"sum_ns"`
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// Merge adds o's observations into s.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	if o == nil {
		return
	}
	s.Count += o.Count
	s.SumNs += o.SumNs
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observation, 0 when empty.
func (s *HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]):
// the top of the bucket the q-th observation falls in.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	var total uint64
	for _, b := range s.Buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total-1))
	var seen uint64
	for i, b := range s.Buckets {
		seen += b
		if b > 0 && seen > rank {
			if i == 0 {
				return 0
			}
			return time.Duration(uint64(1)<<uint(i) - 1)
		}
	}
	return time.Duration(uint64(1)<<uint(HistBuckets-1) - 1)
}

// histMagic guards the binary form against foreign bytes; the low
// byte is the format version.
const histMagic = uint32(0x46585348) // "FXSH"

// histWireSize is the fixed encoded size: magic + count + sum +
// buckets, all big-endian uint64s except the magic.
const histWireSize = 4 + 8 + 8 + 8*HistBuckets

// MarshalBinary encodes the snapshot in a fixed-size, mergeable,
// endian-stable form.
func (s *HistogramSnapshot) MarshalBinary() ([]byte, error) {
	out := make([]byte, histWireSize)
	binary.BigEndian.PutUint32(out[0:], histMagic)
	binary.BigEndian.PutUint64(out[4:], s.Count)
	binary.BigEndian.PutUint64(out[12:], s.SumNs)
	for i, b := range s.Buckets {
		binary.BigEndian.PutUint64(out[20+8*i:], b)
	}
	return out, nil
}

// UnmarshalBinary decodes a snapshot produced by MarshalBinary. It
// rejects wrong sizes, wrong magic, and inconsistent contents
// (bucket sum must equal the observation count), so merging decoded
// snapshots can never corrupt totals.
func (s *HistogramSnapshot) UnmarshalBinary(data []byte) error {
	if len(data) != histWireSize {
		return fmt.Errorf("stats: histogram: %d bytes, want %d", len(data), histWireSize)
	}
	if m := binary.BigEndian.Uint32(data[0:]); m != histMagic {
		return fmt.Errorf("stats: histogram: bad magic %#x", m)
	}
	var dec HistogramSnapshot
	dec.Count = binary.BigEndian.Uint64(data[4:])
	dec.SumNs = binary.BigEndian.Uint64(data[12:])
	var total uint64
	overflow := false
	for i := range dec.Buckets {
		b := binary.BigEndian.Uint64(data[20+8*i:])
		dec.Buckets[i] = b
		if total+b < total {
			overflow = true
		}
		total += b
	}
	if overflow || total != dec.Count {
		return fmt.Errorf("stats: histogram: bucket sum %d != count %d", total, dec.Count)
	}
	*s = dec
	return nil
}
