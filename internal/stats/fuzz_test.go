package stats

import (
	"bytes"
	"testing"
	"time"
)

// FuzzHistogramCodec drives UnmarshalBinary with arbitrary bytes: it
// must never panic, and anything it accepts must re-encode to the
// exact same bytes (the form is canonical).
func FuzzHistogramCodec(f *testing.F) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i * i))
	}
	snap := h.Snapshot()
	seed, _ := snap.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, histWireSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s HistogramSnapshot
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		var total uint64
		for _, b := range s.Buckets {
			total += b
		}
		if total != s.Count {
			t.Fatalf("accepted inconsistent histogram: sum %d count %d", total, s.Count)
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("not canonical:\n in  %x\n out %x", data, out)
		}
	})
}

// FuzzTraceCodec drives UnmarshalTrace with arbitrary bytes: no
// panics, and accepted traces round-trip semantically — re-marshaling
// the decoded events and decoding again yields the same events.
// (Byte-level canonicality does not hold: Uvarint accepts non-minimal
// varint spellings.)
func FuzzTraceCodec(f *testing.F) {
	seed, _ := MarshalTrace([]TraceEvent{
		{ID: 1, Op: 2, Stage: StageEncode, At: 10},
		{ID: 0xFFFF, Op: 65535, Stage: StageReply, At: 1 << 40},
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x46, 0x58, 0x54, 0x31, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := UnmarshalTrace(data)
		if err != nil {
			return
		}
		for _, ev := range events {
			if ev.Stage == 0 || ev.Stage > stageMax {
				t.Fatalf("accepted invalid stage %d", ev.Stage)
			}
			if ev.At < 0 {
				t.Fatalf("accepted negative timestamp %d", ev.At)
			}
		}
		out, err := MarshalTrace(events)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		back, err := UnmarshalTrace(out)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(back))
		}
		for i := range back {
			if back[i] != events[i] {
				t.Fatalf("event %d drifted: %+v != %+v", i, back[i], events[i])
			}
		}
	})
}
