// Package stats is the runtime's observability layer: per-operation
// counters, lock-free latency histograms, byte/copy/alloc meters and
// a bounded call-trace ring, all designed so that the disabled path
// costs exactly one nil check and zero allocations.
//
// The central type is Endpoint: one per client or dispatcher, shared
// by every layer of that endpoint's call path (codec, session,
// transport). All methods are safe on a nil *Endpoint and on nil
// component pointers, which is what makes threading the meters
// through hot paths free when observability is off — callers never
// branch, they just call.
//
// Recording is wait-free: counters and histogram buckets are plain
// atomics, the trace ring overwrites oldest entries, and nothing
// takes a lock. Snapshots are taken with atomic loads and are
// internally consistent only per-counter (a snapshot may observe a
// call that has incremented calls but not yet latency); that is the
// usual and acceptable contract for monitoring counters.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// A Meter counts events and the bytes they moved. The zero value is
// ready to use; Add on a nil *Meter is a no-op.
type Meter struct {
	count atomic.Uint64
	bytes atomic.Uint64
}

// Add records one event moving n bytes.
func (m *Meter) Add(n int) {
	if m == nil {
		return
	}
	m.count.Add(1)
	if n > 0 {
		m.bytes.Add(uint64(n))
	}
}

// AddN records events moving n bytes in total.
func (m *Meter) AddN(events, n int) {
	if m == nil || events <= 0 {
		return
	}
	m.count.Add(uint64(events))
	if n > 0 {
		m.bytes.Add(uint64(n))
	}
}

// Snapshot returns the meter's current totals.
func (m *Meter) Snapshot() MeterSnapshot {
	if m == nil {
		return MeterSnapshot{}
	}
	return MeterSnapshot{Count: m.count.Load(), Bytes: m.bytes.Load()}
}

// MeterSnapshot is a point-in-time copy of a Meter.
type MeterSnapshot struct {
	Count uint64 `json:"count"`
	Bytes uint64 `json:"bytes"`
}

// Outcome classifies how a call ended, as seen by the recorder.
type Outcome uint8

const (
	// OK is a successful call.
	OK Outcome = iota
	// Failed is any error that is not a timeout or a handler panic.
	Failed
	// TimedOut is a deadline expiry (client-side classification).
	TimedOut
	// Panicked is a recovered handler panic (server-side).
	Panicked
)

// opCounters is the per-operation counter row. Everything is an
// atomic so rows can be updated concurrently without locks.
type opCounters struct {
	calls    atomic.Uint64
	errors   atomic.Uint64
	retries  atomic.Uint64
	replays  atomic.Uint64
	panics   atomic.Uint64
	timeouts atomic.Uint64
	bytesOut atomic.Uint64
	bytesIn  atomic.Uint64
	traced   Meter // [traced] parameter payloads
	lat      Histogram
}

// An Endpoint aggregates observability for one side of an interface:
// a client, a dispatcher, or a transport endpoint. Layers share one
// Endpoint so an operator sees a single coherent view per peer.
//
// A nil *Endpoint is the disabled state: every method no-ops.
type Endpoint struct {
	names  []string
	byName map[string]int
	ops    []opCounters

	// Codec-layer meters: marshaled request/reply bytes produced and
	// consumed, plus the copies and fresh landing-buffer allocations
	// the compiled plan performed on behalf of the caller.
	Encode Meter
	Decode Meter
	Copy   Meter
	Alloc  Meter

	// Wire meters one frame per transport send or receive, including
	// session-layer retransmissions the op counters hide.
	Wire Meter

	// Session-layer failure counters that have no single op to bill.
	badFrames      atomic.Uint64
	corruptReplies atomic.Uint64

	// Concurrency counters for the scaling machinery: requests queued
	// to a server worker pool, reply-writer flushes and the records
	// they carried (a flush with two or more records coalesced writes
	// that would otherwise have been separate syscalls), calls that
	// rode inside a client batch frame, reply-cache shard lock
	// contention, and handler panics recovered outside any op row.
	queued          atomic.Uint64
	flushes         atomic.Uint64
	flushedRecords  atomic.Uint64
	coalescedWrites atomic.Uint64
	batchedCalls    atomic.Uint64
	batchFlushes    atomic.Uint64
	shardContention atomic.Uint64
	handlerPanics   atomic.Uint64

	// Netpoll server-runtime counters: poller wakeups (readiness
	// events delivered to registered connections), connections
	// registered with a poller over the server's lifetime, accepts
	// delayed by the per-shard accept rate limiter, and reads that
	// ended mid-record (the partial record persists in per-conn
	// reassembly state until the next readiness event).
	pollerWakeups   atomic.Uint64
	pollerConnsReg  atomic.Uint64
	acceptThrottled atomic.Uint64
	partialReads    atomic.Uint64

	// Overload counters. Server side: calls rejected with a pushback
	// frame before decode (admission caps or the load shedder) and
	// calls rejected because the server is draining. Client side:
	// pushback replies received, retries the retry budget refused to
	// spend, circuit-breaker trips, and calls the open breaker failed
	// without touching the wire.
	sheds            atomic.Uint64
	drainRejects     atomic.Uint64
	pushbacks        atomic.Uint64
	retrySuppressed  atomic.Uint64
	breakerOpens     atomic.Uint64
	breakerFastFails atomic.Uint64

	tracer atomic.Pointer[Tracer]
	lastID atomic.Uint32
}

// New creates an Endpoint with one counter row per operation name,
// indexed in order.
func New(names []string) *Endpoint {
	e := &Endpoint{
		names:  append([]string(nil), names...),
		byName: make(map[string]int, len(names)),
		ops:    make([]opCounters, len(names)),
	}
	for i, n := range names {
		e.byName[n] = i
	}
	return e
}

// Enabled reports whether the endpoint records anything.
func (e *Endpoint) Enabled() bool { return e != nil }

// OpIndex returns the counter-row index for name, or -1.
func (e *Endpoint) OpIndex(name string) int {
	if e == nil {
		return -1
	}
	if i, ok := e.byName[name]; ok {
		return i
	}
	return -1
}

func (e *Endpoint) row(op int) *opCounters {
	if e == nil || op < 0 || op >= len(e.ops) {
		return nil
	}
	return &e.ops[op]
}

// RecordCall records one completed call on op: its latency, the
// marshaled request/reply sizes, and its outcome. Timeouts and
// panics also count as errors.
func (e *Endpoint) RecordCall(op int, d time.Duration, bytesOut, bytesIn int, o Outcome) {
	c := e.row(op)
	if c == nil {
		return
	}
	c.calls.Add(1)
	switch o {
	case Failed:
		c.errors.Add(1)
	case TimedOut:
		c.errors.Add(1)
		c.timeouts.Add(1)
	case Panicked:
		c.errors.Add(1)
		c.panics.Add(1)
	}
	if bytesOut > 0 {
		c.bytesOut.Add(uint64(bytesOut))
	}
	if bytesIn > 0 {
		c.bytesIn.Add(uint64(bytesIn))
	}
	c.lat.Record(d)
}

// AddBytes adds marshaled request/reply sizes to op's byte counters
// without touching the call count — for layers that see the bytes of
// a call someone else counts.
func (e *Endpoint) AddBytes(op, bytesOut, bytesIn int) {
	c := e.row(op)
	if c == nil {
		return
	}
	if bytesOut > 0 {
		c.bytesOut.Add(uint64(bytesOut))
	}
	if bytesIn > 0 {
		c.bytesIn.Add(uint64(bytesIn))
	}
}

// AddRetry counts one retransmitted attempt of op.
func (e *Endpoint) AddRetry(op int) {
	if c := e.row(op); c != nil {
		c.retries.Add(1)
	}
}

// AddReplay counts one reply served from the at-most-once cache
// instead of re-executing op.
func (e *Endpoint) AddReplay(op int) {
	if c := e.row(op); c != nil {
		c.replays.Add(1)
	}
}

// AddTraced records the marshaled size of one [traced] parameter of
// op.
func (e *Endpoint) AddTraced(op, n int) {
	if c := e.row(op); c != nil {
		c.traced.Add(n)
	}
}

// AddBadFrame counts one unparseable or mis-checksummed session
// frame.
func (e *Endpoint) AddBadFrame() {
	if e != nil {
		e.badFrames.Add(1)
	}
}

// AddCorruptReply counts one reply discarded for a bad checksum or
// frame.
func (e *Endpoint) AddCorruptReply() {
	if e != nil {
		e.corruptReplies.Add(1)
	}
}

// AddQueued counts one request handed to a server worker pool.
func (e *Endpoint) AddQueued() {
	if e != nil {
		e.queued.Add(1)
	}
}

// AddFlush counts one reply-writer flush carrying records reply
// records. A flush of two or more records is a coalesced write: those
// records shared one syscall instead of taking one each.
func (e *Endpoint) AddFlush(records int) {
	if e == nil || records <= 0 {
		return
	}
	e.flushes.Add(1)
	e.flushedRecords.Add(uint64(records))
	if records >= 2 {
		e.coalescedWrites.Add(1)
	}
}

// AddBatched counts one client batch flush carrying n calls in a
// single session frame.
func (e *Endpoint) AddBatched(n int) {
	if e == nil || n <= 0 {
		return
	}
	e.batchFlushes.Add(1)
	e.batchedCalls.Add(uint64(n))
}

// AddShardContention counts one contended reply-cache shard lock
// acquisition (the fast-path TryLock failed and the caller blocked).
func (e *Endpoint) AddShardContention() {
	if e != nil {
		e.shardContention.Add(1)
	}
}

// AddPollerWakeups counts n readiness events delivered to registered
// connections in one poller wakeup batch.
func (e *Endpoint) AddPollerWakeups(n int) {
	if e != nil && n > 0 {
		e.pollerWakeups.Add(uint64(n))
	}
}

// AddPollerConnRegistered counts one connection registered with a
// netpoll poller.
func (e *Endpoint) AddPollerConnRegistered() {
	if e != nil {
		e.pollerConnsReg.Add(1)
	}
}

// AddAcceptThrottled counts one accept delayed by the per-shard
// accept rate limiter.
func (e *Endpoint) AddAcceptThrottled() {
	if e != nil {
		e.acceptThrottled.Add(1)
	}
}

// AddPartialRead counts one readiness batch that ended mid-record,
// leaving a partial record parked in per-connection reassembly state.
func (e *Endpoint) AddPartialRead() {
	if e != nil {
		e.partialReads.Add(1)
	}
}

// AddHandlerPanic counts one handler panic recovered by a transport
// server that has no per-op counter row to bill it to.
func (e *Endpoint) AddHandlerPanic() {
	if e != nil {
		e.handlerPanics.Add(1)
	}
}

// AddShed counts one call the server rejected with an overload
// pushback before decoding it.
func (e *Endpoint) AddShed() {
	if e != nil {
		e.sheds.Add(1)
	}
}

// AddDrainReject counts one call rejected because the server is
// draining.
func (e *Endpoint) AddDrainReject() {
	if e != nil {
		e.drainRejects.Add(1)
	}
}

// AddPushback counts one pushback reply the client received.
func (e *Endpoint) AddPushback() {
	if e != nil {
		e.pushbacks.Add(1)
	}
}

// AddRetrySuppressed counts one retry the client's retry budget
// refused — the call failed fast instead of amplifying overload.
func (e *Endpoint) AddRetrySuppressed() {
	if e != nil {
		e.retrySuppressed.Add(1)
	}
}

// AddBreakerOpen counts one circuit-breaker trip (a transition into
// the open state).
func (e *Endpoint) AddBreakerOpen() {
	if e != nil {
		e.breakerOpens.Add(1)
	}
}

// AddBreakerFastFail counts one call the open breaker failed without
// an attempt.
func (e *Endpoint) AddBreakerFastFail() {
	if e != nil {
		e.breakerFastFails.Add(1)
	}
}

// MergedLatency accumulates every operation row's latency histogram
// into dst without allocating — the load-shedding controller polls it
// from the admission path, which must stay heap-free. dst is an
// accumulator: callers zero it (or keep it as a running total and
// diff snapshots) themselves.
func (e *Endpoint) MergedLatency(dst *HistogramSnapshot) {
	if e == nil || dst == nil {
		return
	}
	for i := range e.ops {
		h := &e.ops[i].lat
		for j := range h.buckets {
			dst.Buckets[j] += h.buckets[j].Load()
		}
		dst.Count += h.count.Load()
		dst.SumNs += h.sum.Load()
	}
}

// OpSnapshot is the point-in-time counter row of one operation.
type OpSnapshot struct {
	Name        string            `json:"name"`
	Calls       uint64            `json:"calls"`
	Errors      uint64            `json:"errors,omitempty"`
	Retries     uint64            `json:"retries,omitempty"`
	Replays     uint64            `json:"replays,omitempty"`
	Panics      uint64            `json:"panics,omitempty"`
	Timeouts    uint64            `json:"timeouts,omitempty"`
	BytesOut    uint64            `json:"bytes_out,omitempty"`
	BytesIn     uint64            `json:"bytes_in,omitempty"`
	TracedMsgs  uint64            `json:"traced_msgs,omitempty"`
	TracedBytes uint64            `json:"traced_bytes,omitempty"`
	Latency     HistogramSnapshot `json:"latency"`
}

// Snapshot is a point-in-time copy of an Endpoint, safe to retain,
// merge and serialize.
type Snapshot struct {
	Ops            []OpSnapshot  `json:"ops"`
	Encode         MeterSnapshot `json:"encode"`
	Decode         MeterSnapshot `json:"decode"`
	Copy           MeterSnapshot `json:"copy"`
	Alloc          MeterSnapshot `json:"alloc"`
	Wire           MeterSnapshot `json:"wire"`
	BadFrames      uint64        `json:"bad_frames,omitempty"`
	CorruptReplies uint64        `json:"corrupt_replies,omitempty"`

	Queued          uint64 `json:"queued,omitempty"`
	Flushes         uint64 `json:"flushes,omitempty"`
	FlushedRecords  uint64 `json:"flushed_records,omitempty"`
	CoalescedWrites uint64 `json:"coalesced_writes,omitempty"`
	BatchedCalls    uint64 `json:"batched_calls,omitempty"`
	BatchFlushes    uint64 `json:"batch_flushes,omitempty"`
	ShardContention uint64 `json:"shard_contention,omitempty"`
	HandlerPanics   uint64 `json:"handler_panics,omitempty"`

	PollerWakeups         uint64 `json:"poller_wakeups,omitempty"`
	PollerConnsRegistered uint64 `json:"poller_conns_registered,omitempty"`
	AcceptThrottled       uint64 `json:"accept_throttled,omitempty"`
	PartialReads          uint64 `json:"partial_reads,omitempty"`

	Sheds            uint64 `json:"sheds,omitempty"`
	DrainRejects     uint64 `json:"drain_rejects,omitempty"`
	Pushbacks        uint64 `json:"pushbacks,omitempty"`
	RetrySuppressed  uint64 `json:"retry_suppressed,omitempty"`
	BreakerOpens     uint64 `json:"breaker_opens,omitempty"`
	BreakerFastFails uint64 `json:"breaker_fast_fails,omitempty"`

	Trace []TraceEvent `json:"trace,omitempty"`
}

// Snapshot copies the endpoint's counters. On a nil endpoint it
// returns an empty, non-nil snapshot so callers can render it
// unconditionally.
func (e *Endpoint) Snapshot() *Snapshot {
	s := &Snapshot{}
	if e == nil {
		return s
	}
	s.Ops = make([]OpSnapshot, len(e.ops))
	for i := range e.ops {
		c := &e.ops[i]
		tr := c.traced.Snapshot()
		s.Ops[i] = OpSnapshot{
			Name:        e.names[i],
			Calls:       c.calls.Load(),
			Errors:      c.errors.Load(),
			Retries:     c.retries.Load(),
			Replays:     c.replays.Load(),
			Panics:      c.panics.Load(),
			Timeouts:    c.timeouts.Load(),
			BytesOut:    c.bytesOut.Load(),
			BytesIn:     c.bytesIn.Load(),
			TracedMsgs:  tr.Count,
			TracedBytes: tr.Bytes,
			Latency:     c.lat.Snapshot(),
		}
	}
	s.Encode = e.Encode.Snapshot()
	s.Decode = e.Decode.Snapshot()
	s.Copy = e.Copy.Snapshot()
	s.Alloc = e.Alloc.Snapshot()
	s.Wire = e.Wire.Snapshot()
	s.BadFrames = e.badFrames.Load()
	s.CorruptReplies = e.corruptReplies.Load()
	s.Queued = e.queued.Load()
	s.Flushes = e.flushes.Load()
	s.FlushedRecords = e.flushedRecords.Load()
	s.CoalescedWrites = e.coalescedWrites.Load()
	s.BatchedCalls = e.batchedCalls.Load()
	s.BatchFlushes = e.batchFlushes.Load()
	s.ShardContention = e.shardContention.Load()
	s.HandlerPanics = e.handlerPanics.Load()
	s.PollerWakeups = e.pollerWakeups.Load()
	s.PollerConnsRegistered = e.pollerConnsReg.Load()
	s.AcceptThrottled = e.acceptThrottled.Load()
	s.PartialReads = e.partialReads.Load()
	s.Sheds = e.sheds.Load()
	s.DrainRejects = e.drainRejects.Load()
	s.Pushbacks = e.pushbacks.Load()
	s.RetrySuppressed = e.retrySuppressed.Load()
	s.BreakerOpens = e.breakerOpens.Load()
	s.BreakerFastFails = e.breakerFastFails.Load()
	if tr := e.tracer.Load(); tr != nil {
		s.Trace = tr.Events()
	}
	return s
}

// Merge folds o into s (op rows matched by name, appended when new;
// meters and histograms added; traces concatenated by time).
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	idx := make(map[string]int, len(s.Ops))
	for i := range s.Ops {
		idx[s.Ops[i].Name] = i
	}
	for _, op := range o.Ops {
		i, ok := idx[op.Name]
		if !ok {
			s.Ops = append(s.Ops, op)
			continue
		}
		d := &s.Ops[i]
		d.Calls += op.Calls
		d.Errors += op.Errors
		d.Retries += op.Retries
		d.Replays += op.Replays
		d.Panics += op.Panics
		d.Timeouts += op.Timeouts
		d.BytesOut += op.BytesOut
		d.BytesIn += op.BytesIn
		d.TracedMsgs += op.TracedMsgs
		d.TracedBytes += op.TracedBytes
		d.Latency.Merge(&op.Latency)
	}
	mergeMeter := func(d *MeterSnapshot, s MeterSnapshot) {
		d.Count += s.Count
		d.Bytes += s.Bytes
	}
	mergeMeter(&s.Encode, o.Encode)
	mergeMeter(&s.Decode, o.Decode)
	mergeMeter(&s.Copy, o.Copy)
	mergeMeter(&s.Alloc, o.Alloc)
	mergeMeter(&s.Wire, o.Wire)
	s.BadFrames += o.BadFrames
	s.CorruptReplies += o.CorruptReplies
	s.Queued += o.Queued
	s.Flushes += o.Flushes
	s.FlushedRecords += o.FlushedRecords
	s.CoalescedWrites += o.CoalescedWrites
	s.BatchedCalls += o.BatchedCalls
	s.BatchFlushes += o.BatchFlushes
	s.ShardContention += o.ShardContention
	s.HandlerPanics += o.HandlerPanics
	s.PollerWakeups += o.PollerWakeups
	s.PollerConnsRegistered += o.PollerConnsRegistered
	s.AcceptThrottled += o.AcceptThrottled
	s.PartialReads += o.PartialReads
	s.Sheds += o.Sheds
	s.DrainRejects += o.DrainRejects
	s.Pushbacks += o.Pushbacks
	s.RetrySuppressed += o.RetrySuppressed
	s.BreakerOpens += o.BreakerOpens
	s.BreakerFastFails += o.BreakerFastFails
	s.Trace = append(s.Trace, o.Trace...)
	sort.SliceStable(s.Trace, func(i, j int) bool { return s.Trace[i].At < s.Trace[j].At })
}

// Text renders the snapshot as expvar-style "key value" lines, one
// metric per line, stable order.
func (s *Snapshot) Text() string {
	var b strings.Builder
	line := func(key string, v uint64) {
		if v != 0 {
			fmt.Fprintf(&b, "%s %d\n", key, v)
		}
	}
	for _, op := range s.Ops {
		k := "op." + op.Name
		fmt.Fprintf(&b, "%s.calls %d\n", k, op.Calls)
		line(k+".errors", op.Errors)
		line(k+".retries", op.Retries)
		line(k+".replays", op.Replays)
		line(k+".panics", op.Panics)
		line(k+".timeouts", op.Timeouts)
		line(k+".bytes_out", op.BytesOut)
		line(k+".bytes_in", op.BytesIn)
		line(k+".traced_msgs", op.TracedMsgs)
		line(k+".traced_bytes", op.TracedBytes)
		if op.Latency.Count > 0 {
			fmt.Fprintf(&b, "%s.latency.p50_ns %d\n", k, op.Latency.Quantile(0.50).Nanoseconds())
			fmt.Fprintf(&b, "%s.latency.p99_ns %d\n", k, op.Latency.Quantile(0.99).Nanoseconds())
			fmt.Fprintf(&b, "%s.latency.mean_ns %d\n", k, op.Latency.Mean().Nanoseconds())
		}
	}
	meter := func(key string, m MeterSnapshot) {
		line(key+".count", m.Count)
		line(key+".bytes", m.Bytes)
	}
	meter("codec.encode", s.Encode)
	meter("codec.decode", s.Decode)
	meter("codec.copy", s.Copy)
	meter("codec.alloc", s.Alloc)
	meter("wire", s.Wire)
	line("session.bad_frames", s.BadFrames)
	line("session.corrupt_replies", s.CorruptReplies)
	line("server.queued", s.Queued)
	line("server.flushes", s.Flushes)
	line("server.flushed_records", s.FlushedRecords)
	line("server.coalesced_writes", s.CoalescedWrites)
	line("server.shard_contention", s.ShardContention)
	line("server.handler_panics", s.HandlerPanics)
	line("server.poller_wakeups", s.PollerWakeups)
	line("server.poller_conns_registered", s.PollerConnsRegistered)
	line("server.accept_throttled", s.AcceptThrottled)
	line("server.partial_reads", s.PartialReads)
	line("server.sheds", s.Sheds)
	line("server.drain_rejects", s.DrainRejects)
	line("client.batched_calls", s.BatchedCalls)
	line("client.batch_flushes", s.BatchFlushes)
	line("client.pushbacks", s.Pushbacks)
	line("client.retry_suppressed", s.RetrySuppressed)
	line("client.breaker_opens", s.BreakerOpens)
	line("client.breaker_fast_fails", s.BreakerFastFails)
	if len(s.Trace) > 0 {
		fmt.Fprintf(&b, "trace.events %d\n", len(s.Trace))
		for _, ev := range s.Trace {
			fmt.Fprintf(&b, "trace id=%d op=%d stage=%s at_ns=%d\n",
				ev.ID, ev.Op, ev.Stage, ev.At.Nanoseconds())
		}
	}
	return b.String()
}
