package stats

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// A Stage names one point on the RPC call path. Stages are recorded
// client- and server-side under the same trace id, which the session
// layer carries in the upper bits of the existing frame flags word —
// the base wire format does not change.
type Stage uint8

const (
	// StageBind marks plan compilation / endpoint setup.
	StageBind Stage = iota + 1
	// StageEncode marks the request fully marshaled.
	StageEncode
	// StageSend marks the request handed to the transport.
	StageSend
	// StageRetry marks a retransmitted attempt.
	StageRetry
	// StageServerDecode marks the request unmarshaled server-side.
	StageServerDecode
	// StageDispatch marks the handler invoked.
	StageDispatch
	// StageServerReply marks the reply marshaled server-side.
	StageServerReply
	// StageReply marks the reply decoded back on the client.
	StageReply

	stageMax = StageReply
)

func (s Stage) String() string {
	switch s {
	case StageBind:
		return "bind"
	case StageEncode:
		return "encode"
	case StageSend:
		return "send"
	case StageRetry:
		return "retry"
	case StageServerDecode:
		return "server-decode"
	case StageDispatch:
		return "dispatch"
	case StageServerReply:
		return "server-reply"
	case StageReply:
		return "reply"
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// A TraceEvent is one recorded stage crossing. At is the offset from
// tracer creation, not wall time, so events order correctly across
// clock adjustments.
type TraceEvent struct {
	ID    uint32        `json:"id"`
	Op    uint16        `json:"op"`
	Stage Stage         `json:"stage"`
	At    time.Duration `json:"at_ns"`
}

// A Tracer is a fixed-capacity ring of trace events. Recording is
// wait-free: a slot index is claimed with one atomic add and the
// event stored with two atomic writes. Under contention a reader may
// observe a slot mid-update (meta from one event, timestamp from
// another); traces are diagnostics, so that skew is accepted in
// exchange for a zero-lock hot path.
type Tracer struct {
	base  time.Time
	mask  uint64
	pos   atomic.Uint64
	slots []traceSlot
}

type traceSlot struct {
	meta atomic.Uint64 // id(32) | op(16) | stage(8) | valid(1)
	at   atomic.Uint64 // nanoseconds since base
}

const slotValid = 1 << 63

// NewTracer creates a tracer holding the most recent capacity events
// (rounded up to a power of two, minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	n := 1 << bits.Len(uint(capacity-1))
	return &Tracer{
		base:  time.Now(),
		mask:  uint64(n - 1),
		slots: make([]traceSlot, n),
	}
}

// Record appends one event, overwriting the oldest when full.
func (t *Tracer) Record(id uint32, op int, s Stage) {
	if t == nil {
		return
	}
	i := (t.pos.Add(1) - 1) & t.mask
	sl := &t.slots[i]
	sl.at.Store(uint64(time.Since(t.base)))
	sl.meta.Store(slotValid | uint64(id)<<24 | uint64(uint16(op))<<8 | uint64(s))
}

// Events returns the buffered events ordered by time.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	out := make([]TraceEvent, 0, len(t.slots))
	for i := range t.slots {
		m := t.slots[i].meta.Load()
		if m&slotValid == 0 {
			continue
		}
		out = append(out, TraceEvent{
			ID:    uint32(m >> 24 & 0xFFFFFFFF),
			Op:    uint16(m >> 8),
			Stage: Stage(m),
			At:    time.Duration(t.slots[i].at.Load()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// EnableTracing installs a trace ring of the given capacity on the
// endpoint (idempotent: an existing tracer is kept). Tracing off —
// the default — costs one atomic pointer load per would-be event.
func (e *Endpoint) EnableTracing(capacity int) {
	if e == nil || e.tracer.Load() != nil {
		return
	}
	e.tracer.CompareAndSwap(nil, NewTracer(capacity))
}

// Tracing reports whether a trace ring is installed.
func (e *Endpoint) Tracing() bool { return e != nil && e.tracer.Load() != nil }

// NextTraceID returns a fresh non-zero 16-bit trace id, or 0 when
// tracing is disabled — 0 is the "untraced" id the session layer
// propagates for free.
func (e *Endpoint) NextTraceID() uint32 {
	if e == nil || e.tracer.Load() == nil {
		return 0
	}
	for {
		if id := e.lastID.Add(1) & 0xFFFF; id != 0 {
			return id
		}
	}
}

// Trace records one event when tracing is enabled.
func (e *Endpoint) Trace(id uint32, op int, s Stage) {
	if e == nil {
		return
	}
	e.tracer.Load().Record(id, op, s)
}

// TraceEvents snapshots the trace ring, oldest first.
func (e *Endpoint) TraceEvents() []TraceEvent {
	if e == nil {
		return nil
	}
	return e.tracer.Load().Events()
}

// traceMagic guards the trace binary form; low byte is the version.
const traceMagic = uint32(0x46585431) // "FXT1"

// maxTraceEvents bounds decoded traces; it is far above any ring
// capacity in use and exists to keep hostile inputs cheap.
const maxTraceEvents = 1 << 20

// MarshalTrace encodes events in a compact varint form that
// round-trips through UnmarshalTrace.
func MarshalTrace(events []TraceEvent) ([]byte, error) {
	if len(events) > maxTraceEvents {
		return nil, fmt.Errorf("stats: trace: %d events exceeds limit %d", len(events), maxTraceEvents)
	}
	out := make([]byte, 4, 4+10*len(events))
	binary.BigEndian.PutUint32(out, traceMagic)
	out = binary.AppendUvarint(out, uint64(len(events)))
	for _, ev := range events {
		if ev.Stage == 0 || ev.Stage > stageMax {
			return nil, fmt.Errorf("stats: trace: invalid stage %d", ev.Stage)
		}
		if ev.At < 0 {
			return nil, fmt.Errorf("stats: trace: negative timestamp %d", ev.At)
		}
		out = binary.AppendUvarint(out, uint64(ev.ID))
		out = binary.AppendUvarint(out, uint64(ev.Op))
		out = append(out, byte(ev.Stage))
		out = binary.AppendUvarint(out, uint64(ev.At))
	}
	return out, nil
}

// UnmarshalTrace decodes a trace produced by MarshalTrace, rejecting
// truncated input, out-of-range fields and trailing garbage.
func UnmarshalTrace(data []byte) ([]TraceEvent, error) {
	if len(data) < 4 || binary.BigEndian.Uint32(data) != traceMagic {
		return nil, fmt.Errorf("stats: trace: bad magic")
	}
	data = data[4:]
	n, sz := binary.Uvarint(data)
	if sz <= 0 || n > maxTraceEvents {
		return nil, fmt.Errorf("stats: trace: bad event count")
	}
	data = data[sz:]
	// Each event is at least 4 bytes; reject counts the input cannot
	// hold before allocating for them.
	if n*4 > uint64(len(data)) {
		return nil, fmt.Errorf("stats: trace: truncated (%d events in %d bytes)", n, len(data))
	}
	events := make([]TraceEvent, 0, n)
	uv := func() (uint64, bool) {
		v, s := binary.Uvarint(data)
		if s <= 0 {
			return 0, false
		}
		data = data[s:]
		return v, true
	}
	for i := uint64(0); i < n; i++ {
		id, ok := uv()
		if !ok || id > 0xFFFFFFFF {
			return nil, fmt.Errorf("stats: trace: bad id")
		}
		op, ok := uv()
		if !ok || op > 0xFFFF {
			return nil, fmt.Errorf("stats: trace: bad op")
		}
		if len(data) == 0 {
			return nil, fmt.Errorf("stats: trace: truncated")
		}
		stage := Stage(data[0])
		data = data[1:]
		if stage == 0 || stage > stageMax {
			return nil, fmt.Errorf("stats: trace: invalid stage %d", stage)
		}
		at, ok := uv()
		if !ok || at > uint64(1)<<62 {
			return nil, fmt.Errorf("stats: trace: bad timestamp")
		}
		events = append(events, TraceEvent{
			ID: uint32(id), Op: uint16(op), Stage: stage, At: time.Duration(at),
		})
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("stats: trace: %d trailing bytes", len(data))
	}
	return events, nil
}
