package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// Every method must be a no-op on a nil endpoint — that is what makes
// threading the meters through hot paths free when stats are off.
func TestNilEndpointIsSafe(t *testing.T) {
	var e *Endpoint
	if e.Enabled() {
		t.Fatal("nil endpoint reports enabled")
	}
	if got := e.OpIndex("echo"); got != -1 {
		t.Fatalf("OpIndex on nil = %d, want -1", got)
	}
	e.RecordCall(0, time.Millisecond, 1, 2, OK)
	e.AddBytes(0, 1, 2)
	e.AddRetry(0)
	e.AddReplay(0)
	e.AddTraced(0, 9)
	e.AddBadFrame()
	e.AddCorruptReply()
	e.EnableTracing(64)
	if e.Tracing() {
		t.Fatal("nil endpoint reports tracing")
	}
	if id := e.NextTraceID(); id != 0 {
		t.Fatalf("NextTraceID on nil = %d, want 0", id)
	}
	e.Trace(1, 0, StageEncode)
	if evs := e.TraceEvents(); evs != nil {
		t.Fatalf("TraceEvents on nil = %v, want nil", evs)
	}
	s := e.Snapshot()
	if s == nil {
		t.Fatal("Snapshot on nil endpoint is nil")
	}
	if len(s.Ops) != 0 || s.Wire.Count != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
	var m *Meter
	m.Add(5)
	m.AddN(2, 10)
	if ms := m.Snapshot(); ms != (MeterSnapshot{}) {
		t.Fatalf("nil meter snapshot = %+v", ms)
	}
}

func TestRecordCallOutcomes(t *testing.T) {
	e := New([]string{"echo", "write"})
	e.RecordCall(0, time.Millisecond, 10, 20, OK)
	e.RecordCall(0, time.Millisecond, 0, 0, Failed)
	e.RecordCall(0, 2*time.Second, 0, 0, TimedOut)
	e.RecordCall(1, time.Microsecond, 0, 0, Panicked)
	e.RecordCall(-1, time.Second, 0, 0, OK) // out of range: ignored
	e.RecordCall(7, time.Second, 0, 0, OK)  // out of range: ignored
	e.AddRetry(0)
	e.AddReplay(1)
	e.AddTraced(0, 64)

	s := e.Snapshot()
	echo := s.Ops[0]
	if echo.Calls != 3 || echo.Errors != 2 || echo.Timeouts != 1 {
		t.Fatalf("echo counters: %+v", echo)
	}
	if echo.BytesOut != 10 || echo.BytesIn != 20 {
		t.Fatalf("echo bytes: %+v", echo)
	}
	if echo.Retries != 1 || echo.TracedMsgs != 1 || echo.TracedBytes != 64 {
		t.Fatalf("echo retry/traced: %+v", echo)
	}
	if echo.Latency.Count != 3 {
		t.Fatalf("echo latency count = %d", echo.Latency.Count)
	}
	wr := s.Ops[1]
	if wr.Calls != 1 || wr.Panics != 1 || wr.Errors != 1 || wr.Replays != 1 {
		t.Fatalf("write counters: %+v", wr)
	}
	if i := e.OpIndex("write"); i != 1 {
		t.Fatalf("OpIndex(write) = %d", i)
	}
	if i := e.OpIndex("nosuch"); i != -1 {
		t.Fatalf("OpIndex(nosuch) = %d", i)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(1)
	h.Record(100)
	h.Record(time.Hour * 100) // far past the last bucket boundary
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[7] != 1 || s.Buckets[HistBuckets-1] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	// The rank-1 observation (1ns) is in bucket 1, upper bound 1ns.
	if q := s.Quantile(0.5); q != 1 {
		t.Fatalf("q50 = %v", q)
	}
	// The 100ns observation lands in bucket 7 ([64,128)); its quantile
	// upper bound is 127ns.
	if q := s.Quantile(0.75); q != 127 {
		t.Fatalf("q75 = %v", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	var nilH *Histogram
	nilH.Record(time.Second) // must not panic
	if nilH.Snapshot().Count != 0 {
		t.Fatal("nil histogram recorded")
	}
}

func TestHistogramMergeMatchesCombinedRecording(t *testing.T) {
	var a, b, both Histogram
	durs := []time.Duration{0, 5, 300, time.Millisecond, time.Second, 17 * time.Microsecond}
	for i, d := range durs {
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		both.Record(d)
	}
	merged := a.Snapshot()
	bs := b.Snapshot()
	merged.Merge(&bs)
	if merged != both.Snapshot() {
		t.Fatalf("merge mismatch:\n  merged %+v\n  direct %+v", merged, both.Snapshot())
	}
}

func TestHistogramBinaryRoundTrip(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramSnapshot
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatal("round trip changed the snapshot")
	}
	// Corrupt a bucket: count no longer matches the bucket sum.
	data[len(data)-1] ^= 1
	if err := back.UnmarshalBinary(data); err == nil {
		t.Fatal("inconsistent histogram accepted")
	}
	if err := back.UnmarshalBinary(data[:10]); err == nil {
		t.Fatal("truncated histogram accepted")
	}
	data[0] ^= 0xFF
	if err := back.UnmarshalBinary(data); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestConcurrentRecording(t *testing.T) {
	e := New([]string{"echo"})
	e.EnableTracing(128)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := e.NextTraceID()
				e.Trace(id, 0, StageEncode)
				e.RecordCall(0, time.Duration(i), 1, 1, OK)
				e.Wire.Add(10)
			}
		}()
	}
	wg.Wait()
	s := e.Snapshot()
	if s.Ops[0].Calls != workers*per {
		t.Fatalf("calls = %d, want %d", s.Ops[0].Calls, workers*per)
	}
	if s.Ops[0].Latency.Count != workers*per {
		t.Fatalf("latency count = %d", s.Ops[0].Latency.Count)
	}
	if s.Wire.Count != workers*per || s.Wire.Bytes != workers*per*10 {
		t.Fatalf("wire = %+v", s.Wire)
	}
	if len(s.Trace) != 128 {
		t.Fatalf("trace ring kept %d events, want 128", len(s.Trace))
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.Record(uint32(i+1), i%3, StageSend)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("got %d events, want 16", len(evs))
	}
	// Only the most recent 16 ids survive.
	for _, ev := range evs {
		if ev.ID <= 24 {
			t.Fatalf("stale event survived: %+v", ev)
		}
	}
}

func TestTraceIDsAreNonZeroAndBounded(t *testing.T) {
	e := New([]string{"echo"})
	if id := e.NextTraceID(); id != 0 {
		t.Fatalf("id before tracing = %d, want 0", id)
	}
	e.EnableTracing(16)
	seen := map[uint32]bool{}
	for i := 0; i < 1<<17; i++ {
		id := e.NextTraceID()
		if id == 0 || id > 0xFFFF {
			t.Fatalf("id %d out of the 16-bit flag field", id)
		}
		seen[id] = true
	}
	if len(seen) != 0xFFFF {
		t.Fatalf("id space covered %d values, want %d", len(seen), 0xFFFF)
	}
}

func TestTraceBinaryRoundTrip(t *testing.T) {
	events := []TraceEvent{
		{ID: 1, Op: 0, Stage: StageBind, At: 0},
		{ID: 1, Op: 0, Stage: StageEncode, At: 1500},
		{ID: 2, Op: 65535, Stage: StageReply, At: 1 << 40},
	}
	data, err := MarshalTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("got %d events", len(back))
	}
	for i := range back {
		if back[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
	if _, err := UnmarshalTrace(append(data, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := UnmarshalTrace(data[:len(data)-1]); err == nil {
		t.Fatal("truncated trace accepted")
	}
	if _, err := MarshalTrace([]TraceEvent{{Stage: 99}}); err == nil {
		t.Fatal("invalid stage marshaled")
	}
}

func TestSnapshotMergeAndText(t *testing.T) {
	a := New([]string{"echo"})
	b := New([]string{"echo", "write"})
	a.RecordCall(0, time.Millisecond, 5, 5, OK)
	a.Encode.Add(5)
	a.AddBadFrame()
	b.RecordCall(0, time.Millisecond, 0, 0, Failed)
	b.RecordCall(1, time.Second, 0, 0, OK)
	b.Wire.Add(100)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if len(s.Ops) != 2 {
		t.Fatalf("merged ops = %d", len(s.Ops))
	}
	if s.Ops[0].Calls != 2 || s.Ops[0].Errors != 1 {
		t.Fatalf("merged echo: %+v", s.Ops[0])
	}
	if s.Wire.Count != 1 || s.BadFrames != 1 {
		t.Fatalf("merged meters: wire %+v badFrames %d", s.Wire, s.BadFrames)
	}

	text := s.Text()
	for _, want := range []string{
		"op.echo.calls 2",
		"op.echo.errors 1",
		"op.write.calls 1",
		"op.echo.latency.p50_ns",
		"codec.encode.count 1",
		"wire.bytes 100",
		"session.bad_frames 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Text() missing %q:\n%s", want, text)
		}
	}
}

func TestStageStrings(t *testing.T) {
	for s := StageBind; s <= stageMax; s++ {
		if strings.HasPrefix(s.String(), "stage(") {
			t.Fatalf("stage %d has no name", s)
		}
	}
	if Stage(99).String() != "stage(99)" {
		t.Fatalf("unknown stage renders %q", Stage(99).String())
	}
}
