package codegen

import (
	"fmt"
	"strings"

	"flexrpc/internal/ir"
	"flexrpc/internal/pres"
)

// emitClient generates the typed client stub.
func (g *gen) emitClient() error {
	iface := g.compiled.Iface
	cname := goName(iface.Name) + "Client"
	g.pf("// %s is the generated client stub for interface %s.\n", cname, iface.Name)
	g.pf("// It works over any transport that provides a flexrpc.Invoker —\n")
	g.pf("// an in-process connection, simulated Mach IPC, or Sun RPC.\ntype %s struct {\n\tinv flexrpc.Invoker\n}\n\n", cname)
	g.pf("// New%s wraps a bound transport connection.\nfunc New%s(inv flexrpc.Invoker) *%s {\n\treturn &%s{inv: inv}\n}\n\n",
		cname, cname, cname, cname)

	for i := range iface.Ops {
		if err := g.emitClientMethod(cname, &iface.Ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// attrsFor returns the presentation attributes of op/param.
func (g *gen) attrsFor(op *ir.Operation, param string) *pres.ParamAttrs {
	if p := g.pres.Op(op.Name); p != nil {
		if a, ok := p.Params[param]; ok {
			return a
		}
	}
	return &pres.ParamAttrs{}
}

// attrComment renders non-default attributes for doc comments.
func attrComment(a *pres.ParamAttrs) string {
	var parts []string
	if a.Trashable {
		parts = append(parts, "trashable")
	}
	if a.Preserved {
		parts = append(parts, "preserved")
	}
	if a.Special {
		parts = append(parts, "special")
	}
	if a.NonUnique {
		parts = append(parts, "nonunique")
	}
	if a.LengthIs != "" {
		parts = append(parts, "length_is("+a.LengthIs+")")
	}
	if a.Dealloc == pres.DeallocNever {
		parts = append(parts, "dealloc(never)")
	}
	if a.Alloc == pres.AllocCaller {
		parts = append(parts, "alloc(caller)")
	}
	if a.Alloc == pres.AllocCallee {
		parts = append(parts, "alloc(callee)")
	}
	if len(parts) == 0 {
		return ""
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func isBufferKind(t *ir.Type) bool {
	return t.Kind == ir.Bytes || t.Kind == ir.FixedBytes
}

func (g *gen) emitClientMethod(cname string, op *ir.Operation) error {
	mname := goName(op.Name)
	retAttrs := g.attrsFor(op, pres.ResultParam)
	retCallerAlloc := op.HasResult() && isBufferKind(op.Result) && retAttrs.Alloc == pres.AllocCaller

	// Signature: in/inout params, then caller-alloc buffers, then
	// out/inout returns plus the result and error.
	var params, rets, zeros []string
	for _, p := range op.Params {
		gt, err := g.goType(p.Type)
		if err != nil {
			return err
		}
		if p.Dir == ir.In || p.Dir == ir.InOut {
			params = append(params, lowerFirst(goName(p.Name))+" "+gt)
		}
		if p.Dir == ir.Out || p.Dir == ir.InOut {
			a := g.attrsFor(op, p.Name)
			if isBufferKind(p.Type) && a.Alloc == pres.AllocCaller {
				params = append(params, lowerFirst(goName(p.Name))+"Buf []byte")
			}
			rets = append(rets, gt)
			zeros = append(zeros, g.zeroExpr(p.Type))
		}
	}
	if retCallerAlloc {
		params = append(params, "resultBuf []byte")
	}
	if op.HasResult() {
		gt, err := g.goType(op.Result)
		if err != nil {
			return err
		}
		rets = append(rets, gt)
		zeros = append(zeros, g.zeroExpr(op.Result))
	}
	rets = append(rets, "error")

	// Doc comment, including presentation annotations.
	g.pf("// %s invokes the %q operation.\n", mname, op.Name)
	for _, p := range op.Params {
		if c := attrComment(g.attrsFor(op, p.Name)); c != "" {
			g.pf("// Parameter %s carries presentation attributes %s.\n", p.Name, c)
		}
	}
	if c := attrComment(retAttrs); op.HasResult() && c != "" {
		g.pf("// The result carries presentation attributes %s.\n", c)
	}
	if op.Oneway {
		g.pf("// The operation is oneway: no reply is awaited.\n")
	}
	retSig := strings.Join(rets, ", ")
	if len(rets) > 1 {
		retSig = "(" + retSig + ")"
	}
	g.pf("func (c *%s) %s(%s) %s {\n", cname, mname, strings.Join(params, ", "), retSig)

	// Build the argument vector.
	g.pf("\targs := make([]flexrpc.Value, %d)\n", len(op.Params))
	for i, p := range op.Params {
		if p.Dir == ir.Out {
			continue
		}
		g.pf("\targs[%d] = %s\n", i, g.convToValue(lowerFirst(goName(p.Name)), p.Type))
	}
	// Out buffers.
	hasOutBufs := false
	for _, p := range op.Params {
		if p.Dir != ir.In && isBufferKind(p.Type) && g.attrsFor(op, p.Name).Alloc == pres.AllocCaller {
			hasOutBufs = true
		}
	}
	if hasOutBufs {
		g.pf("\toutBufs := make([][]byte, %d)\n", len(op.Params))
		for i, p := range op.Params {
			if p.Dir != ir.In && isBufferKind(p.Type) && g.attrsFor(op, p.Name).Alloc == pres.AllocCaller {
				g.pf("\toutBufs[%d] = %sBuf\n", i, lowerFirst(goName(p.Name)))
			}
		}
	} else {
		g.pf("\tvar outBufs [][]byte\n")
	}
	if retCallerAlloc {
		g.pf("\tresultLanding := resultBuf\n")
	} else {
		g.pf("\tvar resultLanding []byte\n")
	}

	zeroRets := func() string {
		zs := append(append([]string(nil), zeros...), "err")
		return strings.Join(zs, ", ")
	}

	g.pf("\touts, ret, err := c.inv.Invoke(%q, args, outBufs, resultLanding)\n", op.Name)
	g.pf("\tif err != nil {\n\t\treturn %s\n\t}\n", zeroRets())
	g.pf("\t_, _ = outs, ret\n")

	// Unpack returns.
	var retExprs []string
	for i, p := range op.Params {
		if p.Dir == ir.In {
			continue
		}
		conv, errCase := g.convFromValue(fmt.Sprintf("outs[%d]", i), p.Type)
		v := fmt.Sprintf("out%d", i)
		if errCase {
			g.pf("\t%s, err := %s\n\tif err != nil {\n\t\treturn %s\n\t}\n", v, conv, zeroRets())
		} else {
			g.pf("\t%s := %s\n", v, conv)
		}
		retExprs = append(retExprs, v)
	}
	if op.HasResult() {
		conv, errCase := g.convFromValue("ret", op.Result)
		if errCase {
			g.pf("\tres, err := %s\n\tif err != nil {\n\t\treturn %s\n\t}\n", conv, zeroRets())
		} else {
			g.pf("\tres := %s\n", conv)
		}
		retExprs = append(retExprs, "res")
	}
	retExprs = append(retExprs, "nil")
	g.pf("\treturn %s\n}\n\n", strings.Join(retExprs, ", "))
	return nil
}

// zeroExpr returns the zero-value literal for the Go mapping of t.
func (g *gen) zeroExpr(t *ir.Type) string {
	switch t.Kind {
	case ir.Bool:
		return "false"
	case ir.String:
		return `""`
	case ir.Struct:
		return goName(t.Name) + "{}"
	case ir.Bytes, ir.FixedBytes, ir.Seq, ir.Array:
		return "nil"
	default: // numerics, enums, port names
		return "0"
	}
}
