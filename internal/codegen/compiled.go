package codegen

import (
	"fmt"
	"strings"

	"flexrpc/internal/ir"
	"flexrpc/internal/pres"
)

// The compiled-stub emitter: instead of boxing arguments into the
// interpreted marshal engine, it emits straight-line Put/Get calls
// per operation — what the paper's (and later Flick's) generated C
// stubs were. Compiled stubs close the gap between generated and
// hand-written marshal code that interpretation leaves open; the
// BenchmarkMarshalModes benchmark quantifies it.
//
// An operation is compiled when its types are statically mappable
// and no parameter is [special] (special marshaling is inherently a
// runtime callback). Ops that don't qualify are listed in a comment
// and remain available through the interpreted client.

// compilable reports whether the op can get a compiled method.
func (g *gen) compilable(op *ir.Operation) bool {
	if opp := g.pres.Op(op.Name); opp != nil {
		for _, a := range opp.Params {
			if a.Special {
				return false
			}
		}
	}
	check := func(t *ir.Type) bool {
		switch t.Kind {
		case ir.Void, ir.Bool, ir.Int32, ir.Uint32, ir.Int64, ir.Uint64,
			ir.Float32, ir.Float64, ir.String, ir.Bytes, ir.FixedBytes,
			ir.Enum, ir.Port:
			return true
		case ir.Seq, ir.Array:
			return isScalar(t.Elem) || t.Elem.Kind == ir.Struct
		case ir.Struct:
			return true
		}
		return false
	}
	var deep func(t *ir.Type) bool
	deep = func(t *ir.Type) bool {
		if !check(t) {
			return false
		}
		switch t.Kind {
		case ir.Seq, ir.Array:
			return deep(t.Elem)
		case ir.Struct:
			for _, f := range t.Fields {
				if !deep(f.Type) {
					return false
				}
			}
		}
		return true
	}
	for _, p := range op.Params {
		if !deep(p.Type) {
			return false
		}
	}
	if op.HasResult() && !deep(op.Result) {
		return false
	}
	return true
}

// emitCompiledClient generates the direct-marshal client.
func (g *gen) emitCompiledClient() error {
	iface := g.compiled.Iface
	var ops []*ir.Operation
	var skipped []string
	for i := range iface.Ops {
		op := &iface.Ops[i]
		if g.compilable(op) {
			ops = append(ops, op)
		} else {
			skipped = append(skipped, op.Name)
		}
	}
	if len(ops) == 0 {
		return nil
	}
	cname := goName(iface.Name) + "CompiledClient"
	g.pf("// %s is the compiled-stub client: marshal code is\n", cname)
	g.pf("// generated inline per operation instead of interpreted, matching\n")
	g.pf("// hand-written stub performance. It binds directly to a transport\n")
	g.pf("// connection (machipc, fbufrpc, suntcp).\n")
	if len(skipped) > 0 {
		g.pf("// Not compiled (available via the interpreted client): %s.\n", strings.Join(skipped, ", "))
	}
	g.pf("type %s struct {\n\tconn  flexrpc.Conn\n\tcodec flexrpc.Codec\n\tmu    sync.Mutex\n\tenc   flexrpc.Encoder\n\treplyBuf []byte\n}\n\n", cname)
	g.pf("// New%s binds compiled stubs to a transport connection.\n", cname)
	g.pf("func New%s(conn flexrpc.Conn, codec flexrpc.Codec) *%s {\n", cname, cname)
	g.pf("\treturn &%s{conn: conn, codec: codec, enc: codec.NewEncoder()}\n}\n\n", cname)

	for _, op := range ops {
		if err := g.emitCompiledMethod(cname, op); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) emitCompiledMethod(cname string, op *ir.Operation) error {
	idx := -1
	for i := range g.compiled.Iface.Ops {
		if g.compiled.Iface.Ops[i].Name == op.Name {
			idx = i
		}
	}
	mname := goName(op.Name)
	retAttrs := g.attrsFor(op, pres.ResultParam)
	retCallerAlloc := op.HasResult() && isBufferKind(op.Result) && retAttrs.Alloc == pres.AllocCaller

	var params, rets, zeros []string
	for _, p := range op.Params {
		gt, err := g.goType(p.Type)
		if err != nil {
			return err
		}
		if p.Dir == ir.In || p.Dir == ir.InOut {
			params = append(params, lowerFirst(goName(p.Name))+" "+gt)
		}
		if p.Dir == ir.Out || p.Dir == ir.InOut {
			a := g.attrsFor(op, p.Name)
			if isBufferKind(p.Type) && a.Alloc == pres.AllocCaller {
				params = append(params, lowerFirst(goName(p.Name))+"Buf []byte")
			}
			rets = append(rets, gt)
			zeros = append(zeros, g.zeroExpr(p.Type))
		}
	}
	if retCallerAlloc {
		params = append(params, "resultBuf []byte")
	}
	if op.HasResult() {
		gt, err := g.goType(op.Result)
		if err != nil {
			return err
		}
		rets = append(rets, gt)
		zeros = append(zeros, g.zeroExpr(op.Result))
	}
	rets = append(rets, "error")
	retSig := strings.Join(rets, ", ")
	if len(rets) > 1 {
		retSig = "(" + retSig + ")"
	}
	zeroRets := strings.Join(append(append([]string(nil), zeros...), "err"), ", ")

	g.pf("// %s invokes %q through compiled marshal code.\n", mname, op.Name)
	g.pf("func (c *%s) %s(%s) %s {\n", cname, mname, strings.Join(params, ", "), retSig)
	g.pf("\tc.mu.Lock()\n\tdefer c.mu.Unlock()\n")
	g.pf("\tvar err error\n\t_ = err\n")
	g.pf("\tc.enc.Reset()\n")
	// Encode in/inout parameters inline.
	for _, p := range op.Params {
		if p.Dir == ir.Out {
			continue
		}
		g.emitEncode("c.enc", lowerFirst(goName(p.Name)), p.Type, "\t", 0)
	}
	if op.Oneway {
		g.pf("\t_, _, err = flexrpc.RawCall(c.conn, c.codec, %d, c.enc.Bytes(), c.replyBuf)\n", idx)
		g.pf("\treturn err\n}\n\n")
		return nil
	}
	hasDecodes := op.HasResult()
	for _, p := range op.Params {
		if p.Dir != ir.In {
			hasDecodes = true
		}
	}
	decVar := "dec"
	if !hasDecodes {
		decVar = "_"
	}
	g.pf("\t%s, reply, err := flexrpc.RawCall(c.conn, c.codec, %d, c.enc.Bytes(), c.replyBuf)\n", decVar, idx)
	g.pf("\tif err != nil {\n\t\treturn %s\n\t}\n", zeroRets)
	g.pf("\tif cap(reply) > cap(c.replyBuf) {\n\t\tc.replyBuf = reply[:cap(reply)]\n\t}\n")

	// Decode out/inout values and the result inline.
	var retExprs []string
	vn := 0
	for _, p := range op.Params {
		if p.Dir == ir.In {
			continue
		}
		v := fmt.Sprintf("out%d", vn)
		vn++
		a := g.attrsFor(op, p.Name)
		into := ""
		if isBufferKind(p.Type) && a.Alloc == pres.AllocCaller {
			into = lowerFirst(goName(p.Name)) + "Buf"
		}
		g.emitDecode(v, p.Type, into, zeroRets)
		retExprs = append(retExprs, v)
	}
	if op.HasResult() {
		into := ""
		if retCallerAlloc {
			into = "resultBuf"
		}
		g.emitDecode("res", op.Result, into, zeroRets)
		retExprs = append(retExprs, "res")
	}
	retExprs = append(retExprs, "nil")
	g.pf("\treturn %s\n}\n\n", strings.Join(retExprs, ", "))
	return nil
}

// emitEncode writes straight-line encode statements for expr of wire
// type t. depth disambiguates nested loop variables.
func (g *gen) emitEncode(enc, expr string, t *ir.Type, indent string, depth int) {
	switch t.Kind {
	case ir.Bool:
		g.pf("%s%s.PutBool(%s)\n", indent, enc, expr)
	case ir.Int32:
		g.pf("%s%s.PutInt32(%s)\n", indent, enc, expr)
	case ir.Enum:
		g.pf("%s%s.PutInt32(int32(%s))\n", indent, enc, expr)
	case ir.Uint32:
		g.pf("%s%s.PutUint32(%s)\n", indent, enc, expr)
	case ir.Int64:
		g.pf("%s%s.PutInt64(%s)\n", indent, enc, expr)
	case ir.Uint64:
		g.pf("%s%s.PutUint64(%s)\n", indent, enc, expr)
	case ir.Float32:
		g.pf("%s%s.PutFloat32(%s)\n", indent, enc, expr)
	case ir.Float64:
		g.pf("%s%s.PutFloat64(%s)\n", indent, enc, expr)
	case ir.String:
		g.pf("%s%s.PutString(%s)\n", indent, enc, expr)
	case ir.Bytes:
		g.pf("%s%s.PutBytes(%s)\n", indent, enc, expr)
	case ir.FixedBytes:
		g.pf("%s%s.PutFixedBytes(%s)\n", indent, enc, expr)
	case ir.Port:
		g.pf("%s%s.PutUint32(uint32(%s))\n", indent, enc, expr)
	case ir.Seq, ir.Array:
		iv := g.nextTmp("i")
		if t.Kind == ir.Seq {
			g.pf("%s%s.PutLen(len(%s))\n", indent, enc, expr)
		}
		g.pf("%sfor %s := range %s {\n", indent, iv, expr)
		g.emitEncode(enc, expr+"["+iv+"]", t.Elem, indent+"\t", depth+1)
		g.pf("%s}\n", indent)
	case ir.Struct:
		for _, f := range t.Fields {
			g.emitEncode(enc, expr+"."+goName(f.Name), f.Type, indent, depth)
		}
	}
}

// emitDecode writes statements declaring target and decoding into it;
// into names an optional caller-provided landing buffer for byte
// kinds. zeroRets is the error-return expression list.
func (g *gen) emitDecode(target string, t *ir.Type, into, zeroRets string) {
	gt, _ := g.goType(t)
	g.pf("\tvar %s %s\n", target, gt)
	g.emitDecodeInto(target, t, into, zeroRets, "\t", 0)
}

func (g *gen) emitDecodeInto(target string, t *ir.Type, into, zeroRets, indent string, depth int) {
	fail := func() string {
		return fmt.Sprintf("%sif err != nil {\n%s\treturn %s\n%s}\n", indent, indent, zeroRets, indent)
	}
	prim := func(call string) {
		g.pf("%s%s, err = dec.%s\n", indent, target, call)
		g.pf("%s", fail())
	}
	switch t.Kind {
	case ir.Bool:
		prim("Bool()")
	case ir.Int32:
		prim("Int32()")
	case ir.Uint32:
		prim("Uint32()")
	case ir.Int64:
		prim("Int64()")
	case ir.Uint64:
		prim("Uint64()")
	case ir.Float32:
		prim("Float32()")
	case ir.Float64:
		prim("Float64()")
	case ir.String:
		prim("String()")
	case ir.Enum:
		tv := g.nextTmp("e")
		g.pf("%s%s, err := dec.Int32()\n%s", indent, tv, fail())
		gt, _ := g.goType(t)
		g.pf("%s%s = %s(%s)\n", indent, target, gt, tv)
	case ir.Port:
		tv := g.nextTmp("p")
		g.pf("%s%s, err := dec.Uint32()\n%s", indent, tv, fail())
		g.pf("%s%s = flexrpc.PortName(%s)\n", indent, target, tv)
	case ir.Bytes:
		if into != "" {
			// BytesInto lands the data in the caller's buffer when it
			// fits and allocates (never truncates) otherwise.
			g.pf("%s%s, err = dec.BytesInto(%s)\n%s", indent, target, into, fail())
		} else {
			// Move semantics: the consumer owns the result.
			wv := g.nextTmp("w")
			g.pf("%s%s, err := dec.Bytes()\n%s", indent, wv, fail())
			g.pf("%s%s = append([]byte(nil), %s...)\n", indent, target, wv)
		}
	case ir.FixedBytes:
		if into != "" {
			g.pf("%serr = dec.FixedBytesInto(%s[:%d])\n%s", indent, into, t.Size, fail())
			g.pf("%s%s = %s[:%d]\n", indent, target, into, t.Size)
		} else {
			g.pf("%s%s = make([]byte, %d)\n", indent, target, t.Size)
			g.pf("%serr = dec.FixedBytesInto(%s)\n%s", indent, target, fail())
		}
	case ir.Seq, ir.Array:
		gt, _ := g.goType(t)
		nv := g.nextTmp("n")
		if t.Kind == ir.Seq {
			g.pf("%svar %s int\n", indent, nv)
			g.pf("%s%s, err = dec.Len()\n%s", indent, nv, fail())
			g.pf("%sif %s > dec.Remaining() {\n%s\terr = fmt.Errorf(\"corrupt sequence length\")\n%s\treturn %s\n%s}\n",
				indent, nv, indent, indent, zeroRets, indent)
		} else {
			g.pf("%s%s := %d\n", indent, nv, t.Size)
		}
		g.pf("%s%s = make(%s, %s)\n", indent, target, gt, nv)
		iv := g.nextTmp("i")
		g.pf("%sfor %s := range %s {\n", indent, iv, target)
		g.emitDecodeInto(target+"["+iv+"]", t.Elem, "", zeroRets, indent+"\t", depth+1)
		g.pf("%s}\n", indent)
	case ir.Struct:
		for _, f := range t.Fields {
			g.emitDecodeInto(target+"."+goName(f.Name), f.Type, "", zeroRets, indent, depth)
		}
	}
}
