package codegen

import (
	"strings"
	"testing"

	"flexrpc/internal/core"
	"flexrpc/internal/pres"
)

func compile(t *testing.T, src, pdl string) *core.Compiled {
	t.Helper()
	c, err := core.Compile(core.Options{
		Frontend: core.FrontendCORBA,
		Filename: "t.idl",
		Source:   src,
		PDL:      pdl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func generate(t *testing.T, src, pdl string) string {
	t.Helper()
	out, err := Generate(compile(t, src, pdl), Options{Package: "gen"})
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

const richIDL = `
enum color { red, green, blue };
struct point { long x; long y; color tint; };
interface Canvas {
	void plot(in point p, in sequence<point> extra);
	point locate(in string name);
	sequence<octet> snapshot(in unsigned long size);
	void stats(out unsigned long count, out sequence<octet> blob);
	long area();
	oneway void poke(in long n);
};`

func TestGenerateRichInterface(t *testing.T) {
	src := generate(t, richIDL, "")
	for _, want := range []string{
		"type Color int32",
		"Green Color = 1",
		"type Point struct {",
		"Tint Color",
		"func pointFromValue(v flexrpc.Value) (Point, error)",
		"func pointSliceToValue(xs []Point) flexrpc.Value",
		"type CanvasClient struct",
		"func (c *CanvasClient) Plot(p Point, extra []Point) error",
		"func (c *CanvasClient) Locate(name string) (Point, error)",
		"func (c *CanvasClient) Snapshot(size uint32) ([]byte, error)",
		"func (c *CanvasClient) Stats() (uint32, []byte, error)",
		"func (c *CanvasClient) Area() (int32, error)",
		"func (c *CanvasClient) Poke(n int32) error",
		"type CanvasServer interface {",
		"Plot(call *flexrpc.Call, p Point, extra []Point) error",
		"Stats(call *flexrpc.Call) (uint32, []byte, error)",
		"func RegisterCanvas(d *flexrpc.Dispatcher, impl CanvasServer)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
	if !strings.Contains(src, "DO NOT EDIT") {
		t.Error("missing generated-code marker")
	}
}

func TestGeneratePreservesCamelCase(t *testing.T) {
	src := generate(t, `interface FileIO { void close_write(); };`, "")
	if !strings.Contains(src, "FileIOClient") {
		t.Error("FileIO should remain FileIO")
	}
	if !strings.Contains(src, "func (c *FileIOClient) CloseWrite() error") {
		t.Error("close_write should become CloseWrite")
	}
}

func TestCallerAllocChangesSignature(t *testing.T) {
	// The paper's point in §4.4.2 made concrete: the presentation
	// changes the generated prototype. With alloc(caller), the stub
	// takes an explicit buffer.
	idl := `interface Store { sequence<octet> fetch(in unsigned long n); };`
	plain := generate(t, idl, "")
	if !strings.Contains(plain, "func (c *StoreClient) Fetch(n uint32) ([]byte, error)") {
		t.Error("default signature wrong")
	}
	callerAlloc := generate(t, idl, `interface Store { fetch([alloc(caller)] return); };`)
	if !strings.Contains(callerAlloc, "func (c *StoreClient) Fetch(n uint32, resultBuf []byte) ([]byte, error)") {
		t.Errorf("alloc(caller) signature wrong:\n%s", callerAlloc)
	}
	if !strings.Contains(callerAlloc, "resultLanding := resultBuf") {
		t.Error("alloc(caller) should wire the landing buffer")
	}
}

func TestAttributesAppearInDocComments(t *testing.T) {
	src := generate(t,
		`interface P { sequence<octet> read(in unsigned long n); void write(in sequence<octet> data); };`,
		`interface P { read([dealloc(never)] return); write([trashable] data); };`)
	if !strings.Contains(src, "dealloc(never)") {
		t.Error("dealloc(never) not documented")
	}
	if !strings.Contains(src, "[trashable]") { // exact single-attr list
		t.Error("trashable not documented")
	}
}

func TestContractInHeader(t *testing.T) {
	c := compile(t, `interface X { void op(in long v); };`, "")
	src := generate(t, `interface X { void op(in long v); };`, "")
	if !strings.Contains(src, c.Iface.Signature()) {
		t.Error("contract signature missing from header")
	}
}

func TestAnonymousStructRejected(t *testing.T) {
	// Anonymous struct types cannot be named in Go; the back-end
	// must reject them cleanly rather than emit garbage.
	// (Named structs only arrive via typedef in our front-ends, so
	// construct the failure through the API.)
	c := compile(t, `struct s { long a; }; interface I { void op(in s v); };`, "")
	c.Iface.Ops[0].Params[0].Type.Name = ""
	if _, err := Generate(c, Options{Package: "x"}); err == nil {
		t.Fatal("expected anonymous-struct error")
	}
}

func TestDefaultPackageName(t *testing.T) {
	c := compile(t, `interface FileIO { void op(); };`, "")
	out, err := Generate(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "package fileio") {
		t.Error("default package name should be the lowercased interface")
	}
}

func TestMIGStyleGeneration(t *testing.T) {
	c, err := core.Compile(core.Options{
		Frontend: core.FrontendCORBA,
		Filename: "t.idl",
		Source:   `interface M { sequence<octet> get(in unsigned long n); };`,
		Style:    pres.StyleMIG,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(c, Options{Package: "m"})
	if err != nil {
		t.Fatal(err)
	}
	// MIG style defaults the result to caller-alloc: buffer param.
	if !strings.Contains(string(out), "resultBuf []byte") {
		t.Error("MIG style should generate a caller buffer parameter")
	}
}

func TestSunFrontendGeneration(t *testing.T) {
	c, err := core.Compile(core.Options{
		Frontend: core.FrontendSunXDR,
		Filename: "p.x",
		Source: `
			typedef opaque blob<>;
			struct pair { int a; int b; };
			program P { version V {
				pair SWAP(pair) = 1;
				blob ECHO(blob) = 2;
			} = 1; } = 200123;`,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(c, Options{Package: "p"})
	if err != nil {
		t.Fatal(err)
	}
	src := string(out)
	for _, want := range []string{
		"type Pair struct {",
		"func (c *PVClient) SWAP(arg1 Pair) (Pair, error)",
		"func (c *PVClient) ECHO(arg1 []byte) ([]byte, error)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("sun-front-end output missing %q", want)
		}
	}
}
