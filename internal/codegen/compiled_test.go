package codegen

import (
	"strings"
	"testing"
)

func TestCompiledClientEmitted(t *testing.T) {
	src := generate(t, `
		struct pt { long x; long y; };
		interface Draw {
			void plot(in pt p, in sequence<pt> more);
			sequence<octet> snap(in unsigned long n);
			oneway void poke(in long v);
		};`, "")
	for _, want := range []string{
		"type DrawCompiledClient struct",
		"func NewDrawCompiledClient(conn flexrpc.Conn, codec flexrpc.Codec) *DrawCompiledClient",
		"func (c *DrawCompiledClient) Plot(p Pt, more []Pt) error",
		"func (c *DrawCompiledClient) Snap(n uint32) ([]byte, error)",
		"func (c *DrawCompiledClient) Poke(v int32) error",
		"c.enc.PutInt32(p.X)", // inline struct field marshal
		"c.enc.PutLen(len(more))",
		"flexrpc.RawCall(c.conn, c.codec,",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("compiled client missing %q", want)
		}
	}
}

func TestCompiledSkipsSpecialOps(t *testing.T) {
	src := generate(t, `
		interface S {
			sequence<octet> get(in unsigned long n);
			void put(in sequence<octet> d);
		};`,
		`interface S { put([special] d); };`)
	if !strings.Contains(src, "func (c *SCompiledClient) Get(") {
		t.Error("compilable op should get a compiled method")
	}
	if strings.Contains(src, "func (c *SCompiledClient) Put(") {
		t.Error("[special] op must not be compiled")
	}
	if !strings.Contains(src, "Not compiled (available via the interpreted client): put") {
		t.Error("skipped ops should be listed in the doc comment")
	}
}

func TestCompiledOmittedWhenNothingCompilable(t *testing.T) {
	src := generate(t,
		`interface A { void only(in sequence<octet> d); };`,
		`interface A { only([special] d); };`)
	if strings.Contains(src, "CompiledClient") {
		t.Error("no compiled client should be emitted when no op qualifies")
	}
	if strings.Contains(src, `"sync"`) {
		t.Error("sync must not be imported without a compiled client")
	}
}

func TestCompiledCallerAllocBuffer(t *testing.T) {
	src := generate(t,
		`interface B { sequence<octet> fetch(in unsigned long n); };`,
		`interface B { fetch([alloc(caller)] return); };`)
	if !strings.Contains(src, "func (c *BCompiledClient) Fetch(n uint32, resultBuf []byte) ([]byte, error)") {
		t.Error("caller-alloc compiled signature wrong")
	}
	if !strings.Contains(src, "dec.BytesInto(resultBuf)") {
		t.Error("compiled stub should decode into the caller's buffer")
	}
}

func TestCompiledFixedBytesAndEnums(t *testing.T) {
	src := generate(t, `
		typedef octet md5[16];
		enum mood { calm, tense };
		interface C { mood check(in md5 sum); };`, "")
	for _, want := range []string{
		"c.enc.PutFixedBytes(sum)",
		"res = Mood(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("compiled client missing %q", want)
		}
	}
}

func TestCompiledUniqueTempNames(t *testing.T) {
	// Two enum fields in one struct must not collide on temp names.
	src := generate(t, `
		enum e { a, b };
		struct two { e first; e second; };
		interface D { two get(); };`, "")
	if !strings.Contains(src, "CompiledClient") {
		t.Fatal("compiled client missing")
	}
	// format.Source in Generate already guarantees it parses; spot
	// check both fields decode.
	if !strings.Contains(src, "res.First = E(") || !strings.Contains(src, "res.Second = E(") {
		t.Error("both enum fields should decode")
	}
}
