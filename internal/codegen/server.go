package codegen

import (
	"fmt"
	"strings"

	"flexrpc/internal/ir"
)

// emitServer generates the server-side skeleton: a Go interface the
// implementor fills in, and a Register function wiring it to a
// dispatcher.
func (g *gen) emitServer() error {
	iface := g.compiled.Iface
	sname := goName(iface.Name) + "Server"
	g.pf("// %s is the work-function interface a server implements.\n", sname)
	g.pf("// Every method receives the *flexrpc.Call for access to\n")
	g.pf("// presentation-negotiated state: ArgPrivate, OutBuffer,\n")
	g.pf("// ResultMoved and AfterReply.\ntype %s interface {\n", sname)
	for i := range iface.Ops {
		sig, err := g.serverMethodSig(&iface.Ops[i])
		if err != nil {
			return err
		}
		g.pf("\t%s\n", sig)
	}
	g.pf("}\n\n")

	g.pf("// Register%s wires an implementation into a dispatcher.\n", goName(iface.Name))
	g.pf("func Register%s(d *flexrpc.Dispatcher, impl %s) {\n", goName(iface.Name), sname)
	for i := range iface.Ops {
		if err := g.emitHandler(&iface.Ops[i]); err != nil {
			return err
		}
	}
	g.pf("}\n")
	return nil
}

func (g *gen) serverMethodSig(op *ir.Operation) (string, error) {
	var params []string
	params = append(params, "call *flexrpc.Call")
	for _, p := range op.Params {
		if p.Dir == ir.Out {
			continue
		}
		gt, err := g.goType(p.Type)
		if err != nil {
			return "", err
		}
		params = append(params, lowerFirst(goName(p.Name))+" "+gt)
	}
	var rets []string
	for _, p := range op.Params {
		if p.Dir == ir.In {
			continue
		}
		gt, err := g.goType(p.Type)
		if err != nil {
			return "", err
		}
		rets = append(rets, gt)
	}
	if op.HasResult() {
		gt, err := g.goType(op.Result)
		if err != nil {
			return "", err
		}
		rets = append(rets, gt)
	}
	rets = append(rets, "error")
	retSig := strings.Join(rets, ", ")
	if len(rets) > 1 {
		retSig = "(" + retSig + ")"
	}
	return fmt.Sprintf("%s(%s) %s", goName(op.Name), strings.Join(params, ", "), retSig), nil
}

func (g *gen) emitHandler(op *ir.Operation) error {
	g.pf("\td.Handle(%q, func(call *flexrpc.Call) error {\n", op.Name)
	// Unpack in arguments.
	var callArgs []string
	callArgs = append(callArgs, "call")
	for i, p := range op.Params {
		if p.Dir == ir.Out {
			continue
		}
		conv, errCase := g.convFromValue(fmt.Sprintf("call.Arg(%d)", i), p.Type)
		v := fmt.Sprintf("a%d", i)
		if errCase {
			g.pf("\t\t%s, err := %s\n\t\tif err != nil {\n\t\t\treturn err\n\t\t}\n", v, conv)
		} else {
			g.pf("\t\t%s := %s\n", v, conv)
		}
		callArgs = append(callArgs, v)
	}
	// Invoke the implementation.
	var outVars []string
	for i, p := range op.Params {
		if p.Dir == ir.In {
			continue
		}
		outVars = append(outVars, fmt.Sprintf("o%d", i))
	}
	if op.HasResult() {
		outVars = append(outVars, "res")
	}
	outVars = append(outVars, "err")
	g.pf("\t\t%s := impl.%s(%s)\n", strings.Join(outVars, ", "), goName(op.Name), strings.Join(callArgs, ", "))
	g.pf("\t\tif err != nil {\n\t\t\treturn err\n\t\t}\n")
	// Store results.
	for i, p := range op.Params {
		if p.Dir == ir.In {
			continue
		}
		g.pf("\t\tcall.SetOut(%d, %s)\n", i, g.convToValue(fmt.Sprintf("o%d", i), p.Type))
	}
	if op.HasResult() {
		g.pf("\t\tcall.SetResult(%s)\n", g.convToValue("res", op.Result))
	}
	g.pf("\t\treturn nil\n\t})\n")
	return nil
}
