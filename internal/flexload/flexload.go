// Package flexload is the load-generator harness for the connection-
// scale experiments: open- and closed-loop traffic from thousands of
// simulated clients, paced by a runtime.Clock so the same engine runs
// in real time against a live server or fully deterministically under
// a FakeClock. Latency percentiles come from the existing stats
// histograms (one sharded Endpoint pool merged via Snapshot.Merge),
// so the generator measures with the same instruments the runtime
// exports.
//
// The run protocol is warmup → measure → cooldown: only calls whose
// arrival falls inside the measure window are recorded, so pool
// warmup and ramp-down never pollute the percentiles. Open-loop
// arrivals follow a seeded Poisson schedule per client, and latency
// is measured from the *scheduled* arrival — a slow server makes the
// queue (and the measured latency) grow instead of silently slowing
// the generator down, avoiding coordinated omission.
package flexload

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"flexrpc/internal/pres"
	"flexrpc/internal/runtime"
	"flexrpc/internal/stats"
)

// Mode selects how clients pace their calls.
type Mode int

const (
	// Closed keeps one call in flight per client, thinking Think
	// between completions: offered load adapts to the server, the
	// classic closed-loop benchmark.
	Closed Mode = iota
	// Open issues calls on a seeded Poisson arrival schedule at the
	// aggregate Rate regardless of completions: the server's lateness
	// shows up as queue depth and tail latency, not reduced load.
	Open
)

func (m Mode) String() string {
	if m == Open {
		return "open"
	}
	return "closed"
}

// Target is what the generator drives: one conn per client, one
// operation, one pre-marshaled request body.
type Target struct {
	// Dial returns client id's connection; called once per client
	// before the run starts.
	Dial func(id int) (runtime.Conn, error)
	// Pres names the operations (stats rows, RobustConn wrapping).
	Pres *pres.Presentation
	// Op is the operation name to drive; "" means the first op.
	Op string
	// Request is the marshaled request body sent on every call.
	Request []byte
}

// Options configures a run.
type Options struct {
	Clients int
	Mode    Mode
	// Rate is the aggregate open-loop arrival rate in calls/sec,
	// split across clients (ignored for Closed).
	Rate float64
	// Think is the closed-loop pause between a completion and the
	// next call (ignored for Open). 0 means saturation.
	Think time.Duration
	// Warmup/Measure/Cooldown are the protocol phases; only Measure
	// is required.
	Warmup, Measure, Cooldown time.Duration
	// Clock paces the run; nil means runtime.WallClock. Deterministic
	// runs require a *runtime.FakeClock.
	Clock runtime.Clock
	// Seed derives every client's arrival/jitter rng; identical seeds
	// (plus a FakeClock) reproduce a run byte-for-byte.
	Seed int64
	// ClientIDBase offsets every client's global identity: worker k of
	// a multi-process run passes its client offset so at-most-once
	// ClientIDs (and the derived seeds) never collide across the
	// processes sharing one server.
	ClientIDBase int
	// Robust, when non-nil, wraps each client's conn in a RobustConn
	// with this template: ClientID and the retry-jitter seed are
	// re-derived per client, Clock is overridden with the run's.
	Robust *runtime.RobustOptions
	// ServerStats, when non-nil, is the server endpoint whose shed
	// counter the report quotes.
	ServerStats *stats.Endpoint
	// SLO bounds "good" latency: goodput counts only completions at
	// or under it. 0 counts every completion.
	SLO time.Duration
	// MaxQueue bounds each open-loop client's backlog of scheduled-
	// but-unissued arrivals; overflow is counted, not queued.
	// 0 means 1024.
	MaxQueue int
	// Deterministic runs every client on one goroutine in virtual
	// time: Clock must be a *runtime.FakeClock (auto-advance is
	// enabled so retry backoffs advance it), and two runs with the
	// same seed produce identical reports.
	Deterministic bool
}

// Report is the outcome of a run. All fields are plain values, so
// json.Marshal of two identical runs is byte-identical.
type Report struct {
	Clients   int    `json:"clients"`
	Mode      string `json:"mode"`
	Op        string `json:"op"`
	MeasureNs int64  `json:"measure_ns"`

	// Offered counts measure-window scheduled arrivals (open loop)
	// or issued calls (closed loop, where arrival == issue). Issued
	// and the rest count calls whose arrival fell in the window.
	Offered   uint64 `json:"offered"`
	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	Errors    uint64 `json:"errors"`
	Timeouts  uint64 `json:"timeouts"`

	SLONs     int64  `json:"slo_ns,omitempty"`
	WithinSLO uint64 `json:"within_slo"`
	// GoodputPerSec is completions (within SLO, when one is set) per
	// measure-window second.
	GoodputPerSec float64 `json:"goodput_per_sec"`

	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`

	// Retries and Pushbacks are whole-run client-side session
	// counters (they cannot be phase-gated); sheds are the server's.
	Retries         uint64  `json:"retries"`
	RetriesPerCall  float64 `json:"retries_per_call"`
	Pushbacks       uint64  `json:"pushbacks"`
	RetrySuppressed uint64  `json:"retry_suppressed"`
	Sheds           uint64  `json:"sheds"`

	// QueueMax is the deepest per-client open-loop backlog seen;
	// QueueDrops counts arrivals past MaxQueue.
	QueueMax   int    `json:"queue_max"`
	QueueDrops uint64 `json:"queue_drops"`

	// Merged is the combined client-side stats snapshot (excluded
	// from JSON: histograms are not part of the stable report).
	Merged *stats.Snapshot `json:"-"`
}

// JSON renders the report as stable, indented JSON.
func (r *Report) JSON() []byte {
	b, _ := json.MarshalIndent(r, "", "  ")
	return append(b, '\n')
}

// Text renders the report for humans.
func (r *Report) Text() string {
	return fmt.Sprintf(
		"flexload: %d clients, %s loop, op %s, measure %v\n"+
			"  offered %d  issued %d  completed %d  errors %d  timeouts %d\n"+
			"  goodput %.1f/s (within SLO %d)\n"+
			"  latency mean %v  p50 %v  p99 %v  p999 %v\n"+
			"  retries/call %.3f  pushbacks %d  suppressed %d  sheds %d  queue max %d (drops %d)\n",
		r.Clients, r.Mode, r.Op, time.Duration(r.MeasureNs),
		r.Offered, r.Issued, r.Completed, r.Errors, r.Timeouts,
		r.GoodputPerSec, r.WithinSLO,
		time.Duration(r.MeanNs), time.Duration(r.P50Ns), time.Duration(r.P99Ns), time.Duration(r.P999Ns),
		r.RetriesPerCall, r.Pushbacks, r.RetrySuppressed, r.Sheds, r.QueueMax, r.QueueDrops)
}

// statsShards bounds the endpoint pool: clients share endpoints
// (counters are atomic), so 10k clients do not allocate 10k
// histogram sets.
const statsShards = 64

// defaultMaxQueue bounds open-loop backlogs when Options.MaxQueue is 0.
const defaultMaxQueue = 1024

type client struct {
	id   int
	conn runtime.Conn
	ep   *stats.Endpoint
	rng  *rand.Rand

	replyBuf []byte

	// Open-loop arrival state.
	meanNs      float64 // mean inter-arrival in ns
	nextArrival time.Time
	queue       []time.Time
	qhead       int
	queueMax    int
	drops       uint64

	// Measure-window tallies.
	offered, issued, completed, errs, withinSLO uint64
}

type run struct {
	t     *Target
	o     *Options
	clock runtime.Clock
	fake  *runtime.FakeClock // non-nil in deterministic mode

	opIdx  int
	opName string

	start, measStart, measEnd, coolEnd time.Time

	clients []*client
	shards  []*stats.Endpoint
}

// Run drives the target per the options and reports the measured
// window. It dials every client, runs warmup/measure/cooldown, closes
// the conns, and merges the stats shards into the report.
func Run(t Target, o Options) (*Report, error) {
	if t.Dial == nil {
		return nil, errors.New("flexload: Target.Dial is required")
	}
	if t.Pres == nil {
		return nil, errors.New("flexload: Target.Pres is required")
	}
	if o.Clients <= 0 {
		return nil, errors.New("flexload: Options.Clients must be positive")
	}
	if o.Measure <= 0 {
		return nil, errors.New("flexload: Options.Measure must be positive")
	}
	if o.Mode == Open && o.Rate <= 0 {
		return nil, errors.New("flexload: open loop requires Options.Rate")
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = defaultMaxQueue
	}

	r := &run{t: &t, o: &o}
	r.clock = o.Clock
	if o.Deterministic {
		fc, ok := r.clock.(*runtime.FakeClock)
		if r.clock == nil {
			fc, ok = runtime.NewFakeClock(), true
		}
		if !ok {
			return nil, errors.New("flexload: deterministic mode requires a *runtime.FakeClock")
		}
		if o.Mode == Closed && o.Think <= 0 {
			return nil, errors.New("flexload: deterministic closed loop requires think time")
		}
		// Any sleep inside the stack (retry backoff, advisory
		// retry-after) advances virtual time instead of blocking the
		// single engine goroutine.
		fc.AutoAdvance(true)
		r.fake = fc
		r.clock = fc
	} else if r.clock == nil {
		r.clock = runtime.WallClock
	}

	ops := make([]string, len(t.Pres.Interface.Ops))
	for i := range t.Pres.Interface.Ops {
		ops[i] = t.Pres.Interface.Ops[i].Name
	}
	r.opIdx = 0
	if t.Op != "" {
		r.opIdx = -1
		for i, n := range ops {
			if n == t.Op {
				r.opIdx = i
				break
			}
		}
		if r.opIdx < 0 {
			return nil, fmt.Errorf("flexload: operation %q not in interface", t.Op)
		}
	}
	r.opName = ops[r.opIdx]

	nShards := statsShards
	if o.Clients < nShards {
		nShards = o.Clients
	}
	r.shards = make([]*stats.Endpoint, nShards)
	for i := range r.shards {
		r.shards[i] = stats.New(ops)
	}

	r.clients = make([]*client, o.Clients)
	for id := range r.clients {
		conn, err := t.Dial(id)
		if err != nil {
			for _, c := range r.clients[:id] {
				c.conn.Close()
			}
			return nil, fmt.Errorf("flexload: dial client %d: %w", id, err)
		}
		ep := r.shards[id%nShards]
		gid := o.ClientIDBase + id // process-global identity
		if o.Robust != nil {
			ro := *o.Robust
			ro.ClientID = uint32(gid + 1)
			ro.Clock = r.clock
			ro.Policy.Seed = int64(splitmix64(uint64(o.Seed)*0x9E3779B97F4A7C15 + uint64(gid) + 1))
			rc := runtime.NewRobustConn(conn, t.Pres, ro)
			rc.SetStats(ep)
			conn = rc
		}
		r.clients[id] = &client{
			id:   id,
			conn: conn,
			ep:   ep,
			rng:  rand.New(rand.NewSource(int64(splitmix64(uint64(o.Seed) + uint64(gid)*0xBF58476D1CE4E5B9 + 7)))),
		}
	}
	defer func() {
		for _, c := range r.clients {
			c.conn.Close()
		}
	}()

	r.start = r.clock.Now()
	r.measStart = r.start.Add(o.Warmup)
	r.measEnd = r.measStart.Add(o.Measure)
	r.coolEnd = r.measEnd.Add(o.Cooldown)

	for _, c := range r.clients {
		if o.Mode == Open {
			c.meanNs = float64(o.Clients) / o.Rate * float64(time.Second)
			c.nextArrival = r.start.Add(c.interarrival())
		}
	}

	if o.Deterministic {
		r.runVirtual()
	} else {
		r.runWall()
	}
	return r.report(), nil
}

// firstEvent is client c's initial wake time.
func (r *run) firstEvent(c *client) time.Time {
	if r.o.Mode == Open {
		return c.nextArrival
	}
	if r.o.Think > 0 {
		// Stagger closed-loop starts uniformly over one think time so
		// 10k clients do not fire in lockstep.
		return r.start.Add(time.Duration(c.rng.Int63n(int64(r.o.Think))))
	}
	return r.start
}

// interarrival samples the client's next Poisson gap.
func (c *client) interarrival() time.Duration {
	d := time.Duration(c.rng.ExpFloat64() * c.meanNs)
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	return d
}

// step runs one client event at the current clock instant: at most
// one call. It returns the next wake time, or done=true when the
// client has no further events.
func (r *run) step(c *client) (next time.Time, done bool) {
	now := r.clock.Now()
	if r.o.Mode == Closed {
		if !now.Before(r.coolEnd) {
			return time.Time{}, true
		}
		r.call(c, now)
		return r.clock.Now().Add(r.o.Think), false
	}

	// Open loop: accrue every arrival scheduled by now (bounded by
	// the cooldown end), then issue at most one queued call.
	for !c.nextArrival.After(now) && c.nextArrival.Before(r.coolEnd) {
		at := c.nextArrival
		c.nextArrival = at.Add(c.interarrival())
		if !at.Before(r.measStart) && at.Before(r.measEnd) {
			c.offered++
		}
		if len(c.queue)-c.qhead >= r.o.MaxQueue {
			c.drops++
			continue
		}
		c.queue = append(c.queue, at)
		if depth := len(c.queue) - c.qhead; depth > c.queueMax {
			c.queueMax = depth
		}
	}
	if !now.Before(r.coolEnd) {
		return time.Time{}, true
	}
	if c.qhead < len(c.queue) {
		at := c.queue[c.qhead]
		c.qhead++
		if c.qhead == len(c.queue) {
			c.queue = c.queue[:0]
			c.qhead = 0
		}
		r.call(c, at)
		return r.clock.Now(), false
	}
	if !c.nextArrival.Before(r.coolEnd) {
		return time.Time{}, true
	}
	return c.nextArrival, false
}

// call performs one call whose (scheduled) arrival is at; latency is
// measured from the arrival, so open-loop queue wait counts.
func (r *run) call(c *client, at time.Time) {
	measured := !at.Before(r.measStart) && at.Before(r.measEnd)
	reply, err := c.conn.Call(r.opIdx, r.t.Request, c.replyBuf)
	end := r.clock.Now()
	if reply != nil {
		c.replyBuf = reply[:0]
	}
	if !measured {
		return
	}
	if r.o.Mode == Closed {
		c.offered++
	}
	c.issued++
	lat := end.Sub(at)
	outcome := stats.OK
	switch {
	case err == nil:
		c.completed++
		if r.o.SLO <= 0 || lat <= r.o.SLO {
			c.withinSLO++
		}
	case errors.Is(err, context.DeadlineExceeded):
		c.errs++
		outcome = stats.TimedOut
	default:
		c.errs++
		outcome = stats.Failed
	}
	c.ep.RecordCall(r.opIdx, lat, len(r.t.Request), len(reply), outcome)
}

// runWall drives one goroutine per client against the real clock (or
// any blocking Clock).
func (r *run) runWall() {
	ctx := context.Background()
	var wg sync.WaitGroup
	for _, c := range r.clients {
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			next := r.firstEvent(c)
			for {
				if d := next.Sub(r.clock.Now()); d > 0 {
					if r.clock.Sleep(ctx, d) != nil {
						return
					}
				}
				var done bool
				next, done = r.step(c)
				if done {
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// eventHeap orders (time, id) pairs; ties break on id, so the virtual
// engine is fully deterministic.
type eventHeap []event

type event struct {
	at time.Time
	id int
}

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].id < h[j].id
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// runVirtual is the deterministic discrete-event engine: one
// goroutine, virtual time. Events run in (time, client id) order and
// the FakeClock advances exactly to each event, so a seeded run is a
// pure function of its options.
func (r *run) runVirtual() {
	h := make(eventHeap, 0, len(r.clients))
	for _, c := range r.clients {
		h = append(h, event{r.firstEvent(c), c.id})
	}
	heap.Init(&h)
	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		if d := ev.at.Sub(r.fake.Now()); d > 0 {
			r.fake.Advance(d)
		}
		next, done := r.step(r.clients[ev.id])
		if !done {
			heap.Push(&h, event{next, ev.id})
		}
	}
}

// report merges the stats shards and the per-client tallies.
func (r *run) report() *Report {
	merged := r.shards[0].Snapshot()
	for _, ep := range r.shards[1:] {
		merged.Merge(ep.Snapshot())
	}
	rep := &Report{
		Clients:   r.o.Clients,
		Mode:      r.o.Mode.String(),
		Op:        r.opName,
		MeasureNs: int64(r.o.Measure),
		SLONs:     int64(r.o.SLO),
		Merged:    merged,
	}
	for _, c := range r.clients {
		rep.Offered += c.offered
		rep.Issued += c.issued
		rep.Completed += c.completed
		rep.Errors += c.errs
		rep.WithinSLO += c.withinSLO
		rep.QueueDrops += c.drops
		if c.queueMax > rep.QueueMax {
			rep.QueueMax = c.queueMax
		}
	}
	for i := range merged.Ops {
		if merged.Ops[i].Name == r.opName {
			op := &merged.Ops[i]
			rep.Timeouts = op.Timeouts
			rep.Retries = op.Retries
			rep.MeanNs = int64(op.Latency.Mean())
			rep.P50Ns = int64(op.Latency.Quantile(0.50))
			rep.P99Ns = int64(op.Latency.Quantile(0.99))
			rep.P999Ns = int64(op.Latency.Quantile(0.999))
		}
	}
	rep.Pushbacks = merged.Pushbacks
	rep.RetrySuppressed = merged.RetrySuppressed
	if r.o.ServerStats != nil {
		rep.Sheds = r.o.ServerStats.Snapshot().Sheds
	}
	good := rep.Completed
	if r.o.SLO > 0 {
		good = rep.WithinSLO
	}
	rep.GoodputPerSec = float64(good) / r.o.Measure.Seconds()
	if rep.Issued > 0 {
		rep.RetriesPerCall = float64(rep.Retries) / float64(rep.Issued)
	}
	return rep
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed way to
// derive independent per-client seeds from one run seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
