package flexload

import (
	"encoding/json"
	"testing"
	"time"

	"flexrpc/internal/runtime"
)

// wireWorker runs one deterministic "worker process" slice of a
// 32-client run: clients clients starting at base, against its own
// virtual world (separate processes share nothing client-side).
func wireWorker(t *testing.T, clients, base int) *WireReport {
	t.Helper()
	fc := runtime.NewFakeClock()
	w := newVirtualWorld(t, fc, 99, 5, 20*time.Microsecond, 40*time.Microsecond)
	rep, err := Run(Target{
		Dial: func(id int) (runtime.Conn, error) { return &sessConn{w: w}, nil },
		Pres: w.p,
		Op:   "nop",
	}, Options{
		Clients:       clients,
		Mode:          Closed,
		Think:         2 * time.Millisecond,
		Warmup:        5 * time.Millisecond,
		Measure:       50 * time.Millisecond,
		Cooldown:      5 * time.Millisecond,
		Clock:         fc,
		Seed:          1234,
		ClientIDBase:  base,
		Robust:        detRobust(),
		ServerStats:   w.srv,
		SLO:           20 * time.Millisecond,
		Deterministic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Wire()
}

// TestCombineWireMergesWorkers: two worker slices of a split run,
// round-tripped through JSON the way the parent process receives them
// on the pipe, combine into one report whose tallies are the sums and
// whose percentiles come from the merged histograms — not from
// averaging the workers' summary numbers.
func TestCombineWireMergesWorkers(t *testing.T) {
	w0 := wireWorker(t, 16, 0)
	w1 := wireWorker(t, 16, 16)

	// The ClientIDBase decorrelates the slices: identical seeds with
	// different bases must not replay the same arrival schedule.
	if w0.Report.Issued == 0 || w1.Report.Issued == 0 {
		t.Fatal("a worker slice issued nothing")
	}
	if string(w0.Report.JSON()) == string(w1.Report.JSON()) {
		t.Fatal("worker slices with different ClientIDBase produced identical runs")
	}

	var rt []*WireReport
	for _, w := range []*WireReport{w0, w1} {
		b, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		var got WireReport
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		rt = append(rt, &got)
	}

	rep, err := CombineWire(rt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clients != 32 {
		t.Fatalf("combined clients = %d, want 32", rep.Clients)
	}
	if want := w0.Report.Completed + w1.Report.Completed; rep.Completed != want {
		t.Fatalf("combined completed = %d, want %d", rep.Completed, want)
	}
	if want := w0.Report.Issued + w1.Report.Issued; rep.Issued != want {
		t.Fatalf("combined issued = %d, want %d", rep.Issued, want)
	}
	if want := w0.Report.Retries + w1.Report.Retries; rep.Retries != want {
		t.Fatalf("combined retries = %d, want %d", rep.Retries, want)
	}

	// Percentiles must match recomputing over the bucket-wise merge of
	// the worker histograms.
	merged := w0.Snapshot
	merged.Merge(w1.Snapshot)
	for i := range merged.Ops {
		if merged.Ops[i].Name != "nop" {
			continue
		}
		lat := &merged.Ops[i].Latency
		if rep.P99Ns != int64(lat.Quantile(0.99)) || rep.P50Ns != int64(lat.Quantile(0.50)) {
			t.Fatalf("combined percentiles p50=%d p99=%d; merged histogram says p50=%d p99=%d",
				rep.P50Ns, rep.P99Ns, int64(lat.Quantile(0.50)), int64(lat.Quantile(0.99)))
		}
	}
	if rep.P50Ns <= 0 || rep.P99Ns < rep.P50Ns {
		t.Fatalf("percentile order broken: p50=%d p99=%d", rep.P50Ns, rep.P99Ns)
	}
	if rep.GoodputPerSec <= 0 {
		t.Fatal("combined goodput is zero")
	}
}

// TestCombineWireRejectsMismatch: slices from different ops or
// different measure windows are not comparable.
func TestCombineWireRejectsMismatch(t *testing.T) {
	a := &WireReport{Report: Report{Op: "nop", MeasureNs: int64(time.Second)}}
	b := &WireReport{Report: Report{Op: "ping", MeasureNs: int64(time.Second)}}
	if _, err := CombineWire([]*WireReport{a, b}); err == nil {
		t.Fatal("combined reports for different ops")
	}
	c := &WireReport{Report: Report{Op: "nop", MeasureNs: int64(2 * time.Second)}}
	if _, err := CombineWire([]*WireReport{a, c}); err == nil {
		t.Fatal("combined reports for different measure windows")
	}
	if _, err := CombineWire(nil); err == nil {
		t.Fatal("combined zero reports")
	}
}
