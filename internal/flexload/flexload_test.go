package flexload

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"flexrpc/internal/core"
	"flexrpc/internal/pres"
	"flexrpc/internal/runtime"
	"flexrpc/internal/stats"
)

const loadIDL = `
	interface Load {
	    void nop();
	    long ping(in long x);
	};`

func loadPres(t testing.TB) *pres.Presentation {
	t.Helper()
	compiled, err := core.Compile(core.Options{
		Frontend: core.FrontendCORBA, Filename: "load.idl", Source: loadIDL,
	})
	if err != nil {
		t.Fatal(err)
	}
	return compiled.Pres
}

// virtualWorld is the deterministic target: an at-most-once session
// server whose nop handler advances the FakeClock by a seeded virtual
// service time, fronted (optionally) by a shed injector that answers
// every shedEvery-th call with a pushback frame.
type virtualWorld struct {
	p     *pres.Presentation
	sess  *runtime.SessionServer
	fc    *runtime.FakeClock
	srv   *stats.Endpoint
	every int
}

func newVirtualWorld(t testing.TB, fc *runtime.FakeClock, serviceSeed int64, shedEvery int, svcBase, svcJitter time.Duration) *virtualWorld {
	t.Helper()
	p := loadPres(t)
	disp := runtime.NewDispatcher(p)
	svc := rand.New(rand.NewSource(serviceSeed))
	disp.Handle("nop", func(c *runtime.Call) error {
		// Virtual service time, seeded. The advance is charged to the
		// global clock, so total virtual capacity is 1/(base+jitter/2)
		// calls per second regardless of client count. Because the
		// deterministic engine is single-threaded, the handler's rng
		// is consumed in a reproducible order.
		fc.Advance(svcBase + time.Duration(svc.Int63n(int64(svcJitter))))
		return nil
	})
	plan, err := runtime.NewPlan(p, runtime.XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &virtualWorld{
		p:     p,
		sess:  runtime.NewSessionServer(disp, plan, runtime.NewReplyCacheSharded(256, 1)),
		fc:    fc,
		srv:   stats.New(nil),
		every: shedEvery,
	}
}

// sessConn loops session frames into the server, shedding every n-th
// call with an overload pushback when n > 0.
type sessConn struct {
	w     *virtualWorld
	count int
}

func (c *sessConn) Call(opIdx int, req, replyBuf []byte) ([]byte, error) {
	c.count++
	if c.w.every > 0 && c.count%c.w.every == 0 {
		c.w.srv.AddShed()
		return runtime.AppendPushbackFrame(replyBuf[:0], false, 2*time.Millisecond), nil
	}
	frame := c.w.sess.Handle(context.Background(), opIdx, req)
	return append(replyBuf[:0], frame...), nil
}

func (c *sessConn) Close() error { return nil }

func detRobust() *runtime.RobustOptions {
	return &runtime.RobustOptions{
		AtMostOnce: true,
		Policy: runtime.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 500 * time.Microsecond,
			MaxBackoff:  4 * time.Millisecond,
		},
	}
}

// TestDeterministicClosedLoopByteIdentical is the determinism gate:
// two closed-loop runs with the same seed and a FakeClock produce
// byte-identical reports — percentiles, retries, pushbacks, sheds and
// all — even with retry backoff and shed pushbacks in play.
func TestDeterministicClosedLoopByteIdentical(t *testing.T) {
	runOnce := func() *Report {
		fc := runtime.NewFakeClock()
		// Fast virtual service (20–60µs): the serialized service
		// advances must leave room for every client to make dozens of
		// calls inside the window, so the every-5th shed injector
		// actually fires on each connection.
		w := newVirtualWorld(t, fc, 99, 5, 20*time.Microsecond, 40*time.Microsecond)
		rep, err := Run(Target{
			Dial: func(id int) (runtime.Conn, error) { return &sessConn{w: w}, nil },
			Pres: w.p,
			Op:   "nop",
		}, Options{
			Clients:       32,
			Mode:          Closed,
			Think:         2 * time.Millisecond,
			Warmup:        5 * time.Millisecond,
			Measure:       50 * time.Millisecond,
			Cooldown:      5 * time.Millisecond,
			Clock:         fc,
			Seed:          1234,
			Robust:        detRobust(),
			ServerStats:   w.srv,
			SLO:           20 * time.Millisecond,
			Deterministic: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	a, b := runOnce(), runOnce()
	ja, jb := a.JSON(), b.JSON()
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed, different reports:\n--- run 1\n%s--- run 2\n%s", ja, jb)
	}
	if a.Completed == 0 || a.Issued == 0 {
		t.Fatalf("no traffic measured: %s", ja)
	}
	if a.Pushbacks == 0 || a.Retries == 0 || a.Sheds == 0 {
		t.Fatalf("shed injection exercised no retries: pushbacks=%d retries=%d sheds=%d",
			a.Pushbacks, a.Retries, a.Sheds)
	}
	if a.P50Ns <= 0 || a.P99Ns < a.P50Ns || a.P999Ns < a.P99Ns {
		t.Fatalf("percentile order broken: p50=%d p99=%d p999=%d", a.P50Ns, a.P99Ns, a.P999Ns)
	}
	if a.Errors != 0 {
		t.Fatalf("taxonomy violations under clean virtual server: %d errors", a.Errors)
	}
}

// TestDeterministicOpenLoopOverload drives the open loop at 4× the
// virtual server's capacity: the generator must keep offering on
// schedule (it is never the bottleneck — the backlog grows instead),
// queue depth must hit the configured cap and overflow must be
// counted, latency must reflect queue wait, and the whole overloaded
// run must still be byte-reproducible.
func TestDeterministicOpenLoopOverload(t *testing.T) {
	const (
		rate     = 4000.0 // calls/sec offered
		measure  = 100 * time.Millisecond
		maxQueue = 16
	)
	runOnce := func() *Report {
		fc := runtime.NewFakeClock()
		// ~1ms service → capacity ~1000/s, a 4× overload at rate 4000/s.
		w := newVirtualWorld(t, fc, 7, 0, 500*time.Microsecond, time.Millisecond)
		rep, err := Run(Target{
			Dial: func(id int) (runtime.Conn, error) { return &sessConn{w: w}, nil },
			Pres: w.p,
			Op:   "nop",
		}, Options{
			Clients:       8,
			Mode:          Open,
			Rate:          rate,
			Measure:       measure,
			Clock:         fc,
			Seed:          777,
			Robust:        detRobust(),
			ServerStats:   w.srv,
			MaxQueue:      maxQueue,
			Deterministic: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	a, b := runOnce(), runOnce()
	if ja, jb := a.JSON(), b.JSON(); !bytes.Equal(ja, jb) {
		t.Fatalf("overloaded open loop not reproducible:\n--- run 1\n%s--- run 2\n%s", ja, jb)
	}

	// The schedule keeps offering through the overload: the Poisson
	// count must sit near rate × window, far above what the server
	// completed.
	expect := rate * measure.Seconds()
	if f := float64(a.Offered); f < 0.7*expect || f > 1.3*expect {
		t.Fatalf("offered %d, want ≈%.0f: the generator throttled itself under overload", a.Offered, expect)
	}
	if a.Issued >= a.Offered {
		t.Fatalf("issued %d ≥ offered %d in a 4× overload: no backlog formed", a.Issued, a.Offered)
	}
	// Queue-depth assertion: the backlog hit the cap, overflow was
	// counted rather than silently dropped, and measured latency
	// includes the queue wait (well past the ~1ms service time).
	if a.QueueMax != maxQueue {
		t.Fatalf("queue max %d, want cap %d", a.QueueMax, maxQueue)
	}
	if a.QueueDrops == 0 {
		t.Fatal("queue overflow not counted")
	}
	if a.P99Ns < int64(5*time.Millisecond) {
		t.Fatalf("p99 %v under 4× overload: latency not measured from scheduled arrival",
			time.Duration(a.P99Ns))
	}
}

// TestWallClockSmoke exercises the concurrent wall-clock driver end
// to end: real goroutines, real sleeps, a real (loopback) session
// server — goodput must be nonzero and error-free.
func TestWallClockSmoke(t *testing.T) {
	fc := runtime.NewFakeClock() // only for the virtual service rng gate; not used
	_ = fc
	p := loadPres(t)
	disp := runtime.NewDispatcher(p)
	disp.Handle("nop", func(c *runtime.Call) error { return nil })
	plan, err := runtime.NewPlan(p, runtime.XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := runtime.NewSessionServer(disp, plan, runtime.NewReplyCache(1024))
	w := &virtualWorld{p: p, sess: sess, srv: stats.New(nil)}

	rep, err := Run(Target{
		Dial: func(id int) (runtime.Conn, error) { return &sessConn{w: w}, nil },
		Pres: p,
		Op:   "nop",
	}, Options{
		Clients: 64,
		Mode:    Closed,
		Think:   time.Millisecond,
		Warmup:  5 * time.Millisecond,
		Measure: 50 * time.Millisecond,
		Seed:    1,
		Robust:  detRobust(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 || rep.GoodputPerSec == 0 {
		t.Fatalf("wall-clock run produced no goodput: %s", rep.JSON())
	}
	if rep.Errors != 0 {
		t.Fatalf("wall-clock run saw %d errors", rep.Errors)
	}
}
