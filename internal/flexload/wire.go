package flexload

import (
	"errors"
	"fmt"
	"time"

	"flexrpc/internal/stats"
)

// WireReport is the cross-process exchange format for multi-process
// load generation: the worker's Report plus its merged client-side
// stats snapshot. Report.JSON deliberately omits the snapshot (raw
// histograms are not part of the stable human report), but the parent
// process needs them — summary percentiles cannot be combined, only
// the underlying bucket counts can.
type WireReport struct {
	Report   Report          `json:"report"`
	Snapshot *stats.Snapshot `json:"snapshot,omitempty"`
}

// Wire packages the report for transfer to a merging parent.
func (r *Report) Wire() *WireReport {
	return &WireReport{Report: *r, Snapshot: r.Merged}
}

// CombineWire merges worker reports into one run-wide Report: tallies
// add, QueueMax takes the max, the snapshots merge bucket-wise via
// stats.Snapshot.Merge, and the latency percentiles are recomputed
// from the merged histogram — never averaged across workers. All
// workers must have driven the same op over the same measure window.
func CombineWire(ws []*WireReport) (*Report, error) {
	if len(ws) == 0 {
		return nil, errors.New("flexload: no worker reports to combine")
	}
	first := &ws[0].Report
	rep := &Report{
		Mode:      first.Mode,
		Op:        first.Op,
		MeasureNs: first.MeasureNs,
		SLONs:     first.SLONs,
	}
	merged := &stats.Snapshot{}
	for i, w := range ws {
		r := &w.Report
		if r.Op != rep.Op || r.MeasureNs != rep.MeasureNs {
			return nil, fmt.Errorf("flexload: worker %d ran op %q for %v; cannot combine with op %q for %v",
				i, r.Op, time.Duration(r.MeasureNs), rep.Op, time.Duration(rep.MeasureNs))
		}
		rep.Clients += r.Clients
		rep.Offered += r.Offered
		rep.Issued += r.Issued
		rep.Completed += r.Completed
		rep.Errors += r.Errors
		rep.Timeouts += r.Timeouts
		rep.WithinSLO += r.WithinSLO
		rep.Retries += r.Retries
		rep.Pushbacks += r.Pushbacks
		rep.RetrySuppressed += r.RetrySuppressed
		rep.Sheds += r.Sheds
		rep.QueueDrops += r.QueueDrops
		if r.QueueMax > rep.QueueMax {
			rep.QueueMax = r.QueueMax
		}
		if w.Snapshot != nil {
			merged.Merge(w.Snapshot)
		}
	}
	rep.Merged = merged
	for i := range merged.Ops {
		if merged.Ops[i].Name == rep.Op {
			lat := &merged.Ops[i].Latency
			rep.MeanNs = int64(lat.Mean())
			rep.P50Ns = int64(lat.Quantile(0.50))
			rep.P99Ns = int64(lat.Quantile(0.99))
			rep.P999Ns = int64(lat.Quantile(0.999))
		}
	}
	good := rep.Completed
	if rep.SLONs > 0 {
		good = rep.WithinSLO
	}
	if rep.MeasureNs > 0 {
		rep.GoodputPerSec = float64(good) / time.Duration(rep.MeasureNs).Seconds()
	}
	if rep.Issued > 0 {
		rep.RetriesPerCall = float64(rep.Retries) / float64(rep.Issued)
	}
	return rep, nil
}
