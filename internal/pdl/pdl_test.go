package pdl

import (
	"strings"
	"testing"

	"flexrpc/internal/idl/corba"
	"flexrpc/internal/pres"
)

func fileIOPres(t *testing.T) *pres.Presentation {
	t.Helper()
	f, err := corba.Parse("fileio.idl", `
		interface FileIO {
		    sequence<octet> read(in unsigned long count);
		    void write(in sequence<octet> data);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	return pres.Default(f.Interface("FileIO"), pres.StyleCORBA)
}

// Paper Figure 5: [dealloc(never)] on the read result lets the pipe
// server keep its circular buffer.
func TestFigure5DeallocNever(t *testing.T) {
	base := fileIOPres(t)
	p, err := Apply(base, "server.pdl", `
		interface FileIO {
			read([dealloc(never)] return);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op("read").Result().Dealloc != pres.DeallocNever {
		t.Fatal("dealloc(never) not applied")
	}
	// The base is untouched.
	if base.Op("read").Result().Dealloc != pres.DeallocAlways {
		t.Fatal("Apply mutated the base presentation")
	}
}

// Paper Figures 8 and 9: trashable on the client, preserved on the
// server.
func TestFigures8And9Mutability(t *testing.T) {
	client, err := Apply(fileIOPres(t), "client.pdl", `
		interface FileIO { write([trashable] data); };`)
	if err != nil {
		t.Fatal(err)
	}
	server, err := Apply(fileIOPres(t), "server.pdl", `
		interface FileIO { write([preserved] data); };`)
	if err != nil {
		t.Fatal(err)
	}
	if !client.Op("write").Param("data").Trashable {
		t.Error("trashable not applied")
	}
	if !server.Op("write").Param("data").Preserved {
		t.Error("preserved not applied")
	}
}

// Paper §4.5: trust attributes at interface level.
func TestTrustAttributes(t *testing.T) {
	p, err := Apply(fileIOPres(t), "t.pdl", `
		[leaky] interface FileIO { };`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Trust != pres.TrustLeaky {
		t.Fatalf("trust = %v", p.Trust)
	}
	p, err = Apply(fileIOPres(t), "t.pdl", `
		[leaky, unprotected] interface FileIO { };`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Trust != pres.TrustFull {
		t.Fatalf("trust = %v", p.Trust)
	}
}

// Paper Figure 1: the Linux NFS client declaration combines
// comm_status and special.
func TestFigure1CommStatusAndSpecial(t *testing.T) {
	f, err := corba.Parse("nfs.idl", `
		interface NFS {
			long nfsproc_read(in unsigned long offset, in unsigned long count,
			                  out sequence<octet> data);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	base := pres.Default(f.Interface("NFS"), pres.StyleSun)
	p, err := Apply(base, "nfs.pdl", `
		interface NFS {
			[comm_status] nfsproc_read([special] data);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	op := p.Op("nfsproc_read")
	if !op.CommStatus || !op.Param("data").Special {
		t.Fatalf("op = %+v", op)
	}
}

func TestLengthIs(t *testing.T) {
	f, err := corba.Parse("syslog.idl", `
		interface SysLog {
			void write_msg(in string msg, in long length);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	base := pres.Default(f.Interface("SysLog"), pres.StyleCORBA)
	p, err := Apply(base, "syslog.pdl", `
		interface SysLog { write_msg([length_is(length)] msg); };`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op("write_msg").Param("msg").LengthIs != "length" {
		t.Fatal("length_is not applied")
	}
}

func TestAllocAttr(t *testing.T) {
	p, err := Apply(fileIOPres(t), "t.pdl", `
		interface FileIO { read([alloc(caller)] return); };`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op("read").Result().Alloc != pres.AllocCaller {
		t.Fatal("alloc(caller) not applied")
	}
}

// The central invariant: applying a PDL never alters the network
// contract.
func TestApplyNeverAltersContract(t *testing.T) {
	base := fileIOPres(t)
	before := base.Interface.Signature()
	_, err := Apply(base, "t.pdl", `
		[leaky, unprotected]
		interface FileIO {
			[comm_status] read([dealloc(never), alloc(callee)] return);
			write([trashable] data);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	if base.Interface.Signature() != before {
		t.Fatal("PDL application changed the network contract")
	}
}

func TestApplyErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{`interface Wrong { };`, "does not match"},
		{`interface FileIO { nosuchop(); };`, `operation "nosuchop"`},
		{`interface FileIO { read([trashable] return); };`, "trashable"},
		{`interface FileIO { read([dealloc(sometimes)] return); };`, "dealloc(sometimes)"},
		{`interface FileIO { read([alloc(greedy)] return); };`, "alloc(greedy)"},
		{`interface FileIO { read([frob] return); };`, `unknown parameter attribute "frob"`},
		{`interface FileIO { [frob] read(); };`, `unknown operation attribute "frob"`},
		{`[frob] interface FileIO { };`, `unknown interface attribute "frob"`},
		{`interface FileIO { write([length_is(a,b)] data); };`, "exactly one argument"},
		{`interface FileIO { write([trashable(x)] data); };`, "takes no arguments"},
		{`interface FileIO { write([dealloc] data); };`, "exactly one argument"},
		{`interface FileIO { write([preserved] nosuchparam); };`, `"nosuchparam"`},
	}
	for _, c := range cases {
		_, err := Apply(fileIOPres(t), "t.pdl", c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("src %q:\n  err = %v\n  want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestOnlyDeviationsNeeded(t *testing.T) {
	// A PDL file mentioning one op must leave every other op at the
	// default (paper §3: no need to re-declare everything).
	p, err := Apply(fileIOPres(t), "t.pdl", `
		interface FileIO { read([dealloc(never)] return); };`)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Op("write").Param("data")
	if w.Trashable || w.Preserved || w.Special {
		t.Fatalf("write attrs changed: %+v", w)
	}
}

func TestMultipleInterfaceBlocksAndEmptyFile(t *testing.T) {
	if _, err := Apply(fileIOPres(t), "t.pdl", ``); err != nil {
		t.Fatalf("empty PDL should be valid: %v", err)
	}
	p, err := Apply(fileIOPres(t), "t.pdl", `
		interface FileIO { read([dealloc(never)] return); };
		interface FileIO { write([trashable] data); };`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op("read").Result().Dealloc != pres.DeallocNever || !p.Op("write").Param("data").Trashable {
		t.Fatal("both blocks should apply")
	}
}

// Attribute positions must survive into the applied presentation so
// validation errors and flexvet diagnostics can point at PDL source.
func TestPositionsThreadedIntoPresentation(t *testing.T) {
	p, err := Apply(fileIOPres(t), "pos.pdl",
		"[leaky]\ninterface FileIO {\n    [comm_status] read([dealloc(never)] return);\n};")
	if err != nil {
		t.Fatal(err)
	}
	if pos, ok := p.PosOf("leaky"); !ok || pos.File != "pos.pdl" || pos.Line != 1 {
		t.Errorf("leaky pos = %v, %v; want pos.pdl:1", pos, ok)
	}
	if pos, ok := p.Op("read").PosOf("comm_status"); !ok || pos.Line != 3 {
		t.Errorf("comm_status pos = %v, %v; want line 3", pos, ok)
	}
	r := p.Op("read").Result()
	if pos, ok := r.PosOf("dealloc"); !ok || pos.Line != 3 || pos.Col != 25 {
		t.Errorf("dealloc pos = %v, %v; want pos.pdl:3:25", pos, ok)
	}
	if !r.Explicit("dealloc") || r.Explicit("alloc") {
		t.Error("explicitness must track only applied attributes")
	}
	// Positions survive a Clone without aliasing.
	q := p.Clone()
	q.Op("read").Result().MarkAt("alloc", r.Pos)
	if p.Op("read").Result().Explicit("alloc") {
		t.Error("Clone shares position maps with the original")
	}
}

// Validation errors carry the iface.op.param context and the PDL
// source position of the offending attribute.
func TestValidateErrorsArePositionedAndContextual(t *testing.T) {
	_, err := Apply(fileIOPres(t), "bad.pdl",
		"interface FileIO {\n    write([trashable, preserved] data);\n};")
	if err == nil {
		t.Fatal("expected validation error")
	}
	for _, want := range []string{"bad.pdl:2:23", "FileIO.write.data"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("err = %v, want substring %q", err, want)
		}
	}
}

// ApplyLoose keeps dangling declarations (for the analyzer) and skips
// validation.
func TestApplyLoose(t *testing.T) {
	p, err := ApplyLoose(fileIOPres(t), "loose.pdl",
		"interface FileIO {\n    frob([special] x);\n    write([trashable, preserved] data);\n};")
	if err != nil {
		t.Fatal(err)
	}
	op := p.Op("frob")
	if op == nil || op.Pos.Line != 2 {
		t.Fatalf("dangling op not kept with position: %+v", op)
	}
	if !p.Op("write").Param("data").Trashable {
		t.Error("valid attributes must still apply in loose mode")
	}
	// Unknown attribute names are still parse errors, even loose.
	if _, err := ApplyLoose(fileIOPres(t), "loose.pdl", `interface FileIO { write([frob] data); };`); err == nil {
		t.Error("unknown attribute must fail even in loose mode")
	}
}

func TestMustApplyPanicsOnBadPDL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustApply(fileIOPres(t), "t.pdl", `interface Wrong {};`)
}

func TestValidationRunsAfterApply(t *testing.T) {
	// trashable+preserved passes parsing but must fail validation.
	_, err := Apply(fileIOPres(t), "t.pdl", `
		interface FileIO { write([trashable, preserved] data); };`)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v", err)
	}
}
