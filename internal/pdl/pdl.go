// Package pdl implements the Presentation Definition Language: the
// third compiler stage in which the presentation of an RPC interface
// is modified declaratively (paper §3). The syntax follows DCE's ACF
// format, which the paper cites as its model: attribute lists in
// brackets attach to interfaces, operations, and parameters, and only
// deviations from the default presentation need be declared.
//
//	[leaky, unprotected]
//	interface FileIO {
//	    [comm_status] read([dealloc(never)] return);
//	    write([trashable] data);
//	};
//
// Nothing declared in a PDL file can affect the contract between
// client and server: Apply works on a clone of the presentation and
// validates the result against the interface before returning it.
package pdl

import (
	"fmt"

	"flexrpc/internal/idl"
	"flexrpc/internal/pres"
)

// An attr is one parsed [name] or [name(arg,...)] attribute.
type attr struct {
	name string
	args []string
	pos  idl.Pos
}

// Apply parses PDL source and applies it to a clone of base,
// returning the modified presentation. base is not mutated.
func Apply(base *pres.Presentation, filename, src string) (*pres.Presentation, error) {
	return apply(base, filename, src, true)
}

// ApplyLoose is Apply for lint passes: declarations naming operations
// that do not exist in the interface are applied anyway (creating
// presentation entries a static analyzer can flag with their source
// positions) and the result is not validated. Parse errors and
// unknown attribute names still fail.
func ApplyLoose(base *pres.Presentation, filename, src string) (*pres.Presentation, error) {
	return apply(base, filename, src, false)
}

func apply(base *pres.Presentation, filename, src string, strict bool) (*pres.Presentation, error) {
	p := &parser{Parser: idl.NewParser(filename, src)}
	decls, err := p.parseFile()
	if err != nil {
		return nil, err
	}
	out := base.Clone()
	for _, d := range decls {
		if err := d.apply(out, strict); err != nil {
			return nil, err
		}
	}
	if strict {
		if err := out.Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

type paramDecl struct {
	name  string
	attrs []attr
	pos   idl.Pos
}

type opDecl struct {
	name   string
	attrs  []attr
	params []paramDecl
	pos    idl.Pos
}

type ifaceDecl struct {
	name  string
	attrs []attr
	ops   []opDecl
	pos   idl.Pos
}

type parser struct {
	*idl.Parser
}

func (p *parser) parseFile() ([]ifaceDecl, error) {
	var decls []ifaceDecl
	for {
		eof, err := p.AtEOF()
		if err != nil {
			return nil, err
		}
		if eof {
			return decls, nil
		}
		d, err := p.parseInterface()
		if err != nil {
			return nil, err
		}
		decls = append(decls, *d)
	}
}

// parseAttrs parses an optional bracketed attribute list.
func (p *parser) parseAttrs() ([]attr, error) {
	ok, err := p.Accept("[")
	if err != nil || !ok {
		return nil, err
	}
	var attrs []attr
	for {
		name, pos, err := p.ExpectIdent()
		if err != nil {
			return nil, err
		}
		a := attr{name: name, pos: pos}
		if ok, err := p.Accept("("); err != nil {
			return nil, err
		} else if ok {
			for {
				arg, _, err := p.ExpectIdent()
				if err != nil {
					return nil, err
				}
				a.args = append(a.args, arg)
				more, err := p.Accept(",")
				if err != nil {
					return nil, err
				}
				if !more {
					break
				}
			}
			if err := p.Expect(")"); err != nil {
				return nil, err
			}
		}
		attrs = append(attrs, a)
		more, err := p.Accept(",")
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
	}
	return attrs, p.Expect("]")
}

func (p *parser) parseInterface() (*ifaceDecl, error) {
	attrs, err := p.parseAttrs()
	if err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("interface"); err != nil {
		return nil, err
	}
	name, pos, err := p.ExpectIdent()
	if err != nil {
		return nil, err
	}
	d := &ifaceDecl{name: name, attrs: attrs, pos: pos}
	if err := p.Expect("{"); err != nil {
		return nil, err
	}
	for {
		done, err := p.Accept("}")
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		op, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		d.ops = append(d.ops, *op)
	}
	_, err = p.Accept(";")
	return d, err
}

func (p *parser) parseOp() (*opDecl, error) {
	attrs, err := p.parseAttrs()
	if err != nil {
		return nil, err
	}
	name, pos, err := p.ExpectIdent()
	if err != nil {
		return nil, err
	}
	d := &opDecl{name: name, attrs: attrs, pos: pos}
	if err := p.Expect("("); err != nil {
		return nil, err
	}
	for {
		done, err := p.Accept(")")
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		if len(d.params) > 0 {
			if err := p.Expect(","); err != nil {
				return nil, err
			}
		}
		pattrs, err := p.parseAttrs()
		if err != nil {
			return nil, err
		}
		pname, ppos, err := p.ExpectIdent()
		if err != nil {
			return nil, err
		}
		d.params = append(d.params, paramDecl{name: pname, attrs: pattrs, pos: ppos})
	}
	return d, p.Expect(";")
}

func (d *ifaceDecl) apply(out *pres.Presentation, strict bool) error {
	if d.name != out.Interface.Name {
		return idl.Errorf(d.pos, "pdl: interface %q does not match presentation interface %q",
			d.name, out.Interface.Name)
	}
	for _, a := range d.attrs {
		switch a.name {
		case "leaky":
			if out.Trust < pres.TrustLeaky {
				out.Trust = pres.TrustLeaky
			}
		case "unprotected", "trusted":
			// [trusted] is the shared-memory binding's spelling of the
			// same grant: the peer shares a protection domain, so
			// validation and the per-call ownership protocol may be
			// elided (shmring's arena fast path).
			out.Trust = pres.TrustFull
		case "corba_style":
			out.Style = pres.StyleCORBA
		case "mig_style":
			out.Style = pres.StyleMIG
		default:
			return idl.Errorf(a.pos, "pdl: unknown interface attribute %q", a.name)
		}
		out.MarkAt(a.name, a.pos)
	}
	for _, op := range d.ops {
		if err := op.apply(out, strict); err != nil {
			return err
		}
	}
	return nil
}

func (d *opDecl) apply(out *pres.Presentation, strict bool) error {
	op := out.Op(d.name)
	if op == nil {
		if strict {
			return idl.Errorf(d.pos, "pdl: operation %q not in interface %q", d.name, out.Interface.Name)
		}
		// Loose mode: keep the dangling declaration so the analyzer
		// can report it with its position.
		op = &pres.OpPres{Name: d.name, Params: make(map[string]*pres.ParamAttrs)}
		out.Ops[d.name] = op
	}
	if op.Pos.Line == 0 {
		op.Pos = d.pos
	}
	for _, a := range d.attrs {
		switch a.name {
		case "comm_status":
			op.CommStatus = true
		case "idempotent":
			op.Idempotent = true
		case "batchable":
			op.Batchable = true
		case "hedged":
			op.Hedged = true
		default:
			return idl.Errorf(a.pos, "pdl: unknown operation attribute %q", a.name)
		}
		op.MarkAt(a.name, a.pos)
	}
	for _, pd := range d.params {
		pa := op.Param(pd.name)
		if pa.Pos.Line == 0 {
			pa.Pos = pd.pos
		}
		for _, a := range pd.attrs {
			if err := applyParamAttr(pa, a); err != nil {
				return err
			}
		}
	}
	return nil
}

func applyParamAttr(pa *pres.ParamAttrs, a attr) error {
	oneArg := func() (string, error) {
		if len(a.args) != 1 {
			return "", idl.Errorf(a.pos, "pdl: %s expects exactly one argument", a.name)
		}
		return a.args[0], nil
	}
	noArgs := func() error {
		if len(a.args) != 0 {
			return idl.Errorf(a.pos, "pdl: %s takes no arguments", a.name)
		}
		return nil
	}
	switch a.name {
	case "special":
		if err := noArgs(); err != nil {
			return err
		}
		pa.Special = true
	case "trashable":
		if err := noArgs(); err != nil {
			return err
		}
		pa.Trashable = true
	case "preserved":
		if err := noArgs(); err != nil {
			return err
		}
		pa.Preserved = true
	case "nonunique":
		if err := noArgs(); err != nil {
			return err
		}
		pa.NonUnique = true
	case "traced":
		if err := noArgs(); err != nil {
			return err
		}
		pa.Traced = true
	case "length_is":
		arg, err := oneArg()
		if err != nil {
			return err
		}
		pa.LengthIs = arg
	case "dealloc":
		arg, err := oneArg()
		if err != nil {
			return err
		}
		switch arg {
		case "never":
			pa.Dealloc = pres.DeallocNever
		case "always":
			pa.Dealloc = pres.DeallocAlways
		default:
			return idl.Errorf(a.pos, "pdl: dealloc(%s): want never or always", arg)
		}
	case "alloc":
		arg, err := oneArg()
		if err != nil {
			return err
		}
		switch arg {
		case "caller":
			pa.Alloc = pres.AllocCaller
		case "callee":
			pa.Alloc = pres.AllocCallee
		case "auto":
			pa.Alloc = pres.AllocAuto
		default:
			return idl.Errorf(a.pos, "pdl: alloc(%s): want caller, callee or auto", arg)
		}
	default:
		return idl.Errorf(a.pos, "pdl: unknown parameter attribute %q", a.name)
	}
	pa.MarkAt(a.name, a.pos)
	return nil
}

// MustApply is Apply for tests and examples with known-good PDL; it
// panics on error.
func MustApply(base *pres.Presentation, filename, src string) *pres.Presentation {
	p, err := Apply(base, filename, src)
	if err != nil {
		panic(fmt.Sprintf("pdl.MustApply: %v", err))
	}
	return p
}
