package pdl

import (
	"testing"
	"testing/quick"

	"flexrpc/internal/idl/corba"
	"flexrpc/internal/pres"
)

func TestQuickApplyNeverPanics(t *testing.T) {
	f, err := corba.Parse("f.idl", `
		interface F { sequence<octet> read(in unsigned long n); };`)
	if err != nil {
		t.Fatal(err)
	}
	base := pres.Default(f.Interface("F"), pres.StyleCORBA)
	prop := func(src string) bool {
		_, _ = Apply(base, "fuzz.pdl", src)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// The base must be untouched no matter what was thrown at Apply.
	if base.Op("read").Result().Dealloc != pres.DeallocAlways {
		t.Fatal("fuzzing mutated the base presentation")
	}
}
