// Package pres models RPC presentation: the "programmer's contract"
// between generated stubs and the code that calls or implements them.
//
// A Presentation is always attached to an ir.Interface (the network
// contract) but never alters it; two endpoints of one connection may
// hold arbitrarily different Presentations of the same interface and
// still interoperate. This separation — and the performance won by
// exploiting it — is the central idea of the paper.
package pres

import (
	"fmt"

	"flexrpc/internal/idl"
	"flexrpc/internal/ir"
)

// Style selects the fixed rule-set used to compute an interface's
// default presentation, mirroring the language mappings of existing
// RPC systems.
type Style int

// Presentation styles.
const (
	// StyleCORBA follows the CORBA C mapping: out parameters and
	// results use move semantics (callee allocates, stub/consumer
	// deallocates); in parameters have copy semantics.
	StyleCORBA Style = iota
	// StyleSun follows rpcgen: like CORBA for allocation, XDR wire
	// conventions, results returned through pointers.
	StyleSun
	// StyleMIG follows the Mach Interface Generator for
	// non-copy-on-write parameters: the caller allocates out
	// buffers and the callee fills them in.
	StyleMIG
)

func (s Style) String() string {
	switch s {
	case StyleCORBA:
		return "corba"
	case StyleSun:
		return "sun"
	case StyleMIG:
		return "mig"
	}
	return fmt.Sprintf("Style(%d)", int(s))
}

// AllocPolicy says which side provides storage for a buffer-like
// parameter.
type AllocPolicy int

// Allocation policies.
const (
	// AllocAuto lets the RPC system decide (and adapt to the peer).
	AllocAuto AllocPolicy = iota
	// AllocCaller means the caller provides the buffer and the
	// callee fills it (MIG-style out parameters).
	AllocCaller
	// AllocCallee means the callee allocates the buffer and donates
	// it to the caller (CORBA/COM move semantics).
	AllocCallee
)

func (a AllocPolicy) String() string {
	switch a {
	case AllocAuto:
		return "auto"
	case AllocCaller:
		return "caller"
	case AllocCallee:
		return "callee"
	}
	return fmt.Sprintf("AllocPolicy(%d)", int(a))
}

// DeallocPolicy says whether the stub deallocates a buffer after
// marshaling it (relevant on the side that sends the data).
type DeallocPolicy int

// Deallocation policies.
const (
	// DeallocDefault applies the style's rule (move semantics under
	// CORBA: the stub frees the server's buffer after marshaling).
	DeallocDefault DeallocPolicy = iota
	// DeallocAlways forces the stub to free the buffer.
	DeallocAlways
	// DeallocNever tells the stub the endpoint manages its own
	// storage — the paper's fix for the pipe server's circular
	// buffer (Figure 5).
	DeallocNever
)

func (d DeallocPolicy) String() string {
	switch d {
	case DeallocDefault:
		return "default"
	case DeallocAlways:
		return "always"
	case DeallocNever:
		return "never"
	}
	return fmt.Sprintf("DeallocPolicy(%d)", int(d))
}

// Trust is the degree to which one endpoint trusts its peer; it is a
// presentation attribute because it affects only local guarantees,
// never the network contract (paper §4.5).
type Trust int

// Trust levels, in increasing order of trust.
const (
	// TrustNone: the peer is fully untrusted (default).
	TrustNone Trust = iota
	// TrustLeaky ([leaky]): information may leak to the peer, but
	// the peer must not be able to corrupt us.
	TrustLeaky
	// TrustFull ([leaky,unprotected]): the peer may see and corrupt
	// everything — e.g. a privileged personality server.
	TrustFull
)

func (t Trust) String() string {
	switch t {
	case TrustNone:
		return "none"
	case TrustLeaky:
		return "leaky"
	case TrustFull:
		return "leaky,unprotected"
	}
	return fmt.Sprintf("Trust(%d)", int(t))
}

// ParamAttrs carries the presentation attributes of one parameter
// (or of the operation result, under the pseudo-parameter name
// "return").
type ParamAttrs struct {
	// Alloc selects who provides buffer storage.
	Alloc AllocPolicy
	// Dealloc selects whether the stub frees the buffer after
	// marshaling.
	Dealloc DeallocPolicy
	// Trashable (client side, in parameters): the caller permits
	// its buffer to be trashed during the call.
	Trashable bool
	// Preserved (server side, in parameters): the work function
	// promises not to modify the buffer it receives.
	Preserved bool
	// Special: the parameter is marshaled/unmarshaled by
	// programmer-provided routines ([special]), e.g. the Linux NFS
	// client's copyin/copyout path.
	Special bool
	// LengthIs names a companion integer parameter carrying the
	// explicit length of this buffer ([length_is(param)]).
	LengthIs string
	// NonUnique (port parameters): the receiving task does not need
	// the unique-name invariant for this right ([nonunique]).
	NonUnique bool
	// Traced: the parameter's encoded size is metered into the
	// endpoint's per-op traced counters when stats are enabled
	// ([traced]). Free when stats are off; flexvet FV015 warns when
	// it is combined with [special] hooks on a pooled-client path.
	Traced bool
	// Pos is the source position of the parameter's PDL annotation
	// clause, when the attributes came from a PDL file; the zero
	// value means the attributes were synthesized (Default) or built
	// by hand.
	Pos idl.Pos
	// At records the source position of each explicitly applied
	// annotation, keyed by attribute name ("trashable", "dealloc",
	// ...). It is nil until an annotation is applied; pdl.Apply
	// fills it so validation errors and flexvet diagnostics can
	// point at the PDL source line that caused them.
	At map[string]idl.Pos
}

// MarkAt records that the named attribute was explicitly applied at
// pos (as opposed to synthesized by the default-presentation rules).
func (a *ParamAttrs) MarkAt(attr string, pos idl.Pos) {
	if a.At == nil {
		a.At = make(map[string]idl.Pos)
	}
	a.At[attr] = pos
	if a.Pos.Line == 0 {
		a.Pos = pos
	}
}

// PosOf returns the recorded position of the named attribute and
// whether it was explicitly applied.
func (a *ParamAttrs) PosOf(attr string) (idl.Pos, bool) {
	p, ok := a.At[attr]
	return p, ok
}

// Explicit reports whether the named attribute was explicitly
// applied (by PDL or MarkAt) rather than defaulted.
func (a *ParamAttrs) Explicit(attr string) bool {
	_, ok := a.At[attr]
	return ok
}

// OpPres is the presentation of a single operation.
type OpPres struct {
	Name string
	// Params maps parameter name to attributes; the result uses
	// the ResultParam key.
	Params map[string]*ParamAttrs
	// CommStatus ([comm_status]): RPC failures are reported through
	// a status return instead of an exception environment.
	CommStatus bool
	// Idempotent ([idempotent]): re-executing the operation is
	// harmless, so a retrying client may retransmit it without
	// server-side duplicate suppression. Like every presentation
	// attribute it never changes the network contract — the wire
	// messages of an idempotent op are byte-identical to an
	// unannotated one.
	Idempotent bool
	// Batchable ([batchable]): the operation's calls may be queued
	// briefly and sent to the server merged with other batchable
	// calls in one session frame, trading a bounded added latency for
	// per-call wire and syscall overhead. Like [idempotent] this is
	// endpoint-private: the sub-call bodies inside a batch frame are
	// byte-identical to unbatched ones.
	Batchable bool
	// Hedged ([hedged]): a client may race or aggressively re-send
	// this operation — retry budgets, hedged requests, speculative
	// retries on pushback. It is a client-policy hint, wire-invisible
	// like the others; flexvet flags it on operations whose buffer
	// annotations move ownership, where a shed-then-retry would move
	// the same buffer twice (FV022).
	Hedged bool
	// Pos is the source position of the operation's PDL declaration,
	// when one was applied.
	Pos idl.Pos
	// At records the positions of explicitly applied operation
	// attributes ("comm_status"), keyed by attribute name.
	At map[string]idl.Pos
}

// MarkAt records that the named operation attribute was explicitly
// applied at pos.
func (o *OpPres) MarkAt(attr string, pos idl.Pos) {
	if o.At == nil {
		o.At = make(map[string]idl.Pos)
	}
	o.At[attr] = pos
}

// PosOf returns the recorded position of the named operation
// attribute and whether it was explicitly applied.
func (o *OpPres) PosOf(attr string) (idl.Pos, bool) {
	p, ok := o.At[attr]
	return p, ok
}

// ResultParam is the Params key for the operation result.
const ResultParam = "return"

// Param returns the attributes for the named parameter, creating a
// default entry on first use.
func (o *OpPres) Param(name string) *ParamAttrs {
	if a, ok := o.Params[name]; ok {
		return a
	}
	a := &ParamAttrs{}
	o.Params[name] = a
	return a
}

// Result returns the attributes of the operation result.
func (o *OpPres) Result() *ParamAttrs { return o.Param(ResultParam) }

// A Presentation is one endpoint's programmer's contract for an
// interface. It references the network contract but cannot change it.
type Presentation struct {
	Interface *ir.Interface
	Style     Style
	Ops       map[string]*OpPres
	// Trust is the connection-level trust this endpoint extends to
	// its peer.
	Trust Trust
	// At records the positions of explicitly applied interface-level
	// attributes ("leaky", "unprotected", ...), keyed by name.
	At map[string]idl.Pos
}

// MarkAt records that the named interface attribute was explicitly
// applied at pos.
func (p *Presentation) MarkAt(attr string, pos idl.Pos) {
	if p.At == nil {
		p.At = make(map[string]idl.Pos)
	}
	p.At[attr] = pos
}

// PosOf returns the recorded position of the named interface
// attribute and whether it was explicitly applied.
func (p *Presentation) PosOf(attr string) (idl.Pos, bool) {
	pos, ok := p.At[attr]
	return pos, ok
}

// Default computes the standard presentation for iface under the
// given style's fixed rules. A PDL file is only needed to deviate
// from this (paper §3).
func Default(iface *ir.Interface, style Style) *Presentation {
	p := &Presentation{
		Interface: iface,
		Style:     style,
		Ops:       make(map[string]*OpPres),
	}
	for i := range iface.Ops {
		op := &iface.Ops[i]
		po := &OpPres{Name: op.Name, Params: make(map[string]*ParamAttrs)}
		for _, param := range op.Params {
			po.Params[param.Name] = defaultParamAttrs(param.Type, param.Dir, style)
		}
		if op.HasResult() {
			po.Params[ResultParam] = defaultParamAttrs(op.Result, ir.Out, style)
		}
		p.Ops[op.Name] = po
	}
	return p
}

func defaultParamAttrs(t *ir.Type, dir ir.Direction, style Style) *ParamAttrs {
	a := &ParamAttrs{}
	if !isBufferType(t) {
		return a
	}
	switch dir {
	case In:
		// In parameters: copy semantics under every fixed style —
		// the stub must assume neither trashable nor preserved.
	case Out, InOut:
		switch style {
		case StyleCORBA, StyleSun:
			a.Alloc = AllocCallee
			a.Dealloc = DeallocAlways
		case StyleMIG:
			a.Alloc = AllocCaller
		}
	}
	return a
}

// Aliases for ir directions, letting this file read like the paper.
const (
	In    = ir.In
	Out   = ir.Out
	InOut = ir.InOut
)

// IsBuffer reports whether t is a buffer-like wire type — one whose
// local representation occupies storage that allocation, deallocation
// and mutability annotations can meaningfully govern.
func IsBuffer(t *ir.Type) bool {
	if t == nil {
		return false
	}
	switch t.Kind {
	case ir.Bytes, ir.FixedBytes, ir.String, ir.Seq, ir.Array, ir.Struct:
		return true
	}
	return false
}

func isBufferType(t *ir.Type) bool { return IsBuffer(t) }

// Op returns the presentation of the named operation, or nil.
func (p *Presentation) Op(name string) *OpPres { return p.Ops[name] }

// Clone returns a deep copy sharing the (immutable) interface.
func (p *Presentation) Clone() *Presentation {
	q := &Presentation{
		Interface: p.Interface,
		Style:     p.Style,
		Ops:       make(map[string]*OpPres, len(p.Ops)),
		Trust:     p.Trust,
		At:        clonePosMap(p.At),
	}
	for name, op := range p.Ops {
		cp := &OpPres{
			Name:       op.Name,
			Params:     make(map[string]*ParamAttrs, len(op.Params)),
			CommStatus: op.CommStatus,
			Idempotent: op.Idempotent,
			Batchable:  op.Batchable,
			Hedged:     op.Hedged,
			Pos:        op.Pos,
			At:         clonePosMap(op.At),
		}
		for pn, pa := range op.Params {
			dup := *pa
			dup.At = clonePosMap(pa.At)
			cp.Params[pn] = &dup
		}
		q.Ops[name] = cp
	}
	return q
}

func clonePosMap(m map[string]idl.Pos) map[string]idl.Pos {
	if m == nil {
		return nil
	}
	cp := make(map[string]idl.Pos, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// Validate checks the presentation's internal consistency against
// its interface: every annotated operation and parameter must exist,
// length_is must reference an integer parameter of the same
// operation and direction, and attributes must be applicable to the
// parameter's type and direction. A valid presentation can never
// alter the network contract.
func (p *Presentation) Validate() error {
	for name, op := range p.Ops {
		irOp := p.Interface.Op(name)
		if irOp == nil {
			return errAt(op.Pos, "pres: %s.%s: operation %q not in interface %s",
				p.Interface.Name, name, name, p.Interface.Name)
		}
		for pn, pa := range op.Params {
			ctx := fmt.Sprintf("%s.%s.%s", p.Interface.Name, name, pn)
			var t *ir.Type
			var dir ir.Direction
			if pn == ResultParam {
				if !irOp.HasResult() {
					return errAt(pa.Pos, "pres: %s: operation has no result to annotate", ctx)
				}
				t, dir = irOp.Result, ir.Out
			} else {
				found := false
				for _, param := range irOp.Params {
					if param.Name == pn {
						t, dir, found = param.Type, param.Dir, true
						break
					}
				}
				if !found {
					return errAt(pa.Pos, "pres: %s.%s: parameter %q not in operation", p.Interface.Name, name, pn)
				}
			}
			if err := validateAttrs(ctx, irOp, pa, t, dir); err != nil {
				return err
			}
		}
	}
	return nil
}

// errAt builds an error carrying pos when one was recorded; the zero
// position falls back to an unpositioned error.
func errAt(pos idl.Pos, format string, args ...any) error {
	if pos.Line == 0 {
		return fmt.Errorf(format, args...)
	}
	return idl.Errorf(pos, format, args...)
}

// attrPos picks the most precise recorded position for an attribute:
// the attribute's own PDL position, else the parameter clause's.
func attrPos(a *ParamAttrs, attr string) idl.Pos {
	if p, ok := a.PosOf(attr); ok {
		return p
	}
	return a.Pos
}

func validateAttrs(ctx string, op *ir.Operation, a *ParamAttrs, t *ir.Type, dir ir.Direction) error {
	if a.Trashable && dir != ir.In && dir != ir.InOut {
		return errAt(attrPos(a, "trashable"), "pres: %s: trashable applies only to in parameters", ctx)
	}
	if a.Preserved && dir != ir.In && dir != ir.InOut {
		return errAt(attrPos(a, "preserved"), "pres: %s: preserved applies only to in parameters", ctx)
	}
	if a.Trashable && a.Preserved {
		return errAt(attrPos(a, "preserved"), "pres: %s: trashable and preserved are mutually exclusive", ctx)
	}
	if (a.Alloc != AllocAuto || a.Dealloc != DeallocDefault) && !isBufferType(t) {
		pos := attrPos(a, "alloc")
		if p, ok := a.PosOf("dealloc"); ok {
			pos = p
		}
		return errAt(pos, "pres: %s: allocation attributes require a buffer type, have %s", ctx, t.Signature())
	}
	if a.NonUnique && t.Kind != ir.Port {
		return errAt(attrPos(a, "nonunique"), "pres: %s: nonunique applies only to port parameters", ctx)
	}
	if a.LengthIs != "" {
		var lt *ir.Type
		for _, param := range op.Params {
			if param.Name == a.LengthIs {
				lt = param.Type
			}
		}
		if lt == nil {
			return errAt(attrPos(a, "length_is"), "pres: %s: length_is(%s): no such parameter", ctx, a.LengthIs)
		}
		switch lt.Kind {
		case ir.Int32, ir.Uint32, ir.Int64, ir.Uint64:
		default:
			return errAt(attrPos(a, "length_is"), "pres: %s: length_is(%s): parameter is %s, need integer",
				ctx, a.LengthIs, lt.Signature())
		}
	}
	return nil
}
