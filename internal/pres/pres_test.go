package pres

import (
	"strings"
	"testing"

	"flexrpc/internal/ir"
)

// fileIO builds the paper's Figure 3 interface:
//
//	interface FileIO {
//	    sequence<octet> read(in unsigned long count);
//	    void write(in sequence<octet> data);
//	};
func fileIO() *ir.Interface {
	return &ir.Interface{
		Name: "FileIO",
		Ops: []ir.Operation{
			{
				Name:   "read",
				Params: []ir.Param{{Name: "count", Type: ir.Uint32Type, Dir: ir.In}},
				Result: ir.BytesType,
			},
			{
				Name:   "write",
				Params: []ir.Param{{Name: "data", Type: ir.BytesType, Dir: ir.In}},
				Result: ir.VoidType,
			},
		},
	}
}

func TestDefaultCORBAMoveSemantics(t *testing.T) {
	p := Default(fileIO(), StyleCORBA)
	r := p.Op("read").Result()
	if r.Alloc != AllocCallee || r.Dealloc != DeallocAlways {
		t.Fatalf("CORBA result attrs = %+v, want callee-alloc move semantics", r)
	}
	// In parameters default to copy semantics: neither trashable
	// nor preserved.
	w := p.Op("write").Param("data")
	if w.Trashable || w.Preserved {
		t.Fatalf("in-param attrs = %+v, want plain copy semantics", w)
	}
}

func TestDefaultMIGCallerAlloc(t *testing.T) {
	p := Default(fileIO(), StyleMIG)
	r := p.Op("read").Result()
	if r.Alloc != AllocCaller {
		t.Fatalf("MIG result alloc = %v, want caller", r.Alloc)
	}
	if r.Dealloc != DeallocDefault {
		t.Fatalf("MIG result dealloc = %v, want default", r.Dealloc)
	}
}

func TestScalarParamsGetNoAllocAttrs(t *testing.T) {
	p := Default(fileIO(), StyleCORBA)
	c := p.Op("read").Param("count")
	if c.Alloc != AllocAuto || c.Dealloc != DeallocDefault {
		t.Fatalf("scalar attrs = %+v, want zero attrs", c)
	}
}

func TestValidateAcceptsPaperFigure5(t *testing.T) {
	// Figure 5 applies [dealloc(never)] to the read result.
	p := Default(fileIO(), StyleCORBA)
	p.Op("read").Result().Dealloc = DeallocNever
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsUnknownOpAndParam(t *testing.T) {
	p := Default(fileIO(), StyleCORBA)
	p.Ops["bogus"] = &OpPres{Name: "bogus", Params: map[string]*ParamAttrs{}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v, want unknown-operation error", err)
	}
	p = Default(fileIO(), StyleCORBA)
	p.Op("read").Param("nosuch").Trashable = true
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("err = %v, want unknown-parameter error", err)
	}
}

func TestValidateRejectsTrashableOnOut(t *testing.T) {
	p := Default(fileIO(), StyleCORBA)
	p.Op("read").Result().Trashable = true
	if err := p.Validate(); err == nil {
		t.Fatal("trashable on a result should be rejected")
	}
}

func TestValidateRejectsTrashablePlusPreserved(t *testing.T) {
	p := Default(fileIO(), StyleCORBA)
	a := p.Op("write").Param("data")
	a.Trashable = true
	a.Preserved = true
	if err := p.Validate(); err == nil {
		t.Fatal("trashable+preserved should be rejected")
	}
}

func TestValidateRejectsAllocOnScalar(t *testing.T) {
	p := Default(fileIO(), StyleCORBA)
	p.Op("read").Param("count").Alloc = AllocCaller
	if err := p.Validate(); err == nil {
		t.Fatal("alloc attribute on scalar should be rejected")
	}
}

func TestValidateRejectsNonUniqueOnNonPort(t *testing.T) {
	p := Default(fileIO(), StyleCORBA)
	p.Op("write").Param("data").NonUnique = true
	if err := p.Validate(); err == nil {
		t.Fatal("nonunique on non-port should be rejected")
	}
}

func TestValidateLengthIs(t *testing.T) {
	iface := &ir.Interface{
		Name: "SysLog",
		Ops: []ir.Operation{{
			Name: "write_msg",
			Params: []ir.Param{
				{Name: "msg", Type: ir.StringType, Dir: ir.In},
				{Name: "length", Type: ir.Int32Type, Dir: ir.In},
			},
			Result: ir.VoidType,
		}},
	}
	p := Default(iface, StyleCORBA)
	p.Op("write_msg").Param("msg").LengthIs = "length"
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Op("write_msg").Param("msg").LengthIs = "missing"
	if err := p.Validate(); err == nil {
		t.Fatal("length_is referencing a missing param should be rejected")
	}
	p.Op("write_msg").Param("msg").LengthIs = "msg" // not an integer
	if err := p.Validate(); err == nil {
		t.Fatal("length_is referencing a non-integer param should be rejected")
	}
}

func TestValidateResultOnVoidOp(t *testing.T) {
	p := Default(fileIO(), StyleCORBA)
	p.Op("write").Params[ResultParam] = &ParamAttrs{Dealloc: DeallocNever}
	if err := p.Validate(); err == nil {
		t.Fatal("annotating the result of a void op should be rejected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := Default(fileIO(), StyleCORBA)
	q := p.Clone()
	q.Op("read").Result().Dealloc = DeallocNever
	q.Trust = TrustFull
	if p.Op("read").Result().Dealloc == DeallocNever {
		t.Error("clone shares ParamAttrs with original")
	}
	if p.Trust != TrustNone {
		t.Error("clone shares trust with original")
	}
	if q.Interface != p.Interface {
		t.Error("clone should share the immutable interface")
	}
}

// Property required by the paper: nothing declared in a presentation
// can affect the contract between client and server. Mutating every
// presentation attribute must leave the interface signature
// unchanged.
func TestPresentationNeverAltersContract(t *testing.T) {
	iface := fileIO()
	before := iface.Signature()
	p := Default(iface, StyleCORBA)
	for _, op := range p.Ops {
		for _, a := range op.Params {
			a.Alloc = AllocCaller
			a.Dealloc = DeallocNever
			a.Special = true
		}
		op.CommStatus = true
	}
	p.Trust = TrustFull
	if got := iface.Signature(); got != before {
		t.Fatalf("contract changed:\nbefore %s\nafter  %s", before, got)
	}
}

func TestTrustOrderingAndStrings(t *testing.T) {
	if !(TrustNone < TrustLeaky && TrustLeaky < TrustFull) {
		t.Fatal("trust levels must be ordered")
	}
	if TrustFull.String() != "leaky,unprotected" {
		t.Fatalf("TrustFull = %q", TrustFull.String())
	}
	if StyleMIG.String() != "mig" || AllocCallee.String() != "callee" || DeallocNever.String() != "never" {
		t.Fatal("stringers disagree with paper vocabulary")
	}
}
