package cdr

import "testing"

// FuzzDecoder drives the CDR decoder over arbitrary bytes in both
// byte orders: the first input byte seeds which primitive is read
// next, the second selects the order, the rest is the wire buffer.
// The decoder must never panic, never hand back more bytes than the
// input holds, and never let Remaining go negative.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder(BigEndian)
	e.PutInt32(-5)
	e.PutString("hello")
	e.PutOctetSeq([]byte{1, 2, 3})
	e.PutUint64(1 << 40)
	e.PutBool(true)
	f.Add(append([]byte{0, 0}, e.Bytes()...))
	le := NewEncoder(LittleEndian)
	le.PutUint32(7)
	le.PutString("bye")
	f.Add(append([]byte{3, 1}, le.Bytes()...))
	f.Add([]byte{9, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		sel, wire := data[0], data[2:]
		order := BigEndian
		if data[1]&1 == 1 {
			order = LittleEndian
		}
		d := NewDecoder(wire, order)
		d.MaxLength = 1 << 20
		var scratch [16]byte
		for i := 0; i < 64; i++ {
			before := d.Remaining()
			var err error
			switch (int(sel) + i) % 10 {
			case 0:
				_, err = d.Bool()
			case 1:
				_, err = d.Int32()
			case 2:
				_, err = d.Uint64()
			case 3:
				_, err = d.Uint16()
			case 4:
				var s string
				if s, err = d.String(); err == nil && len(s) > len(wire) {
					t.Fatalf("string of %d bytes from %d input bytes", len(s), len(wire))
				}
			case 5:
				var b []byte
				if b, err = d.OctetSeq(); err == nil && len(b) > len(wire) {
					t.Fatalf("octet seq of %d bytes from %d input bytes", len(b), len(wire))
				}
			case 6:
				_, err = d.Octet()
			case 7:
				_, err = d.FixedOctets(8)
			case 8:
				err = d.FixedOctetsInto(scratch[:4])
			case 9:
				var n int
				if n, err = d.SeqLen(); err == nil && uint32(n) > d.MaxLength {
					t.Fatalf("seq length %d exceeds MaxLength %d", n, d.MaxLength)
				}
			}
			if d.Remaining() < 0 || d.Remaining() > before {
				t.Fatalf("Remaining went from %d to %d", before, d.Remaining())
			}
			if err != nil {
				return
			}
		}
	})
}
