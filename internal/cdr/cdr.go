// Package cdr implements the CORBA Common Data Representation, the
// wire encoding used by CORBA GIOP-style transports. Unlike XDR, CDR
// aligns each primitive to its natural boundary (relative to the
// start of the message) and supports both byte orders, flagged in the
// message header.
package cdr

import (
	"errors"
	"fmt"
)

// ByteOrder selects the encoding byte order of a CDR stream.
type ByteOrder int

const (
	// BigEndian encodes most-significant byte first.
	BigEndian ByteOrder = iota
	// LittleEndian encodes least-significant byte first.
	LittleEndian
)

func (o ByteOrder) String() string {
	if o == LittleEndian {
		return "little-endian"
	}
	return "big-endian"
}

var (
	// ErrShortBuffer is returned when a decode runs off the end of
	// the input.
	ErrShortBuffer = errors.New("cdr: short buffer")
	// ErrBadString is returned when a CDR string is not NUL
	// terminated or has a zero length word.
	ErrBadString = errors.New("cdr: malformed string")
	// ErrLengthOverflow is returned when a sequence declares a
	// length exceeding the decoder's limit.
	ErrLengthOverflow = errors.New("cdr: declared length exceeds limit")
)

// DefaultMaxLength bounds variable-length items during decode.
const DefaultMaxLength = 64 << 20

// An Encoder marshals CDR items. Alignment is computed relative to
// the first encoded byte, as in a GIOP message body.
type Encoder struct {
	buf   []byte
	order ByteOrder
}

// NewEncoder returns an Encoder using the given byte order.
func NewEncoder(order ByteOrder) *Encoder {
	return &Encoder{order: order}
}

// Bytes returns the encoded data.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Order returns the encoder's byte order.
func (e *Encoder) Order() ByteOrder { return e.order }

// Reset discards all encoded data but retains the buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// ResetTo re-aims the encoder at caller-provided storage: encoded
// data is appended into buf's backing array, capped at len(buf), so a
// marshaler can target a transport's fixed buffer (an fbuf arena)
// directly. Encoding past the cap falls back to append's reallocation
// — callers detect that by comparing backing arrays.
func (e *Encoder) ResetTo(buf []byte) { e.buf = buf[:0:len(buf)] }

// Align pads the stream with zero bytes to an n-byte boundary.
// n must be a power of two.
func (e *Encoder) Align(n int) {
	for len(e.buf)%n != 0 {
		e.buf = append(e.buf, 0)
	}
}

// PutOctet encodes a single byte (no alignment).
func (e *Encoder) PutOctet(v byte) { e.buf = append(e.buf, v) }

// PutBool encodes a CDR boolean as one octet.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutOctet(1)
	} else {
		e.PutOctet(0)
	}
}

// PutUint16 encodes an unsigned short, aligned to 2.
func (e *Encoder) PutUint16(v uint16) {
	e.Align(2)
	if e.order == BigEndian {
		e.buf = append(e.buf, byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf, byte(v), byte(v>>8))
	}
}

// PutUint32 encodes an unsigned long, aligned to 4.
func (e *Encoder) PutUint32(v uint32) {
	e.Align(4)
	if e.order == BigEndian {
		e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

// PutInt32 encodes a long, aligned to 4.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutUint64 encodes an unsigned long long, aligned to 8.
func (e *Encoder) PutUint64(v uint64) {
	e.Align(8)
	if e.order == BigEndian {
		e.buf = append(e.buf,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		e.buf = append(e.buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
}

// PutInt64 encodes a long long, aligned to 8.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutString encodes a CDR string: aligned length word counting the
// terminating NUL, then the bytes, then the NUL.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s) + 1))
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, 0)
}

// PutOctetSeq encodes a sequence<octet>: aligned length word then the
// raw bytes (octets have no alignment).
func (e *Encoder) PutOctetSeq(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// PutFixedOctets encodes a fixed array of octets as raw bytes — no
// length word, no alignment — in one append.
func (e *Encoder) PutFixedOctets(b []byte) {
	e.buf = append(e.buf, b...)
}

// PutSeqLen encodes the element count of a general sequence; the
// caller then encodes each element.
func (e *Encoder) PutSeqLen(n int) { e.PutUint32(uint32(n)) }

// A Decoder unmarshals CDR items.
type Decoder struct {
	buf   []byte
	off   int
	order ByteOrder
	// MaxLength bounds variable-length items; zero means
	// DefaultMaxLength.
	MaxLength uint32
}

// NewDecoder returns a Decoder for buf in the given byte order.
func NewDecoder(buf []byte, order ByteOrder) *Decoder {
	return &Decoder{buf: buf, order: order}
}

// Reset re-aims the decoder at a new buffer, rewinding it and keeping
// the byte order. Hot paths use this to reuse one Decoder across
// messages without allocating.
func (d *Decoder) Reset(buf []byte) {
	d.buf = buf
	d.off = 0
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Order returns the decoder's byte order.
func (d *Decoder) Order() ByteOrder { return d.order }

func (d *Decoder) maxLen() uint32 {
	if d.MaxLength == 0 {
		return DefaultMaxLength
	}
	return d.MaxLength
}

// Align skips pad bytes to an n-byte boundary.
func (d *Decoder) Align(n int) error {
	for d.off%n != 0 {
		if d.off >= len(d.buf) {
			return ErrShortBuffer
		}
		d.off++
	}
	return nil
}

// Octet decodes a single byte.
func (d *Decoder) Octet() (byte, error) {
	if d.Remaining() < 1 {
		return 0, ErrShortBuffer
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

// Bool decodes a CDR boolean octet; any nonzero value is true.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Octet()
	return v != 0, err
}

// Uint16 decodes an unsigned short.
func (d *Decoder) Uint16() (uint16, error) {
	if err := d.Align(2); err != nil {
		return 0, err
	}
	if d.Remaining() < 2 {
		return 0, ErrShortBuffer
	}
	b := d.buf[d.off:]
	d.off += 2
	if d.order == BigEndian {
		return uint16(b[0])<<8 | uint16(b[1]), nil
	}
	return uint16(b[1])<<8 | uint16(b[0]), nil
}

// Uint32 decodes an unsigned long.
func (d *Decoder) Uint32() (uint32, error) {
	if err := d.Align(4); err != nil {
		return 0, err
	}
	if d.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	b := d.buf[d.off:]
	d.off += 4
	if d.order == BigEndian {
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
	}
	return uint32(b[3])<<24 | uint32(b[2])<<16 | uint32(b[1])<<8 | uint32(b[0]), nil
}

// Int32 decodes a long.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes an unsigned long long.
func (d *Decoder) Uint64() (uint64, error) {
	if err := d.Align(8); err != nil {
		return 0, err
	}
	if d.Remaining() < 8 {
		return 0, ErrShortBuffer
	}
	b := d.buf[d.off:]
	d.off += 8
	var v uint64
	if d.order == BigEndian {
		for i := 0; i < 8; i++ {
			v = v<<8 | uint64(b[i])
		}
	} else {
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
	}
	return v, nil
}

// Int64 decodes a long long.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// String decodes a CDR string, validating the NUL terminator.
func (d *Decoder) String() (string, error) {
	n, err := d.Uint32()
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", ErrBadString
	}
	if n > d.maxLen() {
		return "", fmt.Errorf("%w: %d", ErrLengthOverflow, n)
	}
	if d.Remaining() < int(n) {
		return "", ErrShortBuffer
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	if b[n-1] != 0 {
		return "", ErrBadString
	}
	return string(b[:n-1]), nil
}

// OctetSeq decodes a sequence<octet>. The returned slice aliases the
// decoder's buffer.
func (d *Decoder) OctetSeq() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > d.maxLen() {
		return nil, fmt.Errorf("%w: %d", ErrLengthOverflow, n)
	}
	if d.Remaining() < int(n) {
		return nil, ErrShortBuffer
	}
	b := d.buf[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

// FixedOctets decodes n raw octets (no length word, no alignment).
// The returned slice aliases the decoder's buffer.
func (d *Decoder) FixedOctets(n int) ([]byte, error) {
	if n < 0 || d.Remaining() < n {
		return nil, ErrShortBuffer
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b, nil
}

// FixedOctetsInto decodes len(dst) raw octets directly into dst in
// one bulk copy, avoiding any intermediate allocation.
func (d *Decoder) FixedOctetsInto(dst []byte) error {
	if d.Remaining() < len(dst) {
		return ErrShortBuffer
	}
	copy(dst, d.buf[d.off:])
	d.off += len(dst)
	return nil
}

// SeqLen decodes a sequence element count.
func (d *Decoder) SeqLen() (int, error) {
	n, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	if n > d.maxLen() {
		return 0, fmt.Errorf("%w: %d", ErrLengthOverflow, n)
	}
	return int(n), nil
}
