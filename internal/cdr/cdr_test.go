package cdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAlignmentPads(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutOctet(0xAA)
	e.PutUint32(1) // must pad 3 bytes first
	want := []byte{0xAA, 0, 0, 0, 0, 0, 0, 1}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("wire = %x, want %x", e.Bytes(), want)
	}
	d := NewDecoder(e.Bytes(), BigEndian)
	o, _ := d.Octet()
	v, err := d.Uint32()
	if err != nil || o != 0xAA || v != 1 {
		t.Fatalf("decode = %x %d %v", o, v, err)
	}
}

func TestUint64Alignment(t *testing.T) {
	e := NewEncoder(LittleEndian)
	e.PutUint32(7)
	e.PutUint64(0x0102030405060708)
	if len(e.Bytes()) != 16 {
		t.Fatalf("len = %d, want 16 (4 data + 4 pad + 8)", len(e.Bytes()))
	}
	d := NewDecoder(e.Bytes(), LittleEndian)
	v32, _ := d.Uint32()
	v64, err := d.Uint64()
	if err != nil || v32 != 7 || v64 != 0x0102030405060708 {
		t.Fatalf("decode = %d %x %v", v32, v64, err)
	}
}

func TestBothByteOrders(t *testing.T) {
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		e := NewEncoder(order)
		e.PutUint16(0x1234)
		e.PutUint32(0xDEADBEEF)
		e.PutInt64(-5)
		d := NewDecoder(e.Bytes(), order)
		v16, _ := d.Uint16()
		v32, _ := d.Uint32()
		v64, err := d.Int64()
		if err != nil || v16 != 0x1234 || v32 != 0xDEADBEEF || v64 != -5 {
			t.Errorf("%v: decode = %x %x %d %v", order, v16, v32, v64, err)
		}
	}
}

func TestLittleEndianWire(t *testing.T) {
	e := NewEncoder(LittleEndian)
	e.PutUint32(0x01020304)
	if !bytes.Equal(e.Bytes(), []byte{4, 3, 2, 1}) {
		t.Fatalf("wire = %x", e.Bytes())
	}
}

func TestStringWire(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutString("hi")
	want := []byte{0, 0, 0, 3, 'h', 'i', 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("wire = %x, want %x", e.Bytes(), want)
	}
	s, err := NewDecoder(e.Bytes(), BigEndian).String()
	if err != nil || s != "hi" {
		t.Fatalf("String = %q, %v", s, err)
	}
}

func TestStringValidation(t *testing.T) {
	// Missing NUL terminator.
	bad := []byte{0, 0, 0, 2, 'h', 'i'}
	if _, err := NewDecoder(bad, BigEndian).String(); err != ErrBadString {
		t.Errorf("err = %v, want ErrBadString", err)
	}
	// Zero length word is invalid (must count the NUL).
	bad = []byte{0, 0, 0, 0}
	if _, err := NewDecoder(bad, BigEndian).String(); err != ErrBadString {
		t.Errorf("err = %v, want ErrBadString", err)
	}
}

func TestOctetSeq(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutOctetSeq([]byte{9, 8, 7})
	got, err := NewDecoder(e.Bytes(), BigEndian).OctetSeq()
	if err != nil || !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("OctetSeq = %v, %v", got, err)
	}
}

func TestShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{0, 0}, BigEndian)
	if _, err := d.Uint32(); err != ErrShortBuffer {
		t.Errorf("Uint32 err = %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 9, 'x'}, BigEndian)
	if _, err := d.OctetSeq(); err != ErrShortBuffer {
		t.Errorf("OctetSeq err = %v", err)
	}
}

func TestLengthLimit(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutUint32(1 << 30)
	d := NewDecoder(e.Bytes(), BigEndian)
	d.MaxLength = 1024
	if _, err := d.SeqLen(); err == nil {
		t.Error("expected overflow error")
	}
}

// Property: a mixed record round-trips in both byte orders, and
// decoding with the opposite order never silently succeeds with the
// same multi-byte values (for values whose byte-swap differs).
func TestQuickRoundTrip(t *testing.T) {
	f := func(o byte, u16 uint16, u32 uint32, i64 int64, s string, seq []byte, le bool) bool {
		order := BigEndian
		if le {
			order = LittleEndian
		}
		e := NewEncoder(order)
		e.PutOctet(o)
		e.PutUint16(u16)
		e.PutUint32(u32)
		e.PutInt64(i64)
		e.PutString(s)
		e.PutOctetSeq(seq)
		d := NewDecoder(e.Bytes(), order)
		go1, _ := d.Octet()
		g16, _ := d.Uint16()
		g32, _ := d.Uint32()
		g64, _ := d.Int64()
		gs, _ := d.String()
		gseq, err := d.OctetSeq()
		return err == nil && go1 == o && g16 == u16 && g32 == u32 &&
			g64 == i64 && gs == s && bytes.Equal(gseq, seq) && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encoded primitives always land on their natural
// alignment boundary.
func TestQuickAlignmentInvariant(t *testing.T) {
	f := func(pre []byte, u32 uint32, u64 uint64) bool {
		if len(pre) > 32 {
			pre = pre[:32]
		}
		e := NewEncoder(BigEndian)
		for _, b := range pre {
			e.PutOctet(b)
		}
		before := e.Len()
		e.PutUint32(u32)
		// The 4 value bytes start at an offset divisible by 4.
		off32 := e.Len() - 4
		e.PutUint64(u64)
		off64 := e.Len() - 8
		return off32%4 == 0 && off64%8 == 0 && off32 >= before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderExhaustionEverywhere(t *testing.T) {
	// Each primitive must fail cleanly at every truncation point.
	e := NewEncoder(BigEndian)
	e.PutOctet(1)
	e.PutUint16(2)
	e.PutUint32(3)
	e.PutUint64(4)
	e.PutString("abc")
	wire := e.Bytes()
	for n := 0; n < len(wire); n++ {
		d := NewDecoder(wire[:n], BigEndian)
		_, err1 := d.Octet()
		_, err2 := d.Uint16()
		_, err3 := d.Uint32()
		_, err4 := d.Uint64()
		_, err5 := d.String()
		if err1 == nil && err2 == nil && err3 == nil && err4 == nil && err5 == nil {
			t.Fatalf("prefix %d decoded fully without error", n)
		}
	}
	// The full buffer decodes.
	d := NewDecoder(wire, BigEndian)
	if _, err := d.Octet(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Uint16(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Uint32(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Uint64(); err != nil {
		t.Fatal(err)
	}
	if s, err := d.String(); err != nil || s != "abc" {
		t.Fatalf("string = %q, %v", s, err)
	}
}

func TestAlignSkipsExactPadding(t *testing.T) {
	d := NewDecoder([]byte{0xAA, 0, 0, 0, 0, 0, 0, 7}, BigEndian)
	if _, err := d.Octet(); err != nil {
		t.Fatal(err)
	}
	if err := d.Align(4); err != nil {
		t.Fatal(err)
	}
	v, err := d.Uint32()
	if err != nil || v != 7 {
		t.Fatalf("aligned word = %d, %v", v, err)
	}
	// Align at end of buffer with leftover pad requirement fails.
	d2 := NewDecoder([]byte{1}, BigEndian)
	if _, err := d2.Octet(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Align(4); err == nil {
		// Align to 4 from offset 1 with no bytes left: must fail...
		// unless offset already aligned; offset is 1, so error.
		t.Fatal("align past end should fail")
	}
}

func TestStringLengthLimit(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.PutUint32(1 << 30)
	d := NewDecoder(e.Bytes(), BigEndian)
	d.MaxLength = 64
	if _, err := d.String(); err == nil {
		t.Fatal("oversized string length should fail")
	}
	dd := NewDecoder(e.Bytes(), BigEndian)
	dd.MaxLength = 64
	if _, err := dd.OctetSeq(); err == nil {
		t.Fatal("oversized seq length should fail")
	}
}

func TestOrderAccessors(t *testing.T) {
	if NewEncoder(LittleEndian).Order() != LittleEndian {
		t.Fatal("encoder order")
	}
	if NewDecoder(nil, BigEndian).Order() != BigEndian {
		t.Fatal("decoder order")
	}
	if BigEndian.String() != "big-endian" || LittleEndian.String() != "little-endian" {
		t.Fatal("order strings")
	}
}
