package conformance

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexrpc/internal/core"
	"flexrpc/internal/netsim"
	"flexrpc/internal/pres"
	"flexrpc/internal/runtime"
	"flexrpc/internal/stats"
	"flexrpc/internal/sunrpc"
	"flexrpc/internal/transport/faultconn"
	"flexrpc/internal/transport/inproc"
	"flexrpc/internal/transport/pipeconn"
	"flexrpc/internal/transport/shmring"
	"flexrpc/internal/transport/suntcp"
)

// The canonical contract: every parameter direction, octet
// sequences, a [special]-marshaled parameter, an [idempotent]
// operation, an always-failing operation and a blocking one for
// deadline behavior.
const confIDL = `
	interface Conf {
	    long add(in long a, in long b);
	    sequence<octet> concat(in sequence<octet> a, in sequence<octet> b);
	    void exchange(inout sequence<octet> data, out unsigned long sum);
	    sequence<octet> stamp(in sequence<octet> data);
	    long bump(in long n);
	    void fail(in string msg);
	    void hang();
	};`

const confPDL = `interface Conf {
    [idempotent] bump();
    stamp([special] data);
};`

// confHooks are the [special] marshal hooks for stamp.data. They are
// value-transparent — the wire bytes are exactly what the default
// marshal would produce — so the in-process cell (which never
// marshals and therefore never runs them) observes the same values
// as every message transport.
type confHooks struct{}

func (confHooks) EncodeSpecial(op, param string, enc runtime.Encoder, v runtime.Value) error {
	enc.PutBytes(v.([]byte))
	return nil
}

func (confHooks) DecodeSpecial(op, param string, dec runtime.Decoder) (runtime.Value, error) {
	b, err := dec.Bytes()
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// world is one compiled contract plus a live dispatcher; every cell
// gets a fresh one so execution counts are per-cell.
type world struct {
	p     *pres.Presentation
	disp  *runtime.Dispatcher
	execs atomic.Int64 // exchange handler executions (at-most-once witness)
}

func newWorld(t testing.TB) *world {
	t.Helper()
	compiled, err := core.Compile(core.Options{
		Frontend: core.FrontendCORBA, Filename: "conf.idl", Source: confIDL,
		PDL: confPDL, PDLFilename: "conf.pdl",
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &world{p: compiled.Pres, disp: runtime.NewDispatcher(compiled.Pres)}
	w.disp.SetHooks(confHooks{})
	w.disp.Handle("add", func(c *runtime.Call) error {
		c.SetResult(c.Arg(0).(int32) + c.Arg(1).(int32))
		return nil
	})
	w.disp.Handle("concat", func(c *runtime.Call) error {
		a, b := c.Arg(0).([]byte), c.Arg(1).([]byte)
		out := make([]byte, 0, len(a)+len(b))
		c.SetResult(append(append(out, a...), b...))
		return nil
	})
	w.disp.Handle("exchange", func(c *runtime.Call) error {
		w.execs.Add(1)
		in := c.Arg(0).([]byte)
		rev := make([]byte, len(in))
		var sum uint32
		for i, bb := range in {
			rev[len(in)-1-i] = bb
			sum += uint32(bb)
		}
		c.SetOut(0, rev)
		c.SetOut(1, sum)
		return nil
	})
	w.disp.Handle("stamp", func(c *runtime.Call) error {
		in := c.Arg(0).([]byte)
		out := make([]byte, len(in))
		for i, bb := range in {
			out[i] = bb ^ 0x5A
		}
		c.SetResult(out)
		return nil
	})
	w.disp.Handle("bump", func(c *runtime.Call) error {
		c.SetResult(c.Arg(0).(int32) + 1)
		return nil
	})
	w.disp.Handle("fail", func(c *runtime.Call) error {
		return errors.New(c.Arg(0).(string))
	})
	w.disp.Handle("hang", func(c *runtime.Call) error {
		// Cooperative when the transport forwards the caller's
		// context (inproc), self-bounded when it cannot — so a
		// deadline cell never wedges a serve loop for good.
		select {
		case <-c.Context().Done():
			return c.Context().Err()
		case <-time.After(100 * time.Millisecond):
			return nil
		}
	})
	return w
}

func (w *world) plan(t testing.TB) *runtime.Plan {
	t.Helper()
	plan, err := runtime.NewPlan(w.p, runtime.XDRCodec, confHooks{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func (w *world) session(t testing.TB) *runtime.SessionServer {
	t.Helper()
	return runtime.NewSessionServer(w.disp, w.plan(t), runtime.NewReplyCache(runtime.DefaultReplyCacheSize))
}

// invoker is the slice of client surface the matrix drives: both the
// marshal-based runtime.Client and the same-domain inproc.Conn
// satisfy it, including the shared observability interface.
type invoker interface {
	Invoke(op string, args []runtime.Value, outBufs [][]byte, retBuf []byte) ([]runtime.Value, runtime.Value, error)
	InvokeContext(ctx context.Context, op string, args []runtime.Value, outBufs [][]byte, retBuf []byte) ([]runtime.Value, runtime.Value, error)
	EnableStats() *stats.Endpoint
	Stats() *stats.Snapshot
}

// loopConn is the minimal message transport: marshaled request in,
// marshaled reply out, one memcpy each way, no framing of its own.
type loopConn struct {
	mu   sync.Mutex
	disp *runtime.Dispatcher
	plan *runtime.Plan
	enc  runtime.Encoder
}

func (l *loopConn) Call(opIdx int, req, replyBuf []byte) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.enc.Reset()
	l.disp.ServeMessageContext(context.Background(), l.plan, opIdx, req, l.enc)
	return append(replyBuf[:0], l.enc.Bytes()...), nil
}

func (l *loopConn) Close() error { return nil }

// sessLoop carries at-most-once session frames straight into a
// SessionServer, copying each reply the way a real wire would.
type sessLoop struct {
	mu   sync.Mutex
	sess *runtime.SessionServer
}

func (l *sessLoop) Call(opIdx int, req, replyBuf []byte) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	frame := l.sess.Handle(context.Background(), opIdx, req)
	return append(replyBuf[:0], frame...), nil
}

func (l *sessLoop) Close() error { return nil }

func confPolicy() runtime.RetryPolicy {
	return runtime.RetryPolicy{
		MaxAttempts:    8,
		AttemptTimeout: 50 * time.Millisecond,
		BaseBackoff:    200 * time.Microsecond,
		MaxBackoff:     2 * time.Millisecond,
		Seed:           11,
	}
}

func robustOpts() runtime.RobustOptions {
	return runtime.RobustOptions{ClientID: 1, AtMostOnce: true, Policy: confPolicy()}
}

// faultProfile injects deterministic (seeded) message loss in both
// directions — recoverable faults the session layer must mask.
func faultProfile() faultconn.Profile {
	return faultconn.Profile{Seed: 42, DropRequest: 0.03, DropReply: 0.03}
}

func newClient(t testing.TB, w *world, conn runtime.Conn) invoker {
	t.Helper()
	client, err := runtime.NewClient(w.p, runtime.XDRCodec, conn, confHooks{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// A cell is one transport × session combination plus its documented
// place in the error taxonomy.
type cell struct {
	name string
	// direct marks the same-domain in-process cell: no marshal, no
	// wire bytes, and application errors keep their identity.
	direct bool
	// failClass is how a handler error surfaces: "app" (returned
	// as-is, direct call) or "remote" (a RemoteError from the wire).
	failClass string
	// failCarriesMsg is whether the handler's error text survives
	// the trip; Sun RPC's bare accept_stat (SYSTEM_ERR) drops it.
	failCarriesMsg bool
	build          func(t *testing.T, w *world) invoker
}

func cells() []cell {
	return []cell{
		{
			name: "inproc/plain", direct: true, failClass: "app", failCarriesMsg: true,
			build: func(t *testing.T, w *world) invoker {
				conn, err := inproc.Connect(w.p, w.disp)
				if err != nil {
					t.Fatal(err)
				}
				return conn
			},
		},
		{
			name: "loopback/plain", failClass: "remote", failCarriesMsg: true,
			build: func(t *testing.T, w *world) invoker {
				return newClient(t, w, &loopConn{disp: w.disp, plan: w.plan(t), enc: runtime.XDRCodec.NewEncoder()})
			},
		},
		{
			name: "loopback/robust", failClass: "remote", failCarriesMsg: true,
			build: func(t *testing.T, w *world) invoker {
				return newClient(t, w, runtime.NewRobustConn(&sessLoop{sess: w.session(t)}, w.p, robustOpts()))
			},
		},
		{
			name: "loopback/robust+fault", failClass: "remote", failCarriesMsg: true,
			build: func(t *testing.T, w *world) invoker {
				faulty := faultconn.New(faultProfile()).Wrap(&sessLoop{sess: w.session(t)})
				return newClient(t, w, runtime.NewRobustConn(faulty, w.p, robustOpts()))
			},
		},
		{
			name: "pipe/plain", failClass: "remote", failCarriesMsg: true,
			build: func(t *testing.T, w *world) invoker {
				conn, srv := pipeconn.New(w.disp, w.plan(t))
				go func() { _ = srv.Serve(context.Background()) }()
				return newClient(t, w, conn)
			},
		},
		{
			name: "pipe/robust", failClass: "remote", failCarriesMsg: true,
			build: func(t *testing.T, w *world) invoker {
				conn, srv := pipeconn.New(w.disp, w.plan(t))
				sess := w.session(t)
				go func() { _ = srv.ServeSession(context.Background(), sess) }()
				return newClient(t, w, runtime.NewRobustConn(conn, w.p, robustOpts()))
			},
		},
		{
			name: "pipe/robust+fault", failClass: "remote", failCarriesMsg: true,
			build: func(t *testing.T, w *world) invoker {
				conn, srv := pipeconn.New(w.disp, w.plan(t))
				sess := w.session(t)
				go func() { _ = srv.ServeSession(context.Background(), sess) }()
				faulty := faultconn.New(faultProfile()).Wrap(conn)
				return newClient(t, w, runtime.NewRobustConn(faulty, w.p, robustOpts()))
			},
		},
		{
			name: "shm/plain", failClass: "remote", failCarriesMsg: true,
			build: func(t *testing.T, w *world) invoker {
				conn, srv := shmring.New(w.disp, w.plan(t))
				go func() { _ = srv.Serve(context.Background()) }()
				return newClient(t, w, conn)
			},
		},
		{
			name: "shm/robust", failClass: "remote", failCarriesMsg: true,
			build: func(t *testing.T, w *world) invoker {
				conn, srv := shmring.New(w.disp, w.plan(t))
				sess := w.session(t)
				go func() { _ = srv.ServeSession(context.Background(), sess) }()
				return newClient(t, w, runtime.NewRobustConn(conn, w.p, robustOpts()))
			},
		},
		{
			name: "shm/robust+fault", failClass: "remote", failCarriesMsg: true,
			build: func(t *testing.T, w *world) invoker {
				conn, srv := shmring.New(w.disp, w.plan(t))
				sess := w.session(t)
				go func() { _ = srv.ServeSession(context.Background(), sess) }()
				faulty := faultconn.New(faultProfile()).Wrap(conn)
				return newClient(t, w, runtime.NewRobustConn(faulty, w.p, robustOpts()))
			},
		},
		{
			name: "suntcp/plain", failClass: "remote", failCarriesMsg: false,
			build: func(t *testing.T, w *world) invoker {
				srv := suntcp.NewServer(w.disp, w.plan(t))
				cc, sc := netsim.BufferedPipe(netsim.LinkParams{}, 64)
				go func() { _ = srv.ServeConn(sc) }()
				t.Cleanup(func() { cc.Close(); sc.Close() })
				return newClient(t, w, suntcp.Dial(cc, w.p))
			},
		},
		{
			name: "suntcp/robust", failClass: "remote", failCarriesMsg: true,
			build: func(t *testing.T, w *world) invoker {
				srv := suntcp.NewSessionServer(w.session(t), w.p.Interface)
				cc, sc := netsim.BufferedPipe(netsim.LinkParams{}, 64)
				go func() { _ = srv.ServeConn(sc) }()
				t.Cleanup(func() { cc.Close(); sc.Close() })
				return newClient(t, w, runtime.NewRobustConn(suntcp.Dial(cc, w.p), w.p, robustOpts()))
			},
		},
		{
			name: "suntcp/robust+fault", failClass: "remote", failCarriesMsg: true,
			build: func(t *testing.T, w *world) invoker {
				srv := suntcp.NewSessionServer(w.session(t), w.p.Interface)
				cc, sc := netsim.BufferedPipe(netsim.LinkParams{}, 64)
				go func() { _ = srv.ServeConn(sc) }()
				t.Cleanup(func() { cc.Close(); sc.Close() })
				faulty := faultconn.New(faultProfile()).Wrap(suntcp.Dial(cc, w.p))
				return newClient(t, w, runtime.NewRobustConn(faulty, w.p, robustOpts()))
			},
		},
	}
}

// classify maps a call error into the cross-transport taxonomy.
func classify(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	}
	var rerr *runtime.RemoteError
	var serr *sunrpc.RemoteError
	if errors.As(err, &rerr) || errors.As(err, &serr) {
		return "remote"
	}
	return "app"
}

func opStats(t *testing.T, snap *stats.Snapshot, name string) stats.OpSnapshot {
	t.Helper()
	for _, op := range snap.Ops {
		if op.Name == name {
			return op
		}
	}
	t.Fatalf("snapshot has no op %q", name)
	return stats.OpSnapshot{}
}

// TestMatrix runs the canonical call sequence through every cell and
// asserts identical results, the documented error taxonomy, exactly-
// once execution of the non-idempotent operation, and that the
// observability layer reports through the same interface everywhere.
func TestMatrix(t *testing.T) {
	for _, tc := range cells() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			w := newWorld(t)
			inv := tc.build(t, w)
			inv.EnableStats().EnableTracing(256)

			// Two passes: under the fault cells the second pass runs
			// on a session with retry/replay history behind it.
			for pass := 0; pass < 2; pass++ {
				// in params, scalar result.
				_, ret, err := inv.Invoke("add", []runtime.Value{int32(20), int32(22)}, nil, nil)
				if err != nil || ret.(int32) != 42 {
					t.Fatalf("add = %v, %v", ret, err)
				}

				// in sequences, sequence result.
				_, ret, err = inv.Invoke("concat",
					[]runtime.Value{[]byte("conform"), []byte("ance")}, nil, nil)
				if err != nil || !bytes.Equal(ret.([]byte), []byte("conformance")) {
					t.Fatalf("concat = %q, %v", ret, err)
				}

				// Same call through the borrow path: a caller-provided
				// result buffer must not change the value seen.
				retBuf := make([]byte, 32)
				_, ret, err = inv.Invoke("concat",
					[]runtime.Value{[]byte("bor"), []byte("row")}, nil, retBuf)
				if err != nil || !bytes.Equal(ret.([]byte), []byte("borrow")) {
					t.Fatalf("concat into retBuf = %q, %v", ret, err)
				}

				// inout + out parameters.
				data := []byte{1, 2, 3, 250}
				outs, _, err := inv.Invoke("exchange", []runtime.Value{data, nil}, nil, nil)
				if err != nil {
					t.Fatalf("exchange: %v", err)
				}
				if !bytes.Equal(outs[0].([]byte), []byte{250, 3, 2, 1}) {
					t.Fatalf("exchange data = %v", outs[0])
				}
				if outs[1].(uint32) != 256 {
					t.Fatalf("exchange sum = %v", outs[1])
				}

				// [special]-marshaled parameter.
				_, ret, err = inv.Invoke("stamp", []runtime.Value{[]byte("Paper")}, nil, nil)
				if err != nil {
					t.Fatalf("stamp: %v", err)
				}
				want := []byte("Paper")
				for i := range want {
					want[i] ^= 0x5A
				}
				if !bytes.Equal(ret.([]byte), want) {
					t.Fatalf("stamp = %v, want %v", ret, want)
				}

				// [idempotent] operation.
				_, ret, err = inv.Invoke("bump", []runtime.Value{int32(7)}, nil, nil)
				if err != nil || ret.(int32) != 8 {
					t.Fatalf("bump = %v, %v", ret, err)
				}

				// Error taxonomy: a handler error surfaces with the
				// cell's documented class and fidelity.
				_, _, err = inv.Invoke("fail", []runtime.Value{"boom"}, nil, nil)
				if got := classify(err); got != tc.failClass {
					t.Fatalf("fail classified %q (%v), want %q", got, err, tc.failClass)
				}
				if carries := err != nil && strings.Contains(err.Error(), "boom"); carries != tc.failCarriesMsg {
					t.Fatalf("fail error %q: message fidelity = %v, want %v", err, carries, tc.failCarriesMsg)
				}
			}

			// At-most-once: the non-idempotent exchange handler ran
			// exactly once per client call, retries and replays
			// notwithstanding.
			if n := w.execs.Load(); n != 2 {
				t.Fatalf("exchange executed %d times for 2 calls", n)
			}

			// Every transport reports through the same stats surface.
			snap := inv.Stats()
			if add := opStats(t, snap, "add"); add.Calls != 2 || add.Errors != 0 || add.Latency.Count != 2 {
				t.Fatalf("add stats: %+v", add)
			}
			if fail := opStats(t, snap, "fail"); fail.Calls != 2 || fail.Errors != 2 {
				t.Fatalf("fail stats: %+v", fail)
			}
			if conc := opStats(t, snap, "concat"); !tc.direct && (conc.BytesOut == 0 || conc.BytesIn == 0) {
				t.Fatalf("concat moved no bytes: %+v", conc)
			}
			if len(snap.Trace) == 0 {
				t.Fatal("tracing enabled but no trace events recorded")
			}
		})
	}
}

// TestMatrixDeadline drives the blocking operation under a short
// per-call deadline in every cell: the call must come back promptly
// and classify as a deadline, and the stats layer must count it as a
// timeout, over every transport.
func TestMatrixDeadline(t *testing.T) {
	for _, tc := range cells() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			w := newWorld(t)
			inv := tc.build(t, w)
			inv.EnableStats()

			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, _, err := inv.InvokeContext(ctx, "hang", nil, nil, nil)
			if got := classify(err); got != "deadline" {
				t.Fatalf("hang classified %q (%v), want deadline", got, err)
			}
			if took := time.Since(start); took > 2*time.Second {
				t.Fatalf("deadline took %v to surface", took)
			}
			if hang := opStats(t, inv.Stats(), "hang"); hang.Timeouts != 1 || hang.Errors != 1 {
				t.Fatalf("hang stats: %+v", hang)
			}
		})
	}
}
