package conformance

import (
	"bytes"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"flexrpc/internal/netpoll"
	"flexrpc/internal/netsim"
	"flexrpc/internal/runtime"
	"flexrpc/internal/stats"
	"flexrpc/internal/transport/faultconn"
	"flexrpc/internal/transport/suntcp"
)

// socketpairConns builds a connected pair of real-descriptor stream
// sockets, so the server half is eligible for netpoll registration
// (netsim pipes expose no descriptor and would silently fall back).
func socketpairConns(t *testing.T) (client, server net.Conn) {
	t.Helper()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		t.Fatalf("socketpair: %v", err)
	}
	mk := func(fd int, name string) net.Conn {
		f := os.NewFile(uintptr(fd), name)
		defer f.Close() // net.FileConn dups the descriptor
		c, err := net.FileConn(f)
		if err != nil {
			t.Fatalf("FileConn: %v", err)
		}
		return c
	}
	return mk(fds[0], "sp-client"), mk(fds[1], "sp-server")
}

// TestMatrixManyConns is the connection-scaling conformance cell: 512
// concurrent connections, each with its own client, robust session and
// deterministic fault injector, all terminating in ONE server. The
// same workload runs against the serial (n=1) path and the shared
// worker-pool (n=8) path, and the invariants must be identical in
// both: every reply reaches its own connection un-cross-wired, the
// error taxonomy is unchanged, and the non-idempotent handler executes
// exactly once per successful call — retransmits hit the reply cache,
// never the handler — no matter which execution engine served them.
func TestMatrixManyConns(t *testing.T) {
	const conns = 512
	const callsPer = 4

	run := func(t *testing.T, concurrency int, useNetpoll bool) {
		w := newWorld(t)
		// The cache must retain every reply for the run's duration: 512
		// clients x 9 calls each is ~4.6k distinct (cid,seq) keys, and
		// an evicted entry would let a late retransmit re-execute.
		sess := runtime.NewSessionServer(w.disp, w.plan(t),
			runtime.NewReplyCacheSharded(16*conns, 16))
		srv := suntcp.NewSessionServer(sess, w.p.Interface)
		srv.SetConcurrency(concurrency)
		e := stats.New(nil)
		srv.SetStats(e)
		if useNetpoll {
			srv.SetNetpoll(true)
		}

		var exchanges atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < conns; i++ {
			var cc, sc net.Conn
			if useNetpoll {
				cc, sc = socketpairConns(t)
			} else {
				cc, sc = netsim.BufferedPipe(netsim.LinkParams{}, 16)
			}
			go func() { _ = srv.ServeConn(sc) }()
			t.Cleanup(func() { cc.Close(); sc.Close() })

			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Per-connection session identity: at-most-once replay
				// state must be tracked per client, not globally.
				opts := robustOpts()
				opts.ClientID = uint32(i + 1)
				// 512 simultaneous clients under the race detector on a
				// small box inflate per-call latency well past the
				// default 50ms attempt budget — the netpoll mode worst
				// of all, since its readiness loop multiplexes every
				// conn over min(GOMAXPROCS, shards) pollers. The cell
				// checks correctness invariants, not latency — widen
				// the attempt window so retries measure faults, not
				// scheduler pressure.
				opts.Policy.AttemptTimeout = 500 * time.Millisecond
				opts.Policy.MaxBackoff = 5 * time.Millisecond
				faulty := faultconn.New(faultProfile()).Wrap(suntcp.Dial(cc, w.p))
				conn := runtime.NewRobustConn(faulty, w.p, opts)
				defer conn.Close()
				client, err := runtime.NewClient(w.p, runtime.XDRCodec, conn, confHooks{})
				if err != nil {
					t.Error(err)
					return
				}
				defer client.Close()

				for j := 0; j < callsPer; j++ {
					// Non-idempotent inout/out call with per-connection
					// payload: catches cross-wired replies AND feeds the
					// at-most-once witness.
					data := []byte{byte(i), byte(i >> 8), byte(j), 250}
					outs, _, err := client.Invoke("exchange", []runtime.Value{data, nil}, nil, nil)
					if err != nil {
						t.Errorf("conn %d exchange %d: %v", i, j, err)
						return
					}
					if want := []byte{250, byte(j), byte(i >> 8), byte(i)}; !bytes.Equal(outs[0].([]byte), want) {
						t.Errorf("conn %d exchange %d: got %v, want %v (cross-wired reply)", i, j, outs[0], want)
						return
					}
					if want := uint32(250) + uint32(byte(i)) + uint32(i>>8) + uint32(j); outs[1].(uint32) != want {
						t.Errorf("conn %d exchange %d: sum %v, want %d", i, j, outs[1], want)
						return
					}
					exchanges.Add(1)

					// Result identity for a plain scalar op.
					if _, ret, err := client.Invoke("add", []runtime.Value{int32(i), int32(j)}, nil, nil); err != nil || ret.(int32) != int32(i+j) {
						t.Errorf("conn %d add %d = %v, %v", i, j, ret, err)
						return
					}
				}

				// Error taxonomy at scale: a handler error is still a
				// RemoteError, nothing else.
				if _, _, err := client.Invoke("fail", []runtime.Value{"boom"}, nil, nil); classify(err) != "remote" {
					t.Errorf("conn %d fail classified %q (%v), want remote", i, classify(err), err)
				}
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			return
		}

		// At-most-once, independent of the execution engine: the
		// deterministic fault profile forced retransmits on many of
		// these connections, and every one of them must have been
		// answered from the reply cache.
		if got, want := w.execs.Load(), exchanges.Load(); got != want {
			t.Fatalf("exchange executed %d times for %d successful calls", got, want)
		}
		if exchanges.Load() != conns*callsPer {
			t.Fatalf("only %d/%d exchanges succeeded", exchanges.Load(), conns*callsPer)
		}

		// On platforms with a poller, every socketpair connection must
		// have been served by the event-driven path, not the fallback.
		if useNetpoll && netpoll.Supported() {
			if got := e.Snapshot().PollerConnsRegistered; got != conns {
				t.Fatalf("netpoll registered %d conns, want %d (fallback leak)", got, conns)
			}
		}
	}

	t.Run("serial", func(t *testing.T) { run(t, 1, false) })
	t.Run("shared-pool", func(t *testing.T) { run(t, 8, false) })
	// Same invariants when the readiness loop replaces per-conn reader
	// goroutines: replies stay un-cross-wired, at-most-once holds, and
	// the error taxonomy is unchanged.
	t.Run("netpoll", func(t *testing.T) { run(t, 8, true) })
}
