package conformance

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"flexrpc/internal/netsim"
	"flexrpc/internal/runtime"
	"flexrpc/internal/transport/faultconn"
	"flexrpc/internal/transport/suntcp"
)

// TestMatrixConcurrentClients is the multicore-scaling conformance
// cell: 8 client goroutines hammer one connection through the full
// robust stack — runtime.Client → RobustConn → faultconn (3% drops
// each way) → Sun RPC wire → concurrent worker-pool server →
// SHARDED at-most-once reply cache. The invariants must be exactly
// the ones the serial matrix pins: every reply reaches its caller
// un-cross-wired, the non-idempotent handler executes exactly once
// per successful call no matter how many retransmits the faults
// force, and the error taxonomy is unchanged.
func TestMatrixConcurrentClients(t *testing.T) {
	const goroutines = 8
	const callsPer = 30

	w := newWorld(t)
	sess := runtime.NewSessionServer(w.disp, w.plan(t),
		runtime.NewReplyCacheSharded(runtime.DefaultReplyCacheSize, goroutines))
	srv := suntcp.NewSessionServer(sess, w.p.Interface)
	srv.SetConcurrency(goroutines)

	cc, sc := netsim.BufferedPipe(netsim.LinkParams{}, 64)
	go func() { _ = srv.ServeConn(sc) }()
	t.Cleanup(func() { cc.Close(); sc.Close() })

	// One shared session conn (RobustConn is concurrency-safe; the
	// Sun RPC client demultiplexes concurrent calls by xid), one
	// serializing runtime.Client per goroutine.
	faulty := faultconn.New(faultProfile()).Wrap(suntcp.Dial(cc, w.p))
	conn := runtime.NewRobustConn(faulty, w.p, robustOpts())
	t.Cleanup(func() { conn.Close() })

	var successes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client, err := runtime.NewClient(w.p, runtime.XDRCodec, conn, confHooks{})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < callsPer; i++ {
				// Non-idempotent inout/out call with per-goroutine
				// payload: catches cross-wired replies AND feeds the
				// at-most-once witness.
				data := []byte{byte(g), byte(i), 3, 250}
				outs, _, err := client.Invoke("exchange", []runtime.Value{data, nil}, nil, nil)
				if err != nil {
					t.Errorf("g%d exchange %d: %v", g, i, err)
					return
				}
				if want := []byte{250, 3, byte(i), byte(g)}; !bytes.Equal(outs[0].([]byte), want) {
					t.Errorf("g%d exchange %d: got %v, want %v (cross-wired reply)", g, i, outs[0], want)
					return
				}
				if want := uint32(253) + uint32(g) + uint32(i); outs[1].(uint32) != want {
					t.Errorf("g%d exchange %d: sum %v, want %d", g, i, outs[1], want)
					return
				}
				successes.Add(1)

				// The error taxonomy must survive concurrency: a
				// handler error is still a RemoteError, nothing else.
				if _, _, err := client.Invoke("fail", []runtime.Value{"boom"}, nil, nil); classify(err) != "remote" {
					t.Errorf("g%d fail %d classified %q (%v), want remote", g, i, classify(err), err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// At-most-once under concurrency: retransmits hit the sharded
	// cache, never the handler.
	if got := w.execs.Load(); got != successes.Load() {
		t.Fatalf("exchange executed %d times for %d successful calls", got, successes.Load())
	}
}
