package conformance

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexrpc/internal/netsim"
	"flexrpc/internal/runtime"
	"flexrpc/internal/transport/shmring"
	"flexrpc/internal/transport/suntcp"
)

// The overload cells: admission control installed in front of the
// session layer, over the in-process loopback, the Sun RPC stream,
// and the shared-memory ring. The pushback protocol is a session-
// layer construct, so every transport must surface the identical
// taxonomy: *runtime.ErrOverloaded out of the retry loop, with the
// server's advisory RetryAfter intact, and errors.Is(err,
// runtime.ErrDraining) discriminating a drain from momentary load.

// overloadWorld is a world plus the admission-controlled session
// server shared by every overload cell builder.
type overloadWorld struct {
	*world
	adm   *runtime.Admission
	cache *runtime.ReplyCache
	sess  *runtime.SessionServer
}

func newOverloadWorld(t testing.TB, opts runtime.AdmissionOptions) *overloadWorld {
	t.Helper()
	w := newWorld(t)
	ow := &overloadWorld{
		world: w,
		adm:   runtime.NewAdmission(opts),
		cache: runtime.NewReplyCache(runtime.DefaultReplyCacheSize),
	}
	ow.sess = runtime.NewSessionServer(w.disp, w.plan(t), ow.cache)
	ow.sess.SetAdmission(ow.adm)
	return ow
}

type overloadCell struct {
	name  string
	build func(t *testing.T, ow *overloadWorld) invoker
}

func overloadCells() []overloadCell {
	return []overloadCell{
		{
			name: "loopback/admission",
			build: func(t *testing.T, ow *overloadWorld) invoker {
				return newClient(t, ow.world, runtime.NewRobustConn(&sessLoop{sess: ow.sess}, ow.p, robustOpts()))
			},
		},
		{
			name: "suntcp/admission",
			build: func(t *testing.T, ow *overloadWorld) invoker {
				srv := suntcp.NewSessionServer(ow.sess, ow.p.Interface)
				cc, sc := netsim.BufferedPipe(netsim.LinkParams{}, 64)
				go func() { _ = srv.ServeConn(sc) }()
				t.Cleanup(func() { cc.Close(); sc.Close() })
				return newClient(t, ow.world, runtime.NewRobustConn(suntcp.Dial(cc, ow.p), ow.p, robustOpts()))
			},
		},
		{
			name: "shm/admission",
			build: func(t *testing.T, ow *overloadWorld) invoker {
				conn, srv := shmring.New(ow.disp, ow.plan(t))
				go func() { _ = srv.ServeSession(context.Background(), ow.sess) }()
				return newClient(t, ow.world, runtime.NewRobustConn(conn, ow.p, robustOpts()))
			},
		},
	}
}

// classifyOverload extends the matrix taxonomy with the pushback
// classes: "overload" for a shed call, "draining" for a drain.
func classifyOverload(err error) string {
	var ov *runtime.ErrOverloaded
	if errors.As(err, &ov) {
		if ov.Draining {
			return "draining"
		}
		return "overload"
	}
	return classify(err)
}

// TestOverloadPushbackTaxonomy saturates the admission controller
// (the capacity is consumed out-of-band, as concurrent peers would)
// and asserts every transport surfaces the identical wire-visible
// pushback: classified "overload", carrying the server's advisory
// RetryAfter, not matching ErrDraining. Releasing the capacity makes
// the same call succeed — the controller sheds, it does not wedge.
func TestOverloadPushbackTaxonomy(t *testing.T) {
	const retryAfter = 3 * time.Millisecond
	for _, tc := range overloadCells() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ow := newOverloadWorld(t, runtime.AdmissionOptions{
				MaxInflight: 2, RetryAfter: retryAfter,
			})
			inv := tc.build(t, ow)
			st := inv.EnableStats()
			ow.adm.SetStats(st) // one endpoint covers client and controller

			// Fill the server: two foreign admissions hold the global cap.
			if ow.adm.Admit(90, false) != nil || ow.adm.Admit(91, false) != nil {
				t.Fatal("pre-fill admissions rejected")
			}
			_, _, err := inv.Invoke("add", []runtime.Value{int32(1), int32(2)}, nil, nil)
			if got := classifyOverload(err); got != "overload" {
				t.Fatalf("saturated call classified %q (%v), want overload", got, err)
			}
			var ov *runtime.ErrOverloaded
			if !errors.As(err, &ov) {
				t.Fatalf("saturated call error %T, want *runtime.ErrOverloaded", err)
			}
			if ov.RetryAfter != retryAfter {
				t.Fatalf("pushback RetryAfter = %v, want %v", ov.RetryAfter, retryAfter)
			}
			if errors.Is(err, runtime.ErrDraining) {
				t.Fatal("overload pushback matched ErrDraining")
			}
			if snap := inv.Stats(); snap.Pushbacks == 0 {
				t.Fatalf("client recorded no pushbacks: %+v", snap)
			}

			// Release the capacity: the same call now admits and runs.
			ow.adm.Release(90)
			ow.adm.Release(91)
			_, ret, err := inv.Invoke("add", []runtime.Value{int32(20), int32(22)}, nil, nil)
			if err != nil || ret.(int32) != 42 {
				t.Fatalf("post-release add = %v, %v", ret, err)
			}
			if sheds := st.Snapshot().Sheds; sheds == 0 {
				t.Fatal("server endpoint recorded no sheds")
			}
		})
	}
}

// TestOverloadShedAndRetryAtMostOnce drives the non-idempotent
// exchange operation into a shed-then-retry: the first attempt is
// pushed back (capacity held elsewhere), the capacity frees while the
// client honors RetryAfter, and the retry executes. At-most-once
// must hold exactly as without admission control: one execution per
// successful call, because a pushed-back attempt never reached the
// dispatcher.
func TestOverloadShedAndRetryAtMostOnce(t *testing.T) {
	for _, tc := range overloadCells() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ow := newOverloadWorld(t, runtime.AdmissionOptions{
				MaxInflight: 1, RetryAfter: time.Millisecond,
			})
			inv := tc.build(t, ow)
			inv.EnableStats()

			const calls = 20
			for i := 0; i < calls; i++ {
				// Hold the only slot, free it shortly after the first
				// attempt has been pushed back.
				if ow.adm.Admit(77, false) != nil {
					t.Fatal("pre-fill admission rejected")
				}
				release := make(chan struct{})
				go func() {
					time.Sleep(500 * time.Microsecond)
					ow.adm.Release(77)
					close(release)
				}()
				data := []byte{1, 2, 3}
				outs, _, err := inv.Invoke("exchange", []runtime.Value{data, nil}, nil, nil)
				<-release
				if err != nil {
					t.Fatalf("call %d: %v", i, err)
				}
				if got := outs[1].(uint32); got != 6 {
					t.Fatalf("call %d: sum = %d, want 6", i, got)
				}
			}
			if n := ow.execs.Load(); n != calls {
				t.Fatalf("exchange executed %d times for %d successful calls", n, calls)
			}
			snap := inv.Stats()
			if snap.Pushbacks == 0 {
				t.Fatalf("shed-and-retry loop saw no pushbacks: %+v", snap)
			}
		})
	}
}

// TestOverloadDrainExactlyOnce races concurrent in-flight calls with
// Drain under -race: every call either completes normally (executing
// exactly once) or surfaces the draining taxonomy (executing zero
// times), the successful count matches the execution witness, drain
// flushes the reply cache, and concurrent Drains are safe.
func TestOverloadDrainExactlyOnce(t *testing.T) {
	for _, tc := range overloadCells() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ow := newOverloadWorld(t, runtime.AdmissionOptions{
				RetryAfter: time.Millisecond,
			})
			inv := tc.build(t, ow)
			inv.EnableStats()

			// Warm calls both prove the path and populate the cache.
			for i := 0; i < 4; i++ {
				if _, _, err := inv.Invoke("exchange", []runtime.Value{[]byte{9}, nil}, nil, nil); err != nil {
					t.Fatalf("warm call %d: %v", i, err)
				}
			}
			if ow.cache.Len() == 0 {
				t.Fatal("warm calls left no cached replies")
			}

			const callers = 4
			var ok, drained atomic.Int64
			var wg sync.WaitGroup
			start := make(chan struct{})
			for g := 0; g < callers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					for i := 0; i < 10; i++ {
						_, _, err := inv.Invoke("exchange", []runtime.Value{[]byte{1, 2}, nil}, nil, nil)
						switch classifyOverload(err) {
						case "ok":
							ok.Add(1)
						case "draining":
							drained.Add(1)
							return
						default:
							panic(err)
						}
					}
				}()
			}
			close(start)
			// Two drains race each other and the callers.
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			var dwg sync.WaitGroup
			for d := 0; d < 2; d++ {
				dwg.Add(1)
				go func() {
					defer dwg.Done()
					if err := ow.sess.Drain(ctx); err != nil {
						t.Errorf("drain: %v", err)
					}
				}()
			}
			wg.Wait()
			dwg.Wait()

			if !ow.adm.Draining() {
				t.Fatal("admission not draining after Drain")
			}
			if ow.adm.Inflight() != 0 {
				t.Fatalf("drain returned with %d calls in flight", ow.adm.Inflight())
			}
			if ow.cache.Len() != 0 {
				t.Fatalf("drain left %d cached replies", ow.cache.Len())
			}
			// Exactly-once: executions = warm calls + successful raced
			// calls; drained calls never reached the dispatcher.
			want := int64(4) + ok.Load()
			if n := ow.execs.Load(); n != want {
				t.Fatalf("exchange executed %d times, want %d (ok=%d drained=%d)",
					n, want, ok.Load(), drained.Load())
			}
			// Post-drain, every transport surfaces the draining taxonomy.
			_, _, err := inv.Invoke("add", []runtime.Value{int32(1), int32(1)}, nil, nil)
			if got := classifyOverload(err); got != "draining" {
				t.Fatalf("post-drain call classified %q (%v), want draining", got, err)
			}
			if !errors.Is(err, runtime.ErrDraining) {
				t.Fatalf("post-drain error %v does not match ErrDraining", err)
			}
		})
	}
}
