// Package conformance holds the cross-transport conformance test
// matrix: one canonical interface — in/out/inout parameters, octet
// sequences, [special] hooks, an [idempotent] operation — driven over
// every transport (in-process, loopback message conn, bsdpipe frames,
// Sun RPC over a simulated network) under every session arrangement
// (plain, at-most-once RobustConn, RobustConn over an injected-fault
// channel), asserting that all cells agree on results, on the error
// taxonomy (application errors, remote errors, deadline expiry), on
// at-most-once execution counts, and on deadline behavior.
//
// The matrix is the repository's executable statement of what the
// paper's flexibility claim requires: a presentation compiled once
// must mean the same thing no matter which transport the bind step
// later picks. Every cell also runs with client-side stats enabled,
// so the observability layer is exercised over each transport through
// the same interface.
package conformance
