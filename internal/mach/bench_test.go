package mach

import (
	"fmt"
	"testing"
)

// benchServer starts a null-RPC server and returns a bound client.
func benchServer(b *testing.B, clientTrust, serverTrust Trust) (*Binding, *Port) {
	b.Helper()
	k := NewKernel()
	srv := k.NewTask("server")
	cli := k.NewTask("client")
	_, port := srv.AllocatePort()
	port.RegisterServer(EndpointSig{Contract: "bench", Trust: serverTrust})
	right := cli.InsertRight(port)
	bind, err := Bind(cli, right, EndpointSig{Contract: "bench", Trust: clientTrust})
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			in, err := srv.Receive(port, nil)
			if err != nil {
				return
			}
			in.Reply(&Message{})
		}
	}()
	return bind, port
}

// BenchmarkNullRPCTrust is the Figure 12 matrix: null RPC time for
// every client-trust x server-trust combination.
func BenchmarkNullRPCTrust(b *testing.B) {
	trusts := []Trust{TrustNoneLevel, TrustLeakyLevel, TrustFullLevel}
	for _, ct := range trusts {
		for _, st := range trusts {
			b.Run(fmt.Sprintf("client=%v/server=%v", ct, st), func(b *testing.B) {
				bind, port := benchServer(b, ct, st)
				defer port.Destroy()
				req := &Message{}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bind.Call(req, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPortTransfer is the §4.5 unique-name experiment: passing
// one port right per call, with and without the unique-name
// invariant on the receiving side.
func BenchmarkPortTransfer(b *testing.B) {
	for _, nonunique := range []bool{false, true} {
		name := "unique"
		if nonunique {
			name = "nonunique"
		}
		b.Run(name, func(b *testing.B) {
			k := NewKernel()
			srv := k.NewTask("server")
			cli := k.NewTask("client")
			_, port := srv.AllocatePort()
			port.RegisterServer(EndpointSig{Contract: "bench", Trust: TrustFullLevel, NonUniquePorts: nonunique})
			right := cli.InsertRight(port)
			bind, err := Bind(cli, right, EndpointSig{Contract: "bench", Trust: TrustFullLevel})
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				for {
					in, err := srv.Receive(port, nil)
					if err != nil {
						return
					}
					// Deallocate so the unique path pays the full
					// hash + refcount cycle every transfer.
					for _, n := range in.PortNames {
						_ = srv.DeallocateRight(n)
					}
					in.Reply(&Message{})
				}
			}()
			defer port.Destroy()
			_, carried := cli.AllocatePort()
			req := &Message{Ports: []*Port{carried}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bind.Call(req, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNameTable isolates the §4.5 ablation from the IPC path:
// the cost of one insert+deallocate cycle under the unique-name
// invariant (splay lookup + insert + removal, refcounting) versus
// the [nonunique] fast path (slab slot only), at a realistic
// name-space population.
func BenchmarkNameTable(b *testing.B) {
	for _, pop := range []int{0, 64, 512} {
		k := NewKernel()
		task := k.NewTask("t")
		owner := k.NewTask("owner")
		for i := 0; i < pop; i++ {
			_, p := owner.AllocatePort()
			task.InsertRight(p)
		}
		_, target := owner.AllocatePort()
		b.Run(fmt.Sprintf("unique/population=%d", pop), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := task.InsertRight(target)
				if err := task.DeallocateRight(n); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("nonunique/population=%d", pop), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := task.InsertRightNonUnique(target)
				if err := task.DeallocateRight(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReceiveBuffer ablates the receive-into-caller-buffer
// optimization: a 4 KB message received into a reused buffer versus
// freshly allocated storage per message.
func BenchmarkReceiveBuffer(b *testing.B) {
	for _, reuse := range []bool{true, false} {
		name := "reused"
		if !reuse {
			name = "alloc-per-receive"
		}
		b.Run(name, func(b *testing.B) {
			k := NewKernel()
			srv := k.NewTask("server")
			cli := k.NewTask("client")
			_, port := srv.AllocatePort()
			port.RegisterServer(EndpointSig{Contract: "c", Trust: TrustFullLevel})
			bind, err := Bind(cli, cli.InsertRight(port), EndpointSig{Contract: "c", Trust: TrustFullLevel})
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				var buf []byte
				if reuse {
					buf = make([]byte, 4096)
				}
				for {
					in, err := srv.Receive(port, buf)
					if err != nil {
						return
					}
					in.Reply(&Message{})
				}
			}()
			defer port.Destroy()
			req := &Message{Body: make([]byte, 4096)}
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bind.Call(req, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
