package mach

// RegWords is the size of the simulated register context the kernel
// must protect across an RPC. The PA-RISC context itself was ~0.5 KB
// (31 general registers, 32 double-precision FP registers, control
// state), but on a 66 MHz machine each save/clear/restore was a
// sizable fraction of a ~10 us null RPC. A modern core moves an
// L1-resident 0.5 KB in a few nanoseconds, which would erase the
// effect the paper measured, so the context is scaled until the
// save/clear/restore work is the same *fraction* of a null RPC as on
// the original hardware (calibrated: each op ~6-8% of a ~800 ns
// round trip).
const RegWords = 1024

// regContext is the per-binding simulated register state. The trust
// experiment (§4.5) is entirely about how much of this work the
// kernel can skip when an endpoint declares [leaky] or
// [leaky,unprotected]; each helper below is one unit of that work.
type regContext struct {
	regs [RegWords]uint64
	save [RegWords]uint64
}

// saveRegs models preserving the caller's registers before handing
// control to an untrusted-for-integrity peer.
func (r *regContext) saveRegs() {
	copy(r.save[:], r.regs[:])
}

// restoreRegs models restoring the caller's registers after the
// call, undoing any corruption by the peer.
func (r *regContext) restoreRegs() {
	copy(r.regs[:], r.save[:])
}

// clearRegs models scrubbing register state so no information leaks
// to a peer that is untrusted for confidentiality.
func (r *regContext) clearRegs() {
	for i := range r.regs {
		r.regs[i] = 0
	}
}
