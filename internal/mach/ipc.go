package mach

// The streamlined IPC path: synchronous RPC through a port, with a
// few inline "register" words and a message body the kernel copies
// exactly once, directly from the sender's address space into a
// buffer in the receiver's address space (no intermediate kernel
// buffer). This models the "new, streamlined low-level Mach IPC
// mechanism" of §4.2.

// InlineWords is the number of 32-bit words transferred through
// (simulated) processor registers with each message.
const InlineWords = 8

// A Message is the sender-side description of one IPC transfer.
// Body is read directly out of the sender's buffer while the sender
// is blocked, so the caller may reuse it as soon as the call
// completes.
type Message struct {
	Inline [InlineWords]uint32
	Body   []byte
	Ports  []*Port // send rights to transfer
}

// A Received is the receiver-side view of a transferred message.
// Body is storage owned by the receiving task; PortNames are the
// transferred rights, translated into the receiving task's name
// space.
type Received struct {
	Inline    [InlineWords]uint32
	Body      []byte
	PortNames []Name
}

// exchange is the kernel-internal rendezvous between one Call and
// one Receive.
type exchange struct {
	req        *Message
	binding    *Binding
	replyBuf   []byte // client-provided reply landing zone (may be nil)
	reply      Received
	replyPorts []*Port
	done       chan struct{}
}

// An Incoming is a received request that must be answered with
// Reply.
type Incoming struct {
	Received
	x       *exchange
	replied bool
}

// Receive blocks until a request arrives on p, which must be owned
// by t. The request body is kernel-copied into buf when it fits;
// otherwise fresh storage is allocated. Transferred rights are
// inserted into t's name space using the naming mode fixed at bind
// time.
func (t *Task) Receive(p *Port, buf []byte) (*Incoming, error) {
	if p.Receiver() != t {
		return nil, ErrNotReceiver
	}
	x, ok := <-p.queue
	if !ok {
		return nil, ErrDeadPort
	}
	in := &Incoming{x: x}
	in.Inline = x.req.Inline
	// The single kernel copy: sender space -> receiver space.
	n := len(x.req.Body)
	if cap(buf) >= n {
		buf = buf[:n]
	} else {
		buf = make([]byte, n)
	}
	copy(buf, x.req.Body)
	in.Body = buf
	// Translate transferred rights into the server task.
	if len(x.req.Ports) > 0 {
		in.PortNames = make([]Name, len(x.req.Ports))
		for i, port := range x.req.Ports {
			if x.binding.serverNonUnique {
				in.PortNames[i] = t.InsertRightNonUnique(port)
			} else {
				in.PortNames[i] = t.InsertRight(port)
			}
		}
	}
	return in, nil
}

// Reply completes the request. The reply body is kernel-copied into
// the client's landing buffer before Reply returns, so the server
// may immediately reuse its own buffer — this is what makes the
// [dealloc(never)] presentation safe for the pipe server's circular
// buffer. Reply must be called exactly once per Incoming.
func (in *Incoming) Reply(reply *Message) {
	if in.replied {
		panic("mach: double reply to the same request")
	}
	in.replied = true
	x := in.x
	b := x.binding
	// Scrub register state before control returns to a client the
	// server does not trust for confidentiality.
	if b.serverClearOnReply {
		b.regs.clearRegs()
	}
	x.reply.Inline = reply.Inline
	n := len(reply.Body)
	if cap(x.replyBuf) >= n {
		x.reply.Body = x.replyBuf[:n]
	} else {
		x.reply.Body = make([]byte, n)
	}
	copy(x.reply.Body, reply.Body)
	// Reply-borne rights are translated in the client's name space
	// by Call, after the rendezvous completes.
	x.reply.PortNames = nil
	x.replyPorts = reply.Ports
	close(x.done)
}
