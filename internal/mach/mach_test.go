package mach

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestUniqueNameInvariant(t *testing.T) {
	k := NewKernel()
	task := k.NewTask("t")
	_, p := k.NewTask("owner").AllocatePort()

	n1 := task.InsertRight(p)
	n2 := task.InsertRight(p)
	if n1 != n2 {
		t.Fatalf("unique insert returned two names: %d, %d", n1, n2)
	}
	if rc := task.RefCount(n1); rc != 2 {
		t.Fatalf("refcount = %d, want 2", rc)
	}
	if task.NameCount() != 1 {
		t.Fatalf("name count = %d, want 1", task.NameCount())
	}
	// Dropping one ref keeps the name; dropping the second removes it.
	if err := task.DeallocateRight(n1); err != nil {
		t.Fatal(err)
	}
	if rc := task.RefCount(n1); rc != 1 {
		t.Fatalf("refcount after dealloc = %d", rc)
	}
	if err := task.DeallocateRight(n1); err != nil {
		t.Fatal(err)
	}
	if task.NameCount() != 0 {
		t.Fatal("name not removed at refcount zero")
	}
	// And a fresh insert after removal gets a new name that again
	// obeys the invariant.
	n3 := task.InsertRight(p)
	if task.InsertRight(p) != n3 {
		t.Fatal("invariant broken after reinsert")
	}
}

func TestNonUniqueNames(t *testing.T) {
	k := NewKernel()
	task := k.NewTask("t")
	_, p := k.NewTask("owner").AllocatePort()

	n1 := task.InsertRightNonUnique(p)
	n2 := task.InsertRightNonUnique(p)
	if n1 == n2 {
		t.Fatal("nonunique insert should hand out fresh names")
	}
	// Both names resolve to the same port.
	q1, err1 := task.LookupRight(n1)
	q2, err2 := task.LookupRight(n2)
	if err1 != nil || err2 != nil || q1 != p || q2 != p {
		t.Fatalf("lookups = %v/%v, %v/%v", q1, err1, q2, err2)
	}
	// Nonunique names don't pollute the unique index: a unique
	// insert of the same port gets its own name with refcount 1.
	nu := task.InsertRight(p)
	if nu == n1 || nu == n2 {
		t.Fatal("unique insert collided with fast name")
	}
	if task.RefCount(nu) != 1 {
		t.Fatalf("unique refcount = %d", task.RefCount(nu))
	}
}

func TestLookupAndDeallocErrors(t *testing.T) {
	k := NewKernel()
	task := k.NewTask("t")
	if _, err := task.LookupRight(Name(42)); err != ErrInvalidName {
		t.Errorf("lookup err = %v", err)
	}
	if err := task.DeallocateRight(Name(42)); err != ErrInvalidName {
		t.Errorf("dealloc err = %v", err)
	}
}

// Property: under any interleaving of unique inserts and deallocs of
// a set of ports, each port has at most one unique name, and the
// refcount of that name equals inserts-deallocs.
func TestQuickUniqueInvariant(t *testing.T) {
	f := func(ops []bool) bool {
		k := NewKernel()
		task := k.NewTask("t")
		_, p := k.NewTask("owner").AllocatePort()
		refs := 0
		var name Name
		for _, insert := range ops {
			if insert {
				n := task.InsertRight(p)
				if refs > 0 && n != name {
					return false
				}
				name = n
				refs++
			} else if refs > 0 {
				if err := task.DeallocateRight(name); err != nil {
					return false
				}
				refs--
			}
			if got := task.RefCount(name); refs > 0 && got != refs {
				return false
			}
			if refs == 0 && task.NameCount() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// startEcho runs a server that echoes the body (optionally through a
// receive buffer) and increments inline word 0.
func startEcho(t *testing.T, srv *Task, port *Port, recvBuf []byte) {
	t.Helper()
	go func() {
		for {
			in, err := srv.Receive(port, recvBuf)
			if err != nil {
				return // port destroyed
			}
			reply := &Message{Body: in.Body}
			reply.Inline[0] = in.Inline[0] + 1
			in.Reply(reply)
		}
	}()
}

func bindEcho(t *testing.T, k *Kernel) (*Binding, *Port, *Task) {
	t.Helper()
	srv := k.NewTask("server")
	cli := k.NewTask("client")
	_, port := srv.AllocatePort()
	port.RegisterServer(EndpointSig{Contract: "echo"})
	right := cli.InsertRight(port)
	b, err := Bind(cli, right, EndpointSig{Contract: "echo"})
	if err != nil {
		t.Fatal(err)
	}
	startEcho(t, srv, port, make([]byte, 4096))
	return b, port, cli
}

func TestCallRoundTrip(t *testing.T) {
	k := NewKernel()
	b, port, _ := bindEcho(t, k)
	defer port.Destroy()

	req := &Message{Body: []byte("hello streamlined ipc")}
	req.Inline[0] = 41
	reply, err := b.Call(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Inline[0] != 42 {
		t.Fatalf("inline = %d, want 42", reply.Inline[0])
	}
	if !bytes.Equal(reply.Body, req.Body) {
		t.Fatalf("body = %q", reply.Body)
	}
}

func TestCallReplyIntoClientBuffer(t *testing.T) {
	k := NewKernel()
	b, port, _ := bindEcho(t, k)
	defer port.Destroy()

	landing := make([]byte, 64)
	reply, err := b.Call(&Message{Body: []byte("abc")}, landing)
	if err != nil {
		t.Fatal(err)
	}
	if &reply.Body[0] != &landing[0] {
		t.Fatal("reply should land in the client-provided buffer")
	}
	if string(reply.Body) != "abc" {
		t.Fatalf("body = %q", reply.Body)
	}
	// A too-small landing buffer falls back to allocation.
	small := make([]byte, 1)
	reply, err = b.Call(&Message{Body: []byte("abcdef")}, small)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Body) != "abcdef" {
		t.Fatalf("body = %q", reply.Body)
	}
}

func TestServerBufferReusableAfterReply(t *testing.T) {
	// The kernel copies the reply before Reply returns, so a server
	// may immediately scribble on its buffer — the property that
	// makes [dealloc(never)] safe.
	k := NewKernel()
	srv := k.NewTask("server")
	cli := k.NewTask("client")
	_, port := srv.AllocatePort()
	port.RegisterServer(EndpointSig{Contract: "c"})
	right := cli.InsertRight(port)
	b, err := Bind(cli, right, EndpointSig{Contract: "c"})
	if err != nil {
		t.Fatal(err)
	}
	shared := []byte("good")
	go func() {
		in, err := srv.Receive(port, nil)
		if err != nil {
			return
		}
		in.Reply(&Message{Body: shared})
		copy(shared, "BAD!") // reuse immediately
	}()
	reply, err := b.Call(&Message{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Body) != "good" {
		t.Fatalf("reply body = %q, want snapshot taken before reuse", reply.Body)
	}
	port.Destroy()
}

func TestPortTransferRequestAndReply(t *testing.T) {
	k := NewKernel()
	srv := k.NewTask("server")
	cli := k.NewTask("client")
	_, port := srv.AllocatePort()
	port.RegisterServer(EndpointSig{Contract: "c"})
	right := cli.InsertRight(port)
	b, err := Bind(cli, right, EndpointSig{Contract: "c"})
	if err != nil {
		t.Fatal(err)
	}
	_, carried := cli.AllocatePort()
	go func() {
		in, err := srv.Receive(port, nil)
		if err != nil {
			return
		}
		if len(in.PortNames) != 1 {
			t.Error("server received no port name")
			in.Reply(&Message{})
			return
		}
		got, err := srv.LookupRight(in.PortNames[0])
		if err != nil || got != carried {
			t.Errorf("server lookup = %v, %v", got, err)
		}
		// Send it back in the reply.
		in.Reply(&Message{Ports: []*Port{got}})
	}()
	reply, err := b.Call(&Message{Ports: []*Port{carried}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.PortNames) != 1 {
		t.Fatal("client received no port name in reply")
	}
	back, err := cli.LookupRight(reply.PortNames[0])
	if err != nil || back != carried {
		t.Fatalf("client lookup = %v, %v", back, err)
	}
	port.Destroy()
}

func TestNonUniqueBindingSkipsInvariant(t *testing.T) {
	k := NewKernel()
	srv := k.NewTask("server")
	cli := k.NewTask("client")
	_, port := srv.AllocatePort()
	port.RegisterServer(EndpointSig{Contract: "c", NonUniquePorts: true})
	right := cli.InsertRight(port)
	b, err := Bind(cli, right, EndpointSig{Contract: "c"})
	if err != nil {
		t.Fatal(err)
	}
	_, carried := cli.AllocatePort()
	names := make(chan Name, 2)
	go func() {
		for i := 0; i < 2; i++ {
			in, err := srv.Receive(port, nil)
			if err != nil {
				return
			}
			names <- in.PortNames[0]
			in.Reply(&Message{})
		}
	}()
	for i := 0; i < 2; i++ {
		if _, err := b.Call(&Message{Ports: []*Port{carried}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	n1, n2 := <-names, <-names
	if n1 == n2 {
		t.Fatal("nonunique server binding should produce distinct names per transfer")
	}
	port.Destroy()
}

func TestBindErrors(t *testing.T) {
	k := NewKernel()
	srv := k.NewTask("server")
	cli := k.NewTask("client")
	_, port := srv.AllocatePort()
	right := cli.InsertRight(port)

	if _, err := Bind(cli, right, EndpointSig{Contract: "c"}); err != ErrNotRegistered {
		t.Errorf("unregistered bind err = %v", err)
	}
	port.RegisterServer(EndpointSig{Contract: "other"})
	if _, err := Bind(cli, right, EndpointSig{Contract: "c"}); err != ErrContract {
		t.Errorf("contract mismatch err = %v", err)
	}
	if _, err := Bind(cli, Name(999), EndpointSig{Contract: "c"}); err != ErrInvalidName {
		t.Errorf("bad name err = %v", err)
	}
	port.Destroy()
	port.RegisterServer(EndpointSig{Contract: "c"})
	if _, err := Bind(cli, right, EndpointSig{Contract: "c"}); err != ErrDeadPort {
		t.Errorf("dead port err = %v", err)
	}
}

func TestCallOnDestroyedPort(t *testing.T) {
	k := NewKernel()
	b, port, _ := bindEcho(t, k)
	port.Destroy()
	if _, err := b.Call(&Message{}, nil); err != ErrDeadPort {
		t.Fatalf("err = %v, want ErrDeadPort", err)
	}
}

func TestReceiveWrongTask(t *testing.T) {
	k := NewKernel()
	srv := k.NewTask("server")
	other := k.NewTask("other")
	_, port := srv.AllocatePort()
	if _, err := other.Receive(port, nil); err != ErrNotReceiver {
		t.Fatalf("err = %v, want ErrNotReceiver", err)
	}
}

func TestDoubleReplyPanics(t *testing.T) {
	k := NewKernel()
	srv := k.NewTask("server")
	cli := k.NewTask("client")
	_, port := srv.AllocatePort()
	port.RegisterServer(EndpointSig{Contract: "c"})
	right := cli.InsertRight(port)
	b, _ := Bind(cli, right, EndpointSig{Contract: "c"})
	done := make(chan struct{})
	go func() {
		defer close(done)
		in, err := srv.Receive(port, nil)
		if err != nil {
			return
		}
		in.Reply(&Message{})
		defer func() {
			if recover() == nil {
				t.Error("second Reply should panic")
			}
		}()
		in.Reply(&Message{})
	}()
	if _, err := b.Call(&Message{}, nil); err != nil {
		t.Fatal(err)
	}
	<-done
	port.Destroy()
}

func TestAllTrustCombinationsDeliver(t *testing.T) {
	trusts := []Trust{TrustNoneLevel, TrustLeakyLevel, TrustFullLevel}
	for _, ct := range trusts {
		for _, st := range trusts {
			k := NewKernel()
			srv := k.NewTask("server")
			cli := k.NewTask("client")
			_, port := srv.AllocatePort()
			port.RegisterServer(EndpointSig{Contract: "c", Trust: st})
			right := cli.InsertRight(port)
			b, err := Bind(cli, right, EndpointSig{Contract: "c", Trust: ct})
			if err != nil {
				t.Fatal(err)
			}
			startEcho(t, srv, port, nil)
			reply, err := b.Call(&Message{Body: []byte("x")}, nil)
			if err != nil || string(reply.Body) != "x" {
				t.Fatalf("trust %v/%v: reply = %q, %v", ct, st, reply.Body, err)
			}
			port.Destroy()
		}
	}
}

func TestTrustStepCounts(t *testing.T) {
	// The combination signature must shrink monotonically with
	// client trust: none = save+clear+restore, leaky = save+restore,
	// full = nothing.
	k := NewKernel()
	srv := k.NewTask("server")
	cli := k.NewTask("client")
	_, port := srv.AllocatePort()
	port.RegisterServer(EndpointSig{Contract: "c", Trust: TrustNoneLevel})
	right := cli.InsertRight(port)

	counts := map[Trust][2]int{
		TrustNoneLevel:  {2, 1}, // prologue: save+clear, epilogue: restore
		TrustLeakyLevel: {1, 1},
		TrustFullLevel:  {0, 0},
	}
	for trust, want := range counts {
		b, err := Bind(cli, right, EndpointSig{Contract: "c", Trust: trust})
		if err != nil {
			t.Fatal(err)
		}
		if len(b.prologue) != want[0] || len(b.epilogue) != want[1] {
			t.Errorf("trust %v: steps = %d/%d, want %d/%d",
				trust, len(b.prologue), len(b.epilogue), want[0], want[1])
		}
	}
	// Server-side: only the leaky bit matters (the paper's flat
	// unprotected column).
	for _, st := range []Trust{TrustLeakyLevel, TrustFullLevel} {
		port.RegisterServer(EndpointSig{Contract: "c", Trust: st})
		b, err := Bind(cli, right, EndpointSig{Contract: "c"})
		if err != nil {
			t.Fatal(err)
		}
		if b.serverClearOnReply {
			t.Errorf("server trust %v should skip the reply clear", st)
		}
	}
	port.RegisterServer(EndpointSig{Contract: "c", Trust: TrustNoneLevel})
	b, _ := Bind(cli, right, EndpointSig{Contract: "c"})
	if !b.serverClearOnReply {
		t.Error("untrusting server must clear on reply")
	}
}

func TestConcurrentClients(t *testing.T) {
	k := NewKernel()
	srv := k.NewTask("server")
	_, port := srv.AllocatePort()
	port.RegisterServer(EndpointSig{Contract: "c"})
	go func() {
		for {
			in, err := srv.Receive(port, nil)
			if err != nil {
				return
			}
			reply := &Message{}
			reply.Inline[0] = in.Inline[0] * 2
			in.Reply(reply)
		}
	}()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		cli := k.NewTask("client")
		right := cli.InsertRight(port)
		b, err := Bind(cli, right, EndpointSig{Contract: "c"})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(b *Binding, seed uint32) {
			defer wg.Done()
			for i := uint32(0); i < 100; i++ {
				req := &Message{}
				req.Inline[0] = seed + i
				reply, err := b.Call(req, nil)
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if reply.Inline[0] != (seed+i)*2 {
					t.Errorf("reply = %d", reply.Inline[0])
					return
				}
			}
		}(b, uint32(c*1000))
	}
	wg.Wait()
	port.Destroy()
}

func TestReceiveIntoBufferAvoidsAllocation(t *testing.T) {
	k := NewKernel()
	srv := k.NewTask("server")
	cli := k.NewTask("client")
	_, port := srv.AllocatePort()
	port.RegisterServer(EndpointSig{Contract: "c"})
	right := cli.InsertRight(port)
	b, _ := Bind(cli, right, EndpointSig{Contract: "c"})

	recvBuf := make([]byte, 128)
	go func() {
		in, err := srv.Receive(port, recvBuf)
		if err != nil {
			return
		}
		if &in.Body[0] != &recvBuf[0] {
			t.Error("receive should land in the provided buffer")
		}
		in.Reply(&Message{})
	}()
	if _, err := b.Call(&Message{Body: []byte("payload")}, nil); err != nil {
		t.Fatal(err)
	}
	port.Destroy()
}
