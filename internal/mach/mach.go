// Package mach simulates the slice of the Mach 3.0 kernel the paper's
// experiments run on: tasks with per-task port name spaces, ports
// carrying send/receive rights, a streamlined synchronous IPC path
// (inline "register" words plus a kernel-copied message buffer), and
// the bind-time specialization machinery of §4.5 — endpoint type
// signatures combined into a threaded-code call path that exploits
// relaxed trust and naming semantics.
//
// The simulation preserves what the paper measures: the number of
// data copies, the hash-table/refcount work of the unique-name
// invariant, and the register save/clear/restore work implied by each
// trust level. Absolute times are 2026-Go numbers, not 66 MHz
// PA-RISC numbers; relative shapes are the point.
package mach

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Common errors.
var (
	ErrDeadPort      = errors.New("mach: port is dead")
	ErrInvalidName   = errors.New("mach: invalid port name")
	ErrNotReceiver   = errors.New("mach: task does not hold the receive right")
	ErrContract      = errors.New("mach: endpoint contracts are incompatible")
	ErrNotRegistered = errors.New("mach: no server signature registered on port")
)

// A Kernel owns every task and port in one simulated machine.
type Kernel struct {
	mu    sync.Mutex
	tasks []*Task
}

// NewKernel creates an empty simulated machine.
func NewKernel() *Kernel { return &Kernel{} }

// NewTask creates a task with an empty port name space.
func (k *Kernel) NewTask(name string) *Task {
	t := &Task{kernel: k, name: name}
	t.names.init()
	k.mu.Lock()
	k.tasks = append(k.tasks, t)
	k.mu.Unlock()
	return t
}

// Tasks returns the tasks created so far.
func (k *Kernel) Tasks() []*Task {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Task, len(k.tasks))
	copy(out, k.tasks)
	return out
}

// A Task is one protection domain: a port name space plus a
// (simulated) register context.
type Task struct {
	kernel *Kernel
	name   string
	names  nameTable
}

// Name returns the task's debug name.
func (t *Task) Name() string { return t.name }

// A Port is a kernel message queue. Exactly one task holds the
// receive right; any number of tasks may hold send rights under
// task-local names.
type Port struct {
	id       uint32 // global id, hashed by the unique-name index
	mu       sync.Mutex
	receiver *Task
	dead     bool
	queue    chan *exchange
	// serverSig is the registered server endpoint signature used
	// by Bind (§4.5); nil until RegisterServer.
	serverSig *EndpointSig
}

// AllocatePort creates a port whose receive right belongs to t and
// returns the task-local name of the send right inserted into t's
// name space, along with the port itself.
func (t *Task) AllocatePort() (Name, *Port) {
	p := &Port{
		id:       nextPortID.Add(1),
		receiver: t,
		queue:    make(chan *exchange),
	}
	n := t.names.insertUnique(p)
	return n, p
}

var nextPortID atomic.Uint32

// Receiver returns the task holding the port's receive right.
func (p *Port) Receiver() *Task {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.receiver
}

// Destroy marks the port dead; subsequent calls fail with
// ErrDeadPort and blocked receivers are released.
func (p *Port) Destroy() {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	p.mu.Unlock()
	close(p.queue)
}

func (p *Port) isDead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// RegisterServer records the server endpoint's type signature on the
// port, the server half of the §4.5 bind-time handshake.
func (p *Port) RegisterServer(sig EndpointSig) {
	p.mu.Lock()
	p.serverSig = &sig
	p.mu.Unlock()
}

func (p *Port) registeredServer() *EndpointSig {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.serverSig
}

// InsertRight inserts a send right for port into the task's name
// space under the standard Mach unique-name invariant: if the task
// already has a name for this port, that name's reference count is
// incremented and the same name returned. This is the expensive path
// the paper measures — a reverse hash lookup plus refcount
// bookkeeping on every transfer.
func (t *Task) InsertRight(p *Port) Name {
	return t.names.insertUnique(p)
}

// InsertRightNonUnique inserts a send right without enforcing the
// unique-name invariant ([nonunique] presentation): a fresh slot is
// handed out with no reverse lookup and no reference counting.
func (t *Task) InsertRightNonUnique(p *Port) Name {
	return t.names.insertFast(p)
}

// LookupRight resolves a task-local name to its port.
func (t *Task) LookupRight(n Name) (*Port, error) {
	return t.names.lookup(n)
}

// DeallocateRight drops one reference to the named right, removing
// the name when the count reaches zero.
func (t *Task) DeallocateRight(n Name) error {
	return t.names.deallocate(n)
}

// RefCount returns the reference count of the named right (always 1
// for non-unique names), or 0 if the name is unknown.
func (t *Task) RefCount(n Name) int {
	return t.names.refCount(n)
}

// NameCount returns the number of live names in the task's space.
func (t *Task) NameCount() int { return t.names.count() }

func (t *Task) String() string { return fmt.Sprintf("task(%s)", t.name) }
