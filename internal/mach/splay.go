package mach

// splayTree is the reverse (port -> entry) translation index of a
// task's name space, implemented as a top-down splay tree keyed by
// port id — the structure Mach 3.0 actually used (ipc_splay_tree)
// and a large part of why right transfer under the unique-name
// invariant was "surprisingly expensive": every transfer performs a
// splaying lookup, and every final deallocation a splaying removal,
// each a chain of pointer rotations. The [nonunique] fast path never
// touches this tree.
type splayTree struct {
	root *splayNode
	size int
}

type splayNode struct {
	key         uint32
	idx         int32
	left, right *splayNode
}

// splay rotates the node with key (or the last node on its search
// path) to the root, using the classic top-down algorithm.
func (t *splayTree) splay(key uint32) {
	if t.root == nil {
		return
	}
	var header splayNode
	l, r := &header, &header
	cur := t.root
	for {
		switch {
		case key < cur.key:
			if cur.left == nil {
				break
			}
			if key < cur.left.key {
				// Rotate right.
				y := cur.left
				cur.left = y.right
				y.right = cur
				cur = y
				if cur.left == nil {
					break
				}
			}
			// Link right.
			r.left = cur
			r = cur
			cur = cur.left
			continue
		case key > cur.key:
			if cur.right == nil {
				break
			}
			if key > cur.right.key {
				// Rotate left.
				y := cur.right
				cur.right = y.left
				y.left = cur
				cur = y
				if cur.right == nil {
					break
				}
			}
			// Link left.
			l.right = cur
			l = cur
			cur = cur.right
			continue
		}
		break
	}
	// Assemble.
	l.right = cur.left
	r.left = cur.right
	cur.left = header.right
	cur.right = header.left
	t.root = cur
}

// lookup returns the entry index for key, splaying it to the root.
func (t *splayTree) lookup(key uint32) (int32, bool) {
	if t.root == nil {
		return 0, false
	}
	t.splay(key)
	if t.root.key != key {
		return 0, false
	}
	return t.root.idx, true
}

// insert adds key -> idx; key must not already be present.
func (t *splayTree) insert(key uint32, idx int32) {
	n := &splayNode{key: key, idx: idx}
	if t.root == nil {
		t.root = n
		t.size = 1
		return
	}
	t.splay(key)
	if key < t.root.key {
		n.left = t.root.left
		n.right = t.root
		t.root.left = nil
	} else {
		n.right = t.root.right
		n.left = t.root
		t.root.right = nil
	}
	t.root = n
	t.size++
}

// remove deletes key if present.
func (t *splayTree) remove(key uint32) {
	if t.root == nil {
		return
	}
	t.splay(key)
	if t.root.key != key {
		return
	}
	if t.root.left == nil {
		t.root = t.root.right
	} else {
		right := t.root.right
		t.root = t.root.left
		t.splay(key) // splays the maximum of the left subtree up
		t.root.right = right
	}
	t.size--
}

// count returns the number of nodes (for tests).
func (t *splayTree) count() int { return t.size }
