package mach

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSplayBasics(t *testing.T) {
	var tr splayTree
	if _, ok := tr.lookup(5); ok {
		t.Fatal("empty tree lookup should miss")
	}
	tr.insert(5, 50)
	tr.insert(2, 20)
	tr.insert(8, 80)
	for k, want := range map[uint32]int32{5: 50, 2: 20, 8: 80} {
		got, ok := tr.lookup(k)
		if !ok || got != want {
			t.Fatalf("lookup(%d) = %d, %v", k, got, ok)
		}
	}
	if _, ok := tr.lookup(7); ok {
		t.Fatal("missing key should miss")
	}
	if tr.count() != 3 {
		t.Fatalf("count = %d", tr.count())
	}
	tr.remove(5)
	if _, ok := tr.lookup(5); ok {
		t.Fatal("removed key still present")
	}
	if got, ok := tr.lookup(2); !ok || got != 20 {
		t.Fatal("remaining keys damaged by remove")
	}
	tr.remove(5) // removing a missing key is a no-op
	if tr.count() != 2 {
		t.Fatalf("count = %d", tr.count())
	}
}

func TestSplayAscendingAndDescendingInsertion(t *testing.T) {
	// Degenerate insertion orders must still work (splaying keeps
	// amortized cost low, and correctness regardless).
	var tr splayTree
	for i := uint32(0); i < 1000; i++ {
		tr.insert(i, int32(i))
	}
	for i := uint32(999); ; i-- {
		if got, ok := tr.lookup(i); !ok || got != int32(i) {
			t.Fatalf("lookup(%d) = %d, %v", i, got, ok)
		}
		if i == 0 {
			break
		}
	}
}

// Property: the splay tree agrees with a map under random
// insert/remove/lookup sequences.
func TestQuickSplayAgainstMap(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr splayTree
		ref := map[uint32]int32{}
		for _, op := range opsRaw {
			key := uint32(rng.Intn(32))
			switch op % 3 {
			case 0: // insert (only if absent, as the name table does)
				if _, ok := ref[key]; !ok {
					v := int32(rng.Int31())
					tr.insert(key, v)
					ref[key] = v
				}
			case 1: // remove
				tr.remove(key)
				delete(ref, key)
			case 2: // lookup
				got, ok := tr.lookup(key)
				want, wantOK := ref[key]
				if ok != wantOK || (ok && got != want) {
					return false
				}
			}
		}
		if tr.count() != len(ref) {
			return false
		}
		// Final full verification.
		keys := make([]uint32, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			if got, ok := tr.lookup(k); !ok || got != ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
