package mach

import "sync"

// Name is a task-local port name, structured as Mach structures it:
// an index into the task's entry table in the high bits and a
// generation number in the low bits, so stale names are detected
// rather than aliased.
type Name uint32

const (
	genBits = 6
	genMask = (1 << genBits) - 1
)

func makeName(index int32, gen uint8) Name {
	return Name(uint32(index)<<genBits | uint32(gen)&genMask)
}

func (n Name) index() int32 { return int32(n >> genBits) }
func (n Name) gen() uint8   { return uint8(n) & genMask }

// nameTable is one task's port name space, modeled on the real Mach
// ipc_space: a slab of entries addressed by index+generation, plus a
// splay-tree reverse index (Mach's ipc_splay_tree) that implements
// the unique-name invariant — every port has at most one name per
// task.
//
// The invariant is what the paper's §4.5 experiment relaxes: on
// every right transfer the standard path must search the reverse
// tree (splaying the result to the root), maintain reference counts,
// and on final deallocation remove the node with more rotations.
// The [nonunique] path skips the reverse index entirely and just
// claims a fresh slab slot. The two insert paths below preserve
// exactly that cost difference.
type nameTable struct {
	mu      sync.Mutex
	entries []nameEntry
	free    []int32 // free-slot stack
	reverse splayTree
	live    int
}

type nameEntry struct {
	port   *Port
	refs   int
	gen    uint8
	unique bool // participates in the reverse index
	inUse  bool
}

func (nt *nameTable) init() {}

// allocSlot claims an entry slot from the free list or grows the
// slab, returning its index.
func (nt *nameTable) allocSlot() int32 {
	if n := len(nt.free); n > 0 {
		idx := nt.free[n-1]
		nt.free = nt.free[:n-1]
		return idx
	}
	nt.entries = append(nt.entries, nameEntry{})
	return int32(len(nt.entries) - 1)
}

// insertUnique implements the standard Mach transfer path: search
// the reverse tree for an existing name, bump its refcount if found,
// otherwise claim a slot and insert it into the tree.
func (nt *nameTable) insertUnique(p *Port) Name {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	if idx, ok := nt.reverse.lookup(p.id); ok {
		e := &nt.entries[idx]
		if e.inUse && e.unique && e.port == p {
			e.refs++
			return makeName(idx, e.gen)
		}
	}
	idx := nt.allocSlot()
	e := &nt.entries[idx]
	gen := (e.gen + 1) & genMask
	*e = nameEntry{port: p, refs: 1, gen: gen, unique: true, inUse: true}
	nt.reverse.insert(p.id, idx)
	nt.live++
	return makeName(idx, gen)
}

// insertFast implements the [nonunique] path: claim a slot, skip the
// reverse index and reference counting entirely. The same port may
// end up with many names in one task — exactly what the relaxed
// presentation permits.
func (nt *nameTable) insertFast(p *Port) Name {
	nt.mu.Lock()
	idx := nt.allocSlot()
	e := &nt.entries[idx]
	gen := (e.gen + 1) & genMask
	*e = nameEntry{port: p, refs: 1, gen: gen, inUse: true}
	nt.live++
	nt.mu.Unlock()
	return makeName(idx, gen)
}

// get validates a name against the slab (bounds, liveness,
// generation) and returns its entry index, or -1.
func (nt *nameTable) get(n Name) int32 {
	idx := n.index()
	if idx < 0 || int(idx) >= len(nt.entries) {
		return -1
	}
	e := &nt.entries[idx]
	if !e.inUse || e.gen != n.gen() {
		return -1
	}
	return idx
}

func (nt *nameTable) lookup(n Name) (*Port, error) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	idx := nt.get(n)
	if idx < 0 {
		return nil, ErrInvalidName
	}
	return nt.entries[idx].port, nil
}

func (nt *nameTable) deallocate(n Name) error {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	idx := nt.get(n)
	if idx < 0 {
		return ErrInvalidName
	}
	e := &nt.entries[idx]
	e.refs--
	if e.refs > 0 {
		return nil
	}
	if e.unique {
		// Remove from the reverse tree — the other half of the
		// invariant's cost, with its own splaying rotations.
		nt.reverse.remove(e.port.id)
	}
	e.inUse = false
	e.port = nil
	nt.free = append(nt.free, idx)
	nt.live--
	return nil
}

func (nt *nameTable) refCount(n Name) int {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	idx := nt.get(n)
	if idx < 0 {
		return 0
	}
	return nt.entries[idx].refs
}

func (nt *nameTable) count() int {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	return nt.live
}
