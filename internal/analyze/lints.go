// Single-endpoint pass: annotation safety lints (FV004–FV006) and
// exhaustive presentation/interface consistency checks (FV007–FV012).
package analyze

import (
	"sort"

	"flexrpc/internal/idl"
	"flexrpc/internal/ir"
	"flexrpc/internal/pres"
	"flexrpc/internal/runtime"
)

// checkEndpoint runs every single-endpoint check over one
// presentation, reporting all findings rather than stopping at the
// first the way pres.Validate does.
func (c *checker) checkEndpoint(iface *ir.Interface, ep Endpoint) {
	p := ep.Pres
	if p.Interface != nil {
		// A presentation is validated against the contract it is
		// attached to; the reference interface only anchors the
		// cross-endpoint comparison.
		iface = p.Interface
	}
	c.checkTrust(ep)
	c.checkTrustedOwnership(iface, ep)
	c.checkPooledHooks(ep)
	c.checkTracedSpecial(ep)
	for _, opName := range sortedOpNames(p.Ops) {
		op := p.Ops[opName]
		irOp := iface.Op(opName)
		if irOp == nil {
			c.report("FV007", op.Pos, "%s: operation %q not in interface %s: annotation can never apply",
				p.Interface.Name, opName, iface.Name)
			continue
		}
		if op.Idempotent {
			c.checkIdempotent(p.Interface.Name, opName, irOp, op)
		}
		if op.Batchable {
			c.checkBatchable(p.Interface.Name, opName, irOp, op)
		}
		if op.Hedged {
			c.checkHedged(p.Interface.Name, opName, irOp, op)
		}
		for _, pn := range sortedParamNames(op.Params) {
			a := op.Params[pn]
			t, dir, ok := resolveParam(irOp, pn)
			if !ok {
				c.report("FV007", a.Pos, "%s.%s: parameter %q not in operation: annotation can never apply",
					p.Interface.Name, opName, pn)
				continue
			}
			c.checkParam(p.Interface.Name, opName, pn, irOp, a, t, dir)
		}
	}
}

// checkIdempotent is FV014: an [idempotent] operation whose
// signature moves buffer ownership. The runtime retries such an
// operation without consulting the reply cache, so a retransmitted
// execution must be invisible — ownership moves are not.
func (c *checker) checkIdempotent(iface, opName string, irOp *ir.Operation, op *pres.OpPres) {
	for _, pn := range sortedParamNames(op.Params) {
		a := op.Params[pn]
		t, dir, ok := resolveParam(irOp, pn)
		if !ok || !pres.IsBuffer(t) {
			continue // FV007 covers dangling names
		}
		ctx := iface + "." + opName + "." + pn
		isIn := dir == ir.In || dir == ir.InOut
		isOut := dir == ir.Out || dir == ir.InOut
		if isIn && a.Dealloc == pres.DeallocAlways && a.Explicit("dealloc") {
			c.report("FV014", attrPos(a, "dealloc"),
				"%s: [idempotent] operation transfers the caller's buffer ([dealloc(always)]); a retry's re-marshal would double-free it", ctx)
		}
		if isOut && a.Alloc == pres.AllocCallee && a.Explicit("alloc") {
			c.report("FV014", attrPos(a, "alloc"),
				"%s: [idempotent] operation hands out a callee-allocated buffer ([alloc(callee)]); a retried execution allocates again with only one delivery", ctx)
		}
	}
}

// checkHedged is FV022: a [hedged] operation whose signature moves
// buffer ownership. Hedging means the client may marshal and send the
// call more than once — racing sends, or retrying eagerly on
// admission-control pushback — so any ownership the marshal path
// consumes is consumed again by the hedge: a double-move.
func (c *checker) checkHedged(iface, opName string, irOp *ir.Operation, op *pres.OpPres) {
	for _, pn := range sortedParamNames(op.Params) {
		a := op.Params[pn]
		t, dir, ok := resolveParam(irOp, pn)
		if !ok || !pres.IsBuffer(t) {
			continue // FV007 covers dangling names
		}
		ctx := iface + "." + opName + "." + pn
		isIn := dir == ir.In || dir == ir.InOut
		isOut := dir == ir.Out || dir == ir.InOut
		if isIn && a.Dealloc == pres.DeallocAlways && a.Explicit("dealloc") {
			c.report("FV022", attrPos(a, "dealloc"),
				"%s: [hedged] operation transfers the caller's buffer ([dealloc(always)]); a hedged re-send would double-move it", ctx)
		}
		if isOut && a.Alloc == pres.AllocCallee && a.Explicit("alloc") {
			c.report("FV022", attrPos(a, "alloc"),
				"%s: [hedged] operation hands out a callee-allocated buffer ([alloc(callee)]); racing executions allocate twice with at most one delivery", ctx)
		}
	}
}

// checkTrustedOwnership is FV021's single-endpoint leg: a fully
// trusted presentation whose signature still moves buffer ownership
// explicitly. The trusted same-domain binding this grant selects
// (shmring's arena fast path) elides the per-call ownership protocol
// — payloads alias leased slots and never transfer — so the
// annotation is dead weight at best and a false promise at worst.
func (c *checker) checkTrustedOwnership(iface *ir.Interface, ep Endpoint) {
	p := ep.Pres
	if p.Trust != pres.TrustFull {
		return
	}
	grant := trustAttrName(p)
	for _, opName := range sortedOpNames(p.Ops) {
		op := p.Ops[opName]
		irOp := iface.Op(opName)
		if irOp == nil {
			continue // FV007 covers dangling operations
		}
		for _, pn := range sortedParamNames(op.Params) {
			a := op.Params[pn]
			t, dir, ok := resolveParam(irOp, pn)
			if !ok || !pres.IsBuffer(t) {
				continue // FV007 covers dangling names
			}
			ctx := p.Interface.Name + "." + opName + "." + pn
			isIn := dir == ir.In || dir == ir.InOut
			isOut := dir == ir.Out || dir == ir.InOut
			if isIn && a.Dealloc == pres.DeallocAlways && a.Explicit("dealloc") {
				c.report("FV021", attrPos(a, "dealloc"),
					"%s: [%s] binding elides the per-call ownership protocol; [dealloc(always)] is unenforced on the trusted fast path", ctx, grant)
			}
			if isOut && a.Alloc == pres.AllocCallee && a.Explicit("alloc") {
				c.report("FV021", attrPos(a, "alloc"),
					"%s: [%s] binding elides the per-call ownership protocol; [alloc(callee)] is unenforced on the trusted fast path", ctx, grant)
			}
		}
	}
}

// trustAttrName names the attribute that granted full trust, for
// diagnostics: [trusted] and [unprotected] are aliases.
func trustAttrName(p *pres.Presentation) string {
	if _, ok := p.PosOf("trusted"); ok {
		return "trusted"
	}
	return "unprotected"
}

// checkBatchable is FV016: a [batchable] operation carrying [special]
// hooks or ownership-moving attributes. The batcher copies the
// marshaled request into a queue and transmits it later inside a
// merged frame, so anything that runs side effects at marshal time or
// moves buffer ownership across the (now dissolved) per-call boundary
// makes the copy observable.
func (c *checker) checkBatchable(iface, opName string, irOp *ir.Operation, op *pres.OpPres) {
	for _, pn := range sortedParamNames(op.Params) {
		a := op.Params[pn]
		t, dir, ok := resolveParam(irOp, pn)
		if !ok {
			continue // FV007 covers dangling names
		}
		ctx := iface + "." + opName + "." + pn
		if a.Special {
			c.report("FV016", attrPos(a, "special"),
				"%s: [batchable] operation's [special] hook runs at enqueue time, not transmission time; the batcher's frame copy makes the deferral observable", ctx)
		}
		if !pres.IsBuffer(t) {
			continue
		}
		isIn := dir == ir.In || dir == ir.InOut
		isOut := dir == ir.Out || dir == ir.InOut
		if isIn && a.Dealloc == pres.DeallocAlways && a.Explicit("dealloc") {
			c.report("FV016", attrPos(a, "dealloc"),
				"%s: [batchable] operation transfers the caller's buffer ([dealloc(always)]), but the batcher queues a copy past the call boundary that lifetime is tied to", ctx)
		}
		if isOut && a.Alloc == pres.AllocCallee && a.Explicit("alloc") {
			c.report("FV016", attrPos(a, "alloc"),
				"%s: [batchable] operation hands out a callee-allocated buffer ([alloc(callee)]) whose delivery the batcher detaches from the call that allocated it", ctx)
		}
	}
}

// checkTrust is FV005: trust granted to a peer outside every
// protection domain.
func (c *checker) checkTrust(ep Endpoint) {
	p := ep.Pres
	if p.Trust == pres.TrustNone || !IsNetworkTransport(ep.Transport) {
		return
	}
	attr, sev := "leaky", SevWarning
	if p.Trust == pres.TrustFull {
		attr, sev = "unprotected", SevError
	}
	pos, _ := p.PosOf(attr)
	c.reportSev("FV005", sev, pos,
		"%s: [%s] trust granted on network transport %s; the peer is outside every protection domain",
		p.Interface.Name, attr, ep.Transport)
}

// checkPooledHooks is FV013: a presentation with [special]
// parameters bound through the pooled parallel client needs hooks
// implementing the re-entrant step interface.
func (c *checker) checkPooledHooks(ep Endpoint) {
	if !ep.PooledClient {
		return
	}
	if _, ok := ep.Hooks.(runtime.StepHooks); ok {
		return
	}
	p := ep.Pres
	for _, opName := range sortedOpNames(p.Ops) {
		op := p.Ops[opName]
		for _, pn := range sortedParamNames(op.Params) {
			a := op.Params[pn]
			if !a.Special {
				continue
			}
			c.report("FV013", attrPos(a, "special"),
				"%s.%s.%s: [special] endpoint bound through the pooled parallel client, but its hooks (%T) do not implement runtime.StepHooks",
				p.Interface.Name, opName, pn, ep.Hooks)
		}
	}
}

// checkTracedSpecial is FV015: a [traced] meter wrapped around a
// [special] marshal hook on the pooled parallel client. The meter
// brackets the hook's encoder output, and because the pooled client
// recycles per-call encoder state concurrently, bracketing opaque
// hook output forces a defensive per-call snapshot — an allocation on
// the path the pool exists to keep allocation-free.
func (c *checker) checkTracedSpecial(ep Endpoint) {
	if !ep.PooledClient {
		return
	}
	p := ep.Pres
	for _, opName := range sortedOpNames(p.Ops) {
		op := p.Ops[opName]
		for _, pn := range sortedParamNames(op.Params) {
			a := op.Params[pn]
			if !a.Special || !a.Traced {
				continue
			}
			c.report("FV015", attrPos(a, "traced", "special"),
				"%s.%s.%s: [traced] meter around a [special] hook on the pooled parallel client forces a per-call buffer snapshot, costing an allocation on the pooled zero-alloc path",
				p.Interface.Name, opName, pn)
		}
	}
}

// checkParam runs the per-parameter lints. ctx pieces identify the
// finding as iface.op.param.
func (c *checker) checkParam(iface, opName, pn string, irOp *ir.Operation, a *pres.ParamAttrs, t *ir.Type, dir ir.Direction) {
	ctx := iface + "." + opName + "." + pn
	isIn := dir == ir.In || dir == ir.InOut

	if a.Trashable && a.Preserved {
		c.report("FV008", attrPos(a, "preserved", "trashable"),
			"%s: [trashable] and [preserved] on the same parameter are mutually exclusive", ctx)
	}
	if a.Trashable && !isIn {
		c.report("FV010", attrPos(a, "trashable"),
			"%s: [trashable] applies only to in parameters, %s is %s", ctx, pn, dir)
	}
	if a.Preserved && !isIn {
		c.report("FV010", attrPos(a, "preserved"),
			"%s: [preserved] applies only to in parameters, %s is %s", ctx, pn, dir)
	}
	if a.Trashable && a.Special {
		c.report("FV004", attrPos(a, "special", "trashable"),
			"%s: [special] marshal hook may alias a buffer the stub is allowed to trash", ctx)
	}
	if a.NonUnique && t.Kind != ir.Port {
		c.report("FV011", attrPos(a, "nonunique"),
			"%s: [nonunique] applies only to port parameters, have %s", ctx, t.Signature())
	}
	if (a.Alloc != pres.AllocAuto || a.Dealloc != pres.DeallocDefault) && !pres.IsBuffer(t) {
		c.report("FV012", attrPos(a, "alloc", "dealloc"),
			"%s: allocation annotations require a buffer type, have %s", ctx, t.Signature())
	}
	if a.Dealloc == pres.DeallocNever && a.Alloc == pres.AllocCallee &&
		a.Explicit("alloc") && !isIn && pres.IsBuffer(t) {
		c.report("FV006", attrPos(a, "dealloc", "alloc"),
			"%s: [alloc(callee), dealloc(never)]: a fresh callee-allocated buffer per call that nothing frees", ctx)
	}
	if a.LengthIs != "" {
		c.checkLengthIs(ctx, irOp, a)
	}
}

// checkLengthIs is FV009.
func (c *checker) checkLengthIs(ctx string, irOp *ir.Operation, a *pres.ParamAttrs) {
	pos := attrPos(a, "length_is")
	var lt *ir.Type
	for _, param := range irOp.Params {
		if param.Name == a.LengthIs {
			lt = param.Type
		}
	}
	if lt == nil {
		c.report("FV009", pos, "%s: length_is(%s): no such parameter in the operation", ctx, a.LengthIs)
		return
	}
	switch lt.Kind {
	case ir.Int32, ir.Uint32, ir.Int64, ir.Uint64:
	default:
		c.report("FV009", pos, "%s: length_is(%s): parameter is %s, need an integer", ctx, a.LengthIs, lt.Signature())
	}
}

// attrPos picks the most precise recorded position: the first listed
// attribute that was explicitly applied, else the parameter clause.
func attrPos(a *pres.ParamAttrs, attrs ...string) idl.Pos {
	for _, name := range attrs {
		if p, ok := a.PosOf(name); ok {
			return p
		}
	}
	return a.Pos
}

// resolveParam finds the wire type and direction of a presentation
// parameter entry, treating ResultParam as an out pseudo-parameter.
func resolveParam(irOp *ir.Operation, pn string) (*ir.Type, ir.Direction, bool) {
	if pn == pres.ResultParam {
		if !irOp.HasResult() {
			return nil, 0, false
		}
		return irOp.Result, ir.Out, true
	}
	for _, param := range irOp.Params {
		if param.Name == pn {
			return param.Type, param.Dir, true
		}
	}
	return nil, 0, false
}

func sortedOpNames(ops map[string]*pres.OpPres) []string {
	names := make([]string, 0, len(ops))
	for name := range ops {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sortedParamNames(params map[string]*pres.ParamAttrs) []string {
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
