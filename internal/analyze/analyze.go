// Package analyze is flexvet: a multi-pass static analyzer over the
// (network contract, presentation) pair produced by the first two
// compiler stages.
//
// The paper's central safety argument is that presentation
// annotations never change the network contract; flexvet checks the
// contrapositive before anything reaches the runtime. Three passes
// run over one or more endpoints of an interface:
//
//   - cross-endpoint compatibility: two independently-annotated
//     endpoints of the same interface must share an identical wire
//     contract (FV001), and annotation *pairs* that are individually
//     legal but jointly unsafe are reported (FV002, FV003);
//   - annotation safety lints: combinations that leak, alias, or
//     grant trust across a protection boundary (FV004–FV006);
//   - presentation/interface consistency: annotations that are dead
//     or meaningless for their parameter's type and direction
//     (FV007–FV012), reported exhaustively with source positions
//     rather than failing at the first error the way
//     pres.Validate does.
//
// Entry points: Check for plain presentations, CheckEndpoints when
// transport bindings and endpoint labels are known. flexc vet is the
// CLI; core.Compile runs the single-endpoint passes when Options.Vet
// is set.
package analyze

import (
	"fmt"

	"flexrpc/internal/idl"
	"flexrpc/internal/ir"
	"flexrpc/internal/pres"
)

// An Endpoint is one side of a connection as seen by the analyzer.
type Endpoint struct {
	// Pres is the endpoint's presentation (required).
	Pres *pres.Presentation
	// Transport optionally names the transport the endpoint binds to
	// ("inproc", "machipc", "fbufrpc", "suntcp"); the trust lint
	// (FV005) fires only for network transports.
	Transport string
	// Label names the endpoint in cross-endpoint messages; defaults
	// to "endpoint1", "endpoint2", ...
	Label string
	// PooledClient reports that the endpoint is bound through the
	// pooled parallel client (runtime.NewParallelClient), whose
	// recycled per-call state requires re-entrant marshal hooks.
	PooledClient bool
	// Hooks is the SpecialHooks implementation the endpoint binds
	// with, if any; FV013 checks it against runtime.StepHooks when
	// PooledClient is set and a parameter is [special].
	Hooks any
}

// IsNetworkTransport reports whether the named transport crosses a
// machine boundary, making trust grants dangerous (FV005). The
// in-memory transports (inproc, machipc, fbufrpc) are same-machine.
func IsNetworkTransport(name string) bool {
	switch name {
	case "suntcp", "sunudp", "tcp", "udp", "net":
		return true
	}
	return false
}

// Check runs every applicable pass over the given presentations of
// iface: single-endpoint lints on each, cross-endpoint compatibility
// on every pair. iface may be nil when at least one presentation is
// given; the first presentation's interface is then the reference
// contract.
func Check(iface *ir.Interface, ps ...*pres.Presentation) []Diagnostic {
	eps := make([]Endpoint, len(ps))
	for i, p := range ps {
		eps[i] = Endpoint{Pres: p}
	}
	return CheckEndpoints(iface, eps)
}

// CheckEndpoints is Check with transport bindings and labels.
func CheckEndpoints(iface *ir.Interface, eps []Endpoint) []Diagnostic {
	if iface == nil && len(eps) > 0 {
		iface = eps[0].Pres.Interface
	}
	c := &checker{}
	for i := range eps {
		if eps[i].Label == "" {
			eps[i].Label = fmt.Sprintf("endpoint%d", i+1)
		}
		c.checkEndpoint(iface, eps[i])
	}
	for i := 0; i < len(eps); i++ {
		for j := i + 1; j < len(eps); j++ {
			c.checkPair(iface, eps[i], eps[j])
		}
	}
	sortDiags(c.diags)
	return c.diags
}

// checker accumulates findings across passes.
type checker struct {
	diags []Diagnostic
}

// report files a finding under the given check ID at the registry's
// default severity.
func (c *checker) report(id string, pos idl.Pos, format string, args ...any) {
	c.reportSev(id, registry[id].Severity, pos, format, args...)
}

// reportSev files a finding with an explicit severity (FV005
// escalates for [unprotected]).
func (c *checker) reportSev(id string, sev Severity, pos idl.Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		ID:       id,
		Severity: sev,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Fix:      registry[id].Fix,
	})
}
