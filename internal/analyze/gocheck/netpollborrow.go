// FV023: netpoll borrow-escape. The raw Sun RPC handler surface
// (Server.Register's ProcHandler) decodes straight out of the record
// buffer: xdr.Decoder.Opaque and FixedOpaque return slices that alias
// it. On the serial path that buffer is connection-private and stays
// valid until the connection's next record, which masks retention
// bugs in sequential tests. SetNetpoll(true) removes the mask: the
// netpoll runtime dispatches every record through the shared worker
// pool, which returns the record buffer to the pool the moment the
// handler returns — a retained alias is then rewritten under
// concurrent handlers for other connections. This analyzer runs the
// FV017 borrow-escape engine over every Register handler in any
// package that switches a server to netpoll mode, with the decoder's
// borrowing accessors as the alias sources. The safe alternatives are
// OpaqueCopy, OpaqueInto and String, which copy into owned storage.
package gocheck

import (
	"go/ast"
	"go/types"
)

// NetpollBorrow is the FV023 analyzer.
var NetpollBorrow = &Analyzer{
	ID:   "FV023",
	Name: "netpoll-borrow-escape",
	Doc:  "raw handler retains a record-aliasing []byte under the netpoll runtime",
	Run:  runNetpollBorrow,
}

// decoderBorrowSources are the xdr.Decoder accessors whose []byte
// results alias the request record buffer.
var decoderBorrowSources = map[string]string{
	"Opaque":      "the pooled request record",
	"FixedOpaque": "the pooled request record",
}

func runNetpollBorrow(p *Pass) {
	if !packageEnablesNetpoll(p.Pkg) {
		return
	}
	for _, h := range rawHandlers(p.Pkg) {
		checkNetpollBorrow(p, h)
	}
}

// packageEnablesNetpoll reports whether any code in the package calls
// SetNetpoll(true) on a flexrpc Server. The check is package-scoped
// rather than flow-sensitive: once a package opts a server into the
// netpoll runtime, every raw handler it registers must assume the
// shared-pool buffer lifetime (handlers and the mode switch rarely
// share a function, and a handler that is only safe in serial mode is
// a latent bug anyway). An explicit SetNetpoll(false) call does not
// count.
func packageEnablesNetpoll(pkg *Package) bool {
	enabled := false
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 || enabled {
				return !enabled
			}
			recv, method, ok := callMethod(pkg.Info, call)
			if !ok || recv != "Server" || method != "SetNetpoll" {
				return true
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && id.Name == "false" {
				return true
			}
			enabled = true
			return false
		})
		if enabled {
			return true
		}
	}
	return false
}

// A rawHandlerSite is one ProcHandler bound by Server.Register(proc,
// fn): the handler function body plus the *xdr.Decoder parameter it
// decodes from.
type rawHandlerSite struct {
	fn     *ast.FuncLit // nil when the handler is a declared function
	decl   *ast.FuncDecl
	decVar *types.Var // the *xdr.Decoder parameter object
	body   *ast.BlockStmt
}

func (h *rawHandlerSite) node() ast.Node {
	if h.fn != nil {
		return h.fn
	}
	return h.decl
}

// rawHandlers finds every Server.Register registration in the package
// whose handler argument is a function literal or a function declared
// in the same package. The Decoder-typed first parameter requirement
// is guaranteed by Register's ProcHandler signature; resolving the
// parameter object just gives the analysis its receiver variable.
func rawHandlers(pkg *Package) []rawHandlerSite {
	var sites []rawHandlerSite
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			recv, method, ok := callMethod(pkg.Info, call)
			if !ok || method != "Register" || recv != "Server" {
				return true
			}
			site := rawHandlerSite{}
			switch h := ast.Unparen(call.Args[1]).(type) {
			case *ast.FuncLit:
				site.fn = h
				site.body = h.Body
				site.decVar = decoderParamVar(pkg.Info, h.Type)
			case *ast.Ident:
				if obj, ok := pkg.Info.Uses[h].(*types.Func); ok {
					if fd := decls[obj]; fd != nil && fd.Body != nil {
						site.decl = fd
						site.body = fd.Body
						site.decVar = decoderParamVar(pkg.Info, fd.Type)
					}
				}
			}
			if site.body != nil && site.decVar != nil {
				sites = append(sites, site)
			}
			return true
		})
	}
	return sites
}

// decoderParamVar returns the object of the function's first parameter
// when it is a flexrpc Decoder.
func decoderParamVar(info *types.Info, ft *ast.FuncType) *types.Var {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return nil
	}
	field := ft.Params.List[0]
	if len(field.Names) == 0 {
		return nil
	}
	obj, ok := info.Defs[field.Names[0]].(*types.Var)
	if !ok || !isFlexType(obj.Type(), "Decoder") {
		return nil
	}
	return obj
}

// checkNetpollBorrow analyzes one Register handler body with the
// shared borrow engine, sourcing borrows from the decoder's aliasing
// accessors.
func checkNetpollBorrow(p *Pass, h rawHandlerSite) {
	info := p.Pkg.Info
	ba := &borrowAnalysis{
		p:        p,
		scope:    h.node(),
		body:     h.body,
		borrowed: make(map[*types.Var]string),
		storeFmt: "netpoll-mode handler stores a []byte aliasing %s into %s; " +
			"the worker pool recycles the record buffer when the handler returns",
		sendFmt: "netpoll-mode handler sends a []byte aliasing %s on a channel; " +
			"the receiver outlives the call and the worker pool recycles the record buffer under it",
		goFmt: "netpoll-mode handler hands a []byte aliasing %s to a goroutine; " +
			"the worker pool recycles the record buffer under it when the handler returns",
		captureFmt: "closure captures %s, a []byte aliasing %s; " +
			"if the closure outlives the handler the worker pool recycles the record buffer under it",
	}
	ba.source = func(e ast.Expr) (string, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return "", false
		}
		recv, method, ok := callMethod(info, call)
		if !ok || recv != "Decoder" {
			return "", false
		}
		src, ok := decoderBorrowSources[method]
		if !ok || !onCallVar(info, call, h.decVar) {
			return "", false
		}
		return src, true
	}
	ba.run()
}
