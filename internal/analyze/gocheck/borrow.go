// FV017: borrow-escape analysis. The compiled server plans decode in
// buffers by aliasing the request frame (the CORBA server mapping —
// paper §4.4.1), and caller-buffer/pooled-frame landings alias
// recycled storage; both are valid only for the duration of the
// handler. This pass tracks []byte values obtained from the borrowing
// Call accessors through local assignments and flags the ways they
// can outlive the call: stores into fields, globals, maps/slices
// declared outside the handler, channel sends, and capture by
// closures that demonstrably escape (launched with go, stored through
// an escaping assignment, or sent on a channel). Closures merely
// passed as call arguments are presumed synchronous — flagging them
// would condemn every timing or locking helper.
//
// The propagation and escape machinery (borrowAnalysis) is shared
// with FV023, which runs the same analysis over the raw Sun RPC
// handler surface with decoder-aliasing sources.
package gocheck

import (
	"go/ast"
	"go/types"
)

// BorrowEscape is the FV017 analyzer.
var BorrowEscape = &Analyzer{
	ID:   "FV017",
	Name: "borrow-escape",
	Doc:  "handler retains a frame-aliasing []byte past return",
	Run:  runBorrowEscape,
}

// borrowSources are the Call accessors whose []byte results alias
// recycled storage.
var borrowSources = map[string]string{
	"ArgBytes":     "the request frame",
	"Arg":          "the request frame",
	"OutBuffer":    "a pooled landing buffer",
	"ResultBuffer": "a pooled landing buffer",
}

func runBorrowEscape(p *Pass) {
	for _, h := range handlers(p.Pkg) {
		checkBorrowEscapes(p, h)
	}
}

// borrowAnalysis is the shared borrow-propagation and escape-flagging
// engine: source classifies the direct borrowing expressions (which
// differ between the Call accessor surface and the raw decoder
// surface), and the message formats carry each check's lifetime
// story. The engine tracks borrowed locals to a fixed point, then
// flags stores, sends, goroutine handoffs and escaping-closure
// captures.
type borrowAnalysis struct {
	p        *Pass
	scope    ast.Node       // the handler function node; "local" is judged against it
	body     *ast.BlockStmt // the handler body
	borrowed map[*types.Var]string
	// source classifies an expression as directly aliasing recycled
	// storage (not counting tracked locals or reslices, which the
	// engine handles).
	source func(e ast.Expr) (string, bool)
	// Message formats. storeFmt: (src, kind); sendFmt, goFmt: (src);
	// captureFmt: (name, src).
	storeFmt, sendFmt, goFmt, captureFmt string
}

// borrowedExpr classifies an expression as aliasing recycled storage:
// a direct source, a tracked local, or a reslice of either.
func (ba *borrowAnalysis) borrowedExpr(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return ba.borrowedExpr(x.X)
	case *ast.Ident:
		if v, ok := ba.p.Pkg.Info.Uses[x].(*types.Var); ok {
			if src, ok := ba.borrowed[v]; ok {
				return src, true
			}
		}
		return "", false
	}
	return ba.source(e)
}

// rhsFor pairs assignment targets with the expressions flowing into
// them: position-matched for n:=n assignments, and the single
// multi-value expression for v, err := f() forms — where only the
// first target receives the []byte (the rest are error/ok values).
func rhsFor(as *ast.AssignStmt, i int) ast.Expr {
	if len(as.Lhs) == len(as.Rhs) {
		return as.Rhs[i]
	}
	if len(as.Rhs) == 1 && i == 0 {
		return as.Rhs[0]
	}
	return nil
}

// run executes the analysis over the handler body.
func (ba *borrowAnalysis) run() {
	info := ba.p.Pkg.Info

	// Pass 1 (iterated to a fixed point for use-before-def chains):
	// propagate borrows through local assignments.
	for changed := true; changed; {
		changed = false
		ast.Inspect(ba.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				rhs := rhsFor(as, i)
				if rhs == nil {
					continue
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := localVar(info, id)
				if obj == nil || !declaredWithin(obj, ba.scope) {
					continue
				}
				if src, ok := ba.borrowedExpr(rhs); ok {
					if _, seen := ba.borrowed[obj]; !seen {
						ba.borrowed[obj] = src
						changed = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: flag the escapes.
	ast.Inspect(ba.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				rhs := rhsFor(x, i)
				if rhs == nil {
					continue
				}
				kind, escapes := escapingLHS(info, lhs, ba.scope)
				if !escapes {
					continue
				}
				if src, isBorrowed := ba.borrowedExpr(rhs); isBorrowed {
					ba.p.Reportf(rhs.Pos(), ba.storeFmt, src, kind)
				}
				if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
					ba.reportClosureCaptures(lit)
				}
			}
		case *ast.SendStmt:
			if src, ok := ba.borrowedExpr(x.Value); ok {
				ba.p.Reportf(x.Value.Pos(), ba.sendFmt, src)
			}
			if lit, ok := ast.Unparen(x.Value).(*ast.FuncLit); ok {
				ba.reportClosureCaptures(lit)
			}
		case *ast.GoStmt:
			// Everything a goroutine sees outlives the handler: the
			// function literal's captures and any borrowed arguments.
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				ba.reportClosureCaptures(lit)
			}
			for _, arg := range x.Call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					ba.reportClosureCaptures(lit)
					continue
				}
				if src, ok := ba.borrowedExpr(arg); ok {
					ba.p.Reportf(arg.Pos(), ba.goFmt, src)
				}
			}
		}
		return true
	})
}

// reportClosureCaptures flags references to borrowed variables from
// inside an escaping closure.
func (ba *borrowAnalysis) reportClosureCaptures(lit *ast.FuncLit) {
	info := ba.p.Pkg.Info
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			if src, isBorrowed := ba.borrowed[v]; isBorrowed && !declaredWithin(v, lit) {
				ba.p.Reportf(id.Pos(), ba.captureFmt, id.Name, src)
			}
		}
		return true
	})
}

// checkBorrowEscapes analyzes one Dispatcher.Handle handler body.
func checkBorrowEscapes(p *Pass, h handlerSite) {
	info := p.Pkg.Info
	ba := &borrowAnalysis{
		p:        p,
		scope:    h.node(),
		body:     h.body,
		borrowed: make(map[*types.Var]string),
		storeFmt: "handler stores a []byte aliasing %s into %s; the buffer is recycled after the reply is marshaled",
		sendFmt:  "handler sends a []byte aliasing %s on a channel; the receiver outlives the call and the buffer is recycled",
		goFmt:    "handler hands a []byte aliasing %s to a goroutine; the goroutine can outlive the call and the buffer is recycled under it",
		captureFmt: "closure captures %s, a []byte aliasing %s; " +
			"if the closure outlives the handler the buffer is recycled under it",
	}
	ba.source = func(e ast.Expr) (string, bool) {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if recv, method, ok := callMethod(info, x); ok && recv == "Call" {
				// Call.Arg is covered by the TypeAssertExpr case:
				// only its []byte assertions alias the frame (string
				// and scalar values are owned storage).
				if src, ok := borrowSources[method]; ok && method != "Arg" && onCallVar(info, x, h.callVar) {
					return src, true
				}
			}
		case *ast.TypeAssertExpr:
			if !isByteSlice(info, x) {
				return "", false
			}
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
				if recv, method, ok := callMethod(info, call); ok && recv == "Call" &&
					method == "Arg" && onCallVar(info, call, h.callVar) {
					return borrowSources["Arg"], true
				}
			}
			return ba.borrowedExpr(x.X)
		}
		return "", false
	}
	ba.run()
}

// isByteSlice reports whether a type assertion asserts to []byte.
func isByteSlice(info *types.Info, x *ast.TypeAssertExpr) bool {
	if x.Type == nil {
		return false
	}
	tv, ok := info.Types[x.Type]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// onCallVar reports whether a method call's receiver is the
// handler's own *Call parameter (not some other Call value).
func onCallVar(info *types.Info, call *ast.CallExpr, callVar *types.Var) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	return info.Uses[id] == callVar
}

// localVar resolves an assignment target identifier to its variable
// object, through both := definitions and = uses.
func localVar(info *types.Info, id *ast.Ident) *types.Var {
	if obj, ok := info.Defs[id].(*types.Var); ok {
		return obj
	}
	obj, _ := info.Uses[id].(*types.Var)
	return obj
}

// escapingLHS classifies an assignment target that outlives the
// handler: struct fields, dereferences, element stores into
// non-local containers, and non-local variables.
func escapingLHS(info *types.Info, lhs ast.Expr, scope ast.Node) (string, bool) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := localVar(info, x)
		if obj == nil || declaredWithin(obj, scope) {
			return "", false
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return "global " + x.Name, true
		}
		return "captured variable " + x.Name, true
	case *ast.SelectorExpr:
		return "field " + x.Sel.Name, true
	case *ast.StarExpr:
		return "pointed-to storage", true
	case *ast.IndexExpr:
		root := rootIdent(x.X)
		if root != nil {
			if obj := localVar(info, root); obj != nil && declaredWithin(obj, scope) {
				return "", false // element of a handler-local container
			}
		}
		return "an element of a non-local container", true
	}
	return "", false
}
