// FV017: borrow-escape analysis. The compiled server plans decode in
// buffers by aliasing the request frame (the CORBA server mapping —
// paper §4.4.1), and caller-buffer/pooled-frame landings alias
// recycled storage; both are valid only for the duration of the
// handler. This pass tracks []byte values obtained from the borrowing
// Call accessors through local assignments and flags the ways they
// can outlive the call: stores into fields, globals, maps/slices
// declared outside the handler, channel sends, and capture by
// closures that demonstrably escape (launched with go, stored through
// an escaping assignment, or sent on a channel). Closures merely
// passed as call arguments are presumed synchronous — flagging them
// would condemn every timing or locking helper.
package gocheck

import (
	"go/ast"
	"go/types"
)

// BorrowEscape is the FV017 analyzer.
var BorrowEscape = &Analyzer{
	ID:   "FV017",
	Name: "borrow-escape",
	Doc:  "handler retains a frame-aliasing []byte past return",
	Run:  runBorrowEscape,
}

// borrowSources are the Call accessors whose []byte results alias
// recycled storage.
var borrowSources = map[string]string{
	"ArgBytes":     "the request frame",
	"Arg":          "the request frame",
	"OutBuffer":    "a pooled landing buffer",
	"ResultBuffer": "a pooled landing buffer",
}

func runBorrowEscape(p *Pass) {
	for _, h := range handlers(p.Pkg) {
		checkBorrowEscapes(p, h)
	}
}

// checkBorrowEscapes analyzes one handler body.
func checkBorrowEscapes(p *Pass, h handlerSite) {
	info := p.Pkg.Info
	scope := h.node()

	// borrowed holds local variables known to alias recycled
	// storage, mapped to what they alias (for the message).
	borrowed := make(map[*types.Var]string)

	// borrowedExpr classifies an expression as aliasing recycled
	// storage: a direct borrowing accessor call, a tracked local, a
	// reslice of either, or a type assertion over Call.Arg.
	var borrowedExpr func(e ast.Expr) (string, bool)
	borrowedExpr = func(e ast.Expr) (string, bool) {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if recv, method, ok := callMethod(info, x); ok && recv == "Call" {
				// Call.Arg is covered by the TypeAssertExpr case:
				// only its []byte assertions alias the frame (string
				// and scalar values are owned storage).
				if src, ok := borrowSources[method]; ok && method != "Arg" && onCallVar(info, x, h.callVar) {
					return src, true
				}
			}
		case *ast.TypeAssertExpr:
			if !isByteSlice(info, x) {
				return "", false
			}
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
				if recv, method, ok := callMethod(info, call); ok && recv == "Call" &&
					method == "Arg" && onCallVar(info, call, h.callVar) {
					return borrowSources["Arg"], true
				}
			}
			return borrowedExpr(x.X)
		case *ast.SliceExpr:
			return borrowedExpr(x.X)
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				if src, ok := borrowed[v]; ok {
					return src, true
				}
			}
		}
		return "", false
	}

	// Pass 1 (iterated to a fixed point for use-before-def chains):
	// propagate borrows through local assignments.
	for changed := true; changed; {
		changed = false
		ast.Inspect(h.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := localVar(info, id)
				if obj == nil || !declaredWithin(obj, scope) {
					continue
				}
				if src, ok := borrowedExpr(as.Rhs[i]); ok {
					if _, seen := borrowed[obj]; !seen {
						borrowed[obj] = src
						changed = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: flag the escapes.
	ast.Inspect(h.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				kind, escapes := escapingLHS(info, lhs, scope)
				if !escapes {
					continue
				}
				if src, isBorrowed := borrowedExpr(x.Rhs[i]); isBorrowed {
					p.Reportf(x.Rhs[i].Pos(),
						"handler stores a []byte aliasing %s into %s; the buffer is recycled after the reply is marshaled",
						src, kind)
				}
				if lit, ok := ast.Unparen(x.Rhs[i]).(*ast.FuncLit); ok {
					reportClosureCaptures(p, lit, borrowed)
				}
			}
		case *ast.SendStmt:
			if src, ok := borrowedExpr(x.Value); ok {
				p.Reportf(x.Value.Pos(),
					"handler sends a []byte aliasing %s on a channel; the receiver outlives the call and the buffer is recycled",
					src)
			}
			if lit, ok := ast.Unparen(x.Value).(*ast.FuncLit); ok {
				reportClosureCaptures(p, lit, borrowed)
			}
		case *ast.GoStmt:
			// Everything a goroutine sees outlives the handler: the
			// function literal's captures and any borrowed arguments.
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				reportClosureCaptures(p, lit, borrowed)
			}
			for _, arg := range x.Call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					reportClosureCaptures(p, lit, borrowed)
					continue
				}
				if src, ok := borrowedExpr(arg); ok {
					p.Reportf(arg.Pos(),
						"handler hands a []byte aliasing %s to a goroutine; the goroutine can outlive the call and the buffer is recycled under it",
						src)
				}
			}
		}
		return true
	})
}

// isByteSlice reports whether a type assertion asserts to []byte.
func isByteSlice(info *types.Info, x *ast.TypeAssertExpr) bool {
	if x.Type == nil {
		return false
	}
	tv, ok := info.Types[x.Type]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// onCallVar reports whether a method call's receiver is the
// handler's own *Call parameter (not some other Call value).
func onCallVar(info *types.Info, call *ast.CallExpr, callVar *types.Var) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	return info.Uses[id] == callVar
}

// localVar resolves an assignment target identifier to its variable
// object, through both := definitions and = uses.
func localVar(info *types.Info, id *ast.Ident) *types.Var {
	if obj, ok := info.Defs[id].(*types.Var); ok {
		return obj
	}
	obj, _ := info.Uses[id].(*types.Var)
	return obj
}

// escapingLHS classifies an assignment target that outlives the
// handler: struct fields, dereferences, element stores into
// non-local containers, and non-local variables.
func escapingLHS(info *types.Info, lhs ast.Expr, scope ast.Node) (string, bool) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := localVar(info, x)
		if obj == nil || declaredWithin(obj, scope) {
			return "", false
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return "global " + x.Name, true
		}
		return "captured variable " + x.Name, true
	case *ast.SelectorExpr:
		return "field " + x.Sel.Name, true
	case *ast.StarExpr:
		return "pointed-to storage", true
	case *ast.IndexExpr:
		root := rootIdent(x.X)
		if root != nil {
			if obj := localVar(info, root); obj != nil && declaredWithin(obj, scope) {
				return "", false // element of a handler-local container
			}
		}
		return "an element of a non-local container", true
	}
	return "", false
}

// reportClosureCaptures flags references to borrowed variables from
// inside an escaping closure.
func reportClosureCaptures(p *Pass, lit *ast.FuncLit, borrowed map[*types.Var]string) {
	info := p.Pkg.Info
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			if src, isBorrowed := borrowed[v]; isBorrowed && !declaredWithin(v, lit) {
				p.Reportf(id.Pos(),
					"closure captures %s, a []byte aliasing %s; if the closure outlives the handler the buffer is recycled under it",
					id.Name, src)
			}
		}
		return true
	})
}
