// FV019: pooled-client hook misuse at the call site. The pooled
// parallel client recycles per-call marshal state across goroutines,
// so its [special] hooks must come in the re-entrant bind-time form
// (runtime.StepHooks). FV013 sees the presentation side of this
// contract; this pass sees the Go side — a NewParallelClient call
// whose hooks argument is a concrete SpecialHooks implementation
// without the StepHooks methods, which the runtime will reject at
// bind time.
package gocheck

import (
	"go/ast"
	"go/types"
)

// PooledHooks is the FV019 analyzer.
var PooledHooks = &Analyzer{
	ID:   "FV019",
	Name: "pooled-bind-without-step-hooks",
	Doc:  "NewParallelClient bound with hooks lacking StepHooks",
	Run:  runPooledHooks,
}

func runPooledHooks(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Name() != "NewParallelClient" || !isFlexPkg(fn.Pkg()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Params().Len() != len(call.Args) {
				return true
			}
			// The hooks parameter is the SpecialHooks-typed one.
			hooksIdx := -1
			for i := 0; i < sig.Params().Len(); i++ {
				if isFlexType(sig.Params().At(i).Type(), "SpecialHooks") {
					hooksIdx = i
				}
			}
			if hooksIdx < 0 {
				return true
			}
			checkHooksArg(p, fn, call.Args[hooksIdx])
			return true
		})
	}
}

// checkHooksArg flags a hooks argument whose concrete static type
// implements SpecialHooks but not StepHooks. Interface-typed
// arguments (pass-through wrappers) and nil are left alone: their
// dynamic type is unknown here, and FV013 covers the presentation
// side.
func checkHooksArg(p *Pass, fn *types.Func, arg ast.Expr) {
	tv, ok := p.Pkg.Info.Types[arg]
	if !ok || tv.IsNil() {
		return
	}
	t := tv.Type
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return
	}
	stepHooks := flexInterface(fn, "StepHooks")
	if stepHooks == nil || types.Implements(t, stepHooks) {
		return
	}
	p.Reportf(arg.Pos(),
		"hooks %s bound through the pooled parallel client do not implement runtime.StepHooks; NewParallelClient rejects non-re-entrant hooks at bind time",
		types.TypeString(t, types.RelativeTo(p.Pkg.Types)))
}

// flexInterface looks up a named interface in the flexrpc package
// that declares fn (the runtime package or its re-export layer).
func flexInterface(fn *types.Func, name string) *types.Interface {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}
