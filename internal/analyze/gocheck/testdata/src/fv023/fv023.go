// Seeded FV023 violations: raw Sun RPC handlers retaining
// record-aliasing decoder slices in a package that switches the
// server to netpoll mode, next to the copies that are fine.
package fv023

import (
	"flexrpc/internal/sunrpc"
	"flexrpc/internal/xdr"
)

var lastRecord []byte // retention target

type index struct {
	keys [][]byte
	hot  []byte
}

func Build(ix *index, sink chan []byte) *sunrpc.Server {
	s := sunrpc.NewServer(0x20049630, 1)
	s.SetNetpoll(true)
	s.Register(1, func(d *xdr.Decoder, e *xdr.Encoder) error {
		b, err := d.Opaque()
		if err != nil {
			return err
		}
		lastRecord = b // want FV023: store into global
		return nil
	})
	s.Register(2, func(d *xdr.Decoder, e *xdr.Encoder) error {
		b, err := d.FixedOpaque(16)
		if err != nil {
			return err
		}
		ix.hot = b[4:] // want FV023: store into field, through a reslice
		return nil
	})
	s.Register(3, func(d *xdr.Decoder, e *xdr.Encoder) error {
		b, err := d.Opaque()
		if err != nil {
			return err
		}
		sink <- b // want FV023: channel send
		return nil
	})
	s.Register(4, func(d *xdr.Decoder, e *xdr.Encoder) error {
		key, err := d.Opaque()
		if err != nil {
			return err
		}
		go stash(key) // want FV023: goroutine argument
		return nil
	})
	s.Register(5, indexKey(ix))
	s.Register(6, func(d *xdr.Decoder, e *xdr.Encoder) error {
		// Clean: OpaqueCopy and OpaqueInto return owned storage.
		b, err := d.OpaqueCopy()
		if err != nil {
			return err
		}
		lastRecord = b
		dst, err := d.OpaqueInto(make([]byte, 64))
		if err != nil {
			return err
		}
		ix.hot = dst
		// Clean: the slice header never escapes; only derived values do.
		raw, err := d.Opaque()
		if err != nil {
			return err
		}
		e.PutUint32(uint32(len(raw)))
		return nil
	})
	return s
}

// declWrite is registered by name below; declared handlers are
// analyzed the same as literals.
func declWrite(d *xdr.Decoder, e *xdr.Encoder) error {
	b, err := d.Opaque()
	if err != nil {
		return err
	}
	lastRecord = b[:8] // want FV023: store into global from a declared handler
	return nil
}

func bindDecl(s *sunrpc.Server) {
	s.Register(7, declWrite)
}

func indexKey(ix *index) sunrpc.ProcHandler {
	// Not a registration-site literal, so this body is out of scope for
	// the analyzer (the conversion hides the handler); kept to pin the
	// analyzer's behavior on indirect registrations.
	return func(d *xdr.Decoder, e *xdr.Encoder) error {
		b, _ := d.Opaque()
		ix.keys[0] = b
		return nil
	}
}

func stash([]byte) {}
