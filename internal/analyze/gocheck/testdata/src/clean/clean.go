// A clean package exercising every pattern near the checks' edges:
// the suite must stay silent here.
package clean

import (
	"context"

	runtime "flexrpc/internal/runtime"
)

var archive [][]byte

func Register(d *runtime.Dispatcher) {
	d.Handle("put", func(c *runtime.Call) error {
		// Copies may be retained anywhere.
		archive = append(archive, append([]byte(nil), c.ArgBytes(0)...))
		return nil
	})
	d.Handle("sum", func(c *runtime.Call) error {
		// Borrow used and dropped within the call.
		b := c.ArgBytes(0)
		var sum uint32
		for _, x := range b {
			sum += uint32(x)
		}
		c.SetResult(sum)
		return nil
	})
	d.Handle("echo", func(c *runtime.Call) error {
		// Returning a borrow through SetResult is fine: the reply is
		// marshaled out of it before the frame is recycled.
		c.SetResult(c.ArgBytes(0))
		return nil
	})
	d.Handle("local", func(c *runtime.Call) error {
		// Handler-local containers may hold borrows.
		parts := make([][]byte, 2)
		parts[0] = c.ArgBytes(0)
		parts[1] = parts[0][1:]
		c.SetResult(uint32(len(parts[1])))
		return nil
	})
}

func Drive(ctx context.Context, client *runtime.Client) error {
	_, _, err := client.InvokeContext(ctx, "put", []runtime.Value{[]byte("x")}, nil, nil)
	return err
}
