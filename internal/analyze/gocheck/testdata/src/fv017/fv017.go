// Seeded FV017 violations: every way a borrowed []byte can outlive
// its handler, next to the copies that are fine.
package fv017

import (
	runtime "flexrpc/internal/runtime"
)

var lastWrite []byte // retention target

type journal struct {
	entries [][]byte
	tail    []byte
}

func Register(d *runtime.Dispatcher, j *journal, sink chan []byte) {
	d.Handle("put", func(c *runtime.Call) error {
		lastWrite = c.ArgBytes(0) // want FV017: store into global
		return nil
	})
	d.Handle("log", func(c *runtime.Call) error {
		b := c.ArgBytes(0)
		j.tail = b // want FV017: store into field
		return nil
	})
	d.Handle("enqueue", func(c *runtime.Call) error {
		sink <- c.ArgBytes(0) // want FV017: channel send
		return nil
	})
	d.Handle("spawn", func(c *runtime.Call) error {
		data := c.Arg(0).([]byte)
		go func() {
			consume(data) // want FV017: closure capture
		}()
		return nil
	})
	d.Handle("index", func(c *runtime.Call) error {
		view := c.ArgBytes(0)[4:]
		j.entries[0] = view // want FV017: element of non-local container
		return nil
	})
	d.Handle("copied", func(c *runtime.Call) error {
		// Clean: contents are copied, the slice header never escapes.
		lastWrite = append([]byte(nil), c.ArgBytes(0)...)
		local := c.ArgBytes(0)
		dst := make([]byte, len(local))
		copy(dst, local)
		j.tail = dst
		n := len(local)
		c.AfterReply(func() { consumeLen(n) })
		return nil
	})
	d.Handle("deferred", func(c *runtime.Call) error {
		// Clean: AfterReply runs before the frame is recycled.
		view := c.ArgBytes(0)
		c.AfterReply(func() { consume(view) })
		return nil
	})
}

func consume([]byte) {}
func consumeLen(int) {}
