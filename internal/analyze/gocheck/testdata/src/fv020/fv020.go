// Seeded FV020 violations: severing the context chain on both the
// handler and the caller side.
package fv020

import (
	"context"

	runtime "flexrpc/internal/runtime"
)

func Register(d *runtime.Dispatcher, store interface {
	Fetch(ctx context.Context, key string) ([]byte, error)
}) {
	d.Handle("fetch", func(c *runtime.Call) error {
		data, err := store.Fetch(context.Background(), c.Arg(0).(string)) // want FV020: handler drops Call.Context
		if err != nil {
			return err
		}
		c.SetResult(data)
		return nil
	})
	d.Handle("fetch_ok", func(c *runtime.Call) error {
		// Clean: the client's deadline reaches the backing store.
		data, err := store.Fetch(c.Context(), c.Arg(0).(string))
		if err != nil {
			return err
		}
		c.SetResult(data)
		return nil
	})
}

func Relay(ctx context.Context, client *runtime.Client, op string, args []runtime.Value) error {
	_, _, err := client.InvokeContext(context.Background(), op, args, nil, nil) // want FV020: ctx param dropped
	return err
}

func RelayOK(ctx context.Context, client *runtime.Client, op string, args []runtime.Value) error {
	// Clean: the incoming deadline rides through.
	_, _, err := client.InvokeContext(ctx, op, args, nil, nil)
	return err
}

func Drive(client *runtime.Client, op string) error {
	// Clean: no context in scope; Background is the only choice.
	_, _, err := client.InvokeContext(context.Background(), op, nil, nil, nil)
	return err
}
