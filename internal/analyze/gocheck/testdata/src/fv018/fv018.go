// Seeded FV018 violations: handlers for [idempotent] operations
// mutating state a retry would mutate again.
package fv018

import (
	runtime "flexrpc/internal/runtime"
)

var total int64

func Register(d *runtime.Dispatcher) {
	hits := make(map[string]int)
	var lastKey string
	d.Handle("bump", func(c *runtime.Call) error {
		key := c.Arg(0).(string)
		total += 1    // want FV018: global write
		hits[key]++   // want FV018: captured map write
		lastKey = key // want FV018: captured variable write
		c.SetResult(int64(total))
		return nil
	})
	d.Handle("peek", func(c *runtime.Call) error {
		// Clean: [idempotent] reads with only local state.
		sum := 0
		for _, n := range hits {
			sum += n
		}
		c.SetResult(int64(sum))
		return nil
	})
	d.Handle("record", func(c *runtime.Call) error {
		// Clean: "record" is not [idempotent]; the at-most-once
		// reply cache suppresses duplicate executions.
		total++
		return nil
	})
	_ = lastKey
}
