// Seeded FV019 violation: binding plain SpecialHooks through the
// pooled parallel client.
package fv019

import (
	"flexrpc/internal/pres"
	runtime "flexrpc/internal/runtime"
)

// plainHooks implements SpecialHooks but not the re-entrant
// StepHooks interface the pooled client requires.
type plainHooks struct{}

func (plainHooks) EncodeSpecial(op, param string, enc runtime.Encoder, v runtime.Value) error {
	return nil
}

func (plainHooks) DecodeSpecial(op, param string, dec runtime.Decoder) (runtime.Value, error) {
	return nil, nil
}

// stepHooks is the bind-time form and is fine.
type stepHooks struct{ plainHooks }

func (stepHooks) EncodeStep(op, param string) runtime.EncodeStepFn { return nil }
func (stepHooks) DecodeStep(op, param string) runtime.DecodeStepFn { return nil }

func Bind(p *pres.Presentation, conn runtime.Conn) (*runtime.Client, error) {
	return runtime.NewParallelClient(p, runtime.XDRCodec, conn, plainHooks{}) // want FV019
}

func BindStep(p *pres.Presentation, conn runtime.Conn) (*runtime.Client, error) {
	// Clean: stepHooks implements StepHooks.
	return runtime.NewParallelClient(p, runtime.XDRCodec, conn, stepHooks{})
}

func BindSerial(p *pres.Presentation, conn runtime.Conn, hooks runtime.SpecialHooks) (*runtime.Client, error) {
	// Clean: interface-typed pass-through; the dynamic type is
	// unknown here and the serial client takes plain hooks anyway.
	return runtime.NewClient(p, runtime.XDRCodec, conn, hooks)
}
