// FV018: idempotency purity. An [idempotent] operation skips the
// at-most-once reply cache — the session layer retransmits it and the
// server re-executes, on the annotation's promise that re-execution
// is invisible. A handler that writes captured or global state breaks
// the promise: each retry repeats the write. This pass needs the PDL
// contract bound (flexc vet -go -idl/-pdl) to know which operations
// carry [idempotent]; it is silent otherwise.
package gocheck

import (
	"go/ast"
)

// IdempotentPurity is the FV018 analyzer.
var IdempotentPurity = &Analyzer{
	ID:   "FV018",
	Name: "idempotent-impure-handler",
	Doc:  "[idempotent] handler writes captured or global state",
	Run:  runIdempotentPurity,
}

func runIdempotentPurity(p *Pass) {
	if p.Contract == nil {
		return
	}
	for _, h := range handlers(p.Pkg) {
		if h.op == "" {
			continue
		}
		op := p.Contract.Op(h.op)
		if op == nil || !op.Idempotent {
			continue
		}
		checkHandlerPurity(p, h)
	}
}

// checkHandlerPurity flags writes from the handler body to storage
// declared outside it.
func checkHandlerPurity(p *Pass, h handlerSite) {
	info := p.Pkg.Info
	scope := h.node()
	flag := func(lhs ast.Expr) {
		kind, escapes := escapingLHS(info, lhs, scope)
		if !escapes {
			return
		}
		p.Reportf(lhs.Pos(),
			"handler for [idempotent] operation %q writes %s; a retransmitted execution repeats the write without duplicate suppression",
			h.op, kind)
	}
	ast.Inspect(h.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if n != scope {
				// Writes inside nested closures execute under the
				// same retried call; keep walking.
				return true
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				flag(lhs)
			}
		case *ast.IncDecStmt:
			flag(x.X)
		}
		return true
	})
}
