// Package gocheck is the Go-code half of flexvet: where the analyze
// package checks the (contract, presentation) pair, gocheck checks
// the user Go code that must honor it. The paper's optimizations are
// sound only because annotations are promises — a borrowed []byte
// really is dropped before return, an [idempotent] handler really is
// re-executable — and nothing in the runtime can see a broken promise
// until it corrupts. These analyzers close that gap the way gVisor's
// checklocks/checkescape passes encode runtime invariants as static
// analyses.
//
// The suite follows the go/analysis model — one Analyzer per
// invariant, each a function over a typechecked package pass — with a
// self-contained driver (load.go) so the toolchain is the only
// dependency. Findings are ordinary flexvet Diagnostics (FV017–FV020)
// and render beside the presentation-side checks.
package gocheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"flexrpc/internal/analyze"
	"flexrpc/internal/idl"
	"flexrpc/internal/pres"
)

// An Analyzer is one Go-side flexvet check.
type Analyzer struct {
	// ID is the check's registry identifier ("FV017"...).
	ID string
	// Name is the short kebab-case name.
	Name string
	// Doc is a one-line summary.
	Doc string
	// Run inspects one package pass and reports findings.
	Run func(*Pass)
}

// Analyzers is the Go-side suite, in ID order.
var Analyzers = []*Analyzer{
	BorrowEscape,
	IdempotentPurity,
	PooledHooks,
	ContextDiscipline,
	NetpollBorrow,
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Pkg      *Package
	Contract *pres.Presentation // nil when no PDL contract is bound
	analyzer *Analyzer
	checker  *Checker
}

// A Checker runs the analyzer suite and accumulates findings.
type Checker struct {
	// Contract optionally binds the PDL presentation whose
	// annotations the Go code must honor; annotation-dependent
	// checks (FV018) are silent without it.
	Contract *pres.Presentation
	// TrimDir, when set, is stripped from reported file paths so
	// diagnostics and goldens are stable across checkouts.
	TrimDir string

	diags []analyze.Diagnostic
}

// CheckPackages runs every analyzer over every package. A panicking
// analyzer is reported as a LoadError (internal failure, exit 2)
// naming the analyzer, never as a finding.
func (c *Checker) CheckPackages(pkgs []*Package) (diags []analyze.Diagnostic, err error) {
	for _, pkg := range pkgs {
		for _, a := range Analyzers {
			if perr := c.runOne(a, pkg); perr != nil {
				return nil, perr
			}
		}
	}
	analyze.SortDiags(c.diags)
	return c.diags, nil
}

func (c *Checker) runOne(a *Analyzer, pkg *Package) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = loadErrf("analyzer %s panicked on %s: %v", a.ID, pkg.ImportPath, r)
		}
	}()
	a.Run(&Pass{Pkg: pkg, Contract: c.Contract, analyzer: a, checker: c})
	return nil
}

// Reportf files a finding at the given position under the pass's
// analyzer ID, with severity and fix taken from the check registry.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	file := position.Filename
	if p.checker.TrimDir != "" {
		if rel, err := filepath.Rel(p.checker.TrimDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	info := analyze.Lookup(p.analyzer.ID)
	p.checker.diags = append(p.checker.diags, analyze.Diagnostic{
		ID:       p.analyzer.ID,
		Severity: info.Severity,
		Pos:      idl.Pos{File: file, Line: position.Line, Col: position.Column},
		Message:  fmt.Sprintf(format, args...),
		Fix:      info.Fix,
	})
}

// ---- flexrpc API recognition ----------------------------------------
//
// The analyzers key on the runtime package's API by object identity
// where possible and by (name, package-path) where the object comes
// through the flexrpc re-export layer. Matching the path by suffix
// keeps the checks working when the module is vendored or renamed.

// isFlexPkg reports whether a types package is the flexrpc runtime
// or its public re-export surface.
func isFlexPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "flexrpc" || strings.HasSuffix(path, "flexrpc") ||
		strings.Contains(path, "flexrpc/")
}

// namedOf unwraps pointers and aliases down to a named type.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isFlexType reports whether t (possibly behind a pointer) is the
// named flexrpc type with the given name.
func isFlexType(t types.Type, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	return n.Obj().Name() == name && isFlexPkg(n.Obj().Pkg())
}

// callMethod resolves a call expression to (receiver-type-name,
// method-name) when the callee is a method on a flexrpc type.
func callMethod(info *types.Info, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	n := namedOf(selection.Recv())
	if n == nil || !isFlexPkg(n.Obj().Pkg()) {
		return "", "", false
	}
	return n.Obj().Name(), sel.Sel.Name, true
}

// calleeFunc resolves a call to its package-level *types.Func (direct
// calls and method calls), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// ---- handler discovery ----------------------------------------------

// A handlerSite is one server work function bound by
// Dispatcher.Handle("op", fn): the registered operation name plus the
// function body and the *Call parameter it receives.
type handlerSite struct {
	op      string       // operation name when the argument is a string literal, else ""
	fn      *ast.FuncLit // nil when the handler is a declared function
	decl    *ast.FuncDecl
	callVar *types.Var // the *runtime.Call parameter object
	body    *ast.BlockStmt
}

// node returns the full handler function node (including its
// parameter list), the scope against which "local" is judged.
func (h *handlerSite) node() ast.Node {
	if h.fn != nil {
		return h.fn
	}
	return h.decl
}

// handlers finds every Dispatcher.Handle registration in the package
// whose handler argument is a function literal or a function declared
// in the same package.
func handlers(pkg *Package) []handlerSite {
	var sites []handlerSite
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			recv, method, ok := callMethod(pkg.Info, call)
			if !ok || method != "Handle" || recv != "Dispatcher" {
				return true
			}
			site := handlerSite{}
			if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if op, err := strconv.Unquote(lit.Value); err == nil {
					site.op = op
				}
			}
			switch h := ast.Unparen(call.Args[1]).(type) {
			case *ast.FuncLit:
				site.fn = h
				site.body = h.Body
				site.callVar = paramVar(pkg.Info, h.Type)
			case *ast.Ident:
				if obj, ok := pkg.Info.Uses[h].(*types.Func); ok {
					if fd := decls[obj]; fd != nil && fd.Body != nil {
						site.decl = fd
						site.body = fd.Body
						site.callVar = paramVar(pkg.Info, fd.Type)
					}
				}
			}
			if site.body != nil && site.callVar != nil {
				sites = append(sites, site)
			}
			return true
		})
	}
	return sites
}

// paramVar returns the object of the function's first parameter when
// it is a *runtime.Call.
func paramVar(info *types.Info, ft *ast.FuncType) *types.Var {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return nil
	}
	field := ft.Params.List[0]
	if len(field.Names) == 0 {
		return nil
	}
	obj, ok := info.Defs[field.Names[0]].(*types.Var)
	if !ok || !isFlexType(obj.Type(), "Call") {
		return nil
	}
	return obj
}

// declaredWithin reports whether an object's declaration lies inside
// the node's source range — i.e. the object is local to the handler
// rather than captured or package-level.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() != token.NoPos && node.Pos() <= obj.Pos() && obj.Pos() <= node.End()
}

// rootIdent peels selectors, indexes, stars and parens down to the
// base identifier of an lvalue expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
