package gocheck_test

import (
	"flag"
	"os"
	"path"
	"path/filepath"
	"strings"
	"testing"

	"flexrpc/internal/analyze"
	"flexrpc/internal/analyze/gocheck"
	"flexrpc/internal/idl/corba"
	"flexrpc/internal/pdl"
	"flexrpc/internal/pres"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtures are the seeded-violation packages under testdata/src. The
// clean package must produce no findings; the rest pin one check each.
var fixtures = []string{"clean", "fv017", "fv018", "fv019", "fv020", "fv023"}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	return root
}

// counterContract binds the PDL contract the fv018 fixture's handlers
// register under: bump and peek are [idempotent], record is not.
func counterContract(t *testing.T) *pres.Presentation {
	t.Helper()
	file, err := corba.Parse("counter.idl", `
		interface Counter {
		    long long bump(in string key);
		    long long peek();
		    void record();
		};`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pdl.ApplyLoose(pres.Default(file.Interface("Counter"), pres.StyleCORBA), "counter.pdl",
		"interface Counter {\n    [idempotent] bump(key);\n    [idempotent] peek();\n};\n")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGoldenGo loads every fixture package in one go list invocation,
// runs the full analyzer suite, and pins the rendered findings per
// fixture. Positions in the goldens are relative to the module root.
func TestGoldenGo(t *testing.T) {
	root := repoRoot(t)
	patterns := make([]string, len(fixtures))
	for i, name := range fixtures {
		patterns[i] = "./internal/analyze/gocheck/testdata/src/" + name
	}
	pkgs, err := gocheck.Load(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(fixtures) {
		t.Fatalf("loaded %d packages, want %d", len(pkgs), len(fixtures))
	}

	checker := &gocheck.Checker{Contract: counterContract(t), TrimDir: root}
	diags, err := checker.CheckPackages(pkgs)
	if err != nil {
		t.Fatal(err)
	}

	byFixture := make(map[string][]analyze.Diagnostic)
	for _, d := range diags {
		byFixture[path.Base(path.Dir(d.Pos.File))] = append(
			byFixture[path.Base(path.Dir(d.Pos.File))], d)
	}
	for name := range byFixture {
		found := false
		for _, f := range fixtures {
			found = found || f == name
		}
		if !found {
			t.Errorf("findings in unexpected package %q", name)
		}
	}

	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			got := analyze.Render(byFixture[name])
			if name == "clean" {
				if got != "" {
					t.Fatalf("clean fixture produced findings:\n%s", got)
				}
				return
			}
			gpath := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(gpath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(gpath)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics drifted from %s:\n--- got ---\n%s--- want ---\n%s", gpath, got, want)
			}
		})
	}
}

// TestSelfClean runs the suite over the repository's own packages.
// Everything must be clean except examples/vetgo, the deliberately
// seeded violation range, where FV017/FV019/FV020 must fire (FV018
// additionally needs the example's PDL contract bound; the CLI tests
// and ci.sh cover that path).
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	root := repoRoot(t)
	pkgs, err := gocheck.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	checker := &gocheck.Checker{TrimDir: root}
	diags, err := checker.CheckPackages(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	seeded := map[string]bool{}
	for _, d := range diags {
		if !strings.HasPrefix(d.Pos.File, "examples/vetgo/") {
			t.Errorf("finding outside the seeded example: %s", d)
			continue
		}
		seeded[d.ID] = true
	}
	for _, id := range []string{"FV017", "FV019", "FV020", "FV023"} {
		if !seeded[id] {
			t.Errorf("seeded violation %s in examples/vetgo not detected", id)
		}
	}
}
