// FV020: context discipline. PR 3 plumbed contexts end-to-end —
// client deadlines ride InvokeContext through the transports into
// Call.Context — but one careless context.Background() anywhere on
// that path severs the chain silently. Two shapes are flagged:
//
//   - a handler passing context.Background()/TODO() to a
//     context-accepting call while Call.Context() sits unused in its
//     parameter — the server-side work escapes the client's deadline;
//   - a function that receives a ctx parameter but invokes a flexrpc
//     context-aware entry point (InvokeContext, CallContext,
//     CallTraceContext, ServeMessageContext, ServeMessageRawContext,
//     SessionServer.Handle) with a fresh Background instead.
//
// Functions with no context in scope are not flagged: a top-level
// driver calling CallContext(context.Background(), ...) has nothing
// better to pass.
package gocheck

import (
	"go/ast"
	"go/types"
)

// ContextDiscipline is the FV020 analyzer.
var ContextDiscipline = &Analyzer{
	ID:   "FV020",
	Name: "dropped-context",
	Doc:  "fresh Background passed where a live context is in scope",
	Run:  runContextDiscipline,
}

// ctxEntryPoints are the flexrpc methods/functions whose first
// context argument continues the deadline chain.
var ctxEntryPoints = map[string]bool{
	"InvokeContext":          true,
	"CallContext":            true,
	"CallTraceContext":       true,
	"ServeMessageContext":    true,
	"ServeMessageRawContext": true,
	"Handle":                 true, // SessionServer.Handle(ctx, ...)
}

func runContextDiscipline(p *Pass) {
	info := p.Pkg.Info

	// Handler leg: inside handler bodies, any context-accepting call
	// fed a fresh Background while Call.Context() is available.
	for _, h := range handlers(p.Pkg) {
		body := h.body
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if freshContext(info, arg) && callTakesContext(info, call, arg) {
					p.Reportf(arg.Pos(),
						"handler passes a fresh %s while Call.Context() carries the client's deadline; the work escapes cancellation", freshContextName(info, arg))
				}
			}
			return true
		})
	}

	// Caller leg: functions that received a context but start the
	// flexrpc deadline chain from Background anyway.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || !hasContextParam(info, ft) {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				if _, isLit := m.(*ast.FuncLit); isLit && m != n {
					return false // nested functions judged on their own params
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isCtxEntryPoint(info, call) {
					return true
				}
				for _, arg := range call.Args {
					if freshContext(info, arg) {
						p.Reportf(arg.Pos(),
							"%s drops the enclosing function's ctx parameter; the caller's deadline and retry budget are severed here", freshContextName(info, arg))
					}
				}
				return true
			})
			return true
		})
	}
}

// freshContext reports whether an expression is a direct
// context.Background() or context.TODO() call.
func freshContext(info *types.Info, e ast.Expr) bool {
	return freshContextName(info, e) != ""
}

// freshContextName returns "context.Background()"/"context.TODO()"
// for a direct fresh-context call, else "".
func freshContextName(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return "context." + fn.Name() + "()"
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	return n.Obj().Name() == "Context" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}

// hasContextParam reports whether a function type declares a
// context.Context parameter.
func hasContextParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// callTakesContext reports whether arg occupies a context.Context
// parameter position of the call.
func callTakesContext(info *types.Info, call *ast.CallExpr, arg ast.Expr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for i, a := range call.Args {
		if a != arg {
			continue
		}
		if i >= sig.Params().Len() {
			if sig.Variadic() {
				i = sig.Params().Len() - 1
			} else {
				return false
			}
		}
		return isContextType(sig.Params().At(i).Type())
	}
	return false
}

// isCtxEntryPoint reports whether a call targets one of the flexrpc
// context-aware entry points.
func isCtxEntryPoint(info *types.Info, call *ast.CallExpr) bool {
	if recv, method, ok := callMethod(info, call); ok {
		if !ctxEntryPoints[method] {
			return false
		}
		// Dispatcher.Handle registers handlers and takes no context;
		// only SessionServer.Handle continues the chain.
		if method == "Handle" && recv != "SessionServer" {
			return false
		}
		return true
	}
	fn := calleeFunc(info, call)
	return fn != nil && isFlexPkg(fn.Pkg()) && ctxEntryPoints[fn.Name()] && fn.Name() != "Handle"
}
