// Package loading for the Go-side analyzers, built on the toolchain
// itself instead of an external loader dependency: `go list -export
// -deps` resolves the import graph and produces export data for every
// dependency, and the stdlib gc importer consumes that export data
// through its lookup hook. Target packages (the ones matched by the
// patterns) are re-typechecked from source so the analyzers get ASTs
// with full type information.
package gocheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, typechecked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *listErr
	DepsErrors []*listErr
}

type listErr struct {
	Pos string
	Err string
}

// A LoadError is a package-resolution or typecheck failure: the
// analyzed code (or its build setup) is broken, as opposed to an
// analyzer finding. flexc vet -go exits 2 for these.
type LoadError struct{ msg string }

func (e *LoadError) Error() string { return e.msg }

func loadErrf(format string, args ...any) error {
	return &LoadError{msg: fmt.Sprintf(format, args...)}
}

// Load resolves patterns (e.g. "./...") relative to dir, typechecks
// every matched package, and returns them sorted by import path.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly,Incomplete,Error,DepsErrors",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, loadErrf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, loadErrf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, loadErrf("%s: %s", p.ImportPath, strings.TrimSpace(p.Error.Err))
		}
		if len(p.DepsErrors) > 0 {
			return nil, loadErrf("%s: %s", p.ImportPath, strings.TrimSpace(p.DepsErrors[0].Err))
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, loadErrf("no packages matched %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, gf := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, loadErrf("%v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, loadErrf("typecheck %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}
