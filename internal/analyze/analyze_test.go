package analyze_test

import (
	"strings"
	"testing"

	"flexrpc/internal/analyze"
	"flexrpc/internal/idl/corba"
	"flexrpc/internal/ir"
	"flexrpc/internal/pdl"
	"flexrpc/internal/pres"
)

// vetIDL is the paper's FileIO interface extended with a port-typed
// operation and a length-carrying operation so every check has a
// target.
const vetIDL = `
interface FileIO {
    sequence<octet> read(in unsigned long count);
    void write(in sequence<octet> data);
    void write_msg(in string msg, in long length);
    void send_port(in Object right);
};`

func compileIface(t *testing.T) *ir.Interface {
	t.Helper()
	f, err := corba.Parse("fileio.idl", vetIDL)
	if err != nil {
		t.Fatal(err)
	}
	return f.Interface("FileIO")
}

func endpoint(t *testing.T, iface *ir.Interface, pdlSrc string) *pres.Presentation {
	t.Helper()
	base := pres.Default(iface, pres.StyleCORBA)
	if pdlSrc == "" {
		return base
	}
	p, err := pdl.ApplyLoose(base, "ep.pdl", pdlSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func ids(diags []analyze.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.ID)
	}
	return out
}

func hasID(diags []analyze.Diagnostic, id string) bool {
	for _, d := range diags {
		if d.ID == id {
			return true
		}
	}
	return false
}

// TestChecksCleanAndDirty exercises every FV check with a case that
// must fire and a near-miss that must stay clean.
func TestChecksCleanAndDirty(t *testing.T) {
	cases := []struct {
		name      string
		client    string // PDL for endpoint 1
		server    string // PDL for endpoint 2; "" means single-endpoint run
		two       bool   // run with two endpoints even if server PDL is empty
		transport string
		want      []string // IDs that must fire, in any order
		clean     []string // IDs that must NOT fire
	}{
		{
			name:   "FV002 dirty: sender frees what receiver preserves",
			client: `interface FileIO { write([dealloc(always)] data); };`,
			server: `interface FileIO { write([preserved] data); };`,
			two:    true,
			want:   []string{"FV002"},
		},
		{
			name:   "FV002 clean: figure 8/9 trashable-preserved pairing",
			client: `interface FileIO { write([trashable] data); };`,
			server: `interface FileIO { write([preserved] data); };`,
			two:    true,
			clean:  []string{"FV002"},
		},
		{
			name:   "FV003 dirty: nonunique on one side only",
			client: `interface FileIO { send_port([nonunique] right); };`,
			server: ``,
			two:    true,
			want:   []string{"FV003"},
		},
		{
			name:   "FV003 clean: nonunique on both sides",
			client: `interface FileIO { send_port([nonunique] right); };`,
			server: `interface FileIO { send_port([nonunique] right); };`,
			two:    true,
			clean:  []string{"FV003"},
		},
		{
			name:   "FV004 dirty: trashable with special hook",
			client: `interface FileIO { write([trashable, special] data); };`,
			want:   []string{"FV004"},
		},
		{
			name:   "FV004 clean: special alone",
			client: `interface FileIO { write([special] data); };`,
			clean:  []string{"FV004"},
		},
		{
			name:      "FV005 dirty: leaky over the network",
			client:    `[leaky] interface FileIO { };`,
			transport: "suntcp",
			want:      []string{"FV005"},
		},
		{
			name:      "FV005 clean: leaky same-domain",
			client:    `[leaky] interface FileIO { };`,
			transport: "inproc",
			clean:     []string{"FV005"},
		},
		{
			name:      "FV005 clean: untrusting over the network",
			client:    ``,
			transport: "suntcp",
			clean:     []string{"FV005"},
		},
		{
			name:   "FV006 dirty: explicit callee alloc never freed",
			client: `interface FileIO { read([alloc(callee), dealloc(never)] return); };`,
			want:   []string{"FV006"},
		},
		{
			name:   "FV006 clean: figure 5 dealloc(never) on default alloc",
			client: `interface FileIO { read([dealloc(never)] return); };`,
			clean:  []string{"FV006"},
		},
		{
			name:   "FV007 dirty: unknown operation and parameter",
			client: `interface FileIO { frob([special] x); write([trashable] nosuch); };`,
			want:   []string{"FV007", "FV007"},
		},
		{
			name:   "FV008 dirty: trashable and preserved together",
			client: `interface FileIO { write([trashable, preserved] data); };`,
			want:   []string{"FV008"},
		},
		{
			name:   "FV009 dirty: length_is target missing",
			client: `interface FileIO { write_msg([length_is(nlen)] msg); };`,
			want:   []string{"FV009"},
		},
		{
			name:   "FV009 dirty: length_is target not integer",
			client: `interface FileIO { write_msg([length_is(msg)] msg); };`,
			want:   []string{"FV009"},
		},
		{
			name:   "FV009 clean: length_is integer target",
			client: `interface FileIO { write_msg([length_is(length)] msg); };`,
			clean:  []string{"FV009"},
		},
		{
			name:   "FV010 dirty: trashable on a result",
			client: `interface FileIO { read([trashable] return); };`,
			want:   []string{"FV010"},
		},
		{
			name:   "FV011 dirty: nonunique on bytes",
			client: `interface FileIO { write([nonunique] data); };`,
			want:   []string{"FV011"},
		},
		{
			name:   "FV011 clean: nonunique on a port",
			client: `interface FileIO { send_port([nonunique] right); };`,
			clean:  []string{"FV011"},
		},
		{
			name:   "FV012 dirty: dealloc on a scalar",
			client: `interface FileIO { read([dealloc(never)] count); };`,
			want:   []string{"FV012"},
		},
		{
			name:   "FV012 clean: dealloc on a buffer",
			client: `interface FileIO { read([dealloc(never)] return); };`,
			clean:  []string{"FV012"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			iface := compileIface(t)
			eps := []analyze.Endpoint{{Pres: endpoint(t, iface, tc.client), Transport: tc.transport, Label: "client"}}
			if tc.server != "" || tc.two {
				eps = append(eps, analyze.Endpoint{Pres: endpoint(t, iface, tc.server), Label: "server"})
			}
			diags := analyze.CheckEndpoints(iface, eps)
			for _, id := range tc.want {
				if !hasID(diags, id) {
					t.Errorf("want %s, got %v:\n%s", id, ids(diags), analyze.Render(diags))
				}
			}
			for _, id := range tc.clean {
				if hasID(diags, id) {
					t.Errorf("must not fire %s, got:\n%s", id, analyze.Render(diags))
				}
			}
		})
	}
}

// TestCrossAcceptsLegalPDLPairs: any two presentations derived from
// the same IR via legal PDL share the contract, so the cross-endpoint
// compatibility check (FV001) never fires.
func TestCrossAcceptsLegalPDLPairs(t *testing.T) {
	iface := compileIface(t)
	pdls := []string{
		``,
		`interface FileIO { read([dealloc(never)] return); };`,
		`interface FileIO { write([trashable] data); };`,
		`interface FileIO { write([preserved] data); };`,
		`[leaky] interface FileIO { [comm_status] read(); };`,
		`interface FileIO { write_msg([length_is(length)] msg); };`,
	}
	for _, a := range pdls {
		for _, b := range pdls {
			diags := analyze.Check(iface, endpoint(t, iface, a), endpoint(t, iface, b))
			if hasID(diags, "FV001") {
				t.Fatalf("FV001 fired for legal PDL pair %q / %q:\n%s", a, b, analyze.Render(diags))
			}
		}
	}
}

// TestCrossRejectsContractDrift: a hand-built drift case — same
// interface name, different operation shape — must fail FV001.
func TestCrossRejectsContractDrift(t *testing.T) {
	iface := compileIface(t)
	driftFile, err := corba.Parse("drift.idl", `
		interface FileIO {
		    sequence<octet> read(in unsigned long count, in unsigned long offset);
		    void write(in sequence<octet> data);
		    void truncate();
		};`)
	if err != nil {
		t.Fatal(err)
	}
	drift := driftFile.Interface("FileIO")
	diags := analyze.Check(iface, pres.Default(iface, pres.StyleCORBA), pres.Default(drift, pres.StyleCORBA))
	if !hasID(diags, "FV001") {
		t.Fatalf("contract drift not detected:\n%s", analyze.Render(diags))
	}
	var msgs []string
	for _, d := range diags {
		if d.ID == "FV001" {
			msgs = append(msgs, d.Message)
		}
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{`"read"`, `"truncate"`} {
		if !strings.Contains(joined, want) {
			t.Errorf("FV001 messages missing %s:\n%s", want, joined)
		}
	}
	// Drifted contracts must not cascade into annotation-pair noise.
	if hasID(diags, "FV002") || hasID(diags, "FV003") {
		t.Errorf("annotation-pair checks ran over drifted contracts:\n%s", analyze.Render(diags))
	}
}

// TestUnprotectedEscalatesToError: FV005 is a warning for [leaky] but
// an error for full [unprotected] trust.
func TestUnprotectedEscalatesToError(t *testing.T) {
	iface := compileIface(t)
	leaky := analyze.CheckEndpoints(iface, []analyze.Endpoint{
		{Pres: endpoint(t, iface, `[leaky] interface FileIO { };`), Transport: "suntcp"},
	})
	full := analyze.CheckEndpoints(iface, []analyze.Endpoint{
		{Pres: endpoint(t, iface, `[leaky, unprotected] interface FileIO { };`), Transport: "suntcp"},
	})
	if analyze.HasErrors(leaky) {
		t.Errorf("[leaky] should be a warning:\n%s", analyze.Render(leaky))
	}
	if !analyze.HasErrors(full) {
		t.Errorf("[unprotected] should be an error:\n%s", analyze.Render(full))
	}
}

// TestDiagnosticsArePositioned: findings caused by PDL annotations
// carry the PDL source position.
func TestDiagnosticsArePositioned(t *testing.T) {
	iface := compileIface(t)
	p := endpoint(t, iface, "interface FileIO {\n    write([nonunique] data);\n};")
	diags := analyze.Check(iface, p)
	if len(diags) != 1 || diags[0].ID != "FV011" {
		t.Fatalf("diags = %v", diags)
	}
	d := diags[0]
	if d.Pos.File != "ep.pdl" || d.Pos.Line != 2 {
		t.Errorf("pos = %v, want ep.pdl:2", d.Pos)
	}
	if d.Fix == "" {
		t.Error("diagnostic carries no fix suggestion")
	}
	if !strings.Contains(d.String(), "ep.pdl:2:") || !strings.Contains(d.String(), "[FV011]") {
		t.Errorf("rendering = %q, want go vet style", d.String())
	}
}

// TestRegistryCoversAllReportedIDs: every ID the analyzer can emit is
// documented, with fix text, and Checks() is sorted.
func TestRegistryCoversAllReportedIDs(t *testing.T) {
	checks := analyze.Checks()
	if len(checks) < 8 {
		t.Fatalf("registry has %d checks, want at least 8", len(checks))
	}
	for i, c := range checks {
		if c.ID == "" || c.Doc == "" || c.Fix == "" || c.Title == "" {
			t.Errorf("check %+v incompletely documented", c)
		}
		if i > 0 && checks[i-1].ID >= c.ID {
			t.Errorf("registry not sorted: %s before %s", checks[i-1].ID, c.ID)
		}
	}
}

// TestJSONRendering: -json output is machine readable and never null.
func TestJSONRendering(t *testing.T) {
	out, err := analyze.RenderJSON(nil)
	if err != nil || string(out) != "[]" {
		t.Fatalf("empty = %s, %v", out, err)
	}
	iface := compileIface(t)
	diags := analyze.Check(iface, endpoint(t, iface, `interface FileIO { write([nonunique] data); };`))
	out, err = analyze.RenderJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id": "FV011"`, `"severity": "error"`, `"file": "ep.pdl"`, `"fix"`} {
		if !strings.Contains(string(out), want) {
			t.Errorf("json missing %s:\n%s", want, out)
		}
	}
}

// TestNetworkTransportClassification pins the transport split FV005
// relies on.
func TestNetworkTransportClassification(t *testing.T) {
	for _, name := range []string{"suntcp", "sunudp", "tcp"} {
		if !analyze.IsNetworkTransport(name) {
			t.Errorf("%s should be a network transport", name)
		}
	}
	for _, name := range []string{"inproc", "machipc", "fbufrpc", ""} {
		if analyze.IsNetworkTransport(name) {
			t.Errorf("%s should not be a network transport", name)
		}
	}
}
