package analyze_test

import (
	"testing"

	"flexrpc/internal/analyze"
	"flexrpc/internal/runtime"
)

// plainHooks is a SpecialHooks implementation without the bind-time
// step interface.
type plainHooks struct{}

func (plainHooks) EncodeSpecial(op, param string, enc runtime.Encoder, v runtime.Value) error {
	return nil
}
func (plainHooks) DecodeSpecial(op, param string, dec runtime.Decoder) (runtime.Value, error) {
	return nil, nil
}

// stepHooks adds the StepHooks re-entrancy declaration.
type stepHooks struct{ plainHooks }

func (stepHooks) EncodeStep(op, param string) runtime.EncodeStepFn { return nil }
func (stepHooks) DecodeStep(op, param string) runtime.DecodeStepFn { return nil }

func TestFV013PooledClientNeedsStepHooks(t *testing.T) {
	iface := compileIface(t)
	p := endpoint(t, iface, `interface FileIO { write([special] data); };`)

	cases := []struct {
		name string
		ep   analyze.Endpoint
		want bool
	}{
		{"pooled with plain hooks", analyze.Endpoint{Pres: p, PooledClient: true, Hooks: plainHooks{}}, true},
		{"pooled with nil hooks", analyze.Endpoint{Pres: p, PooledClient: true}, true},
		{"pooled with step hooks", analyze.Endpoint{Pres: p, PooledClient: true, Hooks: stepHooks{}}, false},
		{"serial client with plain hooks", analyze.Endpoint{Pres: p, Hooks: plainHooks{}}, false},
		{"pooled, no special params", analyze.Endpoint{Pres: endpoint(t, iface, ""), PooledClient: true, Hooks: plainHooks{}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := analyze.CheckEndpoints(iface, []analyze.Endpoint{tc.ep})
			if got := hasID(diags, "FV013"); got != tc.want {
				t.Errorf("FV013 reported = %v, want %v (diags %v)", got, tc.want, ids(diags))
			}
		})
	}
}
