// Diagnostic engine: every flexvet finding carries a stable check ID,
// a severity, a source position when one is known, and a one-line fix
// suggestion, and renders in go vet style.
package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"flexrpc/internal/idl"
)

// Severity grades a diagnostic.
type Severity int

// Severities, in increasing order of gravity.
const (
	// SevInfo findings are observations that need no action.
	SevInfo Severity = iota
	// SevWarning findings are suspicious but may be intentional.
	SevWarning
	// SevError findings are unsafe or meaningless annotation uses;
	// flexc vet exits non-zero when any is present.
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// A Diagnostic is one analyzer finding.
type Diagnostic struct {
	// ID is the stable check identifier ("FV001"...). See Checks.
	ID string
	// Severity grades the finding.
	Severity Severity
	// Pos locates the annotation that caused the finding; the zero
	// value means no source position is known (e.g. a hand-built
	// presentation or a contract-level finding).
	Pos idl.Pos
	// Message is the human-readable finding.
	Message string
	// Fix is a one-line suggestion for resolving the finding.
	Fix string
}

// String renders the diagnostic in go vet style:
//
//	file:line:col: message [FV001]
func (d Diagnostic) String() string {
	if d.Pos.Line == 0 {
		return fmt.Sprintf("%s [%s]", d.Message, d.ID)
	}
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.ID)
}

// MarshalJSON renders the machine-readable form used by
// `flexc vet -json`.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID       string   `json:"id"`
		Severity Severity `json:"severity"`
		File     string   `json:"file,omitempty"`
		Line     int      `json:"line,omitempty"`
		Col      int      `json:"col,omitempty"`
		Message  string   `json:"message"`
		Fix      string   `json:"fix,omitempty"`
	}{d.ID, d.Severity, d.Pos.File, d.Pos.Line, d.Pos.Col, d.Message, d.Fix})
}

// Render formats diagnostics one per line in go vet style.
func Render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderJSON formats diagnostics as a JSON array (never null).
func RenderJSON(diags []Diagnostic) ([]byte, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return json.MarshalIndent(diags, "", "  ")
}

// HasErrors reports whether any diagnostic has error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// RenderLines formats diagnostics in the machine-readable NDJSON
// form of `flexc vet -json`: one Diagnostic object per line, so CI
// pipelines and editors can stream-parse without buffering an array.
func RenderLines(diags []Diagnostic) ([]byte, error) {
	var b strings.Builder
	for _, d := range diags {
		line, err := json.Marshal(d)
		if err != nil {
			return nil, err
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

// HasWarnings reports whether any diagnostic has warning severity or
// above (the `flexc vet -Werror` gate).
func HasWarnings(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity >= SevWarning {
			return true
		}
	}
	return false
}

// SortDiags orders findings by position, then ID, then message, so
// output is deterministic for golden tests and CI diffing. External
// analyzer suites (gocheck) use it to merge their findings into the
// same stable order.
func SortDiags(diags []Diagnostic) { sortDiags(diags) }

// sortDiags orders findings by position, then ID, then message, so
// output is deterministic for golden tests and CI diffing.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Message < b.Message
	})
}
