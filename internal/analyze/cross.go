// Cross-endpoint pass: prove two independently-annotated endpoints of
// one interface still share the wire contract (FV001) and report
// annotation pairs that are individually legal but jointly unsafe
// (FV002, FV003). Presentations are *supposed* to differ — that is
// the paper's whole point — so only contract identity and unsafe
// pairings are findings, never mere asymmetry.
package analyze

import (
	"flexrpc/internal/idl"
	"flexrpc/internal/ir"
	"flexrpc/internal/pres"
)

// checkPair runs the cross-endpoint checks over one pair of
// endpoints.
func (c *checker) checkPair(iface *ir.Interface, a, b Endpoint) {
	// Trust asymmetry is interface-level and meaningful even when the
	// contracts have drifted, so it runs before the FV001 gate.
	c.checkTrustAsymmetry(a, b)
	c.checkTrustAsymmetry(b, a)
	if !c.checkContract(a, b) {
		// The endpoints do not agree on the contract; annotation-pair
		// comparison over mismatched operations would be noise.
		return
	}
	for i := range iface.Ops {
		irOp := &iface.Ops[i]
		aOp, bOp := a.Pres.Op(irOp.Name), b.Pres.Op(irOp.Name)
		for _, prm := range irOp.Params {
			aAt := attrsOf(aOp, prm.Name)
			bAt := attrsOf(bOp, prm.Name)
			ctx := iface.Name + "." + irOp.Name + "." + prm.Name
			if prm.Dir == ir.In || prm.Dir == ir.InOut {
				c.checkTransfer(ctx, prm.Type, a, aAt, b, bAt)
				c.checkTransfer(ctx, prm.Type, b, bAt, a, aAt)
			}
			if prm.Type.Kind == ir.Port {
				c.checkNaming(ctx, a, aAt, b, bAt)
				c.checkNaming(ctx, b, bAt, a, aAt)
			}
		}
	}
}

// checkContract is FV001: the wire contracts must be identical.
// Reports per-operation drift and returns whether the contracts
// match.
func (c *checker) checkContract(a, b Endpoint) bool {
	ia, ib := a.Pres.Interface, b.Pres.Interface
	if ia.Signature() == ib.Signature() {
		return true
	}
	sigsB := make(map[string]string, len(ib.Ops))
	for i := range ib.Ops {
		sigsB[ib.Ops[i].Name] = ib.Ops[i].Signature()
	}
	seen := make(map[string]bool, len(ia.Ops))
	for i := range ia.Ops {
		op := &ia.Ops[i]
		seen[op.Name] = true
		sb, ok := sigsB[op.Name]
		switch {
		case !ok:
			c.report("FV001", idl.Pos{},
				"contract drift between %s and %s: operation %q missing from %s",
				a.Label, b.Label, op.Name, b.Label)
		case sb != op.Signature():
			c.report("FV001", idl.Pos{},
				"contract drift between %s and %s: operation %q is %s on %s but %s on %s",
				a.Label, b.Label, op.Name, op.Signature(), a.Label, sb, b.Label)
		}
	}
	for i := range ib.Ops {
		if !seen[ib.Ops[i].Name] {
			c.report("FV001", idl.Pos{},
				"contract drift between %s and %s: operation %q missing from %s",
				a.Label, b.Label, ib.Ops[i].Name, a.Label)
		}
	}
	if ia.Name != ib.Name || (ia.Program != ib.Program || ia.Version != ib.Version) {
		c.report("FV001", idl.Pos{},
			"contract drift between %s and %s: interface identity %s vs %s",
			a.Label, b.Label, identity(ia), identity(ib))
	}
	return false
}

func identity(i *ir.Interface) string {
	if i.Program != 0 {
		return i.Name + "[prog=" + utoa(i.Program) + ",vers=" + utoa(i.Version) + "]"
	}
	return i.Name
}

func utoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// checkTransfer is FV002: sender frees an in buffer after marshaling
// while the receiver promises to keep reading the original — under a
// same-domain or shared-buffer transport that original is gone.
func (c *checker) checkTransfer(ctx string, t *ir.Type, sender Endpoint, sAt *pres.ParamAttrs, receiver Endpoint, rAt *pres.ParamAttrs) {
	if !pres.IsBuffer(t) || sAt.Dealloc != pres.DeallocAlways || !rAt.Preserved {
		return
	}
	pos := attrPos(sAt, "dealloc")
	if pos.Line == 0 {
		pos = attrPos(rAt, "preserved")
	}
	c.report("FV002", pos,
		"%s: %s frees the buffer after marshaling [dealloc(always)] but %s marks it [preserved]: use-after-transfer",
		ctx, sender.Label, receiver.Label)
}

// checkTrustAsymmetry is FV021's cross-endpoint leg: one endpoint
// grants full trust while the peer extends none. The bind-time
// combination signature takes the weaker of the two, so the trusted
// side keeps paying for the validated ownership path — every bounds
// check and name-table elision its grant was written to buy is
// silently discarded.
func (c *checker) checkTrustAsymmetry(trusted, peer Endpoint) {
	if trusted.Pres.Trust != pres.TrustFull || peer.Pres.Trust != pres.TrustNone {
		return
	}
	grant := trustAttrName(trusted.Pres)
	pos, _ := trusted.Pres.PosOf(grant)
	c.report("FV021", pos,
		"%s grants [%s] trust but peer %s presents untrusted: the combination signature keeps the validated path, discarding every elision the grant buys",
		trusted.Label, grant, peer.Label)
}

// checkNaming is FV003: one endpoint relaxes the unique-name
// invariant of a port right that the peer still relies on.
func (c *checker) checkNaming(ctx string, relaxed Endpoint, relAt *pres.ParamAttrs, strict Endpoint, strAt *pres.ParamAttrs) {
	if !relAt.NonUnique || strAt.NonUnique {
		return
	}
	c.report("FV003", attrPos(relAt, "nonunique"),
		"%s: %s marks the port [nonunique] but %s still relies on the unique-name invariant",
		ctx, relaxed.Label, strict.Label)
}

// attrsOf returns a parameter's attributes or a shared zero value.
func attrsOf(op *pres.OpPres, name string) *pres.ParamAttrs {
	if op != nil {
		if a, ok := op.Params[name]; ok {
			return a
		}
	}
	return &zeroAttrs
}

var zeroAttrs pres.ParamAttrs
