package analyze_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"flexrpc/internal/analyze"
	"flexrpc/internal/idl/corba"
	"flexrpc/internal/pdl"
	"flexrpc/internal/pres"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCases pin the exact rendered diagnostic (ID, position,
// message) for each check. PDL sources live here so the recorded
// positions are real; the expected output lives under testdata/.
var goldenCases = []struct {
	name       string
	client     string
	server     string // "" for single-endpoint cases
	transport  string
	pooled     bool // bind the client endpoint through the pooled parallel client
	plainHooks bool // bind non-re-entrant hooks (the FV013 trigger)
}{
	{
		name:       "fv013_pooled_without_step_hooks",
		client:     "interface FileIO {\n    write_msg([special] msg);\n};\n",
		pooled:     true,
		plainHooks: true,
	},
	{
		name:   "fv002_use_after_transfer",
		client: "interface FileIO {\n    write([dealloc(always)] data);\n};\n",
		server: "interface FileIO {\n    write([preserved] data);\n};\n",
	},
	{
		name:   "fv003_unique_name_mismatch",
		client: "interface FileIO {\n    send_port([nonunique] right);\n};\n",
		server: "interface FileIO { };\n",
	},
	{
		name:   "fv004_trashable_special_alias",
		client: "interface FileIO {\n    write([trashable, special] data);\n};\n",
	},
	{
		name:      "fv005_trust_over_network",
		client:    "[leaky, unprotected]\ninterface FileIO { };\n",
		transport: "suntcp",
	},
	{
		name:   "fv006_callee_alloc_leak",
		client: "interface FileIO {\n    read([alloc(callee), dealloc(never)] return);\n};\n",
	},
	{
		name:   "fv007_dead_annotation",
		client: "interface FileIO {\n    frob([special] x);\n    write([trashable] nosuch);\n};\n",
	},
	{
		name:   "fv008_mutability_conflict",
		client: "interface FileIO {\n    write([trashable, preserved] data);\n};\n",
	},
	{
		name:   "fv009_length_is_invalid",
		client: "interface FileIO {\n    write_msg([length_is(nlen)] msg);\n};\n",
	},
	{
		name:   "fv010_mutability_on_out",
		client: "interface FileIO {\n    read([preserved] return);\n};\n",
	},
	{
		name:   "fv011_nonunique_on_non_port",
		client: "interface FileIO {\n    write([nonunique] data);\n};\n",
	},
	{
		name:   "fv012_alloc_on_scalar",
		client: "interface FileIO {\n    read([dealloc(never)] count);\n};\n",
	},
	{
		name:   "fv014_idempotent_moves_ownership",
		client: "interface FileIO {\n    [idempotent] write([dealloc(always)] data);\n    [idempotent] read([alloc(callee)] return);\n};\n",
	},
	{
		name:   "fv022_hedged_moves_ownership",
		client: "interface FileIO {\n    [hedged] write([dealloc(always)] data);\n    [hedged] read([alloc(callee)] return);\n};\n",
	},
	{
		name:   "fv016_batchable_copies_frames",
		client: "interface FileIO {\n    [batchable] write([dealloc(always)] data);\n    [batchable] read([alloc(callee)] return);\n    [batchable] write_msg([special] msg);\n};\n",
	},
	{
		name:   "fv015_traced_special_on_pooled",
		client: "interface FileIO {\n    write([special, traced] data);\n};\n",
		pooled: true,
	},
	{
		name:   "fv021_trust_elides_ownership",
		client: "[trusted]\ninterface FileIO {\n    write([dealloc(always)] data);\n    read([alloc(callee)] return);\n};\n",
		server: "interface FileIO { };\n",
	},
	{
		name:   "clean_figure5",
		client: "interface FileIO {\n    read([dealloc(never)] return);\n};\n",
		server: "interface FileIO {\n    write([preserved] data);\n};\n",
	},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			iface := compileIface(t)
			client, err := pdl.ApplyLoose(pres.Default(iface, pres.StyleCORBA), "client.pdl", tc.client)
			if err != nil {
				t.Fatal(err)
			}
			ep := analyze.Endpoint{Pres: client, Transport: tc.transport, Label: "client"}
			if tc.pooled {
				// Step hooks keep FV013 quiet so each golden file pins
				// the pooled-path check under test alone; the FV013
				// case binds the non-re-entrant hooks instead.
				ep.PooledClient, ep.Hooks = true, stepHooks{}
				if tc.plainHooks {
					ep.Hooks = plainHooks{}
				}
			}
			eps := []analyze.Endpoint{ep}
			if tc.server != "" {
				server, err := pdl.ApplyLoose(pres.Default(iface, pres.StyleCORBA), "server.pdl", tc.server)
				if err != nil {
					t.Fatal(err)
				}
				eps = append(eps, analyze.Endpoint{Pres: server, Label: "server"})
			}
			got := analyze.Render(analyze.CheckEndpoints(iface, eps))
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestGoldenContractDrift renders the cross-endpoint drift case; it
// is built from two IDL texts rather than PDL.
func TestGoldenContractDrift(t *testing.T) {
	iface := compileIface(t)
	driftFile, err := corba.Parse("drift.idl", `
		interface FileIO {
		    sequence<octet> read(in unsigned long count, in unsigned long offset);
		    void write(in sequence<octet> data);
		    void write_msg(in string msg, in long length);
		    void send_port(in Object right);
		    void truncate();
		};`)
	if err != nil {
		t.Fatal(err)
	}
	got := analyze.Render(analyze.CheckEndpoints(iface, []analyze.Endpoint{
		{Pres: pres.Default(iface, pres.StyleCORBA), Label: "client"},
		{Pres: pres.Default(driftFile.Interface("FileIO"), pres.StyleCORBA), Label: "server"},
	}))
	path := filepath.Join("testdata", "fv001_contract_drift.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}
