package analyze

import "sort"

// CheckInfo documents one flexvet check.
type CheckInfo struct {
	// ID is the stable identifier findings carry.
	ID string
	// Title is a short kebab-case name.
	Title string
	// Severity is the check's default severity (FV005 escalates to
	// error for [unprotected]).
	Severity Severity
	// Fix is the one-line suggestion attached to findings.
	Fix string
	// Doc explains the check in terms of the paper's annotations.
	Doc string
}

// The check registry. IDs are append-only and never reused: tooling
// and suppression lists depend on their stability.
var registry = map[string]CheckInfo{
	"FV001": {
		ID: "FV001", Title: "contract-drift", Severity: SevError,
		Fix: "regenerate both endpoints from one IDL file; the network contract must be byte-identical",
		Doc: "Two endpoints of one connection disagree on the network contract " +
			"(operation set, parameter types/directions, or codec-visible layout). " +
			"Presentations may differ arbitrarily, but the paper's safety argument " +
			"rests on the contract being shared.",
	},
	"FV002": {
		ID: "FV002", Title: "use-after-transfer", Severity: SevError,
		Fix: "drop [dealloc(always)] on the sender or [preserved] on the receiver",
		Doc: "One endpoint frees an in buffer after marshaling ([dealloc(always)]) " +
			"while the peer declares it [preserved] and may keep reading the original " +
			"under a same-domain or shared-buffer transport: a use-after-transfer.",
	},
	"FV003": {
		ID: "FV003", Title: "unique-name-mismatch", Severity: SevWarning,
		Fix: "annotate the port [nonunique] on both endpoints, or on neither",
		Doc: "A port parameter is [nonunique] on one endpoint only: the annotated " +
			"side stops maintaining the unique-name invariant (paper §4.6) that the " +
			"peer still relies on.",
	},
	"FV004": {
		ID: "FV004", Title: "trashable-special-alias", Severity: SevWarning,
		Fix: "drop [trashable], or make the [special] hook copy before the stub trashes the buffer",
		Doc: "[trashable] lets the stub scribble over the buffer during marshaling " +
			"while a [special] hook on the same parameter may retain an alias to it " +
			"(the Linux NFS copyin/copyout path).",
	},
	"FV005": {
		ID: "FV005", Title: "trust-over-network", Severity: SevWarning,
		Fix: "move the trust grant to a same-domain (inproc) presentation, or remove it",
		Doc: "[leaky]/[unprotected] trust is granted on a presentation bound to a " +
			"network transport. Trust buys performance by dropping protection " +
			"(paper §4.5); over a network the peer is outside every protection " +
			"domain and the grant leaks or corrupts across machines. " +
			"[unprotected] escalates to an error.",
	},
	"FV006": {
		ID: "FV006", Title: "callee-alloc-leak", Severity: SevWarning,
		Fix: "use [alloc(caller)] for endpoint-managed storage, or let the stub free with [dealloc(always)]",
		Doc: "[dealloc(never)] combined with an explicit [alloc(callee)] on an out " +
			"buffer: the callee heap-allocates a fresh buffer per call and nothing " +
			"ever frees it. (Plain [dealloc(never)] on a default-allocated out " +
			"buffer is the paper's Figure 5 idiom and is not flagged.)",
	},
	"FV007": {
		ID: "FV007", Title: "dead-annotation", Severity: SevError,
		Fix: "remove the annotation or fix the operation/parameter name",
		Doc: "An annotation names an operation or parameter that does not exist in " +
			"the interface; it can never take effect.",
	},
	"FV008": {
		ID: "FV008", Title: "trashable-preserved-conflict", Severity: SevError,
		Fix: "keep exactly one of [trashable] and [preserved]",
		Doc: "[trashable] (the buffer may be destroyed) and [preserved] (the buffer " +
			"must survive) on the same parameter are mutually exclusive.",
	},
	"FV009": {
		ID: "FV009", Title: "length-is-invalid", Severity: SevError,
		Fix: "point length_is at an integer in parameter of the same operation",
		Doc: "[length_is(p)] must name an integer parameter of the same operation " +
			"that carries the buffer's explicit length (paper Figure 10).",
	},
	"FV010": {
		ID: "FV010", Title: "mutability-on-out", Severity: SevError,
		Fix: "move the annotation to an in or inout parameter",
		Doc: "[trashable]/[preserved] govern what happens to a sender's buffer " +
			"during marshaling; they are meaningless on out-only parameters and " +
			"results.",
	},
	"FV011": {
		ID: "FV011", Title: "nonunique-on-non-port", Severity: SevError,
		Fix: "move [nonunique] to a port parameter",
		Doc: "[nonunique] relaxes the unique-name invariant of port rights; it has " +
			"no meaning on data parameters.",
	},
	"FV012": {
		ID: "FV012", Title: "alloc-on-scalar", Severity: SevError,
		Fix: "move [alloc]/[dealloc] to a buffer-typed parameter",
		Doc: "Allocation annotations govern buffer storage; scalars are copied by " +
			"value and have no storage to manage.",
	},
	"FV013": {
		ID: "FV013", Title: "pooled-client-needs-step-hooks", Severity: SevWarning,
		Fix: "implement runtime.StepHooks (EncodeStep/DecodeStep) on the endpoint's hooks, or bind through the serial client",
		Doc: "A presentation with [special] parameters is bound through the pooled " +
			"parallel client, whose recycled per-call state runs marshal hooks " +
			"concurrently: the hooks must implement the bind-time step interface " +
			"(runtime.StepHooks), which also declares them re-entrant. " +
			"NewParallelClient rejects plain SpecialHooks at bind time; this check " +
			"flags the mismatch before it gets there.",
	},
	"FV015": {
		ID: "FV015", Title: "traced-special-allocates-on-pooled-path", Severity: SevWarning,
		Fix: "drop [traced] from the [special] parameter, meter at the transport's wire meter instead, or bind through the serial client",
		Doc: "[traced] meters a parameter by snapshotting the encoder position " +
			"around its marshal step. A [special] hook is opaque user code, so " +
			"the meter cannot piggyback on the compiled step's size knowledge; " +
			"on the pooled parallel client, whose per-call encoder state is " +
			"recycled concurrently, the wrapper must take a defensive buffer " +
			"snapshot per call — an allocation on the otherwise zero-alloc " +
			"pooled path.",
	},
	"FV016": {
		ID: "FV016", Title: "batchable-copies-frames", Severity: SevWarning,
		Fix: "drop [batchable], or remove the [special] hook / ownership-moving annotation from the operation",
		Doc: "A [batchable] operation's marshaled request is copied into a queue " +
			"and transmitted later, merged with other calls into one session " +
			"frame. A [special] marshal hook runs at enqueue time, not " +
			"transmission time, so hooks with external side effects (port " +
			"movement, shared-buffer handoff) observe a different world than " +
			"the wire does; and ownership-moving annotations ([dealloc(always)] " +
			"on an in parameter, [alloc(callee)] on an out) tie buffer lifetime " +
			"to a call boundary the batcher has dissolved. Either combination " +
			"makes the batching copy observable.",
	},
	"FV017": {
		ID: "FV017", Title: "borrow-escape", Severity: SevError,
		Fix: "copy before retaining: append([]byte(nil), b...) or copy(dst, b)",
		Doc: "A handler retains a []byte that aliases the request frame or a " +
			"pooled call buffer (Call.ArgBytes, Call.Arg, Call.OutBuffer, " +
			"Call.ResultBuffer) past handler return — stored into a field, " +
			"global, channel, or escaping closure. The frame is recycled after " +
			"the reply is marshaled, so the retained slice is silently " +
			"overwritten by a later call. The borrow contract (the CORBA server " +
			"mapping the compiled plans rely on) requires a copy instead.",
	},
	"FV018": {
		ID: "FV018", Title: "idempotent-impure-handler", Severity: SevWarning,
		Fix: "drop [idempotent] and rely on the at-most-once reply cache, or make the handler pure",
		Doc: "A handler bound to an [idempotent] operation writes captured or " +
			"global state. [idempotent] lets the session layer retransmit and " +
			"re-execute the operation without duplicate suppression, so every " +
			"re-execution repeats the write — the retry becomes observable, " +
			"contradicting the annotation. Non-idempotent operations go " +
			"through the (cid,seq) reply cache instead, which executes once.",
	},
	"FV019": {
		ID: "FV019", Title: "pooled-bind-without-step-hooks", Severity: SevWarning,
		Fix: "implement runtime.StepHooks (EncodeStep/DecodeStep) on the hooks value passed to NewParallelClient",
		Doc: "A call site binds hooks through runtime.NewParallelClient whose " +
			"concrete type implements SpecialHooks but not the re-entrant " +
			"bind-time StepHooks interface the pooled client requires — the " +
			"Go-code complement of FV013, which sees only the presentation " +
			"side. NewParallelClient rejects the bind at runtime; this flags " +
			"the call site at vet time.",
	},
	"FV020": {
		ID: "FV020", Title: "dropped-context", Severity: SevWarning,
		Fix: "thread the available context (Call.Context() in handlers, the enclosing ctx parameter in callers) instead of context.Background()",
		Doc: "A fresh context.Background()/context.TODO() is passed where a " +
			"live context is already in scope: a handler ignoring " +
			"Call.Context(), or a caller with a ctx parameter invoking a " +
			"context-aware entry point (InvokeContext, CallContext, " +
			"SessionServer.Handle, ...) with Background. The deadline and " +
			"cancellation the RobustConn layer plumbs end-to-end are silently " +
			"severed at that point.",
	},
	"FV021": {
		ID: "FV021", Title: "trust-elides-ownership-protocol", Severity: SevWarning,
		Fix: "drop the ownership-moving annotation, or match the peer's trust level so the elision actually happens",
		Doc: "Full trust ([trusted]/[unprotected]) composed with per-call " +
			"ownership machinery. A trusted same-domain binding elides the " +
			"per-call buffer ownership protocol — payloads alias leased " +
			"shared-memory slots and never transfer — so an explicit " +
			"ownership-moving annotation ([dealloc(always)] on an in " +
			"buffer, [alloc(callee)] on an out) is silently unenforced on " +
			"the very path the trust grant selects. Conversely, when the " +
			"peer presents untrusted, the combination signature keeps the " +
			"validated ownership path and discards every elision the " +
			"grant was written to buy.",
	},
	"FV022": {
		ID: "FV022", Title: "hedged-moves-ownership", Severity: SevWarning,
		Fix: "drop [hedged] (let the retry budget alone pace retries), or stop moving ownership in the signature",
		Doc: "A [hedged] operation invites the client to race or " +
			"speculatively re-send it — hedged requests, aggressive " +
			"retry-on-pushback — but this operation's signature moves " +
			"buffer ownership: an in parameter freed by the stub after " +
			"marshaling ([dealloc(always)]) is double-moved by the hedge's " +
			"second marshal, and a callee-allocated out buffer " +
			"([alloc(callee)]) arrives once per execution with at most one " +
			"delivery. A shed-then-retry under admission-control pushback " +
			"hits exactly this path: the first send already consumed the " +
			"buffer the hedge needs.",
	},
	"FV023": {
		ID: "FV023", Title: "netpoll-borrow-escape", Severity: SevError,
		Fix: "copy before retaining: d.OpaqueCopy(), d.OpaqueInto(dst), or append([]byte(nil), b...)",
		Doc: "A raw Sun RPC handler (Server.Register) in a package that " +
			"switches the server to netpoll mode (SetNetpoll(true)) retains a " +
			"[]byte from xdr.Decoder.Opaque or FixedOpaque past handler " +
			"return. Those accessors alias the request record buffer; the " +
			"serial path keeps that buffer connection-private until the next " +
			"record, which masks the bug, but the netpoll runtime dispatches " +
			"through the shared worker pool, which returns the buffer to the " +
			"pool the moment the handler returns — the retained slice is " +
			"rewritten under concurrent handlers for other connections. The " +
			"FV017 borrow contract applied to the raw decoder surface.",
	},
	"FV014": {
		ID: "FV014", Title: "idempotent-moves-ownership", Severity: SevWarning,
		Fix: "drop [idempotent] and rely on the at-most-once reply cache, or stop moving ownership in the signature",
		Doc: "An [idempotent] operation may be retransmitted and re-executed " +
			"without duplicate suppression, so re-execution must be harmless — " +
			"but this operation's signature moves buffer ownership: an in " +
			"parameter the stub frees after marshaling ([dealloc(always)]) " +
			"would be double-freed by the retransmit's marshal, and a " +
			"callee-allocated out buffer ([alloc(callee)]) is allocated once " +
			"per execution with only one delivery. Either effect makes the " +
			"retry observable, contradicting the annotation.",
	},
}

// Lookup returns the registry entry for a check ID; external
// analyzer suites (gocheck) use it so their findings carry the
// registry's severity and fix text.
func Lookup(id string) CheckInfo { return registry[id] }

// Checks returns the full registry sorted by ID, for `flexc vet -list`
// and documentation.
func Checks() []CheckInfo {
	out := make([]CheckInfo, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
