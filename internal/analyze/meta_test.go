package analyze_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flexrpc/internal/analyze"
)

// TestEveryCheckHasGoldenFixture is the coverage meta-test: every
// registered check ID must be pinned by at least one golden file —
// presentation checks under testdata/, Go-source checks under
// gocheck/testdata/ — and the golden must actually contain a rendered
// finding for that ID, so a silently-dead analyzer can't hide behind
// an empty file.
func TestEveryCheckHasGoldenFixture(t *testing.T) {
	covered := map[string]bool{}
	for _, dir := range []string{"testdata", filepath.Join("gocheck", "testdata")} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".golden") || !strings.HasPrefix(name, "fv") {
				continue
			}
			// fv013_pooled_without_step_hooks.golden -> FV013
			id := "FV" + strings.TrimSuffix(name, ".golden")[2:5]
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(data), "["+id+"]") {
				t.Errorf("%s does not contain a rendered %s finding", filepath.Join(dir, name), id)
				continue
			}
			covered[id] = true
		}
	}
	for _, c := range analyze.Checks() {
		if !covered[c.ID] {
			t.Errorf("check %s (%s) has no golden fixture under testdata/ or gocheck/testdata/", c.ID, c.Title)
		}
	}
	for id := range covered {
		if analyze.Lookup(id).ID == "" {
			t.Errorf("golden fixture references unregistered check %s", id)
		}
	}
}
