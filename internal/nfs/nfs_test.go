package nfs

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"flexrpc/internal/kernbuf"
	"flexrpc/internal/netsim"
)

const testFileSize = 64 << 10

// dialShaped connects a fresh client conn to srv over a shaped link.
func dialShaped(t *testing.T, srv *Server, p netsim.LinkParams) net.Conn {
	t.Helper()
	cc, sc := netsim.BufferedPipe(p, 64)
	srv.Start(sc)
	t.Cleanup(func() { cc.Close() })
	return cc
}

// dialTo connects over an unshaped link.
func dialTo(t *testing.T, srv *Server) net.Conn {
	return dialShaped(t, srv, netsim.LinkParams{})
}

func allClients(t *testing.T, srv *Server) []ReadClient {
	t.Helper()
	g1, err := NewGenClient(dialTo(t, srv), false)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenClient(dialTo(t, srv), true)
	if err != nil {
		t.Fatal(err)
	}
	return []ReadClient{
		NewHandClient(dialTo(t, srv), false),
		NewHandClient(dialTo(t, srv), true),
		g1,
		g2,
	}
}

// readWhole reads the entire exported file via 8K reads.
func readWhole(t *testing.T, c ReadClient) *kernbuf.UserBuffer {
	t.Helper()
	ub := kernbuf.NewUserBuffer(testFileSize)
	off := uint32(0)
	for off < testFileSize {
		n, err := c.ReadAt(ub, int(off), off, MaxData)
		if err != nil {
			t.Fatalf("%s: ReadAt(%d): %v", c.Name(), off, err)
		}
		if n == 0 {
			break
		}
		off += uint32(n)
	}
	return ub
}

// The central correctness claim of Figure 2: all four stub variants
// deliver identical file contents to user space.
func TestAllVariantsDeliverIdenticalData(t *testing.T) {
	srv := NewServer(testFileSize)
	for _, c := range allClients(t, srv) {
		ub := readWhole(t, c)
		if !bytes.Equal(ub.UserView(), srv.FileData()) {
			t.Errorf("%s: user buffer does not match the exported file", c.Name())
		}
	}
}

// The copy counts are the experiment's mechanism: conventional = one
// extra kernel-to-user crossing per read plus an intermediate
// buffer; user-buffer presentation = exactly one crossing and no
// intermediate.
func TestCopyCounts(t *testing.T) {
	srv := NewServer(testFileSize)
	reads := uint64(testFileSize / MaxData)

	for _, c := range allClients(t, srv) {
		readWhole(t, c)
		m := c.Stats().Meter
		if m.UserCopies != reads {
			t.Errorf("%s: user copies = %d, want %d", c.Name(), m.UserCopies, reads)
		}
		if m.UserBytes != testFileSize {
			t.Errorf("%s: user bytes = %d, want %d", c.Name(), m.UserBytes, testFileSize)
		}
	}

	// The hand-coded conventional client meters its intermediate
	// kernel copies explicitly.
	hc := NewHandClient(dialTo(t, srv), false)
	readWhole(t, hc)
	if m := hc.Stats().Meter; m.KernelCopies != reads || m.KernelBytes != testFileSize {
		t.Errorf("hand/conventional kernel copies = %+v, want %d", m, reads)
	}
	hs := NewHandClient(dialTo(t, srv), true)
	readWhole(t, hs)
	if m := hs.Stats().Meter; m.KernelCopies != 0 {
		t.Errorf("hand/user-buffer should do no kernel copies, got %d", m.KernelCopies)
	}
}

func TestStatsSplitIsSane(t *testing.T) {
	srv := NewServer(testFileSize)
	c := NewHandClient(dialShaped(t, srv, netsim.LinkParams{Bandwidth: 16 << 20}), false)
	readWhole(t, c)
	s := c.Stats()
	if s.TotalNanos <= 0 || s.NetServerNanos <= 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ClientNanos() <= 0 {
		t.Fatalf("client nanos = %d", s.ClientNanos())
	}
	// Under a bandwidth-shaped link, network dominates.
	if s.NetServerNanos < s.ClientNanos() {
		t.Errorf("expected network-dominated split, got net=%d client=%d",
			s.NetServerNanos, s.ClientNanos())
	}
}

func TestGetattrAndWrite(t *testing.T) {
	srv := NewServer(testFileSize)
	c := NewHandClient(dialTo(t, srv), false)
	a, err := c.Getattr()
	if err != nil || a.Size != testFileSize {
		t.Fatalf("getattr = %+v, %v", a, err)
	}
	// Write through copy-in, then read back.
	ub := kernbuf.NewUserBuffer(512)
	copy(ub.UserView(), bytes.Repeat([]byte("W"), 512))
	if err := c.WriteAt(ub, 0, 1024, 512); err != nil {
		t.Fatal(err)
	}
	out := kernbuf.NewUserBuffer(512)
	if _, err := c.ReadAt(out, 0, 1024, 512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.UserView(), ub.UserView()) {
		t.Fatal("write-read mismatch")
	}
}

func TestShortReadAtEOF(t *testing.T) {
	srv := NewServer(1000)
	c := NewHandClient(dialTo(t, srv), true)
	ub := kernbuf.NewUserBuffer(MaxData)
	n, err := c.ReadAt(ub, 0, 900, MaxData)
	if err != nil || n != 100 {
		t.Fatalf("short read = %d, %v", n, err)
	}
	n, err = c.ReadAt(ub, 0, 5000, MaxData)
	if err != nil || n != 0 {
		t.Fatalf("past-EOF read = %d, %v", n, err)
	}
}

func TestBadHandleRejected(t *testing.T) {
	srv := NewServer(1000)
	c := NewHandClient(dialTo(t, srv), false)
	c.fh = FH{} // wrong handle
	ub := kernbuf.NewUserBuffer(64)
	_, err := c.ReadAt(ub, 0, 0, 64)
	var se *ErrServer
	if !errors.As(err, &se) || se.Stat != StatNoEnt {
		t.Fatalf("err = %v, want NFSERR_NOENT", err)
	}
}

func TestSpecialPDLCompiles(t *testing.T) {
	compiled, err := Compile()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := compiled.WithPDL("s.pdl", SpecialPDL)
	if err != nil {
		t.Fatal(err)
	}
	op := sc.Pres.Op("NFSPROC_READ")
	if !op.CommStatus || !op.Result().Special {
		t.Fatalf("presentation = %+v", op)
	}
	// And it cannot have changed the contract.
	if compiled.Iface.Signature() != sc.Iface.Signature() {
		t.Fatal("PDL changed the contract")
	}
}
