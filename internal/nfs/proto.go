// Package nfs reproduces the paper's §4.1 Linux NFS client
// experiment: an NFS-subset file server reached over Sun RPC/XDR on
// a (shaped) network link, and a monolithic-kernel NFS client whose
// read stubs come in four variants — {conventional, user-space
// buffer presentation} x {hand-coded, generated} — exactly the four
// bars of Figure 2.
//
// The conventional presentation unmarshals read data into an
// intermediate kernel buffer and then copies it out to the user
// process; the [special] presentation (Figure 1's PDL) unmarshals
// straight into the user buffer with the kernel's copy-out routine,
// eliminating the intermediate buffer. The hand-coded stubs do
// manually what the generated ones do automatically, reproducing the
// paper's "essentially no performance difference between hand-coded
// and automatically-generated stubs" claim.
package nfs

import (
	"flexrpc/internal/core"
)

// XFile is the NFS-subset protocol definition (a trimmed NFS v2 .x
// file in rpcgen dialect).
const XFile = `
const NFS_FHSIZE = 32;
const NFS_MAXDATA = 8192;

typedef opaque nfs_fh[NFS_FHSIZE];
typedef opaque nfsdata<NFS_MAXDATA>;

enum nfsstat {
	NFS_OK = 0,
	NFSERR_NOENT = 2,
	NFSERR_IO = 5,
	NFSERR_FBIG = 27
};

struct fattr {
	unsigned fileid;
	unsigned size;
	unsigned blocksize;
	unsigned mtime;
};

struct readargs {
	nfs_fh file;
	unsigned offset;
	unsigned count;
	unsigned totalcount;
};

struct readres {
	nfsstat status;
	fattr attributes;
	nfsdata data;
};

struct writeargs {
	nfs_fh file;
	unsigned beginoffset;
	unsigned offset;
	unsigned totalcount;
	nfsdata data;
};

struct attrstat {
	nfsstat status;
	fattr attributes;
};

program NFS_PROGRAM {
	version NFS_VERSION {
		void NFSPROC_NULL(void) = 0;
		attrstat NFSPROC_GETATTR(nfs_fh) = 1;
		readres NFSPROC_READ(readargs) = 6;
		attrstat NFSPROC_WRITE(writeargs) = 8;
	} = 2;
} = 100003;
`

// SpecialPDL is the client-side presentation of the paper's Figure 1
// adapted to the .x dialect: the read result (whose data field
// carries the file bytes) is unmarshaled by programmer-provided
// routines using the kernel's copy-out path.
const SpecialPDL = `
interface NFS_PROGRAM_NFS_VERSION {
	[comm_status] NFSPROC_READ([special] return);
};`

// Protocol constants.
const (
	FHSize  = 32
	MaxData = 8192

	ProcNull    = 0
	ProcGetattr = 1
	ProcRead    = 6
	ProcWrite   = 8

	StatOK    = 0
	StatNoEnt = 2
	StatIO    = 5
)

// Compile parses the protocol and returns its compilation (Sun
// style defaults).
func Compile() (*core.Compiled, error) {
	return core.Compile(core.Options{
		Frontend: core.FrontendSunXDR,
		Filename: "nfs.x",
		Source:   XFile,
	})
}

// FH is an NFS file handle.
type FH [FHSize]byte

// RootFH returns the handle of the server's single exported file.
func RootFH() FH {
	var fh FH
	copy(fh[:], "flexrpc-nfs-root-file-handle!!!!")
	return fh
}

// Attr mirrors the fattr struct.
type Attr struct {
	FileID    uint32
	Size      uint32
	BlockSize uint32
	MTime     uint32
}
