package nfs

import (
	"net"
	"sync"

	"flexrpc/internal/sunrpc"
	"flexrpc/internal/xdr"
)

// A Server is the BSD file server of the experiment: one exported
// in-memory file served over Sun RPC. It is deliberately hand-coded
// against the sunrpc engine — the server side is not what the
// experiment varies.
type Server struct {
	mu   sync.RWMutex
	file []byte
	attr Attr
}

// NewServer creates a server exporting a file of the given size with
// deterministic contents.
func NewServer(size int) *Server {
	file := make([]byte, size)
	for i := range file {
		file[i] = byte(i*2654435761 + i>>8)
	}
	return &Server{
		file: file,
		attr: Attr{FileID: 2, Size: uint32(size), BlockSize: MaxData, MTime: 799137182},
	}
}

// FileData returns the exported file (for test verification).
func (s *Server) FileData() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.file
}

func (s *Server) putAttr(e *xdr.Encoder) {
	e.PutUint32(s.attr.FileID)
	e.PutUint32(s.attr.Size)
	e.PutUint32(s.attr.BlockSize)
	e.PutUint32(s.attr.MTime)
}

func decodeFH(d *xdr.Decoder) (FH, error) {
	var fh FH
	err := d.FixedOpaqueInto(fh[:])
	return fh, err
}

// SunRPC builds the RFC 1057 server with the NFS procedures
// registered.
func (s *Server) SunRPC() *sunrpc.Server {
	srv := sunrpc.NewServer(100003, 2)
	srv.Register(ProcGetattr, func(args *xdr.Decoder, reply *xdr.Encoder) error {
		fh, err := decodeFH(args)
		if err != nil {
			return sunrpc.ErrGarbageArgs
		}
		s.mu.RLock()
		defer s.mu.RUnlock()
		if fh != RootFH() {
			reply.PutUint32(StatNoEnt)
			s.putAttr(reply)
			return nil
		}
		reply.PutUint32(StatOK)
		s.putAttr(reply)
		return nil
	})
	srv.Register(ProcRead, func(args *xdr.Decoder, reply *xdr.Encoder) error {
		fh, err := decodeFH(args)
		if err != nil {
			return sunrpc.ErrGarbageArgs
		}
		offset, err1 := args.Uint32()
		count, err2 := args.Uint32()
		if _, err3 := args.Uint32(); err1 != nil || err2 != nil || err3 != nil {
			return sunrpc.ErrGarbageArgs
		}
		s.mu.RLock()
		defer s.mu.RUnlock()
		if fh != RootFH() {
			reply.PutUint32(StatNoEnt)
			s.putAttr(reply)
			reply.PutOpaque(nil)
			return nil
		}
		if count > MaxData {
			count = MaxData
		}
		end := int(offset) + int(count)
		if int(offset) > len(s.file) {
			end = int(offset)
		} else if end > len(s.file) {
			end = len(s.file)
		}
		reply.PutUint32(StatOK)
		s.putAttr(reply)
		if int(offset) >= len(s.file) {
			reply.PutOpaque(nil)
		} else {
			reply.PutOpaque(s.file[offset:end])
		}
		return nil
	})
	srv.Register(ProcWrite, func(args *xdr.Decoder, reply *xdr.Encoder) error {
		fh, err := decodeFH(args)
		if err != nil {
			return sunrpc.ErrGarbageArgs
		}
		if _, err := args.Uint32(); err != nil { // beginoffset
			return sunrpc.ErrGarbageArgs
		}
		offset, err1 := args.Uint32()
		if _, err := args.Uint32(); err != nil { // totalcount
			return sunrpc.ErrGarbageArgs
		}
		data, err2 := args.Opaque()
		if err1 != nil || err2 != nil {
			return sunrpc.ErrGarbageArgs
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if fh != RootFH() || int(offset)+len(data) > len(s.file) {
			reply.PutUint32(StatIO)
			s.putAttr(reply)
			return nil
		}
		copy(s.file[offset:], data)
		reply.PutUint32(StatOK)
		s.putAttr(reply)
		return nil
	})
	return srv
}

// Start serves the given connection on a goroutine (one NFS client
// per connection, as in the experiment).
func (s *Server) Start(conn net.Conn) {
	srv := s.SunRPC()
	go func() { _ = srv.ServeConn(conn) }()
}
