package nfs

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"flexrpc/internal/kernbuf"
	"flexrpc/internal/runtime"
	"flexrpc/internal/sunrpc"
	"flexrpc/internal/transport/suntcp"
	"flexrpc/internal/xdr"
)

// A ReadClient is one NFS client stub variant. ReadAt reads count
// bytes at fileOff from the exported file into the user buffer at
// dstOff, through whatever copy path the variant's presentation
// implies.
type ReadClient interface {
	ReadAt(dst *kernbuf.UserBuffer, dstOff int, fileOff, count uint32) (int, error)
	Stats() Stats
	Name() string
}

// Stats separates the two segments of Figure 2's bars.
type Stats struct {
	// TotalNanos is wall time spent in ReadAt.
	TotalNanos int64
	// NetServerNanos is the portion spent blocked on the network
	// connection (transmission + server processing) — the left,
	// invariant part of each bar.
	NetServerNanos int64
	// Meter counts the copies each path performed.
	Meter kernbuf.Snapshot
}

// ClientNanos returns the client-processing segment: marshaling,
// unmarshaling, buffer management and user-space copies.
func (s Stats) ClientNanos() int64 { return s.TotalNanos - s.NetServerNanos }

// timedConn accumulates time spent blocked in the connection, which
// under a shaped link is network transmission plus server time.
type timedConn struct {
	net.Conn
	nanos *atomic.Int64
}

func (c *timedConn) Write(b []byte) (int, error) {
	t0 := time.Now()
	n, err := c.Conn.Write(b)
	c.nanos.Add(time.Since(t0).Nanoseconds())
	return n, err
}

func (c *timedConn) Read(b []byte) (int, error) {
	t0 := time.Now()
	n, err := c.Conn.Read(b)
	c.nanos.Add(time.Since(t0).Nanoseconds())
	return n, err
}

// ErrServer reports a non-OK NFS status.
type ErrServer struct{ Stat uint32 }

func (e *ErrServer) Error() string { return fmt.Sprintf("nfs: server status %d", e.Stat) }

// --- Generated-stub clients (conventional and [special]) ---

// readTarget is the per-call destination the [special] unmarshal
// hook lands data in.
type readTarget struct {
	ub  *kernbuf.UserBuffer
	off int
}

// specialResult is the local value the [special] hook produces for
// the read result: the data bytes are already in user space.
type specialResult struct {
	status int32
	attr   Attr
	n      int
}

// genHooks implements the Figure 1 presentation: unmarshal the read
// data directly into the user buffer with the kernel's copy-out
// routine instead of the normal memcpy.
type genHooks struct {
	meter  *kernbuf.Meter
	target readTarget
}

func (h *genHooks) EncodeSpecial(op, param string, enc runtime.Encoder, v runtime.Value) error {
	return fmt.Errorf("nfs: unexpected special encode of %s.%s", op, param)
}

func (h *genHooks) DecodeSpecial(op, param string, dec runtime.Decoder) (runtime.Value, error) {
	var res specialResult
	var err error
	if res.status, err = dec.Int32(); err != nil {
		return nil, err
	}
	for _, p := range []*uint32{&res.attr.FileID, &res.attr.Size, &res.attr.BlockSize, &res.attr.MTime} {
		if *p, err = dec.Uint32(); err != nil {
			return nil, err
		}
	}
	// The wire data, copied exactly once: straight to user space.
	wire, err := dec.Bytes()
	if err != nil {
		return nil, err
	}
	if err := h.meter.CopyToUser(h.target.ub, h.target.off, wire); err != nil {
		return nil, err
	}
	res.n = len(wire)
	return &res, nil
}

// GenClient is a generated-stub client; special selects the
// user-space buffer presentation.
type GenClient struct {
	client   *runtime.Client
	meter    *kernbuf.Meter
	hooks    *genHooks
	special  bool
	netNanos atomic.Int64
	total    atomic.Int64
	fh       FH
}

// NewGenClient builds a generated-stub client over conn.
func NewGenClient(conn net.Conn, special bool) (*GenClient, error) {
	compiled, err := Compile()
	if err != nil {
		return nil, err
	}
	g := &GenClient{meter: &kernbuf.Meter{}, special: special, fh: RootFH()}
	p := compiled.Pres
	var hooks runtime.SpecialHooks
	if special {
		sc, err := compiled.WithPDL("nfs-special.pdl", SpecialPDL)
		if err != nil {
			return nil, err
		}
		p = sc.Pres
		g.hooks = &genHooks{meter: g.meter}
		hooks = g.hooks
	}
	tc := &timedConn{Conn: conn, nanos: &g.netNanos}
	g.client, err = runtime.NewClient(p, runtime.XDRCodec, suntcp.Dial(tc, p), hooks)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Name identifies the variant in reports.
func (g *GenClient) Name() string {
	if g.special {
		return "generated/user-buffer"
	}
	return "generated/conventional"
}

// Stats returns the accumulated timing split.
func (g *GenClient) Stats() Stats {
	return Stats{
		TotalNanos:     g.total.Load(),
		NetServerNanos: g.netNanos.Load(),
		Meter:          g.meter.Snapshot(),
	}
}

// ReadAt performs one NFS read through the generated stubs.
func (g *GenClient) ReadAt(dst *kernbuf.UserBuffer, dstOff int, fileOff, count uint32) (int, error) {
	t0 := time.Now()
	defer func() { g.total.Add(time.Since(t0).Nanoseconds()) }()

	args := []runtime.Value{ // readargs struct
		g.fh[:], fileOff, count, count,
	}
	if g.special {
		g.hooks.target = readTarget{ub: dst, off: dstOff}
		_, ret, err := g.client.Invoke("NFSPROC_READ", []runtime.Value{args}, nil, nil)
		if err != nil {
			return 0, err
		}
		res := ret.(*specialResult)
		if res.status != StatOK {
			return 0, &ErrServer{Stat: uint32(res.status)}
		}
		return res.n, nil
	}
	// Conventional presentation: the stub unmarshals the data into
	// an intermediate kernel buffer; the client then copies it out
	// to user space.
	_, ret, err := g.client.Invoke("NFSPROC_READ", []runtime.Value{args}, nil, nil)
	if err != nil {
		return 0, err
	}
	res := ret.([]runtime.Value)
	status := res[0].(int32)
	if status != StatOK {
		return 0, &ErrServer{Stat: uint32(status)}
	}
	kernelBuf := res[2].([]byte)
	if err := g.meter.CopyToUser(dst, dstOff, kernelBuf); err != nil {
		return 0, err
	}
	return len(kernelBuf), nil
}

// --- Hand-coded clients (the original Linux approach) ---

// HandClient is the manually written Sun RPC stub pair, mirroring
// the kernel stubs Linux used instead of rpcgen output.
type HandClient struct {
	rpc      *sunrpc.Client
	meter    *kernbuf.Meter
	special  bool
	netNanos atomic.Int64
	total    atomic.Int64
	fh       FH
}

// NewHandClient builds a hand-coded client over conn.
func NewHandClient(conn net.Conn, special bool) *HandClient {
	h := &HandClient{meter: &kernbuf.Meter{}, special: special, fh: RootFH()}
	tc := &timedConn{Conn: conn, nanos: &h.netNanos}
	h.rpc = sunrpc.NewClient(tc, 100003, 2)
	return h
}

// Name identifies the variant in reports.
func (h *HandClient) Name() string {
	if h.special {
		return "hand-coded/user-buffer"
	}
	return "hand-coded/conventional"
}

// Stats returns the accumulated timing split.
func (h *HandClient) Stats() Stats {
	return Stats{
		TotalNanos:     h.total.Load(),
		NetServerNanos: h.netNanos.Load(),
		Meter:          h.meter.Snapshot(),
	}
}

// ReadAt performs one NFS read through the hand-written stubs.
func (h *HandClient) ReadAt(dst *kernbuf.UserBuffer, dstOff int, fileOff, count uint32) (int, error) {
	t0 := time.Now()
	defer func() { h.total.Add(time.Since(t0).Nanoseconds()) }()

	var n int
	err := h.rpc.Call(ProcRead,
		func(e *xdr.Encoder) {
			e.PutFixedOpaque(h.fh[:])
			e.PutUint32(fileOff)
			e.PutUint32(count)
			e.PutUint32(count)
		},
		func(d *xdr.Decoder) error {
			status, err := d.Uint32()
			if err != nil {
				return err
			}
			for i := 0; i < 4; i++ { // fattr
				if _, err := d.Uint32(); err != nil {
					return err
				}
			}
			if status != StatOK {
				return &ErrServer{Stat: status}
			}
			wire, err := d.Opaque()
			if err != nil {
				return err
			}
			if h.special {
				// User-space buffer presentation: one copy,
				// wire straight to the user buffer.
				if err := h.meter.CopyToUser(dst, dstOff, wire); err != nil {
					return err
				}
				n = len(wire)
				return nil
			}
			// Conventional: intermediate kernel buffer, then the
			// copy out to user space.
			kernelBuf := make([]byte, len(wire))
			h.meter.KernelCopy(kernelBuf, wire)
			if err := h.meter.CopyToUser(dst, dstOff, kernelBuf); err != nil {
				return err
			}
			n = len(kernelBuf)
			return nil
		})
	return n, err
}

// WriteAt writes count bytes from the user buffer to the file — the
// copy-in direction, hand-coded only (writes are not part of the
// Figure 2 experiment).
func (h *HandClient) WriteAt(src *kernbuf.UserBuffer, srcOff int, fileOff, count uint32) error {
	staging := make([]byte, count)
	if err := h.meter.CopyFromUser(staging, src, srcOff, int(count)); err != nil {
		return err
	}
	return h.rpc.Call(ProcWrite,
		func(e *xdr.Encoder) {
			e.PutFixedOpaque(h.fh[:])
			e.PutUint32(0)
			e.PutUint32(fileOff)
			e.PutUint32(count)
			e.PutOpaque(staging)
		},
		func(d *xdr.Decoder) error {
			status, err := d.Uint32()
			if err != nil {
				return err
			}
			if status != StatOK {
				return &ErrServer{Stat: status}
			}
			return nil
		})
}

// Getattr fetches the file attributes (used to learn the file size).
func (h *HandClient) Getattr() (Attr, error) {
	var a Attr
	err := h.rpc.Call(ProcGetattr,
		func(e *xdr.Encoder) { e.PutFixedOpaque(h.fh[:]) },
		func(d *xdr.Decoder) error {
			status, err := d.Uint32()
			if err != nil {
				return err
			}
			for _, p := range []*uint32{&a.FileID, &a.Size, &a.BlockSize, &a.MTime} {
				if *p, err = d.Uint32(); err != nil {
					return err
				}
			}
			if status != StatOK {
				return &ErrServer{Stat: status}
			}
			return nil
		})
	return a, err
}
