package xdr

import "testing"

// FuzzDecoder drives the decoder over arbitrary bytes: the first
// input byte seeds which primitive is read next, the rest is the
// wire buffer. The decoder must never panic, never hand back more
// bytes than the input holds, and never let Remaining go negative —
// the properties a network-facing unmarshaler lives or dies by.
func FuzzDecoder(f *testing.F) {
	var e Encoder
	e.PutInt32(-5)
	e.PutString("hello")
	e.PutOpaque([]byte{1, 2, 3})
	e.PutUint64(1 << 40)
	e.PutBool(true)
	e.PutArrayLen(2)
	f.Add(append([]byte{0}, e.Bytes()...))
	f.Add([]byte{7, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{3, 0, 0, 0, 2, 'h', 'i', 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sel, wire := data[0], data[1:]
		var d Decoder
		d.Reset(wire)
		d.MaxLength = 1 << 20
		var scratch [16]byte
		for i := 0; i < 64; i++ {
			before := d.Remaining()
			var err error
			switch (int(sel) + i) % 10 {
			case 0:
				_, err = d.Bool()
			case 1:
				_, err = d.Int32()
			case 2:
				_, err = d.Uint64()
			case 3:
				_, err = d.Float64()
			case 4:
				var s string
				if s, err = d.String(); err == nil && len(s) > len(wire) {
					t.Fatalf("string of %d bytes from %d input bytes", len(s), len(wire))
				}
			case 5:
				var b []byte
				if b, err = d.Opaque(); err == nil && len(b) > len(wire) {
					t.Fatalf("opaque of %d bytes from %d input bytes", len(b), len(wire))
				}
			case 6:
				_, err = d.OpaqueInto(scratch[:])
			case 7:
				_, err = d.FixedOpaque(8)
			case 8:
				err = d.FixedOpaqueInto(scratch[:4])
			case 9:
				var n int
				if n, err = d.ArrayLen(); err == nil && uint32(n) > d.MaxLength {
					t.Fatalf("array length %d exceeds MaxLength %d", n, d.MaxLength)
				}
			}
			if d.Remaining() < 0 || d.Remaining() > before {
				t.Fatalf("Remaining went from %d to %d", before, d.Remaining())
			}
			if err != nil {
				return
			}
		}
	})
}
