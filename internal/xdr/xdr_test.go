package xdr

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestPad(t *testing.T) {
	cases := []struct{ n, pad, padded int }{
		{0, 0, 0}, {1, 3, 4}, {2, 2, 4}, {3, 1, 4}, {4, 0, 4},
		{5, 3, 8}, {8, 0, 8}, {9, 3, 12},
	}
	for _, c := range cases {
		if got := Pad(c.n); got != c.pad {
			t.Errorf("Pad(%d) = %d, want %d", c.n, got, c.pad)
		}
		if got := PaddedLen(c.n); got != c.padded {
			t.Errorf("PaddedLen(%d) = %d, want %d", c.n, got, c.padded)
		}
	}
}

func TestUint32Wire(t *testing.T) {
	var e Encoder
	e.PutUint32(0x01020304)
	want := []byte{1, 2, 3, 4}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("wire = %x, want %x", e.Bytes(), want)
	}
	d := NewDecoder(e.Bytes())
	v, err := d.Uint32()
	if err != nil || v != 0x01020304 {
		t.Fatalf("Uint32() = %x, %v", v, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestInt32Negative(t *testing.T) {
	var e Encoder
	e.PutInt32(-2)
	if !bytes.Equal(e.Bytes(), []byte{0xff, 0xff, 0xff, 0xfe}) {
		t.Fatalf("wire = %x", e.Bytes())
	}
	v, err := NewDecoder(e.Bytes()).Int32()
	if err != nil || v != -2 {
		t.Fatalf("Int32() = %d, %v", v, err)
	}
}

func TestHyperWire(t *testing.T) {
	var e Encoder
	e.PutUint64(0x0102030405060708)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("wire = %x, want %x", e.Bytes(), want)
	}
	v, err := NewDecoder(e.Bytes()).Uint64()
	if err != nil || v != 0x0102030405060708 {
		t.Fatalf("Uint64() = %x, %v", v, err)
	}
}

func TestBool(t *testing.T) {
	var e Encoder
	e.PutBool(true)
	e.PutBool(false)
	d := NewDecoder(e.Bytes())
	v1, err1 := d.Bool()
	v2, err2 := d.Bool()
	if err1 != nil || err2 != nil || !v1 || v2 {
		t.Fatalf("bools = %v %v, errs %v %v", v1, v2, err1, err2)
	}
}

func TestBoolRejectsGarbage(t *testing.T) {
	d := NewDecoder([]byte{0, 0, 0, 7})
	if _, err := d.Bool(); err != ErrBadBool {
		t.Fatalf("err = %v, want ErrBadBool", err)
	}
}

func TestFloats(t *testing.T) {
	var e Encoder
	e.PutFloat32(3.5)
	e.PutFloat64(-1.25e300)
	e.PutFloat64(math.Inf(1))
	d := NewDecoder(e.Bytes())
	f1, _ := d.Float32()
	f2, _ := d.Float64()
	f3, _ := d.Float64()
	if f1 != 3.5 || f2 != -1.25e300 || !math.IsInf(f3, 1) {
		t.Fatalf("floats = %v %v %v", f1, f2, f3)
	}
}

func TestStringPaddingIsZero(t *testing.T) {
	var e Encoder
	e.PutString("abcde")
	want := []byte{0, 0, 0, 5, 'a', 'b', 'c', 'd', 'e', 0, 0, 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("wire = %x, want %x", e.Bytes(), want)
	}
	s, err := NewDecoder(e.Bytes()).String()
	if err != nil || s != "abcde" {
		t.Fatalf("String() = %q, %v", s, err)
	}
}

func TestNonzeroPaddingRejected(t *testing.T) {
	wire := []byte{0, 0, 0, 1, 'x', 0, 0, 1}
	if _, err := NewDecoder(wire).Opaque(); err != ErrBadPadding {
		t.Fatalf("err = %v, want ErrBadPadding", err)
	}
}

func TestOpaqueAliasVsCopy(t *testing.T) {
	var e Encoder
	e.PutOpaque([]byte("hello!!"))
	wire := e.Bytes()

	alias, err := NewDecoder(wire).Opaque()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewDecoder(wire).OpaqueCopy()
	if err != nil {
		t.Fatal(err)
	}
	wire[4] = 'H' // mutate the underlying buffer
	if alias[0] != 'H' {
		t.Error("Opaque should alias the input buffer")
	}
	if cp[0] != 'h' {
		t.Error("OpaqueCopy should not alias the input buffer")
	}
}

func TestFixedOpaqueInto(t *testing.T) {
	var e Encoder
	e.PutFixedOpaque([]byte("abcdef"))
	dst := make([]byte, 6)
	d := NewDecoder(e.Bytes())
	if err := d.FixedOpaqueInto(dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "abcdef" || d.Remaining() != 0 {
		t.Fatalf("dst = %q, remaining = %d", dst, d.Remaining())
	}
}

func TestShortBufferErrors(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); err != ErrShortBuffer {
		t.Errorf("Uint32 err = %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 9, 'x'})
	if _, err := d.Opaque(); err != ErrShortBuffer {
		t.Errorf("Opaque err = %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 4})
	if err := d.FixedOpaqueInto(make([]byte, 8)); err != ErrShortBuffer {
		t.Errorf("FixedOpaqueInto err = %v", err)
	}
}

func TestLengthLimit(t *testing.T) {
	var e Encoder
	e.PutUint32(1 << 30) // absurd declared length
	d := NewDecoder(e.Bytes())
	if _, err := d.Opaque(); err == nil {
		t.Error("expected length-overflow error from Opaque")
	}
	d = NewDecoder(e.Bytes())
	d.MaxLength = 16
	if _, err := d.ArrayLen(); err == nil {
		t.Error("expected length-overflow error from ArrayLen")
	}
	// A custom limit that admits the value should succeed.
	var e2 Encoder
	e2.PutUint32(8)
	d = NewDecoder(e2.Bytes())
	d.MaxLength = 16
	if n, err := d.ArrayLen(); err != nil || n != 8 {
		t.Errorf("ArrayLen = %d, %v", n, err)
	}
}

func TestUnionAndOptional(t *testing.T) {
	var e Encoder
	e.PutUnionTag(-7)
	e.PutOptional(true)
	e.PutOptional(false)
	d := NewDecoder(e.Bytes())
	tag, _ := d.UnionTag()
	p1, _ := d.Optional()
	p2, _ := d.Optional()
	if tag != -7 || !p1 || p2 {
		t.Fatalf("tag=%d p1=%v p2=%v", tag, p1, p2)
	}
}

func TestEncoderReset(t *testing.T) {
	var e Encoder
	e.PutUint32(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("len after reset = %d", e.Len())
	}
	e.PutUint32(2)
	if !bytes.Equal(e.Bytes(), []byte{0, 0, 0, 2}) {
		t.Fatalf("wire = %x", e.Bytes())
	}
}

// Property: every primitive round-trips, and the encoded length is
// always a multiple of the XDR unit.
func TestQuickRoundTrip(t *testing.T) {
	f := func(i32 int32, u32 uint32, i64 int64, u64 uint64, b bool, f32 float32, f64 float64, op []byte, s string) bool {
		var e Encoder
		e.PutInt32(i32)
		e.PutUint32(u32)
		e.PutInt64(i64)
		e.PutUint64(u64)
		e.PutBool(b)
		e.PutFloat32(f32)
		e.PutFloat64(f64)
		e.PutOpaque(op)
		e.PutString(s)
		if e.Len()%UnitSize != 0 {
			return false
		}
		d := NewDecoder(e.Bytes())
		gi32, _ := d.Int32()
		gu32, _ := d.Uint32()
		gi64, _ := d.Int64()
		gu64, _ := d.Uint64()
		gb, _ := d.Bool()
		gf32, _ := d.Float32()
		gf64, _ := d.Float64()
		gop, _ := d.Opaque()
		gs, err := d.String()
		if err != nil || d.Remaining() != 0 {
			return false
		}
		f32ok := gf32 == f32 || (math.IsNaN(float64(f32)) && math.IsNaN(float64(gf32)))
		f64ok := gf64 == f64 || (math.IsNaN(f64) && math.IsNaN(gf64))
		return gi32 == i32 && gu32 == u32 && gi64 == i64 && gu64 == u64 &&
			gb == b && f32ok && f64ok && bytes.Equal(gop, op) && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FixedOpaque wire size is PaddedLen and decoding returns
// exactly the input bytes.
func TestQuickFixedOpaque(t *testing.T) {
	f := func(b []byte) bool {
		var e Encoder
		e.PutFixedOpaque(b)
		if e.Len() != PaddedLen(len(b)) {
			return false
		}
		got, err := NewDecoder(e.Bytes()).FixedOpaque(len(b))
		return err == nil && bytes.Equal(got, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeOpaque1K(b *testing.B) {
	buf := make([]byte, 1024)
	var e Encoder
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutOpaque(buf)
	}
}

func BenchmarkDecodeOpaqueInto1K(b *testing.B) {
	var e Encoder
	e.PutFixedOpaque(make([]byte, 1024))
	dst := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		d := NewDecoder(e.Bytes())
		if err := d.FixedOpaqueInto(dst); err != nil {
			b.Fatal(err)
		}
	}
}
