// Package xdr implements the External Data Representation standard
// (RFC 1014 / RFC 4506), the wire encoding used by Sun RPC.
//
// XDR encodes every item as a multiple of four bytes, big-endian.
// The package provides a buffer-backed Encoder/Decoder pair covering
// every XDR primitive, plus helpers for the composite forms (optional
// data, variable-length arrays, unions) that stub compilers emit.
package xdr

import (
	"errors"
	"fmt"
	"math"
)

// Wire sizes of fixed XDR primitives, in bytes.
const (
	UnitSize   = 4 // the fundamental XDR alignment unit
	HyperSize  = 8
	DoubleSize = 8
)

var (
	// ErrShortBuffer is returned when a decode runs off the end of
	// the input.
	ErrShortBuffer = errors.New("xdr: short buffer")
	// ErrBadPadding is returned when the pad bytes of an opaque or
	// string are not zero, which RFC 4506 requires.
	ErrBadPadding = errors.New("xdr: nonzero padding")
	// ErrLengthOverflow is returned when a variable-length item
	// declares a length exceeding the decoder's limit.
	ErrLengthOverflow = errors.New("xdr: declared length exceeds limit")
	// ErrBadBool is returned when a decoded boolean is neither 0 nor 1.
	ErrBadBool = errors.New("xdr: boolean not 0 or 1")
)

// Pad returns the number of zero bytes needed to pad n up to a
// four-byte boundary.
func Pad(n int) int {
	return (UnitSize - n%UnitSize) % UnitSize
}

// PaddedLen returns n rounded up to a four-byte boundary.
func PaddedLen(n int) int {
	return n + Pad(n)
}

// An Encoder marshals XDR items into a growable byte buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder writing into buf (which may be nil);
// encoded data is appended.
func NewEncoder(buf []byte) *Encoder {
	return &Encoder{buf: buf}
}

// Bytes returns the encoded data. The slice aliases the encoder's
// internal buffer and is valid until the next Put call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards all encoded data but retains the buffer capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// ResetTo re-aims the encoder at caller-provided storage: encoded
// data is appended into buf's backing array, capped at len(buf), so a
// marshaler can target a transport's fixed buffer (an fbuf arena)
// directly. Encoding past the cap falls back to append's reallocation
// — callers detect that by comparing backing arrays.
func (e *Encoder) ResetTo(buf []byte) { e.buf = buf[:0:len(buf)] }

// PutUint32 encodes a 32-bit unsigned integer.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// PutInt32 encodes a 32-bit signed integer.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutUint64 encodes an XDR unsigned hyper.
func (e *Encoder) PutUint64(v uint64) {
	e.PutUint32(uint32(v >> 32))
	e.PutUint32(uint32(v))
}

// PutInt64 encodes an XDR hyper.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutBool encodes an XDR boolean (0 or 1).
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutFloat32 encodes an IEEE-754 single-precision float.
func (e *Encoder) PutFloat32(v float32) { e.PutUint32(math.Float32bits(v)) }

// PutFloat64 encodes an IEEE-754 double-precision float.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutFixedOpaque encodes fixed-length opaque data: the bytes followed
// by zero padding to a four-byte boundary. The length is not encoded;
// it is part of the type per RFC 4506 §4.9.
func (e *Encoder) PutFixedOpaque(b []byte) {
	e.buf = append(e.buf, b...)
	for i := 0; i < Pad(len(b)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// PutOpaque encodes variable-length opaque data: length word, bytes,
// zero padding.
func (e *Encoder) PutOpaque(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.PutFixedOpaque(b)
}

// PutString encodes an XDR string (identical wire form to opaque).
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	for i := 0; i < Pad(len(s)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// PutOptional encodes the boolean discriminant of XDR optional data
// ("*" syntax); when present is true the caller then encodes the body.
func (e *Encoder) PutOptional(present bool) { e.PutBool(present) }

// PutRaw appends pre-encoded XDR data verbatim. The caller is
// responsible for its alignment; transports use this to embed an
// already-marshaled body.
func (e *Encoder) PutRaw(b []byte) { e.buf = append(e.buf, b...) }

// PutArrayLen encodes the element count of a variable-length array.
func (e *Encoder) PutArrayLen(n int) { e.PutUint32(uint32(n)) }

// PutUnionTag encodes the discriminant of an XDR union.
func (e *Encoder) PutUnionTag(tag int32) { e.PutInt32(tag) }

// A Decoder unmarshals XDR items from a byte slice.
type Decoder struct {
	buf []byte
	off int
	// MaxLength bounds every variable-length item (opaque, string,
	// array counts). Zero means DefaultMaxLength.
	MaxLength uint32
}

// DefaultMaxLength is the variable-length bound used by Decoders that
// do not set one explicitly. It is large enough for any message the
// transports in this repository produce while still rejecting
// corrupt length words early.
const DefaultMaxLength = 64 << 20

// NewDecoder returns a Decoder reading from buf.
func NewDecoder(buf []byte) *Decoder {
	return &Decoder{buf: buf}
}

// Reset re-aims the decoder at a new buffer, rewinding it. Hot paths
// use this to reuse one Decoder across messages without allocating.
func (d *Decoder) Reset(buf []byte) {
	d.buf = buf
	d.off = 0
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the number of bytes consumed so far.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) maxLen() uint32 {
	if d.MaxLength == 0 {
		return DefaultMaxLength
	}
	return d.MaxLength
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < UnitSize {
		return 0, ErrShortBuffer
	}
	b := d.buf[d.off:]
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	d.off += UnitSize
	return v, nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes an XDR unsigned hyper.
func (d *Decoder) Uint64() (uint64, error) {
	hi, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	lo, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	return uint64(hi)<<32 | uint64(lo), nil
}

// Int64 decodes an XDR hyper.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes an XDR boolean, rejecting values other than 0 and 1.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, ErrBadBool
}

// Float32 decodes an IEEE-754 single-precision float.
func (d *Decoder) Float32() (float32, error) {
	v, err := d.Uint32()
	return math.Float32frombits(v), err
}

// Float64 decodes an IEEE-754 double-precision float.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

func (d *Decoder) checkPadding(n int) error {
	for i := 0; i < Pad(n); i++ {
		if d.buf[d.off+n+i] != 0 {
			return ErrBadPadding
		}
	}
	return nil
}

// FixedOpaque decodes n bytes of fixed-length opaque data plus
// padding. The returned slice aliases the decoder's buffer.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 || d.Remaining() < PaddedLen(n) {
		return nil, ErrShortBuffer
	}
	if err := d.checkPadding(n); err != nil {
		return nil, err
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += PaddedLen(n)
	return b, nil
}

// FixedOpaqueInto decodes fixed-length opaque data directly into dst,
// avoiding any intermediate allocation. This is the primitive the
// [special] presentation attribute builds on: a stub can unmarshal
// straight into a caller-supplied buffer.
func (d *Decoder) FixedOpaqueInto(dst []byte) error {
	n := len(dst)
	if d.Remaining() < PaddedLen(n) {
		return ErrShortBuffer
	}
	if err := d.checkPadding(n); err != nil {
		return err
	}
	copy(dst, d.buf[d.off:])
	d.off += PaddedLen(n)
	return nil
}

// Opaque decodes variable-length opaque data. The returned slice
// aliases the decoder's buffer.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > d.maxLen() {
		return nil, fmt.Errorf("%w: %d", ErrLengthOverflow, n)
	}
	return d.FixedOpaque(int(n))
}

// OpaqueInto decodes variable-length opaque data into dst when it
// fits, returning dst resliced to the data length; when the data is
// larger than dst it is returned in freshly allocated storage instead,
// never truncated. Either way the caller owns the result.
func (d *Decoder) OpaqueInto(dst []byte) ([]byte, error) {
	b, err := d.Opaque()
	if err != nil {
		return nil, err
	}
	if len(b) <= len(dst) {
		n := copy(dst, b)
		return dst[:n], nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// OpaqueCopy decodes variable-length opaque data into freshly
// allocated storage, for callers that must own the result.
func (d *Decoder) OpaqueCopy() ([]byte, error) {
	b, err := d.Opaque()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	return string(b), err
}

// Optional decodes the discriminant of XDR optional data.
func (d *Decoder) Optional() (bool, error) { return d.Bool() }

// ArrayLen decodes a variable-length array count, bounded by the
// decoder's length limit.
func (d *Decoder) ArrayLen() (int, error) {
	n, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	if n > d.maxLen() {
		return 0, fmt.Errorf("%w: %d", ErrLengthOverflow, n)
	}
	return int(n), nil
}

// UnionTag decodes the discriminant of an XDR union.
func (d *Decoder) UnionTag() (int32, error) { return d.Int32() }

// Rest returns the unread remainder of the buffer, consuming it.
// Transports use this to hand an embedded pre-encoded body to
// another decoder.
func (d *Decoder) Rest() []byte {
	b := d.buf[d.off:]
	d.off = len(d.buf)
	return b
}
