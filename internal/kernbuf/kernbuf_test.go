package kernbuf

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestCopyToUserAndBack(t *testing.T) {
	var m Meter
	u := NewUserBuffer(16)
	if err := m.CopyToUser(u, 4, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(u.UserView()[4:8], []byte("abcd")) {
		t.Fatalf("user view = %q", u.UserView())
	}
	dst := make([]byte, 4)
	if err := m.CopyFromUser(dst, u, 4, 4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, []byte("abcd")) {
		t.Fatalf("dst = %q", dst)
	}
	s := m.Snapshot()
	if s.UserCopies != 2 || s.UserBytes != 8 {
		t.Fatalf("meter = %+v", s)
	}
}

func TestAccessChecks(t *testing.T) {
	var m Meter
	u := NewUserBuffer(8)
	cases := []struct{ off, n int }{
		{-1, 4}, {0, 9}, {5, 4}, {8, 1},
	}
	for _, c := range cases {
		if err := m.CopyToUser(u, c.off, make([]byte, c.n)); !errors.Is(err, ErrFault) {
			t.Errorf("CopyToUser(off=%d,n=%d) err = %v, want EFAULT", c.off, c.n, err)
		}
		if err := m.CopyFromUser(make([]byte, 16), u, c.off, c.n); !errors.Is(err, ErrFault) {
			t.Errorf("CopyFromUser(off=%d,n=%d) err = %v, want EFAULT", c.off, c.n, err)
		}
	}
	// Negative lengths fault too (only reachable via CopyFromUser).
	if err := m.CopyFromUser(make([]byte, 16), u, 0, -1); !errors.Is(err, ErrFault) {
		t.Errorf("negative length err = %v, want EFAULT", err)
	}
	// Faults must not be metered.
	if s := m.Snapshot(); s.UserCopies != 0 {
		t.Fatalf("meter after faults = %+v", s)
	}
}

func TestCopyFromUserSmallDst(t *testing.T) {
	var m Meter
	u := NewUserBuffer(8)
	if err := m.CopyFromUser(make([]byte, 2), u, 0, 4); err == nil {
		t.Fatal("expected destination-too-small error")
	}
}

func TestKernelCopyMetering(t *testing.T) {
	var m Meter
	dst := make([]byte, 8)
	n := m.KernelCopy(dst, []byte("12345678"))
	if n != 8 {
		t.Fatalf("n = %d", n)
	}
	s := m.Snapshot()
	if s.KernelCopies != 1 || s.KernelBytes != 8 || s.UserCopies != 0 {
		t.Fatalf("meter = %+v", s)
	}
	m.Reset()
	if s := m.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("meter after reset = %+v", s)
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(1024, 2)
	b1 := p.Get()
	b2 := p.Get()
	if len(b1) != 1024 || len(b2) != 1024 {
		t.Fatalf("sizes = %d, %d", len(b1), len(b2))
	}
	b3 := p.Get() // pool empty: allocates
	if len(b3) != 1024 {
		t.Fatalf("b3 = %d", len(b3))
	}
	p.Put(b1)
	if got := p.Get(); &got[0] != &b1[0] {
		t.Fatal("pool did not reuse returned buffer")
	}
	// Undersized buffers are rejected.
	p.Put(make([]byte, 8))
	if got := p.Get(); len(got) != 1024 {
		t.Fatalf("got %d-byte buffer from pool", len(got))
	}
}

// Property: a CopyToUser followed by CopyFromUser of the same range
// is the identity, for every in-bounds range.
func TestQuickUserRoundTrip(t *testing.T) {
	u := NewUserBuffer(256)
	var m Meter
	f := func(data []byte, off uint8) bool {
		if len(data) > 128 {
			data = data[:128]
		}
		o := int(off) % 128
		if err := m.CopyToUser(u, o, data); err != nil {
			return false
		}
		out := make([]byte, len(data))
		if err := m.CopyFromUser(out, u, o, len(data)); err != nil {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
