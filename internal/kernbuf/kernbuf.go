// Package kernbuf simulates the user/kernel address-space split of a
// monolithic Unix kernel, the substrate of the paper's §4.1 Linux
// NFS experiment. A UserBuffer stands for memory in a user process;
// kernel code may touch it only through CopyToUser/CopyFromUser —
// the equivalents of Linux's memcpy_tofs()/memcpy_fromfs() — which
// validate the access and count the work done. Kernel-internal
// copies go through KernelCopy so the two NFS stub variants can be
// compared copy-for-copy: the conventional presentation unmarshals
// into an intermediate kernel buffer and then copies out to user
// space, while the [special] presentation unmarshals straight into
// the user buffer.
package kernbuf

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Common errors.
var (
	// ErrFault is returned when a user-space access falls outside
	// the buffer — the moral equivalent of EFAULT.
	ErrFault = errors.New("kernbuf: bad user-space address")
)

// A Meter counts address-space crossings and kernel-internal copies,
// so tests and the experiment harness can assert exactly how many
// copies each presentation performs.
type Meter struct {
	userCopies atomic.Uint64
	userBytes  atomic.Uint64
	kernCopies atomic.Uint64
	kernBytes  atomic.Uint64
}

// Snapshot is a point-in-time reading of a Meter.
type Snapshot struct {
	UserCopies   uint64 // user<->kernel crossings
	UserBytes    uint64
	KernelCopies uint64 // kernel-internal copies
	KernelBytes  uint64
}

// Snapshot returns the meter's current counts.
func (m *Meter) Snapshot() Snapshot {
	return Snapshot{
		UserCopies:   m.userCopies.Load(),
		UserBytes:    m.userBytes.Load(),
		KernelCopies: m.kernCopies.Load(),
		KernelBytes:  m.kernBytes.Load(),
	}
}

// Reset zeroes the meter.
func (m *Meter) Reset() {
	m.userCopies.Store(0)
	m.userBytes.Store(0)
	m.kernCopies.Store(0)
	m.kernBytes.Store(0)
}

// A UserBuffer is a region of user-process memory. Kernel code must
// not touch mem directly; it goes through the copy routines below.
type UserBuffer struct {
	mem []byte
}

// NewUserBuffer allocates an n-byte user buffer.
func NewUserBuffer(n int) *UserBuffer {
	return &UserBuffer{mem: make([]byte, n)}
}

// Len returns the buffer's size.
func (u *UserBuffer) Len() int { return len(u.mem) }

// UserView returns the buffer contents as seen by the user process
// itself (for test assertions; kernel code must not call this).
func (u *UserBuffer) UserView() []byte { return u.mem }

// access validates an [off, off+n) range, the access_ok() check.
func (u *UserBuffer) access(off, n int) error {
	if off < 0 || n < 0 || off+n > len(u.mem) {
		return fmt.Errorf("%w: off=%d n=%d size=%d", ErrFault, off, n, len(u.mem))
	}
	return nil
}

// CopyToUser copies src into the user buffer at off — the simulated
// memcpy_tofs(). It validates the range and meters the crossing.
func (m *Meter) CopyToUser(dst *UserBuffer, off int, src []byte) error {
	if err := dst.access(off, len(src)); err != nil {
		return err
	}
	copy(dst.mem[off:], src)
	m.userCopies.Add(1)
	m.userBytes.Add(uint64(len(src)))
	return nil
}

// CopyFromUser copies n bytes from the user buffer at off into dst —
// the simulated memcpy_fromfs().
func (m *Meter) CopyFromUser(dst []byte, src *UserBuffer, off, n int) error {
	if err := src.access(off, n); err != nil {
		return err
	}
	if n > len(dst) {
		return fmt.Errorf("kernbuf: destination too small: %d < %d", len(dst), n)
	}
	copy(dst, src.mem[off:off+n])
	m.userCopies.Add(1)
	m.userBytes.Add(uint64(n))
	return nil
}

// KernelCopy is a metered kernel-internal memcpy.
func (m *Meter) KernelCopy(dst, src []byte) int {
	n := copy(dst, src)
	m.kernCopies.Add(1)
	m.kernBytes.Add(uint64(n))
	return n
}

// A Pool is a free list of fixed-size kernel buffers, standing in
// for the kernel's intermediate network buffers.
type Pool struct {
	size int
	free chan []byte
}

// NewPool creates a pool of count size-byte buffers.
func NewPool(size, count int) *Pool {
	p := &Pool{size: size, free: make(chan []byte, count)}
	for i := 0; i < count; i++ {
		p.free <- make([]byte, size)
	}
	return p
}

// Get takes a buffer from the pool, allocating if it is empty.
func (p *Pool) Get() []byte {
	select {
	case b := <-p.free:
		return b
	default:
		return make([]byte, p.size)
	}
}

// Put returns a buffer to the pool; oversized or foreign buffers are
// dropped for the collector.
func (p *Pool) Put(b []byte) {
	if cap(b) < p.size {
		return
	}
	select {
	case p.free <- b[:p.size]:
	default:
	}
}

// Size returns the pool's buffer size.
func (p *Pool) Size() int { return p.size }
