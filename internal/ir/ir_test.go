package ir

import (
	"strings"
	"testing"
)

func TestSeqOfOctetCollapses(t *testing.T) {
	if got := SeqOf(OctetType); got != BytesType {
		t.Fatalf("SeqOf(octet) = %v, want BytesType", got)
	}
	if got := ArrayOf(OctetType, 16); got.Kind != FixedBytes || got.Size != 16 {
		t.Fatalf("ArrayOf(octet,16) = %+v", got)
	}
	seq := SeqOf(Int32Type)
	if seq.Kind != Seq || seq.Elem != Int32Type {
		t.Fatalf("SeqOf(i32) = %+v", seq)
	}
}

func TestTypeSignatures(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{Int32Type, "i32"},
		{BytesType, "bytes"},
		{StringType, "string"},
		{nil, "void"},
		{SeqOf(Uint64Type), "seq<u64>"},
		{ArrayOf(Float64Type, 3), "array<f64,3>"},
		{ArrayOf(OctetType, 8), "fbytes<8>"},
		{&Type{Kind: Struct, Name: "P", Fields: []Field{
			{"x", Int32Type}, {"y", Int32Type}}}, "struct{i32,i32}"},
	}
	for _, c := range cases {
		if got := c.t.Signature(); got != c.want {
			t.Errorf("Signature = %q, want %q", got, c.want)
		}
	}
}

func TestStructWireEqualityIgnoresNames(t *testing.T) {
	a := &Type{Kind: Struct, Name: "A", Fields: []Field{{"x", Int32Type}}}
	b := &Type{Kind: Struct, Name: "B", Fields: []Field{{"y", Int32Type}}}
	c := &Type{Kind: Struct, Name: "A", Fields: []Field{{"x", Int64Type}}}
	if !a.Equal(b) {
		t.Error("same-shape structs should be wire-equal")
	}
	if a.Equal(c) {
		t.Error("different-shape structs should not be wire-equal")
	}
}

func TestOperationSignature(t *testing.T) {
	op := Operation{
		Name: "read",
		Params: []Param{
			{Name: "count", Type: Uint32Type, Dir: In},
		},
		Result: BytesType,
	}
	want := "read(in:u32)->bytes"
	if got := op.Signature(); got != want {
		t.Fatalf("Signature = %q, want %q", got, want)
	}
	if !op.HasResult() {
		t.Error("HasResult should be true")
	}
	vop := Operation{Name: "ping", Result: VoidType}
	if vop.HasResult() {
		t.Error("void op should have no result")
	}
}

func TestInterfaceSignatureOrderIndependent(t *testing.T) {
	mk := func(names ...string) *Interface {
		i := &Interface{Name: "X"}
		for _, n := range names {
			i.Ops = append(i.Ops, Operation{Name: n, Result: VoidType})
		}
		return i
	}
	a := mk("alpha", "beta")
	b := mk("beta", "alpha")
	if a.Signature() != b.Signature() {
		t.Fatalf("order should not matter:\n%s\n%s", a.Signature(), b.Signature())
	}
}

func TestInterfaceSignatureIncludesProgram(t *testing.T) {
	i := &Interface{Name: "NFS", Program: 100003, Version: 2}
	if !strings.Contains(i.Signature(), "prog=100003") {
		t.Fatalf("signature missing program id: %s", i.Signature())
	}
}

func TestOpLookup(t *testing.T) {
	i := &Interface{Name: "X", Ops: []Operation{{Name: "a"}, {Name: "b"}}}
	if i.Op("b") == nil || i.Op("b").Name != "b" {
		t.Error("Op lookup failed")
	}
	if i.Op("zzz") != nil {
		t.Error("missing op should be nil")
	}
}

func TestResolveTypedefs(t *testing.T) {
	f := NewFile("t.idl")
	f.Typedefs["buf_t"] = BytesType
	f.Typedefs["pair"] = &Type{Kind: Struct, Name: "pair", Fields: []Field{
		{"a", &Type{Kind: Named, Name: "buf_t"}},
		{"b", Int32Type},
	}}
	iface := &Interface{Name: "S", Ops: []Operation{{
		Name: "put",
		Params: []Param{
			{Name: "p", Type: &Type{Kind: Named, Name: "pair"}, Dir: In},
		},
		Result: &Type{Kind: Named, Name: "buf_t"},
	}}}
	f.Interfaces = append(f.Interfaces, iface)
	if err := f.Resolve(); err != nil {
		t.Fatal(err)
	}
	got := iface.Ops[0].Params[0].Type
	if got.Kind != Struct || got.Fields[0].Type.Kind != Bytes {
		t.Fatalf("resolved param = %+v", got)
	}
	if iface.Ops[0].Result.Kind != Bytes {
		t.Fatalf("resolved result = %+v", iface.Ops[0].Result)
	}
}

func TestResolveUnknownType(t *testing.T) {
	f := NewFile("t.idl")
	f.Interfaces = append(f.Interfaces, &Interface{Name: "S", Ops: []Operation{{
		Name:   "op",
		Params: []Param{{Name: "x", Type: &Type{Kind: Named, Name: "nope"}, Dir: In}},
		Result: VoidType,
	}}})
	if err := f.Resolve(); err == nil {
		t.Fatal("expected unknown-type error")
	}
}

func TestResolveCycle(t *testing.T) {
	f := NewFile("t.idl")
	f.Typedefs["a"] = &Type{Kind: Named, Name: "b"}
	f.Typedefs["b"] = &Type{Kind: Named, Name: "a"}
	f.Interfaces = append(f.Interfaces, &Interface{Name: "S", Ops: []Operation{{
		Name:   "op",
		Params: []Param{{Name: "x", Type: &Type{Kind: Named, Name: "a"}, Dir: In}},
		Result: VoidType,
	}}})
	if err := f.Resolve(); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("err = %v, want cyclic typedef error", err)
	}
}

func TestResolveSeqOfNamedOctet(t *testing.T) {
	f := NewFile("t.idl")
	f.Typedefs["byte"] = OctetType
	f.Interfaces = append(f.Interfaces, &Interface{Name: "S", Ops: []Operation{{
		Name: "op",
		Params: []Param{{
			Name: "x",
			Type: &Type{Kind: Seq, Elem: &Type{Kind: Named, Name: "byte"}},
			Dir:  In,
		}},
		Result: VoidType,
	}}})
	if err := f.Resolve(); err != nil {
		t.Fatal(err)
	}
	if got := f.Interfaces[0].Ops[0].Params[0].Type; got.Kind != Bytes {
		t.Fatalf("seq<named-octet> should collapse to bytes, got %v", got.Kind)
	}
}
