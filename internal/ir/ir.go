// Package ir defines the intermediate representation shared by every
// IDL front-end and stub back-end: the network contract between a
// client and a server.
//
// The IR deliberately contains nothing about presentation — how
// parameters appear to local code, who allocates buffers, what may be
// trashed. Those live in package pres and may differ on each side of
// a connection; the IR is what both sides must agree on.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies the wire shape of a type.
type Kind int

// The wire-type kinds understood by the marshal engines.
const (
	Void Kind = iota
	Bool
	Int32
	Uint32
	Int64
	Uint64
	Float32
	Float64
	String     // variable-length character data
	Bytes      // variable-length opaque (CORBA sequence<octet>, XDR opaque<>)
	FixedBytes // fixed-length opaque[Size]
	Seq        // variable-length sequence of Elem
	Array      // fixed-length array of Elem, Size elements
	Struct     // ordered fields
	Enum       // named 32-bit enumeration
	Port       // object reference / port right (capability)
	Named      // unresolved reference to a typedef
)

var kindNames = map[Kind]string{
	Void: "void", Bool: "bool", Int32: "i32", Uint32: "u32",
	Int64: "i64", Uint64: "u64", Float32: "f32", Float64: "f64",
	String: "string", Bytes: "bytes", FixedBytes: "fbytes",
	Seq: "seq", Array: "array", Struct: "struct", Enum: "enum",
	Port: "port", Named: "named",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// A Type describes one wire type.
type Type struct {
	Kind        Kind
	Name        string  // Struct, Enum and Named types carry a name
	Elem        *Type   // element type for Seq and Array
	Size        int     // byte count for FixedBytes; element count for Array
	Fields      []Field // for Struct, in declaration (wire) order
	Enumerators []string
}

// A Field is one member of a struct type.
type Field struct {
	Name string
	Type *Type
}

// Predefined singleton types for the primitives, safe to share
// because Types are immutable once built.
var (
	VoidType    = &Type{Kind: Void}
	BoolType    = &Type{Kind: Bool}
	Int32Type   = &Type{Kind: Int32}
	Uint32Type  = &Type{Kind: Uint32}
	Int64Type   = &Type{Kind: Int64}
	Uint64Type  = &Type{Kind: Uint64}
	Float32Type = &Type{Kind: Float32}
	Float64Type = &Type{Kind: Float64}
	StringType  = &Type{Kind: String}
	BytesType   = &Type{Kind: Bytes}
	PortType    = &Type{Kind: Port}
)

// SeqOf returns a sequence-of-elem type. sequence<octet> collapses to
// Bytes so every front-end produces the same wire type for byte
// buffers.
func SeqOf(elem *Type) *Type {
	if elem.Kind == octetKind {
		return BytesType
	}
	return &Type{Kind: Seq, Elem: elem}
}

// octetKind is the kind used to recognize byte elements; CORBA octet
// and XDR opaque bytes both map to it.
const octetKind = Uint8Kind

// Uint8Kind marks a single octet; it appears only as a sequence or
// array element and collapses into Bytes/FixedBytes at construction.
const Uint8Kind Kind = 100

// OctetType is the element type used by front-ends for byte elements
// before collapsing.
var OctetType = &Type{Kind: Uint8Kind}

// ArrayOf returns a fixed-length array type; arrays of octets
// collapse to FixedBytes.
func ArrayOf(elem *Type, n int) *Type {
	if elem.Kind == octetKind {
		return &Type{Kind: FixedBytes, Size: n}
	}
	return &Type{Kind: Array, Elem: elem, Size: n}
}

// Signature returns a canonical, front-end-independent rendering of
// the wire type, used for contract comparison and bind-time
// signature exchange.
func (t *Type) Signature() string {
	if t == nil {
		return "void"
	}
	switch t.Kind {
	case Seq:
		return "seq<" + t.Elem.Signature() + ">"
	case Array:
		return fmt.Sprintf("array<%s,%d>", t.Elem.Signature(), t.Size)
	case FixedBytes:
		return fmt.Sprintf("fbytes<%d>", t.Size)
	case Struct:
		var b strings.Builder
		b.WriteString("struct{")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(f.Type.Signature())
		}
		b.WriteByte('}')
		return b.String()
	case Enum:
		return "enum"
	case Named:
		return "named:" + t.Name
	default:
		return t.Kind.String()
	}
}

// Equal reports whether two types have the same wire shape. Names do
// not participate: struct{a:i32} and struct{b:i32} are wire-equal.
func (t *Type) Equal(u *Type) bool {
	return t.Signature() == u.Signature()
}

// Direction says which way a parameter travels.
type Direction int

// Parameter directions.
const (
	In Direction = iota
	Out
	InOut
)

func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// A Param is one operation parameter.
type Param struct {
	Name string
	Type *Type
	Dir  Direction
}

// An Operation is one callable method of an interface.
type Operation struct {
	Name   string
	Params []Param
	Result *Type // nil or VoidType for void
	Oneway bool
	// Proc is the Sun RPC procedure number when the interface came
	// from a .x file; zero otherwise.
	Proc uint32
}

// HasResult reports whether the operation returns a value.
func (o *Operation) HasResult() bool {
	return o.Result != nil && o.Result.Kind != Void
}

// Signature returns the canonical network-contract rendering of the
// operation.
func (o *Operation) Signature() string {
	var b strings.Builder
	b.WriteString(o.Name)
	b.WriteByte('(')
	for i, p := range o.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%s", p.Dir, p.Type.Signature())
	}
	b.WriteString(")->")
	b.WriteString(o.Result.Signature())
	if o.Oneway {
		b.WriteString(" oneway")
	}
	return b.String()
}

// An Interface is a named set of operations — the unit a client
// binds to.
type Interface struct {
	Name string
	Ops  []Operation
	// Program and Version identify a Sun RPC program when the
	// interface came from a .x file.
	Program uint32
	Version uint32
}

// Op returns the named operation, or nil.
func (i *Interface) Op(name string) *Operation {
	for k := range i.Ops {
		if i.Ops[k].Name == name {
			return &i.Ops[k]
		}
	}
	return nil
}

// Signature returns the canonical network contract for the whole
// interface. Two endpoints may interoperate iff their interface
// signatures are identical. Operation order is normalized so that
// declaration order is not part of the contract.
func (i *Interface) Signature() string {
	sigs := make([]string, len(i.Ops))
	for k := range i.Ops {
		sigs[k] = i.Ops[k].Signature()
	}
	sort.Strings(sigs)
	var b strings.Builder
	b.WriteString(i.Name)
	if i.Program != 0 {
		fmt.Fprintf(&b, "[prog=%d,vers=%d]", i.Program, i.Version)
	}
	b.WriteByte('{')
	b.WriteString(strings.Join(sigs, ";"))
	b.WriteByte('}')
	return b.String()
}

// A File is the result of parsing one IDL source file.
type File struct {
	Name       string
	Interfaces []*Interface
	Typedefs   map[string]*Type
	Consts     map[string]int64
}

// NewFile returns an empty File.
func NewFile(name string) *File {
	return &File{
		Name:     name,
		Typedefs: make(map[string]*Type),
		Consts:   make(map[string]int64),
	}
}

// Interface returns the named interface, or nil.
func (f *File) Interface(name string) *Interface {
	for _, i := range f.Interfaces {
		if i.Name == name {
			return i
		}
	}
	return nil
}

// Resolve replaces every Named type reference in the file with the
// referenced typedef's structure. It reports an error on dangling or
// cyclic references.
func (f *File) Resolve() error {
	for _, iface := range f.Interfaces {
		for oi := range iface.Ops {
			op := &iface.Ops[oi]
			for pi := range op.Params {
				t, err := f.resolveType(op.Params[pi].Type, nil)
				if err != nil {
					return fmt.Errorf("%s.%s param %s: %w", iface.Name, op.Name, op.Params[pi].Name, err)
				}
				op.Params[pi].Type = t
			}
			if op.Result != nil {
				t, err := f.resolveType(op.Result, nil)
				if err != nil {
					return fmt.Errorf("%s.%s result: %w", iface.Name, op.Name, err)
				}
				op.Result = t
			}
		}
	}
	return nil
}

func (f *File) resolveType(t *Type, seen []string) (*Type, error) {
	if t == nil {
		return nil, nil
	}
	switch t.Kind {
	case Named:
		for _, s := range seen {
			if s == t.Name {
				return nil, fmt.Errorf("ir: cyclic typedef %q", t.Name)
			}
		}
		def, ok := f.Typedefs[t.Name]
		if !ok {
			return nil, fmt.Errorf("ir: unknown type %q", t.Name)
		}
		return f.resolveType(def, append(seen, t.Name))
	case Seq, Array:
		elem, err := f.resolveType(t.Elem, seen)
		if err != nil {
			return nil, err
		}
		if elem != t.Elem {
			cp := *t
			cp.Elem = elem
			if cp.Kind == Seq && elem.Kind == octetKind {
				return BytesType, nil
			}
			return &cp, nil
		}
		return t, nil
	case Struct:
		changed := false
		fields := make([]Field, len(t.Fields))
		for i, fl := range t.Fields {
			ft, err := f.resolveType(fl.Type, seen)
			if err != nil {
				return nil, err
			}
			fields[i] = Field{Name: fl.Name, Type: ft}
			if ft != fl.Type {
				changed = true
			}
		}
		if changed {
			cp := *t
			cp.Fields = fields
			return &cp, nil
		}
		return t, nil
	default:
		return t, nil
	}
}
