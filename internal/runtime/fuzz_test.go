package runtime

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// FuzzDecodeMessage promotes the quick-check properties in
// robust_test.go to coverage-guided fuzzing: arbitrary bytes fed to
// a compiled plan's request/reply decoders must error cleanly, never
// panic, and never produce oversized values.
func FuzzDecodeMessage(f *testing.F) {
	p := richPres(f)
	plans := make([]*Plan, 0, 2)
	for _, codec := range []Codec{XDRCodec, CDRCodec} {
		plan, err := NewPlan(p, codec, nil)
		if err != nil {
			f.Fatal(err)
		}
		plans = append(plans, plan)
	}
	// Seed with a valid XDR-encoded mix() request.
	op := plans[0].Ops[plans[0].OpIndex("mix")]
	item := []Value{int32(1), "widget", []Value{int32(9), int32(8)}}
	args := []Value{item, []byte("payload"), "text", 2.5, true, PortName(7)}
	enc := XDRCodec.NewEncoder()
	if err := op.EncodeRequest(enc, args); err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(0), enc.Bytes())
	f.Add(uint8(1), []byte{0x7f, 0xff, 0xff, 0xff})
	f.Add(uint8(2), []byte{})

	f.Fuzz(func(t *testing.T, sel uint8, body []byte) {
		plan := plans[int(sel)%len(plans)]
		op := plan.Ops[(int(sel)/2)%len(plan.Ops)]
		_, _ = op.DecodeRequest(plan.limitDecoder(plan.Codec.NewDecoder(body)))
		_, _, _ = op.DecodeReply(plan.limitDecoder(plan.Codec.NewDecoder(body)), nil, nil)
	})
}

// FuzzServeMessage asserts the dispatcher answers every garbage
// request with a well-formed status word — garbage in, structured
// error out, and the server loop survives.
func FuzzServeMessage(f *testing.F) {
	p := richPres(f)
	d := NewDispatcher(p)
	d.Handle("mix", func(c *Call) error {
		c.SetResult(c.Arg(0))
		return nil
	})
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(int8(0), []byte{})
	f.Add(int8(0), []byte{0, 0, 0, 1})
	f.Add(int8(-3), []byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, opIdx int8, body []byte) {
		enc := XDRCodec.NewEncoder()
		d.ServeMessage(plan, int(opIdx), body, enc)
		dec := XDRCodec.NewDecoder(enc.Bytes())
		status, err := dec.Uint32()
		if err != nil {
			t.Fatalf("reply missing status word: %v", err)
		}
		if status != replyOK {
			if _, err := dec.String(); err != nil {
				t.Fatalf("error reply missing message: %v", err)
			}
		}
	})
}

// FuzzPushbackFrame feeds arbitrary bytes to the pushback parser: it
// must never panic, reject everything malformed with ErrCorruptReply,
// and accept only frames that re-encode byte-identically — the
// property that makes the parser's strictness checkable (nothing is
// silently normalized away).
func FuzzPushbackFrame(f *testing.F) {
	f.Add(AppendPushbackFrame(nil, false, 5*time.Millisecond))
	f.Add(AppendPushbackFrame(nil, true, 0))
	f.Add(AppendPushbackFrame(nil, false, time.Hour))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, frame []byte) {
		ra, draining, err := ParsePushbackFrame(frame)
		if err != nil {
			if !errors.Is(err, ErrCorruptReply) {
				t.Fatalf("rejection %v does not wrap ErrCorruptReply", err)
			}
			return
		}
		if re := AppendPushbackFrame(nil, draining, ra); !bytes.Equal(re, frame) {
			t.Fatalf("accepted frame % x re-encodes as % x", frame, re)
		}
	})
}
