package runtime

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"flexrpc/internal/idl/corba"
	"flexrpc/internal/ir"
	"flexrpc/internal/pres"
)

// testIface compiles a small interface exercising every value kind.
func testIface(t *testing.T) *ir.Interface {
	t.Helper()
	f, err := corba.Parse("test.idl", `
		typedef octet md5[16];
		enum mood { fine, grumpy };
		struct item { long id; string name; sequence<long> scores; };
		interface Kitchen {
			sequence<octet> read(in unsigned long count);
			void write(in sequence<octet> data);
			item describe(in item base, in md5 sum, in mood m, in double w,
			              in boolean b, in long long big, in Object port);
			unsigned long status();
			oneway void poke(in long x);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	return f.Interface("Kitchen")
}

func testPres(t *testing.T) *pres.Presentation {
	return pres.Default(testIface(t), pres.StyleCORBA)
}

func TestCheckValue(t *testing.T) {
	cases := []struct {
		t  *ir.Type
		v  Value
		ok bool
	}{
		{ir.Int32Type, int32(5), true},
		{ir.Int32Type, int64(5), false},
		{ir.BytesType, []byte("x"), true},
		{ir.BytesType, "x", false},
		{ir.StringType, "x", true},
		{&ir.Type{Kind: ir.FixedBytes, Size: 4}, []byte("abcd"), true},
		{&ir.Type{Kind: ir.FixedBytes, Size: 4}, []byte("abc"), false},
		{ir.SeqOf(ir.Int32Type), []Value{int32(1), int32(2)}, true},
		{ir.SeqOf(ir.Int32Type), []Value{int32(1), "x"}, false},
		{ir.PortType, PortName(3), true},
		{ir.VoidType, nil, true},
		{ir.VoidType, int32(0), false},
	}
	for i, c := range cases {
		err := CheckValue(c.t, c.v)
		if (err == nil) != c.ok {
			t.Errorf("case %d: err = %v, ok = %v", i, err, c.ok)
		}
	}
}

func TestZeroValuesCheck(t *testing.T) {
	iface := testIface(t)
	for _, op := range iface.Ops {
		for _, p := range op.Params {
			if err := CheckValue(p.Type, ZeroValue(p.Type)); err != nil {
				t.Errorf("%s.%s: zero value invalid: %v", op.Name, p.Name, err)
			}
		}
	}
}

func TestCopyValueIsDeep(t *testing.T) {
	st := &ir.Type{Kind: ir.Struct, Fields: []ir.Field{
		{Name: "b", Type: ir.BytesType},
		{Name: "s", Type: ir.SeqOf(ir.BytesType)},
	}}
	orig := []Value{[]byte("abc"), []Value{[]byte("xyz")}}
	cp := CopyValue(st, orig).([]Value)
	orig[0].([]byte)[0] = 'Z'
	orig[1].([]Value)[0].([]byte)[0] = 'Z'
	if cp[0].([]byte)[0] != 'a' || cp[1].([]Value)[0].([]byte)[0] != 'x' {
		t.Fatal("CopyValue shared storage with the original")
	}
}

// roundTrip runs one op through encode-request/decode-request and
// encode-reply/decode-reply under both codecs.
func roundTripOp(t *testing.T, codec Codec) {
	t.Helper()
	p := testPres(t)
	plan, err := NewPlan(p, codec, nil)
	if err != nil {
		t.Fatal(err)
	}
	op := plan.Ops[plan.OpIndex("describe")]

	item := []Value{int32(7), "fork", []Value{int32(1), int32(2), int32(3)}}
	sum := bytes.Repeat([]byte{0xAA}, 16)
	args := []Value{item, sum, int32(1), 3.25, true, int64(-9e12), PortName(42)}

	enc := codec.NewEncoder()
	if err := op.EncodeRequest(enc, args); err != nil {
		t.Fatal(err)
	}
	got, err := op.DecodeRequest(codec.NewDecoder(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gi := got[0].([]Value)
	if gi[0].(int32) != 7 || gi[1].(string) != "fork" || len(gi[2].([]Value)) != 3 {
		t.Fatalf("item = %+v", gi)
	}
	if !bytes.Equal(got[1].([]byte), sum) || got[2].(int32) != 1 ||
		got[3].(float64) != 3.25 || got[4].(bool) != true ||
		got[5].(int64) != int64(-9e12) || got[6].(PortName) != 42 {
		t.Fatalf("args = %+v", got)
	}

	// Reply: result is an item struct.
	outs := make([]Value, len(op.Op.Params))
	ret := []Value{int32(9), "spoon", []Value{}}
	enc2 := codec.NewEncoder()
	if err := op.EncodeReply(enc2, outs, ret); err != nil {
		t.Fatal(err)
	}
	_, gret, err := op.DecodeReply(codec.NewDecoder(enc2.Bytes()), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	gr := gret.([]Value)
	if gr[0].(int32) != 9 || gr[1].(string) != "spoon" || len(gr[2].([]Value)) != 0 {
		t.Fatalf("ret = %+v", gr)
	}
}

func TestPlanRoundTripXDR(t *testing.T) { roundTripOp(t, XDRCodec) }
func TestPlanRoundTripCDR(t *testing.T) { roundTripOp(t, CDRCodec) }

func TestDecodeReplyIntoCallerBuffer(t *testing.T) {
	// With [alloc(caller)] on the result, DecodeReply lands the
	// bytes in the caller's buffer instead of allocating.
	p := testPres(t)
	p.Op("read").Result().Alloc = pres.AllocCaller
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	op := plan.Ops[plan.OpIndex("read")]

	enc := XDRCodec.NewEncoder()
	payload := []byte("landed in caller buffer")
	if err := op.EncodeReply(enc, make([]Value, 1), payload); err != nil {
		t.Fatal(err)
	}
	retBuf := make([]byte, 64)
	_, ret, err := op.DecodeReply(XDRCodec.NewDecoder(enc.Bytes()), nil, retBuf)
	if err != nil {
		t.Fatal(err)
	}
	got := ret.([]byte)
	if &got[0] != &retBuf[0] {
		t.Fatal("result did not land in the caller's buffer")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestDefaultDecodeAllocatesFreshStorage(t *testing.T) {
	// Without alloc(caller), the stub must hand the consumer
	// storage it owns (move semantics), not a window into the
	// transport buffer.
	p := testPres(t)
	plan, _ := NewPlan(p, XDRCodec, nil)
	op := plan.Ops[plan.OpIndex("read")]
	enc := XDRCodec.NewEncoder()
	if err := op.EncodeReply(enc, make([]Value, 1), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	wire := enc.Bytes()
	_, ret, err := op.DecodeReply(XDRCodec.NewDecoder(wire), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire[5] ^= 0xFF // corrupt the transport buffer afterwards
	if string(ret.([]byte)) != "hello" {
		t.Fatal("decoded bytes alias the transport buffer under move semantics")
	}
}

type testHooks struct {
	encoded, decoded int
}

func (h *testHooks) EncodeSpecial(op, param string, enc Encoder, v Value) error {
	h.encoded++
	enc.PutBytes(v.([]byte))
	return nil
}

func (h *testHooks) DecodeSpecial(op, param string, dec Decoder) (Value, error) {
	h.decoded++
	b, err := dec.Bytes()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

func TestSpecialHooksInvoked(t *testing.T) {
	p := testPres(t)
	p.Op("write").Param("data").Special = true
	hooks := &testHooks{}
	plan, err := NewPlan(p, XDRCodec, hooks)
	if err != nil {
		t.Fatal(err)
	}
	op := plan.Ops[plan.OpIndex("write")]
	enc := XDRCodec.NewEncoder()
	if err := op.EncodeRequest(enc, []Value{[]byte("abc")}); err != nil {
		t.Fatal(err)
	}
	args, err := op.DecodeRequest(XDRCodec.NewDecoder(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hooks.encoded != 1 || hooks.decoded != 1 {
		t.Fatalf("hooks = %+v", hooks)
	}
	if string(args[0].([]byte)) != "abc" {
		t.Fatalf("args = %+v", args)
	}
}

func TestSpecialWithoutHooksRejectedAtPlanTime(t *testing.T) {
	p := testPres(t)
	p.Op("write").Param("data").Special = true
	if _, err := NewPlan(p, XDRCodec, nil); err == nil || !strings.Contains(err.Error(), "special") {
		t.Fatalf("err = %v", err)
	}
}

func TestEncodeRequestTypeErrors(t *testing.T) {
	plan, _ := NewPlan(testPres(t), XDRCodec, nil)
	op := plan.Ops[plan.OpIndex("write")]
	enc := XDRCodec.NewEncoder()
	if err := op.EncodeRequest(enc, []Value{"not bytes"}); err == nil {
		t.Fatal("type mismatch should fail")
	}
	if err := op.EncodeRequest(enc, nil); err == nil {
		t.Fatal("arity mismatch should fail")
	}
}

func TestDecodeErrorsOnTruncation(t *testing.T) {
	plan, _ := NewPlan(testPres(t), XDRCodec, nil)
	op := plan.Ops[plan.OpIndex("describe")]
	if _, err := op.DecodeRequest(XDRCodec.NewDecoder([]byte{0, 0})); err == nil {
		t.Fatal("truncated request should fail")
	}
}

// loopConn is an in-process byte-level transport looping requests
// through a dispatcher — the minimal runtime.Conn.
type loopConn struct {
	disp *Dispatcher
	plan *Plan
}

func (l *loopConn) Call(opIdx int, req []byte, replyBuf []byte) ([]byte, error) {
	enc := l.plan.Codec.NewEncoder()
	l.disp.ServeMessage(l.plan, opIdx, req, enc)
	out := replyBuf
	if cap(out) < len(enc.Bytes()) {
		out = make([]byte, len(enc.Bytes()))
	}
	out = out[:len(enc.Bytes())]
	copy(out, enc.Bytes())
	return out, nil
}

func (l *loopConn) Close() error { return nil }

func newLoop(t *testing.T, serverPres *pres.Presentation) (*Client, *Dispatcher) {
	t.Helper()
	disp := NewDispatcher(serverPres)
	plan, err := NewPlan(serverPres, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(testPres(t), XDRCodec, &loopConn{disp: disp, plan: plan}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return client, disp
}

func TestClientDispatcherEndToEnd(t *testing.T) {
	client, disp := newLoop(t, testPres(t))
	store := []byte("0123456789")
	disp.Handle("read", func(c *Call) error {
		count := c.Arg(0).(uint32)
		out := make([]byte, count)
		copy(out, store)
		c.SetResult(out)
		return nil
	})
	disp.Handle("status", func(c *Call) error {
		c.SetResult(uint32(7))
		return nil
	})

	_, ret, err := client.Invoke("read", []Value{uint32(4)}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(ret.([]byte)) != "0123" {
		t.Fatalf("read = %q", ret)
	}
	_, ret, err = client.Invoke("status", []Value{}, nil, nil)
	if err != nil || ret.(uint32) != 7 {
		t.Fatalf("status = %v, %v", ret, err)
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	client, disp := newLoop(t, testPres(t))
	disp.Handle("read", func(c *Call) error {
		return errors.New("disk on fire")
	})
	_, _, err := client.Invoke("read", []Value{uint32(1)}, nil, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "disk on fire") {
		t.Fatalf("err = %v", err)
	}
	// Unregistered op.
	_, _, err = client.Invoke("write", []Value{[]byte("x")}, nil, nil)
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "no handler") {
		t.Fatalf("err = %v", err)
	}
	// Unknown op fails client-side.
	if _, _, err := client.Invoke("nosuch", nil, nil, nil); err == nil {
		t.Fatal("unknown op should fail")
	}
}

func TestMessageArgsAlwaysPrivate(t *testing.T) {
	client, disp := newLoop(t, testPres(t))
	disp.Handle("write", func(c *Call) error {
		if !c.ArgPrivate(0) {
			t.Error("message-transport args must be private")
		}
		return nil
	})
	if _, _, err := client.Invoke("write", []Value{[]byte("abc")}, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResultMoved(t *testing.T) {
	p := testPres(t)
	d := NewDispatcher(p)
	call := d.NewCall(p.Interface.Op("read"))
	if !call.ResultMoved() {
		t.Fatal("default CORBA result should be move semantics")
	}
	p2 := testPres(t)
	p2.Op("read").Result().Dealloc = pres.DeallocNever
	d2 := NewDispatcher(p2)
	call2 := d2.NewCall(p2.Interface.Op("read"))
	if call2.ResultMoved() {
		t.Fatal("dealloc(never) result must not be moved")
	}
}

// Negotiation matrix tests (paper §4.4.1 and §4.4.2).
func TestNegotiateIn(t *testing.T) {
	mk := func(trash, preserve bool) *pres.ParamAttrs {
		return &pres.ParamAttrs{Trashable: trash, Preserved: preserve}
	}
	cases := []struct {
		client, server *pres.ParamAttrs
		want           InSemantics
	}{
		{mk(false, false), mk(false, false), InCopy},
		{mk(true, false), mk(false, false), InBorrow},
		{mk(false, false), mk(false, true), InBorrow},
		{mk(true, false), mk(false, true), InBorrow},
	}
	for i, c := range cases {
		if got := NegotiateIn(c.client, c.server); got != c.want {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
	}
	if !InMayModify(InCopy, mk(false, false)) {
		t.Error("copied arg must be modifiable")
	}
	if InMayModify(InBorrow, mk(false, false)) {
		t.Error("borrowed non-trashable arg must not be modifiable")
	}
	if !InMayModify(InBorrow, mk(true, false)) {
		t.Error("borrowed trashable arg must be modifiable")
	}
}

func TestNegotiateOut(t *testing.T) {
	mk := func(a pres.AllocPolicy) *pres.ParamAttrs { return &pres.ParamAttrs{Alloc: a} }
	cases := []struct {
		client, server pres.AllocPolicy
		want           OutSemantics
	}{
		{pres.AllocAuto, pres.AllocAuto, OutStubAlloc},
		{pres.AllocAuto, pres.AllocCallee, OutServerBuffer},
		{pres.AllocCaller, pres.AllocAuto, OutCallerBuffer},
		{pres.AllocCaller, pres.AllocCallee, OutCopy},
		// A server declaring caller-alloc defers to the caller.
		{pres.AllocCaller, pres.AllocCaller, OutCallerBuffer},
		{pres.AllocAuto, pres.AllocCaller, OutStubAlloc},
	}
	for i, c := range cases {
		if got := NegotiateOut(mk(c.client), mk(c.server)); got != c.want {
			t.Errorf("case %d (%v/%v): %v, want %v", i, c.client, c.server, got, c.want)
		}
	}
}

// Property: both codecs round-trip arbitrary read/write payloads
// bit-exactly through the full plan path.
func TestQuickPlanRoundTrip(t *testing.T) {
	p := testPres(t)
	for _, codec := range []Codec{XDRCodec, CDRCodec} {
		plan, err := NewPlan(p, codec, nil)
		if err != nil {
			t.Fatal(err)
		}
		op := plan.Ops[plan.OpIndex("write")]
		f := func(data []byte) bool {
			enc := codec.NewEncoder()
			if err := op.EncodeRequest(enc, []Value{data}); err != nil {
				return false
			}
			args, err := op.DecodeRequest(codec.NewDecoder(enc.Bytes()))
			if err != nil {
				return false
			}
			got := args[0].([]byte)
			return bytes.Equal(got, data) || (len(data) == 0 && len(got) == 0)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
	}
}

// Property: the wire bytes produced for a request do not depend on
// presentation attributes (the network contract is
// presentation-independent).
func TestQuickWireIndependentOfPresentation(t *testing.T) {
	base := testPres(t)
	mod := testPres(t)
	mod.Op("write").Param("data").Trashable = true
	mod.Op("read").Result().Dealloc = pres.DeallocNever
	mod.Op("read").Result().Alloc = pres.AllocCaller
	mod.Trust = pres.TrustFull

	p1, _ := NewPlan(base, XDRCodec, nil)
	p2, _ := NewPlan(mod, XDRCodec, nil)
	f := func(data []byte) bool {
		e1 := XDRCodec.NewEncoder()
		e2 := XDRCodec.NewEncoder()
		if err := p1.Ops[p1.OpIndex("write")].EncodeRequest(e1, []Value{data}); err != nil {
			return false
		}
		if err := p2.Ops[p2.OpIndex("write")].EncodeRequest(e2, []Value{data}); err != nil {
			return false
		}
		return bytes.Equal(e1.Bytes(), e2.Bytes())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnewayReturnsNothing(t *testing.T) {
	client, disp := newLoop(t, testPres(t))
	called := false
	disp.Handle("poke", func(c *Call) error {
		called = true
		return nil
	})
	outs, ret, err := client.Invoke("poke", []Value{int32(1)}, nil, nil)
	if err != nil || outs != nil || ret != nil {
		t.Fatalf("oneway = %v, %v, %v", outs, ret, err)
	}
	if !called {
		t.Fatal("handler not invoked")
	}
}

// BenchmarkNegotiation measures the per-invocation semantics
// computation of §4.4 in isolation — the paper: "even with the
// current 'dumb' implementation, we found the additional overhead of
// this computation to be negligible."
func BenchmarkNegotiation(b *testing.B) {
	client := &pres.ParamAttrs{Trashable: true}
	server := &pres.ParamAttrs{Alloc: pres.AllocCallee}
	for i := 0; i < b.N; i++ {
		_ = NegotiateIn(client, server)
		_ = NegotiateOut(client, server)
	}
}

func TestInOutParameters(t *testing.T) {
	f, err := corba.Parse("io.idl", `
		interface Acc {
			void bump(inout long counter, inout sequence<octet> tag);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	p := pres.Default(f.Interface("Acc"), pres.StyleCORBA)
	disp := NewDispatcher(p)
	disp.Handle("bump", func(c *Call) error {
		c.SetOut(0, c.Arg(0).(int32)+1)
		tag := append([]byte(nil), c.ArgBytes(1)...)
		tag = append(tag, '!')
		c.SetOut(1, tag)
		return nil
	})
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(p, XDRCodec, &loopConn{disp: disp, plan: plan}, nil)
	if err != nil {
		t.Fatal(err)
	}
	outs, ret, err := client.Invoke("bump", []Value{int32(41), []byte("v")}, nil, nil)
	if err != nil || ret != nil {
		t.Fatalf("invoke = %v, %v", ret, err)
	}
	if outs[0].(int32) != 42 {
		t.Fatalf("counter = %v", outs[0])
	}
	if string(outs[1].([]byte)) != "v!" {
		t.Fatalf("tag = %q", outs[1])
	}
}

func TestCDRLittleEndianCodec(t *testing.T) {
	if CDRCodecLE.Name() != "cdr-le" {
		t.Fatal("name")
	}
	roundTripOp(t, CDRCodecLE)
	// The two CDR orders must produce different wire bytes for
	// multi-byte values but identical decoded results.
	p := testPres(t)
	be, _ := NewPlan(p, CDRCodec, nil)
	le, _ := NewPlan(p, CDRCodecLE, nil)
	args := []Value{uint32(0x01020304)}
	e1 := CDRCodec.NewEncoder()
	e2 := CDRCodecLE.NewEncoder()
	if err := be.Ops[be.OpIndex("read")].EncodeRequest(e1, args); err != nil {
		t.Fatal(err)
	}
	if err := le.Ops[le.OpIndex("read")].EncodeRequest(e2, args); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(e1.Bytes(), e2.Bytes()) {
		t.Fatal("byte orders should differ on the wire")
	}
}
