package runtime

import (
	"testing"

	"flexrpc/internal/idl/corba"
	"flexrpc/internal/pres"
	"flexrpc/internal/stats"
)

// statsSawCalls reports whether the snapshot counted calls for op.
func statsSawCalls(snap *stats.Snapshot, op string) bool {
	for _, o := range snap.Ops {
		if o.Name == op && o.Calls > 0 {
			return true
		}
	}
	return false
}

// The observability tentpole's contract: with stats disabled the
// whole message path — client marshal, dispatch, reply unmarshal —
// costs zero allocations per call, because "disabled" is one nil
// check. With stats enabled (counters, histograms, tracing) the
// documented bound is at most 2 allocations per call; in practice
// the atomic counters and the preallocated trace ring keep it at 0,
// and the gates below pin both numbers so a regression is loud.

func allocPres(t testing.TB) *pres.Presentation {
	t.Helper()
	f, err := corba.Parse("hot.idl", `
		interface Hot {
			void nop();
			void put(in sequence<octet> data);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	return pres.Default(f.Interface("Hot"), pres.StyleCORBA)
}

// fixedConn answers every call with one canned reply frame, landing
// it in the caller's recycled reply buffer — a transport whose own
// cost is zero, isolating the runtime's marshal path in the gate.
type fixedConn struct{ reply []byte }

func (c *fixedConn) Call(opIdx int, req, replyBuf []byte) ([]byte, error) {
	return append(replyBuf[:0], c.reply...), nil
}

func (c *fixedConn) Close() error { return nil }

// clientStack builds a marshal client over a canned-reply transport.
func clientStack(t *testing.T) *Client {
	t.Helper()
	p := allocPres(t)
	disp := NewDispatcher(p)
	disp.Handle("nop", func(c *Call) error { return nil })
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := XDRCodec.NewEncoder()
	disp.ServeMessage(plan, plan.OpIndex("nop"), nil, enc)
	client, err := NewClient(p, XDRCodec, &fixedConn{reply: append([]byte(nil), enc.Bytes()...)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

func gateAllocs(t *testing.T, what string, bound float64, fn func()) {
	t.Helper()
	fn() // warm pools and grow reused buffers off the measured path
	if allocs := testing.AllocsPerRun(200, fn); allocs > bound {
		t.Fatalf("%s allocates %.1f times per call, want <= %.0f", what, allocs, bound)
	}
}

func TestClientNullCallZeroAllocsStatsOff(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	client := clientStack(t)
	gateAllocs(t, "stats-off null call", 0, func() {
		if _, _, err := client.Invoke("nop", nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
}

func TestClientNullCallBoundedAllocsStatsOn(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	client := clientStack(t)
	client.EnableStats().EnableTracing(256)
	gateAllocs(t, "stats-on null call", 2, func() {
		if _, _, err := client.Invoke("nop", nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	if !statsSawCalls(client.Stats(), "nop") {
		t.Fatal("stats-on gate recorded no calls")
	}
}

// serverStack builds a dispatcher serve loop plus a marshaled 1KB
// put request, exercising the borrow-mode request decode.
func serverStack(t *testing.T) (*Dispatcher, *Plan, []byte, Encoder) {
	t.Helper()
	p := allocPres(t)
	disp := NewDispatcher(p)
	var seen int
	disp.Handle("nop", func(c *Call) error { return nil })
	disp.Handle("put", func(c *Call) error {
		seen += len(c.ArgBytes(0))
		return nil
	})
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := XDRCodec.NewEncoder()
	if err := plan.Ops[plan.OpIndex("put")].EncodeRequest(enc, []Value{make([]byte, 1024)}); err != nil {
		t.Fatal(err)
	}
	body := append([]byte(nil), enc.Bytes()...)
	return disp, plan, body, XDRCodec.NewEncoder()
}

func TestServerNullCallZeroAllocsStatsOff(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	disp, plan, _, enc := serverStack(t)
	idx := plan.OpIndex("nop")
	gateAllocs(t, "stats-off server null call", 0, func() {
		enc.Reset()
		disp.ServeMessage(plan, idx, nil, enc)
	})
}

// The borrow-mode 1KB put costs exactly one allocation on the server
// message path with stats on or off: boxing the borrowed []byte
// slice header into the dispatcher's Value argument. The payload
// itself is not copied, and the observability layer adds nothing.
func TestServerBorrowPutAllocsStatsOff(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	disp, plan, body, enc := serverStack(t)
	idx := plan.OpIndex("put")
	gateAllocs(t, "stats-off server 1KB put", 1, func() {
		enc.Reset()
		disp.ServeMessage(plan, idx, body, enc)
	})
}

func TestServerBorrowPutBoundedAllocsStatsOn(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	disp, plan, body, enc := serverStack(t)
	disp.EnableStats()
	idx := plan.OpIndex("put")
	gateAllocs(t, "stats-on server 1KB put", 3, func() {
		enc.Reset()
		disp.ServeMessage(plan, idx, body, enc)
	})
	if !statsSawCalls(disp.Stats(), "put") {
		t.Fatal("stats-on gate recorded no calls")
	}
}
