package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"flexrpc/internal/stats"
)

// Admission control: the server-side half of the overload story. An
// Admission controller sits in front of the session layer and decides
// each call before anything about it is decoded — from nothing but
// the 16-byte session header's client id and flag bits — so a server
// drowning in requests spends almost nothing per rejected call. The
// decision path is a handful of atomics and two preallocated pushback
// frames: admitting or rejecting a call allocates zero bytes.
//
// Three gates, in the order they run:
//
//  1. Drain: a draining server rejects everything with a
//     sessDraining pushback.
//  2. Load shedder: a Clock-driven controller recomputes the recent
//     p99 from the stats endpoint's latency histograms (bucket deltas
//     between checks, so old calm traffic cannot mask a current
//     storm) and sheds by level with hysteresis — level 1 sheds
//     non-[idempotent] traffic first (it is the expensive kind: it
//     pins reply-cache entries and cannot be retried cheaply), level
//     2 sheds everything.
//  3. Caps: a global max-inflight bound and a per-client fair-share
//     bound keyed by the session client id, so one greedy client
//     cannot starve the rest even below the global cap.

// AdmissionOptions configure an Admission controller.
type AdmissionOptions struct {
	// MaxInflight bounds concurrently admitted calls across all
	// clients; 0 means unlimited.
	MaxInflight int
	// PerClient bounds concurrently admitted calls per session client
	// id (fair-queue cap); 0 means unlimited.
	PerClient int
	// RetryAfter is the advisory retry-after carried in overload
	// pushback frames; 0 means DefaultRetryAfter.
	RetryAfter time.Duration

	// ShedP99 enables the stats-informed load shedder: when the p99
	// latency observed since the previous check crosses it, the
	// controller raises the shed level. 0 disables shedding.
	ShedP99 time.Duration
	// ShedExitP99 is the hysteresis exit bound: the shed level drops
	// only when the recent p99 falls below it. 0 means ShedP99/2.
	ShedExitP99 time.Duration
	// ShedInterval is how often the shedder recomputes; 0 means
	// DefaultShedInterval. Recomputation is driven lazily from the
	// admission path (no background goroutine) and gated by Clock, so
	// FakeClock tests step it deterministically.
	ShedInterval time.Duration

	// Clock gates shedder recomputation; nil means WallClock.
	Clock Clock
	// Stats supplies the latency histograms the shedder reads and
	// receives the shed/drain counters; nil disables the shedder's
	// input (it then never raises a level) and records nothing.
	Stats *stats.Endpoint
}

// DefaultRetryAfter is the advisory retry-after in pushback frames
// when AdmissionOptions does not set one.
const DefaultRetryAfter = 5 * time.Millisecond

// DefaultShedInterval is the shedder's recompute period when
// AdmissionOptions does not set one.
const DefaultShedInterval = 100 * time.Millisecond

// admissionClients is the fair-share table size; client ids hash onto
// it, so the cap is per hash slot (exact per-client below 256 active
// clients, statistical fairness above).
const admissionClients = 256

// shedLevelMax is the top shed level: everything sheds.
const shedLevelMax = 2

// An Admission is the admission controller. All methods are safe on a
// nil *Admission (the disabled state: everything admits).
type Admission struct {
	maxInflight int64
	perClient   int64

	inflight atomic.Int64
	clients  [admissionClients]atomic.Int64
	draining atomic.Bool

	// Preallocated pushback frames: rejection writes nothing, it just
	// returns one of these shared immutable slices.
	overFrame  []byte
	drainFrame []byte

	clock Clock
	stats *stats.Endpoint

	// Shedder state. level moves by one per recompute, up when the
	// inter-check p99 exceeds shedP99, down when it falls below
	// exitP99 (hysteresis: the band between them holds the level).
	shedP99  time.Duration
	exitP99  time.Duration
	interval time.Duration
	level    atomic.Int32
	nextAt   atomic.Int64 // next recompute, Clock nanos; CAS-elected

	smu   sync.Mutex // recompute critical section
	prev  stats.HistogramSnapshot
	cur   stats.HistogramSnapshot
	delta stats.HistogramSnapshot
}

// NewAdmission builds a controller from o.
func NewAdmission(o AdmissionOptions) *Admission {
	if o.RetryAfter <= 0 {
		o.RetryAfter = DefaultRetryAfter
	}
	if o.ShedExitP99 <= 0 {
		o.ShedExitP99 = o.ShedP99 / 2
	}
	if o.ShedInterval <= 0 {
		o.ShedInterval = DefaultShedInterval
	}
	if o.Clock == nil {
		o.Clock = WallClock
	}
	a := &Admission{
		maxInflight: int64(o.MaxInflight),
		perClient:   int64(o.PerClient),
		overFrame:   AppendPushbackFrame(nil, false, o.RetryAfter),
		drainFrame:  AppendPushbackFrame(nil, true, o.RetryAfter),
		clock:       o.Clock,
		stats:       o.Stats,
		shedP99:     o.ShedP99,
		exitP99:     o.ShedExitP99,
		interval:    o.ShedInterval,
	}
	a.nextAt.Store(o.Clock.Now().UnixNano() + int64(a.interval))
	return a
}

// SetStats points the controller's shed/drain counters (and the
// shedder's histogram input) at e, replacing AdmissionOptions.Stats.
// Set before admitting; a nil endpoint records nothing and disables
// the shedder's input.
func (a *Admission) SetStats(e *stats.Endpoint) {
	if a != nil {
		a.stats = e
	}
}

// clientSlot hashes a session client id onto the fair-share table.
func clientSlot(cid uint32) uint32 {
	x := cid * 0x9e3779b9 // Fibonacci hashing: mixes sequential ids
	return (x >> 24) & (admissionClients - 1)
}

// Admit decides one call before decode. A nil return admits — the
// caller must pair it with Release(cid) when the call completes. A
// non-nil return is the complete pushback reply frame (shared and
// immutable; transports copy it onto the wire like any cached reply).
// idem reports the request frame's [idempotent] flag bit: shed level
// 1 spares idempotent traffic, which retries cheaply.
func (a *Admission) Admit(cid uint32, idem bool) []byte {
	if a == nil {
		return nil
	}
	if a.draining.Load() {
		a.stats.AddDrainReject()
		return a.drainFrame
	}
	if a.shedP99 > 0 {
		lvl := a.shedLevel()
		if lvl >= shedLevelMax || (lvl >= 1 && !idem) {
			a.stats.AddShed()
			return a.overFrame
		}
	}
	n := a.inflight.Add(1)
	if a.maxInflight > 0 && n > a.maxInflight {
		a.inflight.Add(-1)
		a.stats.AddShed()
		return a.overFrame
	}
	if a.perClient > 0 {
		slot := &a.clients[clientSlot(cid)]
		if slot.Add(1) > a.perClient {
			slot.Add(-1)
			a.inflight.Add(-1)
			a.stats.AddShed()
			return a.overFrame
		}
	}
	return nil
}

// Release returns one admitted call's capacity; cid must match the
// Admit that admitted it.
func (a *Admission) Release(cid uint32) {
	if a == nil {
		return
	}
	a.inflight.Add(-1)
	if a.perClient > 0 {
		a.clients[clientSlot(cid)].Add(-1)
	}
}

// Inflight reports currently admitted calls.
func (a *Admission) Inflight() int64 {
	if a == nil {
		return 0
	}
	return a.inflight.Load()
}

// StartDrain flips the controller into draining: every subsequent
// Admit answers with the draining pushback frame. Irreversible.
func (a *Admission) StartDrain() {
	if a != nil {
		a.draining.Store(true)
	}
}

// Draining reports whether StartDrain has run.
func (a *Admission) Draining() bool {
	return a != nil && a.draining.Load()
}

// ShedLevel reports the shedder's current level: 0 admits everything,
// 1 sheds non-idempotent traffic, 2 sheds all. Exposed for tests and
// operators; Admit consults it internally.
func (a *Admission) ShedLevel() int {
	if a == nil {
		return 0
	}
	return int(a.level.Load())
}

// shedLevel returns the current level, first recomputing it when the
// interval has elapsed. The CAS elects exactly one caller per
// interval to do the recompute; everyone else reads the level word.
func (a *Admission) shedLevel() int32 {
	now := a.clock.Now().UnixNano()
	next := a.nextAt.Load()
	if now >= next && a.nextAt.CompareAndSwap(next, now+int64(a.interval)) {
		a.recompute()
	}
	return a.level.Load()
}

// recompute reads the latency histograms, diffs them against the
// previous check's totals, and moves the shed level by at most one
// with hysteresis. Everything here is value-state owned by the
// controller: no allocation, so the elected admission caller pays
// only a bounded, rare cost.
func (a *Admission) recompute() {
	a.smu.Lock()
	defer a.smu.Unlock()
	a.cur = stats.HistogramSnapshot{}
	a.stats.MergedLatency(&a.cur)
	a.delta = a.cur
	a.delta.Count -= a.prev.Count
	a.delta.SumNs -= a.prev.SumNs
	for i := range a.delta.Buckets {
		a.delta.Buckets[i] -= a.prev.Buckets[i]
	}
	a.prev = a.cur
	lvl := a.level.Load()
	if a.delta.Count == 0 {
		// No completed traffic since the last check: decay toward
		// admitting (a fully shedding server would otherwise never
		// observe the recovery it is preventing).
		if lvl > 0 {
			a.level.Store(lvl - 1)
		}
		return
	}
	p99 := a.delta.Quantile(0.99)
	switch {
	case p99 > a.shedP99 && lvl < shedLevelMax:
		a.level.Store(lvl + 1)
	case p99 < a.exitP99 && lvl > 0:
		a.level.Store(lvl - 1)
	}
}
