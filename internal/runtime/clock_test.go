package runtime

import (
	"context"
	"errors"
	"testing"
	"time"

	"flexrpc/internal/idl/corba"
	"flexrpc/internal/pdl"
	"flexrpc/internal/pres"
	"flexrpc/internal/stats"
)

func TestFakeClockSleepAutoAdvance(t *testing.T) {
	fc := NewFakeClock()
	fc.AutoAdvance(true)
	start := fc.Now()
	if err := fc.Sleep(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := fc.Sleep(context.Background(), time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := fc.Now().Sub(start); got != time.Minute+5*time.Second {
		t.Fatalf("clock advanced %v", got)
	}
	sleeps := fc.Sleeps()
	if len(sleeps) != 2 || sleeps[0] != 5*time.Second || sleeps[1] != time.Minute {
		t.Fatalf("sleeps = %v", sleeps)
	}
}

func TestFakeClockAdvanceWakesSleepers(t *testing.T) {
	fc := NewFakeClock()
	woke := make(chan error, 1)
	go func() { woke <- fc.Sleep(context.Background(), 10*time.Second) }()
	// Wait for the sleeper to register, then advance past its wake time.
	for len(fc.Sleeps()) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	fc.Advance(9 * time.Second)
	select {
	case <-woke:
		t.Fatal("sleeper woke before its time")
	case <-time.After(time.Millisecond):
	}
	fc.Advance(time.Second)
	if err := <-woke; err != nil {
		t.Fatalf("sleep returned %v", err)
	}
}

func TestFakeClockWithTimeout(t *testing.T) {
	fc := NewFakeClock()
	ctx, cancel := fc.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh ctx already done: %v", err)
	}
	fc.Advance(10 * time.Second)
	<-ctx.Done()
	// DeadlineExceeded, not Canceled: Retryable depends on the
	// distinction (a canceled caller must not be retried; an expired
	// attempt must be).
	if err := ctx.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("fired ctx err = %v, want DeadlineExceeded", err)
	}
	if !Retryable(ctx.Err()) {
		t.Fatal("deadline expiry must be retryable")
	}

	// Cancel before expiry reads as Canceled.
	ctx2, cancel2 := fc.WithTimeout(context.Background(), time.Hour)
	cancel2()
	if err := ctx2.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx err = %v", err)
	}

	// A child takes the minimum of its own and a fake parent's
	// deadline, so advancing past the parent deadline fires the child
	// even when the child asked for longer.
	parent, pcancel := fc.WithTimeout(context.Background(), time.Second)
	defer pcancel()
	child, ccancel := fc.WithTimeout(parent, time.Hour)
	defer ccancel()
	if d, ok := child.Deadline(); !ok || d != fc.Now().Add(time.Second) {
		t.Fatalf("child deadline = %v, %v", d, ok)
	}
	fc.Advance(time.Second)
	<-child.Done()
	if err := child.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("child err = %v", err)
	}
}

func clockPres(t testing.TB) *pres.Presentation {
	t.Helper()
	f, err := corba.Parse("c.idl", `interface C { long echo(in long n); };`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pdl.ApplyLoose(pres.Default(f.Interface("C"), pres.StyleCORBA),
		"c.pdl", "interface C {\n    [idempotent] echo();\n};\n")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// failNConn returns corrupt session replies for the first n calls,
// then delegates to ok (a closure building a valid frame).
type failNConn struct {
	n     int
	calls int
	ok    func(opIdx int, req, replyBuf []byte) ([]byte, error)
}

func (c *failNConn) Call(opIdx int, req, replyBuf []byte) ([]byte, error) {
	c.calls++
	if c.calls <= c.n {
		return []byte{0, 0}, nil // short frame: ErrCorruptReply, retryable
	}
	return c.ok(opIdx, req, replyBuf)
}

func (c *failNConn) Close() error { return nil }

// TestRobustBackoffScheduleFakeClock verifies the retry loop's
// backoff schedule — exponential, jittered in [d/2, d], capped —
// without sleeping a nanosecond of wall time.
func TestRobustBackoffScheduleFakeClock(t *testing.T) {
	p := clockPres(t)
	fc := NewFakeClock()
	fc.AutoAdvance(true)
	conn := &failNConn{
		n:  5,
		ok: func(int, []byte, []byte) ([]byte, error) { return nil, errors.New("done") },
	}
	policy := RetryPolicy{
		MaxAttempts: 6,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Multiplier:  2,
		Seed:        7,
	}
	r := NewRobustConn(conn, p, RobustOptions{ClientID: 1, AtMostOnce: true, Policy: policy, Clock: fc})
	e := stats.New([]string{"echo"})
	r.SetStats(e)

	start := time.Now()
	_, err := r.Call(0, []byte("req"), nil)
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("fake-clock retries burned %v of wall time", took)
	}
	if err == nil || err.Error() != "done" {
		t.Fatalf("err = %v, want the final attempt's error", err)
	}
	if conn.calls != 6 {
		t.Fatalf("conn saw %d calls, want 6", conn.calls)
	}

	// The un-jittered schedule is 10, 20, 40, 50, 50ms (capped); each
	// recorded sleep must fall in [d/2, d].
	want := []time.Duration{10, 20, 40, 50, 50}
	sleeps := fc.Sleeps()
	if len(sleeps) != len(want) {
		t.Fatalf("got %d sleeps %v, want %d", len(sleeps), sleeps, len(want))
	}
	for i, s := range sleeps {
		d := want[i] * time.Millisecond
		if s < d/2 || s > d {
			t.Fatalf("sleep %d = %v outside jitter window [%v, %v]", i, s, d/2, d)
		}
	}

	snap := e.Snapshot()
	if snap.Ops[0].Retries != 5 {
		t.Fatalf("retries = %d, want 5", snap.Ops[0].Retries)
	}
	if snap.CorruptReplies != 5 {
		t.Fatalf("corrupt replies = %d, want 5", snap.CorruptReplies)
	}
}

// stuckConn never answers; it expires the pending attempt deadline
// itself, standing in for a server that went silent.
type stuckConn struct {
	fc      *FakeClock
	timeout time.Duration
	release chan struct{}
}

func (c *stuckConn) Call(int, []byte, []byte) ([]byte, error) {
	c.fc.Advance(c.timeout)
	<-c.release
	return nil, errors.New("released")
}

func (c *stuckConn) Close() error { return nil }

// TestRobustAttemptTimeoutFakeClock verifies each attempt is carved
// its own deadline from the fake clock and that expiry is classified
// retryable, again with zero wall-clock sleeping.
func TestRobustAttemptTimeoutFakeClock(t *testing.T) {
	p := clockPres(t)
	fc := NewFakeClock()
	fc.AutoAdvance(true)
	conn := &stuckConn{fc: fc, timeout: 30 * time.Millisecond, release: make(chan struct{})}
	t.Cleanup(func() { close(conn.release) })
	r := NewRobustConn(conn, p, RobustOptions{
		ClientID:   2,
		AtMostOnce: true,
		Policy: RetryPolicy{
			MaxAttempts:    3,
			AttemptTimeout: 30 * time.Millisecond,
			BaseBackoff:    time.Millisecond,
			Seed:           3,
		},
		Clock: fc,
	})
	e := stats.New([]string{"echo"})
	r.SetStats(e)

	_, err := r.Call(0, []byte("req"), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if snap := e.Snapshot(); snap.Ops[0].Retries != 2 {
		t.Fatalf("retries = %d, want 2 (3 attempts)", snap.Ops[0].Retries)
	}
}

// TestRobustOverallDeadlineFakeClock verifies that the backoff sleeps
// themselves consume the call's fake deadline: when it expires
// mid-backoff the loop stops early instead of using up MaxAttempts.
func TestRobustOverallDeadlineFakeClock(t *testing.T) {
	p := clockPres(t)
	fc := NewFakeClock()
	fc.AutoAdvance(true)
	conn := &failNConn{
		n:  1000, // never succeeds
		ok: func(int, []byte, []byte) ([]byte, error) { return nil, errors.New("unreachable") },
	}
	r := NewRobustConn(conn, p, RobustOptions{
		ClientID:   3,
		AtMostOnce: true,
		Policy: RetryPolicy{
			MaxAttempts: 100,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  100 * time.Millisecond,
			Multiplier:  2,
			Seed:        9,
		},
		Clock: fc,
	})
	ctx, cancel := fc.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	_, err := r.CallContext(ctx, 0, []byte("req"), nil)
	if err == nil {
		t.Fatal("call under an expired deadline succeeded")
	}
	// Sleeps are at least BaseBackoff/2 = 5ms each, so a 60ms budget
	// admits at most a dozen attempts of the configured hundred.
	if n := len(fc.Sleeps()); n >= 12 {
		t.Fatalf("%d sleeps recorded; deadline did not stop the loop", n)
	}
	if conn.calls >= 100 {
		t.Fatalf("conn saw %d calls; deadline did not stop the loop", conn.calls)
	}
}
