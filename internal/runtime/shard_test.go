package runtime

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexrpc/internal/stats"
)

// TestReplyCacheShardedSingleFlight: duplicates of one key execute
// once and everyone sees the first execution's bytes, across shard
// boundaries and under concurrency.
func TestReplyCacheShardedSingleFlight(t *testing.T) {
	c := NewReplyCacheSharded(256, 8)
	if c.Shards() != 8 {
		t.Fatalf("shards = %d, want 8", c.Shards())
	}
	const keys, dups = 32, 8
	var execs atomic.Int64
	var wg sync.WaitGroup
	for k := uint64(0); k < keys; k++ {
		for d := 0; d < dups; d++ {
			wg.Add(1)
			go func(k uint64) {
				defer wg.Done()
				frame, _ := c.do(k, func() []byte {
					execs.Add(1)
					return binary.BigEndian.AppendUint64(nil, k)
				})
				if got := binary.BigEndian.Uint64(frame); got != k {
					t.Errorf("key %d replayed frame for key %d", k, got)
				}
			}(k)
		}
	}
	wg.Wait()
	if execs.Load() != keys {
		t.Fatalf("executed %d times for %d distinct keys", execs.Load(), keys)
	}
	if c.Len() != keys {
		t.Fatalf("Len = %d, want %d", c.Len(), keys)
	}
}

// TestReplyCacheShardedEviction: capacity is enforced per shard, so
// total retention stays within one shard's worth of the configured
// capacity even when one shard absorbs a burst.
func TestReplyCacheShardedEviction(t *testing.T) {
	const capacity, shards = 16, 4
	c := NewReplyCacheSharded(capacity, shards)
	for k := uint64(0); k < 10*capacity; k++ {
		c.do(k, func() []byte { return nil })
	}
	if got := c.Len(); got > capacity {
		t.Fatalf("cache retains %d entries past its capacity %d", got, capacity)
	}
	// The newest key must still be present (FIFO evicts oldest).
	var replayed bool
	_, replayed = c.do(10*capacity-1, func() []byte { return nil })
	if !replayed {
		t.Fatal("newest key was evicted before older ones")
	}
}

// TestReplyCacheShardedRounding: shard counts round up to a power of
// two and a non-positive count derives one from GOMAXPROCS.
func TestReplyCacheShardedRounding(t *testing.T) {
	if got := NewReplyCacheSharded(64, 3).Shards(); got != 4 {
		t.Fatalf("3 shards rounded to %d, want 4", got)
	}
	if got := NewReplyCacheSharded(64, 1).Shards(); got != 1 {
		t.Fatalf("1 shard became %d", got)
	}
	auto := NewReplyCacheSharded(64, 0).Shards()
	if auto < 1 || auto > maxReplyCacheShards || auto&(auto-1) != 0 {
		t.Fatalf("derived shard count %d is not a bounded power of two", auto)
	}
}

// TestReplyCacheKeySpread: consecutive sequence numbers from one
// client must not pile onto one shard — the hash, not the raw key,
// picks the shard.
func TestReplyCacheKeySpread(t *testing.T) {
	c := NewReplyCacheSharded(1024, 8)
	hit := make(map[uint64]int)
	const cid = uint64(7) << 32
	for seq := uint64(0); seq < 256; seq++ {
		hit[shardHash(cid|seq)&c.mask]++
	}
	if len(hit) != 8 {
		t.Fatalf("256 consecutive seqs touched %d/8 shards", len(hit))
	}
	for shard, n := range hit {
		if n > 256/2 {
			t.Fatalf("shard %d absorbed %d/256 consecutive seqs", shard, n)
		}
	}
}

// TestReplyCacheContentionCounter: holding a shard's lock while
// another goroutine needs it must register on the contention counter
// (and the stats endpoint) — the observability the scaling figure
// reads.
func TestReplyCacheContentionCounter(t *testing.T) {
	c := NewReplyCacheSharded(16, 2)
	e := stats.New(nil)
	c.SetStats(e)

	// Pin shard 0's lock directly (same-package test), then drive a
	// do() that needs it.
	var key uint64
	for shardHash(key)&c.mask != 0 {
		key++
	}
	s := &c.shards[0]
	s.mu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.do(key, func() []byte { return nil })
	}()

	deadline := time.Now().Add(5 * time.Second)
	for c.Contention() == 0 {
		if time.Now().After(deadline) {
			s.mu.Unlock()
			t.Fatal("contended lock acquisition never counted")
		}
		time.Sleep(100 * time.Microsecond)
	}
	s.mu.Unlock()
	<-done
	if snap := e.Snapshot(); snap.ShardContention == 0 {
		t.Fatal("contention reached the counter but not the stats endpoint")
	}
}
