// Static plan certification: the compiled step lists of a Plan are a
// closed description of everything the hot path will do per call —
// which parameters land where, which steps allocate fresh storage,
// and what decode bound every variable-length item is held to. This
// file exports that structure (Plan.Certificate) and proves the two
// invariants the runtime's AllocsPerRun gates check dynamically:
//
//   - 0-alloc: an operation whose certificate says ClientAllocFree /
//     ServerAllocFree runs its marshal path without a per-call heap
//     allocation (the gates in alloc_test.go measure the same ops at
//     exactly zero);
//   - bounds: every variable-length decode step carries a finite
//     max-decode bound, so no hostile length prefix can force an
//     allocation past it.
//
// `flexc vet -certify` turns the certificate into a golden file per
// example — a compile-time artifact CI can diff instead of (as well
// as) re-measuring the allocator.
package runtime

import (
	"encoding/json"
	"fmt"

	"flexrpc/internal/ir"
	"flexrpc/internal/pres"
)

// Step phases, in per-call execution order. Request-encode and
// reply-decode run on the client; request-decode and reply-encode on
// the server.
const (
	PhaseReqEncode = "req-encode"
	PhaseReqDecode = "req-decode"
	PhaseRepEncode = "rep-encode"
	PhaseRepDecode = "rep-decode"
)

// Landing modes: where a decoded value's bytes end up.
const (
	LandScalar  = "scalar"  // fixed-size word, no buffer storage
	LandBorrow  = "borrow"  // aliases the request/reply frame
	LandCaller  = "caller"  // lands in a caller-provided buffer
	LandOwn     = "own"     // fresh heap storage per call
	LandSpecial = "special" // programmer hook; storage unknown
	LandNone    = "none"    // void / encode-only step
)

// A StepCert describes one compiled marshal step of an operation.
type StepCert struct {
	// Phase says when the step runs (req-encode, req-decode,
	// rep-encode, rep-decode).
	Phase string `json:"phase"`
	// Param is the parameter name ("return" for the result).
	Param string `json:"param"`
	// Type is the parameter's wire-type signature.
	Type string `json:"type"`
	// Landing is where the value's bytes end up (decode phases) or
	// "none" for encode phases, which append into the recycled
	// frame.
	Landing string `json:"landing"`
	// Allocs reports whether executing the step heap-allocates
	// fresh storage per call. [special] steps are opaque user code
	// and are conservatively marked allocating.
	Allocs bool `json:"allocs"`
	// MaxDecode is the bound applied to the step's variable-length
	// items, 0 when the step has none (scalars, fixed-size).
	MaxDecode uint32 `json:"max_decode,omitempty"`
	// Traced marks steps wrapped by the [traced] meter.
	Traced bool `json:"traced,omitempty"`
}

// An OpCert certifies one operation's compiled plan.
type OpCert struct {
	Op    string     `json:"op"`
	Steps []StepCert `json:"steps"`
	// NOut counts out/inout parameters; when non-zero the client
	// reply decode allocates the positional outs slice.
	NOut int `json:"nout"`
	// ClientAllocBound / ServerAllocBound are certified upper bounds
	// on per-call heap allocations (stats off) for each side's
	// marshal path. Boxing a decoded value into its interface Value
	// counts: the borrow-mode 1KB put certifies a server bound of 1
	// (the slice header) even though the payload is never copied —
	// exactly the number the runtime's AllocsPerRun gate measures.
	ClientAllocBound int `json:"client_alloc_bound"`
	ServerAllocBound int `json:"server_alloc_bound"`
	// ClientAllocFree / ServerAllocFree: the bound is zero.
	ClientAllocFree bool `json:"client_alloc_free"`
	ServerAllocFree bool `json:"server_alloc_free"`
}

// A PlanCert is the full certificate for one endpoint's compiled
// plan: the static counterpart of the AllocsPerRun gates.
type PlanCert struct {
	Interface string   `json:"interface"`
	Codec     string   `json:"codec"`
	Trust     string   `json:"trust"`
	MaxDecode uint32   `json:"max_decode"`
	Ops       []OpCert `json:"ops"`
}

// Certificate derives the plan's static certificate from its
// compiled step lists. It never runs a step.
func (p *Plan) Certificate() *PlanCert {
	c := &PlanCert{
		Interface: p.Pres.Interface.Name,
		Codec:     p.Codec.Name(),
		Trust:     p.Pres.Trust.String(),
		MaxDecode: p.maxDecode,
	}
	for _, op := range p.Ops {
		c.Ops = append(c.Ops, op.certify())
	}
	return c
}

// certify builds one operation's certificate from its step lists.
func (op *OpPlan) certify() OpCert {
	oc := OpCert{Op: op.Op.Name, NOut: op.nOut, Steps: []StepCert{}}
	maxDec := op.plan.maxDecode
	add := func(phase, param string, t *ir.Type, landing string, traced bool) {
		sc := StepCert{Phase: phase, Param: param, Landing: landing, Traced: traced}
		if t != nil {
			sc.Type = t.Signature()
		} else {
			sc.Type = "void"
		}
		cost := 0
		switch phase {
		case PhaseReqEncode, PhaseRepEncode:
			// Encode steps append into the recycled frame; only
			// opaque [special] hooks may allocate.
			sc.Landing = LandNone
			sc.Allocs = landing == LandSpecial
			if landing == LandSpecial {
				sc.Landing = LandSpecial
				cost = 1
			}
		default:
			sc.Allocs = decodeAllocates(t, landing)
			if variableLength(t) && landing != LandSpecial {
				sc.MaxDecode = maxDec
			}
			cost = decodeCost(t, sc.Allocs)
		}
		switch phase {
		case PhaseReqEncode, PhaseRepDecode:
			oc.ClientAllocBound += cost
		case PhaseReqDecode, PhaseRepEncode:
			oc.ServerAllocBound += cost
		}
		oc.Steps = append(oc.Steps, sc)
	}
	typeOf := func(arg int) *ir.Type {
		if arg < 0 {
			return op.Op.Result
		}
		return op.Op.Params[arg].Type
	}
	nameLanding := func(name string, decodePhase string) string {
		a := op.attrs(name)
		t := typeOf(paramIdx(op.Op, name))
		if a.Special {
			return LandSpecial
		}
		return landingOf(t, a, decodePhase)
	}
	for i := range op.reqEnc {
		st := &op.reqEnc[i]
		a := op.attrs(st.name)
		l := LandNone
		if a.Special {
			l = LandSpecial
		}
		add(PhaseReqEncode, st.name, typeOf(st.arg), l, a.Traced)
	}
	for i := range op.reqDec {
		st := &op.reqDec[i]
		add(PhaseReqDecode, st.name, typeOf(st.arg), nameLanding(st.name, PhaseReqDecode), false)
	}
	for i := range op.repEnc {
		st := &op.repEnc[i]
		a := op.attrs(st.name)
		l := LandNone
		if a.Special {
			l = LandSpecial
		}
		add(PhaseRepEncode, st.name, typeOf(st.arg), l, a.Traced)
	}
	for i := range op.repDec {
		st := &op.repDec[i]
		a := op.attrs(st.name)
		l := landingOf(typeOf(st.arg), a, PhaseRepDecode)
		if a.Special {
			l = LandSpecial
		} else if st.callerBuf && st.intoFn != nil {
			// The compiled step really does land in the caller's
			// buffer; record what was compiled, not what the attrs
			// alone would suggest.
			l = LandCaller
		}
		add(PhaseRepDecode, st.name, typeOf(st.arg), l, false)
	}
	// The positional outs slice DecodeReply allocates when the
	// operation has out/inout parameters is a client-side per-call
	// allocation even when every step is clean.
	if op.nOut > 0 {
		oc.ClientAllocBound++
	}
	oc.ClientAllocFree = oc.ClientAllocBound == 0
	oc.ServerAllocFree = oc.ServerAllocBound == 0
	return oc
}

// decodeCost bounds one decode step's per-call allocations: one for
// fresh storage when the step allocates, plus one for boxing the
// decoded value into its interface Value. Scalars box through the Go
// runtime's small-value cache and are counted free; buffer kinds
// landing by borrow or in a caller buffer still box a slice header.
func decodeCost(t *ir.Type, allocs bool) int {
	if t == nil || t.Kind == ir.Void {
		return 0
	}
	cost := 0
	if allocs {
		cost++
	}
	switch t.Kind {
	case ir.Bytes, ir.FixedBytes, ir.String, ir.Seq, ir.Array, ir.Struct:
		cost++ // boxing the header is itself a heap allocation
	}
	return cost
}

// landingOf classifies where a decoded parameter lands, mirroring
// compileOp: request decodes borrow from the frame, reply decodes
// own their storage unless the presentation supplies a caller
// buffer.
func landingOf(t *ir.Type, a *pres.ParamAttrs, decodePhase string) string {
	if t == nil || t.Kind == ir.Void {
		return LandNone
	}
	switch t.Kind {
	case ir.Bytes, ir.FixedBytes:
		if decodePhase == PhaseReqDecode {
			return LandBorrow
		}
		if a.Alloc == pres.AllocCaller {
			return LandCaller
		}
		return LandOwn
	case ir.String, ir.Seq, ir.Array, ir.Struct:
		return LandOwn
	}
	return LandScalar
}

// decodeAllocates reports whether a decode step with the given
// landing heap-allocates per call. Scalars decode into interface
// words whose common values the Go runtime interns; buffer kinds
// allocate only when they land in fresh storage.
func decodeAllocates(t *ir.Type, landing string) bool {
	if t == nil || t.Kind == ir.Void {
		return false
	}
	switch landing {
	case LandSpecial:
		return true // opaque hook: conservatively allocating
	case LandBorrow, LandCaller, LandScalar, LandNone:
		switch t.Kind {
		case ir.String, ir.Seq, ir.Array, ir.Struct:
			// Composite landings build []Value / string storage even
			// when their leaves borrow.
			return true
		}
		return false
	}
	switch t.Kind {
	case ir.Bytes, ir.FixedBytes, ir.String, ir.Seq, ir.Array, ir.Struct:
		return true
	}
	return false
}

// variableLength reports whether decoding t reads a length prefix
// the decode bound must cover.
func variableLength(t *ir.Type) bool {
	if t == nil {
		return false
	}
	switch t.Kind {
	case ir.Bytes, ir.String, ir.Seq:
		return true
	case ir.Array, ir.Struct:
		if t.Elem != nil && variableLength(t.Elem) {
			return true
		}
		for _, f := range t.Fields {
			if variableLength(f.Type) {
				return true
			}
		}
	}
	return false
}

// paramIdx returns the positional index of a named parameter, -1 for
// the result pseudo-parameter.
func paramIdx(op *ir.Operation, name string) int {
	for i := range op.Params {
		if op.Params[i].Name == name {
			return i
		}
	}
	return -1
}

// VerifyBounds proves the certificate's bounds invariant: every
// variable-length decode step carries a finite max-decode bound.
func (c *PlanCert) VerifyBounds() error {
	for _, oc := range c.Ops {
		for _, sc := range oc.Steps {
			decode := sc.Phase == PhaseReqDecode || sc.Phase == PhaseRepDecode
			if decode && sc.Landing != LandSpecial && sc.MaxDecode == 0 && variableSig(sc.Type) {
				return fmt.Errorf("certify: %s.%s %s step is unbounded", oc.Op, sc.Param, sc.Phase)
			}
		}
	}
	return nil
}

// variableSig reports whether a wire-type signature names a
// variable-length kind (see ir.Type.Signature).
func variableSig(sig string) bool {
	switch {
	case sig == "bytes", sig == "string":
		return true
	case len(sig) >= 4 && sig[:4] == "seq<":
		return true
	}
	return false
}

// Op returns the named operation's certificate, or nil.
func (c *PlanCert) OpCert(name string) *OpCert {
	for i := range c.Ops {
		if c.Ops[i].Op == name {
			return &c.Ops[i]
		}
	}
	return nil
}

// VerifyAllocFree proves the 0-alloc invariant for the named
// operations on the named side ("client" or "server"). This is the
// static form of the AllocsPerRun gates: a plan that certifies
// alloc-free here measures zero allocations per call there.
func (c *PlanCert) VerifyAllocFree(side string, ops ...string) error {
	for _, name := range ops {
		if err := c.VerifyAllocBound(side, name, 0); err != nil {
			return err
		}
	}
	return nil
}

// VerifyAllocBound proves the named operation's certified per-call
// allocation bound on the named side is at most max.
func (c *PlanCert) VerifyAllocBound(side, name string, max int) error {
	oc := c.OpCert(name)
	if oc == nil {
		return fmt.Errorf("certify: no operation %q in plan for %s", name, c.Interface)
	}
	bound := oc.ClientAllocBound
	if side == "server" {
		bound = oc.ServerAllocBound
	}
	if bound <= max {
		return nil
	}
	for _, sc := range oc.Steps {
		if sc.Allocs {
			return fmt.Errorf("certify: %s.%s certifies %d %s-side allocations per call, want <= %d: %s step on %q (%s, lands %s) allocates",
				c.Interface, name, bound, side, max, sc.Phase, sc.Param, sc.Type, sc.Landing)
		}
	}
	return fmt.Errorf("certify: %s.%s certifies %d %s-side allocations per call, want <= %d",
		c.Interface, name, bound, side, max)
}

// Render formats the certificate as indented JSON — the golden
// `flexc vet -certify` diffs. (Deliberately not named MarshalText:
// encoding/json would recurse through a TextMarshaler.)
func (c *PlanCert) Render() ([]byte, error) {
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
