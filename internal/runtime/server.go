package runtime

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"flexrpc/internal/ir"
	"flexrpc/internal/pres"
	"flexrpc/internal/stats"
)

// A Handler is a server work function for one operation.
type Handler func(c *Call) error

// A Call carries one invocation to a server work function. The
// presentation decides what the work function sees: whether in
// buffers are private, whether an out buffer was provided for it to
// fill, and whether buffers it returns will be deallocated by the
// stub (move semantics) or left to the server ([dealloc(never)]).
type Call struct {
	Op *ir.Operation

	in         []Value
	inPrivate  []bool
	outs       []Value
	ret        Value
	outBufs    [][]byte
	retBuf     []byte
	opPres     *pres.OpPres
	afterReply []func()
	ctx        context.Context
}

// Context returns the context the call was dispatched under:
// transports that plumb per-call deadlines (InvokeContext,
// ServeMessageContext) install it so work functions can observe
// cancellation; everywhere else it is context.Background().
func (c *Call) Context() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// SetContext installs the dispatch context; transports call this
// before Invoke.
func (c *Call) SetContext(ctx context.Context) { c.ctx = ctx }

// AfterReply schedules fn to run once the reply has been marshaled —
// the stub's deallocation point. A [dealloc(never)] server uses this
// to commit consumption of storage it lent to the stub (e.g. advance
// the circular-buffer read pointer) without racing the marshal; this
// is the "synchronization issue" footnote 5 of the paper refers to.
func (c *Call) AfterReply(fn func()) {
	c.afterReply = append(c.afterReply, fn)
}

// RunAfterReply runs the deferred actions; transports call it after
// the reply has been marshaled out of server-owned storage.
func (c *Call) RunAfterReply() {
	for _, fn := range c.afterReply {
		fn()
	}
	c.afterReply = nil
}

// Arg returns the value of parameter i (in or inout).
func (c *Call) Arg(i int) Value { return c.in[i] }

// ArgBytes returns parameter i as a byte buffer.
func (c *Call) ArgBytes(i int) []byte {
	b, _ := c.in[i].([]byte)
	return b
}

// ArgPrivate reports whether the work function may modify the
// buffer behind parameter i: true when the stub copied it or the
// client declared it [trashable]. A work function that needs to
// modify a non-private buffer must make its own copy — the glue the
// paper's fixed borrow-semantics systems force (§4.4.1).
func (c *Call) ArgPrivate(i int) bool { return c.inPrivate[i] }

// OutBuffer returns the negotiated landing buffer for out parameter
// i, or nil when the server should provide the data itself
// (server-buffer or stub-alloc semantics).
func (c *Call) OutBuffer(i int) []byte { return c.outBufs[i] }

// ResultBuffer returns the negotiated landing buffer for the
// result, or nil.
func (c *Call) ResultBuffer() []byte { return c.retBuf }

// SetOut supplies the value of out/inout parameter i.
func (c *Call) SetOut(i int, v Value) { c.outs[i] = v }

// SetResult supplies the operation result.
func (c *Call) SetResult(v Value) { c.ret = v }

// SetIn primes parameter i before invocation; transports call this.
func (c *Call) SetIn(i int, v Value, private bool) {
	c.in[i] = v
	c.inPrivate[i] = private
}

// SetOutBuffer installs a caller-provided landing buffer for out
// parameter i (caller-buffer semantics).
func (c *Call) SetOutBuffer(i int, buf []byte) { c.outBufs[i] = buf }

// SetResultBuffer installs a caller-provided landing buffer for the
// result.
func (c *Call) SetResultBuffer(buf []byte) { c.retBuf = buf }

// Out returns the value set for out/inout parameter i.
func (c *Call) Out(i int) Value { return c.outs[i] }

// Result returns the value set for the operation result.
func (c *Call) Result() Value { return c.ret }

// ResultMoved reports whether the stub will take ownership of
// (“deallocate”) the buffer returned as the result — CORBA move
// semantics. Under [dealloc(never)] it reports false and the server
// may return a slice of storage it keeps, e.g. its circular buffer
// (paper §4.2.1).
func (c *Call) ResultMoved() bool {
	a, ok := c.opPres.Params[pres.ResultParam]
	if !ok {
		return true
	}
	return a.Dealloc != pres.DeallocNever
}

// errNoHandler distinguishes unimplemented operations.
var errNoHandler = errors.New("runtime: no handler registered")

// A Dispatcher is the server half of the interpreted stubs: a
// presentation plus a work function per operation.
type Dispatcher struct {
	Pres     *pres.Presentation
	handlers map[string]Handler
	hooks    SpecialHooks
	callPool sync.Pool
	stats    *stats.Endpoint
}

// NewDispatcher creates a dispatcher serving p's interface under
// p's presentation.
func NewDispatcher(p *pres.Presentation) *Dispatcher {
	return &Dispatcher{Pres: p, handlers: make(map[string]Handler)}
}

// SetHooks installs the [special] marshal hooks used when serving
// message transports.
func (d *Dispatcher) SetHooks(h SpecialHooks) { d.hooks = h }

// Hooks returns the installed hooks.
func (d *Dispatcher) Hooks() SpecialHooks { return d.hooks }

// Handle registers the work function for op.
func (d *Dispatcher) Handle(op string, h Handler) {
	d.handlers[op] = h
}

// EnableStats switches on server-side observability, creating the
// endpoint on first use: per-op dispatch counters and latency, codec
// meters on the message paths, and session replay/bad-frame counts
// when a SessionServer wraps this dispatcher. Enable before serving.
func (d *Dispatcher) EnableStats() *stats.Endpoint {
	if d.stats == nil {
		d.stats = stats.New(opNames(d.Pres))
	}
	return d.stats
}

// SetStats installs (or, with nil, removes) the observability
// endpoint; EnableStats is the common path.
func (d *Dispatcher) SetStats(e *stats.Endpoint) { d.stats = e }

// StatsEndpoint returns the live endpoint, nil when disabled.
func (d *Dispatcher) StatsEndpoint() *stats.Endpoint { return d.stats }

// Stats snapshots the server-side counters; on a disabled dispatcher
// the snapshot is empty but non-nil.
func (d *Dispatcher) Stats() *stats.Snapshot { return d.stats.Snapshot() }

// opNames lists p's operations in interface order — the op-index
// space shared by plans, dispatchers and stats endpoints.
func opNames(p *pres.Presentation) []string {
	names := make([]string, len(p.Interface.Ops))
	for i := range p.Interface.Ops {
		names[i] = p.Interface.Ops[i].Name
	}
	return names
}

// OutcomeOf classifies a call error for the stats counters: nil is
// OK, a recovered handler panic is Panicked, a deadline expiry is
// TimedOut, anything else Failed. Transports that keep their own
// endpoints (inproc, pipeconn) share this taxonomy.
func OutcomeOf(err error) stats.Outcome { return serverOutcome(err) }

// serverOutcome classifies a dispatch error for the counters.
func serverOutcome(err error) stats.Outcome {
	if err == nil {
		return stats.OK
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return stats.Panicked
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return stats.TimedOut
	}
	return stats.Failed
}

// A PanicError reports a server work function that panicked; the
// dispatcher converts the panic into an RPC error reply so one bad
// request cannot take the whole server process down.
type PanicError struct {
	Op    string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runtime: handler %s panicked: %v", e.Op, e.Value)
}

// Invoke runs the work function for a fully prepared Call. A
// panicking work function is recovered into a *PanicError: the
// transport turns it into an error reply and keeps serving.
func (d *Dispatcher) Invoke(c *Call) error {
	return d.invoke(c, 0)
}

// invoke is Invoke carrying the session layer's trace id. With stats
// disabled the extra cost is exactly the one nil check.
func (d *Dispatcher) invoke(c *Call, tid uint32) error {
	h, ok := d.handlers[c.Op.Name]
	if !ok {
		err := fmt.Errorf("%w: %s", errNoHandler, c.Op.Name)
		if d.stats != nil {
			d.stats.RecordCall(d.stats.OpIndex(c.Op.Name), 0, 0, 0, stats.Failed)
		}
		return err
	}
	if d.stats == nil {
		return invokeRecover(h, c)
	}
	op := d.stats.OpIndex(c.Op.Name)
	d.stats.Trace(tid, op, stats.StageDispatch)
	t0 := time.Now()
	err := invokeRecover(h, c)
	d.stats.RecordCall(op, time.Since(t0), 0, 0, serverOutcome(err))
	return err
}

// invokeRecover isolates the recover so Invoke's own frame stays
// defer-free on the zero-alloc hot path.
func invokeRecover(h Handler, c *Call) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Op: c.Op.Name, Value: r, Stack: debug.Stack()}
		}
	}()
	return h(c)
}

// NewCall prepares a Call for the named operation; transports fill
// the inputs before Invoke.
func (d *Dispatcher) NewCall(op *ir.Operation) *Call {
	n := len(op.Params)
	return &Call{
		Op:        op,
		in:        make([]Value, n),
		inPrivate: make([]bool, n),
		outs:      make([]Value, n),
		outBufs:   make([][]byte, n),
		opPres:    d.Pres.Op(op.Name),
	}
}

// AcquireCall is NewCall with recycling: the Call and its slices come
// from a pool, so the steady-state invocation path allocates nothing.
// Pair with ReleaseCall once the call's values are no longer needed.
func (d *Dispatcher) AcquireCall(op *ir.Operation) *Call {
	c, _ := d.callPool.Get().(*Call)
	if c == nil {
		c = &Call{}
	}
	n := len(op.Params)
	c.Op = op
	c.opPres = d.Pres.Op(op.Name)
	if cap(c.in) < n {
		c.in = make([]Value, n)
		c.inPrivate = make([]bool, n)
		c.outs = make([]Value, n)
		c.outBufs = make([][]byte, n)
	} else {
		c.in = c.in[:n]
		c.inPrivate = c.inPrivate[:n]
		c.outs = c.outs[:n]
		c.outBufs = c.outBufs[:n]
	}
	return c
}

// ReleaseCall returns a Call obtained from AcquireCall to the pool,
// dropping every reference it holds so pooled storage does not pin
// user buffers.
func (d *Dispatcher) ReleaseCall(c *Call) {
	for i := range c.in {
		c.in[i] = nil
		c.inPrivate[i] = false
		c.outs[i] = nil
		c.outBufs[i] = nil
	}
	c.Op = nil
	c.opPres = nil
	c.ret = nil
	c.retBuf = nil
	c.ctx = nil
	c.afterReply = c.afterReply[:0]
	d.callPool.Put(c)
}

// Reply status words on the wire between runtime client and
// dispatcher.
const (
	replyOK  = 0
	replyErr = 1
)

// ServeMessage handles one marshaled request arriving from a
// message transport: decode under the server plan, invoke, encode
// the reply (status word first) into enc. The Call and decoder are
// pooled, so the steady-state path allocates only what the decoded
// argument values themselves need.
func (d *Dispatcher) ServeMessage(plan *Plan, opIdx int, body []byte, enc Encoder) {
	d.ServeMessageContext(nil, plan, opIdx, body, enc)
}

// ServeMessageContext is ServeMessage with a dispatch context: work
// functions observe it through Call.Context, so a client deadline
// that a session transport forwards can cancel server-side work. ctx
// may be nil (treated as Background).
func (d *Dispatcher) ServeMessageContext(ctx context.Context, plan *Plan, opIdx int, body []byte, enc Encoder) {
	d.serveMessageTraced(ctx, plan, opIdx, body, enc, 0)
}

// serveMessageTraced is the message-serving core, tagged with the
// session layer's trace id (0 = untraced).
func (d *Dispatcher) serveMessageTraced(ctx context.Context, plan *Plan, opIdx int, body []byte, enc Encoder, tid uint32) {
	if opIdx < 0 || opIdx >= len(plan.Ops) {
		encodeFailure(enc, fmt.Sprintf("bad operation index %d", opIdx))
		return
	}
	op := plan.Ops[opIdx]
	dec := plan.AcquireDecoder(body)
	call := d.AcquireCall(op.Op)
	call.ctx = ctx
	defer d.ReleaseCall(call)
	defer plan.ReleaseDecoder(dec)
	encBase := 0
	if d.stats != nil {
		d.stats.Decode.Add(len(body))
		encBase = len(enc.Bytes())
	}
	if err := op.DecodeRequestInto(dec, call.in); err != nil {
		encodeFailure(enc, err.Error())
		return
	}
	if d.stats != nil {
		d.stats.Trace(tid, opIdx, stats.StageServerDecode)
	}
	for i := range call.inPrivate {
		// Data that crossed a protection boundary is always private.
		call.inPrivate[i] = true
	}
	if err := d.invoke(call, tid); err != nil {
		encodeFailure(enc, err.Error())
		d.meterReply(opIdx, encBase, len(body), enc, tid)
		return
	}
	enc.PutUint32(replyOK)
	if err := op.EncodeReply(enc, call.outs, call.ret); err != nil {
		enc.Reset()
		encodeFailure(enc, err.Error())
	}
	d.meterReply(opIdx, encBase, len(body), enc, tid)
	// The reply is marshaled: server-owned storage is free again.
	call.RunAfterReply()
}

// meterReply records the marshaled reply once it is in enc.
func (d *Dispatcher) meterReply(opIdx, encBase, bodyLen int, enc Encoder, tid uint32) {
	if d.stats == nil {
		return
	}
	out := len(enc.Bytes()) - encBase
	d.stats.Encode.Add(out)
	d.stats.AddBytes(opIdx, out, bodyLen)
	d.stats.Trace(tid, opIdx, stats.StageServerReply)
}

// ServeMessageRaw is ServeMessage for self-framing transports: no
// status word is emitted; decode, application, and marshal errors
// are returned for the transport's own error channel.
func (d *Dispatcher) ServeMessageRaw(plan *Plan, opIdx int, body []byte, enc Encoder) error {
	return d.ServeMessageRawContext(nil, plan, opIdx, body, enc)
}

// ServeMessageRawContext is ServeMessageRaw with a dispatch context
// (see ServeMessageContext). ctx may be nil.
func (d *Dispatcher) ServeMessageRawContext(ctx context.Context, plan *Plan, opIdx int, body []byte, enc Encoder) error {
	if opIdx < 0 || opIdx >= len(plan.Ops) {
		return fmt.Errorf("runtime: bad operation index %d", opIdx)
	}
	op := plan.Ops[opIdx]
	dec := plan.AcquireDecoder(body)
	call := d.AcquireCall(op.Op)
	call.ctx = ctx
	defer d.ReleaseCall(call)
	defer plan.ReleaseDecoder(dec)
	encBase := 0
	if d.stats != nil {
		d.stats.Decode.Add(len(body))
		encBase = len(enc.Bytes())
	}
	if err := op.DecodeRequestInto(dec, call.in); err != nil {
		return err
	}
	if d.stats != nil {
		d.stats.Trace(0, opIdx, stats.StageServerDecode)
	}
	for i := range call.inPrivate {
		call.inPrivate[i] = true
	}
	if err := d.Invoke(call); err != nil {
		return err
	}
	if err := op.EncodeReply(enc, call.outs, call.ret); err != nil {
		return err
	}
	d.meterReply(opIdx, encBase, len(body), enc, 0)
	call.RunAfterReply()
	return nil
}

func encodeFailure(enc Encoder, msg string) {
	enc.PutUint32(replyErr)
	enc.PutString(msg)
}

// A RemoteError is an application or marshal error reported by the
// server over a message transport.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "runtime: remote: " + e.Msg }
