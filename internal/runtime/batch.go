package runtime

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sync"
	"time"
)

// Client-side call batching: [batchable] operations may be queued for
// at most a bounded delay and sent to the server merged into one
// session frame, amortizing per-call framing, checksums and transport
// round trips across small calls. The batch frame rides the ordinary
// session layer (flagBatch set), so it inherits CRC protection,
// retries, and — under the outer (cid, seq) key — at-most-once
// execution of the whole batch.
//
// Wire format, big-endian, inside the session body:
//
//	request: count(4), then per sub-call: opIdx(4) len(4) body
//	reply:   count(4), then per sub-call: len(4) body
//
// Each sub-call body is byte-identical to the body an unbatched call
// would have carried: batching is endpoint-private presentation, not
// a wire-contract change.

// ErrBadBatch reports a structurally invalid batch body.
var ErrBadBatch = errors.New("runtime: malformed batch frame")

// maxBatchCount bounds the sub-call count a decoder will accept
// before reading entry headers; every entry needs at least 8 bytes,
// so a count beyond len(body)/8 is already provably corrupt.
func maxBatchCount(body []byte) uint32 { return uint32(len(body) / 8) }

// appendBatchEntry appends one sub-call (request form) to a batch
// request body under construction.
func appendBatchEntry(dst []byte, opIdx uint32, req []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, opIdx)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(req)))
	return append(dst, req...)
}

// decodeBatchRequest splits a batch request body into per-sub-call
// operation indices and bodies. The returned bodies alias body.
func decodeBatchRequest(body []byte) (ops []int, reqs [][]byte, err error) {
	if len(body) < 4 {
		return nil, nil, ErrBadBatch
	}
	count := binary.BigEndian.Uint32(body[0:4])
	if count == 0 || count > maxBatchCount(body[4:]) {
		return nil, nil, ErrBadBatch
	}
	rest := body[4:]
	ops = make([]int, 0, count)
	reqs = make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 8 {
			return nil, nil, ErrBadBatch
		}
		op := binary.BigEndian.Uint32(rest[0:4])
		n := binary.BigEndian.Uint32(rest[4:8])
		rest = rest[8:]
		if uint32(len(rest)) < n {
			return nil, nil, ErrBadBatch
		}
		ops = append(ops, int(op))
		reqs = append(reqs, rest[:n:n])
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, nil, ErrBadBatch
	}
	return ops, reqs, nil
}

// appendBatchReplyEntry appends one sub-reply to a batch reply body
// under construction.
func appendBatchReplyEntry(dst, rep []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rep)))
	return append(dst, rep...)
}

// decodeBatchReply splits a batch reply body into want sub-reply
// bodies, which alias body.
func decodeBatchReply(body []byte, want int) ([][]byte, error) {
	if len(body) < 4 {
		return nil, ErrBadBatch
	}
	count := binary.BigEndian.Uint32(body[0:4])
	rest := body[4:]
	// Bound count by what the body could possibly hold (4 bytes per
	// entry minimum) BEFORE sizing anything by it: the count word is
	// attacker-controlled until the entries actually check out.
	if int(count) != want || count > uint32(len(rest)/4) {
		return nil, ErrBadBatch
	}
	out := make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, ErrBadBatch
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return nil, ErrBadBatch
		}
		out = append(out, rest[:n:n])
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, ErrBadBatch
	}
	return out, nil
}

// execBatch executes every sub-call of a batch request body in order
// and returns the complete session reply frame. A malformed batch is
// answered like a corrupted frame: the client retransmits the whole
// batch.
func (s *SessionServer) execBatch(ctx context.Context, body []byte, tid uint32) []byte {
	ops, reqs, err := decodeBatchRequest(body)
	if err != nil {
		s.disp.stats.AddBadFrame()
		return badRequestFrame()
	}
	enc, _ := s.encs.Get().(Encoder)
	if enc == nil {
		enc = s.plan.Codec.NewEncoder()
	}
	out := binary.BigEndian.AppendUint32(nil, uint32(len(ops)))
	for i, opIdx := range ops {
		enc.Reset()
		s.disp.serveMessageTraced(ctx, s.plan, opIdx, reqs[i], enc, tid)
		out = appendBatchReplyEntry(out, enc.Bytes())
	}
	s.encs.Put(enc)
	rep := make([]byte, robustRepHeader+len(out))
	binary.BigEndian.PutUint32(rep[0:4], sessOK)
	binary.BigEndian.PutUint32(rep[4:8], crc32.ChecksumIEEE(out))
	copy(rep[robustRepHeader:], out)
	return rep
}

// BatchOptions size the client-side batcher. The zero value of any
// field selects its default.
type BatchOptions struct {
	// MaxCalls flushes the queue when this many calls are waiting
	// (default 16).
	MaxCalls int
	// MaxBytes flushes when the queued request bodies reach this many
	// bytes (default 16 KiB), so large calls don't pile up behind the
	// timer.
	MaxBytes int
	// MaxDelay bounds how long any call — including a lone one — may
	// wait for companions before the queue is flushed (default 200µs;
	// keep it well under one transport RTT for a net win).
	MaxDelay time.Duration
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.MaxCalls <= 0 {
		o.MaxCalls = 16
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 16 << 10
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 200 * time.Microsecond
	}
	return o
}

// EnableBatching starts the adaptive small-call batcher: concurrent
// calls to [batchable] operations are merged into single session
// frames, flushed when MaxCalls/MaxBytes accumulate or MaxDelay
// elapses, whichever is first. Calls carrying a cancelable context, a
// trace id, or a non-[batchable] operation bypass the queue and use
// the ordinary per-call path. Call before the conn is shared; call at
// most once.
func (r *RobustConn) EnableBatching(opts BatchOptions) {
	b := &batcher{
		r:    r,
		opts: opts.withDefaults(),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	b.ctx, b.cancel = context.WithCancel(context.Background())
	r.batch = b
	go b.run()
}

type batchCall struct {
	opIdx int
	req   []byte
	done  chan batchResult
}

type batchResult struct {
	body []byte // aliases the batch reply; receiver must copy
	err  error
}

// batcher accumulates batchable calls and flushes them as single
// session frames. Size-triggered flushes run on the enqueuing
// goroutine; the timer flush runs on a dedicated flusher goroutine
// driven by the conn's Clock, so a lone call never waits past
// MaxDelay.
type batcher struct {
	r    *RobustConn
	opts BatchOptions

	mu     sync.Mutex
	queue  []*batchCall
	bytes  int
	closed bool

	wake   chan struct{} // a fresh queue generation started
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // flusher exited
}

// call enqueues one sub-call and waits for its reply. handled is
// false when the batcher is closed, telling the caller to fall back
// to the unbatched path.
func (b *batcher) call(opIdx int, req, replyBuf []byte) (reply []byte, err error, handled bool) {
	c := &batchCall{
		opIdx: opIdx,
		req:   append([]byte(nil), req...), // the caller reuses req after we return
		done:  make(chan batchResult, 1),
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, nil, false
	}
	wasEmpty := len(b.queue) == 0
	b.queue = append(b.queue, c)
	b.bytes += len(req)
	var batch []*batchCall
	if len(b.queue) >= b.opts.MaxCalls || b.bytes >= b.opts.MaxBytes {
		batch = b.takeLocked()
	}
	b.mu.Unlock()

	if batch != nil {
		b.send(batch)
	} else if wasEmpty {
		select {
		case b.wake <- struct{}{}:
		default:
		}
	}
	res := <-c.done
	if res.err != nil {
		return nil, res.err, true
	}
	return append(replyBuf[:0], res.body...), nil, true
}

func (b *batcher) takeLocked() []*batchCall {
	batch := b.queue
	b.queue = nil
	b.bytes = 0
	return batch
}

// run is the timer flusher: each time a fresh queue starts it sleeps
// MaxDelay on the conn's clock and flushes whatever is waiting. A
// size-triggered flush may empty the queue first; the subsequent
// timer flush of an empty queue is a no-op. Because the flusher was
// already armed by an earlier generation at worst, no call ever waits
// longer than MaxDelay.
func (b *batcher) run() {
	defer close(b.done)
	for {
		select {
		case <-b.ctx.Done():
			b.flush()
			return
		case <-b.wake:
		}
		_ = b.r.clock.Sleep(b.ctx, b.opts.MaxDelay)
		b.flush()
		if b.ctx.Err() != nil {
			b.flush()
			return
		}
	}
}

// flush sends whatever is queued right now.
func (b *batcher) flush() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.send(batch)
	}
}

// send transmits one batch as a single session call and distributes
// the sub-replies. The batch frame is [idempotent] only when every
// sub-call is, and rides wire op 0: the server demultiplexes by the
// flagBatch bit, with per-sub-call op indices inside the body.
func (b *batcher) send(batch []*batchCall) {
	r := b.r
	body := binary.BigEndian.AppendUint32(nil, uint32(len(batch)))
	idem := true
	for _, c := range batch {
		if !(c.opIdx < len(r.idem) && r.idem[c.opIdx]) {
			idem = false
		}
		body = appendBatchEntry(body, uint32(c.opIdx), c.req)
	}
	flags := uint32(flagBatch)
	if idem {
		flags |= flagIdempotent
	}
	r.stats.AddBatched(len(batch))
	reply, err := r.callSession(context.Background(), 0, -1, body, nil, flags, idem, 0)
	var bodies [][]byte
	if err == nil {
		bodies, err = decodeBatchReply(reply, len(batch))
	}
	for i, c := range batch {
		if err != nil {
			c.done <- batchResult{err: err}
		} else {
			c.done <- batchResult{body: bodies[i]}
		}
	}
}

// close flushes the queue, stops the flusher and rejects future
// enqueues (callers fall back to the unbatched path).
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.cancel()
	<-b.done
}
