package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Pushback: when admission control (or the load shedder, or a drain)
// rejects a call, the server answers with a pushback frame instead of
// executing it. The frame is an ordinary 8-byte session reply with an
// empty body — it rides the existing status word, so the wire format
// underneath never changes:
//
//	status(4) crc32(body)(4)    with body empty, so the CRC word is 0
//
// The status word's low 8 bits carry the code (sessOverloaded or
// sessDraining); the upper 24 bits carry an advisory retry-after in
// milliseconds (0 = none, max ~4.6 hours). The pre-pushback statuses
// (sessOK, sessBadRequest) were always written as full 32-bit words
// with zero upper bits, so old replies parse identically under the
// split encoding.
//
// The semantic that makes pushback compose with at-most-once: a
// pushed-back call was rejected before decode, so the server
// certainly did not execute it — retrying is safe for every
// operation, idempotent or not, with or without a reply cache.

const (
	pushbackCodeMask = 0xFF
	pushbackMsShift  = 8
	pushbackMaxMs    = 1<<24 - 1
)

// ErrOverloaded reports that the server shed this call before
// decoding it and certainly did not execute it. RetryAfter, when
// nonzero, is the server's advisory pause before retrying — the
// retry loop honors it in place of its own jittered backoff.
// Draining distinguishes a server that is going away (retrying this
// endpoint is pointless) from one that is momentarily at capacity.
type ErrOverloaded struct {
	RetryAfter time.Duration
	Draining   bool
}

func (e *ErrOverloaded) Error() string {
	kind := "overloaded"
	if e.Draining {
		kind = "draining"
	}
	if e.RetryAfter > 0 {
		return fmt.Sprintf("runtime: server %s (retry after %v)", kind, e.RetryAfter)
	}
	return "runtime: server " + kind
}

// ErrDraining is matched (errors.Is) by pushback errors from a
// draining server, and is the taxonomy cause transports use when a
// drain unparks their blocked waiters.
var ErrDraining = errors.New("runtime: server draining")

// Is makes errors.Is(err, ErrDraining) true for draining pushback.
func (e *ErrOverloaded) Is(target error) bool {
	return target == ErrDraining && e.Draining
}

// ErrCircuitOpen reports a call the client's circuit breaker failed
// fast, without an attempt on the wire.
var ErrCircuitOpen = errors.New("runtime: circuit breaker open")

// AppendPushbackFrame appends the 8-byte pushback reply frame to dst.
// retryAfter is clamped to [0, pushbackMaxMs] milliseconds; sub-
// millisecond values round down (a 0 on the wire means "no advice").
func AppendPushbackFrame(dst []byte, draining bool, retryAfter time.Duration) []byte {
	code := uint32(sessOverloaded)
	if draining {
		code = sessDraining
	}
	ms := retryAfter.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > pushbackMaxMs {
		ms = pushbackMaxMs
	}
	var b [robustRepHeader]byte
	binary.BigEndian.PutUint32(b[0:4], code|uint32(ms)<<pushbackMsShift)
	// CRC-32 of the empty body is 0: the zeroed word is already right.
	return append(dst, b[:]...)
}

// ParsePushbackFrame validates an untrusted reply frame as a
// pushback. It accepts exactly the frames AppendPushbackFrame
// produces — 8 bytes, a pushback code in the low status byte, the
// empty-body CRC — and an accepted frame re-encodes byte-identically
// from the values returned.
func ParsePushbackFrame(frame []byte) (retryAfter time.Duration, draining bool, err error) {
	if len(frame) != robustRepHeader {
		return 0, false, fmt.Errorf("%w: %d-byte pushback frame", ErrCorruptReply, len(frame))
	}
	status := binary.BigEndian.Uint32(frame[0:4])
	if binary.BigEndian.Uint32(frame[4:8]) != 0 {
		return 0, false, fmt.Errorf("%w: pushback frame with a body checksum", ErrCorruptReply)
	}
	switch status & pushbackCodeMask {
	case sessOverloaded:
	case sessDraining:
		draining = true
	default:
		return 0, false, fmt.Errorf("%w: status %#x is not a pushback", ErrCorruptReply, status)
	}
	return time.Duration(status>>pushbackMsShift) * time.Millisecond, draining, nil
}
