package runtime

import (
	"errors"
	"fmt"
)

// ErrArenaOverflow reports that an arena-targeted encode did not fit
// in the caller's storage. The transport falls back to a larger slot
// (or a spliced aggregate of slots) and retries.
var ErrArenaOverflow = errors.New("runtime: encoded message exceeds arena capacity")

// An ArenaEncoder is an Encoder that can be re-aimed at fixed,
// caller-provided storage: ResetArena(dst) makes subsequent Puts land
// in dst's backing array (up to its length), so a marshal plan can
// encode a message directly into a transport buffer — an fbuf
// ring-buffer slot — with no intermediate record buffer and no copy.
// Both built-in codecs implement it.
type ArenaEncoder interface {
	Encoder
	ResetArena(dst []byte)
}

func (x *xdrEncoder) ResetArena(dst []byte) { x.e.ResetTo(dst) }
func (c *cdrEncoder) ResetArena(dst []byte) { c.e.ResetTo(dst) }

// AcquireArenaEncoder returns an encoder aimed at dst, pooling when
// the codec supports arena encoding; ok is false when it does not
// (callers then fall back to a staged encode + copy). Pair with
// ReleaseArenaEncoder.
func (p *Plan) AcquireArenaEncoder(dst []byte) (ArenaEncoder, bool) {
	if ae, okPool := p.arenaPool.Get().(ArenaEncoder); okPool {
		ae.ResetArena(dst)
		return ae, true
	}
	ae, ok := p.Codec.NewEncoder().(ArenaEncoder)
	if !ok {
		return nil, false
	}
	ae.ResetArena(dst)
	return ae, true
}

// ReleaseArenaEncoder returns an encoder obtained from
// AcquireArenaEncoder to the pool, dropping its reference to the
// transport storage first.
func (p *Plan) ReleaseArenaEncoder(ae ArenaEncoder) {
	ae.ResetArena(nil)
	p.arenaPool.Put(ae)
}

// ArenaLen validates that an arena-targeted encode stayed inside dst
// and returns the encoded length. The encoders are append-based, so
// an encode that outgrew the arena reallocated away from dst's
// backing array — detected by comparing first-byte addresses — and is
// reported as ErrArenaOverflow rather than silently landing the
// message in heap storage the peer cannot see.
func ArenaLen(dst, encoded []byte) (int, error) {
	if len(encoded) == 0 {
		return 0, nil
	}
	if len(dst) == 0 || &encoded[0] != &dst[0] {
		return 0, fmt.Errorf("%w: need %d bytes, arena holds %d", ErrArenaOverflow, len(encoded), len(dst))
	}
	return len(encoded), nil
}

// EncodeRequestArena marshals the in/inout arguments directly into
// dst and returns the number of bytes written. The pool is the arena:
// a same-domain transport passes a ring-buffer slot's storage here and
// the request bytes are produced in place, never staged elsewhere.
// Returns ErrArenaOverflow when the message does not fit in dst.
func (op *OpPlan) EncodeRequestArena(dst []byte, args []Value) (int, error) {
	ae, ok := op.plan.AcquireArenaEncoder(dst)
	if !ok {
		return 0, fmt.Errorf("runtime: codec %s cannot target an arena", op.plan.Codec.Name())
	}
	err := op.EncodeRequest(ae, args)
	var n int
	if err == nil {
		n, err = ArenaLen(dst, ae.Bytes())
	}
	op.plan.ReleaseArenaEncoder(ae)
	return n, err
}

// EncodeReplyArena marshals the out/inout values and result directly
// into dst, returning the number of bytes written (or
// ErrArenaOverflow). The server side of a shared-memory transport
// encodes replies into the reply slot with this.
func (op *OpPlan) EncodeReplyArena(dst []byte, outs []Value, ret Value) (int, error) {
	ae, ok := op.plan.AcquireArenaEncoder(dst)
	if !ok {
		return 0, fmt.Errorf("runtime: codec %s cannot target an arena", op.plan.Codec.Name())
	}
	err := op.EncodeReply(ae, outs, ret)
	var n int
	if err == nil {
		n, err = ArenaLen(dst, ae.Bytes())
	}
	op.plan.ReleaseArenaEncoder(ae)
	return n, err
}
