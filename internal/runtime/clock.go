package runtime

import (
	"context"
	"sync"
	"time"
)

// A Clock abstracts the time operations the retry machinery needs —
// sleeping between attempts and carving per-attempt deadlines — so
// tests can drive backoff schedules and timeouts synchronously
// instead of sleeping wall-clock time.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep waits d, or less if ctx is done first, returning ctx's
	// error in that case.
	Sleep(ctx context.Context, d time.Duration) error
	// WithTimeout derives a context that is done d from now. The
	// returned cancel must be called to release resources, exactly
	// like context.WithTimeout.
	WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc)
}

// WallClock is the real time.Now/time.NewTimer clock every
// production path uses.
var WallClock Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (wallClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, d)
}

// A FakeClock is a manually advanced Clock for tests. Time moves
// only through Advance (or automatically through Sleep when
// AutoAdvance is on), so a retry schedule that would take seconds of
// wall time runs in microseconds and cannot flake under load.
//
// Contexts from WithTimeout fire when the fake time passes their
// deadline. They propagate a fake parent's earlier deadline (the
// effective deadline is the minimum) but do not watch a foreign
// parent's Done channel; tests drive cancellation through the clock.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	auto    bool
	sleeps  []time.Duration
	waiters []*fakeWaiter
	ctxs    []*fakeTimeoutCtx
}

type fakeWaiter struct {
	at time.Time
	ch chan struct{}
}

// NewFakeClock returns a fake clock at an arbitrary fixed epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// AutoAdvance makes Sleep advance the clock by the requested
// duration and return immediately — the mode for testing backoff
// schedules, where nothing else needs to run "during" the sleep.
func (f *FakeClock) AutoAdvance(on bool) {
	f.mu.Lock()
	f.auto = on
	f.mu.Unlock()
}

// Now implements Clock.
func (f *FakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleeps returns every duration passed to Sleep, in order — the
// jittered backoff schedule, as the retry loop computed it.
func (f *FakeClock) Sleeps() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.sleeps...)
}

// Advance moves the clock forward, waking sleeps and expiring
// timeout contexts whose time has come.
func (f *FakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.advanceLocked(d)
	f.mu.Unlock()
}

func (f *FakeClock) advanceLocked(d time.Duration) {
	if d > 0 {
		f.now = f.now.Add(d)
	}
	kept := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.at.After(f.now) {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	f.waiters = kept
	keptCtx := f.ctxs[:0]
	for _, c := range f.ctxs {
		if !c.deadline.After(f.now) {
			c.fire(context.DeadlineExceeded)
		} else {
			keptCtx = append(keptCtx, c)
		}
	}
	f.ctxs = keptCtx
}

// Sleep implements Clock. In auto-advance mode it records d,
// advances the clock and returns; otherwise it blocks until an
// Advance covers d or ctx is done.
func (f *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	f.sleeps = append(f.sleeps, d)
	if f.auto {
		f.advanceLocked(d)
		f.mu.Unlock()
		return ctx.Err()
	}
	w := &fakeWaiter{at: f.now.Add(d), ch: make(chan struct{})}
	f.waiters = append(f.waiters, w)
	f.mu.Unlock()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WithTimeout implements Clock. The context's Err is
// context.DeadlineExceeded once the fake time passes the deadline —
// the distinction Retryable depends on (a Canceled context means the
// caller gave up; an exceeded deadline is retryable).
func (f *FakeClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	f.mu.Lock()
	deadline := f.now.Add(d)
	if p, ok := ctx.Deadline(); ok && p.Before(deadline) {
		deadline = p
	}
	c := &fakeTimeoutCtx{Context: ctx, deadline: deadline, done: make(chan struct{})}
	if !deadline.After(f.now) {
		c.fire(context.DeadlineExceeded)
	} else {
		f.ctxs = append(f.ctxs, c)
	}
	f.mu.Unlock()
	return c, func() { c.fire(context.Canceled) }
}

type fakeTimeoutCtx struct {
	context.Context
	deadline time.Time
	done     chan struct{}

	mu  sync.Mutex
	err error
}

func (c *fakeTimeoutCtx) Deadline() (time.Time, bool) { return c.deadline, true }

func (c *fakeTimeoutCtx) Done() <-chan struct{} { return c.done }

func (c *fakeTimeoutCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return c.Context.Err()
}

// fire resolves the context once; later calls are no-ops.
func (c *fakeTimeoutCtx) fire(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	c.mu.Unlock()
}
