package runtime

import "flexrpc/internal/pres"

// Same-domain invocation semantics (paper §4.4): when client and
// server share a protection domain, RPC short-circuits to a
// procedure call, but the RPC system must still decide how to
// transfer each parameter without breaking either side's
// expectations. These decisions cannot themselves be presentation
// attributes — they involve both endpoints — but they are *derived
// from* presentation attributes, one from each side, which is
// exactly what the functions below compute.

// InSemantics is the transfer method for an in parameter.
type InSemantics int

// In-parameter semantics.
const (
	// InCopy: the stub must hand the server a private copy.
	InCopy InSemantics = iota
	// InBorrow: the stub may pass the client's buffer by reference.
	InBorrow
)

func (s InSemantics) String() string {
	if s == InBorrow {
		return "borrow"
	}
	return "copy"
}

// NegotiateIn derives in-parameter semantics from the client's and
// server's attributes (paper §4.4.1): a copy is needed only if
// *neither* the client declared the buffer [trashable] *nor* the
// server promised to keep it [preserved].
func NegotiateIn(client, server *pres.ParamAttrs) InSemantics {
	if client.Trashable || server.Preserved {
		return InBorrow
	}
	return InCopy
}

// InMayModify reports whether the server work function may modify
// the buffer it receives under the negotiated semantics: always
// after a copy, and otherwise only when the client said trashable.
func InMayModify(sem InSemantics, client *pres.ParamAttrs) bool {
	return sem == InCopy || client.Trashable
}

// OutSemantics is the transfer method for an out parameter or
// result.
type OutSemantics int

// Out-parameter semantics.
const (
	// OutStubAlloc: neither side insists; the RPC system provides
	// the buffer and hands it from server to client by reference.
	OutStubAlloc OutSemantics = iota
	// OutServerBuffer: the server provides the buffer (it already
	// owns the data); the client consumes it by reference.
	OutServerBuffer
	// OutCallerBuffer: the caller provides the buffer and the
	// server fills it in place.
	OutCallerBuffer
	// OutCopy: both sides insist on their own buffer; the stub
	// copies from the server's into the caller's — the only case
	// where same-domain transfer costs a copy (paper §4.4.2).
	OutCopy
)

func (s OutSemantics) String() string {
	switch s {
	case OutStubAlloc:
		return "stub-alloc"
	case OutServerBuffer:
		return "server-buffer"
	case OutCallerBuffer:
		return "caller-buffer"
	case OutCopy:
		return "copy"
	}
	return "unknown"
}

// NegotiateOut derives out-parameter semantics from both sides'
// allocation attributes (paper §4.4.2). AllocCaller on the client
// means "I provide the buffer"; AllocCallee on the server means "I
// provide the buffer"; anything else defers. A copy is performed
// only if both sides insist on allocating their own buffer.
func NegotiateOut(client, server *pres.ParamAttrs) OutSemantics {
	callerProvides := client.Alloc == pres.AllocCaller
	serverProvides := server.Alloc == pres.AllocCallee
	switch {
	case callerProvides && serverProvides:
		return OutCopy
	case callerProvides:
		return OutCallerBuffer
	case serverProvides:
		return OutServerBuffer
	default:
		return OutStubAlloc
	}
}
