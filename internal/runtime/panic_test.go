package runtime

import (
	"errors"
	"strings"
	"testing"
)

// A panicking handler must turn into an error reply — and the
// dispatcher must keep serving afterward. A panic taking down the
// whole server would let one bad request deny service to every
// connected client.
func TestHandlerPanicBecomesErrorReply(t *testing.T) {
	p := richPres(t)
	d := NewDispatcher(p)
	boom := true
	d.Handle("mix", func(c *Call) error {
		if boom {
			panic("kaboom")
		}
		c.SetResult(c.Arg(0))
		return nil
	})
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	op := plan.Ops[plan.OpIndex("mix")]
	item := []Value{int32(1), "widget", []Value{int32(9), int32(8)}}
	args := []Value{item, []byte("payload"), "text", 2.5, true, PortName(7)}
	reqEnc := XDRCodec.NewEncoder()
	if err := op.EncodeRequest(reqEnc, args); err != nil {
		t.Fatal(err)
	}
	body := reqEnc.Bytes()

	enc := XDRCodec.NewEncoder()
	d.ServeMessage(plan, plan.OpIndex("mix"), body, enc)
	dec := XDRCodec.NewDecoder(enc.Bytes())
	status, err := dec.Uint32()
	if err != nil {
		t.Fatal(err)
	}
	if status == replyOK {
		t.Fatal("panicking handler produced an OK reply")
	}
	msg, err := dec.String()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "panicked") || !strings.Contains(msg, "kaboom") {
		t.Fatalf("error reply %q does not name the panic", msg)
	}

	// The same dispatcher keeps serving once the handler behaves.
	boom = false
	enc.Reset()
	d.ServeMessage(plan, plan.OpIndex("mix"), body, enc)
	dec = XDRCodec.NewDecoder(enc.Bytes())
	if status, _ := dec.Uint32(); status != replyOK {
		t.Fatalf("dispatcher stopped serving after a recovered panic: status %d", status)
	}
}

// The raw (self-framing) path reports the panic as a *PanicError so
// transports can map it onto their own error channel.
func TestHandlerPanicRawPath(t *testing.T) {
	p := richPres(t)
	d := NewDispatcher(p)
	d.Handle("blob", func(c *Call) error {
		var xs []byte
		_ = xs[4] // index out of range
		return nil
	})
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqEnc := XDRCodec.NewEncoder()
	if err := plan.Ops[plan.OpIndex("blob")].EncodeRequest(reqEnc, []Value{uint32(3)}); err != nil {
		t.Fatal(err)
	}
	enc := XDRCodec.NewEncoder()
	err = d.ServeMessageRaw(plan, plan.OpIndex("blob"), reqEnc.Bytes(), enc)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Op != "blob" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError missing context: op=%q stack=%d bytes", pe.Op, len(pe.Stack))
	}
}
