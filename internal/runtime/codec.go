package runtime

import (
	"math"

	"flexrpc/internal/cdr"
	"flexrpc/internal/xdr"
)

func f32bits(v float32) uint32     { return math.Float32bits(v) }
func f32frombits(v uint32) float32 { return math.Float32frombits(v) }
func f64bits(v float64) uint64     { return math.Float64bits(v) }
func f64frombits(v uint64) float64 { return math.Float64frombits(v) }

// A Codec is a wire encoding the marshal plans can target. The stub
// compiler back-ends are codec-agnostic: the same plan marshals to
// Sun XDR or CORBA CDR depending on the transport's choice.
type Codec interface {
	Name() string
	NewEncoder() Encoder
	NewDecoder(buf []byte) Decoder
}

// An Encoder appends wire-format primitives.
type Encoder interface {
	PutBool(bool)
	PutInt32(int32)
	PutUint32(uint32)
	PutInt64(int64)
	PutUint64(uint64)
	PutFloat32(float32)
	PutFloat64(float64)
	PutString(string)
	PutBytes([]byte)      // variable-length opaque
	PutFixedBytes([]byte) // fixed-length opaque
	PutLen(int)           // sequence/array element count
	Bytes() []byte
	Reset()
}

// A Decoder reads wire-format primitives.
type Decoder interface {
	Bool() (bool, error)
	Int32() (int32, error)
	Uint32() (uint32, error)
	Int64() (int64, error)
	Uint64() (uint64, error)
	Float32() (float32, error)
	Float64() (float64, error)
	String() (string, error)
	Bytes() ([]byte, error) // variable-length opaque (aliases input)
	// BytesInto decodes variable-length opaque data, landing it in dst
	// when it fits (the result aliases dst) and in freshly allocated
	// storage otherwise — never truncated. The caller owns the result
	// either way.
	BytesInto(dst []byte) ([]byte, error)
	FixedBytes(n int) ([]byte, error)
	FixedBytesInto(dst []byte) error
	Len() (int, error)
	Remaining() int
}

// A ReusableDecoder can be re-aimed at a new message, letting hot
// paths pool decoders instead of allocating one per reply. Both
// built-in codecs implement it.
type ReusableDecoder interface {
	Decoder
	Reset(buf []byte)
}

// A LimitedDecoder can bound how large any single variable-length
// item (opaque, string, element count) it decodes may claim to be,
// so a hostile length prefix cannot force a huge allocation. Both
// built-in codecs implement it; n == 0 restores the codec default.
type LimitedDecoder interface {
	Decoder
	SetMaxLength(n uint32)
}

// XDRCodec marshals in Sun XDR (RFC 4506).
var XDRCodec Codec = xdrCodec{}

type xdrCodec struct{}

func (xdrCodec) Name() string { return "xdr" }
func (xdrCodec) NewEncoder() Encoder {
	return &xdrEncoder{}
}
func (xdrCodec) NewDecoder(buf []byte) Decoder {
	x := &xdrDecoder{}
	x.d.Reset(buf)
	return x
}

type xdrEncoder struct {
	e xdr.Encoder
}

func (x *xdrEncoder) PutBool(v bool)         { x.e.PutBool(v) }
func (x *xdrEncoder) PutInt32(v int32)       { x.e.PutInt32(v) }
func (x *xdrEncoder) PutUint32(v uint32)     { x.e.PutUint32(v) }
func (x *xdrEncoder) PutInt64(v int64)       { x.e.PutInt64(v) }
func (x *xdrEncoder) PutUint64(v uint64)     { x.e.PutUint64(v) }
func (x *xdrEncoder) PutFloat32(v float32)   { x.e.PutFloat32(v) }
func (x *xdrEncoder) PutFloat64(v float64)   { x.e.PutFloat64(v) }
func (x *xdrEncoder) PutString(v string)     { x.e.PutString(v) }
func (x *xdrEncoder) PutBytes(v []byte)      { x.e.PutOpaque(v) }
func (x *xdrEncoder) PutFixedBytes(v []byte) { x.e.PutFixedOpaque(v) }
func (x *xdrEncoder) PutLen(n int)           { x.e.PutArrayLen(n) }
func (x *xdrEncoder) Bytes() []byte          { return x.e.Bytes() }
func (x *xdrEncoder) Reset()                 { x.e.Reset() }

// xdrDecoder holds the xdr.Decoder by value so one allocation covers
// both the interface box and the decoder state.
type xdrDecoder struct {
	d xdr.Decoder
}

func (x *xdrDecoder) Reset(buf []byte)                     { x.d.Reset(buf) }
func (x *xdrDecoder) Bool() (bool, error)                  { return x.d.Bool() }
func (x *xdrDecoder) Int32() (int32, error)                { return x.d.Int32() }
func (x *xdrDecoder) Uint32() (uint32, error)              { return x.d.Uint32() }
func (x *xdrDecoder) Int64() (int64, error)                { return x.d.Int64() }
func (x *xdrDecoder) Uint64() (uint64, error)              { return x.d.Uint64() }
func (x *xdrDecoder) Float32() (float32, error)            { return x.d.Float32() }
func (x *xdrDecoder) Float64() (float64, error)            { return x.d.Float64() }
func (x *xdrDecoder) String() (string, error)              { return x.d.String() }
func (x *xdrDecoder) Bytes() ([]byte, error)               { return x.d.Opaque() }
func (x *xdrDecoder) BytesInto(dst []byte) ([]byte, error) { return x.d.OpaqueInto(dst) }
func (x *xdrDecoder) FixedBytes(n int) ([]byte, error)     { return x.d.FixedOpaque(n) }
func (x *xdrDecoder) FixedBytesInto(dst []byte) error      { return x.d.FixedOpaqueInto(dst) }
func (x *xdrDecoder) Len() (int, error)                    { return x.d.ArrayLen() }
func (x *xdrDecoder) Remaining() int                       { return x.d.Remaining() }
func (x *xdrDecoder) SetMaxLength(n uint32)                { x.d.MaxLength = n }

// CDRCodec marshals in CORBA CDR, big-endian.
var CDRCodec Codec = cdrCodec{order: cdr.BigEndian, name: "cdr"}

// CDRCodecLE marshals in CORBA CDR, little-endian — both byte orders
// are legal CDR, flagged in a real GIOP header; here the connection's
// codec choice plays that role.
var CDRCodecLE Codec = cdrCodec{order: cdr.LittleEndian, name: "cdr-le"}

type cdrCodec struct {
	order cdr.ByteOrder
	name  string
}

func (c cdrCodec) Name() string { return c.name }
func (c cdrCodec) NewEncoder() Encoder {
	return &cdrEncoder{e: cdr.NewEncoder(c.order)}
}
func (c cdrCodec) NewDecoder(buf []byte) Decoder {
	d := &cdrDecoder{d: *cdr.NewDecoder(nil, c.order)}
	d.d.Reset(buf)
	return d
}

type cdrEncoder struct {
	e *cdr.Encoder
}

func (c *cdrEncoder) PutBool(v bool)         { c.e.PutBool(v) }
func (c *cdrEncoder) PutInt32(v int32)       { c.e.PutInt32(v) }
func (c *cdrEncoder) PutUint32(v uint32)     { c.e.PutUint32(v) }
func (c *cdrEncoder) PutInt64(v int64)       { c.e.PutInt64(v) }
func (c *cdrEncoder) PutUint64(v uint64)     { c.e.PutUint64(v) }
func (c *cdrEncoder) PutFloat32(v float32)   { c.e.PutUint32(f32bits(v)) }
func (c *cdrEncoder) PutFloat64(v float64)   { c.e.PutUint64(f64bits(v)) }
func (c *cdrEncoder) PutString(v string)     { c.e.PutString(v) }
func (c *cdrEncoder) PutBytes(v []byte)      { c.e.PutOctetSeq(v) }
func (c *cdrEncoder) PutFixedBytes(v []byte) { c.e.PutFixedOctets(v) }
func (c *cdrEncoder) PutLen(n int)           { c.e.PutSeqLen(n) }
func (c *cdrEncoder) Bytes() []byte          { return c.e.Bytes() }
func (c *cdrEncoder) Reset()                 { c.e.Reset() }

// cdrDecoder holds the cdr.Decoder by value so one allocation covers
// both the interface box and the decoder state.
type cdrDecoder struct {
	d cdr.Decoder
}

func (c *cdrDecoder) Reset(buf []byte)        { c.d.Reset(buf) }
func (c *cdrDecoder) Bool() (bool, error)     { return c.d.Bool() }
func (c *cdrDecoder) Int32() (int32, error)   { return c.d.Int32() }
func (c *cdrDecoder) Uint32() (uint32, error) { return c.d.Uint32() }
func (c *cdrDecoder) Int64() (int64, error)   { return c.d.Int64() }
func (c *cdrDecoder) Uint64() (uint64, error) { return c.d.Uint64() }
func (c *cdrDecoder) Float32() (float32, error) {
	v, err := c.d.Uint32()
	return f32frombits(v), err
}
func (c *cdrDecoder) Float64() (float64, error) {
	v, err := c.d.Uint64()
	return f64frombits(v), err
}
func (c *cdrDecoder) String() (string, error) { return c.d.String() }
func (c *cdrDecoder) Bytes() ([]byte, error)  { return c.d.OctetSeq() }
func (c *cdrDecoder) BytesInto(dst []byte) ([]byte, error) {
	b, err := c.d.OctetSeq()
	if err != nil {
		return nil, err
	}
	if len(b) <= len(dst) {
		n := copy(dst, b)
		return dst[:n], nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}
func (c *cdrDecoder) FixedBytes(n int) ([]byte, error) { return c.d.FixedOctets(n) }
func (c *cdrDecoder) FixedBytesInto(dst []byte) error  { return c.d.FixedOctetsInto(dst) }
func (c *cdrDecoder) Len() (int, error)                { return c.d.SeqLen() }
func (c *cdrDecoder) Remaining() int                   { return c.d.Remaining() }
func (c *cdrDecoder) SetMaxLength(n uint32)            { c.d.MaxLength = n }
