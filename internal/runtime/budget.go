package runtime

import (
	"sync"
	"sync/atomic"
	"time"
)

// Client-side overload protection. Two small mechanisms keep a
// RobustConn's retry loop from amplifying a server's bad day into a
// retry storm:
//
//   - A RetryBudget is a token bucket that bounds what fraction of
//     traffic may be retries: every first attempt deposits a
//     fractional token, every retry withdraws a whole one, and a
//     retry the bucket cannot pay for is suppressed — the call fails
//     fast with its last error instead of joining the storm. Healthy
//     traffic keeps the bucket full, so occasional faults retry
//     freely; when most calls are failing, deposits cannot keep up
//     and the retry rate collapses to the deposit ratio.
//
//   - A Breaker is a half-open circuit breaker: consecutive failures
//     trip it open, an open breaker fails calls instantly without
//     touching the wire (the server's advisory RetryAfter seeds the
//     cooldown), and after the cooldown a single probe call decides
//     between closing it and re-opening it.
//
// Both are deliberately shareable: one budget or breaker may guard
// many RobustConns to one backend, which is where the aggregate
// protection matters.

// budgetScale is the fixed-point scale for fractional token
// arithmetic (tokens are int64 multiples of 1/budgetScale).
const budgetScale = 1024

// A RetryBudget throttles retries across every conn that shares it.
// All methods are safe on a nil *RetryBudget (the disabled state:
// retries are limited only by the policy).
type RetryBudget struct {
	capacity   int64 // scaled
	deposit    int64 // scaled, credited per first attempt
	tokens     atomic.Int64
	suppressed atomic.Uint64
}

// NewRetryBudget returns a budget holding at most capacity retry
// tokens, crediting ratio tokens per first attempt. capacity <= 0
// means 10; ratio <= 0 means 0.1 (one retry per ten calls, the
// conventional throttle). The bucket starts full, so a fresh client
// retries its first faults freely.
func NewRetryBudget(capacity, ratio float64) *RetryBudget {
	if capacity <= 0 {
		capacity = 10
	}
	if ratio <= 0 {
		ratio = 0.1
	}
	b := &RetryBudget{
		capacity: int64(capacity * budgetScale),
		deposit:  int64(ratio * budgetScale),
	}
	if b.deposit < 1 {
		b.deposit = 1
	}
	b.tokens.Store(b.capacity)
	return b
}

// onAttempt credits the budget for one first attempt.
func (b *RetryBudget) onAttempt() {
	if b == nil {
		return
	}
	for {
		cur := b.tokens.Load()
		next := cur + b.deposit
		if next > b.capacity {
			next = b.capacity
		}
		if next == cur || b.tokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

// allowRetry withdraws one retry token, reporting false (and counting
// a suppression) when the bucket cannot pay.
func (b *RetryBudget) allowRetry() bool {
	if b == nil {
		return true
	}
	for {
		cur := b.tokens.Load()
		if cur < budgetScale {
			b.suppressed.Add(1)
			return false
		}
		if b.tokens.CompareAndSwap(cur, cur-budgetScale) {
			return true
		}
	}
}

// Suppressed reports how many retries the budget refused.
func (b *RetryBudget) Suppressed() uint64 {
	if b == nil {
		return 0
	}
	return b.suppressed.Load()
}

// Tokens reports the current balance in whole retries.
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	return float64(b.tokens.Load()) / budgetScale
}

// breaker states.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// A Breaker is a half-open circuit breaker. All methods are safe on a
// nil *Breaker (the disabled state: every call is allowed).
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clock     Clock

	mu        sync.Mutex
	state     breakerState
	failures  int
	openUntil time.Time
	probing   bool
	opens     uint64
}

// NewBreaker returns a breaker that opens after threshold
// consecutive protection-relevant failures (pushback, transport
// faults, repeated SystemErr — not application errors, which prove
// the server is answering) and stays open for cooldown, or for the
// server's advisory RetryAfter when that is longer. threshold <= 0
// means 5; cooldown <= 0 means 100ms; clock nil means WallClock.
func NewBreaker(threshold int, cooldown time.Duration, clock Clock) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 100 * time.Millisecond
	}
	if clock == nil {
		clock = WallClock
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, clock: clock}
}

// Allow reports whether a call may proceed. An open breaker admits
// nothing until its cooldown passes, then admits exactly one probe
// (half-open); the probe's outcome closes or re-opens it.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.clock.Now().Before(b.openUntil) {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// OnSuccess records a successful (or application-level-answered)
// call: failures reset and a half-open breaker closes.
func (b *Breaker) OnSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// OnFailure records one protection-relevant failure; retryAfter, when
// nonzero, seeds the cooldown (the server knows its own recovery
// horizon better than the client's default). It reports whether this
// failure transitioned the breaker into the open state.
func (b *Breaker) OnFailure(retryAfter time.Duration) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == breakerClosed && b.failures < b.threshold {
		return false
	}
	cool := b.cooldown
	if retryAfter > cool {
		cool = retryAfter
	}
	wasOpen := b.state == breakerOpen
	b.state = breakerOpen
	b.openUntil = b.clock.Now().Add(cool)
	b.probing = false
	if !wasOpen {
		b.opens++
	}
	return !wasOpen
}

// State reports the breaker state as "closed", "open" or
// "half-open", for tests and diagnostics.
func (b *Breaker) State() string {
	if b == nil {
		return "closed"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Opens reports how many times the breaker has tripped open.
func (b *Breaker) Opens() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
