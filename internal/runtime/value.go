// Package runtime implements the interpreted stub back-end: marshal
// plans compiled from an interface's IR and a presentation, executed
// against pluggable codecs and transports, plus the same-domain
// invocation engine that derives copy/borrow and allocation
// semantics from the two endpoints' presentation attributes (paper
// §4.4).
//
// The paper's own same-domain stubs computed invocation semantics at
// run time, once per invocation, and found the overhead negligible;
// this back-end does the same, so the figures it reproduces include
// that cost.
package runtime

import (
	"fmt"

	"flexrpc/internal/ir"
)

// A Value is the runtime representation of one IR-typed value:
//
//	Bool                -> bool
//	Int32, Enum         -> int32
//	Uint32              -> uint32
//	Int64               -> int64
//	Uint64              -> uint64
//	Float32             -> float32
//	Float64             -> float64
//	String              -> string
//	Bytes, FixedBytes   -> []byte
//	Seq, Array          -> []Value
//	Struct              -> []Value (field order)
//	Port                -> PortName
//	Void                -> nil
type Value = any

// PortName is a transferred capability reference, carried as a
// 32-bit task-local name.
type PortName uint32

// CheckValue verifies that v matches the wire type t, recursively.
func CheckValue(t *ir.Type, v Value) error {
	if t == nil || t.Kind == ir.Void {
		if v != nil {
			return fmt.Errorf("runtime: void value must be nil, have %T", v)
		}
		return nil
	}
	switch t.Kind {
	case ir.Bool:
		_, ok := v.(bool)
		return checkOk(ok, t, v)
	case ir.Int32, ir.Enum:
		_, ok := v.(int32)
		return checkOk(ok, t, v)
	case ir.Uint32:
		_, ok := v.(uint32)
		return checkOk(ok, t, v)
	case ir.Int64:
		_, ok := v.(int64)
		return checkOk(ok, t, v)
	case ir.Uint64:
		_, ok := v.(uint64)
		return checkOk(ok, t, v)
	case ir.Float32:
		_, ok := v.(float32)
		return checkOk(ok, t, v)
	case ir.Float64:
		_, ok := v.(float64)
		return checkOk(ok, t, v)
	case ir.String:
		_, ok := v.(string)
		return checkOk(ok, t, v)
	case ir.Bytes:
		_, ok := v.([]byte)
		return checkOk(ok, t, v)
	case ir.FixedBytes:
		b, ok := v.([]byte)
		if !ok {
			return typeErr(t, v)
		}
		if len(b) != t.Size {
			return fmt.Errorf("runtime: fixed opaque needs %d bytes, have %d", t.Size, len(b))
		}
		return nil
	case ir.Seq, ir.Array:
		vs, ok := v.([]Value)
		if !ok {
			return typeErr(t, v)
		}
		if t.Kind == ir.Array && len(vs) != t.Size {
			return fmt.Errorf("runtime: array needs %d elements, have %d", t.Size, len(vs))
		}
		for i, e := range vs {
			if err := CheckValue(t.Elem, e); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
		return nil
	case ir.Struct:
		vs, ok := v.([]Value)
		if !ok {
			return typeErr(t, v)
		}
		if len(vs) != len(t.Fields) {
			return fmt.Errorf("runtime: struct %s needs %d fields, have %d", t.Name, len(t.Fields), len(vs))
		}
		for i, f := range t.Fields {
			if err := CheckValue(f.Type, vs[i]); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
		return nil
	case ir.Port:
		_, ok := v.(PortName)
		return checkOk(ok, t, v)
	}
	return fmt.Errorf("runtime: unsupported kind %v", t.Kind)
}

func checkOk(ok bool, t *ir.Type, v Value) error {
	if ok {
		return nil
	}
	return typeErr(t, v)
}

func typeErr(t *ir.Type, v Value) error {
	return fmt.Errorf("runtime: value %T does not match wire type %s", v, t.Signature())
}

// ZeroValue returns the zero Value of wire type t.
func ZeroValue(t *ir.Type) Value {
	if t == nil {
		return nil
	}
	switch t.Kind {
	case ir.Void:
		return nil
	case ir.Bool:
		return false
	case ir.Int32, ir.Enum:
		return int32(0)
	case ir.Uint32:
		return uint32(0)
	case ir.Int64:
		return int64(0)
	case ir.Uint64:
		return uint64(0)
	case ir.Float32:
		return float32(0)
	case ir.Float64:
		return float64(0)
	case ir.String:
		return ""
	case ir.Bytes:
		return []byte(nil)
	case ir.FixedBytes:
		return make([]byte, t.Size)
	case ir.Seq:
		return []Value(nil)
	case ir.Array:
		vs := make([]Value, t.Size)
		for i := range vs {
			vs[i] = ZeroValue(t.Elem)
		}
		return vs
	case ir.Struct:
		vs := make([]Value, len(t.Fields))
		for i, f := range t.Fields {
			vs[i] = ZeroValue(f.Type)
		}
		return vs
	case ir.Port:
		return PortName(0)
	}
	return nil
}

// CopyValue returns a deep copy of v (wire type t): the copy the
// same-domain stubs make when neither [trashable] nor [preserved]
// lets them pass the original by reference.
func CopyValue(t *ir.Type, v Value) Value {
	if t == nil || v == nil {
		return v
	}
	switch t.Kind {
	case ir.Bytes, ir.FixedBytes:
		src := v.([]byte)
		dst := make([]byte, len(src))
		copy(dst, src)
		return dst
	case ir.Seq, ir.Array:
		src := v.([]Value)
		dst := make([]Value, len(src))
		for i, e := range src {
			dst[i] = CopyValue(t.Elem, e)
		}
		return dst
	case ir.Struct:
		src := v.([]Value)
		dst := make([]Value, len(src))
		for i, f := range t.Fields {
			dst[i] = CopyValue(f.Type, src[i])
		}
		return dst
	default:
		return v // scalars, strings and port names are immutable
	}
}
