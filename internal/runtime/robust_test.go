package runtime

import (
	"testing"
	"testing/quick"

	"flexrpc/internal/idl/corba"
	"flexrpc/internal/pres"
)

// Failure-injection tests: a decoder fed arbitrary or truncated
// bytes must return an error, never panic and never loop — the
// property a network-facing unmarshaler lives or dies by.

func richPres(t testing.TB) *pres.Presentation {
	t.Helper()
	f, err := corba.Parse("r.idl", `
		struct item { long id; string name; sequence<long> scores; };
		interface R {
			item mix(in item a, in sequence<octet> b, in string c,
			         in double d, in boolean e, in Object p);
			sequence<octet> blob(in unsigned long n);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	return pres.Default(f.Interface("R"), pres.StyleCORBA)
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	p := richPres(t)
	for _, codec := range []Codec{XDRCodec, CDRCodec} {
		plan, err := NewPlan(p, codec, nil)
		if err != nil {
			t.Fatal(err)
		}
		f := func(body []byte, opIdx uint8) bool {
			op := plan.Ops[int(opIdx)%len(plan.Ops)]
			// Errors are fine; panics fail the test via quick.
			_, _ = op.DecodeRequest(codec.NewDecoder(body))
			_, _, _ = op.DecodeReply(codec.NewDecoder(body), nil, nil)
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
	}
}

func TestDecodeTruncatedValidMessages(t *testing.T) {
	// Encode a valid request, then decode every prefix of it: each
	// must either succeed (full length) or error cleanly.
	p := richPres(t)
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	op := plan.Ops[plan.OpIndex("mix")]
	item := []Value{int32(1), "widget", []Value{int32(9), int32(8)}}
	args := []Value{item, []byte("payload"), "text", 2.5, true, PortName(7)}
	enc := XDRCodec.NewEncoder()
	if err := op.EncodeRequest(enc, args); err != nil {
		t.Fatal(err)
	}
	wire := enc.Bytes()
	for n := 0; n < len(wire); n++ {
		if _, err := op.DecodeRequest(XDRCodec.NewDecoder(wire[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(wire))
		}
	}
	if _, err := op.DecodeRequest(XDRCodec.NewDecoder(wire)); err != nil {
		t.Fatalf("full message failed: %v", err)
	}
}

func TestServeMessageRandomBodies(t *testing.T) {
	// The dispatcher must answer every garbage request with a
	// well-formed error reply.
	p := richPres(t)
	d := NewDispatcher(p)
	d.Handle("mix", func(c *Call) error {
		c.SetResult(c.Arg(0))
		return nil
	})
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(body []byte, opIdx int8) bool {
		enc := XDRCodec.NewEncoder()
		d.ServeMessage(plan, int(opIdx), body, enc)
		// The reply must always carry a decodable status word.
		dec := XDRCodec.NewDecoder(enc.Bytes())
		status, err := dec.Uint32()
		if err != nil {
			return false
		}
		if status != replyOK {
			_, err := dec.String()
			return err == nil // error replies carry a message
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqLengthBombRejected(t *testing.T) {
	// A declared sequence length of ~2^31 must not cause a huge
	// allocation: the codec's length limit rejects it first.
	p := richPres(t)
	plan, _ := NewPlan(p, XDRCodec, nil)
	op := plan.Ops[plan.OpIndex("blob")]
	enc := XDRCodec.NewEncoder()
	enc.PutUint32(0x7fffffff) // absurd declared byte count
	if _, _, err := op.DecodeReply(XDRCodec.NewDecoder(enc.Bytes()), nil, nil); err == nil {
		t.Fatal("length bomb decoded without error")
	}
}

func TestSeqElementCountBomb(t *testing.T) {
	// A sequence-of-struct with a huge declared element count must
	// be rejected before allocating the element slice.
	f, err := corba.Parse("s.idl", `
		struct pt { long x; };
		interface S { void op(in sequence<pt> ps); };`)
	if err != nil {
		t.Fatal(err)
	}
	p := pres.Default(f.Interface("S"), pres.StyleCORBA)
	plan, _ := NewPlan(p, XDRCodec, nil)
	enc := XDRCodec.NewEncoder()
	enc.PutUint32(50 << 20) // 50M elements declared, no data
	if _, err := plan.Ops[0].DecodeRequest(XDRCodec.NewDecoder(enc.Bytes())); err == nil {
		t.Fatal("element-count bomb decoded without error")
	}
}
