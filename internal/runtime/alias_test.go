package runtime

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"flexrpc/internal/idl/corba"
	"flexrpc/internal/pres"
)

// Reply landing buffers: under [alloc(caller)] a byte-buffer reply
// must decode straight into the caller's buffer — the paper's
// zero-copy receive path — and fall back to fresh, untruncated
// storage when the buffer is too small.

func TestReplyLandsInCallerBuffer(t *testing.T) {
	for _, codec := range []Codec{XDRCodec, CDRCodec} {
		p := testPres(t)
		p.Op("read").Result().Alloc = pres.AllocCaller
		plan, err := NewPlan(p, codec, nil)
		if err != nil {
			t.Fatal(err)
		}
		op := plan.Ops[plan.OpIndex("read")]

		payload := []byte("landing-buffer payload")
		enc := codec.NewEncoder()
		if err := op.EncodeReply(enc, nil, payload); err != nil {
			t.Fatal(err)
		}

		retBuf := make([]byte, 64)
		_, ret, err := op.DecodeReply(codec.NewDecoder(enc.Bytes()), nil, retBuf)
		if err != nil {
			t.Fatal(err)
		}
		b := ret.([]byte)
		if !bytes.Equal(b, payload) {
			t.Fatalf("%s: reply = %q", codec.Name(), b)
		}
		if &b[0] != &retBuf[0] {
			t.Errorf("%s: alloc(caller) reply did not land in the caller's buffer", codec.Name())
		}
	}
}

func TestReplyCallerBufferTooSmallNotTruncated(t *testing.T) {
	for _, codec := range []Codec{XDRCodec, CDRCodec} {
		p := testPres(t)
		p.Op("read").Result().Alloc = pres.AllocCaller
		plan, err := NewPlan(p, codec, nil)
		if err != nil {
			t.Fatal(err)
		}
		op := plan.Ops[plan.OpIndex("read")]

		payload := bytes.Repeat([]byte{0xC3}, 100)
		enc := codec.NewEncoder()
		if err := op.EncodeReply(enc, nil, payload); err != nil {
			t.Fatal(err)
		}

		retBuf := make([]byte, 16)
		_, ret, err := op.DecodeReply(codec.NewDecoder(enc.Bytes()), nil, retBuf)
		if err != nil {
			t.Fatal(err)
		}
		b := ret.([]byte)
		if !bytes.Equal(b, payload) {
			t.Fatalf("%s: undersized landing buffer truncated the reply to %d bytes", codec.Name(), len(b))
		}
		if len(retBuf) > 0 && &b[0] == &retBuf[0] {
			t.Errorf("%s: oversize reply must not alias the undersized buffer", codec.Name())
		}
	}
}

func TestOutParamLandsInCallerBuffer(t *testing.T) {
	f, err := corba.Parse("g.idl", `
		interface G {
			void get(out sequence<octet> data);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	p := pres.Default(f.Interface("G"), pres.StyleCORBA)
	p.Op("get").Param("data").Alloc = pres.AllocCaller
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	op := plan.Ops[plan.OpIndex("get")]

	payload := []byte("out-param payload")
	enc := XDRCodec.NewEncoder()
	if err := op.EncodeReply(enc, []Value{payload}, nil); err != nil {
		t.Fatal(err)
	}

	outBuf := make([]byte, 64)
	outs, _, err := op.DecodeReply(XDRCodec.NewDecoder(enc.Bytes()), [][]byte{outBuf}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := outs[0].([]byte)
	if !bytes.Equal(b, payload) {
		t.Fatalf("out = %q", b)
	}
	if &b[0] != &outBuf[0] {
		t.Error("alloc(caller) out param did not land in the caller's buffer")
	}
}

// The parallel client: per-call pooled state, no global mutex. Run
// under -race this hammers the pools and the shared conn from eight
// goroutines.
func TestParallelClientConcurrentCalls(t *testing.T) {
	p := testPres(t)
	disp := NewDispatcher(p)
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := []byte("0123456789abcdef")
	disp.Handle("read", func(c *Call) error {
		n := int(c.Arg(0).(uint32))
		out := make([]byte, n)
		copy(out, store)
		c.SetResult(out)
		return nil
	})
	disp.Handle("status", func(c *Call) error {
		c.SetResult(uint32(7))
		return nil
	})
	client, err := NewParallelClient(testPres(t), XDRCodec, &loopConn{disp: disp, plan: plan}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 150
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := uint32(1 + (w+i)%len(store))
				_, ret, err := client.Invoke("read", []Value{n}, nil, nil)
				if err != nil {
					errCh <- err
					return
				}
				b := ret.([]byte)
				if len(b) != int(n) || !bytes.Equal(b, store[:n]) {
					errCh <- fmt.Errorf("worker %d: read(%d) = %q", w, n, b)
					return
				}
				_, st, err := client.Invoke("status", []Value{}, nil, nil)
				if err != nil {
					errCh <- err
					return
				}
				if st.(uint32) != 7 {
					errCh <- fmt.Errorf("worker %d: status = %v", w, st)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// stepTestHooks is testHooks plus the StepHooks re-entrancy
// declaration, with both step methods deferring to the dynamic path.
type stepTestHooks struct{ testHooks }

func (h *stepTestHooks) EncodeStep(op, param string) EncodeStepFn { return nil }
func (h *stepTestHooks) DecodeStep(op, param string) DecodeStepFn { return nil }

func TestParallelClientRequiresStepHooksForSpecial(t *testing.T) {
	p := testPres(t)
	p.Op("write").Param("data").Special = true
	disp := NewDispatcher(testPres(t))
	plan, err := NewPlan(testPres(t), XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn := &loopConn{disp: disp, plan: plan}

	if _, err := NewParallelClient(p, XDRCodec, conn, &testHooks{}); err == nil ||
		!strings.Contains(err.Error(), "StepHooks") {
		t.Fatalf("plain SpecialHooks should be rejected at bind time, err = %v", err)
	}
	if _, err := NewParallelClient(p, XDRCodec, conn, &stepTestHooks{}); err != nil {
		t.Fatalf("StepHooks implementation rejected: %v", err)
	}
}
