package runtime

import (
	"strings"
	"testing"

	"flexrpc/internal/idl/corba"
	"flexrpc/internal/pdl"
	"flexrpc/internal/pres"
)

// The certification tentpole's contract: everything the AllocsPerRun
// gates in alloc_test.go measure dynamically must be provable from
// the compiled step lists alone. These tests derive the certificate
// for the same Hot plan the gates run and check both directions —
// the certificate promises what the gates measure, and the gates
// never measure more than the certificate promises.

func hotCert(t *testing.T) *PlanCert {
	t.Helper()
	plan, err := NewPlan(allocPres(t), XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return plan.Certificate()
}

func TestCertificateNullRPCAllocFree(t *testing.T) {
	cert := hotCert(t)
	// The null RPC is certified 0-alloc on both sides — the static
	// form of TestClientNullCallZeroAllocsStatsOff and
	// TestServerNullCallZeroAllocsStatsOff.
	if err := cert.VerifyAllocFree("client", "nop"); err != nil {
		t.Fatal(err)
	}
	if err := cert.VerifyAllocFree("server", "nop"); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateBorrowPutBound(t *testing.T) {
	cert := hotCert(t)
	oc := cert.OpCert("put")
	if oc == nil {
		t.Fatal("no certificate for put")
	}
	// The 1KB borrow-mode put certifies exactly one server-side
	// allocation — boxing the borrowed slice header into the Value
	// argument — matching TestServerBorrowPutAllocsStatsOff's gate.
	if oc.ServerAllocBound != 1 {
		t.Fatalf("put server alloc bound = %d, want 1", oc.ServerAllocBound)
	}
	if err := cert.VerifyAllocBound("server", "put", 1); err != nil {
		t.Fatal(err)
	}
	if err := cert.VerifyAllocFree("server", "put"); err == nil {
		t.Fatal("put server path boxes a slice header; VerifyAllocFree must refuse to certify it")
	}
	// The client side only appends into the recycled request frame.
	if err := cert.VerifyAllocFree("client", "put"); err != nil {
		t.Fatal(err)
	}
	// The decode step that borrows the frame must carry the plan's
	// decode bound.
	var found bool
	for _, sc := range oc.Steps {
		if sc.Phase == PhaseReqDecode && sc.Param == "data" {
			found = true
			if sc.Landing != LandBorrow {
				t.Fatalf("put.data lands %q, want %q", sc.Landing, LandBorrow)
			}
			if sc.Allocs {
				t.Fatal("borrow-mode decode marked allocating")
			}
			if sc.MaxDecode == 0 {
				t.Fatal("variable-length decode step certified without a bound")
			}
		}
	}
	if !found {
		t.Fatal("no req-decode step for put.data in certificate")
	}
}

func TestCertificateBoundsInvariant(t *testing.T) {
	cert := hotCert(t)
	if err := cert.VerifyBounds(); err != nil {
		t.Fatal(err)
	}
}

// TestCertificateMatchesGates ties the static and dynamic views
// together: run the same client/server paths the alloc gates run and
// assert the measured allocations never exceed the certified bounds.
func TestCertificateMatchesGates(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	cert := hotCert(t)

	client := clientStack(t)
	nop := cert.OpCert("nop")
	gateAllocs(t, "certified client null call", float64(nop.ClientAllocBound), func() {
		if _, _, err := client.Invoke("nop", nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})

	disp, plan, body, enc := serverStack(t)
	idx := plan.OpIndex("put")
	put := cert.OpCert("put")
	gateAllocs(t, "certified server 1KB put", float64(put.ServerAllocBound), func() {
		enc.Reset()
		disp.ServeMessage(plan, idx, body, enc)
	})
}

// TestCertificateCallerBufferLanding pins the [alloc(caller)] reply
// landing: the compiled step certifies LandCaller and a 0-alloc
// client decode, the paper's figure-9 caller-buffer optimization.
func TestCertificateCallerBufferLanding(t *testing.T) {
	f, err := corba.Parse("fetch.idl", `
		interface Fetch {
		    sequence<octet> read(in unsigned long count);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pdl.Apply(pres.Default(f.Interface("Fetch"), pres.StyleCORBA), "fetch.pdl",
		"interface Fetch {\n    read([alloc(caller)] return);\n};\n")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert := plan.Certificate()
	oc := cert.OpCert("read")
	if oc == nil {
		t.Fatal("no certificate for read")
	}
	var landed bool
	for _, sc := range oc.Steps {
		if sc.Phase == PhaseRepDecode && sc.Param == "return" {
			landed = true
			if sc.Landing != LandCaller {
				t.Fatalf("read.return lands %q, want %q", sc.Landing, LandCaller)
			}
			if sc.Allocs {
				t.Fatal("caller-buffer landing marked allocating")
			}
		}
	}
	if !landed {
		t.Fatal("no rep-decode step for read.return in certificate")
	}
}

func TestCertificateMarshalStable(t *testing.T) {
	cert := hotCert(t)
	a, err := cert.Render()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := cert.Render()
	if string(a) != string(b) {
		t.Fatal("certificate rendering is not deterministic")
	}
	for _, want := range []string{`"interface": "Hot"`, `"codec": "xdr"`, `"op": "nop"`, `"op": "put"`} {
		if !strings.Contains(string(a), want) {
			t.Fatalf("certificate missing %s:\n%s", want, a)
		}
	}
}
