package runtime

import (
	"context"
	"fmt"
)

// A ContextConn is a Conn whose calls honor per-call deadlines and
// cancellation. Transports that can abandon an in-flight call without
// tearing the connection down (the xid-multiplexed Sun RPC client)
// implement this; everything else is adapted by CallConn.
type ContextConn interface {
	Conn
	CallContext(ctx context.Context, opIdx int, req []byte, replyBuf []byte) ([]byte, error)
}

// A ContextInvoker is an Invoker with per-call deadlines and
// cancellation. Both the marshal-based Client and the inproc engine
// implement it.
type ContextInvoker interface {
	Invoker
	InvokeContext(ctx context.Context, op string, args []Value, outBufs [][]byte, retBuf []byte) (outs []Value, ret Value, err error)
}

// CallConn round-trips one request over conn under ctx. When conn
// implements ContextConn the deadline propagates into the transport;
// otherwise the call runs in a goroutine that is abandoned on expiry.
// An abandoned call's transport buffers stay with the goroutine —
// the caller's replyBuf is never handed to it, and req is copied —
// so expiry cannot corrupt a pooled buffer that the caller reuses.
func CallConn(ctx context.Context, conn Conn, opIdx int, req, replyBuf []byte) ([]byte, error) {
	if cc, ok := conn.(ContextConn); ok {
		return cc.CallContext(ctx, opIdx, req, replyBuf)
	}
	if ctx == nil || ctx.Done() == nil {
		// No deadline and no cancellation: the direct path stays
		// zero-alloc.
		return conn.Call(opIdx, req, replyBuf)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type result struct {
		reply []byte
		err   error
	}
	// The goroutine may outlive this call, so it must not touch any
	// buffer the caller will reuse: copy the request (the encoder
	// behind req is recycled when Invoke returns) and allocate the
	// reply itself.
	reqCopy := make([]byte, len(req))
	copy(reqCopy, req)
	ch := make(chan result, 1)
	go func() {
		reply, err := conn.Call(opIdx, reqCopy, nil)
		ch <- result{reply, err}
	}()
	select {
	case r := <-ch:
		return r.reply, r.err
	case <-ctx.Done():
		return nil, fmt.Errorf("runtime: call abandoned: %w", ctx.Err())
	}
}

// InvokeContext is Invoke with a per-call context: the deadline
// propagates into the transport (see CallConn).
func (c *Client) InvokeContext(ctx context.Context, op string, args []Value, outBufs [][]byte, retBuf []byte) ([]Value, Value, error) {
	return c.invoke(ctx, op, args, outBufs, retBuf)
}

// RawCallContext is RawCall with a per-call context (see CallConn for
// the abandonment semantics on transports without native support).
func RawCallContext(ctx context.Context, conn Conn, codec Codec, opIdx int, req, replyBuf []byte) (Decoder, []byte, error) {
	reply, err := CallConn(ctx, conn, opIdx, req, replyBuf)
	if err != nil {
		return nil, nil, err
	}
	dec := codec.NewDecoder(reply)
	if connFramed(conn) {
		status, err := dec.Uint32()
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: truncated reply: %w", err)
		}
		if status != replyOK {
			msg, err := dec.String()
			if err != nil {
				msg = "(unreadable error)"
			}
			return nil, nil, &RemoteError{Msg: msg}
		}
	}
	return dec, reply, nil
}
