package runtime

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
	"time"

	"flexrpc/internal/stats"
)

// Unit tests for the overload-resilience layer: the Admission
// controller and its stats-informed shedder, the client-side
// RetryBudget and Breaker, and the RobustConn retry loop's pushback
// handling. Everything time-dependent runs on a FakeClock.

// admitted calls Admit and immediately returns the capacity when the
// call was admitted, reporting whether it was.
func admitted(a *Admission, cid uint32, idem bool) bool {
	if pb := a.Admit(cid, idem); pb != nil {
		return false
	}
	a.Release(cid)
	return true
}

func TestAdmissionNilIsDisabled(t *testing.T) {
	var a *Admission
	if pb := a.Admit(1, false); pb != nil {
		t.Fatalf("nil admission rejected: %v", pb)
	}
	a.Release(1)
	a.StartDrain()
	a.SetStats(nil)
	if a.Inflight() != 0 || a.Draining() || a.ShedLevel() != 0 {
		t.Fatal("nil admission reported state")
	}
}

func TestAdmissionGlobalCap(t *testing.T) {
	const ra = 7 * time.Millisecond
	e := stats.New(nil)
	a := NewAdmission(AdmissionOptions{MaxInflight: 2, RetryAfter: ra, Stats: e})
	if a.Admit(1, false) != nil || a.Admit(2, false) != nil {
		t.Fatal("calls under the cap rejected")
	}
	pb := a.Admit(3, false)
	if pb == nil {
		t.Fatal("call over the cap admitted")
	}
	gotRA, draining, err := ParsePushbackFrame(pb)
	if err != nil {
		t.Fatalf("rejection frame does not parse: %v", err)
	}
	if gotRA != ra || draining {
		t.Fatalf("rejection frame = (%v, %v), want (%v, false)", gotRA, draining, ra)
	}
	if n := a.Inflight(); n != 2 {
		t.Fatalf("inflight = %d after rejection, want 2", n)
	}
	if e.Snapshot().Sheds != 1 {
		t.Fatalf("sheds = %d, want 1", e.Snapshot().Sheds)
	}
	// Releasing one slot readmits.
	a.Release(1)
	if a.Admit(3, false) != nil {
		t.Fatal("call after release rejected")
	}
}

func TestAdmissionPerClientFairness(t *testing.T) {
	// Client ids 5 and 6 hash to distinct fair-share slots.
	if clientSlot(5) == clientSlot(6) {
		t.Fatal("test ids collide in the fair-share table")
	}
	a := NewAdmission(AdmissionOptions{PerClient: 2})
	if a.Admit(5, false) != nil || a.Admit(5, false) != nil {
		t.Fatal("greedy client rejected under its share")
	}
	if a.Admit(5, false) == nil {
		t.Fatal("greedy client admitted over its share")
	}
	// A different client is unaffected by the greedy one's cap.
	if !admitted(a, 6, false) {
		t.Fatal("well-behaved client starved by the greedy one")
	}
	a.Release(5)
	if !admitted(a, 5, false) {
		t.Fatal("greedy client still capped after release")
	}
}

func TestAdmissionDrain(t *testing.T) {
	e := stats.New(nil)
	a := NewAdmission(AdmissionOptions{RetryAfter: time.Millisecond, Stats: e})
	if !admitted(a, 1, false) {
		t.Fatal("pre-drain call rejected")
	}
	a.StartDrain()
	if !a.Draining() {
		t.Fatal("Draining false after StartDrain")
	}
	pb := a.Admit(1, true)
	if pb == nil {
		t.Fatal("draining controller admitted a call")
	}
	ra, draining, err := ParsePushbackFrame(pb)
	if err != nil || !draining || ra != time.Millisecond {
		t.Fatalf("drain frame = (%v, %v, %v), want (1ms, true, nil)", ra, draining, err)
	}
	if e.Snapshot().DrainRejects != 1 {
		t.Fatalf("drain rejects = %d, want 1", e.Snapshot().DrainRejects)
	}
}

// TestAdmissionShedderHysteresis drives the load shedder through its
// whole level diagram on a FakeClock: up under a latency storm
// (shedding non-idempotent traffic first, then everything), holding
// in the hysteresis band, stepping down on recovery, and decaying
// when shedding is so total that no traffic completes at all.
func TestAdmissionShedderHysteresis(t *testing.T) {
	fc := NewFakeClock()
	e := stats.New([]string{"op"})
	a := NewAdmission(AdmissionOptions{
		ShedP99:      10 * time.Millisecond,
		ShedExitP99:  5 * time.Millisecond,
		ShedInterval: 100 * time.Millisecond,
		Clock:        fc,
		Stats:        e,
	})
	feed := func(d time.Duration, n int) {
		for i := 0; i < n; i++ {
			e.RecordCall(0, d, 0, 0, stats.OK)
		}
	}
	// step advances one shed interval and probes the controller once
	// (the probe is the elected recomputer), returning whether the
	// probe was admitted.
	step := func(idem bool) bool {
		fc.Advance(100 * time.Millisecond)
		return admitted(a, 1, idem)
	}

	if a.ShedLevel() != 0 || !admitted(a, 1, false) {
		t.Fatal("fresh controller not admitting everything")
	}
	// A p99 storm raises one level per interval: first non-idempotent
	// traffic sheds while idempotent still admits, then everything.
	feed(50*time.Millisecond, 100)
	if !step(true) {
		t.Fatal("idempotent call shed at level 1")
	}
	if a.ShedLevel() != 1 {
		t.Fatalf("level = %d after storm, want 1", a.ShedLevel())
	}
	if admitted(a, 1, false) {
		t.Fatal("non-idempotent call admitted at level 1")
	}
	feed(50*time.Millisecond, 100)
	if step(true) {
		t.Fatal("idempotent call admitted at level 2")
	}
	if a.ShedLevel() != 2 {
		t.Fatalf("level = %d after second storm interval, want 2", a.ShedLevel())
	}
	// In the hysteresis band (between exit and entry) the level holds.
	feed(6*time.Millisecond, 100)
	if step(true) {
		t.Fatal("call admitted while p99 holds in the hysteresis band")
	}
	if a.ShedLevel() != 2 {
		t.Fatalf("level = %d in hysteresis band, want 2", a.ShedLevel())
	}
	// Recovery steps down one level per interval.
	feed(time.Millisecond, 100)
	if step(false) {
		t.Fatal("non-idempotent call admitted at level 1")
	}
	if a.ShedLevel() != 1 {
		t.Fatalf("level = %d after recovery interval, want 1", a.ShedLevel())
	}
	feed(time.Millisecond, 100)
	if !step(false) {
		t.Fatal("call shed after full recovery")
	}
	if a.ShedLevel() != 0 {
		t.Fatalf("level = %d after full recovery, want 0", a.ShedLevel())
	}
	// Idle decay: with no completed traffic at all between checks the
	// level steps down rather than wedging shut forever.
	feed(50*time.Millisecond, 100)
	step(true)
	if a.ShedLevel() != 1 {
		t.Fatalf("level = %d before idle decay, want 1", a.ShedLevel())
	}
	if !step(true) {
		t.Fatal("idle decay probe shed")
	}
	if a.ShedLevel() != 0 {
		t.Fatalf("level = %d after idle interval, want 0 (decay)", a.ShedLevel())
	}
}

func TestRetryBudgetSpendAndRefill(t *testing.T) {
	b := NewRetryBudget(2, 0.5)
	// The bucket starts full: two whole retries, then suppression.
	if !b.allowRetry() || !b.allowRetry() {
		t.Fatal("full budget refused a retry")
	}
	if b.allowRetry() {
		t.Fatal("empty budget allowed a retry")
	}
	if b.Tokens() != 0 {
		t.Fatalf("tokens = %v after spending the bucket, want 0", b.Tokens())
	}
	// Two first attempts deposit one whole token (ratio 0.5 each).
	b.onAttempt()
	b.onAttempt()
	if !b.allowRetry() {
		t.Fatal("refilled budget refused a retry")
	}
	if b.allowRetry() {
		t.Fatal("budget allowed more retries than deposited")
	}
	if got := b.Suppressed(); got != 2 {
		t.Fatalf("suppressed = %d, want 2", got)
	}
	// Deposits cap at the configured capacity.
	for i := 0; i < 100; i++ {
		b.onAttempt()
	}
	if b.Tokens() != 2 {
		t.Fatalf("tokens = %v after heavy deposits, want capacity 2", b.Tokens())
	}

	var nilB *RetryBudget
	nilB.onAttempt()
	if !nilB.allowRetry() || nilB.Suppressed() != 0 || nilB.Tokens() != 0 {
		t.Fatal("nil budget is not the disabled state")
	}
}

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	fc := NewFakeClock()
	b := NewBreaker(3, 100*time.Millisecond, fc)
	if b.OnFailure(0) || b.OnFailure(0) {
		t.Fatal("breaker opened below its threshold")
	}
	if !b.Allow() || b.State() != "closed" {
		t.Fatal("closed breaker not admitting")
	}
	if !b.OnFailure(0) {
		t.Fatal("threshold failure did not report the open transition")
	}
	if b.State() != "open" || b.Opens() != 1 {
		t.Fatalf("state = %s opens = %d after trip, want open/1", b.State(), b.Opens())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call")
	}
	fc.Advance(99 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted before its cooldown elapsed")
	}
	fc.Advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	// Exactly one probe until it resolves.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second probe")
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s during probe, want half-open", b.State())
	}
	b.OnSuccess()
	if b.State() != "closed" || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
	// The probe's success reset the consecutive-failure count.
	if b.OnFailure(0) || b.OnFailure(0) {
		t.Fatal("failure count survived the close")
	}

	var nilB *Breaker
	if !nilB.Allow() || nilB.OnFailure(0) || nilB.State() != "closed" || nilB.Opens() != 0 {
		t.Fatal("nil breaker is not the disabled state")
	}
	nilB.OnSuccess()
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	fc := NewFakeClock()
	b := NewBreaker(1, 10*time.Millisecond, fc)
	if !b.OnFailure(0) {
		t.Fatal("threshold-1 breaker did not open on first failure")
	}
	fc.Advance(10 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	if !b.OnFailure(0) {
		t.Fatal("failed probe did not report re-opening")
	}
	if b.State() != "open" || b.Opens() != 2 {
		t.Fatalf("state = %s opens = %d after failed probe, want open/2", b.State(), b.Opens())
	}
}

func TestBreakerRetryAfterSeedsCooldown(t *testing.T) {
	fc := NewFakeClock()
	b := NewBreaker(1, 10*time.Millisecond, fc)
	// The server's advisory horizon outranks the client default.
	b.OnFailure(500 * time.Millisecond)
	fc.Advance(499 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker reopened before the server's RetryAfter")
	}
	fc.Advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker still closed after the server's RetryAfter")
	}
}

// sessOKReply frames body as a successful session reply.
func sessOKReply(body []byte) []byte {
	rep := make([]byte, robustRepHeader+len(body))
	binary.BigEndian.PutUint32(rep[0:4], sessOK)
	binary.BigEndian.PutUint32(rep[4:8], crc32.ChecksumIEEE(body))
	copy(rep[robustRepHeader:], body)
	return rep
}

// pushbackNConn answers n pushback frames, then clean empty replies.
type pushbackNConn struct {
	n        int
	calls    int
	ra       time.Duration
	draining bool
}

func (c *pushbackNConn) Call(opIdx int, req, replyBuf []byte) ([]byte, error) {
	c.calls++
	if c.calls <= c.n {
		return AppendPushbackFrame(nil, c.draining, c.ra), nil
	}
	return sessOKReply(nil), nil
}

func (c *pushbackNConn) Close() error { return nil }

// TestPushbackRetriesNonIdempotent pins the semantic that makes
// admission control compose with at-most-once: a pushed-back call was
// rejected before decode, so even a non-idempotent operation outside
// an at-most-once session — which transport faults may not retry —
// retries freely, pausing exactly the server's advisory RetryAfter
// (no jitter) instead of the backoff schedule.
func TestPushbackRetriesNonIdempotent(t *testing.T) {
	const ra = 3 * time.Millisecond
	p := allocPres(t) // nop is not [idempotent]
	fc := NewFakeClock()
	fc.AutoAdvance(true)
	conn := &pushbackNConn{n: 2, ra: ra}
	r := NewRobustConn(conn, p, RobustOptions{
		ClientID:   1,
		AtMostOnce: false,
		Policy:     RetryPolicy{MaxAttempts: 4, BaseBackoff: 10 * time.Millisecond, Seed: 5},
		Clock:      fc,
	})
	e := stats.New([]string{"nop", "put"})
	r.SetStats(e)

	if _, err := r.Call(0, nil, nil); err != nil {
		t.Fatalf("call after pushbacks cleared: %v", err)
	}
	if conn.calls != 3 {
		t.Fatalf("conn saw %d calls, want 3 (two pushbacks, one success)", conn.calls)
	}
	sleeps := fc.Sleeps()
	if len(sleeps) != 2 || sleeps[0] != ra || sleeps[1] != ra {
		t.Fatalf("sleeps = %v, want exactly [%v %v] (advisory pause, unjittered)", sleeps, ra, ra)
	}
	snap := e.Snapshot()
	if snap.Pushbacks != 2 {
		t.Fatalf("pushbacks = %d, want 2", snap.Pushbacks)
	}
	if snap.Ops[0].Retries != 2 {
		t.Fatalf("retries = %d, want 2", snap.Ops[0].Retries)
	}
}

// TestPushbackWithoutAdviceUsesBackoff covers the RetryAfter==0 wire
// value ("no advice"): the loop falls back to its jittered schedule.
func TestPushbackWithoutAdviceUsesBackoff(t *testing.T) {
	p := allocPres(t)
	fc := NewFakeClock()
	fc.AutoAdvance(true)
	conn := &pushbackNConn{n: 1, ra: 0}
	r := NewRobustConn(conn, p, RobustOptions{
		ClientID: 1,
		Policy:   RetryPolicy{MaxAttempts: 4, BaseBackoff: 10 * time.Millisecond, Seed: 5},
		Clock:    fc,
	})
	if _, err := r.Call(0, nil, nil); err != nil {
		t.Fatalf("call: %v", err)
	}
	sleeps := fc.Sleeps()
	if len(sleeps) != 1 || sleeps[0] < 5*time.Millisecond || sleeps[0] > 10*time.Millisecond {
		t.Fatalf("sleeps = %v, want one jittered backoff in [5ms, 10ms]", sleeps)
	}
}

// TestDrainingPushbackTaxonomy exhausts the retry loop against a
// draining server: the single-attempt budget of a non-idempotent call
// is still widened to the policy bound (retrying a shed call is always
// safe), and the final error carries the draining taxonomy.
func TestDrainingPushbackTaxonomy(t *testing.T) {
	p := allocPres(t)
	fc := NewFakeClock()
	fc.AutoAdvance(true)
	conn := &pushbackNConn{n: 1000, ra: 2 * time.Millisecond, draining: true}
	r := NewRobustConn(conn, p, RobustOptions{
		ClientID: 1,
		Policy:   RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, Seed: 5},
		Clock:    fc,
	})
	_, err := r.Call(0, nil, nil)
	var ov *ErrOverloaded
	if !errors.As(err, &ov) || !ov.Draining {
		t.Fatalf("err = %v, want draining *ErrOverloaded", err)
	}
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v does not match ErrDraining", err)
	}
	if conn.calls != 4 {
		t.Fatalf("conn saw %d calls, want the full policy bound of 4", conn.calls)
	}
}

// TestBreakerFastFailsCalls wires a Breaker into the retry loop:
// persistent pushback trips it, a tripped breaker fails calls without
// touching the transport, and the cooled-down probe closes it again.
func TestBreakerFastFailsCalls(t *testing.T) {
	p := allocPres(t)
	fc := NewFakeClock()
	fc.AutoAdvance(true)
	conn := &pushbackNConn{n: 2, ra: time.Millisecond}
	br := NewBreaker(2, 100*time.Millisecond, fc)
	r := NewRobustConn(conn, p, RobustOptions{
		ClientID: 1,
		Policy:   RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, Seed: 5},
		Clock:    fc,
		Breaker:  br,
	})
	e := stats.New([]string{"nop", "put"})
	r.SetStats(e)

	// Two pushed-back attempts reach the threshold and trip it.
	_, err := r.Call(0, nil, nil)
	var ov *ErrOverloaded
	if !errors.As(err, &ov) {
		t.Fatalf("first call err = %v, want *ErrOverloaded", err)
	}
	if br.State() != "open" {
		t.Fatalf("breaker %s after persistent pushback, want open", br.State())
	}
	// While open, calls fail fast: the transport sees nothing.
	if _, err := r.Call(0, nil, nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("fast-fail err = %v, want ErrCircuitOpen", err)
	}
	if conn.calls != 2 {
		t.Fatalf("conn saw %d calls, want 2 (fast fail must not touch the wire)", conn.calls)
	}
	// After the cooldown the probe goes through and closes it.
	fc.Advance(200 * time.Millisecond)
	if _, err := r.Call(0, nil, nil); err != nil {
		t.Fatalf("probe call: %v", err)
	}
	if br.State() != "closed" {
		t.Fatalf("breaker %s after successful probe, want closed", br.State())
	}
	snap := e.Snapshot()
	if snap.BreakerOpens != 1 || snap.BreakerFastFails != 1 || snap.Pushbacks != 2 {
		t.Fatalf("counters = opens %d fastfails %d pushbacks %d, want 1/1/2",
			snap.BreakerOpens, snap.BreakerFastFails, snap.Pushbacks)
	}
}

// TestBudgetSuppressesRetryStorm starves the retry budget: when
// nearly every call is failing, deposits cannot keep up and the loop
// fails fast with the last error instead of spending MaxAttempts.
func TestBudgetSuppressesRetryStorm(t *testing.T) {
	p := clockPres(t) // echo is [idempotent]: freely retryable
	fc := NewFakeClock()
	fc.AutoAdvance(true)
	conn := &failNConn{n: 1000}
	bud := NewRetryBudget(1, 0.001)
	r := NewRobustConn(conn, p, RobustOptions{
		ClientID: 1,
		Policy:   RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Millisecond, Seed: 5},
		Clock:    fc,
		Budget:   bud,
	})
	e := stats.New([]string{"echo"})
	r.SetStats(e)

	// The full bucket pays for exactly one retry; the second is
	// suppressed and the call fails with the transport's error.
	if _, err := r.Call(0, nil, nil); !errors.Is(err, ErrCorruptReply) {
		t.Fatalf("err = %v, want the last attempt's ErrCorruptReply", err)
	}
	if conn.calls != 2 {
		t.Fatalf("conn saw %d calls, want 2 (budget must stop the storm)", conn.calls)
	}
	// The next call's single deposit cannot buy a whole retry.
	if _, err := r.Call(0, nil, nil); !errors.Is(err, ErrCorruptReply) {
		t.Fatalf("err = %v, want ErrCorruptReply", err)
	}
	if conn.calls != 3 {
		t.Fatalf("conn saw %d calls, want 3 (retry rate collapsed to the deposit ratio)", conn.calls)
	}
	if got := bud.Suppressed(); got != 2 {
		t.Fatalf("suppressed = %d, want 2", got)
	}
	if snap := e.Snapshot(); snap.RetrySuppressed != 2 {
		t.Fatalf("stats suppressed = %d, want 2", snap.RetrySuppressed)
	}
}

// sessionRequestFrame builds a valid client request frame by hand.
func sessionRequestFrame(cid, seq, flags uint32, body []byte) []byte {
	f := make([]byte, robustReqHeader+len(body))
	binary.BigEndian.PutUint32(f[0:4], cid)
	binary.BigEndian.PutUint32(f[4:8], seq)
	binary.BigEndian.PutUint32(f[8:12], flags)
	binary.BigEndian.PutUint32(f[12:16], crc32.ChecksumIEEE(body))
	copy(f[robustReqHeader:], body)
	return f
}

// The admission path's allocation contract: deciding a call — admit
// or reject — allocates nothing, because overload is exactly when the
// server cannot afford to allocate per rejected call.

func TestAdmissionDecisionZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	a := NewAdmission(AdmissionOptions{MaxInflight: 64, PerClient: 8})
	gateAllocs(t, "admitted call decision", 0, func() {
		if pb := a.Admit(7, false); pb != nil {
			t.Fatal("call rejected under the cap")
		}
		a.Release(7)
	})

	full := NewAdmission(AdmissionOptions{MaxInflight: 1})
	if full.Admit(1, false) != nil {
		t.Fatal("pre-fill rejected")
	}
	gateAllocs(t, "shed call rejection", 0, func() {
		if full.Admit(2, false) == nil {
			t.Fatal("call admitted over the cap")
		}
	})
}

func TestSessionServerShedHandleZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	disp, plan, _, _ := serverStack(t)
	s := NewSessionServer(disp, plan, NewReplyCache(64))
	a := NewAdmission(AdmissionOptions{MaxInflight: 1})
	s.SetAdmission(a)
	if a.Admit(99, false) != nil {
		t.Fatal("pre-fill rejected")
	}
	frame := sessionRequestFrame(1, 1, 0, nil)
	idx := plan.OpIndex("nop")
	gateAllocs(t, "admission-on shed null call", 0, func() {
		if rep := s.Handle(t.Context(), idx, frame); len(rep) != robustRepHeader {
			t.Fatalf("shed reply is %d bytes, want the pushback frame", len(rep))
		}
	})
}

// An admitted idempotent null call under admission control costs what
// it costs without it: one allocation, the reply frame itself.
func TestSessionServerAdmittedHandleBoundedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	disp, plan, _, _ := serverStack(t)
	s := NewSessionServer(disp, plan, NewReplyCache(64))
	s.SetAdmission(NewAdmission(AdmissionOptions{MaxInflight: 64, PerClient: 8}))
	frame := sessionRequestFrame(1, 1, flagIdempotent, nil)
	idx := plan.OpIndex("nop")
	gateAllocs(t, "admission-on admitted null call", 1, func() {
		if rep := s.Handle(t.Context(), idx, frame); len(rep) < robustRepHeader {
			t.Fatalf("short reply: %d bytes", len(rep))
		}
	})
}

// The client's protection (budget deposits, breaker bookkeeping) adds
// zero allocations to a successful session call.
func TestRobustCallZeroAllocsWithProtection(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	p := allocPres(t)
	conn := &fixedConn{reply: sessOKReply(nil)}
	r := NewRobustConn(conn, p, RobustOptions{
		ClientID: 1,
		Budget:   NewRetryBudget(10, 0.1),
		Breaker:  NewBreaker(5, 100*time.Millisecond, nil),
	})
	replyBuf := make([]byte, 0, 64)
	gateAllocs(t, "protected null session call", 0, func() {
		if _, err := r.Call(0, nil, replyBuf); err != nil {
			t.Fatal(err)
		}
	})
}
