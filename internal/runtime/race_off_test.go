//go:build !race

package runtime

const raceEnabled = false
