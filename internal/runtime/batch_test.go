package runtime

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexrpc/internal/idl/corba"
	"flexrpc/internal/pdl"
	"flexrpc/internal/pres"
	"flexrpc/internal/stats"
)

// batchPres declares echo as [batchable] and lone as an ordinary
// operation, so tests can watch calls take (and skip) the batcher.
func batchPres(t testing.TB) *pres.Presentation {
	t.Helper()
	f, err := corba.Parse("b.idl", `
		interface B {
			long echo(in long n);
			long lone(in long n);
		};`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pdl.ApplyLoose(pres.Default(f.Interface("B"), pres.StyleCORBA),
		"b.pdl", "interface B {\n    [batchable, idempotent] echo();\n};\n")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// batchLoopback carries session frames into a SessionServer and
// counts wire exchanges, the quantity batching exists to reduce.
type batchLoopback struct {
	sess   *SessionServer
	frames atomic.Int64
}

func (l *batchLoopback) Call(opIdx int, req, replyBuf []byte) ([]byte, error) {
	l.frames.Add(1)
	frame := l.sess.Handle(context.Background(), opIdx, req)
	return append(replyBuf[:0], frame...), nil
}

func (l *batchLoopback) Close() error { return nil }

type batchStack struct {
	plan  *Plan
	conn  *RobustConn
	wire  *batchLoopback
	execs *atomic.Int64
	stats *stats.Endpoint
}

func newBatchStack(t testing.TB, clock Clock, opts BatchOptions) *batchStack {
	t.Helper()
	p := batchPres(t)
	var execs atomic.Int64
	disp := NewDispatcher(p)
	double := func(c *Call) error {
		execs.Add(1)
		c.SetResult(c.Arg(0).(int32) * 2)
		return nil
	}
	disp.Handle("echo", double)
	disp.Handle("lone", double)
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSessionServer(disp, plan, NewReplyCacheSharded(64, 4))
	wire := &batchLoopback{sess: sess}
	conn := NewRobustConn(wire, p, RobustOptions{ClientID: 5, AtMostOnce: true, Clock: clock})
	e := stats.New([]string{"echo", "lone"})
	conn.SetStats(e)
	conn.EnableBatching(opts)
	t.Cleanup(func() { conn.Close() })
	return &batchStack{plan: plan, conn: conn, wire: wire, execs: &execs, stats: e}
}

// call invokes op(n) through the conn the way concurrent callers (the
// pooled parallel client) do — the serial Client holds a per-client
// mutex across each round trip, so batchable calls must reach the
// conn concurrently to share a frame.
func (st *batchStack) call(ctx context.Context, op string, n int32) (int32, error) {
	opIdx := st.plan.OpIndex(op)
	enc := XDRCodec.NewEncoder()
	if err := st.plan.Ops[opIdx].EncodeRequest(enc, []Value{n}); err != nil {
		return 0, err
	}
	body, err := st.conn.CallContext(ctx, opIdx, enc.Bytes(), nil)
	if err != nil {
		return 0, err
	}
	return decodeDoubled(st.plan, opIdx, body)
}

// decodeDoubled reads one dispatcher reply: status word, then the
// int32 result.
func decodeDoubled(plan *Plan, opIdx int, body []byte) (int32, error) {
	dec := XDRCodec.NewDecoder(body)
	status, err := dec.Uint32()
	if err != nil {
		return 0, err
	}
	if status != replyOK {
		msg, _ := dec.String()
		return 0, errors.New("remote: " + msg)
	}
	_, ret, err := plan.Ops[opIdx].DecodeReply(dec, nil, nil)
	if err != nil {
		return 0, err
	}
	return ret.(int32), nil
}

// TestBatchSizeFlushMergesCalls is the deterministic merge test: with
// MaxCalls = 4 and a never-advancing fake clock (so the timer can't
// fire), four concurrent calls must ride ONE wire frame, execute once
// each, and all return correct results.
func TestBatchSizeFlushMergesCalls(t *testing.T) {
	fc := NewFakeClock()
	st := newBatchStack(t, fc, BatchOptions{MaxCalls: 4, MaxDelay: time.Hour})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int32) {
			defer wg.Done()
			got, err := st.call(context.Background(), "echo", n)
			if err != nil {
				t.Errorf("echo(%d): %v", n, err)
				return
			}
			if got != 2*n {
				t.Errorf("echo(%d) = %d, want %d", n, got, 2*n)
			}
		}(int32(i + 1))
	}
	wg.Wait()

	if got := st.wire.frames.Load(); got != 1 {
		t.Fatalf("4 batchable calls used %d wire frames, want 1", got)
	}
	if got := st.execs.Load(); got != 4 {
		t.Fatalf("handler executed %d times, want 4", got)
	}
	snap := st.stats.Snapshot()
	if snap.BatchedCalls != 4 || snap.BatchFlushes != 1 {
		t.Fatalf("batched_calls=%d batch_flushes=%d, want 4 and 1",
			snap.BatchedCalls, snap.BatchFlushes)
	}
}

// TestBatcherLoneCallBound pins the latency contract: a lone call
// waits for companions on the flusher's timer, and that timer is
// exactly MaxDelay — never more. The fake clock proves the bound
// without trusting wall time.
func TestBatcherLoneCallBound(t *testing.T) {
	const bound = 5 * time.Millisecond
	fc := NewFakeClock()
	st := newBatchStack(t, fc, BatchOptions{MaxCalls: 64, MaxDelay: bound})

	done := make(chan error, 1)
	go func() {
		got, err := st.call(context.Background(), "echo", 21)
		if err == nil && got != 42 {
			err = errBadReply
		}
		done <- err
	}()

	// The flusher must arm exactly one timer, and it must be the
	// configured bound — the "never delays a lone call past MaxDelay"
	// guarantee is this assertion.
	deadline := time.Now().Add(5 * time.Second)
	for len(fc.Sleeps()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher never armed its timer")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if sleeps := fc.Sleeps(); sleeps[0] != bound {
		t.Fatalf("flusher armed %v, want exactly MaxDelay %v", sleeps[0], bound)
	}

	fc.Advance(bound)
	if err := <-done; err != nil {
		t.Fatalf("lone batched call: %v", err)
	}
	if got := st.wire.frames.Load(); got != 1 {
		t.Fatalf("lone call used %d wire frames, want 1", got)
	}
	if snap := st.stats.Snapshot(); snap.BatchedCalls != 1 {
		t.Fatalf("batched_calls = %d, want 1", snap.BatchedCalls)
	}
}

var errBadReply = errors.New("wrong reply value")

// TestBatchBypasses checks the paths that must NOT ride the batcher:
// non-[batchable] operations and calls carrying a cancelable context
// go straight to the per-call session path.
func TestBatchBypasses(t *testing.T) {
	fc := NewFakeClock()
	fc.AutoAdvance(true)
	st := newBatchStack(t, fc, BatchOptions{MaxCalls: 4, MaxDelay: time.Millisecond})

	if got, err := st.call(context.Background(), "lone", 3); err != nil || got != 6 {
		t.Fatalf("lone(3) = %v, %v", got, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if got, err := st.call(ctx, "echo", 4); err != nil || got != 8 {
		t.Fatalf("echo(4) under cancelable ctx = %v, %v", got, err)
	}
	if snap := st.stats.Snapshot(); snap.BatchedCalls != 0 {
		t.Fatalf("bypass paths recorded %d batched calls, want 0", snap.BatchedCalls)
	}
	if got := st.wire.frames.Load(); got != 2 {
		t.Fatalf("2 bypass calls used %d wire frames, want 2", got)
	}
}

// TestBatchConcurrentStress drives many goroutines through the
// batcher under real time and checks nothing is lost, duplicated or
// cross-wired: every call sees its own doubled argument and the
// handler runs exactly once per call.
func TestBatchConcurrentStress(t *testing.T) {
	st := newBatchStack(t, WallClock, BatchOptions{MaxCalls: 8, MaxDelay: 100 * time.Microsecond})

	const goroutines, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base int32) {
			defer wg.Done()
			for i := int32(0); i < per; i++ {
				n := base*1000 + i
				got, err := st.call(context.Background(), "echo", n)
				if err != nil {
					t.Errorf("echo(%d): %v", n, err)
					return
				}
				if got != 2*n {
					t.Errorf("echo(%d) = %d: cross-wired reply", n, got)
					return
				}
			}
		}(int32(g))
	}
	wg.Wait()
	if got := st.execs.Load(); got != goroutines*per {
		t.Fatalf("handler executed %d times for %d calls", got, goroutines*per)
	}
}

// TestBatchReplayedWhole: a retransmitted batch frame (same cid/seq)
// is replayed from the reply cache without re-executing any sub-call
// — the outer at-most-once key covers the whole batch.
func TestBatchReplayedWhole(t *testing.T) {
	p := batchPres(t)
	var execs atomic.Int64
	disp := NewDispatcher(p)
	disp.Handle("echo", func(c *Call) error {
		execs.Add(1)
		c.SetResult(c.Arg(0).(int32) * 2)
		return nil
	})
	plan, err := NewPlan(p, XDRCodec, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSessionServer(disp, plan, NewReplyCacheSharded(16, 2))

	enc := XDRCodec.NewEncoder()
	if err := plan.Ops[plan.OpIndex("echo")].EncodeRequest(enc, []Value{int32(9)}); err != nil {
		t.Fatal(err)
	}
	body := binary.BigEndian.AppendUint32(nil, 2)
	body = appendBatchEntry(body, uint32(plan.OpIndex("echo")), enc.Bytes())
	body = appendBatchEntry(body, uint32(plan.OpIndex("echo")), enc.Bytes())

	frame := make([]byte, robustReqHeader+len(body))
	binary.BigEndian.PutUint32(frame[0:4], 11) // cid
	binary.BigEndian.PutUint32(frame[4:8], 1)  // seq
	binary.BigEndian.PutUint32(frame[8:12], flagBatch)
	binary.BigEndian.PutUint32(frame[12:16], crc32.ChecksumIEEE(body))
	copy(frame[robustReqHeader:], body)

	first := sess.Handle(context.Background(), 0, frame)
	replay := sess.Handle(context.Background(), 0, frame)
	if execs.Load() != 2 {
		t.Fatalf("retransmitted batch re-executed: %d executions for 2 sub-calls", execs.Load())
	}
	if !bytes.Equal(first, replay) {
		t.Fatal("replayed batch reply differs from the original")
	}
	if binary.BigEndian.Uint32(first[0:4]) != sessOK {
		t.Fatalf("batch reply status = %d", binary.BigEndian.Uint32(first[0:4]))
	}
	bodies, err := decodeBatchReply(first[robustRepHeader:], 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bodies {
		got, err := decodeDoubled(plan, plan.OpIndex("echo"), b)
		if err != nil || got != 18 {
			t.Fatalf("sub-reply %d: %v, %v", i, got, err)
		}
	}
}

// FuzzBatchCodec round-trips the batch frame codec: whatever decodes
// must re-encode to bytes that decode to the same sub-calls, and no
// input may panic either decoder.
func FuzzBatchCodec(f *testing.F) {
	seed := binary.BigEndian.AppendUint32(nil, 2)
	seed = appendBatchEntry(seed, 3, []byte("abc"))
	seed = appendBatchEntry(seed, 0, nil)
	f.Add(seed)
	f.Add([]byte{})
	f.Add(binary.BigEndian.AppendUint32(nil, 0xffffffff))

	f.Fuzz(func(t *testing.T, data []byte) {
		ops, reqs, err := decodeBatchRequest(data)
		if err == nil {
			re := binary.BigEndian.AppendUint32(nil, uint32(len(ops)))
			for i := range ops {
				re = appendBatchEntry(re, uint32(ops[i]), reqs[i])
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("request did not round-trip:\n in: %x\nout: %x", data, re)
			}
		}
		if bodies, err := decodeBatchReply(data, -1); err == nil {
			t.Fatalf("decodeBatchReply accepted %d bodies for want -1", len(bodies))
		}
		// A reply body round-trips under its own decoded count.
		if len(data) >= 4 {
			want := int(binary.BigEndian.Uint32(data[0:4]))
			if bodies, err := decodeBatchReply(data, want); err == nil {
				re := binary.BigEndian.AppendUint32(nil, uint32(len(bodies)))
				for _, b := range bodies {
					re = appendBatchReplyEntry(re, b)
				}
				if !bytes.Equal(re, data) {
					t.Fatalf("reply did not round-trip:\n in: %x\nout: %x", data, re)
				}
			}
		}
	})
}
