package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"flexrpc/internal/pres"
	"flexrpc/internal/stats"
)

// A Conn is a client-side message transport: it moves request bytes
// to the server's dispatcher and returns the reply bytes, which may
// land in replyBuf when provided and large enough.
type Conn interface {
	Call(opIdx int, req []byte, replyBuf []byte) ([]byte, error)
	Close() error
}

// SelfFraming is implemented by transports whose own protocol
// already conveys remote errors (Sun RPC's accept_stat); the runtime
// then omits its status word, keeping the wire format interoperable
// with hand-coded peers speaking the same protocol.
type SelfFraming interface {
	SelfFraming() bool
}

// An Invoker is anything a client can call operations through: the
// marshal-based Client below, or the same-domain engine in the
// inproc transport. args is indexed by parameter position (out-only
// positions ignored); outBufs optionally provides caller-allocated
// landing buffers per parameter, and retBuf one for the result.
// The returned slice is indexed by parameter position for out/inout
// values; ret is the operation result.
type Invoker interface {
	Invoke(op string, args []Value, outBufs [][]byte, retBuf []byte) (outs []Value, ret Value, err error)
}

// A Client executes calls by marshaling through a Plan onto a Conn.
type Client struct {
	plan     *Plan
	conn     Conn
	framed   bool
	parallel bool

	// Observability: nil means disabled, and disabled costs exactly
	// one nil check per call (the zero-alloc gates assert this).
	stats     *stats.Endpoint
	traceConn TraceConn // conn's trace-propagating form, when it has one

	// Serial mode: one encoder/decoder/reply buffer behind a mutex.
	mu       sync.Mutex
	enc      Encoder
	dec      ReusableDecoder
	replyBuf []byte

	// Parallel mode: per-call marshal state sharded through a pool.
	states sync.Pool
}

// A TraceConn is a Conn that can propagate a trace id alongside a
// call — the session layer carries it to the server in the upper
// bits of its existing flags word, so client- and server-side trace
// events correlate without any wire-format change.
type TraceConn interface {
	Conn
	CallTraceContext(ctx context.Context, opIdx int, req, replyBuf []byte, tid uint32) ([]byte, error)
}

// callState is the per-call marshal state a parallel client shards:
// the encoder, a reusable reply decoder, and the reply landing
// buffer, recycled across calls so the steady-state hot path
// allocates nothing.
type callState struct {
	enc      Encoder
	dec      ReusableDecoder
	replyBuf []byte
}

// NewClient builds a marshal-based client for presentation p over
// conn. hooks may be nil when no parameter is [special]. Calls are
// serialized per client; see NewParallelClient for concurrent use.
func NewClient(p *pres.Presentation, codec Codec, conn Conn, hooks SpecialHooks) (*Client, error) {
	plan, err := NewPlan(p, codec, hooks)
	if err != nil {
		return nil, err
	}
	tc, _ := conn.(TraceConn)
	return &Client{plan: plan, conn: conn, framed: connFramed(conn), traceConn: tc, enc: codec.NewEncoder()}, nil
}

// NewParallelClient builds a marshal-based client whose Invoke is
// safe for concurrent use without a global mutex: marshal state is
// sharded through a pool, so concurrent calls pipeline down to the
// transport (which must itself accept concurrent Call invocations,
// as the xid-multiplexed Sun RPC client does).
//
// Plans with [special] parameters require hooks implementing
// StepHooks: the bind-time step form both avoids per-call name
// dispatch and declares the hooks re-entrant. Plain SpecialHooks are
// rejected here — at bind time, with a clear error — because the
// serial client's one-call-at-a-time guarantee they may rely on no
// longer holds.
func NewParallelClient(p *pres.Presentation, codec Codec, conn Conn, hooks SpecialHooks) (*Client, error) {
	plan, err := NewPlan(p, codec, hooks)
	if err != nil {
		return nil, err
	}
	if hooks != nil && planHasSpecial(plan) {
		if _, ok := hooks.(StepHooks); !ok {
			return nil, fmt.Errorf("runtime: %s has [special] parameters; the parallel client requires hooks implementing StepHooks (re-entrant bind-time steps), have %T",
				p.Interface.Name, hooks)
		}
	}
	tc, _ := conn.(TraceConn)
	c := &Client{plan: plan, conn: conn, framed: connFramed(conn), traceConn: tc, parallel: true}
	c.states.New = func() any { return &callState{enc: codec.NewEncoder()} }
	return c, nil
}

func connFramed(conn Conn) bool {
	if sf, ok := conn.(SelfFraming); ok && sf.SelfFraming() {
		return false
	}
	return true
}

// planHasSpecial reports whether any parameter of any operation
// carries the [special] attribute.
func planHasSpecial(pl *Plan) bool {
	for _, op := range pl.Ops {
		for _, a := range op.pres.Params {
			if a.Special {
				return true
			}
		}
	}
	return false
}

// Plan exposes the client's marshal plan (for tests and tooling).
func (c *Client) Plan() *Plan { return c.plan }

// EnableStats switches on client-side observability, creating the
// endpoint on first use: per-op counters and latency histograms,
// codec encode/decode meters, and the plan's copy/alloc meters. The
// session layer (RobustConn.SetStats) and transports can share the
// same endpoint so one snapshot covers the whole client stack.
// Enable before issuing calls; not safe concurrently with them.
func (c *Client) EnableStats() *stats.Endpoint {
	if c.stats == nil {
		c.SetStats(stats.New(opNames(c.plan.Pres)))
	}
	return c.stats
}

// SetStats installs (or, with nil, removes) the observability
// endpoint, pointing the plan's copy/alloc meters at it too.
func (c *Client) SetStats(e *stats.Endpoint) {
	c.stats = e
	c.plan.setStats(e)
	if tc, ok := c.conn.(interface{ SetStats(*stats.Endpoint) }); ok {
		tc.SetStats(e)
	}
}

// StatsEndpoint returns the live endpoint, nil when disabled.
func (c *Client) StatsEndpoint() *stats.Endpoint { return c.stats }

// Stats snapshots the client-side counters; on a disabled client the
// snapshot is empty but non-nil.
func (c *Client) Stats() *stats.Snapshot { return c.stats.Snapshot() }

// clientOutcome classifies a call error for the counters.
func clientOutcome(err error) stats.Outcome {
	if err == nil {
		return stats.OK
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return stats.TimedOut
	}
	return stats.Failed
}

// Invoke implements Invoker: marshal the request, round-trip it,
// unmarshal the reply. Serial clients serialize calls; parallel
// clients (NewParallelClient) pipeline them.
func (c *Client) Invoke(op string, args []Value, outBufs [][]byte, retBuf []byte) ([]Value, Value, error) {
	return c.invoke(nil, op, args, outBufs, retBuf)
}

// invoke is the shared entry for Invoke and InvokeContext. ctx may
// be nil (no deadline).
func (c *Client) invoke(ctx context.Context, op string, args []Value, outBufs [][]byte, retBuf []byte) ([]Value, Value, error) {
	idx := c.plan.OpIndex(op)
	if idx < 0 {
		return nil, nil, fmt.Errorf("runtime: unknown operation %q", op)
	}
	opPlan := c.plan.Ops[idx]

	if c.stats == nil {
		if c.parallel {
			return c.invokeParallel(ctx, opPlan, idx, args, outBufs, retBuf, 0)
		}
		return c.invokeSerial(ctx, opPlan, idx, args, outBufs, retBuf, 0)
	}

	t0 := time.Now()
	tid := c.stats.NextTraceID()
	var (
		outs []Value
		ret  Value
		err  error
	)
	if c.parallel {
		outs, ret, err = c.invokeParallel(ctx, opPlan, idx, args, outBufs, retBuf, tid)
	} else {
		outs, ret, err = c.invokeSerial(ctx, opPlan, idx, args, outBufs, retBuf, tid)
	}
	c.stats.Trace(tid, idx, stats.StageReply)
	c.stats.RecordCall(idx, time.Since(t0), 0, 0, clientOutcome(err))
	return outs, ret, err
}

// invokeSerial round-trips one call under the client mutex.
func (c *Client) invokeSerial(ctx context.Context, opPlan *OpPlan, idx int, args []Value, outBufs [][]byte, retBuf []byte, tid uint32) ([]Value, Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	if err := opPlan.EncodeRequest(c.enc, args); err != nil {
		return nil, nil, err
	}
	reply, err := c.roundTrip(ctx, idx, c.enc.Bytes(), c.replyBuf, tid)
	if err != nil {
		return nil, nil, err
	}
	if cap(reply) > cap(c.replyBuf) {
		c.replyBuf = reply[:cap(reply)]
	}
	dec := c.decoderFor(&c.dec, reply)
	return c.finishCall(opPlan, dec, outBufs, retBuf)
}

// invokeParallel is invokeSerial with pooled per-call state instead
// of the client mutex.
func (c *Client) invokeParallel(ctx context.Context, opPlan *OpPlan, idx int, args []Value, outBufs [][]byte, retBuf []byte, tid uint32) ([]Value, Value, error) {
	st := c.states.Get().(*callState)
	st.enc.Reset()
	if err := opPlan.EncodeRequest(st.enc, args); err != nil {
		c.states.Put(st)
		return nil, nil, err
	}
	reply, err := c.roundTrip(ctx, idx, st.enc.Bytes(), st.replyBuf, tid)
	if err != nil {
		c.states.Put(st)
		return nil, nil, err
	}
	if cap(reply) > cap(st.replyBuf) {
		st.replyBuf = reply[:cap(reply)]
	}
	dec := c.decoderFor(&st.dec, reply)
	outs, ret, err := c.finishCall(opPlan, dec, outBufs, retBuf)
	c.states.Put(st)
	return outs, ret, err
}

// roundTrip sends the marshaled request and returns the raw reply,
// metering bytes and propagating the trace id when stats are on.
func (c *Client) roundTrip(ctx context.Context, idx int, req, replyBuf []byte, tid uint32) ([]byte, error) {
	if c.stats != nil {
		c.stats.Encode.Add(len(req))
		c.stats.AddBytes(idx, len(req), 0)
		c.stats.Trace(tid, idx, stats.StageEncode)
		c.stats.Trace(tid, idx, stats.StageSend)
	}
	var reply []byte
	var err error
	if tid != 0 && c.traceConn != nil {
		reply, err = c.traceConn.CallTraceContext(ctx, idx, req, replyBuf, tid)
	} else {
		reply, err = CallConn(ctx, c.conn, idx, req, replyBuf)
	}
	if err != nil {
		return nil, err
	}
	if c.stats != nil {
		c.stats.Decode.Add(len(reply))
		c.stats.AddBytes(idx, 0, len(reply))
	}
	return reply, nil
}

// decoderFor aims the cached reusable decoder (allocating it on
// first use) at the reply, falling back to a fresh decoder for
// codecs that do not support reuse.
func (c *Client) decoderFor(slot *ReusableDecoder, reply []byte) Decoder {
	if *slot == nil {
		d := c.plan.limitDecoder(c.plan.Codec.NewDecoder(reply))
		if rd, ok := d.(ReusableDecoder); ok {
			*slot = rd
		}
		return d
	}
	(*slot).Reset(reply)
	return *slot
}

// finishCall consumes the runtime status framing (when the transport
// is not self-framing) and decodes the reply body.
func (c *Client) finishCall(opPlan *OpPlan, dec Decoder, outBufs [][]byte, retBuf []byte) ([]Value, Value, error) {
	if c.framed {
		status, err := dec.Uint32()
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: truncated reply: %w", err)
		}
		if status != replyOK {
			msg, err := dec.String()
			if err != nil {
				msg = "(unreadable error)"
			}
			return nil, nil, &RemoteError{Msg: msg}
		}
	}
	if opPlan.Op.Oneway {
		return nil, nil, nil
	}
	return opPlan.DecodeReply(dec, outBufs, retBuf)
}

// Close closes the underlying transport connection.
func (c *Client) Close() error { return c.conn.Close() }

// RawCall is the transport entry point for compiled stubs (the
// codegen back-end's direct-marshal clients): it round-trips a
// pre-marshaled request body and returns a decoder positioned at the
// reply body, having consumed the runtime's status framing when the
// transport is not self-framing. The raw reply slice is returned too
// so callers can recycle it as the next replyBuf.
func RawCall(conn Conn, codec Codec, opIdx int, req, replyBuf []byte) (Decoder, []byte, error) {
	reply, err := conn.Call(opIdx, req, replyBuf)
	if err != nil {
		return nil, nil, err
	}
	dec := codec.NewDecoder(reply)
	if connFramed(conn) {
		status, err := dec.Uint32()
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: truncated reply: %w", err)
		}
		if status != replyOK {
			msg, err := dec.String()
			if err != nil {
				msg = "(unreadable error)"
			}
			return nil, nil, &RemoteError{Msg: msg}
		}
	}
	return dec, reply, nil
}
