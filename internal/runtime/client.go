package runtime

import (
	"fmt"
	"sync"

	"flexrpc/internal/pres"
)

// A Conn is a client-side message transport: it moves request bytes
// to the server's dispatcher and returns the reply bytes, which may
// land in replyBuf when provided and large enough.
type Conn interface {
	Call(opIdx int, req []byte, replyBuf []byte) ([]byte, error)
	Close() error
}

// SelfFraming is implemented by transports whose own protocol
// already conveys remote errors (Sun RPC's accept_stat); the runtime
// then omits its status word, keeping the wire format interoperable
// with hand-coded peers speaking the same protocol.
type SelfFraming interface {
	SelfFraming() bool
}

// An Invoker is anything a client can call operations through: the
// marshal-based Client below, or the same-domain engine in the
// inproc transport. args is indexed by parameter position (out-only
// positions ignored); outBufs optionally provides caller-allocated
// landing buffers per parameter, and retBuf one for the result.
// The returned slice is indexed by parameter position for out/inout
// values; ret is the operation result.
type Invoker interface {
	Invoke(op string, args []Value, outBufs [][]byte, retBuf []byte) (outs []Value, ret Value, err error)
}

// A Client executes calls by marshaling through a Plan onto a Conn.
type Client struct {
	plan   *Plan
	conn   Conn
	framed bool

	mu       sync.Mutex
	enc      Encoder
	replyBuf []byte
}

// NewClient builds a marshal-based client for presentation p over
// conn. hooks may be nil when no parameter is [special].
func NewClient(p *pres.Presentation, codec Codec, conn Conn, hooks SpecialHooks) (*Client, error) {
	plan, err := NewPlan(p, codec, hooks)
	if err != nil {
		return nil, err
	}
	framed := true
	if sf, ok := conn.(SelfFraming); ok && sf.SelfFraming() {
		framed = false
	}
	return &Client{plan: plan, conn: conn, framed: framed, enc: codec.NewEncoder()}, nil
}

// Plan exposes the client's marshal plan (for tests and tooling).
func (c *Client) Plan() *Plan { return c.plan }

// Invoke implements Invoker: marshal the request, round-trip it,
// unmarshal the reply. Calls are serialized per client.
func (c *Client) Invoke(op string, args []Value, outBufs [][]byte, retBuf []byte) ([]Value, Value, error) {
	idx := c.plan.OpIndex(op)
	if idx < 0 {
		return nil, nil, fmt.Errorf("runtime: unknown operation %q", op)
	}
	opPlan := c.plan.Ops[idx]

	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.Reset()
	if err := opPlan.EncodeRequest(c.enc, args); err != nil {
		return nil, nil, err
	}
	reply, err := c.conn.Call(idx, c.enc.Bytes(), c.replyBuf)
	if err != nil {
		return nil, nil, err
	}
	if cap(reply) > cap(c.replyBuf) {
		c.replyBuf = reply[:cap(reply)]
	}
	dec := c.plan.Codec.NewDecoder(reply)
	if c.framed {
		status, err := dec.Uint32()
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: truncated reply: %w", err)
		}
		if status != replyOK {
			msg, err := dec.String()
			if err != nil {
				msg = "(unreadable error)"
			}
			return nil, nil, &RemoteError{Msg: msg}
		}
	}
	if opPlan.Op.Oneway {
		return nil, nil, nil
	}
	return opPlan.DecodeReply(dec, outBufs, retBuf)
}

// Close closes the underlying transport connection.
func (c *Client) Close() error { return c.conn.Close() }

// RawCall is the transport entry point for compiled stubs (the
// codegen back-end's direct-marshal clients): it round-trips a
// pre-marshaled request body and returns a decoder positioned at the
// reply body, having consumed the runtime's status framing when the
// transport is not self-framing. The raw reply slice is returned too
// so callers can recycle it as the next replyBuf.
func RawCall(conn Conn, codec Codec, opIdx int, req, replyBuf []byte) (Decoder, []byte, error) {
	reply, err := conn.Call(opIdx, req, replyBuf)
	if err != nil {
		return nil, nil, err
	}
	dec := codec.NewDecoder(reply)
	framed := true
	if sf, ok := conn.(SelfFraming); ok && sf.SelfFraming() {
		framed = false
	}
	if framed {
		status, err := dec.Uint32()
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: truncated reply: %w", err)
		}
		if status != replyOK {
			msg, err := dec.String()
			if err != nil {
				msg = "(unreadable error)"
			}
			return nil, nil, &RemoteError{Msg: msg}
		}
	}
	return dec, reply, nil
}
