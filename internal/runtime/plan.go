package runtime

import (
	"fmt"
	"sync"

	"flexrpc/internal/ir"
	"flexrpc/internal/pres"
	"flexrpc/internal/stats"
)

// SpecialHooks supply programmer-provided marshal routines for
// parameters carrying the [special] presentation attribute — the
// mechanism behind the Linux NFS client's direct-to-user-space
// unmarshaling (§4.1) and the pipe server's fbuf pass-through
// (§4.3). The generated stubs call these at exactly the point the
// default marshal code would have run.
type SpecialHooks interface {
	// EncodeSpecial marshals v for the named operation parameter.
	// It must produce the same wire bytes a default marshal of the
	// parameter's wire type would, or the peer will misparse.
	EncodeSpecial(op, param string, enc Encoder, v Value) error
	// DecodeSpecial unmarshals the named parameter, returning the
	// presentation-specific local value.
	DecodeSpecial(op, param string, dec Decoder) (Value, error)
}

// An EncodeStepFn is one compiled marshal step: it encodes a single
// parameter value, with the parameter's type, presentation attributes
// and codec dispatch already resolved at bind time.
type EncodeStepFn func(enc Encoder, v Value) error

// A DecodeStepFn is one compiled unmarshal step.
type DecodeStepFn func(dec Decoder) (Value, error)

// StepHooks is the bind-time form of SpecialHooks: instead of a
// name-keyed dispatch on every call, the plan compiler asks once per
// [special] parameter for a compiled step closure and threads it into
// the operation's step list. A StepHooks implementation also declares
// that its hooks are re-entrant, which the pooled parallel client
// (NewParallelClient) requires. Either method may return nil to fall
// back to the corresponding SpecialHooks method for that parameter.
type StepHooks interface {
	SpecialHooks
	EncodeStep(op, param string) EncodeStepFn
	DecodeStep(op, param string) DecodeStepFn
}

// A Plan is the compiled marshal program for one endpoint: one
// OpPlan per operation, honoring the endpoint's presentation.
//
// Compilation happens once, at bind time: every parameter's wire
// type, presentation attributes, [special] hook and codec dispatch
// are resolved into flat step lists — the moral equivalent of the
// Mach combination signatures the paper describes in §4.5, threaded
// code built per endpoint pair so the per-call path is a straight
// loop with no map lookups and no type switches.
type Plan struct {
	Pres   *pres.Presentation
	Codec  Codec
	Ops    []*OpPlan
	hooks  SpecialHooks
	byName map[string]int

	// maxDecode bounds any single variable-length item the plan's
	// decoders accept (see LimitedDecoder); hostile length prefixes
	// fail instead of forcing a huge allocation. A trusted peer
	// ([leaky, unprotected] — the paper's trust model, same ladder
	// FV005 lints against) gets the relaxed bound.
	maxDecode uint32

	// stats, when set, receives the copy/alloc meters the compiled
	// decode steps feed and the per-op [traced] parameter sizes. Set
	// before the plan is shared (Client.SetStats does this); nil —
	// the default — costs one nil check inside the affected steps.
	stats *stats.Endpoint

	decPool   sync.Pool // ReusableDecoder, for pooled server paths
	arenaPool sync.Pool // ArenaEncoder, for encode-into-arena paths
}

// setStats points the plan's meters at e (nil disables).
func (p *Plan) setStats(e *stats.Endpoint) { p.stats = e }

// SetStats is setStats for callers outside the package that drive a
// Plan directly (servers: SessionServer, suntcp, pipeconn). Use the
// dispatcher's endpoint so codec meters land beside its counters.
func (p *Plan) SetStats(e *stats.Endpoint) { p.stats = e }

// meterCopy records a decode-side copy into owned or caller storage.
func (p *Plan) meterCopy(n int) {
	if p.stats != nil {
		p.stats.Copy.Add(n)
	}
}

// meterAlloc records a fresh landing-buffer allocation.
func (p *Plan) meterAlloc(n int) {
	if p.stats != nil {
		p.stats.Alloc.Add(n)
	}
}

// Decode bounds applied by NewPlan according to the presentation's
// trust level; override with SetMaxDecode.
const (
	DefaultMaxDecode uint32 = 16 << 20
	TrustedMaxDecode uint32 = 256 << 20
)

// An OpPlan marshals one operation's requests and replies via its
// compiled step lists.
type OpPlan struct {
	Idx  int
	Op   *ir.Operation
	pres *pres.OpPres
	plan *Plan

	reqEnc []encStep   // in/inout params, request encode
	reqDec []decStep   // in/inout params, request decode (borrow)
	repEnc []encStep   // out/inout params + result, reply encode
	repDec []replyStep // out/inout params + result, reply decode
	nOut   int         // out/inout param count (0 → DecodeReply outs == nil)
}

// encStep encodes one parameter (arg == -1 for the result).
type encStep struct {
	arg  int
	name string
	fn   EncodeStepFn
}

// decStep decodes one request parameter into its positional slot.
type decStep struct {
	arg  int
	name string
	fn   DecodeStepFn
}

// replyStep decodes one out parameter or the result (arg == -1).
// When the presentation says the caller allocates ([alloc(caller)])
// and the parameter is a byte buffer, intoFn lands the data in the
// caller-provided buffer instead of fresh storage.
type replyStep struct {
	arg       int
	name      string
	callerBuf bool
	fn        DecodeStepFn
	intoFn    func(dec Decoder, dst []byte) (Value, error)
}

// NewPlan compiles marshal plans for every operation of p's
// interface. hooks may be nil when no parameter is [special].
func NewPlan(p *pres.Presentation, codec Codec, hooks SpecialHooks) (*Plan, error) {
	pl := &Plan{Pres: p, Codec: codec, hooks: hooks, byName: make(map[string]int)}
	pl.maxDecode = DefaultMaxDecode
	if p.Trust >= pres.TrustFull {
		pl.maxDecode = TrustedMaxDecode
	}
	for i := range p.Interface.Ops {
		op := &p.Interface.Ops[i]
		opPres := p.Op(op.Name)
		if opPres == nil {
			return nil, fmt.Errorf("runtime: presentation missing operation %q", op.Name)
		}
		opPlan, err := pl.compileOp(i, op, opPres)
		if err != nil {
			return nil, err
		}
		pl.Ops = append(pl.Ops, opPlan)
		pl.byName[op.Name] = i
	}
	return pl, nil
}

// OpIndex returns the plan index for the named operation, or -1.
func (p *Plan) OpIndex(name string) int {
	if i, ok := p.byName[name]; ok {
		return i
	}
	return -1
}

// SetMaxDecode overrides the plan's decode bound (0 restores the
// codec default). Call before the plan is shared across goroutines.
func (p *Plan) SetMaxDecode(n uint32) { p.maxDecode = n }

// MaxDecode reports the plan's decode bound.
func (p *Plan) MaxDecode() uint32 { return p.maxDecode }

// limitDecoder applies the plan's decode bound to d when the codec
// supports limiting.
func (p *Plan) limitDecoder(d Decoder) Decoder {
	if ld, ok := d.(LimitedDecoder); ok {
		ld.SetMaxLength(p.maxDecode)
	}
	return d
}

// AcquireDecoder returns a decoder positioned at body, reusing a
// pooled one when the codec supports it. Pair with ReleaseDecoder.
func (p *Plan) AcquireDecoder(body []byte) Decoder {
	if d, ok := p.decPool.Get().(ReusableDecoder); ok {
		d.Reset(body)
		return p.limitDecoder(d)
	}
	return p.limitDecoder(p.Codec.NewDecoder(body))
}

// ReleaseDecoder returns a decoder obtained from AcquireDecoder to
// the pool once the decoded message is no longer referenced.
func (p *Plan) ReleaseDecoder(d Decoder) {
	if rd, ok := d.(ReusableDecoder); ok {
		rd.Reset(nil)
		p.decPool.Put(rd)
	}
}

// RequestSteps reports how many compiled marshal steps a request of
// this operation carries; 0 means no in or inout parameters, so a
// bound transport can skip the encoder entirely.
func (op *OpPlan) RequestSteps() int { return len(op.reqEnc) }

// ReplySteps reports how many compiled marshal steps the reply
// carries; 0 means no out/inout parameters and no result.
func (op *OpPlan) ReplySteps() int { return len(op.repEnc) }

// attrs returns the presentation attributes for a parameter name,
// or a zero value when unannotated.
func (op *OpPlan) attrs(name string) *pres.ParamAttrs {
	if a, ok := op.pres.Params[name]; ok {
		return a
	}
	return &zeroAttrs
}

var zeroAttrs pres.ParamAttrs

// compileOp builds the four step lists for one operation.
func (pl *Plan) compileOp(idx int, op *ir.Operation, opPres *pres.OpPres) (*OpPlan, error) {
	o := &OpPlan{Idx: idx, Op: op, pres: opPres, plan: pl}
	for i := range op.Params {
		prm := &op.Params[i]
		a := o.attrs(prm.Name)
		enc, dec, into, err := pl.compileParam(op.Name, prm.Name, prm.Type, a)
		if err != nil {
			return nil, err
		}
		if a.Traced {
			enc = pl.wrapTraced(idx, enc)
		}
		if prm.Dir == ir.In || prm.Dir == ir.InOut {
			o.reqEnc = append(o.reqEnc, encStep{arg: i, name: prm.Name, fn: enc})
			borrow := dec
			if !a.Special {
				borrow = pl.compileDecodeBorrow(prm.Type)
			}
			o.reqDec = append(o.reqDec, decStep{arg: i, name: prm.Name, fn: borrow})
		}
		if prm.Dir == ir.Out || prm.Dir == ir.InOut {
			o.nOut++
			o.repEnc = append(o.repEnc, encStep{arg: i, name: prm.Name, fn: enc})
			o.repDec = append(o.repDec, replyStep{
				arg: i, name: prm.Name,
				callerBuf: a.Alloc == pres.AllocCaller,
				fn:        dec, intoFn: into,
			})
		}
	}
	if op.HasResult() {
		a := o.attrs(pres.ResultParam)
		enc, dec, into, err := pl.compileParam(op.Name, pres.ResultParam, op.Result, a)
		if err != nil {
			return nil, err
		}
		if a.Traced {
			enc = pl.wrapTraced(idx, enc)
		}
		o.repEnc = append(o.repEnc, encStep{arg: -1, name: pres.ResultParam, fn: enc})
		o.repDec = append(o.repDec, replyStep{
			arg: -1, name: pres.ResultParam,
			callerBuf: a.Alloc == pres.AllocCaller,
			fn:        dec, intoFn: into,
		})
	}
	return o, nil
}

// compileParam resolves one parameter into its encode step, its
// own-storage decode step, and (for byte buffers) its decode-into
// step. [special] parameters resolve to the hooks, preferring the
// bind-time StepHooks form.
func (pl *Plan) compileParam(opName, prmName string, t *ir.Type, a *pres.ParamAttrs) (EncodeStepFn, DecodeStepFn, func(Decoder, []byte) (Value, error), error) {
	if a.Special {
		if pl.hooks == nil {
			what := "param " + prmName
			if prmName == pres.ResultParam {
				what = "result"
			}
			return nil, nil, nil, fmt.Errorf("runtime: %s.%s %s is [special] but no hooks were provided",
				pl.Pres.Interface.Name, opName, what)
		}
		var enc EncodeStepFn
		var dec DecodeStepFn
		if sh, ok := pl.hooks.(StepHooks); ok {
			enc = sh.EncodeStep(opName, prmName)
			dec = sh.DecodeStep(opName, prmName)
		}
		hooks := pl.hooks
		if enc == nil {
			enc = func(e Encoder, v Value) error { return hooks.EncodeSpecial(opName, prmName, e, v) }
		}
		if dec == nil {
			dec = func(d Decoder) (Value, error) { return hooks.DecodeSpecial(opName, prmName, d) }
		}
		return enc, dec, nil, nil
	}
	var into func(Decoder, []byte) (Value, error)
	switch t.Kind {
	case ir.Bytes:
		into = func(dec Decoder, dst []byte) (Value, error) {
			b, err := dec.BytesInto(dst)
			if err == nil {
				pl.meterCopy(len(b))
			}
			return b, err
		}
	case ir.FixedBytes:
		size := t.Size
		ownFn := pl.compileDecodeOwn(t)
		into = func(dec Decoder, dst []byte) (Value, error) {
			if len(dst) < size {
				return ownFn(dec)
			}
			if err := dec.FixedBytesInto(dst[:size]); err != nil {
				return nil, err
			}
			pl.meterCopy(size)
			return dst[:size], nil
		}
	}
	return compileEncode(t), pl.compileDecodeOwn(t), into, nil
}

// wrapTraced meters an encode step whose parameter carries [traced]:
// the per-op traced Meter accumulates how many values and encoded
// bytes flowed through it. Free when stats are disabled beyond one
// nil check; flexvet FV015 flags the pooled+[special] combinations
// where even the enabled path would force an allocation.
func (pl *Plan) wrapTraced(opIdx int, inner EncodeStepFn) EncodeStepFn {
	return func(enc Encoder, v Value) error {
		if pl.stats == nil {
			return inner(enc, v)
		}
		before := len(enc.Bytes())
		if err := inner(enc, v); err != nil {
			return err
		}
		pl.stats.AddTraced(opIdx, len(enc.Bytes())-before)
		return nil
	}
}

// compileEncode builds the encode step for wire type t: the type
// switch runs here, once, at bind time; the returned closure performs
// only the type assertion and the codec call.
func compileEncode(t *ir.Type) EncodeStepFn {
	if t == nil || t.Kind == ir.Void {
		return func(enc Encoder, v Value) error {
			if v != nil {
				return fmt.Errorf("runtime: void value must be nil, have %T", v)
			}
			return nil
		}
	}
	switch t.Kind {
	case ir.Bool:
		return func(enc Encoder, v Value) error {
			b, ok := v.(bool)
			if !ok {
				return typeErr(t, v)
			}
			enc.PutBool(b)
			return nil
		}
	case ir.Int32, ir.Enum:
		return func(enc Encoder, v Value) error {
			n, ok := v.(int32)
			if !ok {
				return typeErr(t, v)
			}
			enc.PutInt32(n)
			return nil
		}
	case ir.Uint32:
		return func(enc Encoder, v Value) error {
			n, ok := v.(uint32)
			if !ok {
				return typeErr(t, v)
			}
			enc.PutUint32(n)
			return nil
		}
	case ir.Int64:
		return func(enc Encoder, v Value) error {
			n, ok := v.(int64)
			if !ok {
				return typeErr(t, v)
			}
			enc.PutInt64(n)
			return nil
		}
	case ir.Uint64:
		return func(enc Encoder, v Value) error {
			n, ok := v.(uint64)
			if !ok {
				return typeErr(t, v)
			}
			enc.PutUint64(n)
			return nil
		}
	case ir.Float32:
		return func(enc Encoder, v Value) error {
			f, ok := v.(float32)
			if !ok {
				return typeErr(t, v)
			}
			enc.PutFloat32(f)
			return nil
		}
	case ir.Float64:
		return func(enc Encoder, v Value) error {
			f, ok := v.(float64)
			if !ok {
				return typeErr(t, v)
			}
			enc.PutFloat64(f)
			return nil
		}
	case ir.String:
		return func(enc Encoder, v Value) error {
			s, ok := v.(string)
			if !ok {
				return typeErr(t, v)
			}
			enc.PutString(s)
			return nil
		}
	case ir.Bytes:
		return func(enc Encoder, v Value) error {
			b, ok := v.([]byte)
			if !ok {
				return typeErr(t, v)
			}
			enc.PutBytes(b)
			return nil
		}
	case ir.FixedBytes:
		size := t.Size
		return func(enc Encoder, v Value) error {
			b, ok := v.([]byte)
			if !ok {
				return typeErr(t, v)
			}
			if len(b) != size {
				return fmt.Errorf("runtime: fixed opaque needs %d bytes, have %d", size, len(b))
			}
			enc.PutFixedBytes(b)
			return nil
		}
	case ir.Seq:
		elem := compileEncode(t.Elem)
		return func(enc Encoder, v Value) error {
			vs, ok := v.([]Value)
			if !ok {
				return typeErr(t, v)
			}
			enc.PutLen(len(vs))
			for i, e := range vs {
				if err := elem(enc, e); err != nil {
					return fmt.Errorf("element %d: %w", i, err)
				}
			}
			return nil
		}
	case ir.Array:
		elem := compileEncode(t.Elem)
		size := t.Size
		return func(enc Encoder, v Value) error {
			vs, ok := v.([]Value)
			if !ok {
				return typeErr(t, v)
			}
			if len(vs) != size {
				return fmt.Errorf("runtime: array needs %d elements, have %d", size, len(vs))
			}
			for i, e := range vs {
				if err := elem(enc, e); err != nil {
					return fmt.Errorf("element %d: %w", i, err)
				}
			}
			return nil
		}
	case ir.Struct:
		fields := make([]EncodeStepFn, len(t.Fields))
		names := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			fields[i] = compileEncode(f.Type)
			names[i] = f.Name
		}
		structName := t.Name
		return func(enc Encoder, v Value) error {
			vs, ok := v.([]Value)
			if !ok {
				return typeErr(t, v)
			}
			if len(vs) != len(fields) {
				return fmt.Errorf("runtime: struct %s needs %d fields, have %d", structName, len(fields), len(vs))
			}
			for i, fn := range fields {
				if err := fn(enc, vs[i]); err != nil {
					return fmt.Errorf("field %s: %w", names[i], err)
				}
			}
			return nil
		}
	case ir.Port:
		return func(enc Encoder, v Value) error {
			p, ok := v.(PortName)
			if !ok {
				return typeErr(t, v)
			}
			enc.PutUint32(uint32(p))
			return nil
		}
	}
	return func(Encoder, Value) error {
		return fmt.Errorf("runtime: cannot marshal kind %v", t.Kind)
	}
}

// compileDecodeScalar handles the kinds whose decode is identical for
// borrow and own semantics, or nil for the buffer-bearing kinds.
func compileDecodeScalar(t *ir.Type) DecodeStepFn {
	if t == nil || t.Kind == ir.Void {
		return func(Decoder) (Value, error) { return nil, nil }
	}
	switch t.Kind {
	case ir.Bool:
		return func(dec Decoder) (Value, error) { return dec.Bool() }
	case ir.Int32, ir.Enum:
		return func(dec Decoder) (Value, error) { return dec.Int32() }
	case ir.Uint32:
		return func(dec Decoder) (Value, error) { return dec.Uint32() }
	case ir.Int64:
		return func(dec Decoder) (Value, error) { return dec.Int64() }
	case ir.Uint64:
		return func(dec Decoder) (Value, error) { return dec.Uint64() }
	case ir.Float32:
		return func(dec Decoder) (Value, error) { return dec.Float32() }
	case ir.Float64:
		return func(dec Decoder) (Value, error) { return dec.Float64() }
	case ir.String:
		return func(dec Decoder) (Value, error) { return dec.String() }
	case ir.Port:
		return func(dec Decoder) (Value, error) {
			v, err := dec.Uint32()
			return PortName(v), err
		}
	}
	return nil
}

// compileDecodeBorrow builds the decode step for server-side in
// parameters: byte buffers alias the request message — the CORBA
// server mapping: in parameters are valid for the duration of the
// call, and a work function that retains them must copy. This is
// what lets a server receive bulk data with exactly one kernel copy
// on the request path.
func (pl *Plan) compileDecodeBorrow(t *ir.Type) DecodeStepFn {
	if fn := compileDecodeScalar(t); fn != nil {
		return fn
	}
	switch t.Kind {
	case ir.Bytes:
		return func(dec Decoder) (Value, error) { return dec.Bytes() }
	case ir.FixedBytes:
		size := t.Size
		return func(dec Decoder) (Value, error) { return dec.FixedBytes(size) }
	case ir.Seq:
		elem := pl.compileDecodeBorrow(t.Elem)
		return compileSeqDecode(elem)
	case ir.Array:
		elem := pl.compileDecodeBorrow(t.Elem)
		return compileArrayDecode(elem, t.Size)
	case ir.Struct:
		fields := make([]DecodeStepFn, len(t.Fields))
		for i, f := range t.Fields {
			fields[i] = pl.compileDecodeBorrow(f.Type)
		}
		return compileStructDecode(fields)
	}
	return pl.compileDecodeOwn(t)
}

// compileDecodeOwn builds the decode step for values the consumer
// will own (client-side replies, default move semantics): byte
// buffers land in fresh storage.
func (pl *Plan) compileDecodeOwn(t *ir.Type) DecodeStepFn {
	if fn := compileDecodeScalar(t); fn != nil {
		return fn
	}
	switch t.Kind {
	case ir.Bytes:
		return func(dec Decoder) (Value, error) {
			b, err := dec.Bytes()
			if err != nil {
				return nil, err
			}
			out := make([]byte, len(b))
			copy(out, b)
			pl.meterAlloc(len(b))
			pl.meterCopy(len(b))
			return out, nil
		}
	case ir.FixedBytes:
		size := t.Size
		return func(dec Decoder) (Value, error) {
			out := make([]byte, size)
			if err := dec.FixedBytesInto(out); err != nil {
				return nil, err
			}
			pl.meterAlloc(size)
			pl.meterCopy(size)
			return out, nil
		}
	case ir.Seq:
		elem := pl.compileDecodeOwn(t.Elem)
		return compileSeqDecode(elem)
	case ir.Array:
		elem := pl.compileDecodeOwn(t.Elem)
		return compileArrayDecode(elem, t.Size)
	case ir.Struct:
		fields := make([]DecodeStepFn, len(t.Fields))
		for i, f := range t.Fields {
			fields[i] = pl.compileDecodeOwn(f.Type)
		}
		return compileStructDecode(fields)
	}
	kind := t.Kind
	return func(Decoder) (Value, error) {
		return nil, fmt.Errorf("runtime: cannot unmarshal kind %v", kind)
	}
}

func compileSeqDecode(elem DecodeStepFn) DecodeStepFn {
	return func(dec Decoder) (Value, error) {
		n, err := decodeSeqLen(dec)
		if err != nil {
			return nil, err
		}
		vs := make([]Value, n)
		for i := range vs {
			if vs[i], err = elem(dec); err != nil {
				return nil, err
			}
		}
		return vs, nil
	}
}

func compileArrayDecode(elem DecodeStepFn, size int) DecodeStepFn {
	return func(dec Decoder) (Value, error) {
		vs := make([]Value, size)
		var err error
		for i := range vs {
			if vs[i], err = elem(dec); err != nil {
				return nil, err
			}
		}
		return vs, nil
	}
}

func compileStructDecode(fields []DecodeStepFn) DecodeStepFn {
	return func(dec Decoder) (Value, error) {
		vs := make([]Value, len(fields))
		var err error
		for i, fn := range fields {
			if vs[i], err = fn(dec); err != nil {
				return nil, err
			}
		}
		return vs, nil
	}
}

// EncodeRequest marshals the in and inout arguments. args is indexed
// by parameter position; out-only positions are ignored.
func (op *OpPlan) EncodeRequest(enc Encoder, args []Value) error {
	if len(args) != len(op.Op.Params) {
		return fmt.Errorf("runtime: %s takes %d params, have %d values", op.Op.Name, len(op.Op.Params), len(args))
	}
	for i := range op.reqEnc {
		st := &op.reqEnc[i]
		if err := st.fn(enc, args[st.arg]); err != nil {
			return fmt.Errorf("%s param %s: %w", op.Op.Name, st.name, err)
		}
	}
	return nil
}

// DecodeRequest unmarshals the in and inout arguments into a
// positional value slice (see DecodeRequestInto for the semantics).
func (op *OpPlan) DecodeRequest(dec Decoder) ([]Value, error) {
	args := make([]Value, len(op.Op.Params))
	if err := op.DecodeRequestInto(dec, args); err != nil {
		return nil, err
	}
	return args, nil
}

// DecodeRequestInto unmarshals the in and inout arguments into args,
// which must have one slot per parameter. Byte buffers alias the
// request message — the CORBA server mapping: in parameters are valid
// for the duration of the call, and a work function that retains them
// must copy. Pooled server paths use this to land arguments directly
// in a recycled Call without an intermediate slice.
func (op *OpPlan) DecodeRequestInto(dec Decoder, args []Value) error {
	for i := range op.reqDec {
		st := &op.reqDec[i]
		v, err := st.fn(dec)
		if err != nil {
			return fmt.Errorf("%s param %s: %w", op.Op.Name, st.name, err)
		}
		args[st.arg] = v
	}
	return nil
}

// EncodeReply marshals the out/inout values and the result.
func (op *OpPlan) EncodeReply(enc Encoder, outs []Value, ret Value) error {
	for i := range op.repEnc {
		st := &op.repEnc[i]
		v := ret
		if st.arg >= 0 {
			v = outs[st.arg]
		}
		if err := st.fn(enc, v); err != nil {
			if st.arg >= 0 {
				return fmt.Errorf("%s out param %s: %w", op.Op.Name, st.name, err)
			}
			return fmt.Errorf("%s result: %w", op.Op.Name, err)
		}
	}
	return nil
}

// DecodeReply unmarshals the out/inout values and result. outBufs,
// when non-nil, is indexed by parameter position and supplies
// caller-allocated landing buffers for byte-buffer parameters whose
// presentation says the caller allocates; retBuf does the same for
// the result. The returned values alias those buffers when they are
// used — the stub unmarshals directly into the caller's storage
// instead of allocating (§4.1's optimization). outs is nil when the
// operation has no out or inout parameters.
func (op *OpPlan) DecodeReply(dec Decoder, outBufs [][]byte, retBuf []byte) ([]Value, Value, error) {
	var outs []Value
	if op.nOut > 0 {
		outs = make([]Value, len(op.Op.Params))
	}
	var ret Value
	for i := range op.repDec {
		st := &op.repDec[i]
		var v Value
		var err error
		if st.intoFn != nil && st.callerBuf {
			var buf []byte
			if st.arg >= 0 {
				if outBufs != nil {
					buf = outBufs[st.arg]
				}
			} else {
				buf = retBuf
			}
			if buf != nil {
				v, err = st.intoFn(dec, buf)
			} else {
				v, err = st.fn(dec)
			}
		} else {
			v, err = st.fn(dec)
		}
		if err != nil {
			if st.arg >= 0 {
				return nil, nil, fmt.Errorf("%s out param %s: %w", op.Op.Name, st.name, err)
			}
			return nil, nil, fmt.Errorf("%s result: %w", op.Op.Name, err)
		}
		if st.arg >= 0 {
			outs[st.arg] = v
		} else {
			ret = v
		}
	}
	return outs, ret, nil
}

// decodeSeqLen reads a sequence element count and bounds it by the
// bytes actually present: every element occupies at least one input
// byte, so a length word larger than the remaining message is a
// corrupt (or hostile) message, not a huge allocation.
func decodeSeqLen(dec Decoder) (int, error) {
	n, err := dec.Len()
	if err != nil {
		return 0, err
	}
	if n > dec.Remaining() {
		return 0, fmt.Errorf("runtime: sequence of %d elements exceeds %d remaining bytes", n, dec.Remaining())
	}
	return n, nil
}
