package runtime

import (
	"fmt"

	"flexrpc/internal/ir"
	"flexrpc/internal/pres"
)

// SpecialHooks supply programmer-provided marshal routines for
// parameters carrying the [special] presentation attribute — the
// mechanism behind the Linux NFS client's direct-to-user-space
// unmarshaling (§4.1) and the pipe server's fbuf pass-through
// (§4.3). The generated stubs call these at exactly the point the
// default marshal code would have run.
type SpecialHooks interface {
	// EncodeSpecial marshals v for the named operation parameter.
	// It must produce the same wire bytes a default marshal of the
	// parameter's wire type would, or the peer will misparse.
	EncodeSpecial(op, param string, enc Encoder, v Value) error
	// DecodeSpecial unmarshals the named parameter, returning the
	// presentation-specific local value.
	DecodeSpecial(op, param string, dec Decoder) (Value, error)
}

// A Plan is the compiled marshal program for one endpoint: one
// OpPlan per operation, honoring the endpoint's presentation.
type Plan struct {
	Pres   *pres.Presentation
	Codec  Codec
	Ops    []*OpPlan
	hooks  SpecialHooks
	byName map[string]int
}

// An OpPlan marshals one operation's requests and replies.
type OpPlan struct {
	Idx  int
	Op   *ir.Operation
	pres *pres.OpPres
	plan *Plan
}

// NewPlan compiles marshal plans for every operation of p's
// interface. hooks may be nil when no parameter is [special].
func NewPlan(p *pres.Presentation, codec Codec, hooks SpecialHooks) (*Plan, error) {
	pl := &Plan{Pres: p, Codec: codec, hooks: hooks, byName: make(map[string]int)}
	for i := range p.Interface.Ops {
		op := &p.Interface.Ops[i]
		opPres := p.Op(op.Name)
		if opPres == nil {
			return nil, fmt.Errorf("runtime: presentation missing operation %q", op.Name)
		}
		if hooks == nil {
			for _, prm := range op.Params {
				if a, ok := opPres.Params[prm.Name]; ok && a.Special {
					return nil, fmt.Errorf("runtime: %s.%s param %s is [special] but no hooks were provided",
						p.Interface.Name, op.Name, prm.Name)
				}
			}
			if a, ok := opPres.Params[pres.ResultParam]; ok && a.Special {
				return nil, fmt.Errorf("runtime: %s.%s result is [special] but no hooks were provided",
					p.Interface.Name, op.Name)
			}
		}
		pl.Ops = append(pl.Ops, &OpPlan{Idx: i, Op: op, pres: opPres, plan: pl})
		pl.byName[op.Name] = i
	}
	return pl, nil
}

// OpIndex returns the plan index for the named operation, or -1.
func (p *Plan) OpIndex(name string) int {
	if i, ok := p.byName[name]; ok {
		return i
	}
	return -1
}

// attrs returns the presentation attributes for a parameter name,
// or a zero value when unannotated.
func (op *OpPlan) attrs(name string) *pres.ParamAttrs {
	if a, ok := op.pres.Params[name]; ok {
		return a
	}
	return &zeroAttrs
}

var zeroAttrs pres.ParamAttrs

// EncodeRequest marshals the in and inout arguments. args is indexed
// by parameter position; out-only positions are ignored.
func (op *OpPlan) EncodeRequest(enc Encoder, args []Value) error {
	if len(args) != len(op.Op.Params) {
		return fmt.Errorf("runtime: %s takes %d params, have %d values", op.Op.Name, len(op.Op.Params), len(args))
	}
	for i, prm := range op.Op.Params {
		if prm.Dir == ir.Out {
			continue
		}
		if err := op.encodeParam(enc, prm.Name, prm.Type, args[i]); err != nil {
			return fmt.Errorf("%s param %s: %w", op.Op.Name, prm.Name, err)
		}
	}
	return nil
}

// DecodeRequest unmarshals the in and inout arguments into a
// positional value slice. Byte buffers alias the request message —
// the CORBA server mapping: in parameters are valid for the duration
// of the call, and a work function that retains them must copy.
// This is what lets a server receive bulk data with exactly one
// kernel copy on the request path.
func (op *OpPlan) DecodeRequest(dec Decoder) ([]Value, error) {
	args := make([]Value, len(op.Op.Params))
	for i, prm := range op.Op.Params {
		if prm.Dir == ir.Out {
			continue
		}
		var v Value
		var err error
		if op.attrs(prm.Name).Special {
			v, err = op.plan.hooks.DecodeSpecial(op.Op.Name, prm.Name, dec)
		} else {
			v, err = decodeValueBorrow(dec, prm.Type)
		}
		if err != nil {
			return nil, fmt.Errorf("%s param %s: %w", op.Op.Name, prm.Name, err)
		}
		args[i] = v
	}
	return args, nil
}

// EncodeReply marshals the out/inout values and the result.
func (op *OpPlan) EncodeReply(enc Encoder, outs []Value, ret Value) error {
	for i, prm := range op.Op.Params {
		if prm.Dir == ir.In {
			continue
		}
		if err := op.encodeParam(enc, prm.Name, prm.Type, outs[i]); err != nil {
			return fmt.Errorf("%s out param %s: %w", op.Op.Name, prm.Name, err)
		}
	}
	if op.Op.HasResult() {
		if err := op.encodeParam(enc, pres.ResultParam, op.Op.Result, ret); err != nil {
			return fmt.Errorf("%s result: %w", op.Op.Name, err)
		}
	}
	return nil
}

// DecodeReply unmarshals the out/inout values and result. outBufs,
// when non-nil, is indexed by parameter position and supplies
// caller-allocated landing buffers for byte-buffer parameters whose
// presentation says the caller allocates; retBuf does the same for
// the result. The returned values alias those buffers when they are
// used — the stub unmarshals directly into the caller's storage
// instead of allocating (§4.1's optimization).
func (op *OpPlan) DecodeReply(dec Decoder, outBufs [][]byte, retBuf []byte) ([]Value, Value, error) {
	outs := make([]Value, len(op.Op.Params))
	for i, prm := range op.Op.Params {
		if prm.Dir == ir.In {
			continue
		}
		var buf []byte
		if outBufs != nil && op.attrs(prm.Name).Alloc == pres.AllocCaller {
			buf = outBufs[i]
		}
		v, err := op.decodeParam(dec, prm.Name, prm.Type, buf)
		if err != nil {
			return nil, nil, fmt.Errorf("%s out param %s: %w", op.Op.Name, prm.Name, err)
		}
		outs[i] = v
	}
	var ret Value
	if op.Op.HasResult() {
		var buf []byte
		if op.attrs(pres.ResultParam).Alloc == pres.AllocCaller {
			buf = retBuf
		}
		v, err := op.decodeParam(dec, pres.ResultParam, op.Op.Result, buf)
		if err != nil {
			return nil, nil, fmt.Errorf("%s result: %w", op.Op.Name, err)
		}
		ret = v
	}
	return outs, ret, nil
}

func (op *OpPlan) encodeParam(enc Encoder, name string, t *ir.Type, v Value) error {
	if op.attrs(name).Special {
		return op.plan.hooks.EncodeSpecial(op.Op.Name, name, enc, v)
	}
	return encodeValue(enc, t, v)
}

func (op *OpPlan) decodeParam(dec Decoder, name string, t *ir.Type, into []byte) (Value, error) {
	if op.attrs(name).Special {
		return op.plan.hooks.DecodeSpecial(op.Op.Name, name, dec)
	}
	if into != nil && (t.Kind == ir.Bytes || t.Kind == ir.FixedBytes) {
		return decodeBytesInto(dec, t, into)
	}
	return decodeValue(dec, t)
}

// decodeBytesInto lands a byte-buffer value in caller storage,
// falling back to allocation when it does not fit.
func decodeBytesInto(dec Decoder, t *ir.Type, dst []byte) (Value, error) {
	if t.Kind == ir.FixedBytes {
		if len(dst) < t.Size {
			return decodeValue(dec, t)
		}
		if err := dec.FixedBytesInto(dst[:t.Size]); err != nil {
			return nil, err
		}
		return dst[:t.Size], nil
	}
	n, err := dec.BytesInto(dst)
	if err != nil {
		return nil, err
	}
	return dst[:n], nil
}

// encodeValue marshals v (wire type t) with the default rules.
func encodeValue(enc Encoder, t *ir.Type, v Value) error {
	if err := CheckValue(t, v); err != nil {
		return err
	}
	return encodeChecked(enc, t, v)
}

func encodeChecked(enc Encoder, t *ir.Type, v Value) error {
	if t == nil || t.Kind == ir.Void {
		return nil
	}
	switch t.Kind {
	case ir.Bool:
		enc.PutBool(v.(bool))
	case ir.Int32, ir.Enum:
		enc.PutInt32(v.(int32))
	case ir.Uint32:
		enc.PutUint32(v.(uint32))
	case ir.Int64:
		enc.PutInt64(v.(int64))
	case ir.Uint64:
		enc.PutUint64(v.(uint64))
	case ir.Float32:
		enc.PutFloat32(v.(float32))
	case ir.Float64:
		enc.PutFloat64(v.(float64))
	case ir.String:
		enc.PutString(v.(string))
	case ir.Bytes:
		enc.PutBytes(v.([]byte))
	case ir.FixedBytes:
		enc.PutFixedBytes(v.([]byte))
	case ir.Seq:
		vs := v.([]Value)
		enc.PutLen(len(vs))
		for _, e := range vs {
			if err := encodeChecked(enc, t.Elem, e); err != nil {
				return err
			}
		}
	case ir.Array:
		for _, e := range v.([]Value) {
			if err := encodeChecked(enc, t.Elem, e); err != nil {
				return err
			}
		}
	case ir.Struct:
		vs := v.([]Value)
		for i, f := range t.Fields {
			if err := encodeChecked(enc, f.Type, vs[i]); err != nil {
				return err
			}
		}
	case ir.Port:
		enc.PutUint32(uint32(v.(PortName)))
	default:
		return fmt.Errorf("runtime: cannot marshal kind %v", t.Kind)
	}
	return nil
}

// decodeSeqLen reads a sequence element count and bounds it by the
// bytes actually present: every element occupies at least one input
// byte, so a length word larger than the remaining message is a
// corrupt (or hostile) message, not a huge allocation.
func decodeSeqLen(dec Decoder) (int, error) {
	n, err := dec.Len()
	if err != nil {
		return 0, err
	}
	if n > dec.Remaining() {
		return 0, fmt.Errorf("runtime: sequence of %d elements exceeds %d remaining bytes", n, dec.Remaining())
	}
	return n, nil
}

// decodeValueBorrow unmarshals a value whose byte buffers may alias
// the input message (server-side in parameters).
func decodeValueBorrow(dec Decoder, t *ir.Type) (Value, error) {
	switch t.Kind {
	case ir.Bytes:
		return dec.Bytes()
	case ir.FixedBytes:
		return dec.FixedBytes(t.Size)
	case ir.Seq:
		n, err := decodeSeqLen(dec)
		if err != nil {
			return nil, err
		}
		vs := make([]Value, n)
		for i := range vs {
			if vs[i], err = decodeValueBorrow(dec, t.Elem); err != nil {
				return nil, err
			}
		}
		return vs, nil
	case ir.Struct:
		vs := make([]Value, len(t.Fields))
		var err error
		for i, f := range t.Fields {
			if vs[i], err = decodeValueBorrow(dec, f.Type); err != nil {
				return nil, err
			}
		}
		return vs, nil
	default:
		return decodeValue(dec, t)
	}
}

// decodeValue unmarshals a value of wire type t with the default
// rules.
func decodeValue(dec Decoder, t *ir.Type) (Value, error) {
	if t == nil || t.Kind == ir.Void {
		return nil, nil
	}
	switch t.Kind {
	case ir.Bool:
		return dec.Bool()
	case ir.Int32, ir.Enum:
		return dec.Int32()
	case ir.Uint32:
		return dec.Uint32()
	case ir.Int64:
		return dec.Int64()
	case ir.Uint64:
		return dec.Uint64()
	case ir.Float32:
		return dec.Float32()
	case ir.Float64:
		return dec.Float64()
	case ir.String:
		return dec.String()
	case ir.Bytes:
		// Default presentation: the stub allocates fresh storage
		// the consumer will own (move semantics).
		b, err := dec.Bytes()
		if err != nil {
			return nil, err
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out, nil
	case ir.FixedBytes:
		out := make([]byte, t.Size)
		if err := dec.FixedBytesInto(out); err != nil {
			return nil, err
		}
		return out, nil
	case ir.Seq:
		n, err := decodeSeqLen(dec)
		if err != nil {
			return nil, err
		}
		vs := make([]Value, n)
		for i := range vs {
			if vs[i], err = decodeValue(dec, t.Elem); err != nil {
				return nil, err
			}
		}
		return vs, nil
	case ir.Array:
		vs := make([]Value, t.Size)
		var err error
		for i := range vs {
			if vs[i], err = decodeValue(dec, t.Elem); err != nil {
				return nil, err
			}
		}
		return vs, nil
	case ir.Struct:
		vs := make([]Value, len(t.Fields))
		var err error
		for i, f := range t.Fields {
			if vs[i], err = decodeValue(dec, f.Type); err != nil {
				return nil, err
			}
		}
		return vs, nil
	case ir.Port:
		v, err := dec.Uint32()
		return PortName(v), err
	}
	return nil, fmt.Errorf("runtime: cannot unmarshal kind %v", t.Kind)
}
