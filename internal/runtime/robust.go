package runtime

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"flexrpc/internal/pres"
	"flexrpc/internal/stats"
)

// The robustness layer: a session protocol between RobustConn
// (client) and SessionServer (server) that makes calls safe to retry
// over lossy transports. It rides beneath the presentation — the
// marshaled bodies it carries are byte-identical with or without it —
// and above any Conn, so the same layer covers inproc loopbacks,
// netsim pipes, and Sun RPC streams.
//
// Session frames are fixed big-endian binary, independent of the
// marshal codec (the body keeps whatever codec the plan chose):
//
//	request: cid(4) seq(4) flags(4) crc32(body)(4) body...
//	reply:   status(4) crc32(body)(4) body...
//
// cid identifies the client instance, seq the logical call; a retry
// retransmits the same (cid, seq), which is what lets the server's
// ReplyCache suppress duplicate execution. flags bit 0 marks the
// operation [idempotent], telling the server caching is unnecessary.
// flags bits 16-31 carry the call's 16-bit trace id (0 = untraced):
// the flags word always existed, so tracing changes no wire format.
// The CRC lets the client distinguish a corrupted reply (retryable —
// the server may or may not have executed, but the cache makes the
// retry safe) from a clean reply carrying an application error (not
// retryable: the server definitely executed).
const (
	robustReqHeader = 16
	robustRepHeader = 8

	flagIdempotent = 1 << 0
	flagBatch      = 1 << 1 // body is a batch of sub-calls; op index rides per sub-call
	traceIDShift   = 16

	sessOK         = 0 // body is the dispatcher's reply (status framing + results)
	sessBadRequest = 1 // request frame failed its CRC; body empty; retry
	sessOverloaded = 2 // admission control shed the call before decode; body empty
	sessDraining   = 3 // server is draining; body empty; retry elsewhere/later

	// The pushback statuses (sessOverloaded, sessDraining) split the
	// status word: code in the low 8 bits, advisory retry-after
	// milliseconds in the upper 24 (see pushback.go). sessOK and
	// sessBadRequest keep full-word encodings.
)

// ErrCorruptReply reports a session reply that failed its length or
// CRC check; the call may be retried (the reply cache suppresses
// double execution for non-idempotent operations).
var ErrCorruptReply = errors.New("runtime: corrupt session reply")

// ErrBadRequestFrame reports that the server received this call's
// request frame corrupted and did not execute it; always retryable.
var ErrBadRequestFrame = errors.New("runtime: request frame corrupted in transit")

// Retryable reports whether a failed call may be safely retried by a
// client using the session layer: transport faults, timeouts, and
// corruption are retryable; a *RemoteError is not (the server
// executed and replied), and a canceled context is not (the caller
// gave up).
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	return !errors.Is(err, context.Canceled)
}

// A RetryPolicy bounds the retry loop: capped exponential backoff
// with jitter, and an optional per-attempt timeout carved out of the
// call's deadline.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	// Zero means the default of 4.
	MaxAttempts int
	// AttemptTimeout bounds each individual attempt; zero means the
	// attempt runs until the call's own deadline.
	AttemptTimeout time.Duration
	// BaseBackoff is the delay before the first retry (default 1ms);
	// each subsequent delay is multiplied by Multiplier (default 2)
	// and capped at MaxBackoff (default 100ms). The actual sleep is
	// jittered uniformly over [d/2, d).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Multiplier  float64
	// Seed makes the jitter deterministic for tests; zero seeds from
	// an arbitrary fixed value.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	return p
}

// RobustOptions configure a RobustConn.
type RobustOptions struct {
	// ClientID identifies this client instance in the at-most-once
	// cache key; distinct concurrent clients of one server must use
	// distinct IDs.
	ClientID uint32
	// AtMostOnce declares that the server wraps its dispatcher in a
	// SessionServer with a ReplyCache, making every operation safe to
	// retry. When false, only [idempotent]-annotated operations
	// retry; everything else gets a single attempt.
	AtMostOnce bool
	Policy     RetryPolicy
	// Clock drives backoff sleeps and per-attempt timeouts; nil means
	// WallClock. Tests substitute a FakeClock.
	Clock Clock
	// Budget throttles retries (shareable across conns to one
	// backend); nil means retries are limited only by the policy.
	Budget *RetryBudget
	// Breaker short-circuits calls while the peer is persistently
	// failing or pushing back; nil disables breaking.
	Breaker *Breaker
}

// A RobustConn wraps a Conn with the client half of the session
// layer: framing with CRCs, deadlines, and idempotency-aware retry.
// The peer must unwrap frames with a SessionServer. RobustConn is
// deliberately not SelfFraming: the dispatcher's status framing rides
// inside the session body, so application errors are cached and
// replayed like any other reply.
type RobustConn struct {
	inner     Conn
	cid       uint32
	seq       atomic.Uint32
	idem      []bool // by op index: may retry without the cache
	batchable []bool // by op index: may ride in a batch frame
	atMost    bool
	policy    RetryPolicy
	batch     *batcher // nil until EnableBatching
	budget    *RetryBudget
	breaker   *Breaker

	rmu sync.Mutex // guards rng
	rng *rand.Rand

	clock Clock
	stats *stats.Endpoint

	frames sync.Pool // *[]byte request frame buffers
}

// SetStats points the session layer at an observability endpoint —
// usually the same one the Client records into, so retries, wire
// bytes and corruption show up alongside the per-op counters. A nil
// endpoint (the default) records nothing.
func (r *RobustConn) SetStats(e *stats.Endpoint) { r.stats = e }

// NewRobustConn wraps inner for presentation p. The idempotency of
// each operation comes from p's [idempotent] annotations.
func NewRobustConn(inner Conn, p *pres.Presentation, opts RobustOptions) *RobustConn {
	idem := make([]bool, len(p.Interface.Ops))
	batchable := make([]bool, len(p.Interface.Ops))
	for i := range p.Interface.Ops {
		if op := p.Op(p.Interface.Ops[i].Name); op != nil {
			idem[i] = op.Idempotent
			batchable[i] = op.Batchable
		}
	}
	seed := opts.Policy.Seed
	if seed == 0 {
		seed = 1
	}
	clock := opts.Clock
	if clock == nil {
		clock = WallClock
	}
	return &RobustConn{
		inner:     inner,
		cid:       opts.ClientID,
		idem:      idem,
		batchable: batchable,
		atMost:    opts.AtMostOnce,
		policy:    opts.Policy.withDefaults(),
		budget:    opts.Budget,
		breaker:   opts.Breaker,
		rng:       rand.New(rand.NewSource(seed)),
		clock:     clock,
	}
}

// Call implements Conn.
func (r *RobustConn) Call(opIdx int, req, replyBuf []byte) ([]byte, error) {
	return r.CallContext(context.Background(), opIdx, req, replyBuf)
}

// Close drains the batcher (when batching is enabled) and closes the
// wrapped transport.
func (r *RobustConn) Close() error {
	if r.batch != nil {
		r.batch.close()
	}
	return r.inner.Close()
}

// CallContext implements ContextConn: frame the request, send it,
// verify the reply, retrying per the policy when the operation (or
// the at-most-once session) allows. Retries retransmit the same
// sequence number, so the server replays rather than re-executes.
func (r *RobustConn) CallContext(ctx context.Context, opIdx int, req, replyBuf []byte) ([]byte, error) {
	return r.CallTraceContext(ctx, opIdx, req, replyBuf, 0)
}

// CallTraceContext is CallContext carrying a trace id: tid rides in
// the upper half of the frame's flags word, so the server tags its
// decode/dispatch/reply trace events with the same id the client
// used. tid 0 means untraced; when this conn's own stats endpoint
// has tracing enabled, a fresh id is drawn so the session layer can
// trace calls even for clients that do not.
func (r *RobustConn) CallTraceContext(ctx context.Context, opIdx int, req, replyBuf []byte, tid uint32) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if b := r.batch; b != nil && tid == 0 && ctx.Done() == nil &&
		opIdx >= 0 && opIdx < len(r.batchable) && r.batchable[opIdx] {
		if reply, err, handled := b.call(opIdx, req, replyBuf); handled {
			return reply, err
		}
	}
	idem := opIdx >= 0 && opIdx < len(r.idem) && r.idem[opIdx]
	if tid == 0 {
		tid = r.stats.NextTraceID()
	}
	flags := (tid & 0xFFFF) << traceIDShift
	if idem {
		flags |= flagIdempotent
	}
	return r.callSession(ctx, opIdx, opIdx, req, replyBuf, flags, idem, tid)
}

// callSession frames req under a fresh sequence number and drives the
// retry loop. wireOp is the operation index the transport routes by;
// statOp bills retries to a counter row (negative for none, e.g. for
// batch frames that have no single op). idem permits retrying even
// without an at-most-once session.
//
// Overload protection threads through here: the breaker may fail the
// call before any attempt; the budget gates every retry; a pushback
// reply (the server shed the call before executing it) is retryable
// regardless of idempotency and sleeps the server's advisory
// RetryAfter instead of the jittered backoff.
func (r *RobustConn) callSession(ctx context.Context, wireOp, statOp int, req, replyBuf []byte, flags uint32, idem bool, tid uint32) ([]byte, error) {
	if !r.breaker.Allow() {
		r.stats.AddBreakerFastFail()
		return nil, ErrCircuitOpen
	}
	attempts := r.policy.MaxAttempts
	if !r.atMost && !idem {
		attempts = 1
	}
	seq := r.seq.Add(1)

	fb, _ := r.frames.Get().(*[]byte)
	if fb == nil {
		fb = new([]byte)
	}
	frame := *fb
	need := robustReqHeader + len(req)
	if cap(frame) < need {
		frame = make([]byte, need)
	}
	frame = frame[:need]
	binary.BigEndian.PutUint32(frame[0:4], r.cid)
	binary.BigEndian.PutUint32(frame[4:8], seq)
	binary.BigEndian.PutUint32(frame[8:12], flags)
	binary.BigEndian.PutUint32(frame[12:16], crc32.ChecksumIEEE(req))
	copy(frame[robustReqHeader:], req)

	r.budget.onAttempt()
	var reply []byte
	var err error
	backoff := r.policy.BaseBackoff
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			break
		}
		if attempt > 1 {
			r.stats.AddRetry(statOp)
			r.stats.Trace(tid, statOp, stats.StageRetry)
		}
		reply, err = r.callOnce(ctx, wireOp, frame, replyBuf)
		if err == nil {
			r.breaker.OnSuccess()
			break
		}
		var ov *ErrOverloaded
		pushback := errors.As(err, &ov)
		switch {
		case pushback:
			r.stats.AddPushback()
			if r.breaker.OnFailure(ov.RetryAfter) {
				r.stats.AddBreakerOpen()
			}
		case Retryable(err):
			if r.breaker.OnFailure(0) {
				r.stats.AddBreakerOpen()
			}
		default:
			// A RemoteError means the server executed and answered —
			// the peer is healthy, whatever the application thinks.
			var re *RemoteError
			if errors.As(err, &re) {
				r.breaker.OnSuccess()
			}
		}
		if !Retryable(err) {
			break
		}
		// A pushed-back call never reached the dispatcher, so retrying
		// it is safe even for non-idempotent calls outside an
		// at-most-once session.
		max := attempts
		if pushback && r.policy.MaxAttempts > max {
			max = r.policy.MaxAttempts
		}
		if attempt >= max {
			break
		}
		if !r.budget.allowRetry() {
			r.stats.AddRetrySuppressed()
			break
		}
		if pushback && ov.RetryAfter > 0 {
			// Honor the server's advisory pause over our own schedule.
			if serr := r.clock.Sleep(ctx, ov.RetryAfter); serr != nil {
				break
			}
			continue
		}
		if serr := r.sleep(ctx, backoff); serr != nil {
			break
		}
		backoff = time.Duration(float64(backoff) * r.policy.Multiplier)
		if backoff > r.policy.MaxBackoff {
			backoff = r.policy.MaxBackoff
		}
	}
	*fb = frame[:0]
	r.frames.Put(fb)
	return reply, err
}

// callOnce performs one attempt under the per-attempt timeout and
// verifies the session reply.
func (r *RobustConn) callOnce(ctx context.Context, opIdx int, frame, replyBuf []byte) ([]byte, error) {
	actx := ctx
	var cancel context.CancelFunc
	if r.policy.AttemptTimeout > 0 {
		actx, cancel = r.clock.WithTimeout(ctx, r.policy.AttemptTimeout)
	}
	if r.stats != nil {
		r.stats.Wire.Add(len(frame))
	}
	reply, err := CallConn(actx, r.inner, opIdx, frame, replyBuf)
	if cancel != nil {
		cancel()
	}
	if err != nil {
		return nil, err
	}
	if r.stats != nil {
		r.stats.Wire.Add(len(reply))
	}
	if len(reply) < robustRepHeader {
		r.stats.AddCorruptReply()
		return nil, fmt.Errorf("%w: %d-byte frame", ErrCorruptReply, len(reply))
	}
	status := binary.BigEndian.Uint32(reply[0:4])
	sum := binary.BigEndian.Uint32(reply[4:8])
	body := reply[robustRepHeader:]
	if crc32.ChecksumIEEE(body) != sum {
		r.stats.AddCorruptReply()
		return nil, ErrCorruptReply
	}
	switch status {
	case sessOK:
		return body, nil
	case sessBadRequest:
		return nil, ErrBadRequestFrame
	default:
		// Pushback statuses carry a retry-after in the upper bits, so
		// they cannot be matched whole; parse strictly and fall through
		// to corruption for anything else.
		if ra, draining, perr := ParsePushbackFrame(reply); perr == nil {
			return nil, &ErrOverloaded{RetryAfter: ra, Draining: draining}
		}
		return nil, fmt.Errorf("%w: unknown status %d", ErrCorruptReply, status)
	}
}

// sleep waits one jittered backoff interval or until ctx expires.
func (r *RobustConn) sleep(ctx context.Context, d time.Duration) error {
	r.rmu.Lock()
	jittered := d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
	r.rmu.Unlock()
	return r.clock.Sleep(ctx, jittered)
}

// A ReplyCache is the server half of at-most-once execution: it
// memoizes one reply frame per (client id, sequence) key, and
// single-flights concurrent duplicates — a retransmit that arrives
// while the original is still executing waits for that execution
// instead of starting another. Completed entries are evicted FIFO
// beyond the capacity.
//
// The cache is sharded: keys hash onto a power-of-two number of
// independently locked shards, so at-most-once bookkeeping for
// unrelated clients never serializes. Calls from one client
// interleave their sequence numbers across every shard (the hash
// mixes the low bits), so even a single chatty client spreads its
// bookkeeping. [idempotent] operations never reach the cache at all.
type ReplyCache struct {
	shards     []replyShard
	mask       uint64
	contention atomic.Uint64
	stats      *stats.Endpoint
}

// replyShard is one independently locked slice of the key space,
// padded so adjacent shards do not share a cache line under write
// contention.
type replyShard struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*cacheEntry
	order   []uint64
	_       [24]byte
}

type cacheEntry struct {
	done  chan struct{}
	frame []byte // immutable once done is closed
}

// DefaultReplyCacheSize bounds the cache when NewReplyCache is given
// a non-positive capacity.
const DefaultReplyCacheSize = 4096

// maxReplyCacheShards caps the default shard count; past the point
// where shards outnumber runnable server workers the extra maps only
// cost memory.
const maxReplyCacheShards = 64

// NewReplyCache returns a cache retaining up to capacity completed
// replies (DefaultReplyCacheSize when capacity <= 0), sharded for the
// current GOMAXPROCS.
func NewReplyCache(capacity int) *ReplyCache {
	return NewReplyCacheSharded(capacity, 0)
}

// NewReplyCacheSharded is NewReplyCache with an explicit shard
// count, rounded up to a power of two. shards <= 0 derives the count
// from GOMAXPROCS (the next power of two, at most
// maxReplyCacheShards); shards == 1 restores the single-mutex
// behavior, which experiments use as the serial baseline.
func NewReplyCacheSharded(capacity, shards int) *ReplyCache {
	if capacity <= 0 {
		capacity = DefaultReplyCacheSize
	}
	if shards <= 0 {
		shards = goruntime.GOMAXPROCS(0)
		if shards > maxReplyCacheShards {
			shards = maxReplyCacheShards
		}
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &ReplyCache{shards: make([]replyShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].entries = make(map[uint64]*cacheEntry)
	}
	return c
}

// SetStats points the cache's shard-contention counter at e. Set
// before serving; a nil endpoint (the default) records nothing.
func (c *ReplyCache) SetStats(e *stats.Endpoint) { c.stats = e }

// Contention reports how many lock acquisitions found their shard
// already held — the direct witness that sharding is (or is not)
// spreading load.
func (c *ReplyCache) Contention() uint64 { return c.contention.Load() }

// Shards reports the shard count (always a power of two).
func (c *ReplyCache) Shards() int { return len(c.shards) }

// shardHash spreads the (cid, seq) key over the shards: a splitmix64
// finalizer, so consecutive sequence numbers from one client land on
// different shards.
func shardHash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func (c *ReplyCache) shard(key uint64) *replyShard {
	return &c.shards[shardHash(key)&c.mask]
}

// lock takes s.mu, counting the acquisition as contended when the
// uncontended fast path fails.
func (c *ReplyCache) lock(s *replyShard) {
	if s.mu.TryLock() {
		return
	}
	c.contention.Add(1)
	c.stats.AddShardContention()
	s.mu.Lock()
}

// do returns the cached reply for key, executing exec exactly once
// per key; duplicates wait for the first execution to finish. The
// second result reports whether the reply was replayed (served from
// the cache, or by waiting out the original execution) rather than
// produced by this call's own exec. exec runs outside the shard lock,
// so slow handlers only serialize true duplicates.
func (c *ReplyCache) do(key uint64, exec func() []byte) ([]byte, bool) {
	s := c.shard(key)
	c.lock(s)
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		<-e.done
		return e.frame, true
	}
	e := &cacheEntry{done: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()

	e.frame = exec()
	close(e.done)

	c.lock(s)
	s.order = append(s.order, key)
	for len(s.order) > s.cap {
		delete(s.entries, s.order[0])
		s.order = s.order[1:]
	}
	s.mu.Unlock()
	return e.frame, false
}

// Len reports how many completed replies the cache currently holds,
// summed across shards.
func (c *ReplyCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		c.lock(s)
		n += len(s.order)
		s.mu.Unlock()
	}
	return n
}

// Flush evicts every completed reply, returning how many were
// dropped. In-flight executions (entries not yet in order) are left to
// finish; a drain calls Flush after the last in-flight call completes,
// so the memory retires with the session.
func (c *ReplyCache) Flush() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		c.lock(s)
		for _, key := range s.order {
			delete(s.entries, key)
		}
		n += len(s.order)
		s.order = s.order[:0]
		s.mu.Unlock()
	}
	return n
}

// A SessionServer is the server half of the session layer: it
// unwraps request frames, drives the dispatcher, and wraps replies,
// consulting a ReplyCache so retransmitted non-idempotent calls
// replay their original reply instead of re-executing.
type SessionServer struct {
	disp  *Dispatcher
	plan  *Plan
	cache *ReplyCache
	adm   *Admission // nil: no admission control

	encs sync.Pool // Encoder
}

// NewSessionServer wraps disp/plan. cache may be nil, which disables
// duplicate suppression (clients must then only retry idempotent
// operations).
func NewSessionServer(disp *Dispatcher, plan *Plan, cache *ReplyCache) *SessionServer {
	return &SessionServer{disp: disp, plan: plan, cache: cache}
}

// SetAdmission installs an admission controller: Handle consults it
// before the CRC check (a call that will be shed is not worth
// checksumming) and answers rejected calls with its pushback frame.
// Set before serving; nil (the default) admits everything.
func (s *SessionServer) SetAdmission(a *Admission) { s.adm = a }

// Admission returns the installed controller (nil when none).
func (s *SessionServer) Admission() *Admission { return s.adm }

// Drain gracefully retires the session server: new calls are rejected
// with a draining pushback, then Drain waits (bounded by ctx) for
// every admitted in-flight call to complete and flushes the reply
// cache. It reports ctx.Err() when in-flight calls outlive the
// deadline, nil once the server is idle. Requires an installed
// Admission controller (it owns the inflight count); without one,
// Drain only flushes the cache.
func (s *SessionServer) Drain(ctx context.Context) error {
	if s.adm != nil {
		s.adm.StartDrain()
		for s.adm.Inflight() > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			s.adm.clock.Sleep(ctx, 100*time.Microsecond)
		}
	}
	if s.cache != nil {
		s.cache.Flush()
	}
	return nil
}

// Handle processes one request frame and returns the reply frame.
// The returned slice is shared (it may be replayed to a later
// retransmit): transports must copy it onto the wire and never
// modify it.
func (s *SessionServer) Handle(ctx context.Context, opIdx int, frame []byte) []byte {
	if len(frame) < robustReqHeader {
		s.disp.stats.AddBadFrame()
		return badRequestFrame()
	}
	cid := binary.BigEndian.Uint32(frame[0:4])
	seq := binary.BigEndian.Uint32(frame[4:8])
	flags := binary.BigEndian.Uint32(frame[8:12])
	sum := binary.BigEndian.Uint32(frame[12:16])
	// Admission runs before the CRC check: shedding exists to avoid
	// work, and checksumming a call we are about to reject is work.
	// Everything needed — client id, [idempotent] bit — is in the
	// header. A rejected call returns the controller's shared pushback
	// frame with zero allocation.
	if pb := s.adm.Admit(cid, flags&flagIdempotent != 0); pb != nil {
		return pb
	}
	body := frame[robustReqHeader:]
	if crc32.ChecksumIEEE(body) != sum {
		// Damaged in transit: tell the client to retransmit. Not
		// cached — the retry must reach the dispatcher.
		s.adm.Release(cid)
		s.disp.stats.AddBadFrame()
		return badRequestFrame()
	}
	tid := flags >> traceIDShift
	exec := func() []byte {
		if flags&flagBatch != 0 {
			return s.execBatch(ctx, body, tid)
		}
		return s.exec(ctx, opIdx, body, tid)
	}
	var rep []byte
	if flags&flagIdempotent != 0 || s.cache == nil {
		rep = exec()
		s.adm.Release(cid)
		return rep
	}
	// A batch frame is cached and replayed whole under the outer
	// (cid, seq) key: the client retransmits the whole batch, so one
	// cache entry gives every sub-call at-most-once execution.
	key := uint64(cid)<<32 | uint64(seq)
	rep, replayed := s.cache.do(key, exec)
	s.adm.Release(cid)
	if replayed {
		s.disp.stats.AddReplay(opIdx)
	}
	return rep
}

// exec dispatches one request body and builds a fresh reply frame.
func (s *SessionServer) exec(ctx context.Context, opIdx int, body []byte, tid uint32) []byte {
	enc, _ := s.encs.Get().(Encoder)
	if enc == nil {
		enc = s.plan.Codec.NewEncoder()
	}
	enc.Reset()
	s.disp.serveMessageTraced(ctx, s.plan, opIdx, body, enc, tid)
	out := enc.Bytes()
	rep := make([]byte, robustRepHeader+len(out))
	binary.BigEndian.PutUint32(rep[0:4], sessOK)
	binary.BigEndian.PutUint32(rep[4:8], crc32.ChecksumIEEE(out))
	copy(rep[robustRepHeader:], out)
	s.encs.Put(enc)
	return rep
}

func badRequestFrame() []byte {
	rep := make([]byte, robustRepHeader)
	binary.BigEndian.PutUint32(rep[0:4], sessBadRequest)
	// crc32 of the empty body is 0; the zeroed word already matches.
	return rep
}
