package sunrpc

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"flexrpc/internal/xdr"
)

// Close must fail every outstanding call with ErrClientClosed right
// away — not leave them blocked until the reader happens to notice
// the dead connection.
func TestCloseFailsPendingCalls(t *testing.T) {
	cc, sc := net.Pipe()
	defer sc.Close()
	go func() { // swallow requests, never reply
		buf := make([]byte, 4096)
		for {
			if _, err := sc.Read(buf); err != nil {
				return
			}
		}
	}()
	c := NewClient(cc, testProg, testVers)
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.Call(procEcho,
			func(e *xdr.Encoder) { e.PutOpaque([]byte("x")) },
			func(d *xdr.Decoder) error { return nil })
	}()
	// Let the call register and write before closing.
	time.Sleep(20 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("pending call got %v, want ErrClientClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call still blocked after Close")
	}
	// Later calls fail fast with the same sentinel.
	err := c.Call(procEcho, nil, nil)
	if !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call after Close got %v, want ErrClientClosed", err)
	}
}

// A deadline-expired call abandons its xid: the late reply is
// discarded when it finally arrives, the stream stays in sync, and
// later calls on the same connection still work.
func TestContextAbandonsXIDWithoutDesync(t *testing.T) {
	const procSlow, procFast = 9, 5
	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()
	release := make(chan struct{})
	var wmu sync.Mutex
	go func() { // frame-level fake server with per-proc reply control
		for {
			rec, err := readRecord(sc, nil)
			if err != nil {
				return
			}
			h, err := decodeCall(xdr.NewDecoder(rec))
			if err != nil {
				return
			}
			go func(h CallHeader) {
				if h.Proc == procSlow {
					<-release // hold this reply past the deadline
				}
				var e xdr.Encoder
				encodeAcceptedReply(&e, h.XID, Success)
				e.PutInt32(int32(h.Proc))
				wmu.Lock()
				_ = writeRecord(sc, e.Bytes())
				wmu.Unlock()
			}(h)
		}
	}()

	c := NewClient(cc, testProg, testVers)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := c.CallContext(ctx, procSlow, nil, func(d *xdr.Decoder) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow call got %v, want context.DeadlineExceeded", err)
	}

	// The held reply now goes out; the client must discard it and
	// still answer the next call correctly.
	close(release)
	var got int32
	err = c.Call(procFast, nil, func(d *xdr.Decoder) error {
		var derr error
		got, derr = d.Int32()
		return derr
	})
	if err != nil {
		t.Fatalf("call after abandoned xid: %v", err)
	}
	if got != procFast {
		t.Fatalf("got reply %d, want %d — stream desynchronized", got, procFast)
	}
}

// After a connection failure poisons the client, the redial hook
// brings it back: the next call dials a fresh connection instead of
// returning the sticky error forever.
func TestRedialAfterConnectionFailure(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = newTestServer().Serve(l) }()

	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(nc, testProg, testVers)
	c.SetRedial(func() (net.Conn, error) {
		return net.Dial("tcp", l.Addr().String())
	})
	defer c.Close()

	echo := func() error {
		return c.Call(procEcho,
			func(e *xdr.Encoder) { e.PutOpaque([]byte("ping")) },
			func(d *xdr.Decoder) error {
				data, derr := d.Opaque()
				if derr != nil {
					return derr
				}
				if string(data) != "ping" {
					t.Fatalf("echoed %q", data)
				}
				return nil
			})
	}
	if err := echo(); err != nil {
		t.Fatalf("first call: %v", err)
	}

	nc.Close() // kill the connection out from under the client

	// The first calls after the kill may observe the send/receive
	// failure before the sticky error is set; within a few retries
	// the client must redial and recover.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := echo(); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered through the redial hook")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
