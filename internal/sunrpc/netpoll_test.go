package sunrpc

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"flexrpc/internal/netpoll"
	rt "flexrpc/internal/runtime"
	"flexrpc/internal/stats"
	"flexrpc/internal/xdr"
)

// socketpairConns builds a connected pair of real-descriptor conns —
// the netpoll tests need fds, which net.Pipe cannot provide.
func socketpairConns(t testing.TB) (client, server net.Conn) {
	t.Helper()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		t.Fatalf("socketpair: %v", err)
	}
	toConn := func(fd int, name string) net.Conn {
		f := os.NewFile(uintptr(fd), name)
		defer f.Close() // net.FileConn duplicated the descriptor
		c, err := net.FileConn(f)
		if err != nil {
			t.Fatalf("FileConn: %v", err)
		}
		return c
	}
	return toConn(fds[0], "sp-client"), toConn(fds[1], "sp-server")
}

func waitSnapshot(t *testing.T, e *stats.Endpoint, what string, cond func(*stats.Snapshot) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(e.Snapshot()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestNetpollBasicRPC: calls flow end to end through the poller path,
// and the poller counters move.
func TestNetpollBasicRPC(t *testing.T) {
	if !netpoll.Supported() {
		t.Skip("netpoll unsupported on this platform")
	}
	s := newTestServer()
	s.SetNetpoll(true)
	s.SetConcurrency(4)
	e := stats.New(nil)
	s.SetStats(e)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn, testProg, testVers)
	for i := 0; i < 10; i++ {
		var sum int32
		err := c.Call(procAdd,
			func(enc *xdr.Encoder) { enc.PutInt32(int32(i)); enc.PutInt32(2) },
			func(d *xdr.Decoder) error {
				v, err := d.Int32()
				sum = v
				return err
			})
		if err != nil || sum != int32(i)+2 {
			t.Fatalf("call %d: sum=%d err=%v", i, sum, err)
		}
	}

	snap := e.Snapshot()
	if snap.PollerConnsRegistered != 1 {
		t.Fatalf("PollerConnsRegistered = %d, want 1", snap.PollerConnsRegistered)
	}
	if snap.PollerWakeups == 0 {
		t.Fatal("PollerWakeups = 0 after 10 RPCs; calls did not flow through the poller")
	}
	if snap.Queued != 10 {
		t.Fatalf("Queued = %d, want 10", snap.Queued)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestNetpollFallbackPipe: a conn without a descriptor (net.Pipe) on a
// netpoll server transparently uses the goroutine reader — identical
// semantics, portable everywhere.
func TestNetpollFallbackPipe(t *testing.T) {
	s := newTestServer()
	s.SetNetpoll(true)
	s.SetConcurrency(2)
	cc, sc := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- s.ServeConn(sc) }()

	c := NewClient(cc, testProg, testVers)
	var sum int32
	err := c.Call(procAdd,
		func(enc *xdr.Encoder) { enc.PutInt32(40); enc.PutInt32(2) },
		func(d *xdr.Decoder) error {
			v, err := d.Int32()
			sum = v
			return err
		})
	if err != nil || sum != 42 {
		t.Fatalf("fallback call: sum=%d err=%v", sum, err)
	}
	cc.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeConn: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn did not return after peer close")
	}
}

// TestNetpollTailRepliesAfterHalfClose mirrors the shared-pool
// regression in netpoll mode: the EPOLLRDHUP/EOF edge arrives while
// pipelined replies are still owed, and every one of them must still
// be flushed before the connection tears down.
func TestNetpollTailRepliesAfterHalfClose(t *testing.T) {
	if !netpoll.Supported() {
		t.Skip("netpoll unsupported on this platform")
	}
	const calls = 64
	s := newTestServer()
	s.SetNetpoll(true)
	s.SetConcurrency(4)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))

	var enc xdr.Encoder
	var out []byte
	for i := 0; i < calls; i++ {
		enc.Reset()
		encodeCall(&enc, CallHeader{XID: uint32(i + 1), Prog: testProg, Vers: testVers, Proc: 0})
		out = appendRecord(out, enc.Bytes())
	}
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}

	var rec []byte
	for i := 0; i < calls; i++ {
		rec, err = readRecord(conn, rec)
		if err != nil {
			t.Fatalf("reply %d of %d: %v (tail replies dropped after half-close)", i, calls, err)
		}
		rec = rec[:cap(rec)]
	}
}

// TestNetpollRecordSplitAcrossReadinessEvents: one request arriving in
// three separate readiness events — mid-header, then mid-body, then
// the tail — reassembles into exactly one dispatch, and the partial
// reads are counted.
func TestNetpollRecordSplitAcrossReadinessEvents(t *testing.T) {
	if !netpoll.Supported() {
		t.Skip("netpoll unsupported on this platform")
	}
	s := newTestServer()
	s.SetNetpoll(true)
	s.SetConcurrency(2)
	e := stats.New(nil)
	s.SetStats(e)

	cc, sc := socketpairConns(t)
	done := make(chan error, 1)
	go func() { done <- s.ServeConn(sc) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
		cc.Close()
	})

	var enc xdr.Encoder
	enc.Reset()
	encodeCall(&enc, CallHeader{XID: 7, Prog: testProg, Vers: testVers, Proc: procAdd})
	enc.PutInt32(40)
	enc.PutInt32(2)
	msg := appendRecord(nil, enc.Bytes())

	// Three chunks: 2 bytes (half the record-marking header), then up
	// to the middle of the body, then the rest. The waits between
	// writes let the poller drain to EAGAIN, so each chunk is its own
	// readiness event and the first two park a partial record.
	cuts := []int{2, len(msg) / 2, len(msg)}
	prev := 0
	for i, cut := range cuts {
		if _, err := cc.Write(msg[prev:cut]); err != nil {
			t.Fatal(err)
		}
		prev = cut
		if i < len(cuts)-1 {
			waitSnapshot(t, e, "partial read", func(s *stats.Snapshot) bool {
				return s.PartialReads >= uint64(i+1)
			})
		}
	}

	cc.SetReadDeadline(time.Now().Add(10 * time.Second))
	rec, err := readRecord(cc, nil)
	if err != nil {
		t.Fatalf("reply: %v", err)
	}
	d := xdr.NewDecoder(rec)
	if _, err := decodeReply(d); err != nil {
		t.Fatalf("reply header: %v", err)
	}
	sum, err := d.Int32()
	if err != nil || sum != 42 {
		t.Fatalf("sum=%d err=%v", sum, err)
	}
	snap := e.Snapshot()
	if snap.Queued != 1 {
		t.Fatalf("Queued = %d, want exactly 1 dispatch for the split record", snap.Queued)
	}
	if snap.PartialReads < 2 {
		t.Fatalf("PartialReads = %d, want >= 2", snap.PartialReads)
	}
}

// TestNetpollSlowReaderBoundedBuffering pins the same reply-buffer
// bound as the goroutine path: a non-reading client pipelining big
// replies parks the connection's read state machine at the pending
// cap (rPaused) instead of buffering everything; draining the client
// resumes it and every owed reply arrives.
func TestNetpollSlowReaderBoundedBuffering(t *testing.T) {
	if !netpoll.Supported() {
		t.Skip("netpoll unsupported on this platform")
	}
	const calls = 100
	s := newTestServer()
	blob := make([]byte, 64<<10)
	s.Register(procBig, func(args *xdr.Decoder, reply *xdr.Encoder) error {
		reply.PutOpaque(blob)
		return nil
	})
	e := stats.New(nil)
	s.SetStats(e)
	s.SetNetpoll(true)
	s.SetConcurrency(4)

	cc, sc := socketpairConns(t)
	// Small kernel buffers so the flusher blocks early and the
	// pending cap — not the socket — is what bounds the backlog.
	if uc, ok := sc.(*net.UnixConn); ok {
		uc.SetWriteBuffer(16 << 10)
	}
	if uc, ok := cc.(*net.UnixConn); ok {
		uc.SetReadBuffer(16 << 10)
	}
	done := make(chan error, 1)
	go func() { done <- s.ServeConn(sc) }()

	var enc xdr.Encoder
	var out []byte
	for i := 0; i < calls; i++ {
		enc.Reset()
		encodeCall(&enc, CallHeader{XID: uint32(i + 1), Prog: testProg, Vers: testVers, Proc: procBig})
		out = appendRecord(out, enc.Bytes())
	}
	// The whole pipelined burst is tiny (~4 KiB); it lands in the
	// socket buffer without the client needing a feeder goroutine.
	if _, err := cc.Write(out); err != nil {
		t.Fatal(err)
	}

	// With the client not reading, the queued count must go quiet well
	// short of the full burst: the paused reader is the bound.
	deadline := time.Now().Add(10 * time.Second)
	var queued, prev uint64
	stable := 0
	for stable < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("queued count never settled (last %d)", queued)
		}
		time.Sleep(50 * time.Millisecond)
		queued = e.Snapshot().Queued
		if queued == prev {
			stable++
		} else {
			stable, prev = 0, queued
		}
	}
	if queued == 0 || queued >= calls/2 {
		t.Fatalf("server queued %d of %d pipelined requests against a non-reading client; want a small bounded backlog", queued, calls)
	}

	// Drain: every reply the client is owed must still arrive.
	cc.SetReadDeadline(time.Now().Add(30 * time.Second))
	var rec []byte
	var err error
	for i := 0; i < calls; i++ {
		rec, err = readRecord(cc, rec)
		if err != nil {
			t.Fatalf("reply %d of %d after draining: %v", i, calls, err)
		}
		rec = rec[:cap(rec)]
	}
	cc.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ServeConn did not return after the client closed")
	}
}

// TestNetpollServerZeroAllocNullRPC is the netpoll-mode scaling gate:
// the poller read path — readiness callback, incremental reassembly,
// pool dispatch, combining flusher — settles to zero allocations per
// null RPC, matching the goroutine path's gate.
func TestNetpollServerZeroAllocNullRPC(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	if !netpoll.Supported() {
		t.Skip("netpoll unsupported on this platform")
	}
	s := newTestServer()
	s.Register(0, func(args *xdr.Decoder, reply *xdr.Encoder) error { return nil })
	s.SetNetpoll(true)
	s.SetConcurrency(4)
	cc, sc := socketpairConns(t)
	go func() { _ = s.ServeConn(sc) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
		cc.Close()
	})

	caller := &rawNullCaller{conn: cc}
	for i := 0; i < 100; i++ {
		caller.call(t) // warm the pools and grow steady-state buffers
	}
	allocs := testing.AllocsPerRun(200, func() { caller.call(t) })
	if allocs != 0 {
		t.Fatalf("netpoll server path allocates %.1f times per null RPC, want 0", allocs)
	}
}

// TestNetpollIdleConnScale is the tentpole's claim as a test: N idle
// connections cost zero goroutines beyond the fixed runtime (pollers +
// workers + accept shard), and the server stays live throughout.
// NETPOLL_SMOKE_CONNS overrides the connection count (ci.sh raises it
// to 100000 after lifting RLIMIT_NOFILE).
func TestNetpollIdleConnScale(t *testing.T) {
	if !netpoll.Supported() {
		t.Skip("netpoll unsupported on this platform")
	}
	conns := 1000
	if v := os.Getenv("NETPOLL_SMOKE_CONNS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad NETPOLL_SMOKE_CONNS %q", v)
		}
		conns = n
	}
	// Each connection costs two descriptors (client + server half live
	// in this process). Raise the limit when the smoke needs it.
	need := uint64(2*conns + 512)
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err == nil && lim.Cur < need {
		lim.Cur = need
		if lim.Max < need {
			lim.Max = need
		}
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
			t.Skipf("cannot raise RLIMIT_NOFILE to %d for %d conns: %v", need, conns, err)
		}
	}

	s := newTestServer()
	s.SetNetpoll(true)
	s.SetConcurrency(4)
	e := stats.New(nil)
	s.SetStats(e)
	sock := filepath.Join(t.TempDir(), "np.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()

	// Warm: the first connection creates pollers and the worker pool.
	warm, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	c := NewClient(warm, testProg, testVers)
	if err := c.Call(0, nil, func(*xdr.Decoder) error { return nil }); err != nil {
		t.Fatalf("warm call: %v", err)
	}
	base := runtime.NumGoroutine()

	held := make([]net.Conn, 0, conns)
	defer func() {
		for _, hc := range held {
			hc.Close()
		}
	}()
	for i := 0; i < conns; i++ {
		hc, err := net.Dial("unix", sock)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		held = append(held, hc)
	}
	waitSnapshot(t, e, "registrations", func(s *stats.Snapshot) bool {
		return s.PollerConnsRegistered >= uint64(conns+1)
	})

	grow := runtime.NumGoroutine() - base
	if grow > 8 {
		t.Fatalf("%d idle conns grew the goroutine count by %d; netpoll mode must stay O(pollers+workers+shards)", conns, grow)
	}
	t.Logf("%d idle conns: +%d goroutines (base %d)", conns, grow, base)

	// Still live with the idle herd attached.
	var sum int32
	err = c.Call(procAdd,
		func(enc *xdr.Encoder) { enc.PutInt32(40); enc.PutInt32(2) },
		func(d *xdr.Decoder) error {
			v, err := d.Int32()
			sum = v
			return err
		})
	if err != nil || sum != 42 {
		t.Fatalf("call with %d idle conns: sum=%d err=%v", conns, sum, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain with %d conns: %v", conns, err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestNetpollDrainNoLeaks: drain with live netpoll conns (some
// mid-call) releases every goroutine the server created.
func TestNetpollDrainNoLeaks(t *testing.T) {
	if !netpoll.Supported() {
		t.Skip("netpoll unsupported on this platform")
	}
	before := runtime.NumGoroutine()
	s := newTestServer()
	s.SetNetpoll(true)
	s.SetConcurrency(4)
	sock := filepath.Join(t.TempDir(), "np.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		conn, err := net.Dial("unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(conn, testProg, testVers)
			_ = c.Call(0, nil, func(*xdr.Decoder) error { return nil })
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAcceptRateLimitFakeClock: the per-shard token bucket is
// Clock-driven, so under a FakeClock the pacing schedule is exact —
// burst-sized admits for free, then one sleep of 1/rate per accept.
func TestAcceptRateLimitFakeClock(t *testing.T) {
	const conns = 6
	ck := rt.NewFakeClock()
	ck.AutoAdvance(true)
	s := newTestServer()
	s.SetClock(ck)
	s.SetAcceptRate(1000, 2) // 1ms a token, burst of 2
	e := stats.New(nil)
	s.SetStats(e)

	l := newMemListener()
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()

	for i := 0; i < conns; i++ {
		cc, err := l.dial()
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		c := NewClient(cc, testProg, testVers)
		if err := c.Call(0, nil, func(*xdr.Decoder) error { return nil }); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		cc.Close()
	}

	// First accept spends a burst token, the dial-time second token
	// re-accrues while calls run; every later accept waits exactly
	// once. The deterministic part: throttles happened, each sleep is
	// at most one token interval, and no accept slept twice.
	sleeps := ck.Sleeps()
	throttled := e.Snapshot().AcceptThrottled
	if throttled == 0 {
		t.Fatal("AcceptThrottled = 0; the bucket never paced a burst of accepts")
	}
	if uint64(len(sleeps)) != throttled {
		t.Fatalf("%d sleeps for %d throttled accepts; want exactly one sleep each", len(sleeps), throttled)
	}
	for i, d := range sleeps {
		if d <= 0 || d > time.Millisecond+time.Microsecond {
			t.Fatalf("sleep %d = %v; want (0, 1ms]", i, d)
		}
	}

	l.Close()
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestClassifyAcceptError is the errno table the accept loop acts on.
func TestClassifyAcceptError(t *testing.T) {
	wrap := func(errno syscall.Errno) error {
		return &net.OpError{Op: "accept", Net: "tcp", Err: os.NewSyscallError("accept4", errno)}
	}
	cases := []struct {
		name string
		err  error
		want acceptAction
	}{
		{"ECONNABORTED", wrap(syscall.ECONNABORTED), acceptRetry},
		{"EINTR", wrap(syscall.EINTR), acceptRetry},
		{"ECONNRESET", wrap(syscall.ECONNRESET), acceptRetry},
		{"EMFILE", wrap(syscall.EMFILE), acceptBackoff},
		{"ENFILE", wrap(syscall.ENFILE), acceptBackoff},
		{"ENOBUFS", wrap(syscall.ENOBUFS), acceptBackoff},
		{"ENOMEM", wrap(syscall.ENOMEM), acceptBackoff},
		{"bare EMFILE", syscall.EMFILE, acceptBackoff},
		{"EINVAL", wrap(syscall.EINVAL), acceptFatal},
		{"no errno", os.ErrDeadlineExceeded, acceptFatal},
		{"temporary without errno", net.ErrWriteToConnected, acceptFatal},
	}
	for _, tc := range cases {
		if got := classifyAcceptError(tc.err); got != tc.want {
			t.Errorf("%s: classify = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestServeAcceptRetryNoBackoff: backlog-aborted connections retry
// immediately — no sleep, no shard exit.
func TestServeAcceptRetryNoBackoff(t *testing.T) {
	l := &flakyListener{memListener: newMemListener(), tempLeft: 3}
	l.errFn = func() error {
		return &net.OpError{Op: "accept", Err: os.NewSyscallError("accept4", syscall.ECONNABORTED)}
	}
	s := newTestServer()
	served := make(chan error, 1)
	start := time.Now()
	go func() { served <- s.Serve(l) }()

	cc, err := l.dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cc.Close()
	c := NewClient(cc, testProg, testVers)
	if err := c.Call(0, nil, func(*xdr.Decoder) error { return nil }); err != nil {
		t.Fatalf("call after aborted accepts: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("immediate-retry class took %v; loop backed off on ECONNABORTED", elapsed)
	}

	l.Close()
	if err := <-served; err != nil {
		t.Fatalf("Serve after listener close: %v", err)
	}
}
