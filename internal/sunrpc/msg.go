// Package sunrpc implements the Sun RPC protocol (RFC 1057) over
// stream connections: call and reply messages with AUTH_NONE
// credentials, record marking for TCP-style transports, and a
// matching client and server engine. It is the transport under the
// paper's §4.1 NFS experiment, playing the role the kernel's Sun RPC
// code played on Linux.
package sunrpc

import (
	"errors"
	"fmt"

	"flexrpc/internal/xdr"
)

// RPCVersion is the only protocol version (RFC 1057 §8).
const RPCVersion = 2

// Message types.
const (
	msgCall  = 0
	msgReply = 1
)

// Reply status.
const (
	replyAccepted = 0
	replyDenied   = 1
)

// AcceptStat values (RFC 1057 §8, accept_stat).
type AcceptStat uint32

// Accepted-reply status codes.
const (
	Success      AcceptStat = 0
	ProgUnavail  AcceptStat = 1
	ProgMismatch AcceptStat = 2
	ProcUnavail  AcceptStat = 3
	GarbageArgs  AcceptStat = 4
	SystemErr    AcceptStat = 5
)

func (s AcceptStat) String() string {
	switch s {
	case Success:
		return "success"
	case ProgUnavail:
		return "program unavailable"
	case ProgMismatch:
		return "program version mismatch"
	case ProcUnavail:
		return "procedure unavailable"
	case GarbageArgs:
		return "garbage arguments"
	case SystemErr:
		return "system error"
	}
	return fmt.Sprintf("accept_stat(%d)", uint32(s))
}

// Auth flavors; only AUTH_NONE is implemented.
const authNone = 0

// Errors surfaced by the client and server engines.
var (
	ErrBadMessage  = errors.New("sunrpc: malformed message")
	ErrXIDMismatch = errors.New("sunrpc: reply xid does not match call")
	ErrDenied      = errors.New("sunrpc: call denied")
)

// A RemoteError is a non-success accept_stat returned by the server.
type RemoteError struct {
	Stat AcceptStat
}

func (e *RemoteError) Error() string {
	return "sunrpc: remote error: " + e.Stat.String()
}

// CallHeader identifies one RPC call.
type CallHeader struct {
	XID  uint32
	Prog uint32
	Vers uint32
	Proc uint32
}

// encodeCall writes the call header including AUTH_NONE cred and
// verf; the caller then appends the argument body.
func encodeCall(e *xdr.Encoder, h CallHeader) {
	e.PutUint32(h.XID)
	e.PutUint32(msgCall)
	e.PutUint32(RPCVersion)
	e.PutUint32(h.Prog)
	e.PutUint32(h.Vers)
	e.PutUint32(h.Proc)
	e.PutUint32(authNone) // cred flavor
	e.PutUint32(0)        // cred length
	e.PutUint32(authNone) // verf flavor
	e.PutUint32(0)        // verf length
}

// decodeCall parses a call header, leaving the decoder at the
// argument body.
func decodeCall(d *xdr.Decoder) (CallHeader, error) {
	var h CallHeader
	var err error
	if h.XID, err = d.Uint32(); err != nil {
		return h, err
	}
	mtype, err := d.Uint32()
	if err != nil {
		return h, err
	}
	if mtype != msgCall {
		return h, fmt.Errorf("%w: message type %d, want call", ErrBadMessage, mtype)
	}
	rpcvers, err := d.Uint32()
	if err != nil {
		return h, err
	}
	if rpcvers != RPCVersion {
		return h, fmt.Errorf("%w: rpc version %d", ErrBadMessage, rpcvers)
	}
	if h.Prog, err = d.Uint32(); err != nil {
		return h, err
	}
	if h.Vers, err = d.Uint32(); err != nil {
		return h, err
	}
	if h.Proc, err = d.Uint32(); err != nil {
		return h, err
	}
	// Skip cred and verf (flavor + opaque body).
	for i := 0; i < 2; i++ {
		if _, err = d.Uint32(); err != nil {
			return h, err
		}
		if _, err = d.Opaque(); err != nil {
			return h, err
		}
	}
	return h, nil
}

// encodeAcceptedReply writes a reply header with the given status;
// for Success the caller appends the result body.
func encodeAcceptedReply(e *xdr.Encoder, xid uint32, stat AcceptStat) {
	e.PutUint32(xid)
	e.PutUint32(msgReply)
	e.PutUint32(replyAccepted)
	e.PutUint32(authNone) // verf flavor
	e.PutUint32(0)        // verf length
	e.PutUint32(uint32(stat))
	if stat == ProgMismatch {
		// low/high supported versions; the engine serves exactly one.
		e.PutUint32(0)
		e.PutUint32(0)
	}
}

// decodeReply parses a reply header, returning its xid and leaving
// the decoder at the result body on success.
func decodeReply(d *xdr.Decoder) (uint32, error) {
	xid, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	mtype, err := d.Uint32()
	if err != nil {
		return xid, err
	}
	if mtype != msgReply {
		return xid, fmt.Errorf("%w: message type %d, want reply", ErrBadMessage, mtype)
	}
	stat, err := d.Uint32()
	if err != nil {
		return xid, err
	}
	if stat == replyDenied {
		return xid, ErrDenied
	}
	if stat != replyAccepted {
		return xid, fmt.Errorf("%w: reply_stat %d", ErrBadMessage, stat)
	}
	// verf
	if _, err = d.Uint32(); err != nil {
		return xid, err
	}
	if _, err = d.Opaque(); err != nil {
		return xid, err
	}
	astat, err := d.Uint32()
	if err != nil {
		return xid, err
	}
	if AcceptStat(astat) != Success {
		return xid, &RemoteError{Stat: AcceptStat(astat)}
	}
	return xid, nil
}
