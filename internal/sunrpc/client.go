package sunrpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"flexrpc/internal/xdr"
)

// ErrClientClosed is the sticky error calls observe after Close.
var ErrClientClosed = errors.New("sunrpc: client closed")

// abandonedCap bounds the abandoned-xid set; past it the set is
// cleared, accepting that a reply to a very old abandoned call would
// then desynchronize the stream (and be handled by failAll).
const abandonedCap = 4096

// A Client issues Sun RPC calls for one program/version over a
// stream connection. Concurrent calls pipeline: each call is tagged
// with a fresh xid, writes are serialized, and replies are matched to
// callers by xid, so many calls can be in flight on one connection at
// once — the multiplexing RFC 1057 xids exist for.
//
// The reply reader is demand-driven: it runs only while calls are
// outstanding and parks otherwise, so a connection can be shared with
// other readers (or other Clients) between call bursts.
type Client struct {
	conn net.Conn
	prog uint32
	vers uint32

	// MaxMessageSize bounds received reply records; zero means
	// DefaultMaxRecord. Set before the first call.
	MaxMessageSize int

	// wmu serializes request marshaling and record writes; a record's
	// header and fragments must not interleave with another call's.
	// It also serializes redials (lock order: wmu before pmu).
	wmu sync.Mutex
	enc xdr.Encoder

	// pmu guards the pending map, the xid counter, the reader state,
	// the sticky transport error, the abandoned set and closed flag.
	pmu       sync.Mutex
	pending   map[uint32]*pendingCall
	nextXID   uint32
	reading   bool
	err       error
	closed    bool
	abandoned map[uint32]struct{}
	redial    func() (net.Conn, error)

	callPool sync.Pool // *pendingCall
	bufPool  sync.Pool // *[]byte record buffers
}

// pendingCall is one in-flight call awaiting its reply record.
type pendingCall struct {
	done chan struct{}
	rec  []byte  // reply record (valid when err is nil)
	buf  *[]byte // pooled backing buffer box for rec
	err  error
}

// NewClient returns a client speaking prog/vers over conn.
func NewClient(conn net.Conn, prog, vers uint32) *Client {
	return &Client{
		conn:    conn,
		prog:    prog,
		vers:    vers,
		nextXID: 1,
		pending: make(map[uint32]*pendingCall),
	}
}

// SetRedial installs a dial function used to replace the connection
// after a transport failure (failAll): the next call redials through
// it instead of returning the sticky error, so a client survives a
// server restart or a mid-stream disconnect.
func (c *Client) SetRedial(dial func() (net.Conn, error)) {
	c.pmu.Lock()
	c.redial = dial
	c.pmu.Unlock()
}

func (c *Client) maxRecord() int {
	if c.MaxMessageSize > 0 {
		return c.MaxMessageSize
	}
	return DefaultMaxRecord
}

func (c *Client) getCall() *pendingCall {
	if pc, ok := c.callPool.Get().(*pendingCall); ok {
		pc.rec, pc.buf, pc.err = nil, nil, nil
		return pc
	}
	return &pendingCall{done: make(chan struct{}, 1)}
}

func (c *Client) getBuf() *[]byte {
	if bp, ok := c.bufPool.Get().(*[]byte); ok {
		return bp
	}
	return new([]byte)
}

// Call invokes proc: encodeArgs appends the argument body,
// decodeRes consumes the result body. decodeRes runs only on a
// successful accepted reply. Call is safe for concurrent use;
// concurrent calls share the connection in flight.
func (c *Client) Call(proc uint32, encodeArgs func(*xdr.Encoder), decodeRes func(*xdr.Decoder) error) error {
	return c.call(nil, proc, encodeArgs, decodeRes)
}

// CallContext is Call with a per-call deadline: when ctx expires
// before the reply arrives, the call returns ctx.Err() and its xid is
// abandoned — the demux reader discards the late reply when (if) it
// arrives instead of treating it as stream desync. The connection and
// the other in-flight calls are unaffected.
func (c *Client) CallContext(ctx context.Context, proc uint32, encodeArgs func(*xdr.Encoder), decodeRes func(*xdr.Decoder) error) error {
	return c.call(ctx, proc, encodeArgs, decodeRes)
}

func (c *Client) call(ctx context.Context, proc uint32, encodeArgs func(*xdr.Encoder), decodeRes func(*xdr.Decoder) error) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	pc := c.getCall()

	// Register before writing so the reply cannot arrive unclaimed,
	// and make sure a reader is running to claim it.
	c.pmu.Lock()
	if c.err != nil && !c.closed && c.redial != nil {
		c.pmu.Unlock()
		if err := c.maybeRedial(); err != nil {
			c.callPool.Put(pc)
			return err
		}
		c.pmu.Lock()
	}
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		c.callPool.Put(pc)
		return err
	}
	xid := c.nextXID
	c.nextXID++
	c.pending[xid] = pc
	if !c.reading {
		c.reading = true
		go c.readLoop()
	}
	c.pmu.Unlock()

	c.wmu.Lock()
	c.enc.Reset()
	// The record-marking header is encoded in-line (patched once the
	// body length is known) so a request that fits one fragment goes
	// out in a single Write — header and body coalesced into one
	// syscall instead of two.
	c.enc.PutUint32(0)
	encodeCall(&c.enc, CallHeader{XID: xid, Prog: c.prog, Vers: c.vers, Proc: proc})
	if encodeArgs != nil {
		encodeArgs(&c.enc)
	}
	var err error
	if marked := c.enc.Bytes(); len(marked)-4 <= maxFragment {
		binary.BigEndian.PutUint32(marked[0:4], uint32(len(marked)-4)|lastFragFlag)
		_, err = c.conn.Write(marked)
	} else {
		err = writeRecord(c.conn, marked[4:])
	}
	c.wmu.Unlock()
	if err != nil {
		// A failed write may have left a partial record on the wire:
		// the stream is poisoned for every call, not just this one.
		// Marking the client broken also arms the redial hook.
		c.failAll(fmt.Errorf("sunrpc: send: %w", err))
		<-pc.done
		err = pc.err
		if err == nil {
			// The reader resolved this call before the write error
			// surfaced; the reply is genuine, but report the failure.
			c.recycleReply(pc)
			err = errors.New("sunrpc: send failed after reply")
		}
		c.callPool.Put(pc)
		return err
	}

	if ctx != nil && ctx.Done() != nil {
		select {
		case <-pc.done:
		case <-ctx.Done():
			c.pmu.Lock()
			if _, still := c.pending[xid]; still {
				// The reader has not claimed this xid (and now never
				// will): abandon it so the late reply is discarded.
				delete(c.pending, xid)
				c.abandon(xid)
				c.pmu.Unlock()
				c.callPool.Put(pc)
				return ctx.Err()
			}
			c.pmu.Unlock()
			// The reply raced the cancellation; use it.
			<-pc.done
		}
	} else {
		<-pc.done
	}

	if pc.err != nil {
		err := pc.err
		c.callPool.Put(pc)
		return err
	}

	var d xdr.Decoder
	d.Reset(pc.rec)
	replyXID, err := decodeReply(&d)
	if err == nil && replyXID != xid {
		// Cannot happen — the reader demuxed on this xid — but keep
		// the check as a cheap invariant.
		err = fmt.Errorf("%w: got %d, want %d", ErrXIDMismatch, replyXID, xid)
	}
	if err == nil && decodeRes != nil {
		err = decodeRes(&d)
	}
	// The reply record is fully consumed: recycle its buffer.
	c.recycleReply(pc)
	c.callPool.Put(pc)
	return err
}

// recycleReply returns a resolved call's reply buffer to the pool.
func (c *Client) recycleReply(pc *pendingCall) {
	if pc.buf != nil {
		*pc.buf = pc.rec[:cap(pc.rec)]
		c.bufPool.Put(pc.buf)
		pc.rec, pc.buf = nil, nil
	}
}

// abandon records xid as cancelled; pmu must be held.
func (c *Client) abandon(xid uint32) {
	if c.abandoned == nil {
		c.abandoned = make(map[uint32]struct{})
	}
	if len(c.abandoned) >= abandonedCap {
		clear(c.abandoned)
	}
	c.abandoned[xid] = struct{}{}
}

// maybeRedial replaces a failed connection through the redial hook.
// It holds wmu for the duration so no writer observes the swap
// mid-record (lock order wmu, then pmu).
func (c *Client) maybeRedial() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.pmu.Lock()
	if c.err == nil {
		// Another caller already redialed while we waited on wmu.
		c.pmu.Unlock()
		return nil
	}
	if c.closed || c.redial == nil {
		err := c.err
		c.pmu.Unlock()
		return err
	}
	dial := c.redial
	old := c.conn
	c.pmu.Unlock()

	nc, err := dial()
	if err != nil {
		return fmt.Errorf("sunrpc: redial: %w", err)
	}
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		nc.Close()
		return ErrClientClosed
	}
	c.conn = nc
	c.err = nil
	c.abandoned = nil
	c.pmu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// readLoop drains reply records while calls are pending, matching
// each to its caller by xid. It exits as soon as the pending set is
// empty, leaving the connection free for other readers.
func (c *Client) readLoop() {
	c.pmu.Lock()
	conn := c.conn
	c.pmu.Unlock()
	for {
		c.pmu.Lock()
		if len(c.pending) == 0 || c.err != nil {
			c.reading = false
			c.pmu.Unlock()
			return
		}
		c.pmu.Unlock()

		bufp := c.getBuf()
		rec, err := readRecordLimit(conn, *bufp, c.maxRecord())
		if err != nil {
			c.bufPool.Put(bufp)
			c.failAll(fmt.Errorf("sunrpc: receive: %w", err))
			return
		}
		if len(rec) < 4 {
			*bufp = rec[:cap(rec)]
			c.bufPool.Put(bufp)
			c.failAll(fmt.Errorf("%w: reply record of %d bytes", ErrBadMessage, len(rec)))
			return
		}
		xid := binary.BigEndian.Uint32(rec[:4])

		c.pmu.Lock()
		pc, ok := c.pending[xid]
		if !ok {
			if _, was := c.abandoned[xid]; was {
				// A late reply to a deadline-expired call: discard it
				// and keep reading. The stream is still in sync.
				delete(c.abandoned, xid)
				c.pmu.Unlock()
				*bufp = rec[:cap(rec)]
				c.bufPool.Put(bufp)
				continue
			}
			c.pmu.Unlock()
			*bufp = rec[:cap(rec)]
			c.bufPool.Put(bufp)
			// A reply nothing asked for means the stream is out of
			// sync; every outstanding call is now unanswerable.
			c.failAll(fmt.Errorf("%w: got %d", ErrXIDMismatch, xid))
			return
		}
		delete(c.pending, xid)
		c.pmu.Unlock()

		*bufp = rec[:cap(rec)]
		pc.rec, pc.buf = rec, bufp
		pc.done <- struct{}{}
	}
}

// failAll marks the client broken and unblocks every outstanding
// call with err. The first sticky error wins: a Close racing a
// transport failure stays ErrClientClosed.
func (c *Client) failAll(err error) {
	c.pmu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.reading = false
	for xid, pc := range c.pending {
		delete(c.pending, xid)
		pc.err = err
		pc.done <- struct{}{}
	}
	c.pmu.Unlock()
}

// Close closes the underlying connection and deterministically fails
// every outstanding call with ErrClientClosed — callers never block
// on a reply that will not come, even if the reader goroutine has not
// yet observed the closed connection.
func (c *Client) Close() error {
	c.pmu.Lock()
	c.closed = true
	if c.err == nil {
		c.err = ErrClientClosed
	}
	conn := c.conn
	for xid, pc := range c.pending {
		delete(c.pending, xid)
		pc.err = ErrClientClosed
		pc.done <- struct{}{}
	}
	c.pmu.Unlock()
	return conn.Close()
}
