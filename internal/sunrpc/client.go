package sunrpc

import (
	"fmt"
	"net"
	"sync"

	"flexrpc/internal/xdr"
)

// A Client issues Sun RPC calls for one program/version over a
// stream connection. Calls are serialized; the engine keeps one
// request outstanding at a time, as the kernel NFS clients of the
// era did per connection.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	prog    uint32
	vers    uint32
	nextXID uint32
	enc     xdr.Encoder
	recBuf  []byte
}

// NewClient returns a client speaking prog/vers over conn.
func NewClient(conn net.Conn, prog, vers uint32) *Client {
	return &Client{conn: conn, prog: prog, vers: vers, nextXID: 1}
}

// Call invokes proc: encodeArgs appends the argument body,
// decodeRes consumes the result body. decodeRes runs only on a
// successful accepted reply.
func (c *Client) Call(proc uint32, encodeArgs func(*xdr.Encoder), decodeRes func(*xdr.Decoder) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	xid := c.nextXID
	c.nextXID++
	c.enc.Reset()
	encodeCall(&c.enc, CallHeader{XID: xid, Prog: c.prog, Vers: c.vers, Proc: proc})
	if encodeArgs != nil {
		encodeArgs(&c.enc)
	}
	if err := writeRecord(c.conn, c.enc.Bytes()); err != nil {
		return fmt.Errorf("sunrpc: send: %w", err)
	}
	rec, err := readRecord(c.conn, c.recBuf)
	if err != nil {
		return fmt.Errorf("sunrpc: receive: %w", err)
	}
	c.recBuf = rec[:cap(rec)]
	d := xdr.NewDecoder(rec)
	replyXID, err := decodeReply(d)
	if err != nil {
		return err
	}
	if replyXID != xid {
		return fmt.Errorf("%w: got %d, want %d", ErrXIDMismatch, replyXID, xid)
	}
	if decodeRes != nil {
		return decodeRes(d)
	}
	return nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }
