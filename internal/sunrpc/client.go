package sunrpc

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"flexrpc/internal/xdr"
)

// A Client issues Sun RPC calls for one program/version over a
// stream connection. Concurrent calls pipeline: each call is tagged
// with a fresh xid, writes are serialized, and replies are matched to
// callers by xid, so many calls can be in flight on one connection at
// once — the multiplexing RFC 1057 xids exist for.
//
// The reply reader is demand-driven: it runs only while calls are
// outstanding and parks otherwise, so a connection can be shared with
// other readers (or other Clients) between call bursts.
type Client struct {
	conn net.Conn
	prog uint32
	vers uint32

	// wmu serializes request marshaling and record writes; a record's
	// header and fragments must not interleave with another call's.
	wmu sync.Mutex
	enc xdr.Encoder

	// pmu guards the pending map, the xid counter, the reader state
	// and the sticky transport error.
	pmu     sync.Mutex
	pending map[uint32]*pendingCall
	nextXID uint32
	reading bool
	err     error

	callPool sync.Pool // *pendingCall
	bufPool  sync.Pool // *[]byte record buffers
}

// pendingCall is one in-flight call awaiting its reply record.
type pendingCall struct {
	done chan struct{}
	rec  []byte  // reply record (valid when err is nil)
	buf  *[]byte // pooled backing buffer box for rec
	err  error
}

// NewClient returns a client speaking prog/vers over conn.
func NewClient(conn net.Conn, prog, vers uint32) *Client {
	return &Client{
		conn:    conn,
		prog:    prog,
		vers:    vers,
		nextXID: 1,
		pending: make(map[uint32]*pendingCall),
	}
}

func (c *Client) getCall() *pendingCall {
	if pc, ok := c.callPool.Get().(*pendingCall); ok {
		pc.rec, pc.buf, pc.err = nil, nil, nil
		return pc
	}
	return &pendingCall{done: make(chan struct{}, 1)}
}

func (c *Client) getBuf() *[]byte {
	if bp, ok := c.bufPool.Get().(*[]byte); ok {
		return bp
	}
	return new([]byte)
}

// Call invokes proc: encodeArgs appends the argument body,
// decodeRes consumes the result body. decodeRes runs only on a
// successful accepted reply. Call is safe for concurrent use;
// concurrent calls share the connection in flight.
func (c *Client) Call(proc uint32, encodeArgs func(*xdr.Encoder), decodeRes func(*xdr.Decoder) error) error {
	pc := c.getCall()

	// Register before writing so the reply cannot arrive unclaimed,
	// and make sure a reader is running to claim it.
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		c.callPool.Put(pc)
		return err
	}
	xid := c.nextXID
	c.nextXID++
	c.pending[xid] = pc
	if !c.reading {
		c.reading = true
		go c.readLoop()
	}
	c.pmu.Unlock()

	c.wmu.Lock()
	c.enc.Reset()
	encodeCall(&c.enc, CallHeader{XID: xid, Prog: c.prog, Vers: c.vers, Proc: proc})
	if encodeArgs != nil {
		encodeArgs(&c.enc)
	}
	err := writeRecord(c.conn, c.enc.Bytes())
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		_, still := c.pending[xid]
		delete(c.pending, xid)
		c.pmu.Unlock()
		if !still {
			// The reader resolved this call before the write error
			// surfaced; drain its signal so the pooled call is clean.
			<-pc.done
			if pc.buf != nil {
				*pc.buf = pc.rec[:cap(pc.rec)]
				c.bufPool.Put(pc.buf)
				pc.rec, pc.buf = nil, nil
			}
		}
		c.callPool.Put(pc)
		return fmt.Errorf("sunrpc: send: %w", err)
	}

	<-pc.done
	if pc.err != nil {
		err := pc.err
		c.callPool.Put(pc)
		return err
	}

	var d xdr.Decoder
	d.Reset(pc.rec)
	replyXID, err := decodeReply(&d)
	if err == nil && replyXID != xid {
		// Cannot happen — the reader demuxed on this xid — but keep
		// the check as a cheap invariant.
		err = fmt.Errorf("%w: got %d, want %d", ErrXIDMismatch, replyXID, xid)
	}
	if err == nil && decodeRes != nil {
		err = decodeRes(&d)
	}
	// The reply record is fully consumed: recycle its buffer.
	*pc.buf = pc.rec[:cap(pc.rec)]
	c.bufPool.Put(pc.buf)
	pc.rec, pc.buf = nil, nil
	c.callPool.Put(pc)
	return err
}

// readLoop drains reply records while calls are pending, matching
// each to its caller by xid. It exits as soon as the pending set is
// empty, leaving the connection free for other readers.
func (c *Client) readLoop() {
	for {
		c.pmu.Lock()
		if len(c.pending) == 0 || c.err != nil {
			c.reading = false
			c.pmu.Unlock()
			return
		}
		c.pmu.Unlock()

		bufp := c.getBuf()
		rec, err := readRecord(c.conn, *bufp)
		if err != nil {
			c.bufPool.Put(bufp)
			c.failAll(fmt.Errorf("sunrpc: receive: %w", err))
			return
		}
		if len(rec) < 4 {
			*bufp = rec[:cap(rec)]
			c.bufPool.Put(bufp)
			c.failAll(fmt.Errorf("%w: reply record of %d bytes", ErrBadMessage, len(rec)))
			return
		}
		xid := binary.BigEndian.Uint32(rec[:4])

		c.pmu.Lock()
		pc, ok := c.pending[xid]
		if !ok {
			c.pmu.Unlock()
			*bufp = rec[:cap(rec)]
			c.bufPool.Put(bufp)
			// A reply nothing asked for means the stream is out of
			// sync; every outstanding call is now unanswerable.
			c.failAll(fmt.Errorf("%w: got %d", ErrXIDMismatch, xid))
			return
		}
		delete(c.pending, xid)
		c.pmu.Unlock()

		*bufp = rec[:cap(rec)]
		pc.rec, pc.buf = rec, bufp
		pc.done <- struct{}{}
	}
}

// failAll marks the client broken and unblocks every outstanding
// call with err.
func (c *Client) failAll(err error) {
	c.pmu.Lock()
	c.err = err
	c.reading = false
	for xid, pc := range c.pending {
		delete(c.pending, xid)
		pc.err = err
		pc.done <- struct{}{}
	}
	c.pmu.Unlock()
}

// Close closes the underlying connection; outstanding calls fail.
func (c *Client) Close() error { return c.conn.Close() }
