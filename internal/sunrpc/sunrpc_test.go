package sunrpc

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"flexrpc/internal/xdr"
)

const (
	testProg = 200100
	testVers = 1
	procEcho = 1
	procAdd  = 2
	procBad  = 3
	procBoom = 4
)

func newTestServer() *Server {
	s := NewServer(testProg, testVers)
	s.Register(procEcho, func(args *xdr.Decoder, reply *xdr.Encoder) error {
		data, err := args.Opaque()
		if err != nil {
			return ErrGarbageArgs
		}
		reply.PutOpaque(data)
		return nil
	})
	s.Register(procAdd, func(args *xdr.Decoder, reply *xdr.Encoder) error {
		a, err := args.Int32()
		if err != nil {
			return ErrGarbageArgs
		}
		b, err := args.Int32()
		if err != nil {
			return ErrGarbageArgs
		}
		reply.PutInt32(a + b)
		return nil
	})
	s.Register(procBad, func(args *xdr.Decoder, reply *xdr.Encoder) error {
		return ErrGarbageArgs
	})
	s.Register(procBoom, func(args *xdr.Decoder, reply *xdr.Encoder) error {
		return errors.New("internal failure")
	})
	return s
}

// pair starts the test server over an in-memory connection and
// returns a connected client.
func pair(t *testing.T) *Client {
	t.Helper()
	cc, sc := net.Pipe()
	go func() { _ = newTestServer().ServeConn(sc) }()
	t.Cleanup(func() { cc.Close(); sc.Close() })
	return NewClient(cc, testProg, testVers)
}

func TestEchoRoundTrip(t *testing.T) {
	c := pair(t)
	payload := []byte("the quick brown fox")
	var got []byte
	err := c.Call(procEcho,
		func(e *xdr.Encoder) { e.PutOpaque(payload) },
		func(d *xdr.Decoder) error {
			b, err := d.OpaqueCopy()
			got = b
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestNullProcedure(t *testing.T) {
	c := pair(t)
	if err := c.Call(0, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialCallsIncrementXID(t *testing.T) {
	c := pair(t)
	for i := int32(0); i < 5; i++ {
		var sum int32
		err := c.Call(procAdd,
			func(e *xdr.Encoder) { e.PutInt32(i); e.PutInt32(10) },
			func(d *xdr.Decoder) error {
				var err error
				sum, err = d.Int32()
				return err
			})
		if err != nil {
			t.Fatal(err)
		}
		if sum != i+10 {
			t.Fatalf("sum = %d", sum)
		}
	}
}

func TestErrorStatuses(t *testing.T) {
	c := pair(t)
	var remote *RemoteError

	err := c.Call(procBad, func(e *xdr.Encoder) { e.PutInt32(0) }, nil)
	if !errors.As(err, &remote) || remote.Stat != GarbageArgs {
		t.Errorf("garbage err = %v", err)
	}
	err = c.Call(procBoom, nil, nil)
	if !errors.As(err, &remote) || remote.Stat != SystemErr {
		t.Errorf("system err = %v", err)
	}
	err = c.Call(99, nil, nil)
	if !errors.As(err, &remote) || remote.Stat != ProcUnavail {
		t.Errorf("proc unavail err = %v", err)
	}
}

func TestWrongProgramAndVersion(t *testing.T) {
	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()
	go func() { _ = newTestServer().ServeConn(sc) }()

	var remote *RemoteError
	wrongProg := NewClient(cc, testProg+1, testVers)
	err := wrongProg.Call(0, nil, nil)
	if !errors.As(err, &remote) || remote.Stat != ProgUnavail {
		t.Fatalf("prog err = %v", err)
	}
	wrongVers := NewClient(cc, testProg, testVers+7)
	err = wrongVers.Call(0, nil, nil)
	if !errors.As(err, &remote) || remote.Stat != ProgMismatch {
		t.Fatalf("vers err = %v", err)
	}
}

func TestConcurrentCallersSerialize(t *testing.T) {
	c := pair(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int32) {
			defer wg.Done()
			for i := int32(0); i < 25; i++ {
				var sum int32
				err := c.Call(procAdd,
					func(e *xdr.Encoder) { e.PutInt32(g); e.PutInt32(i) },
					func(d *xdr.Decoder) error {
						var err error
						sum, err = d.Int32()
						return err
					})
				if err != nil || sum != g+i {
					t.Errorf("g=%d i=%d: sum=%d err=%v", g, i, sum, err)
					return
				}
			}
		}(int32(g))
	}
	wg.Wait()
}

func TestRecordMarkingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{
		{},
		[]byte("short"),
		bytes.Repeat([]byte{0xAB}, 3000),
	}
	for _, m := range msgs {
		if err := writeRecord(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range msgs {
		got, err := readRecord(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record = %d bytes, want %d", len(got), len(want))
		}
	}
}

func TestRecordFragmentation(t *testing.T) {
	// A message larger than maxFragment must be split and
	// reassembled.
	big := make([]byte, maxFragment+1234)
	for i := range big {
		big[i] = byte(i)
	}
	var buf bytes.Buffer
	if err := writeRecord(&buf, big); err != nil {
		t.Fatal(err)
	}
	// First fragment header must not have the last-fragment bit.
	hdr := buf.Bytes()[:4]
	if hdr[0]&0x80 != 0 {
		t.Fatal("first fragment marked last")
	}
	got, err := readRecord(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("reassembly mismatch")
	}
}

func TestReadRecordRejectsHugeLengths(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0x7f, 0xff, 0xff, 0xff}) // ~2GB non-final fragment
	if _, err := readRecord(&buf, nil); err == nil {
		t.Fatal("expected oversize rejection")
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		var buf bytes.Buffer
		if err := writeRecord(&buf, data); err != nil {
			return false
		}
		got, err := readRecord(&buf, nil)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGarbledReplyDetected(t *testing.T) {
	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()
	go func() {
		// Read the call, then reply with a mismatched xid.
		rec, err := readRecord(sc, nil)
		if err != nil {
			return
		}
		_ = rec
		var e xdr.Encoder
		encodeAcceptedReply(&e, 0xdeadbeef, Success)
		_ = writeRecord(sc, e.Bytes())
	}()
	c := NewClient(cc, testProg, testVers)
	err := c.Call(0, nil, nil)
	if !errors.Is(err, ErrXIDMismatch) {
		t.Fatalf("err = %v, want xid mismatch", err)
	}
}

func TestOverTCPSocket(t *testing.T) {
	// End-to-end over a real TCP loopback socket.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := newTestServer()
	go func() { _ = srv.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewClient(conn, testProg, testVers)
	payload := bytes.Repeat([]byte("x"), 8192)
	var got []byte
	err = c.Call(procEcho,
		func(e *xdr.Encoder) { e.PutOpaque(payload) },
		func(d *xdr.Decoder) error {
			b, err := d.OpaqueCopy()
			got = b
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch over TCP")
	}
}

// BenchmarkRecordMarking measures the framing layer alone for
// message sizes around the fragment boundary.
func BenchmarkRecordMarking(b *testing.B) {
	for _, size := range []int{128, 8 << 10, maxFragment + 512} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			msg := make([]byte, size)
			var buf bytes.Buffer
			var scratch []byte
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := writeRecord(&buf, msg); err != nil {
					b.Fatal(err)
				}
				rec, err := readRecord(&buf, scratch)
				if err != nil {
					b.Fatal(err)
				}
				scratch = rec[:cap(rec)]
			}
		})
	}
}
