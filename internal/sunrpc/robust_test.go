package sunrpc

import (
	"bytes"
	"testing"
	"testing/quick"

	"flexrpc/internal/xdr"
)

// Property: the server dispatch path never panics on arbitrary call
// bytes, and always produces a parseable reply header.
func TestQuickDispatchNeverPanics(t *testing.T) {
	s := NewServer(1, 1)
	s.Register(1, func(args *xdr.Decoder, reply *xdr.Encoder) error {
		if _, err := args.Opaque(); err != nil {
			return ErrGarbageArgs
		}
		reply.PutUint32(0)
		return nil
	})
	f := func(record []byte) bool {
		var enc xdr.Encoder
		s.dispatch(xdr.NewDecoder(record), &enc)
		// Reply must at least carry xid + type + stat words.
		return len(enc.Bytes()) >= 12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: readRecord on arbitrary streams errors or terminates; it
// never panics and never allocates beyond its cap.
func TestQuickReadRecordNeverPanics(t *testing.T) {
	f := func(stream []byte) bool {
		_, _ = readRecord(bytes.NewReader(stream), nil)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
