//go:build !race

package sunrpc

const raceEnabled = false
