package sunrpc

// Netpoll server mode: instead of one reader goroutine per connection
// (serveShared), connections register their raw file descriptor with a
// fixed set of edge-triggered pollers (internal/netpoll). On readiness
// a poller performs non-blocking reads into compact per-connection
// reassembly state; complete records go to the same shared workerPool
// and the same combining reply flusher (srvConn.enqueueReply) as the
// goroutine path, so steady-state goroutines are O(pollers + workers +
// accept shards) — independent of the connection count — while the
// Drain / panic-isolation / 0-alloc semantics are unchanged.
//
// fd ownership: the npConn extracts the descriptor once via
// syscall.RawConn and keeps the net.Conn alive for its whole lifetime,
// so the number stays valid. Reads go straight through syscall.Read
// (the sockets are already non-blocking under Go's runtime); writes
// keep using conn.Write so the Go netpoller parks blocked flushers.
// The descriptor is deregistered from the poller before conn.Close()
// runs — closing a registered fd invites the fd-reuse race where a
// recycled descriptor number receives a stale event.

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"syscall"
	"time"

	"flexrpc/internal/netpoll"
)

// aLongTimeAgo is a past deadline used to unpark blocked writers.
var aLongTimeAgo = time.Unix(1, 0)

// SetNetpoll switches the server to the event-driven readiness
// runtime: accepted connections register with a fixed set of pollers
// instead of spending a reader goroutine each, so idle connections
// cost only their compact per-conn state (~a few hundred bytes), not a
// goroutine stack. On platforms without netpoll support (see
// internal/netpoll), or for connections that expose no raw descriptor
// (in-memory pipes), the server transparently falls back to the
// goroutine-per-connection reader with identical semantics. Implies a
// shared worker pool even when SetConcurrency was never raised. Set
// before serving.
func (s *Server) SetNetpoll(on bool) { s.netpoll = on }

// SetNetpollPollers overrides the number of poller goroutines; n <= 0
// (the default) means min(GOMAXPROCS, accept shards). Set before
// serving.
func (s *Server) SetNetpollPollers(n int) { s.netpollPollers = n }

// npReadBuf is the scratch-buffer size for poller reads. One buffer is
// in use per concurrently-draining connection (pooled, not per-conn):
// idle connections hold only their reassembly state.
const npReadBuf = 64 << 10

// recordAssembler incrementally reassembles record-marked messages
// (RFC 1057 §10) from arbitrary byte chunks — the push-style
// counterpart of readRecordLimit for readers that cannot block. Header
// bytes accumulate in hdr; body bytes append to the caller's record
// buffer. Total record size is bounded by limit.
type recordAssembler struct {
	limit   int
	hdrLen  int  // header bytes collected so far (< 4 mid-header)
	fragRem int  // body bytes remaining in the current fragment
	last    bool // current fragment is the record's last
	started bool // some record bytes consumed since the last complete record
	hdr     [4]byte
}

// midRecord reports whether the assembler is holding a partial record.
func (a *recordAssembler) midRecord() bool { return a.started || a.hdrLen > 0 }

// feed consumes bytes from b into *rec. It returns the count consumed
// and whether *rec now holds one complete record; when complete, the
// remaining bytes of b are left for the next call (with a fresh rec).
func (a *recordAssembler) feed(b []byte, rec *[]byte) (int, bool, error) {
	consumed := 0
	for consumed < len(b) {
		if a.fragRem == 0 {
			n := copy(a.hdr[a.hdrLen:], b[consumed:])
			a.hdrLen += n
			consumed += n
			if a.hdrLen < 4 {
				return consumed, false, nil
			}
			a.hdrLen = 0
			a.started = true
			word := binary.BigEndian.Uint32(a.hdr[:])
			a.last = word&lastFragFlag != 0
			frag := int(word &^ lastFragFlag)
			if frag > a.limit || len(*rec)+frag > a.limit {
				return consumed, false, fmt.Errorf("sunrpc: record exceeds %d bytes", a.limit)
			}
			a.fragRem = frag
			if a.fragRem == 0 && a.last {
				a.started = false
				return consumed, true, nil
			}
			continue
		}
		chunk := a.fragRem
		if rest := len(b) - consumed; chunk > rest {
			chunk = rest
		}
		out := growRecord(*rec, chunk)
		out = append(out, b[consumed:consumed+chunk]...)
		*rec = out
		consumed += chunk
		a.fragRem -= chunk
		if a.fragRem == 0 && a.last {
			a.started = false
			return consumed, true, nil
		}
	}
	return consumed, false, nil
}

// npConn read states. Exactly one goroutine runs readLoop at a time:
// the one that transitioned rstate to rActive under mu.
const (
	rIdle   = iota // registered, waiting for a readiness edge
	rActive        // a goroutine is draining the descriptor
	rPaused        // over the pending-reply cap; resumed by the flusher
	rDone          // read side finished (EOF, error, or close)
)

// npConn is a netpoll-registered connection: the shared srvConn write
// state plus the poller-side read state machine and record reassembly.
// No goroutines — reads run on poller wakeups, replies on pool
// workers.
type npConn struct {
	srvConn
	srv   *Server
	pl    *netpoll.Poller
	fd    int
	limit int
	pool  *workerPool

	// Reassembly state, touched only by the goroutine owning rActive.
	asm    recordAssembler
	holder *[]byte // partially assembled record (pool-backed), nil between records
	carry  []byte  // read bytes not yet ingested when the pending cap paused us (< one scratch buffer)

	// Guarded by srvConn.mu.
	rstate    int
	rearm     bool  // readiness edge arrived while rActive; drain again before idling
	closing   bool  // Close requested; reader must wind down
	njobs     int   // records submitted to the pool, replies not yet flushed/discarded
	needClose bool  // fd close requested while a flush held mu; done in afterEnqueue
	tornDown  bool  // finish() ran (or is about to); guards double teardown
	err       error // terminal status reported by ServeConn

	closeOnce sync.Once
	done      chan struct{} // closed by finish(); ServeConn parks here
}

// registerNetpoll tries to serve conn in netpoll mode. handled=false
// means the caller should fall back to a goroutine reader (platform or
// descriptor unsupported); handled=true with a nil npConn means the
// server is draining and the conn was dropped.
func (s *Server) registerNetpoll(nc net.Conn) (*npConn, bool) {
	if !s.netpoll || !netpoll.Supported() {
		return nil, false
	}
	sc, ok := nc.(syscall.Conn)
	if !ok {
		return nil, false
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return nil, false
	}
	fd := -1
	if err := raw.Control(func(u uintptr) { fd = int(u) }); err != nil || fd < 0 {
		return nil, false
	}

	limit := s.MaxMessageSize
	if limit <= 0 {
		limit = DefaultMaxRecord
	}

	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		nc.Close()
		return nil, true
	}
	if s.pool == nil {
		n := s.concurrency
		if n < 1 {
			n = 1
		}
		s.pool = newWorkerPool(s, n)
	}
	if len(s.pollers) == 0 {
		if err := s.startPollersLocked(); err != nil {
			s.mu.Unlock()
			return nil, false
		}
	}
	pl := s.pollers[s.pollerNext%len(s.pollers)]
	s.pollerNext++
	c := &npConn{srv: s, pl: pl, fd: fd, limit: limit, pool: s.pool}
	c.conn = nc
	c.np = c
	c.flushed.L = &c.mu
	c.done = make(chan struct{})
	c.asm.limit = limit
	s.poolUsers++
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()

	if err := pl.Register(fd, c.onReady); err != nil {
		s.untrack(c)
		s.mu.Lock()
		s.poolUsers--
		if s.poolUsers == 0 {
			s.poolWake.Broadcast()
		}
		s.mu.Unlock()
		return nil, false
	}
	s.stats.AddPollerConnRegistered()
	// Data that arrived before the edge-triggered registration gets no
	// edge; kick one read pass to pick it up.
	c.onReady(false)
	return c, true
}

// startPollersLocked starts the poller set (s.mu held). Default count:
// min(GOMAXPROCS, accept shards) — one poller can multiplex very many
// connections, so there is no reason to exceed either bound.
func (s *Server) startPollersLocked() error {
	n := s.netpollPollers
	if n <= 0 {
		shards := len(s.listeners)
		if shards < 1 {
			shards = 1
		}
		n = runtime.GOMAXPROCS(0)
		if n > shards {
			n = shards
		}
	}
	for i := 0; i < n; i++ {
		p, err := netpoll.New(func(events int) { s.stats.AddPollerWakeups(events) })
		if err != nil {
			for _, q := range s.pollers {
				q.Close()
			}
			s.pollers = nil
			return err
		}
		s.pollers = append(s.pollers, p)
	}
	return nil
}

// onReady is the poller callback: claim rActive and drain, or note the
// edge for the goroutine already draining.
func (c *npConn) onReady(bool) {
	c.mu.Lock()
	switch c.rstate {
	case rActive:
		c.rearm = true
		c.mu.Unlock()
		return
	case rPaused, rDone:
		// Paused conns are resumed by the flusher (which always drains
		// to EAGAIN afterwards, so no edge is lost); done conns are
		// winding down.
		c.mu.Unlock()
		return
	}
	c.rstate = rActive
	c.mu.Unlock()
	c.readLoop()
}

// readLoop drains the descriptor until EAGAIN (back to rIdle), the
// pending-reply cap (rPaused; the flusher resumes), or the read side
// finishes (rDone). Runs on whichever goroutine claimed rActive — a
// poller, a pool worker resuming after backpressure, or the accept
// path's initial kick.
func (c *npConn) readLoop() {
	bufp := c.srv.npRead.Get().(*[]byte)
	defer c.srv.npRead.Put(bufp)
	buf := *bufp
	for {
		c.mu.Lock()
		if c.closing || c.werr != nil {
			c.finishReadLocked(nil)
			return
		}
		if len(c.pending) > srvConnMaxPending {
			// Backpressure: same cap as serveShared's parked reader,
			// but instead of blocking a goroutine we park the state
			// machine; enqueueReply resumes it once under the cap.
			c.rstate = rPaused
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()

		if m := len(c.carry); m > 0 {
			// Bytes left over from the batch that tripped the pending
			// cap: ingest them before touching the descriptor. The
			// carry is always a strict suffix of one scratch batch, so
			// it fits the scratch buffer.
			m = copy(buf, c.carry)
			c.carry = c.carry[:0]
			if ferr := c.ingest(buf[:m]); ferr != nil {
				c.mu.Lock()
				c.finishReadLocked(ferr)
				return
			}
			continue
		}

		n, err := syscall.Read(c.fd, buf)
		switch {
		case err == syscall.EINTR:
			continue
		case err == syscall.EAGAIN:
			c.mu.Lock()
			if c.rearm {
				// An edge fired while we were draining; its data may
				// have landed after our last read. Go around again.
				c.rearm = false
				c.mu.Unlock()
				continue
			}
			if c.closing || c.werr != nil {
				c.finishReadLocked(nil)
				return
			}
			c.rstate = rIdle
			c.mu.Unlock()
			return
		case err != nil:
			// Reset/closed-by-peer (and EBADF from an external close)
			// wind down quietly like the goroutine path; anything else
			// is a real read error.
			var rerr error
			if err != syscall.ECONNRESET && err != syscall.EPIPE && err != syscall.EBADF {
				rerr = fmt.Errorf("sunrpc: read: %w", err)
			}
			c.mu.Lock()
			c.finishReadLocked(rerr)
			return
		case n == 0:
			// Clean EOF — possibly a half-close with pipelined replies
			// still owed. finishReadLocked keeps the descriptor open
			// until the last owed reply flushes.
			c.mu.Lock()
			c.finishReadLocked(nil)
			return
		}
		if ferr := c.ingest(buf[:n]); ferr != nil {
			c.mu.Lock()
			c.finishReadLocked(ferr)
			return
		}
	}
}

// ingest feeds one read's bytes through the reassembler, submitting
// each completed record to the shared pool. The pending-reply cap is
// enforced per record, not per batch: a single 64 KiB read can carry
// hundreds of pipelined requests whose replies are each far larger
// than the request, so once the cap trips, the unconsumed remainder is
// stashed in carry and readLoop's next check parks the state machine.
// Steady state allocates nothing: record holders are pooled and grow
// to their working size.
func (c *npConn) ingest(b []byte) error {
	for len(b) > 0 {
		if c.holder == nil {
			c.holder = c.pool.bufs.Get().(*[]byte)
			*c.holder = (*c.holder)[:0]
		}
		n, complete, err := c.asm.feed(b, c.holder)
		if err != nil {
			return err
		}
		b = b[n:]
		if !complete {
			continue
		}
		holder := c.holder
		c.holder = nil
		c.srv.stats.AddQueued()
		c.inflight.Add(1)
		c.mu.Lock()
		c.njobs++
		over := len(c.pending) > srvConnMaxPending
		c.mu.Unlock()
		c.pool.jobs <- poolJob{&c.srvConn, holder}
		if over && len(b) > 0 {
			c.carry = append(c.carry[:0], b...)
			return nil
		}
	}
	if c.asm.midRecord() {
		c.srv.stats.AddPartialRead()
	}
	return nil
}

// finishReadLocked retires the read side (mu held on entry; unlocks).
// The descriptor closes immediately on error or requested close; on a
// clean EOF with replies still owed it stays open so the tail replies
// reach the half-closed peer, and the last flush tears down.
func (c *npConn) finishReadLocked(rerr error) {
	if c.err == nil {
		c.err = rerr
	}
	c.rstate = rDone
	closeNow := c.closing || c.werr != nil || rerr != nil
	fin := c.njobs == 0 && !c.tornDown
	if fin {
		c.tornDown = true
	}
	c.mu.Unlock()
	if closeNow || fin {
		c.closeFD()
	}
	if fin {
		c.finish()
	}
}

// poisonLocked is enqueueReply's write-error hook (mu held): the
// goroutine path closes the conn inline to unblock its reader, but a
// netpoll descriptor must be deregistered first, which cannot happen
// under mu — flag it and let afterEnqueue do the close.
func (c *npConn) poisonLocked() {
	c.closing = true
	if c.rstate != rActive {
		c.rstate = rDone
	}
	c.needClose = true
}

// afterEnqueue runs after enqueueReply releases mu, crediting done
// flushed (or discarded) replies: it performs deferred fd closes,
// resumes a reader paused on backpressure, and tears the connection
// down once the read side is done and the last owed reply left.
func (c *npConn) afterEnqueue(done int) {
	c.mu.Lock()
	c.njobs -= done
	needClose := c.needClose
	c.needClose = false
	resume := false
	if c.rstate == rPaused && !c.closing && c.werr == nil && len(c.pending) <= srvConnMaxPending {
		c.rstate = rActive
		resume = true
	}
	fin := c.rstate == rDone && c.njobs == 0 && !c.tornDown
	if fin {
		c.tornDown = true
	}
	c.mu.Unlock()
	if needClose || fin {
		c.closeFD()
	}
	if fin {
		c.finish()
	}
	if resume {
		// Resume on a fresh goroutine: this is a pool worker, and a
		// readLoop blocked submitting back into the pool from a worker
		// could deadlock the pool against itself. Pause/resume only
		// happens under slow-reader backpressure, so the transient
		// goroutine does not disturb the steady-state count.
		go c.readLoop()
	}
}

// Close (the Drain/track path) winds the connection down. If a reader
// is actively draining, it observes closing and finishes; otherwise
// the descriptor closes here. A flusher blocked in Write holds njobs —
// the past write deadline unparks it so the poison path can run.
func (c *npConn) Close() error {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return nil
	}
	c.closing = true
	c.conn.SetWriteDeadline(aLongTimeAgo)
	if c.rstate == rActive {
		c.mu.Unlock()
		return nil
	}
	c.rstate = rDone
	fin := c.njobs == 0 && !c.tornDown
	if fin {
		c.tornDown = true
	}
	c.mu.Unlock()
	c.closeFD()
	if fin {
		c.finish()
	}
	return nil
}

// closeFD deregisters from the poller, then closes the descriptor —
// in that order, so a recycled fd number cannot receive stale events.
func (c *npConn) closeFD() {
	c.closeOnce.Do(func() {
		c.pl.Deregister(c.fd)
		c.conn.Close()
	})
}

// finish is the single teardown point (guarded by tornDown): release
// the reassembly holder, untrack, leave the worker pool, and wake
// ServeConn waiters.
func (c *npConn) finish() {
	if c.holder != nil {
		*c.holder = (*c.holder)[:cap(*c.holder)]
		c.pool.bufs.Put(c.holder)
		c.holder = nil
	}
	c.srv.untrack(c)
	c.srv.mu.Lock()
	c.srv.poolUsers--
	if c.srv.poolUsers == 0 {
		c.srv.poolWake.Broadcast()
	}
	c.srv.mu.Unlock()
	c.mu.Lock()
	if c.err == nil {
		c.err = c.werr
	}
	c.mu.Unlock()
	close(c.done)
}

// net.Conn delegation — npConn stands in for its connection in the
// server's conns map, so Drain reaches the netpoll-safe Close above;
// everything else passes through.
func (c *npConn) Read(b []byte) (int, error)         { return c.conn.Read(b) }
func (c *npConn) Write(b []byte) (int, error)        { return c.conn.Write(b) }
func (c *npConn) LocalAddr() net.Addr                { return c.conn.LocalAddr() }
func (c *npConn) RemoteAddr() net.Addr               { return c.conn.RemoteAddr() }
func (c *npConn) SetDeadline(t time.Time) error      { return c.conn.SetDeadline(t) }
func (c *npConn) SetReadDeadline(t time.Time) error  { return c.conn.SetReadDeadline(t) }
func (c *npConn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }
