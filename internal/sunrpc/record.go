package sunrpc

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Record marking (RFC 1057 §10): on stream transports each RPC
// message is sent as one or more fragments, each preceded by a
// 32-bit header whose high bit marks the last fragment and whose low
// 31 bits carry the fragment length.

const (
	lastFragFlag = 1 << 31
	maxFragment  = 1 << 20 // fragments we emit; larger messages split
)

// DefaultMaxRecord bounds the total size of a received record when
// the reader was not given an explicit limit, protecting it from
// corrupt length words.
const DefaultMaxRecord = 64 << 20

// writeRecord sends data as a record-marked message, splitting it
// into fragments of at most maxFragment bytes.
func writeRecord(w io.Writer, data []byte) error {
	var hdr [4]byte
	for {
		frag := data
		last := true
		if len(frag) > maxFragment {
			frag, last = data[:maxFragment], false
		}
		n := uint32(len(frag))
		if last {
			n |= lastFragFlag
		}
		binary.BigEndian.PutUint32(hdr[:], n)
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(frag); err != nil {
			return err
		}
		if last {
			return nil
		}
		data = data[maxFragment:]
	}
}

// appendRecord appends data to dst as a record-marked message —
// writeRecord's framing, built in memory so a writer can coalesce
// several records into one Write call.
func appendRecord(dst, data []byte) []byte {
	for {
		frag := data
		last := true
		if len(frag) > maxFragment {
			frag, last = data[:maxFragment], false
		}
		word := uint32(len(frag))
		if last {
			word |= lastFragFlag
		}
		dst = binary.BigEndian.AppendUint32(dst, word)
		dst = append(dst, frag...)
		if last {
			return dst
		}
		data = data[maxFragment:]
	}
}

// readRecord reads one record-marked message, reassembling
// fragments. buf is reused when large enough. Fragment headers are
// read into buf's spare capacity, not a local array — a local would
// escape through the io.Reader and put one allocation on every
// message.
func readRecord(r io.Reader, buf []byte) ([]byte, error) {
	return readRecordLimit(r, buf, DefaultMaxRecord)
}

// readRecordLimit is readRecord bounded to limit total bytes
// (DefaultMaxRecord when limit <= 0). A fragment's length word is
// attacker-controlled until its bytes actually arrive, so the buffer
// grows at most one bounded chunk ahead of received data — a hostile
// length prefix cannot force a huge allocation up front.
func readRecordLimit(r io.Reader, buf []byte, limit int) ([]byte, error) {
	if limit <= 0 {
		limit = DefaultMaxRecord
	}
	out := buf[:0]
	for {
		out = growRecord(out, 4)
		hdr := out[len(out) : len(out)+4]
		if _, err := io.ReadFull(r, hdr); err != nil {
			return nil, err
		}
		word := binary.BigEndian.Uint32(hdr)
		last := word&lastFragFlag != 0
		n := int(word &^ lastFragFlag)
		if n > limit || len(out)+n > limit {
			return nil, fmt.Errorf("%w: record exceeds %d bytes", ErrBadMessage, limit)
		}
		for n > 0 {
			chunk := n
			if chunk > maxFragment {
				chunk = maxFragment
			}
			out = growRecord(out, chunk)
			out = out[:len(out)+chunk]
			if _, err := io.ReadFull(r, out[len(out)-chunk:]); err != nil {
				return nil, err
			}
			n -= chunk
		}
		if last {
			return out, nil
		}
	}
}

// growRecord ensures n bytes of spare capacity past len(out),
// growing geometrically so a k-fragment record costs O(log k)
// allocations, and a caller reusing the returned buffer
// (rec[:cap(rec)]) stops allocating once it has seen its
// steady-state message size.
func growRecord(out []byte, n int) []byte {
	if cap(out)-len(out) >= n {
		return out
	}
	newCap := 2 * cap(out)
	if newCap < len(out)+n {
		newCap = len(out) + n
	}
	if newCap < 512 {
		newCap = 512
	}
	grown := make([]byte, len(out), newCap)
	copy(grown, out)
	return grown
}
