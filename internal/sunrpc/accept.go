package sunrpc

import (
	"context"
	"errors"
	"syscall"
	"time"
)

// Clock abstracts time for the accept rate limiter. It is a structural
// subset of internal/runtime.Clock, so tests can hand the server a
// FakeClock without sunrpc importing the runtime package.
type Clock interface {
	Now() time.Time
	Sleep(ctx context.Context, d time.Duration) error
}

// wallClock is the default real-time Clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SetClock replaces the clock driving the accept rate limiter; nil
// (the default) means wall time. Set before serving.
func (s *Server) SetClock(c Clock) { s.clock = c }

// SetAcceptRate paces each accept shard with a token bucket of perSec
// tokens per second and the given burst (minimum 1): an accept storm
// then trickles into the pollers at a bounded rate instead of
// monopolizing them, at the cost of connection-establishment latency
// under the storm. perSec <= 0 (the default) disables pacing. Each
// Serve/ServeShards listener gets its own bucket, so a multi-shard
// server admits shards × perSec connections per second. Set before
// serving.
func (s *Server) SetAcceptRate(perSec float64, burst int) {
	s.acceptRate = perSec
	s.acceptBurst = burst
}

// acceptLimiter is one shard's token bucket. It lives entirely on the
// shard's accept goroutine, so no locking.
type acceptLimiter struct {
	clock  Clock
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func (s *Server) newAcceptLimiter() *acceptLimiter {
	if s.acceptRate <= 0 {
		return nil
	}
	ck := s.clock
	if ck == nil {
		ck = wallClock{}
	}
	burst := float64(s.acceptBurst)
	if burst < 1 {
		burst = 1
	}
	return &acceptLimiter{clock: ck, rate: s.acceptRate, burst: burst, tokens: burst, last: ck.Now()}
}

// take blocks until a token is available and reports whether it had to
// wait — the AcceptThrottled signal.
func (l *acceptLimiter) take() bool {
	l.refill()
	throttled := false
	for l.tokens < 1 {
		need := (1 - l.tokens) / l.rate
		// The extra nanosecond covers float truncation so one sleep
		// normally suffices; under a FakeClock the advance is exact.
		l.clock.Sleep(context.Background(), time.Duration(need*float64(time.Second))+time.Nanosecond)
		throttled = true
		l.refill()
	}
	l.tokens--
	return throttled
}

func (l *acceptLimiter) refill() {
	now := l.clock.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	l.last = now
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
}

// acceptAction classifies an Accept error (see classifyAcceptError).
type acceptAction int

const (
	acceptFatal   acceptAction = iota // unknown or permanent: stop the shard
	acceptRetry                       // a connection died in the backlog: retry now
	acceptBackoff                     // resource exhaustion: back off at the cap
)

// classifyAcceptError classifies on errno — the ground truth the
// deprecated net.Error.Temporary lumped together. A connection that
// was aborted while queued in the backlog (ECONNABORTED, or a signal
// interrupting the accept) costs nothing to retry immediately; fd or
// buffer exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) only clears on the
// timescale of other connections closing, so those back off; anything
// else — including errors that carry no errno at all — is treated as
// permanent rather than guessed at.
func classifyAcceptError(err error) acceptAction {
	var errno syscall.Errno
	if !errors.As(err, &errno) {
		return acceptFatal
	}
	switch errno {
	case syscall.ECONNABORTED, syscall.EINTR, syscall.ECONNRESET:
		return acceptRetry
	case syscall.EMFILE, syscall.ENFILE, syscall.ENOBUFS, syscall.ENOMEM:
		return acceptBackoff
	}
	return acceptFatal
}
