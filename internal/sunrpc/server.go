package sunrpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"flexrpc/internal/netpoll"
	"flexrpc/internal/stats"
	"flexrpc/internal/xdr"
)

// A ProcHandler implements one procedure: decode arguments from
// args, append results to reply. Returning ErrGarbageArgs reports
// undecodable arguments to the caller; any other error is a system
// error.
type ProcHandler func(args *xdr.Decoder, reply *xdr.Encoder) error

// ErrGarbageArgs signals that a handler could not decode its
// arguments; it maps to the GARBAGE_ARGS accept status.
var ErrGarbageArgs = errors.New("sunrpc: garbage arguments")

// A PanicError reports a recovered handler panic. The peer sees a
// bare SYSTEM_ERR accept status (the Sun RPC reply carries no error
// payload); the server process keeps the value and stack for logs.
type PanicError struct {
	Proc  uint32
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sunrpc: handler for proc %d panicked: %v", e.Proc, e.Value)
}

// Accept-loop backoff cap for resource-exhaustion errors (EMFILE and
// friends): long enough that a starved shard is not spinning, low
// enough that Drain is never held up long.
const acceptBackoffMax = 100 * time.Millisecond

// A Server dispatches Sun RPC calls for one program/version.
type Server struct {
	prog     uint32
	vers     uint32
	handlers map[uint32]ProcHandler

	// MaxMessageSize bounds received request records; zero means
	// DefaultMaxRecord. Set before serving.
	MaxMessageSize int

	concurrency int
	stats       *stats.Endpoint

	// Netpoll mode (see netpoll.go): event-driven readiness readers
	// instead of a goroutine per connection. npRead pools the scratch
	// buffers poller reads drain into.
	netpoll        bool
	netpollPollers int
	npRead         sync.Pool

	// Accept rate limiting: a token bucket per accept shard (see
	// accept.go). The clock is swappable so tests drive it with a
	// FakeClock.
	acceptRate  float64
	acceptBurst int
	clock       Clock

	// Overload protection: maxInflight bounds calls across every
	// connection; over-cap (and post-drain) calls answer SYSTEM_ERR —
	// the only pushback the bare Sun RPC wire can carry — instead of
	// queueing behind work the server cannot finish.
	maxInflight int64
	inflight    atomic.Int64
	draining    atomic.Bool

	mu         sync.Mutex
	listeners  []net.Listener
	conns      map[net.Conn]struct{}
	pool       *workerPool // shared across connections; nil until first concurrent conn
	poolUsers  int         // connection readers currently able to submit to pool
	poolWake   sync.Cond   // broadcast (under mu) when poolUsers reaches zero
	pollers    []*netpoll.Poller
	pollerNext int // round-robin poller assignment for new conns
}

// NewServer creates a server for prog/vers. Procedure 0 (the null
// procedure every Sun RPC program must provide) is pre-registered.
func NewServer(prog, vers uint32) *Server {
	s := &Server{prog: prog, vers: vers, handlers: make(map[uint32]ProcHandler)}
	s.poolWake.L = &s.mu
	s.npRead.New = func() any { b := make([]byte, npReadBuf); return &b }
	s.handlers[0] = func(*xdr.Decoder, *xdr.Encoder) error { return nil }
	return s
}

// Register installs the handler for proc, replacing any previous
// one.
func (s *Server) Register(proc uint32, h ProcHandler) {
	s.handlers[proc] = h
}

// SetConcurrency sets the size of the server's shared worker pool.
// n <= 1 (the default) keeps the serial in-order loop on every
// connection; n > 1 dispatches requests from all connections onto one
// bounded pool of n workers, so the goroutine bill is O(conns +
// workers) — one reader per connection plus the shared pool — rather
// than O(conns × workers). Replies are coalesced per connection by
// whichever worker holds the flush at the time (see srvConn). Out-of-
// order replies are legal on the Sun RPC wire — the client
// demultiplexes by xid. Set before serving.
func (s *Server) SetConcurrency(n int) { s.concurrency = n }

// SetStats points the server's queue/flush/panic counters at e; a nil
// endpoint (the default) records nothing. Set before serving.
func (s *Server) SetStats(e *stats.Endpoint) { s.stats = e }

// SetMaxInflight bounds concurrently dispatched calls across every
// connection; calls past the bound answer SYSTEM_ERR without invoking
// a handler. n <= 0 (the default) means unlimited. Set before serving.
func (s *Server) SetMaxInflight(n int) { s.maxInflight = int64(n) }

// Inflight reports the calls currently being dispatched.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully retires the server: listeners passed to Serve stop
// accepting, new calls on existing connections answer SYSTEM_ERR, and
// Drain waits (bounded by ctx) for in-flight dispatches to finish
// before closing the remaining connections and stopping the shared
// worker pool. It reports ctx.Err() when in-flight calls outlive the
// deadline (connections are closed regardless, so blocked peers
// unpark; the pool is then detached and retired in the background
// once its last reader leaves, since a stuck reader may still hold a
// reference to it). Connections served via ServeConn directly were
// never handed to the server, so Drain cannot close them: their
// callers must close them, or the readers they occupy keep the pool
// alive past the deadline.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.mu.Unlock()

	var err error
	for s.inflight.Load() > 0 {
		if err = ctx.Err(); err != nil {
			break
		}
		select {
		case <-ctx.Done():
			err = ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
		if err != nil {
			break
		}
	}

	// Snapshot then close outside the lock: a netpoll conn's Close
	// finishes the connection inline (untrack, pool departure), which
	// needs s.mu itself.
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = nil
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}

	// Stop the shared pool once every connection reader has wound
	// down (closing the conns above unblocks them). A reader mid-
	// submit still holds a pool reference, so closing the jobs
	// channel earlier could panic a send; poolUsers counts exactly
	// those readers, and the last one out broadcasts poolWake. The
	// waker goroutine turns a ctx expiry into a broadcast so the
	// wait below never outlives the deadline.
	wakerDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.poolWake.Broadcast()
			s.mu.Unlock()
		case <-wakerDone:
		}
	}()
	s.mu.Lock()
	for s.poolUsers > 0 && ctx.Err() == nil {
		s.poolWake.Wait()
	}
	pool, users := s.pool, s.poolUsers
	s.pool = nil
	s.mu.Unlock()
	close(wakerDone)
	if pool != nil {
		if users == 0 {
			close(pool.jobs)
			pool.wg.Wait()
		} else {
			// Deadline expired with readers still registered. The pool
			// is detached (no new connection can reach it, since the
			// server is draining) and retired in the background the
			// moment the last reader leaves, so repeated drain/recreate
			// cycles cannot accumulate worker goroutines.
			if err == nil {
				err = ctx.Err()
			}
			go func() {
				s.mu.Lock()
				for s.poolUsers > 0 {
					s.poolWake.Wait()
				}
				s.mu.Unlock()
				close(pool.jobs)
				pool.wg.Wait()
			}()
		}
	}

	// Netpoll pollers go last: every registered conn counts as a pool
	// user, so once the wait above has seen poolUsers reach zero no
	// callback can be mid-flight. Close signals the event loops and
	// returns without waiting (a loop wedged behind a stuck pool in
	// the deadline-expired case exits once the pool drains).
	s.mu.Lock()
	pollers := s.pollers
	s.pollers = nil
	s.mu.Unlock()
	for _, p := range pollers {
		p.Close()
	}
	return err
}

// track registers conn for closure at drain time; it reports false
// (and closes conn) when the server is already draining.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		conn.Close()
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// ServeConn processes calls from conn until it closes, returning nil
// on clean EOF. With SetConcurrency(n > 1) requests are executed by
// the server's shared worker pool and replies are coalesced; otherwise
// requests run serially in arrival order.
func (s *Server) ServeConn(conn net.Conn) error {
	limit := s.MaxMessageSize
	if limit <= 0 {
		limit = DefaultMaxRecord
	}
	if s.netpoll {
		// Netpoll mode: register with a poller and park until the
		// connection winds down. Unlike the goroutine paths, these
		// conns are tracked, so Drain closes them. Conns without a
		// usable descriptor (in-memory pipes) and platforms without a
		// poller fall through to the goroutine readers.
		if c, handled := s.registerNetpoll(conn); handled {
			if c == nil {
				return nil // dropped: server already draining
			}
			<-c.done
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return err
		}
	}
	if s.concurrency > 1 {
		return s.serveShared(conn, limit)
	}
	var enc xdr.Encoder
	var recBuf []byte
	for {
		rec, err := readRecordLimit(conn, recBuf, limit)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("sunrpc: read: %w", err)
		}
		recBuf = rec[:cap(rec)]
		enc.Reset()
		s.dispatch(xdr.NewDecoder(rec), &enc)
		if err := writeRecord(conn, enc.Bytes()); err != nil {
			return fmt.Errorf("sunrpc: write: %w", err)
		}
	}
}

// A workerPool executes dispatches for every concurrent connection of
// one Server: a fixed set of workers draining one bounded jobs
// channel. Each job carries the connection it belongs to, so replies
// land on the right stream; record buffers are pooled across
// connections, so the steady-state path allocates nothing.
type workerPool struct {
	jobs chan poolJob
	wg   sync.WaitGroup
	bufs sync.Pool
}

type poolJob struct {
	c      *srvConn
	holder *[]byte
}

func newWorkerPool(s *Server, n int) *workerPool {
	p := &workerPool{
		jobs: make(chan poolJob, n),
		bufs: sync.Pool{New: func() any { return new([]byte) }},
	}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.run(s)
	}
	return p
}

func (p *workerPool) run(s *Server) {
	defer p.wg.Done()
	dec := xdr.NewDecoder(nil)
	var enc xdr.Encoder
	for j := range p.jobs {
		rec := *j.holder
		enc.Reset()
		dec.Reset(rec)
		s.dispatch(dec, &enc)
		*j.holder = rec[:cap(rec)]
		p.bufs.Put(j.holder)
		j.c.enqueueReply(s, enc.Bytes())
	}
}

// srvConn is the compact per-connection state of the shared-pool
// server: the net.Conn, a WaitGroup tracking this connection's jobs
// inside the pool, and the coalescing write state. No goroutines —
// the reader loop lives in serveShared's frame and replies are
// flushed by whichever pool worker finishes first (see enqueueReply).
type srvConn struct {
	conn     net.Conn
	np       *npConn        // non-nil in netpoll mode: reply accounting feeds the read state machine
	inflight sync.WaitGroup // jobs submitted to the pool, replies not yet flushed (or discarded)

	mu       sync.Mutex
	flushed  sync.Cond // broadcast after every flush attempt; L is &mu
	pending  []byte    // record-marked replies awaiting the flusher
	queued   int       // reply count inside pending
	spare    []byte    // previous flush buffer, recycled on swap
	flushing bool      // some worker currently owns this connection's flush
	werr     error     // first write error; poisons the stream
}

// srvConnMaxPending caps the bytes of finished replies buffered on one
// connection awaiting flush. The connection's reader parks before
// pulling the next record while pending is over the cap (see
// serveShared), so a slow-reading client that keeps pipelining
// requests stalls its own reader — TCP pushes back on the peer — and
// pins O(cap + in-flight jobs) server memory instead of growing
// without bound. The cap gates the reader rather than the pool
// workers so one slow client can never park the shared pool.
const srvConnMaxPending = 256 << 10

// enqueueReply appends one finished reply to the connection's pending
// buffer and, unless another worker already owns the flush, becomes
// the flusher: it keeps writing until nothing is pending, so every
// reply that lands while a Write is in flight coalesces into the next
// one. This is the combining-writer replacement for the per-connection
// writer goroutine the old server spent. The connection's inflight
// count is released here — per reply flushed, or at discard on a
// poisoned stream — never at mere enqueue, so serveShared's
// inflight.Wait() doubles as wait-for-flush and ServeConn cannot
// return (and Serve cannot close the conn) while replies are still
// buffered.
func (c *srvConn) enqueueReply(s *Server, rep []byte) {
	c.mu.Lock()
	if c.werr != nil {
		c.mu.Unlock()
		c.inflight.Done() // discarded: the stream is already poisoned
		if c.np != nil {
			c.np.afterEnqueue(1)
		}
		return
	}
	c.pending = appendRecord(c.pending, rep)
	c.queued++
	if c.flushing {
		c.mu.Unlock()
		return
	}
	c.flushing = true
	done := 0
	for c.werr == nil && len(c.pending) > 0 {
		buf, n := c.pending, c.queued
		c.pending, c.queued = c.spare[:0], 0
		c.spare = nil
		c.mu.Unlock()
		_, err := c.conn.Write(buf)
		c.mu.Lock()
		c.spare = buf
		if err != nil {
			c.werr = fmt.Errorf("sunrpc: write: %w", err)
			// The stream is poisoned mid-record; unblock the reader
			// so the connection winds down, and discard whatever
			// queued behind the failed write. The netpoll path must
			// deregister the fd before closing it, which cannot happen
			// under mu — poisonLocked defers it to afterEnqueue.
			if c.np != nil {
				c.np.poisonLocked()
			} else {
				c.conn.Close()
			}
			n += c.queued
			c.pending = c.pending[:0]
			c.queued = 0
		} else {
			s.stats.AddFlush(n)
		}
		c.inflight.Add(-n)
		done += n
		c.flushed.Broadcast()
	}
	c.flushing = false
	c.mu.Unlock()
	if c.np != nil {
		c.np.afterEnqueue(done)
	}
}

// serveShared is the scaling server loop: this goroutine reads
// request records and feeds them to the server-wide worker pool;
// workers dispatch handlers and flush replies back to the connection
// through the combining writer in srvConn. Per-connection cost is one
// goroutine and one srvConn, independent of the pool size.
func (s *Server) serveShared(conn net.Conn, limit int) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		conn.Close()
		return nil
	}
	if s.pool == nil {
		s.pool = newWorkerPool(s, s.concurrency)
	}
	pool := s.pool
	s.poolUsers++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.poolUsers--
		if s.poolUsers == 0 {
			s.poolWake.Broadcast()
		}
		s.mu.Unlock()
	}()

	c := &srvConn{conn: conn}
	c.flushed.L = &c.mu
	var readErr error
	for {
		// Backpressure: while the peer reads replies slower than it
		// pipelines requests, park this reader until the flusher works
		// the backlog under the cap — a pending record over the cap
		// always has an active flusher, and a write error (Drain
		// closing the conn included) broadcasts too, so this wait
		// cannot outlive the connection.
		c.mu.Lock()
		for c.werr == nil && len(c.pending) > srvConnMaxPending {
			c.flushed.Wait()
		}
		c.mu.Unlock()
		holder := pool.bufs.Get().(*[]byte)
		rec, err := readRecordLimit(conn, *holder, limit)
		if err != nil {
			pool.bufs.Put(holder)
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, net.ErrClosed) {
				readErr = fmt.Errorf("sunrpc: read: %w", err)
			}
			break
		}
		*holder = rec
		s.stats.AddQueued()
		c.inflight.Add(1)
		pool.jobs <- poolJob{c, holder}
	}
	c.inflight.Wait()
	c.mu.Lock()
	werr := c.werr
	c.mu.Unlock()
	if werr != nil {
		return werr
	}
	return readErr
}

// dispatch handles one call, always leaving a complete reply in enc.
func (s *Server) dispatch(d *xdr.Decoder, enc *xdr.Encoder) {
	h, err := decodeCall(d)
	if err != nil {
		// Unparseable header: answer with a system error under the
		// xid we managed to read (zero otherwise).
		encodeAcceptedReply(enc, h.XID, SystemErr)
		return
	}
	// Admission: a draining or over-capacity server answers SYSTEM_ERR
	// before touching a handler. The bare Sun RPC wire has no richer
	// pushback (the session layer's frames ride above it); SYSTEM_ERR
	// is retryable by construction, which is all shedding needs.
	n := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		s.stats.AddDrainReject()
		encodeAcceptedReply(enc, h.XID, SystemErr)
		return
	}
	if s.maxInflight > 0 && n > s.maxInflight {
		s.stats.AddShed()
		encodeAcceptedReply(enc, h.XID, SystemErr)
		return
	}
	switch {
	case h.Prog != s.prog:
		encodeAcceptedReply(enc, h.XID, ProgUnavail)
	case h.Vers != s.vers:
		encodeAcceptedReply(enc, h.XID, ProgMismatch)
	default:
		handler, ok := s.handlers[h.Proc]
		if !ok {
			encodeAcceptedReply(enc, h.XID, ProcUnavail)
			return
		}
		// Reserve the success header, run the handler, and rewrite
		// the header on failure. Header sizes are fixed, so we can
		// re-encode in place by resetting.
		encodeAcceptedReply(enc, h.XID, Success)
		if err := s.runHandler(h.Proc, handler, d, enc); err != nil {
			enc.Reset()
			if errors.Is(err, ErrGarbageArgs) {
				encodeAcceptedReply(enc, h.XID, GarbageArgs)
			} else {
				encodeAcceptedReply(enc, h.XID, SystemErr)
			}
		}
	}
}

// runHandler invokes h, converting a panic into a *PanicError so one
// bad request cannot take down the connection (or, under a worker
// pool, its sibling requests). The defer lives in this small frame so
// the recover machinery stays off the non-panicking path.
func (s *Server) runHandler(proc uint32, h ProcHandler, d *xdr.Decoder, enc *xdr.Encoder) (err error) {
	defer func() {
		if p := recover(); p != nil {
			s.stats.AddHandlerPanic()
			err = &PanicError{Proc: proc, Value: p, Stack: debug.Stack()}
		}
	}()
	return h(d, enc)
}

// Serve accepts connections from l and serves each until the listener
// closes (or Drain closes it) — in netpoll mode by registering the
// conn with a poller, otherwise on its own goroutine. Accept failures
// are classified by errno (see classifyAcceptError): connections that
// died in the backlog retry immediately, resource exhaustion (EMFILE
// and friends) backs off at the 100ms cap, anything else is permanent
// and stops the shard. With SetAcceptRate configured, a per-shard
// token bucket paces accepts so an accept storm cannot monopolize the
// pollers.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	limiter := s.newAcceptLimiter()
	for {
		if limiter != nil && limiter.take() {
			s.stats.AddAcceptThrottled()
		}
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			if s.draining.Load() {
				return err
			}
			switch classifyAcceptError(err) {
			case acceptRetry:
				continue
			case acceptBackoff:
				// Resource exhaustion does not clear in a millisecond;
				// go straight to the cap. Half fixed, half jittered:
				// shards hitting the same exhaustion decorrelate.
				d := acceptBackoffMax
				time.Sleep(d/2 + time.Duration(rand.Int63n(int64(d/2)+1)))
				continue
			}
			return err
		}
		if s.netpoll {
			if _, handled := s.registerNetpoll(conn); handled {
				continue
			}
		}
		if !s.track(conn) {
			continue
		}
		go func() {
			defer s.untrack(conn)
			defer conn.Close()
			_ = s.ServeConn(conn)
		}()
	}
}

// ServeShards runs one accept loop per listener (accept sharding):
// each shard accepts on its own goroutine, so a multi-listener
// deployment spreads accept work and none of the shards can starve
// the others. It returns once every shard has stopped — Drain closes
// them all — reporting the first shard error.
func (s *Server) ServeShards(ls ...net.Listener) error {
	var wg sync.WaitGroup
	errs := make([]error, len(ls))
	for i, l := range ls {
		wg.Add(1)
		go func(i int, l net.Listener) {
			defer wg.Done()
			errs[i] = s.Serve(l)
		}(i, l)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
