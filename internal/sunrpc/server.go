package sunrpc

import (
	"errors"
	"fmt"
	"io"
	"net"

	"flexrpc/internal/xdr"
)

// A ProcHandler implements one procedure: decode arguments from
// args, append results to reply. Returning ErrGarbageArgs reports
// undecodable arguments to the caller; any other error is a system
// error.
type ProcHandler func(args *xdr.Decoder, reply *xdr.Encoder) error

// ErrGarbageArgs signals that a handler could not decode its
// arguments; it maps to the GARBAGE_ARGS accept status.
var ErrGarbageArgs = errors.New("sunrpc: garbage arguments")

// A Server dispatches Sun RPC calls for one program/version.
type Server struct {
	prog     uint32
	vers     uint32
	handlers map[uint32]ProcHandler

	// MaxMessageSize bounds received request records; zero means
	// DefaultMaxRecord. Set before serving.
	MaxMessageSize int
}

// NewServer creates a server for prog/vers. Procedure 0 (the null
// procedure every Sun RPC program must provide) is pre-registered.
func NewServer(prog, vers uint32) *Server {
	s := &Server{prog: prog, vers: vers, handlers: make(map[uint32]ProcHandler)}
	s.handlers[0] = func(*xdr.Decoder, *xdr.Encoder) error { return nil }
	return s
}

// Register installs the handler for proc, replacing any previous
// one.
func (s *Server) Register(proc uint32, h ProcHandler) {
	s.handlers[proc] = h
}

// ServeConn processes calls from conn until it closes, returning nil
// on clean EOF.
func (s *Server) ServeConn(conn net.Conn) error {
	limit := s.MaxMessageSize
	if limit <= 0 {
		limit = DefaultMaxRecord
	}
	var enc xdr.Encoder
	var recBuf []byte
	for {
		rec, err := readRecordLimit(conn, recBuf, limit)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("sunrpc: read: %w", err)
		}
		recBuf = rec[:cap(rec)]
		enc.Reset()
		s.dispatch(xdr.NewDecoder(rec), &enc)
		if err := writeRecord(conn, enc.Bytes()); err != nil {
			return fmt.Errorf("sunrpc: write: %w", err)
		}
	}
}

// dispatch handles one call, always leaving a complete reply in enc.
func (s *Server) dispatch(d *xdr.Decoder, enc *xdr.Encoder) {
	h, err := decodeCall(d)
	if err != nil {
		// Unparseable header: answer with a system error under the
		// xid we managed to read (zero otherwise).
		encodeAcceptedReply(enc, h.XID, SystemErr)
		return
	}
	switch {
	case h.Prog != s.prog:
		encodeAcceptedReply(enc, h.XID, ProgUnavail)
	case h.Vers != s.vers:
		encodeAcceptedReply(enc, h.XID, ProgMismatch)
	default:
		handler, ok := s.handlers[h.Proc]
		if !ok {
			encodeAcceptedReply(enc, h.XID, ProcUnavail)
			return
		}
		// Reserve the success header, run the handler, and rewrite
		// the header on failure. Header sizes are fixed, so we can
		// re-encode in place by resetting.
		encodeAcceptedReply(enc, h.XID, Success)
		if err := handler(d, enc); err != nil {
			enc.Reset()
			if errors.Is(err, ErrGarbageArgs) {
				encodeAcceptedReply(enc, h.XID, GarbageArgs)
			} else {
				encodeAcceptedReply(enc, h.XID, SystemErr)
			}
		}
	}
}

// Serve accepts connections from l and serves each on its own
// goroutine until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			_ = s.ServeConn(conn)
		}()
	}
}
