package sunrpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"flexrpc/internal/stats"
	"flexrpc/internal/xdr"
)

// A ProcHandler implements one procedure: decode arguments from
// args, append results to reply. Returning ErrGarbageArgs reports
// undecodable arguments to the caller; any other error is a system
// error.
type ProcHandler func(args *xdr.Decoder, reply *xdr.Encoder) error

// ErrGarbageArgs signals that a handler could not decode its
// arguments; it maps to the GARBAGE_ARGS accept status.
var ErrGarbageArgs = errors.New("sunrpc: garbage arguments")

// A PanicError reports a recovered handler panic. The peer sees a
// bare SYSTEM_ERR accept status (the Sun RPC reply carries no error
// payload); the server process keeps the value and stack for logs.
type PanicError struct {
	Proc  uint32
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sunrpc: handler for proc %d panicked: %v", e.Proc, e.Value)
}

// A Server dispatches Sun RPC calls for one program/version.
type Server struct {
	prog     uint32
	vers     uint32
	handlers map[uint32]ProcHandler

	// MaxMessageSize bounds received request records; zero means
	// DefaultMaxRecord. Set before serving.
	MaxMessageSize int

	concurrency int
	stats       *stats.Endpoint

	// Overload protection: maxInflight bounds calls across every
	// connection; over-cap (and post-drain) calls answer SYSTEM_ERR —
	// the only pushback the bare Sun RPC wire can carry — instead of
	// queueing behind work the server cannot finish.
	maxInflight int64
	inflight    atomic.Int64
	draining    atomic.Bool

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
}

// NewServer creates a server for prog/vers. Procedure 0 (the null
// procedure every Sun RPC program must provide) is pre-registered.
func NewServer(prog, vers uint32) *Server {
	s := &Server{prog: prog, vers: vers, handlers: make(map[uint32]ProcHandler)}
	s.handlers[0] = func(*xdr.Decoder, *xdr.Encoder) error { return nil }
	return s
}

// Register installs the handler for proc, replacing any previous
// one.
func (s *Server) Register(proc uint32, h ProcHandler) {
	s.handlers[proc] = h
}

// SetConcurrency sets the number of worker goroutines each connection
// dispatches handlers on. n <= 1 (the default) keeps the serial
// in-order loop; n > 1 executes up to n requests from one connection
// in parallel, with a per-connection writer goroutine serializing
// (and coalescing) the replies. Out-of-order replies are legal on the
// Sun RPC wire — the client demultiplexes by xid. Set before serving.
func (s *Server) SetConcurrency(n int) { s.concurrency = n }

// SetStats points the server's queue/flush/panic counters at e; a nil
// endpoint (the default) records nothing. Set before serving.
func (s *Server) SetStats(e *stats.Endpoint) { s.stats = e }

// SetMaxInflight bounds concurrently dispatched calls across every
// connection; calls past the bound answer SYSTEM_ERR without invoking
// a handler. n <= 0 (the default) means unlimited. Set before serving.
func (s *Server) SetMaxInflight(n int) { s.maxInflight = int64(n) }

// Inflight reports the calls currently being dispatched.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully retires the server: listeners passed to Serve stop
// accepting, new calls on existing connections answer SYSTEM_ERR, and
// Drain waits (bounded by ctx) for in-flight dispatches to finish
// before closing the remaining connections. It reports ctx.Err() when
// in-flight calls outlive the deadline (connections are closed
// regardless, so blocked peers unpark).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.mu.Unlock()

	var err error
	for s.inflight.Load() > 0 {
		if err = ctx.Err(); err != nil {
			break
		}
		select {
		case <-ctx.Done():
			err = ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
		if err != nil {
			break
		}
	}

	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.conns = nil
	s.mu.Unlock()
	return err
}

// track registers conn for closure at drain time; it reports false
// (and closes conn) when the server is already draining.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		conn.Close()
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// ServeConn processes calls from conn until it closes, returning nil
// on clean EOF. With SetConcurrency(n > 1) requests are executed by a
// worker pool and replies are coalesced; otherwise requests run
// serially in arrival order.
func (s *Server) ServeConn(conn net.Conn) error {
	limit := s.MaxMessageSize
	if limit <= 0 {
		limit = DefaultMaxRecord
	}
	if s.concurrency > 1 {
		return s.serveConcurrent(conn, s.concurrency, limit)
	}
	var enc xdr.Encoder
	var recBuf []byte
	for {
		rec, err := readRecordLimit(conn, recBuf, limit)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("sunrpc: read: %w", err)
		}
		recBuf = rec[:cap(rec)]
		enc.Reset()
		s.dispatch(xdr.NewDecoder(rec), &enc)
		if err := writeRecord(conn, enc.Bytes()); err != nil {
			return fmt.Errorf("sunrpc: write: %w", err)
		}
	}
}

// serveConcurrent is the scaling server loop: a reader feeds request
// records through a bounded queue to n workers, which dispatch
// handlers in parallel and hand finished replies to a single writer
// goroutine. The writer serializes record marking (the only ordering
// the stream needs — xids identify replies) and coalesces every reply
// available at flush time into one Write call. Buffers and encoders
// are pooled, so the steady-state path allocates nothing.
func (s *Server) serveConcurrent(conn net.Conn, n, limit int) error {
	jobs := make(chan *[]byte, n)
	replies := make(chan *xdr.Encoder, n)
	bufs := sync.Pool{New: func() any { return new([]byte) }}
	encs := sync.Pool{New: func() any { return new(xdr.Encoder) }}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec := xdr.NewDecoder(nil)
			for holder := range jobs {
				rec := *holder
				enc := encs.Get().(*xdr.Encoder)
				enc.Reset()
				dec.Reset(rec)
				s.dispatch(dec, enc)
				*holder = rec[:cap(rec)]
				bufs.Put(holder)
				replies <- enc
			}
		}()
	}

	// Writer: drain everything queued, write it as one flush, repeat.
	writerDone := make(chan struct{})
	var writeErr error
	go func() {
		defer close(writerDone)
		var flush []byte
		for enc := range replies {
			flush = appendRecord(flush[:0], enc.Bytes())
			encs.Put(enc)
			count := 1
		drain:
			for {
				select {
				case more, ok := <-replies:
					if !ok {
						break drain
					}
					flush = appendRecord(flush, more.Bytes())
					encs.Put(more)
					count++
				default:
					break drain
				}
			}
			if writeErr != nil {
				continue // draining so workers never block
			}
			if _, err := conn.Write(flush); err != nil {
				writeErr = fmt.Errorf("sunrpc: write: %w", err)
				// The stream is poisoned mid-record; unblock the
				// reader so the connection winds down.
				conn.Close()
				continue
			}
			s.stats.AddFlush(count)
		}
	}()

	var readErr error
	for {
		holder := bufs.Get().(*[]byte)
		rec, err := readRecordLimit(conn, *holder, limit)
		if err != nil {
			bufs.Put(holder)
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, net.ErrClosed) {
				readErr = fmt.Errorf("sunrpc: read: %w", err)
			}
			break
		}
		*holder = rec
		s.stats.AddQueued()
		jobs <- holder
	}
	close(jobs)
	wg.Wait()
	close(replies)
	<-writerDone
	if writeErr != nil {
		return writeErr
	}
	return readErr
}

// dispatch handles one call, always leaving a complete reply in enc.
func (s *Server) dispatch(d *xdr.Decoder, enc *xdr.Encoder) {
	h, err := decodeCall(d)
	if err != nil {
		// Unparseable header: answer with a system error under the
		// xid we managed to read (zero otherwise).
		encodeAcceptedReply(enc, h.XID, SystemErr)
		return
	}
	// Admission: a draining or over-capacity server answers SYSTEM_ERR
	// before touching a handler. The bare Sun RPC wire has no richer
	// pushback (the session layer's frames ride above it); SYSTEM_ERR
	// is retryable by construction, which is all shedding needs.
	n := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.draining.Load() {
		s.stats.AddDrainReject()
		encodeAcceptedReply(enc, h.XID, SystemErr)
		return
	}
	if s.maxInflight > 0 && n > s.maxInflight {
		s.stats.AddShed()
		encodeAcceptedReply(enc, h.XID, SystemErr)
		return
	}
	switch {
	case h.Prog != s.prog:
		encodeAcceptedReply(enc, h.XID, ProgUnavail)
	case h.Vers != s.vers:
		encodeAcceptedReply(enc, h.XID, ProgMismatch)
	default:
		handler, ok := s.handlers[h.Proc]
		if !ok {
			encodeAcceptedReply(enc, h.XID, ProcUnavail)
			return
		}
		// Reserve the success header, run the handler, and rewrite
		// the header on failure. Header sizes are fixed, so we can
		// re-encode in place by resetting.
		encodeAcceptedReply(enc, h.XID, Success)
		if err := s.runHandler(h.Proc, handler, d, enc); err != nil {
			enc.Reset()
			if errors.Is(err, ErrGarbageArgs) {
				encodeAcceptedReply(enc, h.XID, GarbageArgs)
			} else {
				encodeAcceptedReply(enc, h.XID, SystemErr)
			}
		}
	}
}

// runHandler invokes h, converting a panic into a *PanicError so one
// bad request cannot take down the connection (or, under a worker
// pool, its sibling requests). The defer lives in this small frame so
// the recover machinery stays off the non-panicking path.
func (s *Server) runHandler(proc uint32, h ProcHandler, d *xdr.Decoder, enc *xdr.Encoder) (err error) {
	defer func() {
		if p := recover(); p != nil {
			s.stats.AddHandlerPanic()
			err = &PanicError{Proc: proc, Value: p, Stack: debug.Stack()}
		}
	}()
	return h(d, enc)
}

// Serve accepts connections from l and serves each on its own
// goroutine until the listener closes (or Drain closes it).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			continue
		}
		go func() {
			defer s.untrack(conn)
			defer conn.Close()
			_ = s.ServeConn(conn)
		}()
	}
}
