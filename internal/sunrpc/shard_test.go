package sunrpc

import (
	"context"
	"errors"
	"net"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"flexrpc/internal/xdr"
)

// memAddr is the address of an in-memory listener.
type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

// memListener hands out net.Pipe connections: dial() delivers the
// server half to Accept. Close unparks both sides with net.ErrClosed.
type memListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newMemListener() *memListener {
	return &memListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr{} }

func (l *memListener) dial() (net.Conn, error) {
	cc, sc := net.Pipe()
	select {
	case l.conns <- sc:
		return cc, nil
	case <-l.done:
		cc.Close()
		sc.Close()
		return nil, net.ErrClosed
	}
}

// tempError mimics the transient accept error the kernel hands an
// fd-exhausted listener: like the real thing it wraps the underlying
// errno (EMFILE), which is what the accept loop classifies on.
type tempError struct{}

func (tempError) Error() string   { return "accept: resource temporarily unavailable" }
func (tempError) Timeout() bool   { return false }
func (tempError) Temporary() bool { return true }
func (tempError) Unwrap() error   { return syscall.EMFILE }

// flakyListener injects n transient errors before delivering
// connections, counting every Accept call so the test can prove the
// loop backed off instead of spinning.
type flakyListener struct {
	*memListener
	mu       sync.Mutex
	tempLeft int
	accepts  int
	errFn    func() error // injected error; nil means tempError{}
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	l.accepts++
	if l.tempLeft > 0 {
		l.tempLeft--
		errFn := l.errFn
		l.mu.Unlock()
		if errFn != nil {
			return nil, errFn()
		}
		return nil, tempError{}
	}
	l.mu.Unlock()
	return l.memListener.Accept()
}

// TestServeAcceptTemporaryBackoff: transient Accept errors must not
// kill the accept loop (the old behavior) or spin it hot; the loop
// backs off, then accepts and serves the connection normally.
func TestServeAcceptTemporaryBackoff(t *testing.T) {
	l := &flakyListener{memListener: newMemListener(), tempLeft: 3}
	s := newTestServer()
	served := make(chan error, 1)
	start := time.Now()
	go func() { served <- s.Serve(l) }()

	cc, err := l.dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cc.Close()
	c := NewClient(cc, testProg, testVers)
	var sum int32
	err = c.Call(procAdd,
		func(e *xdr.Encoder) { e.PutInt32(40); e.PutInt32(2) },
		func(d *xdr.Decoder) error {
			v, err := d.Int32()
			sum = v
			return err
		})
	if err != nil || sum != 42 {
		t.Fatalf("call after transient accept errors: %v, %v", sum, err)
	}
	// Three injected EMFILEs each back off at the 100ms cap (half
	// fixed, half jittered — at least 50ms apiece), and Accept ran
	// exactly four times (three failures + the success) — no tight
	// spin.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("accept loop recovered in %v; backoff not applied", elapsed)
	}
	l.mu.Lock()
	accepts := l.accepts
	l.mu.Unlock()
	if accepts > 5 {
		t.Fatalf("accept called %d times for 3 transient errors; loop is spinning", accepts)
	}

	l.Close()
	if err := <-served; err != nil {
		t.Fatalf("Serve after listener close: %v", err)
	}
}

// TestServeAcceptPermanentError: non-temporary accept errors still
// stop the loop and surface to the caller.
func TestServeAcceptPermanentError(t *testing.T) {
	boom := errors.New("accept: permanently broken")
	l := &errListener{err: boom}
	if err := newTestServer().Serve(l); !errors.Is(err, boom) {
		t.Fatalf("Serve returned %v, want %v", err, boom)
	}
}

type errListener struct{ err error }

func (l *errListener) Accept() (net.Conn, error) { return nil, l.err }
func (l *errListener) Close() error              { return nil }
func (l *errListener) Addr() net.Addr            { return memAddr{} }

// TestDrainShardsExactlyOnceNoLeaks races Server.Drain against live
// traffic arriving over four accept shards: every call that got a
// successful reply executed its handler exactly once (execs can
// exceed successes only by the per-connection in-flight tail cut by
// the drain), and after the drain the process is back to its baseline
// goroutine count — no leaked readers, workers, or accept loops.
func TestDrainShardsExactlyOnceNoLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const shards = 4
	const clients = 24

	var execs atomic.Int64
	s := newTestServer()
	s.Register(procEcho, func(args *xdr.Decoder, reply *xdr.Encoder) error {
		execs.Add(1)
		data, err := args.Opaque()
		if err != nil {
			return ErrGarbageArgs
		}
		reply.PutOpaque(data)
		return nil
	})
	s.SetConcurrency(4)

	ls := make([]*memListener, shards)
	lsIfc := make([]net.Listener, shards)
	for i := range ls {
		ls[i] = newMemListener()
		lsIfc[i] = ls[i]
	}
	served := make(chan error, 1)
	go func() { served <- s.ServeShards(lsIfc...) }()

	var (
		connMu    sync.Mutex
		openConns []net.Conn
		successes atomic.Int64
		wg        sync.WaitGroup
	)
	stop := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cc, err := ls[i%shards].dial()
				if err != nil {
					return // listener closed by Drain
				}
				connMu.Lock()
				openConns = append(openConns, cc)
				connMu.Unlock()
				c := NewClient(cc, testProg, testVers)
				for j := 0; j < 8; j++ {
					err := c.Call(procEcho,
						func(e *xdr.Encoder) { e.PutOpaque([]byte("ping")) },
						func(d *xdr.Decoder) error { _, err := d.Opaque(); return err })
					if err != nil {
						cc.Close()
						return // drained mid-stream
					}
					successes.Add(1)
				}
				cc.Close()
			}
		}(i)
	}

	// Let traffic establish, then drain while accepts are still racing.
	for successes.Load() < 32 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	close(stop)
	// Unpark any client still blocked on an accepted-but-cut or
	// never-accepted connection.
	connMu.Lock()
	for _, c := range openConns {
		c.Close()
	}
	connMu.Unlock()
	wg.Wait()
	if err := <-served; err != nil {
		t.Fatalf("ServeShards after drain: %v", err)
	}

	ex, ok := execs.Load(), successes.Load()
	if ok == 0 {
		t.Fatal("no call succeeded before the drain")
	}
	// Exactly-once: a successful reply implies one execution, and the
	// only executions without a reply are the per-connection tails the
	// drain cut between dispatch and flush — at most one per client.
	if ex < ok || ex > ok+clients {
		t.Fatalf("execs=%d successes=%d: admitted calls must execute exactly once", ex, ok)
	}

	// No leaked goroutines: readers, shared-pool workers, and the
	// accept shards are all gone once Drain returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			var sb strings.Builder
			pprof.Lookup("goroutine").WriteTo(&sb, 1)
			t.Fatalf("goroutines leaked after Drain: baseline=%d now=%d\n%s",
				baseline, runtime.NumGoroutine(), sb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
