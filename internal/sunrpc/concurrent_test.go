package sunrpc

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"flexrpc/internal/stats"
	"flexrpc/internal/xdr"
)

const (
	procSlow  = 7
	procPanic = 8
	procBig   = 9
)

// TestConcurrentDispatchOverlaps proves SetConcurrency actually
// executes requests from one connection in parallel: a fast call
// issued after a deliberately blocked call completes while the slow
// one is still held, which the serial loop cannot do.
func TestConcurrentDispatchOverlaps(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	s := newTestServer()
	s.Register(procSlow, func(args *xdr.Decoder, reply *xdr.Encoder) error {
		entered <- struct{}{}
		<-release
		reply.PutInt32(1)
		return nil
	})
	s.SetConcurrency(4)

	cc, sc := net.Pipe()
	go func() { _ = s.ServeConn(sc) }()
	t.Cleanup(func() { cc.Close(); sc.Close() })
	c := NewClient(cc, testProg, testVers)

	slowDone := make(chan error, 1)
	go func() {
		slowDone <- c.Call(procSlow, nil, func(d *xdr.Decoder) error {
			_, err := d.Int32()
			return err
		})
	}()
	<-entered // the slow handler now owns one worker

	// A second call on the same connection must complete while the
	// slow one is parked.
	var sum int32
	err := c.Call(procAdd,
		func(e *xdr.Encoder) { e.PutInt32(20); e.PutInt32(22) },
		func(d *xdr.Decoder) error {
			v, err := d.Int32()
			sum = v
			return err
		})
	if err != nil || sum != 42 {
		t.Fatalf("fast call behind a blocked worker: %v, %v", sum, err)
	}

	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestConcurrentPanicRecovery is the worker-pool panic regression: a
// panicking handler must surface to its own caller as SYSTEM_ERR,
// increment the handler-panic counter, and leave the connection (and
// its worker siblings) serving.
func TestConcurrentPanicRecovery(t *testing.T) {
	for _, conc := range []int{1, 4} {
		s := newTestServer()
		s.Register(procPanic, func(args *xdr.Decoder, reply *xdr.Encoder) error {
			panic("handler bug")
		})
		e := stats.New(nil)
		s.SetStats(e)
		s.SetConcurrency(conc)

		cc, sc := net.Pipe()
		go func() { _ = s.ServeConn(sc) }()
		c := NewClient(cc, testProg, testVers)

		err := c.Call(procPanic, nil, nil)
		var rerr *RemoteError
		if !errors.As(err, &rerr) || rerr.Stat != SystemErr {
			t.Fatalf("conc=%d: panic surfaced as %v, want SYSTEM_ERR", conc, err)
		}
		if got := e.Snapshot().HandlerPanics; got != 1 {
			t.Fatalf("conc=%d: handler panics counted %d, want 1", conc, got)
		}

		// The connection survived: an ordinary call still works.
		var sum int32
		err = c.Call(procAdd,
			func(enc *xdr.Encoder) { enc.PutInt32(1); enc.PutInt32(2) },
			func(d *xdr.Decoder) error {
				v, err := d.Int32()
				sum = v
				return err
			})
		if err != nil || sum != 3 {
			t.Fatalf("conc=%d: call after panic: %v, %v", conc, sum, err)
		}
		cc.Close()
		sc.Close()
	}
}

// TestConcurrentReplyCoalescing drives a burst of pipelined calls
// through a concurrent server and checks via the flush counters that
// replies were coalesced: strictly fewer flushes than records.
func TestConcurrentReplyCoalescing(t *testing.T) {
	const calls = 64
	s := newTestServer()
	e := stats.New(nil)
	s.SetStats(e)
	s.SetConcurrency(4)

	cc, sc := net.Pipe()
	served := make(chan struct{})
	go func() { defer close(served); _ = s.ServeConn(sc) }()
	c := NewClient(cc, testProg, testVers)

	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Call(procAdd,
				func(enc *xdr.Encoder) { enc.PutInt32(2); enc.PutInt32(3) },
				func(d *xdr.Decoder) error { _, err := d.Int32(); return err },
			); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Wind the connection down so every flush has been counted
	// before the snapshot (the writer counts after its Write).
	cc.Close()
	sc.Close()
	<-served

	snap := e.Snapshot()
	if snap.Queued != calls {
		t.Fatalf("queued %d requests, want %d", snap.Queued, calls)
	}
	if snap.FlushedRecords != calls {
		t.Fatalf("flushed %d records, want %d", snap.FlushedRecords, calls)
	}
	if snap.Flushes == 0 || snap.Flushes > snap.FlushedRecords {
		t.Fatalf("flushes = %d for %d records", snap.Flushes, snap.FlushedRecords)
	}
	// Coalescing is opportunistic — net.Pipe's synchronous writes
	// make it likely but not certain — so only log the achieved ratio.
	t.Logf("flushes=%d records=%d coalesced=%d",
		snap.Flushes, snap.FlushedRecords, snap.CoalescedWrites)
}

// rawNullCaller drives null RPCs over the wire with fully reused
// buffers, so the allocation gate below measures the server's
// concurrent path, not a client's bookkeeping.
type rawNullCaller struct {
	conn net.Conn
	enc  xdr.Encoder
	out  []byte
	rec  []byte
	xid  uint32
}

func (r *rawNullCaller) call(t testing.TB) {
	r.xid++
	r.enc.Reset()
	encodeCall(&r.enc, CallHeader{XID: r.xid, Prog: testProg, Vers: testVers, Proc: 0})
	r.out = appendRecord(r.out[:0], r.enc.Bytes())
	if _, err := r.conn.Write(r.out); err != nil {
		t.Fatal(err)
	}
	rec, err := readRecord(r.conn, r.rec)
	if err != nil {
		t.Fatal(err)
	}
	r.rec = rec[:cap(rec)]
}

// TestConcurrentServerZeroAllocNullRPC is the scaling gate: with
// stats off, the worker-pool server path — reader, queue, worker
// dispatch, coalescing writer — settles to zero allocations per null
// RPC.
func TestConcurrentServerZeroAllocNullRPC(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	s := newTestServer()
	s.Register(0, func(args *xdr.Decoder, reply *xdr.Encoder) error { return nil })
	s.SetConcurrency(4)
	cc, sc := net.Pipe()
	go func() { _ = s.ServeConn(sc) }()
	t.Cleanup(func() { cc.Close(); sc.Close() })

	caller := &rawNullCaller{conn: cc}
	for i := 0; i < 100; i++ {
		caller.call(t) // warm every pool on the server side
	}
	allocs := testing.AllocsPerRun(200, func() { caller.call(t) })
	if allocs != 0 {
		t.Fatalf("concurrent server path allocates %.1f times per null RPC, want 0", allocs)
	}
}

// TestConcurrentTailRepliesAfterHalfClose is the wait-for-flush
// regression: a pipelined client that half-closes its write side
// after a burst must still receive every reply. ServeConn may only
// return — and Serve may only close the conn — once the combining
// flusher has written everything this connection is owed, the
// shared-pool equivalent of the old writer-goroutine join.
func TestConcurrentTailRepliesAfterHalfClose(t *testing.T) {
	const calls = 64
	s := newTestServer()
	s.SetConcurrency(4)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(l) }()
	t.Cleanup(func() { l.Close() })

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))

	var enc xdr.Encoder
	var out []byte
	for i := 0; i < calls; i++ {
		enc.Reset()
		encodeCall(&enc, CallHeader{XID: uint32(i + 1), Prog: testProg, Vers: testVers, Proc: 0})
		out = appendRecord(out, enc.Bytes())
	}
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	// Half-close: the server reader sees EOF while replies may still
	// be executing or buffered behind the flusher.
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}

	var rec []byte
	for i := 0; i < calls; i++ {
		rec, err = readRecord(conn, rec)
		if err != nil {
			t.Fatalf("reply %d of %d: %v (tail replies dropped after half-close)", i, calls, err)
		}
		rec = rec[:cap(rec)]
	}
}

// TestConcurrentSlowReaderBoundedBuffering pins the reply-buffer
// bound: a client that pipelines requests for large replies without
// reading any must stall the server's reader once the pending-reply
// cap fills — bounding server memory and passing pushback to the
// peer's TCP stream — rather than buffering every executed reply.
// Once the client drains, everything it was owed still arrives.
func TestConcurrentSlowReaderBoundedBuffering(t *testing.T) {
	const calls = 100
	s := newTestServer()
	blob := make([]byte, 64<<10)
	s.Register(procBig, func(args *xdr.Decoder, reply *xdr.Encoder) error {
		reply.PutOpaque(blob)
		return nil
	})
	e := stats.New(nil)
	s.SetStats(e)
	s.SetConcurrency(4)

	cc, sc := net.Pipe()
	served := make(chan struct{})
	go func() { defer close(served); _ = s.ServeConn(sc) }()

	// Feed pipelined requests from a side goroutine: net.Pipe writes
	// are synchronous, so the feeder parks as soon as the server
	// reader does.
	fed := make(chan struct{})
	go func() {
		defer close(fed)
		var enc xdr.Encoder
		var out []byte
		for i := 0; i < calls; i++ {
			enc.Reset()
			encodeCall(&enc, CallHeader{XID: uint32(i + 1), Prog: testProg, Vers: testVers, Proc: procBig})
			out = appendRecord(out[:0], enc.Bytes())
			if _, err := cc.Write(out); err != nil {
				return
			}
		}
	}()

	// With the client not reading, the first flush blocks (net.Pipe is
	// unbuffered), pending fills to the cap, and the reader parks:
	// the queued count must go quiet well short of the full burst.
	deadline := time.Now().Add(10 * time.Second)
	var queued, prev uint64
	stable := 0
	for stable < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("queued count never settled (last %d)", queued)
		}
		time.Sleep(50 * time.Millisecond)
		queued = e.Snapshot().Queued
		if queued == prev {
			stable++
		} else {
			stable, prev = 0, queued
		}
	}
	if queued == 0 || queued >= calls/2 {
		t.Fatalf("server queued %d of %d pipelined requests against a non-reading client; want a small bounded backlog", queued, calls)
	}

	// Drain: every reply the client is owed must still arrive.
	var rec []byte
	var err error
	for i := 0; i < calls; i++ {
		rec, err = readRecord(cc, rec)
		if err != nil {
			t.Fatalf("reply %d of %d after draining: %v", i, calls, err)
		}
		rec = rec[:cap(rec)]
	}
	<-fed
	cc.Close()
	sc.Close()
	<-served
}

// TestConcurrentServeConnShutdown checks the wind-down order: closing
// the connection mid-stream stops reader, workers and writer without
// leaking goroutines or deadlocking.
func TestConcurrentServeConnShutdown(t *testing.T) {
	s := newTestServer()
	s.Register(0, func(args *xdr.Decoder, reply *xdr.Encoder) error { return nil })
	s.SetConcurrency(4)
	cc, sc := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- s.ServeConn(sc) }()

	caller := &rawNullCaller{conn: cc}
	caller.call(t)
	cc.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeConn after peer close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn did not return after the peer closed")
	}
}
