package sunrpc

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"flexrpc/internal/xdr"
)

// TestPipelinedCallsInterleave proves the client keeps several calls
// in flight on one connection and matches replies to callers by xid:
// the server collects four complete call records before answering any
// of them — in reverse arrival order — which only a pipelined,
// xid-demultiplexing client can survive.
func TestPipelinedCallsInterleave(t *testing.T) {
	const calls = 4
	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()

	go func() {
		type req struct {
			xid uint32
			arg int32
		}
		var reqs []req
		var buf []byte
		for len(reqs) < calls {
			rec, err := readRecord(sc, buf)
			if err != nil {
				return
			}
			buf = rec[:cap(rec)]
			var d xdr.Decoder
			d.Reset(rec)
			h, err := decodeCall(&d)
			if err != nil {
				return
			}
			v, err := d.Int32()
			if err != nil {
				return
			}
			reqs = append(reqs, req{xid: h.XID, arg: v})
		}
		// All four calls are now provably outstanding at once.
		// Answer newest-first so correctness depends on xid
		// matching, not on reply order.
		var e xdr.Encoder
		for i := len(reqs) - 1; i >= 0; i-- {
			e.Reset()
			encodeAcceptedReply(&e, reqs[i].xid, Success)
			e.PutInt32(reqs[i].arg * 10)
			if err := writeRecord(sc, e.Bytes()); err != nil {
				return
			}
		}
	}()

	c := NewClient(cc, testProg, testVers)
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			arg := int32(i + 1)
			var got int32
			err := c.Call(procEcho,
				func(e *xdr.Encoder) { e.PutInt32(arg) },
				func(d *xdr.Decoder) error {
					v, err := d.Int32()
					got = v
					return err
				})
			if err != nil {
				errs[i] = err
				return
			}
			if got != arg*10 {
				errs[i] = fmt.Errorf("call %d: got %d, want %d", i, got, arg*10)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestReadRecordSteadyStateNoAllocs checks that a long sequence of
// same-sized messages read through a reused buffer settles into zero
// allocations per record — growth is geometric, not linear.
func TestReadRecordSteadyStateNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are not meaningful under the race detector")
	}
	msg := bytes.Repeat([]byte{0x5A}, 1500)
	var stream bytes.Buffer
	const n = 90
	for i := 0; i < n; i++ {
		if err := writeRecord(&stream, msg); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(stream.Bytes())

	rec, err := readRecord(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	scratch := rec[:cap(rec)]
	first := &scratch[0]

	allocs := testing.AllocsPerRun(80, func() {
		rec, err := readRecord(r, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if &rec[0] != first {
			t.Fatal("readRecord abandoned the reusable buffer")
		}
		scratch = rec[:cap(rec)]
	})
	if allocs != 0 {
		t.Fatalf("steady-state readRecord allocates %.1f times per message", allocs)
	}
}
