package sunrpc

import (
	"bytes"
	"testing"
)

// FuzzReadRecord feeds arbitrary bytes to the record-marking reader.
// Length words in the input are attacker-controlled, so the reader
// must never panic, never return a record past its limit, and —
// because growth is chunked — never allocate far beyond the bytes
// actually present.
func FuzzReadRecord(f *testing.F) {
	var good bytes.Buffer
	if err := writeRecord(&good, []byte("hello, sun rpc record marking")); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	// A two-fragment record, hand-built.
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, 'h', 'i', 0x80, 0x00, 0x00, 0x01, '!'})
	// A hostile length word with no data behind it.
	f.Add([]byte{0x7f, 0xff, 0xff, 0xff})
	f.Add([]byte{})

	const limit = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := readRecordLimit(bytes.NewReader(data), nil, limit)
		if err != nil {
			return
		}
		if len(rec) > limit {
			t.Fatalf("record of %d bytes exceeds limit %d", len(rec), limit)
		}
		if len(rec) > len(data) {
			t.Fatalf("record of %d bytes from %d input bytes", len(rec), len(data))
		}
		// A record the reader accepts must round-trip through the
		// writer and back.
		var out bytes.Buffer
		if err := writeRecord(&out, rec); err != nil {
			t.Fatal(err)
		}
		again, err := readRecordLimit(bytes.NewReader(out.Bytes()), nil, limit)
		if err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
		if !bytes.Equal(rec, again) {
			t.Fatal("round-trip changed the record")
		}
	})
}
