package bsdpipe

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	p := New()
	go func() {
		_, _ = p.Write([]byte("hello monolith"))
		p.CloseWrite()
	}()
	var got []byte
	buf := make([]byte, 8)
	for {
		n, err := p.Read(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "hello monolith" {
		t.Fatalf("got %q", got)
	}
}

func TestBlockingAt4K(t *testing.T) {
	p := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// 8K through the fixed 4K buffer requires a concurrent reader.
		_, _ = p.Write(make([]byte, 8192))
		p.CloseWrite()
	}()
	total := 0
	buf := make([]byte, 4096)
	for {
		n, err := p.Read(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	<-done
	if total != 8192 {
		t.Fatalf("total = %d", total)
	}
}

func TestEPIPE(t *testing.T) {
	p := New()
	p.CloseRead()
	if _, err := p.Write([]byte("x")); err != io.ErrClosedPipe {
		t.Fatalf("err = %v", err)
	}
}

func TestQuickStreamIntegrity(t *testing.T) {
	f := func(data []byte) bool {
		p := New()
		go func() {
			_, _ = p.Write(data)
			p.CloseWrite()
		}()
		var got []byte
		buf := make([]byte, 1031)
		for {
			n, err := p.Read(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			got = append(got, buf[:n]...)
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
