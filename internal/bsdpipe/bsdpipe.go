// Package bsdpipe models a monolithic 4.3BSD pipe, the reference
// line of the paper's Figure 7: reader and writer trap into one
// kernel, which copies between their user buffers and a fixed
// in-kernel 4K pipe buffer. There is no IPC rendezvous and no
// marshaling — just two user/kernel copies per byte plus syscall
// entry work, which is why the monolithic pipe sits between the
// unoptimized and optimized decomposed implementations.
package bsdpipe

import (
	"io"
	"sync"
)

// BufferSize is the fixed 4.3BSD pipe buffer size ("in that
// implementation pipe buffers are always 4K in size").
const BufferSize = 4096

// A Pipe is a monolithic in-kernel pipe.
type Pipe struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      [BufferSize]byte
	r, count int
	wclosed  bool
	rclosed  bool
}

// New creates a pipe.
func New() *Pipe {
	p := &Pipe{}
	p.notEmpty.L = &p.mu
	p.notFull.L = &p.mu
	return p
}

// trap models syscall entry/exit: a fixed amount of kernel-crossing
// bookkeeping per call, far cheaper than an IPC rendezvous.
func trap() {
	// The lock acquisition in the callers is the crossing; nothing
	// further is simulated.
}

// Write copies all of data into the pipe, blocking while full.
// It returns io.ErrClosedPipe after CloseRead (EPIPE).
func (p *Pipe) Write(data []byte) (int, error) {
	trap()
	p.mu.Lock()
	defer p.mu.Unlock()
	written := 0
	for len(data) > 0 {
		for p.count == BufferSize && !p.rclosed {
			p.notFull.Wait()
		}
		if p.rclosed {
			return written, io.ErrClosedPipe
		}
		n := BufferSize - p.count
		if n > len(data) {
			n = len(data)
		}
		w := (p.r + p.count) % BufferSize
		first := copy(p.buf[w:], data[:n]) // user -> kernel copy
		if first < n {
			copy(p.buf[:], data[first:n])
		}
		p.count += n
		data = data[n:]
		written += n
		p.notEmpty.Broadcast()
	}
	return written, nil
}

// Read copies up to len(dst) buffered bytes into dst, blocking while
// empty; io.EOF after CloseWrite drains.
func (p *Pipe) Read(dst []byte) (int, error) {
	trap()
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.count == 0 && !p.wclosed {
		p.notEmpty.Wait()
	}
	if p.count == 0 {
		return 0, io.EOF
	}
	n := p.count
	if n > len(dst) {
		n = len(dst)
	}
	first := copy(dst[:n], p.buf[p.r:]) // kernel -> user copy
	if first < n {
		copy(dst[first:n], p.buf[:])
	}
	p.r = (p.r + n) % BufferSize
	p.count -= n
	p.notFull.Broadcast()
	return n, nil
}

// CloseWrite signals EOF.
func (p *Pipe) CloseWrite() {
	p.mu.Lock()
	p.wclosed = true
	p.mu.Unlock()
	p.notEmpty.Broadcast()
}

// CloseRead signals EPIPE to the writer.
func (p *Pipe) CloseRead() {
	p.mu.Lock()
	p.rclosed = true
	p.mu.Unlock()
	p.notFull.Broadcast()
}
