package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"flexrpc/internal/core"
	"flexrpc/internal/netsim"
	"flexrpc/internal/pres"
	frt "flexrpc/internal/runtime"
	"flexrpc/internal/stats"
	"flexrpc/internal/transport/suntcp"
)

// Overload experiment: deliberate degradation under offered load
// beyond capacity. The server's capacity is a backend bottleneck
// (Backend concurrent slots, Service hold time each); closed-loop
// clients offer 2x-10x that capacity. Unprotected, every excess call
// queues at the bottleneck and latency grows linearly with the load
// multiple — the latency SLO dies even though every call "succeeds".
// With admission control the excess is shed before the bottleneck
// with a pushback frame, clients honor the advisory RetryAfter, and
// the calls that do get through keep bottleneck-speed latency: lower
// goodput is never the failure mode, unbounded queueing is.
//
// Goodput counts completions within the SLO — a reply that arrives
// after the caller's patience is spent is overhead, not service.

// OverloadConfig sizes the overload experiment.
type OverloadConfig struct {
	Backend    int           // backend bottleneck concurrency
	Service    time.Duration // backend hold time per call
	SLO        time.Duration // latency bound that defines goodput
	RetryAfter time.Duration // server's advisory pushback pause
	Loads      []int         // offered-load multiples of Backend
	Duration   time.Duration // measurement window per cell
}

// DefaultOverloadConfig returns the full-size run.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		Backend:    4,
		Service:    time.Millisecond,
		SLO:        5 * time.Millisecond,
		RetryAfter: time.Millisecond,
		Loads:      []int{2, 4, 10},
		Duration:   250 * time.Millisecond,
	}
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	d := DefaultOverloadConfig()
	if c.Backend <= 0 {
		c.Backend = d.Backend
	}
	if c.Service <= 0 {
		c.Service = d.Service
	}
	if c.SLO <= 0 {
		c.SLO = d.SLO
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = d.RetryAfter
	}
	if len(c.Loads) == 0 {
		c.Loads = d.Loads
	}
	if c.Duration <= 0 {
		c.Duration = d.Duration
	}
	return c
}

// overloadMode selects the protection installed for one cell.
type overloadMode struct {
	name      string
	admission bool
	budget    bool
}

// overloadCellResult carries one cell's raw numbers so the claims can
// be asserted on values rather than rendered strings.
type overloadCellResult struct {
	issued      int
	completed   int
	withinSLO   int
	goodput     float64 // within-SLO completions per second
	p50, p99    time.Duration
	retries     uint64
	sheds       uint64
	suppressed  uint64
	fastFails   uint64
	elapsedSecs float64
}

// FigOverload runs the load x protection grid and self-asserts the
// headline claims: at the highest offered load, admission control
// sustains higher goodput and a lower p99 than the unprotected
// server, and a retry-budgeted client wastes fewer retries than an
// unbudgeted one against the same pushback storm.
func FigOverload(cfg OverloadConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	compiled, err := core.Compile(core.Options{
		Frontend: core.FrontendCORBA, Filename: "work.idl",
		Source: `interface Work { void work(); };`,
	})
	if err != nil {
		return nil, err
	}
	modes := []overloadMode{
		{name: "unprotected"},
		{name: "admission", admission: true},
		{name: "admission+budget", admission: true, budget: true},
	}
	t := &Table{
		Title: fmt.Sprintf("Overload: %d-slot backend, %v service; goodput = completions within the %v SLO",
			cfg.Backend, cfg.Service, cfg.SLO),
		Note: "unprotected, excess load queues at the backend and p99 grows with the load multiple; " +
			"admission sheds it before the bottleneck and keeps admitted latency flat",
		Headers: []string{"goodput/s", "ok %", "p50 ms", "p99 ms", "retries/call", "shed/call", "suppressed"},
	}
	results := make(map[string]overloadCellResult, len(cfg.Loads)*len(modes))
	for _, load := range cfg.Loads {
		for _, m := range modes {
			r, err := overloadCell(compiled.Pres, cfg, m, load)
			if err != nil {
				return nil, err
			}
			key := fmt.Sprintf("load %dx %s", load, m.name)
			results[key] = r
			t.Rows = append(t.Rows, Row{
				Label: key,
				Values: []string{
					fmt.Sprintf("%.0f", r.goodput),
					f1(100 * float64(r.completed) / float64(max(r.issued, 1))),
					f2(float64(r.p50.Nanoseconds()) / 1e6),
					f2(float64(r.p99.Nanoseconds()) / 1e6),
					f2(float64(r.retries) / float64(max(r.issued, 1))),
					f2(float64(r.sheds) / float64(max(r.issued, 1))),
					fmt.Sprintf("%d", r.suppressed),
				},
			})
		}
	}
	if err := assertOverloadClaims(cfg, results); err != nil {
		return nil, err
	}
	return t, nil
}

// assertOverloadClaims checks the figure's headline claims at the
// highest offered load, failing the whole run when the data
// contradicts them — the JSON this figure emits is a certificate,
// not just a log.
func assertOverloadClaims(cfg OverloadConfig, results map[string]overloadCellResult) error {
	top := cfg.Loads[0]
	for _, l := range cfg.Loads {
		if l > top {
			top = l
		}
	}
	unprot := results[fmt.Sprintf("load %dx unprotected", top)]
	adm := results[fmt.Sprintf("load %dx admission", top)]
	bud := results[fmt.Sprintf("load %dx admission+budget", top)]
	if adm.goodput <= unprot.goodput {
		return fmt.Errorf("overload claim failed: admission goodput %.0f/s <= unprotected %.0f/s at %dx load",
			adm.goodput, unprot.goodput, top)
	}
	if adm.p99 >= unprot.p99 {
		return fmt.Errorf("overload claim failed: admission p99 %v >= unprotected %v at %dx load",
			adm.p99, unprot.p99, top)
	}
	admRetries := float64(adm.retries) / float64(max(adm.issued, 1))
	budRetries := float64(bud.retries) / float64(max(bud.issued, 1))
	if admRetries == 0 {
		return fmt.Errorf("overload claim failed: unbudgeted client recorded no retries under pushback at %dx load", top)
	}
	if budRetries >= admRetries {
		return fmt.Errorf("overload claim failed: budgeted retries/call %.2f >= unbudgeted %.2f at %dx load",
			budRetries, admRetries, top)
	}
	if bud.suppressed == 0 {
		return fmt.Errorf("overload claim failed: retry budget suppressed nothing under pushback at %dx load", top)
	}
	return nil
}

// overloadCell runs one load x protection cell: load*Backend
// closed-loop drivers, each over its own connection, against one
// session server whose handler funnels through the backend
// bottleneck.
func overloadCell(p *pres.Presentation, cfg OverloadConfig, m overloadMode, load int) (overloadCellResult, error) {
	disp := frt.NewDispatcher(p)
	sem := make(chan struct{}, cfg.Backend)
	disp.Handle("work", func(c *frt.Call) error {
		sem <- struct{}{}
		time.Sleep(cfg.Service)
		<-sem
		return nil
	})
	plan, err := frt.NewPlan(p, frt.XDRCodec, nil)
	if err != nil {
		return overloadCellResult{}, err
	}
	serverStats := stats.New(nil)
	sess := frt.NewSessionServer(disp, plan, frt.NewReplyCache(frt.DefaultReplyCacheSize))
	var adm *frt.Admission
	if m.admission {
		// The cap equals the backend: everything the bottleneck cannot
		// serve right now is pushed back instead of queued against it.
		adm = frt.NewAdmission(frt.AdmissionOptions{
			MaxInflight: cfg.Backend,
			RetryAfter:  cfg.RetryAfter,
			Stats:       serverStats,
		})
		sess.SetAdmission(adm)
	}
	srv := suntcp.NewSessionServer(sess, p.Interface)

	var budget *frt.RetryBudget
	if m.budget {
		// One budget shared by every driver: the aggregate retry rate
		// toward this backend is what must not amplify.
		budget = frt.NewRetryBudget(10, 0.1)
	}
	clientStats := stats.New([]string{"work"})
	opIdx := plan.OpIndex("work")
	enc := frt.XDRCodec.NewEncoder()
	if err := plan.Ops[opIdx].EncodeRequest(enc, nil); err != nil {
		return overloadCellResult{}, err
	}
	req := enc.Bytes()

	drivers := load * cfg.Backend
	conns := make([]*frt.RobustConn, drivers)
	for i := range conns {
		cc, sc := netsim.BufferedPipe(netsim.LinkParams{}, 64)
		go func() { _ = srv.ServeConn(sc) }()
		conn := frt.NewRobustConn(suntcp.Dial(cc, p), p, frt.RobustOptions{
			ClientID:   uint32(i + 1),
			AtMostOnce: true,
			Policy: frt.RetryPolicy{
				MaxAttempts: 4,
				BaseBackoff: cfg.RetryAfter,
				MaxBackoff:  4 * cfg.RetryAfter,
				Seed:        int64(i + 1),
			},
			Budget: budget,
		})
		conn.SetStats(clientStats)
		conns[i] = conn
	}

	type driverTally struct {
		issued, completed int
		lat               []time.Duration
	}
	tallies := make([]driverTally, drivers)
	var wg sync.WaitGroup
	start := time.Now()
	for d := range conns {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			conn := conns[d]
			tally := &tallies[d]
			var replyBuf []byte
			for time.Since(start) < cfg.Duration {
				tally.issued++
				t0 := time.Now()
				reply, err := conn.CallContext(context.Background(), opIdx, req, replyBuf)
				if err == nil {
					tally.completed++
					tally.lat = append(tally.lat, time.Since(t0))
					replyBuf = reply[:0]
					continue
				}
				var ov *frt.ErrOverloaded
				if !errors.As(err, &ov) {
					// Anything but a shed is a harness bug, not load.
					panic(err)
				}
			}
		}(d)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, conn := range conns {
		conn.Close()
	}

	var r overloadCellResult
	var lat []time.Duration
	for i := range tallies {
		r.issued += tallies[i].issued
		r.completed += tallies[i].completed
		lat = append(lat, tallies[i].lat...)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pick := func(q float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		return lat[int(q*float64(len(lat)-1))]
	}
	r.p50, r.p99 = pick(0.50), pick(0.99)
	for _, d := range lat {
		if d <= cfg.SLO {
			r.withinSLO++
		}
	}
	r.elapsedSecs = elapsed.Seconds()
	r.goodput = float64(r.withinSLO) / r.elapsedSecs
	cs := clientStats.Snapshot()
	for _, o := range cs.Ops {
		r.retries += o.Retries
	}
	r.suppressed = cs.RetrySuppressed
	r.fastFails = cs.BreakerFastFails
	r.sheds = serverStats.Snapshot().Sheds
	return r, nil
}
