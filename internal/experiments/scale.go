package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"flexrpc/internal/core"
	"flexrpc/internal/netsim"
	"flexrpc/internal/pres"
	frt "flexrpc/internal/runtime"
	"flexrpc/internal/stats"
	"flexrpc/internal/transport/suntcp"
)

// Scale experiment: multicore server scaling. Each connection
// carries pipelined calls from several client goroutines; the server
// either dispatches them serially (the seed behavior) or through the
// worker pool with a coalescing reply writer and the sharded
// at-most-once cache; a third leg adds client-side [batchable] call
// merging. Two workloads bracket the design space: a pure null RPC
// (per-call CPU overhead, scales only with real cores) and a null
// RPC whose handler stalls ~200µs simulating a backend wait (scales
// with workers even on one core, the way a blocked NFS handler
// would).

// ScaleConfig sizes the scale experiment.
type ScaleConfig struct {
	Calls   int // calls per row
	Workers int // server worker-pool size and client drivers per conn
	Conns   int // connections in the multi-connection rows
	Stall   time.Duration
}

// DefaultScaleConfig returns the full-size run.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{Calls: 20000, Workers: 8, Conns: 8, Stall: 200 * time.Microsecond}
}

const scaleIDL = `interface Scale { void nop(); };`

// The PDL marks nop [batchable] so the batched leg can merge calls.
// It is deliberately NOT [idempotent]: every call must traverse the
// at-most-once reply cache, the structure whose sharding the figure
// is measuring.
const scalePDL = "interface Scale {\n    [batchable] nop();\n};\n"

type scaleMode struct {
	name    string
	workers int // server pool size; 1 = the serial loop
	shards  int // reply-cache shards; 1 = single mutex
	batch   bool
}

// FigScale measures calls/s for each server mode × workload ×
// connection count, plus the machinery's own counters: how many
// replies each writer flush coalesced, how many calls each batch
// frame carried, and how often a cache shard was found locked.
func FigScale(cfg ScaleConfig) (*Table, error) {
	d := DefaultScaleConfig()
	if cfg.Calls <= 0 {
		cfg.Calls = d.Calls
	}
	if cfg.Workers <= 0 {
		cfg.Workers = d.Workers
	}
	if cfg.Conns <= 0 {
		cfg.Conns = d.Conns
	}
	if cfg.Stall <= 0 {
		cfg.Stall = d.Stall
	}
	compiled, err := core.Compile(core.Options{
		Frontend: core.FrontendCORBA, Filename: "scale.idl", Source: scaleIDL,
		PDL: scalePDL, PDLFilename: "scale.pdl",
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: fmt.Sprintf("Scale: pipelined null RPC, %d drivers/conn; stall simulates a %v backend wait",
			cfg.Workers, cfg.Stall),
		Note: "speedup is vs the serial row of the same workload and conn count; " +
			"null-RPC scaling needs real cores, stall scaling only needs workers",
		Headers: []string{"calls/s", "speedup", "coalesce/flush", "batch/frame", "shard waits"},
	}
	modes := []scaleMode{
		{name: "serial", workers: 1, shards: 1},
		{name: fmt.Sprintf("concurrent/%d", cfg.Workers), workers: cfg.Workers, shards: cfg.Workers},
		{name: fmt.Sprintf("concurrent/%d+batch", cfg.Workers), workers: cfg.Workers, shards: cfg.Workers, batch: true},
	}
	for _, wl := range []struct {
		name  string
		stall time.Duration
	}{
		{"null", 0},
		{fmt.Sprintf("stall %v", cfg.Stall), cfg.Stall},
	} {
		for _, conns := range []int{1, cfg.Conns} {
			var base float64
			for _, m := range modes {
				row, rate, err := scaleRow(compiled.Pres, cfg, m, wl.stall, conns)
				if err != nil {
					return nil, err
				}
				if m.workers == 1 {
					base = rate
				}
				speedup := "1.00"
				if m.workers != 1 && base > 0 {
					speedup = f2(rate / base)
				}
				row.Label = fmt.Sprintf("%s conns %d %s", wl.name, conns, m.name)
				row.Values = append([]string{fmt.Sprintf("%.0f", rate), speedup}, row.Values...)
				t.Rows = append(t.Rows, row)
			}
		}
	}
	return t, nil
}

// scaleRow runs cfg.Calls calls through one server mode and reports
// the mechanism counters plus the achieved rate.
func scaleRow(p *pres.Presentation, cfg ScaleConfig, m scaleMode, stall time.Duration, conns int) (Row, float64, error) {
	disp := frt.NewDispatcher(p)
	disp.Handle("nop", func(c *frt.Call) error {
		if stall > 0 {
			time.Sleep(stall)
		}
		return nil
	})
	plan, err := frt.NewPlan(p, frt.XDRCodec, nil)
	if err != nil {
		return Row{}, 0, err
	}
	serverStats := stats.New(nil)
	cache := frt.NewReplyCacheSharded(frt.DefaultReplyCacheSize, m.shards)
	cache.SetStats(serverStats)
	sess := frt.NewSessionServer(disp, plan, cache)
	srv := suntcp.NewSessionServer(sess, p.Interface)
	srv.SetConcurrency(m.workers)
	srv.SetStats(serverStats)

	clientStats := stats.New([]string{"nop"})
	opIdx := plan.OpIndex("nop")
	enc := frt.XDRCodec.NewEncoder()
	if err := plan.Ops[opIdx].EncodeRequest(enc, nil); err != nil {
		return Row{}, 0, err
	}
	req := enc.Bytes()

	rconns := make([]*frt.RobustConn, conns)
	for i := range rconns {
		cc, sc := netsim.BufferedPipe(netsim.LinkParams{}, 256)
		go func() { _ = srv.ServeConn(sc) }()
		conn := frt.NewRobustConn(suntcp.Dial(cc, p), p, frt.RobustOptions{
			ClientID:   uint32(i + 1),
			AtMostOnce: true,
		})
		conn.SetStats(clientStats)
		if m.batch {
			// MaxCalls matches the driver count so steady-state
			// batches flush on size (on the enqueuer, immediately)
			// rather than waiting out the timer: the timer is the
			// lone-call latency bound, not the throughput path.
			conn.EnableBatching(frt.BatchOptions{MaxCalls: cfg.Workers})
		}
		rconns[i] = conn
	}

	perDriver := cfg.Calls / (conns * cfg.Workers)
	if perDriver < 1 {
		perDriver = 1
	}
	total := perDriver * conns * cfg.Workers

	errc := make(chan error, conns*cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for _, conn := range rconns {
		for d := 0; d < cfg.Workers; d++ {
			wg.Add(1)
			go func(conn *frt.RobustConn) {
				defer wg.Done()
				var replyBuf []byte
				for i := 0; i < perDriver; i++ {
					reply, err := conn.CallContext(context.Background(), opIdx, req, replyBuf)
					if err != nil {
						errc <- err
						return
					}
					replyBuf = reply[:0]
				}
			}(conn)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, conn := range rconns {
		conn.Close()
	}
	select {
	case err := <-errc:
		return Row{}, 0, err
	default:
	}

	rate := float64(total) / elapsed.Seconds()
	ss := serverStats.Snapshot()
	coalesce := "-"
	if ss.Flushes > 0 {
		coalesce = f2(float64(ss.FlushedRecords) / float64(ss.Flushes))
	}
	batched := "-"
	if cs := clientStats.Snapshot(); cs.BatchFlushes > 0 {
		batched = f2(float64(cs.BatchedCalls) / float64(cs.BatchFlushes))
	}
	return Row{Values: []string{coalesce, batched, fmt.Sprintf("%d", cache.Contention())}}, rate, nil
}
